(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§III). Run with no arguments to print all experiments;
   pass experiment names (fig4 fig5 fig6 fig7 fig8 table1 table2 table3,
   or ablations) to run a subset; pass --bechamel to time the experiment
   kernels with Bechamel instead. *)

module D = Platform.Device
module MS = Kernels.Machsuite

let line = String.make 78 '-'

let header title note =
  Printf.printf "\n%s\n%s\n%s\n%s\n" line title note line

(* The F1 DDR-C controller the microbenchmark targets: one channel. *)
let f1_one_channel = { D.aws_f1 with D.dram = Dram.Config.ddr4_2400 }

(* MachSuite deployments run at the 125 MHz default clock (§III-B). *)
let f1_125mhz =
  {
    D.aws_f1 with
    D.fabric_clock_ps = 8000;
    D.noc = Noc.Params.default ~clock_ps:8000;
  }

(* ------------------------------------------------------------------ *)
(* Fig. 4: Memcpy bandwidth                                            *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "Fig. 4 — Memcpy microbenchmark bandwidth (AWS F1, one DDR4 channel)"
    "Paper shape: Pure-HDL ~ Beethoven ~ No-TLP (within ~7%); HLS clearly\n\
     lower (same-ID 16-beat bursts serialize at the controller); a 16-beat\n\
     Beethoven build shows no degradation.";
  let sizes_kb = [ 4; 16; 64; 256; 1024 ] in
  Printf.printf "%-22s" "GB/s at size:";
  List.iter (fun kb -> Printf.printf "%8dKB" kb) sizes_kb;
  print_newline ();
  List.iter
    (fun impl ->
      Printf.printf "%-22s" (Kernels.Memcpy.impl_name impl);
      List.iter
        (fun kb ->
          let r =
            Kernels.Memcpy.run ~impl ~bytes:(kb * 1024)
              ~platform:f1_one_channel ()
          in
          assert r.Kernels.Memcpy.verified;
          Printf.printf "%10.2f" r.Kernels.Memcpy.bandwidth_gbs)
        sizes_kb;
      print_newline ())
    Kernels.Memcpy.all_impls

(* ------------------------------------------------------------------ *)
(* Fig. 5: AXI transaction timelines, 4KB memcpy                       *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "Fig. 5 — AXI transaction timelines for a 4 KB memcpy"
    "Paper shape: HLS puts all four 16-beat bursts on one ID (serialized\n\
     read data, late writes); Beethoven spreads them over distinct IDs\n\
     (overlapped, writes finish early); Pure-HDL is a single 64-beat\n\
     transaction per direction.";
  let show impl =
    let trace = Axi.Trace.create () in
    let r =
      Kernels.Memcpy.run ~trace ~impl ~bytes:4096 ~platform:f1_one_channel ()
    in
    Printf.printf "\n(%s) — %.2f GB/s\n%s" (Kernels.Memcpy.impl_name impl)
      r.Kernels.Memcpy.bandwidth_gbs
      (Axi.Trace.render trace ~time_scale:40_000)
  in
  List.iter show
    [ Kernels.Memcpy.Hls; Kernels.Memcpy.Beethoven_16beat;
      Kernels.Memcpy.Pure_hdl ]

(* ------------------------------------------------------------------ *)
(* Table I: MachSuite benchmark selection                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table I — MachSuite benchmarks selected for the evaluation" "";
  Printf.printf "%-11s %-38s %-14s %s\n" "Benchmark" "Description" "Data size"
    "Parallelism";
  List.iter
    (fun k ->
      let size =
        match k with
        | MS.Md_knn -> Printf.sprintf "N = %d, K = 32" (MS.data_size k)
        | _ -> Printf.sprintf "N = %d" (MS.data_size k)
      in
      Printf.printf "%-11s %-38s %-14s %s\n" (MS.name k) (MS.description k)
        size (MS.parallelism k))
    MS.all

(* ------------------------------------------------------------------ *)
(* Fig. 6: MachSuite speedups vs Vitis HLS                             *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "Fig. 6 — MachSuite speedup over Vitis HLS (125 MHz deployments)"
    "Paper shape: Beethoven(Measured) >= 1x everywhere; NW ~2x from a\n\
     single core (loop-carried dependence defeats HLS/Spatial pragmas);\n\
     the ideal-vs-measured gap is largest for the shortest kernels\n\
     (runtime-server lock contention).";
  Printf.printf "%-11s %6s | %9s %9s %9s %9s | %11s %6s\n" "" "cores" "HLS"
    "Spatial" "B(Ideal)" "B(Meas.)" "1-core lat" "gap";
  List.iter
    (fun k ->
      let cores = MS.auto_cores k f1_125mhz in
      let single = MS.run k ~rounds:1 ~n_cores:1 ~platform:f1_125mhz () in
      assert single.MS.verified;
      let multi = MS.run k ~rounds:2 ~n_cores:cores ~platform:f1_125mhz () in
      assert multi.MS.verified;
      let hls = MS.hls_ops_per_sec k in
      let spatial = MS.spatial_ops_per_sec k in
      let single_ops =
        1.0 /. (float_of_int single.MS.single_latency_ps *. 1e-12)
      in
      let ideal = single_ops *. float_of_int cores in
      let measured = multi.MS.measured_ops_per_sec in
      Printf.printf
        "%-11s %6d | %9.2f %9.2f %9.2f %9.2f | %9.0fus %5.0f%%\n" (MS.name k)
        cores 1.0 (spatial /. hls) (ideal /. hls) (measured /. hls)
        (float_of_int single.MS.single_latency_ps /. 1e6)
        (100. *. (1. -. (measured /. ideal))))
    MS.all;
  Printf.printf
    "\n(speedups normalized to HLS = 1.0; 'gap' = ideal vs measured)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 7: the A3 pipeline                                             *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig. 7 — A3 approximate-attention pipeline (functional check)"
    "Three coarse stages with two global reductions, BERT geometry\n\
     (64-dim embeddings, 320 keys), 1-byte fixed-point operands.";
  Printf.printf
    "stage 1: query x key dot products   (1 key row/cycle, running max)\n\
     stage 2: exp LUT softmax            (256-entry Q4.4 -> Q1.15 table)\n\
     stage 3: weighted value reduction   (normalized, 1 row/cycle)\n\
     issue interval: %d cycles/query; latency: %d cycles\n\n"
    Attention.A3.issue_interval_cycles Attention.A3.pipeline_latency_cycles;
  let rand =
    let s = ref 7 in
    fun () ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      !s
  in
  let q8 () = (rand () mod 33) - 16 in
  let errs =
    List.init 20 (fun _ ->
        let keys =
          Array.init Attention.A3.n_keys (fun _ ->
              Array.init Attention.A3.dim (fun _ -> q8 ()))
        in
        let values =
          Array.init Attention.A3.n_keys (fun _ ->
              Array.init Attention.A3.dim (fun _ -> q8 ()))
        in
        let query = Array.init Attention.A3.dim (fun _ -> q8 ()) in
        let fixed = Attention.A3.attend_fixed ~query ~keys ~values in
        let exact =
          Attention.A3.attend_float
            ~query:(Array.map Attention.A3.dequantize query)
            ~keys:(Array.map (Array.map Attention.A3.dequantize) keys)
            ~values:(Array.map (Array.map Attention.A3.dequantize) values)
        in
        Attention.A3.mean_abs_error fixed exact)
  in
  let mean =
    List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)
  in
  let worst = List.fold_left Float.max 0. errs in
  Printf.printf
    "fixed-point vs exact attention over 20 random heads:\n\
    \  mean abs error %.4f, worst %.4f (operand quantum %.4f)\n"
    mean worst Attention.A3.operand_scale

(* ------------------------------------------------------------------ *)
(* Fig. 8 + Table II: the 23-core A3 elaboration                       *)
(* ------------------------------------------------------------------ *)

let a3_design () =
  Beethoven.Elaborate.elaborate
    (Attention.Accel.config ~n_cores:(Attention.Accel.auto_cores D.aws_f1) ())
    D.aws_f1

let fig8 () =
  header "Fig. 8 — Floorplan of the multi-core A3 accelerator"
    "Paper shape: cores placed with per-SLR affinity; the shell's\n\
     footprint on SLR0/1 pushes cores toward SLR2.";
  let design = a3_design () in
  print_string (Beethoven.Elaborate.summary design)

let table2 () =
  header "Table II — Resource utilization of the multi-core A3 design"
    "Paper shape: interconnect is small and LUT-heavy; identical cores\n\
     get different BRAM/URAM mixes once an SLR crosses the 80% spill\n\
     threshold.";
  let design = a3_design () in
  print_string (Beethoven.Elaborate.resource_table design);
  let module F = Beethoven.Floorplan in
  let choice_str (c : Platform.Fpga_mem.choice) =
    match c.Platform.Fpga_mem.cell with
    | Platform.Fpga_mem.Bram ->
        Printf.sprintf "%d BRAM" c.Platform.Fpga_mem.count
    | Platform.Fpga_mem.Uram ->
        Printf.sprintf "%d URAM" c.Platform.Fpga_mem.count
    | Platform.Fpga_mem.Lutram -> "LUTRAM"
  in
  Printf.printf
    "\nPer-core Value-scratchpad cell mapping (mixed once an SLR fills):\n";
  List.iter
    (fun cp ->
      match
        List.find_opt (fun m -> m.F.mm_name = "values") cp.F.cp_memories
      with
      | Some m ->
          Printf.printf "  core %2d (SLR%d): %s\n" cp.F.cp_core cp.F.cp_slr
            (choice_str m.F.mm_choice)
      | None -> ())
    design.Beethoven.Elaborate.floorplan.F.places

(* ------------------------------------------------------------------ *)
(* Table III: throughput and energy                                    *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table III — A3 performance and energy vs CPU / GPU / ASIC"
    "Paper shape: Beethoven ~3.3x GPU throughput and ~34x lower\n\
     energy/op; the 1-core ASIC at 1 GHz does not beat the GPU.";
  let n_cores = Attention.Accel.auto_cores D.aws_f1 in
  let r =
    Attention.Accel.run ~n_queries_per_core:800 ~n_cores ~platform:D.aws_f1 ()
  in
  assert r.Attention.Accel.verified;
  let design = a3_design () in
  let fpga_row =
    Attention.Baselines.fpga ~throughput_ops:r.Attention.Accel.throughput_ops
      ~resources:design.Beethoven.Elaborate.beethoven_total
      ~freq_mhz:(D.fabric_freq_mhz D.aws_f1)
  in
  print_string
    (Attention.Baselines.table
       ~rows:
         [
           Attention.Baselines.cpu;
           Attention.Baselines.gpu;
           fpga_row;
           Attention.Baselines.asic_1core;
         ]);
  let gpu = Attention.Baselines.gpu in
  Printf.printf
    "\nBeethoven vs GPU: %.1fx throughput, %.0fx lower energy/op (%d cores, \
     max quantization error %.3f)\n"
    (fpga_row.Attention.Baselines.throughput_ops
    /. gpu.Attention.Baselines.throughput_ops)
    (Option.get gpu.Attention.Baselines.energy_per_op_uj
    /. Option.get fpga_row.Attention.Baselines.energy_per_op_uj)
    n_cores r.Attention.Accel.max_error

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper's figures                                *)
(* ------------------------------------------------------------------ *)

let ablation_noc () =
  header "Ablation — interconnect elaboration knobs (fanout)"
    "The NoC fanout knob trades buffers (resources) against tree depth\n\
     (latency), the tuning surface §II-B exposes to platform developers.";
  let endpoints =
    List.init 92 (fun i -> { Noc.ep_id = i; ep_slr = i mod 3 })
  in
  Printf.printf "%-8s %9s %7s %12s\n" "fanout" "buffers" "depth"
    "latency(ps)";
  List.iter
    (fun fanout ->
      let prm =
        {
          (Noc.Params.default ~clock_ps:4000) with
          Noc.Params.max_fanout = fanout;
        }
      in
      let noc = Noc.build prm ~root_slr:0 ~endpoints in
      let worst =
        List.fold_left
          (fun acc ep -> max acc (Noc.latency_ps noc ~ep_id:ep.Noc.ep_id))
          0 endpoints
      in
      let depth =
        List.fold_left
          (fun acc ep -> max acc (Noc.depth_of noc ~ep_id:ep.Noc.ep_id))
          0 endpoints
      in
      Printf.printf "%-8d %9d %7d %12d\n" fanout (Noc.n_buffers noc) depth
        worst)
    [ 2; 4; 8; 16 ]

let ablation_spill () =
  header "Ablation — BRAM/URAM spill threshold"
    "Sweeping the 80% spill point of the memory mapper over the A3\n\
     configuration changes how many cores land on URAM.";
  List.iter
    (fun threshold ->
      let plat = { D.aws_f1 with D.memory_spill_threshold = threshold } in
      match
        Beethoven.Floorplan.place (Attention.Accel.config ~n_cores:23 ()) plat
      with
      | exception Failure _ ->
          Printf.printf "  %.0f%%: does not fit\n" (100. *. threshold)
      | fp ->
          let module F = Beethoven.Floorplan in
          let spilled =
            List.length
              (List.filter
                 (fun cp ->
                   List.exists
                     (fun m ->
                       m.F.mm_name = "values"
                       && m.F.mm_choice.Platform.Fpga_mem.cell
                          = Platform.Fpga_mem.Uram)
                     cp.F.cp_memories)
                 fp.F.places)
          in
          Printf.printf
            "  spill at %3.0f%%: %2d of 23 value scratchpads on URAM\n"
            (100. *. threshold) spilled)
    [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let ablation_prefetch () =
  header "Ablation — Reader prefetch depth (memcpy, 256 KB)"
    "More outstanding transactions hide DRAM latency until the bus\n\
     saturates — the Reader tuning tradeoff described in §II-B.";
  Printf.printf "%-12s %10s\n" "in-flight" "GB/s";
  List.iter
    (fun n ->
      let design =
        Beethoven.Elaborate.elaborate
          (Beethoven.Config.make ~name:"memcpy_ablate"
             [
               Beethoven.Config.system ~name:"Memcpy" ~n_cores:1
                 ~read_channels:
                   [
                     Beethoven.Config.read_channel ~name:"src" ~data_bytes:64
                       ~burst_beats:16 ~max_in_flight:n
                       ~buffer_beats:(16 * max 2 n) ();
                   ]
                 ~write_channels:
                   [
                     Beethoven.Config.write_channel ~name:"dst" ~data_bytes:64
                       ~burst_beats:16 ~max_in_flight:n
                       ~buffer_beats:(16 * max 2 n) ();
                   ]
                 ~commands:[ Kernels.Memcpy.command ] ();
             ])
          f1_one_channel
      in
      let soc =
        Beethoven.Soc.create design ~behaviors:(fun _ ->
            Kernels.Memcpy.behavior)
      in
      let handle = Runtime.Handle.create soc in
      let bytes = 256 * 1024 in
      let h =
        Runtime.Handle.send handle ~system:"Memcpy" ~core:0
          ~cmd:Kernels.Memcpy.command
          ~args:
            [
              ("src", 1048576L);
              ("dst", 4194304L);
              ("bytes", Int64.of_int bytes);
            ]
      in
      ignore (Runtime.Handle.await handle h);
      let dram = Beethoven.Soc.dram soc in
      let traffic = Dram.bytes_read dram + Dram.bytes_written dram in
      let bw = Dram.achieved_bandwidth_gbs dram in
      let wall = float_of_int traffic /. bw *. 1000. in
      Printf.printf "%-12d %10.2f\n" n (float_of_int bytes /. wall *. 1000.))
    [ 1; 2; 4; 8 ]

let ablation_a3_cores () =
  header "Ablation — A3 core-count scaling"
    "The scalability argument of §III-C: throughput vs core count on the\n\
     U200, with near-linear scaling until the device is full at 23.";
  Printf.printf "%-8s %14s %10s\n" "cores" "ops/s" "per-core";
  List.iter
    (fun n ->
      let r =
        Attention.Accel.run ~n_queries_per_core:400 ~n_cores:n
          ~platform:D.aws_f1 ()
      in
      assert r.Attention.Accel.verified;
      Printf.printf "%-8d %14.3e %10.3e\n" n r.Attention.Accel.throughput_ops
        (r.Attention.Accel.throughput_ops /. float_of_int n))
    [ 1; 2; 4; 8; 16; 23 ]

let ablation_refresh () =
  header "Ablation — DRAM refresh (tREFI/tRFC)"
    "Copy bandwidth with the refresh machinery on vs off — the ~4%\n\
     tax a cycle-accurate DRAM model charges that an idealized one hides.";
  List.iter
    (fun (label, cfg) ->
      let plat = { f1_one_channel with D.dram = cfg } in
      let r =
        Kernels.Memcpy.run ~impl:Kernels.Memcpy.Beethoven
          ~bytes:(1 lsl 20) ~platform:plat ()
      in
      Printf.printf "  %-18s %6.2f GB/s\n" label
        r.Kernels.Memcpy.bandwidth_gbs)
    [
      ("with refresh", Dram.Config.ddr4_2400);
      ("without refresh", { Dram.Config.ddr4_2400 with Dram.Config.trfc = 0 });
    ]

let ablation_extra_kernels () =
  header "Extension — four more MachSuite kernels on the composer"
    "Beyond the paper's Fig. 6 subset: FFT (strided butterflies), SpMV\n\
     (irregular reads), KMP (pure streaming), merge sort (log-pass RMW),\n\
     each verified end to end through the full stack.";
  Printf.printf "%-7s %6s | %12s %10s\n" "" "cores" "invocs/s" "verified";
  List.iter
    (fun k ->
      let r = Kernels.Machsuite_extra.run k ~n_cores:4 ~platform:f1_125mhz () in
      Printf.printf "%-7s %6d | %12.0f %10b\n"
        (Kernels.Machsuite_extra.name k)
        r.Kernels.Machsuite_extra.n_cores
        r.Kernels.Machsuite_extra.measured_ops_per_sec
        r.Kernels.Machsuite_extra.verified)
    Kernels.Machsuite_extra.all

let ablation_a3_rtl () =
  header "Extension — the A3 core as a real netlist in the composed SoC"
    "The un-pipelined RTL A3 (every output computed by the netlist through\n\
     the 64-lane dot unit, exp ROM, MAC lanes, and the sequential divider)\n\
     vs the pipelined transaction-level design point.";
  let r =
    Attention.A3_rtl_core.run ~n_queries:4 ~platform:D.aws_f1 ()
  in
  Printf.printf
    "  RTL core: outputs %s, %.0f cycles/query (un-pipelined)\n\
    \  TLM core: %d cycles/query issue interval (pipelined design point)\n"
    (if r.Attention.A3_rtl_core.verified then "bit-exact" else "WRONG")
    r.Attention.A3_rtl_core.cycles_per_query
    Attention.A3.issue_interval_cycles

let ablation_fault () =
  header "Fault campaign — memcpy under a scaled recoverable fault mix"
    "Seeded injection through the full host path (DMA, commands, device\n\
     memory). Expected shape: throughput degrades monotonically as rates\n\
     scale (retries + watchdog resends burn wall time) while the recovery\n\
     stack keeps every round-trip byte-exact; a hung core costs one\n\
     quarantine and a reroute, never a wedged simulation.";
  print_string
    (Kernels.Campaign.render_curve
       (Kernels.Campaign.degradation ~seed:42 ~bytes:(16 * 1024) ~iters:2
          ~platform:f1_one_channel ()));
  let hang_plan =
    Fault.Plan.with_hang ~after:1 ~system:0 ~core:0
      (Fault.Plan.default_recoverable ~seed:42 ())
  in
  let r =
    Kernels.Campaign.run ~plan:hang_plan ~bytes:(16 * 1024) ~iters:3
      ~n_cores:2 ~platform:f1_one_channel ()
  in
  Printf.printf "\nwith a core-0 hang injected at its first dispatch:\n%s"
    (Kernels.Campaign.render r)

let ablation_dse () =
  header "Ablation — design-space exploration"
    "Elaboration-time DSE: the floorplanner rejects infeasible core\n\
     counts before any tool run (vs Spatial's failing DSE points); the\n\
     channel tuner grid-searches the Reader/Writer knobs by simulation.";
  Printf.printf "A3 core-count sweep (metric: analytic queries/s):\n";
  let points =
    Beethoven.Dse.sweep_cores
      ~config_of:(fun ~n_cores -> Attention.Accel.config ~n_cores ())
      ~max_cores:26
      ~metric:(fun ~n_cores ->
        float_of_int n_cores *. 250.0e6
        /. float_of_int Attention.A3.issue_interval_cycles)
      D.aws_f1
  in
  let interesting =
    List.filter (fun p -> p.Beethoven.Dse.pt_cores mod 4 = 0 || not p.Beethoven.Dse.pt_fits
                          || p.Beethoven.Dse.pt_cores >= 22)
      points
  in
  print_string (Beethoven.Dse.render interesting);
  (match Beethoven.Dse.best points with
  | Some p -> Printf.printf "best feasible point: %d cores\n" p.Beethoven.Dse.pt_cores
  | None -> print_endline "no feasible point");
  Printf.printf "\nmemcpy channel tuning (top 5 of the grid):\n";
  Printf.printf "%-8s %10s %6s %10s\n" "burst" "in-flight" "tlp" "GB/s";
  Kernels.Memcpy.tune ~bytes:(128 * 1024) ~platform:f1_one_channel ()
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun tp ->
         Printf.printf "%-8d %10d %6b %10.2f\n"
           tp.Kernels.Memcpy.tp_burst_beats tp.Kernels.Memcpy.tp_in_flight
           tp.Kernels.Memcpy.tp_tlp tp.Kernels.Memcpy.tp_bandwidth_gbs)

let ablation_trace () =
  header "Extension — structured tracing of a 64 KB memcpy"
    "The lib/trace subsystem threaded through the whole stack: one host\n\
     command becomes a span tree (command -> server ops -> NoC hops ->\n\
     core execution -> Reader/Writer streams -> AXI bursts -> DRAM),\n\
     with performance counters and latency quantiles on the side. Same\n\
     seed, byte-identical sinks; tracer off, zero recording.";
  let run ?tracer () =
    Kernels.Memcpy.run ?tracer ~seed:11 ~impl:Kernels.Memcpy.Beethoven
      ~bytes:(64 * 1024) ~platform:f1_one_channel ()
  in
  let tracer = Trace.create () in
  let r = run ~tracer () in
  assert r.Kernels.Memcpy.verified;
  (match Trace.check tracer with
  | [] -> ()
  | problems ->
      List.iter (Printf.printf "trace check: %s\n") problems;
      failwith "trace well-formedness check failed");
  print_string (Trace.profile tracer);
  print_newline ();
  print_string (Trace.axi_timeline tracer);
  (* host-side cost of recording: the same simulation, tracer off vs on *)
  let time f =
    let t0 = Sys.time () in
    ignore (f ());
    Sys.time () -. t0
  in
  let t_off = time (fun () -> run ()) in
  let t_on = time (fun () -> run ~tracer:(Trace.create ()) ()) in
  Printf.printf
    "\nhost cost of recording: %.1f ms untraced, %.1f ms traced\n\
     (identical simulated timing either way: the tracer only observes)\n"
    (t_off *. 1000.) (t_on *. 1000.)

let ablation_serve () =
  header "Serving — throughput-latency saturation curve (memcpy, AWS F1)"
    "The lib/serve stack under an offered-load sweep: open-loop Poisson\n\
     clients issuing 16 KB memcpys at increasing rates. Expected shape:\n\
     achieved tracks offered until the runtime server and cores saturate,\n\
     then p99 explodes from queue-wait and admission control sheds the\n\
     excess — the Fig. 6 contention gap as a latency curve.";
  print_string
    (Serve.render_saturation
       (Serve.saturation ~seed:42 ~bytes:(16 * 1024) ~clients:8
          ~duration_ps:400_000_000 ~platform:f1_one_channel
          ~rates_rps:[ 50_000.; 100_000.; 200_000.; 400_000.; 800_000. ]
          ()));
  Printf.printf
    "\ntwo-tenant weighted fairness (both backlogged, weights 1:3):\n";
  let tenant name weight =
    Serve.Tenant.make ~name ~weight ~clients:6
      ~mix:[ Serve.Mix.memcpy ~bytes:(16 * 1024) () ]
      ~load:(Serve.Tenant.Closed_loop { think_ps = 0 })
      ()
  in
  let cfg =
    Serve.config ~seed:42 ~duration_ps:400_000_000 ~n_cores:2 ~core_cap:2
      ~tenants:[ tenant "light" 1.0; tenant "heavy" 3.0 ]
      ()
  in
  let r = Serve.run ~platform:f1_one_channel cfg () in
  assert (Serve.conserved r);
  List.iter
    (fun t ->
      Printf.printf "  %-6s weight %.0f: %5d completed, %8d KB served\n"
        t.Serve.tr_name t.Serve.tr_weight t.Serve.tr_completed
        (t.Serve.tr_bytes_served / 1024))
    r.Serve.r_tenants

(* ------------------------------------------------------------------ *)
(* sim-speed: interpreter (Hw.Cyclesim) vs compiled (Hw.Compile)       *)
(* throughput on the same designs. Both entries and the speedup ratio  *)
(* are archived to BENCH_simspeed.json so re-anchors can see the       *)
(* trajectory; the run fails if the compiled backend drops below 10x   *)
(* the interpreter on a3-rtl (the acceptance bar for the backend).     *)
(* ------------------------------------------------------------------ *)

let simspeed_designs () =
  let kernel_of (config : Beethoven.Config.t) =
    match
      List.filter_map
        (fun s -> s.Beethoven.Config.kernel_circuit)
        config.Beethoven.Config.systems
    with
    | c :: _ -> c
    | [] -> failwith "simspeed: design has no RTL-DSL kernel"
  in
  let deep =
    let open Hw.Signal in
    let x = input "x" 32 in
    let acc = ref x in
    for _ = 1 to 256 do
      acc := !acc +: x
    done;
    Hw.Circuit.create ~name:"adder-chain-256" ~outputs:[ ("o", !acc) ]
  in
  [
    ("a3-rtl", kernel_of (Attention.A3_rtl_core.config ~n_cores:1 ()));
    ("vecadd-rtl", kernel_of (Kernels.Vecadd_rtl.config ~n_cores:1 ()));
    ("adder-chain-256", deep);
  ]

let sim_speed () =
  header "sim-speed"
    "RTL simulation throughput, interpreter vs compiled backend (cycles/sec)";
  let cycles = 5_000 in
  let time_backend backend c =
    let sim = Hw.Sim.create ~backend c in
    (* settle once so create/first-evaluation cost is off the clock *)
    Hw.Sim.settle sim;
    let t0 = Sys.time () in
    for _ = 1 to cycles do
      Hw.Sim.step sim
    done;
    let dt = Float.max (Sys.time () -. t0) 1e-6 in
    (dt, float_of_int cycles /. dt)
  in
  (* short untimed lockstep sanity pass: the speedup is only meaningful
     if the two backends still agree on the benchmarked designs *)
  let lockstep_ok c =
    let si = Hw.Sim.create ~backend:Hw.Sim.Interpreter c in
    let sc = Hw.Sim.create ~backend:Hw.Sim.Compiled c in
    let st = Random.State.make [| 17 |] in
    let ok = ref true in
    for _ = 1 to 100 do
      List.iter
        (fun (n, w) ->
          let rec chunks w =
            if w <= 16 then
              [ Bits.of_int ~width:w (Random.State.int st (1 lsl w)) ]
            else
              Bits.of_int ~width:16 (Random.State.int st 65536)
              :: chunks (w - 16)
          in
          let v = Bits.concat_list (chunks w) in
          Hw.Sim.set_input si n v;
          Hw.Sim.set_input sc n v)
        (Hw.Circuit.inputs c);
      List.iter
        (fun (n, _) ->
          if not (Bits.equal (Hw.Sim.output si n) (Hw.Sim.output sc n)) then
            ok := false)
        (Hw.Circuit.outputs c);
      Hw.Sim.step si;
      Hw.Sim.step sc
    done;
    !ok
  in
  let rows =
    List.map
      (fun (name, c) ->
        let lv = Hw.Levelize.of_circuit c in
        if not (lockstep_ok c) then
          failwith (Printf.sprintf "sim-speed: backends diverge on %s" name);
        let dt_i, cps_i = time_backend Hw.Sim.Interpreter c in
        let dt_c, cps_c = time_backend Hw.Sim.Compiled c in
        let speedup = cps_c /. cps_i in
        Printf.printf
          "  %-18s %5d node(s), depth %3d: %10.0f -> %10.0f cycles/sec \
           (%.1fx)\n"
          name (Hw.Levelize.n_nodes lv) (Hw.Levelize.comb_depth lv) cps_i cps_c
          speedup;
        ( name,
          Hw.Levelize.n_nodes lv,
          Hw.Levelize.comb_depth lv,
          [ ("interpreter", dt_i, cps_i); ("compiled", dt_c, cps_c) ],
          speedup ))
      (simspeed_designs ())
  in
  let oc = open_out "BENCH_simspeed.json" in
  output_string oc "{\"experiment\":\"sim-speed\",\"designs\":[";
  List.iteri
    (fun i (name, nodes, depth, backends, speedup) ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "{\"design\":\"%s\",\"nodes\":%d,\"comb_depth\":%d,\"cycles\":%d,\"backends\":["
        name nodes depth cycles;
      List.iteri
        (fun j (backend, dt, cps) ->
          if j > 0 then output_string oc ",";
          Printf.fprintf oc
            "{\"backend\":\"%s\",\"seconds\":%.6f,\"cycles_per_sec\":%.0f}"
            backend dt cps)
        backends;
      Printf.fprintf oc "],\"speedup\":%.2f}" speedup)
    rows;
  output_string oc "]}\n";
  close_out oc;
  Printf.printf "  archived to BENCH_simspeed.json\n";
  let a3_speedup =
    List.find_map
      (fun (name, _, _, _, s) -> if name = "a3-rtl" then Some s else None)
      rows
  in
  match a3_speedup with
  | Some s when s < 10.0 ->
      failwith
        (Printf.sprintf
           "sim-speed: compiled backend is only %.1fx the interpreter on \
            a3-rtl (need >= 10x)"
           s)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* tune: the closed-loop autotuner. The Pareto front and the           *)
(* elaboration-cache hit/miss counts are archived to BENCH_tune.json;  *)
(* the run fails unless the final incumbent dominates the conservative *)
(* seed knobs on throughput or p99 without regressing the other (1%    *)
(* tolerance) — the acceptance bar for the search.                     *)
(* ------------------------------------------------------------------ *)

let tune () =
  header "tune"
    "Closed-loop autotuning: a measured one-knob search over the serving\n\
     SoC (memory channels, prefetch depth, cores, batching, per-core cap)\n\
     through the content-hashed elaboration cache, A/B-promoting only on\n\
     paired wins under byte-identical offered load.";
  let r = Tune.run ~seed:42 ~budget:6 () in
  print_string (Tune.render r);
  let oc = open_out "BENCH_tune.json" in
  output_string oc (Tune.pareto_json r);
  close_out oc;
  Printf.printf "  archived to BENCH_tune.json\n";
  (match r.Tune.r_violations with
  | [] -> ()
  | v :: _ -> failwith ("tune: accounting violation: " ^ v));
  let score c =
    match c.Tune.ca_outcome with
    | Tune.Evaluated { ev_score; _ } -> ev_score
    | Tune.Infeasible m -> failwith ("tune: unscored candidate: " ^ m)
  in
  let s0 =
    score (List.find (fun c -> c.Tune.ca_id = 0) r.Tune.r_candidates)
  in
  let sb = score r.Tune.r_best in
  let better_rps = sb.Tune.sc_rps > s0.Tune.sc_rps *. 1.01 in
  let better_p99 = sb.Tune.sc_p99_us < s0.Tune.sc_p99_us *. 0.99 in
  let no_worse_rps = sb.Tune.sc_rps >= s0.Tune.sc_rps *. 0.99 in
  let no_worse_p99 = sb.Tune.sc_p99_us <= s0.Tune.sc_p99_us *. 1.01 in
  Printf.printf
    "  tuned vs seed: rps %.1f -> %.1f (%+.1f%%), p99 %.3f -> %.3f us \
     (%+.1f%%)\n"
    s0.Tune.sc_rps sb.Tune.sc_rps
    (100. *. ((sb.Tune.sc_rps /. s0.Tune.sc_rps) -. 1.))
    s0.Tune.sc_p99_us sb.Tune.sc_p99_us
    (100. *. ((sb.Tune.sc_p99_us /. s0.Tune.sc_p99_us) -. 1.));
  if not ((better_rps && no_worse_p99) || (better_p99 && no_worse_rps)) then
    failwith
      "tune: the tuned configuration does not dominate the seed knobs \
       (need a >1% win on throughput or p99 without regressing the other)"

(* ------------------------------------------------------------------ *)
(* Bechamel timing of the experiment kernels                           *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let test_of name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"experiments"
      [
        test_of "fig4:memcpy-64KB" (fun () ->
            ignore
              (Kernels.Memcpy.run ~impl:Kernels.Memcpy.Beethoven
                 ~bytes:(64 * 1024) ~platform:f1_one_channel ()));
        test_of "fig5:trace-4KB" (fun () ->
            let trace = Axi.Trace.create () in
            ignore
              (Kernels.Memcpy.run ~trace ~impl:Kernels.Memcpy.Hls ~bytes:4096
                 ~platform:f1_one_channel ()));
        test_of "fig6:nw-1core" (fun () ->
            ignore (MS.run MS.Nw ~rounds:1 ~n_cores:1 ~platform:f1_125mhz ()));
        test_of "fig7:a3-fixed-head" (fun () ->
            let q = Array.make Attention.A3.dim 3 in
            let rows =
              Array.make_matrix Attention.A3.n_keys Attention.A3.dim 2
            in
            ignore
              (Attention.A3.attend_fixed ~query:q ~keys:rows ~values:rows));
        test_of "fig8+table2:elaborate-a3" (fun () -> ignore (a3_design ()));
        test_of "table3:a3-2core-batch" (fun () ->
            ignore
              (Attention.Accel.run ~n_queries_per_core:16 ~n_cores:2
                 ~platform:D.aws_f1 ()));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ t ] -> Printf.printf "%-36s %14.0f ns/run\n" name t
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("table1", table1);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table2", table2);
    ("table3", table3);
    ("ablation-noc", ablation_noc);
    ("ablation-spill", ablation_spill);
    ("ablation-prefetch", ablation_prefetch);
    ("ablation-a3-cores", ablation_a3_cores);
    ("ablation-refresh", ablation_refresh);
    ("ablation-dse", ablation_dse);
    ("fault", ablation_fault);
    ("extra-kernels", ablation_extra_kernels);
    ("a3-rtl", ablation_a3_rtl);
    ("trace", ablation_trace);
    ("serve", ablation_serve);
    ("sim-speed", sim_speed);
    ("tune", tune);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--bechamel" ] -> bechamel ()
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" n
                (String.concat ", " (List.map fst experiments)))
        names
