(* beethoven_gen — elaborate a bundled accelerator configuration for a
   target platform and emit the generated artifacts (summary, Table-II
   style resource report, floorplan constraints, C++ bindings, Verilog
   for RTL-DSL kernels, ASIC SRAM plans), or run the static analyzer
   over bundled designs.

     dune exec bin/beethoven_gen.exe -- --design a3 --platform f1 --emit all
     dune exec bin/beethoven_gen.exe -- lint --design all --platform f1
*)

open Cmdliner

let designs =
  [
    ("vecadd", fun n -> Kernels.Vecadd.config ~n_cores:n ());
    ("memcpy", fun _ -> Kernels.Memcpy.config Kernels.Memcpy.Beethoven);
    ("a3", fun n -> Attention.Accel.config ~n_cores:n ());
    ("a3-rtl", fun n -> Attention.A3_rtl_core.config ~n_cores:n ());
    ("vecadd-rtl", fun n -> Kernels.Vecadd_rtl.config ~n_cores:n ());
    ("nw", fun n -> Kernels.Machsuite.(config Nw ~n_cores:n));
    ("gemm", fun n -> Kernels.Machsuite.(config Gemm ~n_cores:n));
    ("stencil2d", fun n -> Kernels.Machsuite.(config Stencil2d ~n_cores:n));
    ("stencil3d", fun n -> Kernels.Machsuite.(config Stencil3d ~n_cores:n));
    ("mdknn", fun n -> Kernels.Machsuite.(config Md_knn ~n_cores:n));
    ("fft", fun n -> Kernels.Machsuite_extra.(config Fft ~n_cores:n));
    ("spmv", fun n -> Kernels.Machsuite_extra.(config Spmv ~n_cores:n));
    ("kmp", fun n -> Kernels.Machsuite_extra.(config Kmp ~n_cores:n));
    ("msort", fun n -> Kernels.Machsuite_extra.(config Merge_sort ~n_cores:n));
  ]

let platforms =
  [
    ("f1", Platform.Device.aws_f1);
    ("kria", Platform.Device.kria);
    ("asap7", Platform.Device.asap7);
    ("chipkit", Platform.Device.chipkit);
    ("saed32", Platform.Device.saed32);
    ("sim", Platform.Device.sim);
  ]

let emits = [ "summary"; "resources"; "constraints"; "cpp"; "verilog"; "sram"; "all" ]

let run design platform n_cores emit out_dir =
  let config_of =
    match List.assoc_opt design designs with
    | Some f -> f
    | None ->
        Printf.eprintf "unknown design %S (available: %s)\n" design
          (String.concat ", " (List.map fst designs));
        exit 2
  in
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  let config = config_of n_cores in
  let d =
    try Beethoven.Elaborate.elaborate config plat
    with Failure msg ->
      Printf.eprintf "elaboration failed: %s\n" msg;
      exit 1
  in
  let wants what = emit = "all" || emit = what in
  let output name content =
    match out_dir with
    | None ->
        Printf.printf "--- %s ---\n%s\n" name content
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        Printf.printf "wrote %s\n" path
  in
  if wants "summary" then output "summary.txt" (Beethoven.Elaborate.summary d);
  if wants "resources" then
    output "resources.txt" (Beethoven.Elaborate.resource_table d);
  if wants "constraints" then
    output "constraints.xdc" (Beethoven.Elaborate.constraints d);
  if wants "cpp" then begin
    output
      (config.Beethoven.Config.acc_name ^ "_bindings.h")
      (Beethoven.Elaborate.cpp_header d);
    output
      (config.Beethoven.Config.acc_name ^ "_bindings.cc")
      (Beethoven.Elaborate.cpp_stubs d)
  end;
  if wants "verilog" then begin
    List.iter
      (fun (sys, v) -> output (sys ^ "_core.v") v)
      (Beethoven.Elaborate.verilog d);
    output "beethoven_top.v" (Beethoven.Top_verilog.generate d)
  end;
  if wants "sram" then begin
    match d.Beethoven.Elaborate.sram_plans with
    | [] -> if emit = "sram" then print_endline "(no ASIC SRAM plans: FPGA platform)"
    | plans ->
        output "sram_plan.txt"
          (String.concat "\n"
             (List.map
                (fun (n, p) ->
                  Printf.sprintf "%s: %s" n (Platform.Sram.describe p))
                plans))
  end

(* ---- lint subcommand: run Check/Lint over bundled designs ---- *)

let lint design platform n_cores json format werror waived =
  let json =
    match format with
    | "json" -> true
    | "text" -> json
    | other ->
        Printf.eprintf "unknown format %S (text, json)\n" other;
        exit 2
  in
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  let selected =
    if design = "all" then designs
    else
      match List.assoc_opt design designs with
      | Some f -> [ (design, f) ]
      | None ->
          Printf.eprintf "unknown design %S (available: all, %s)\n" design
            (String.concat ", " (List.map fst designs));
          exit 2
  in
  let diags =
    List.concat_map
      (fun (name, config_of) ->
        match config_of n_cores with
        | config ->
            List.map
              (fun (d : Hw.Diag.t) ->
                let loc =
                  match d.Hw.Diag.loc with
                  | Some l -> name ^ ": " ^ l
                  | None -> name
                in
                { d with Hw.Diag.loc = Some loc })
              (Beethoven.Check.run config plat)
        | exception (Failure m | Invalid_argument m) ->
            [
              Hw.Diag.make ~loc:name ~rule:"drc-config"
                ~severity:Hw.Diag.Error
                ("configuration failed to construct: " ^ m);
            ])
      selected
  in
  let diags = Hw.Diag.waive ~rules:waived diags in
  let diags = if werror then Hw.Diag.promote_warnings diags else diags in
  let diags = Hw.Diag.sort diags in
  if json then print_endline (Hw.Diag.render_json diags)
  else print_endline (Hw.Diag.render diags);
  if Hw.Diag.has_errors diags then exit 1

let design_arg =
  let doc = "Bundled design to elaborate: " ^ String.concat ", " (List.map fst designs) in
  Arg.(value & opt string "vecadd" & info [ "design"; "d" ] ~docv:"NAME" ~doc)

let platform_arg =
  let doc = "Target platform: " ^ String.concat ", " (List.map fst platforms) in
  Arg.(value & opt string "f1" & info [ "platform"; "p" ] ~docv:"NAME" ~doc)

let cores_arg =
  let doc = "Number of accelerator cores per system." in
  Arg.(value & opt int 1 & info [ "cores"; "n" ] ~docv:"N" ~doc)

let emit_arg =
  let doc = "Artifact to emit: " ^ String.concat ", " emits in
  Arg.(value & opt string "summary" & info [ "emit"; "e" ] ~docv:"WHAT" ~doc)

let out_arg =
  let doc = "Write artifacts into this directory instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)

let lint_design_arg =
  let doc =
    "Design to lint, or $(b,all): "
    ^ String.concat ", " (List.map fst designs)
  in
  Arg.(value & opt string "all" & info [ "design"; "d" ] ~docv:"NAME" ~doc)

let json_arg =
  let doc = "Emit diagnostics as JSON instead of text (same as $(b,--format json))." in
  Arg.(value & flag & info [ "json" ] ~doc)

let diag_format_arg =
  let doc = "Output format: $(b,text) or $(b,json) (machine-readable, one \
             object per diagnostic with rule/severity/loc/message/hint)." in
  Arg.(value & opt string "text" & info [ "format"; "f" ] ~docv:"FMT" ~doc)

let werror_arg =
  let doc = "Treat warnings as errors." in
  Arg.(value & flag & info [ "werror"; "Werror" ] ~doc)

let waive_arg =
  let doc = "Suppress a rule by id (repeatable), e.g. $(b,--waive async-read-mapping)." in
  Arg.(value & opt_all string [] & info [ "waive"; "w" ] ~docv:"RULE" ~doc)

(* ---- sta subcommand: static timing over bundled RTL-DSL kernels ---- *)

let sta_run design platform n_cores model format =
  let model =
    match model with
    | "unit" -> Hw.Sta.Unit
    | "typical" -> Hw.Sta.Typical
    | other ->
        Printf.eprintf "unknown delay model %S (unit, typical)\n" other;
        exit 2
  in
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  let selected =
    if design = "all" then designs
    else
      match List.assoc_opt design designs with
      | Some f -> [ (design, f) ]
      | None ->
          Printf.eprintf "unknown design %S (available: all, %s)\n" design
            (String.concat ", " (List.map fst designs));
          exit 2
  in
  let tax = plat.Platform.Device.noc.Noc.Params.slr_crossing_latency_cycles in
  let per_design =
    List.map
      (fun (name, config_of) ->
        let config = config_of n_cores in
        let reports =
          List.map
            (fun (sys, c) ->
              (sys, Hw.Sta.of_circuit ~model c))
            (List.filter_map
               (fun (s : Beethoven.Config.system) ->
                 Option.map
                   (fun c -> (s.Beethoven.Config.sys_name, c))
                   s.Beethoven.Config.kernel_circuit)
               config.Beethoven.Config.systems)
        in
        (name, reports))
      selected
  in
  match format with
  | "json" ->
      let design_json (name, reports) =
        Printf.sprintf "{\"design\":\"%s\",\"systems\":[%s]}" name
          (String.concat ","
             (List.map
                (fun (sys, r) ->
                  Printf.sprintf "{\"system\":\"%s\",\"sta\":%s}" sys
                    (Hw.Sta.to_json r))
                reports))
      in
      Printf.printf
        "{\"platform\":\"%s\",\"slr_crossing_tax\":%d,\"budget\":%d,\"designs\":[%s]}\n"
        platform tax Beethoven.Check.default_sta_budget
        (String.concat "," (List.map design_json per_design))
  | "text" ->
      List.iter
        (fun (name, reports) ->
          match reports with
          | [] -> Printf.printf "%s: no RTL-DSL kernels\n" name
          | _ ->
              Printf.printf "%s:\n" name;
              List.iter
                (fun (sys, r) ->
                  Printf.printf "%s"
                    (Hw.Sta.render { r with Hw.Sta.r_circuit = sys ^ "/" ^ r.Hw.Sta.r_circuit }))
                reports)
        per_design;
      Printf.printf
        "(budget %d, SLR-crossing tax %d on %s; drc-sta-slr-path enforces \
         budget - tax x crossings per placed core)\n"
        Beethoven.Check.default_sta_budget tax platform
  | other ->
      Printf.eprintf "unknown format %S (text, json)\n" other;
      exit 2

let sta_design_arg =
  let doc =
    "Design to analyze, or $(b,all): "
    ^ String.concat ", " (List.map fst designs)
  in
  Arg.(value & opt string "all" & info [ "design"; "d" ] ~docv:"NAME" ~doc)

let sta_model_arg =
  let doc =
    "Delay model: $(b,typical) (per-primitive-kind delays) or $(b,unit) \
     (every primitive costs 1, so max delay = combinational depth)."
  in
  Arg.(value & opt string "typical" & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

let exit_status_man =
  [
    `S Manpage.s_exit_status;
    `P "$(b,0) on a clean run (no error-severity diagnostics).";
    `P "$(b,1) when any error-severity diagnostic remains after waivers.";
    `P "$(b,2) on usage errors: unknown design, platform, format or model.";
  ]

let sta_cmd =
  let doc = "static timing analysis over bundled RTL-DSL kernels" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Levelizes every RTL-DSL kernel circuit of the selected bundled \
         design(s) ($(b,Hw.Levelize)) and reports the $(b,Hw.Sta) \
         estimate: combinational depth, worst path under the chosen delay \
         model (per-node kinds and arrival times), per-output depth table \
         and fanout hotspots. $(b,--format json) emits one stable line of \
         JSON (schema shared with $(b,lint --format json)) suitable for \
         byte-comparison across runs; the $(b,@sta) dune alias does \
         exactly that. The same estimate, taxed with the platform's \
         SLR-crossing penalty for cores placed off the shell die, is \
         enforced as the $(b,drc-sta-slr-path) design rule by $(b,lint).";
    ]
    @ exit_status_man
  in
  Cmd.v
    (Cmd.info "sta" ~doc ~man)
    Term.(
      const sta_run $ sta_design_arg $ platform_arg $ cores_arg $ sta_model_arg
      $ diag_format_arg)

(* ---- fault-campaign subcommand: seeded fault injection on memcpy ---- *)

let fault_campaign seed bytes iters cores platform hang scale curve show_log =
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  if curve then begin
    print_string
      (Kernels.Campaign.render_curve
         (Kernels.Campaign.degradation ~seed ~bytes ~iters ~platform:plat ()))
  end
  else begin
    let plan =
      Fault.Plan.scale scale (Fault.Plan.default_recoverable ~seed ())
    in
    let plan =
      if hang then Fault.Plan.with_hang ~after:1 ~system:0 ~core:0 plan
      else plan
    in
    let r =
      Kernels.Campaign.run ~plan ~bytes ~iters ~n_cores:cores ~platform:plat ()
    in
    print_string (Kernels.Campaign.render r);
    if show_log then
      print_string (Fault.Log.render r.Kernels.Campaign.log);
    (* gate for CI: every injected fault resolved, every byte verified *)
    if not (Kernels.Campaign.clean r) then exit 1
  end

let seed_arg =
  let doc = "Campaign seed. The same seed reproduces the same fault log." in
  Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"N" ~doc)

let bytes_arg =
  let doc = "Payload size per memcpy round-trip, in bytes (8-aligned)." in
  Arg.(value & opt int (64 * 1024) & info [ "bytes"; "b" ] ~docv:"N" ~doc)

let iters_arg =
  let doc = "Number of memcpy round-trips in the campaign." in
  Arg.(value & opt int 4 & info [ "iters"; "i" ] ~docv:"N" ~doc)

let campaign_cores_arg =
  let doc =
    "Cores in the memcpy system (>= 2 lets the watchdog reroute after a \
     quarantine)."
  in
  Arg.(value & opt int 2 & info [ "cores"; "n" ] ~docv:"N" ~doc)

let hang_arg =
  let doc =
    "Additionally hang core 0 at its first command dispatch, exercising \
     the timeout -> quarantine -> reroute path."
  in
  Arg.(value & flag & info [ "hang" ] ~doc)

let scale_arg =
  let doc = "Multiply every fault rate in the default mix by this factor." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"X" ~doc)

let curve_arg =
  let doc =
    "Run the throughput-degradation curve (fault rates x0 to x4) instead \
     of a single campaign."
  in
  Arg.(value & flag & info [ "curve" ] ~doc)

let log_arg =
  let doc = "Print the full chronological fault log." in
  Arg.(value & flag & info [ "log" ] ~doc)

let fault_cmd =
  let doc = "run a seeded fault-injection campaign on the memcpy kernel" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays the memcpy microbenchmark through the full host path \
         (malloc, DMA, command, response, DMA, verification) while a \
         deterministic injector flips DRAM bits, errors AXI bursts, \
         drops and delays fabric messages, fails DMA transfers, and \
         (with $(b,--hang)) wedges a core. Exits 1 unless every injected \
         fault was recovered and every byte verified.";
    ]
  in
  Cmd.v
    (Cmd.info "fault-campaign" ~doc ~man)
    Term.(
      const fault_campaign $ seed_arg $ bytes_arg $ iters_arg
      $ campaign_cores_arg $ platform_arg $ hang_arg $ scale_arg $ curve_arg
      $ log_arg)

(* ---- trace subcommand: traced memcpy with structured sinks ---- *)

let trace_run seed bytes platform format out =
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  if bytes mod 8 <> 0 || bytes <= 0 then begin
    Printf.eprintf "trace: bytes must be positive and 8-aligned\n";
    exit 2
  end;
  let tracer = Trace.create () in
  let r =
    Kernels.Memcpy.run ~tracer ~seed ~impl:Kernels.Memcpy.Beethoven ~bytes
      ~platform:plat ()
  in
  let problems = Trace.check tracer in
  List.iter (fun p -> Printf.eprintf "trace check: %s\n" p) problems;
  let read_bytes = Trace.counter_value tracer "ddr0.read_bytes" in
  let failures =
    List.filter_map
      (fun (bad, msg) -> if bad then Some msg else None)
      [
        (not r.Kernels.Memcpy.verified, "data verification failed");
        (problems <> [], "trace well-formedness check failed");
        (Trace.span_count tracer = 0, "no spans recorded");
        ( read_bytes < bytes,
          Printf.sprintf "ddr0.read_bytes %d < payload %d" read_bytes bytes );
      ]
  in
  let render = function
    | "chrome" -> Trace.to_chrome_json tracer
    | "profile" -> Trace.profile tracer
    | "timeline" -> Trace.axi_timeline tracer
    | _ -> assert false
  in
  let content =
    match format with
    | "chrome" | "profile" | "timeline" -> render format
    | "all" ->
        String.concat "\n"
          (List.map
             (fun f -> Printf.sprintf "--- %s ---\n%s" f (render f))
             [ "profile"; "timeline"; "chrome" ])
    | other ->
        Printf.eprintf "unknown format %S (chrome, profile, timeline, all)\n"
          other;
        exit 2
  in
  (match out with
  | None -> print_string content
  | Some path ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      (* keep stdout clean for --format chrome redirection *)
      Printf.eprintf "wrote %s\n" path);
  if failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "trace: %s\n" m) failures;
    exit 1
  end

let format_arg =
  let doc = "Sink to emit: chrome, profile, timeline, all." in
  Arg.(value & opt string "profile" & info [ "format"; "f" ] ~docv:"FMT" ~doc)

let trace_out_arg =
  let doc = "Write the sink output to this file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let trace_cmd =
  let doc = "run a traced memcpy and emit structured trace sinks" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the memcpy microbenchmark with the structured tracer \
         threaded through the whole stack (runtime server, command NoC, \
         core execution, Readers/Writers, AXI, DRAM), validates the span \
         tree, and emits the chosen sink: $(b,chrome) (trace-event JSON \
         for chrome://tracing or Perfetto), $(b,profile) (per-kernel \
         phase/counter/quantile report), $(b,timeline) (ASCII AXI lane \
         view, the Fig. 5 shape), or $(b,all). The same seed produces \
         byte-identical output. Exits 1 if verification, the \
         well-formedness check, or the traffic cross-check fails.";
    ]
  in
  Cmd.v
    (Cmd.info "trace" ~doc ~man)
    Term.(
      const trace_run $ seed_arg $ bytes_arg $ platform_arg $ format_arg
      $ trace_out_arg)

(* ---- sim subcommand: step RTL-DSL kernels, or lockstep both backends ---- *)

let sim_run design backend cycles seed n_cores =
  let mode =
    match backend with
    | "both" -> `Both
    | s -> (
        match Hw.Sim.backend_of_string s with
        | Some b -> `One b
        | None ->
            Printf.eprintf "unknown backend %S (interpreter, compiled, both)\n"
              s;
            exit 2)
  in
  if cycles < 1 then begin
    Printf.eprintf "sim: cycles must be >= 1\n";
    exit 2
  end;
  let selected =
    if design = "all" then designs
    else
      match List.assoc_opt design designs with
      | Some f -> [ (design, f) ]
      | None ->
          Printf.eprintf "unknown design %S (available: all, %s)\n" design
            (String.concat ", " (List.map fst designs));
          exit 2
  in
  let kernels =
    List.concat_map
      (fun (name, config_of) ->
        let config = config_of n_cores in
        List.filter_map
          (fun (s : Beethoven.Config.system) ->
            Option.map
              (fun c -> (name ^ "/" ^ s.Beethoven.Config.sys_name, c))
              s.Beethoven.Config.kernel_circuit)
          config.Beethoven.Config.systems)
      selected
  in
  if kernels = [] then begin
    Printf.eprintf "sim: no RTL-DSL kernels in the selected design(s)\n";
    exit 2
  end;
  let random_bits st w =
    let rec chunks w =
      if w <= 16 then [ Bits.of_int ~width:w (Random.State.int st (1 lsl w)) ]
      else Bits.of_int ~width:16 (Random.State.int st 65536) :: chunks (w - 16)
    in
    Bits.concat_list (chunks w)
  in
  let fold_digest d b =
    String.fold_left
      (fun d c -> ((d * 33) + Char.code c) land 0x3fffffff)
      d (Bits.to_hex_string b)
  in
  let diverged = ref false in
  List.iter
    (fun (label, c) ->
      let st = Random.State.make [| seed |] in
      match mode with
      | `One b ->
          (* seeded random stimulus; the output digest is backend-stable,
             so the same invocation with the other backend must print the
             same digest *)
          let sim = Hw.Sim.create ~backend:b c in
          let digest = ref 5381 in
          for _ = 1 to cycles do
            List.iter
              (fun (n, w) -> Hw.Sim.set_input sim n (random_bits st w))
              (Hw.Circuit.inputs c);
            List.iter
              (fun (n, _) -> digest := fold_digest !digest (Hw.Sim.output sim n))
              (Hw.Circuit.outputs c);
            Hw.Sim.step sim
          done;
          Printf.printf "  %-28s %-11s %5d cycles, output digest %08x\n" label
            (Hw.Sim.backend_name b) cycles !digest
      | `Both ->
          let si = Hw.Sim.create ~backend:Hw.Sim.Interpreter c in
          let sc = Hw.Sim.create ~backend:Hw.Sim.Compiled c in
          let bad = ref None in
          (try
             for cyc = 1 to cycles do
               List.iter
                 (fun (n, w) ->
                   let v = random_bits st w in
                   Hw.Sim.set_input si n v;
                   Hw.Sim.set_input sc n v)
                 (Hw.Circuit.inputs c);
               List.iter
                 (fun (n, _) ->
                   if not (Bits.equal (Hw.Sim.output si n) (Hw.Sim.output sc n))
                   then begin
                     bad := Some (Printf.sprintf "cycle %d, output %s" cyc n);
                     raise Exit
                   end)
                 (Hw.Circuit.outputs c);
               List.iter
                 (fun m ->
                   for a = 0 to Hw.Signal.mem_size m - 1 do
                     if
                       not
                         (Bits.equal
                            (Hw.Sim.read_memory si m a)
                            (Hw.Sim.read_memory sc m a))
                     then begin
                       bad :=
                         Some
                           (Printf.sprintf "cycle %d, memory %s[%d]" cyc
                              (Hw.Signal.mem_name m) a);
                       raise Exit
                     end
                   done)
                 (Hw.Circuit.memories c);
               Hw.Sim.step si;
               Hw.Sim.step sc
             done
           with Exit -> ());
          (match !bad with
          | None ->
              Printf.printf "  %-28s lockstep OK: %d cycles, %d outputs, %d \
                             memory words compared\n"
                label cycles
                (List.length (Hw.Circuit.outputs c))
                (List.fold_left
                   (fun acc m -> acc + Hw.Signal.mem_size m)
                   0 (Hw.Circuit.memories c))
          | Some where ->
              diverged := true;
              Printf.printf "  %-28s DIVERGED at %s\n" label where))
    kernels;
  if !diverged then exit 1

let sim_design_arg =
  let doc =
    "Design whose RTL-DSL kernels to simulate, or $(b,all): "
    ^ String.concat ", " (List.map fst designs)
  in
  Arg.(value & opt string "all" & info [ "design"; "d" ] ~docv:"NAME" ~doc)

let sim_backend_arg =
  let doc =
    "Simulation backend: $(b,interpreter) (Hw.Cyclesim), $(b,compiled) \
     (Hw.Compile) or $(b,both) (run the two in lockstep and compare every \
     output and every memory word each cycle)."
  in
  Arg.(value & opt string "both" & info [ "backend" ] ~docv:"NAME" ~doc)

let sim_cycles_arg =
  let doc = "Number of cycles of seeded random stimulus." in
  Arg.(value & opt int 64 & info [ "cycles" ] ~docv:"N" ~doc)

let sim_cmd =
  let doc = "simulate bundled RTL-DSL kernels (interpreter, compiled, or both)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives every RTL-DSL kernel circuit of the selected bundled \
         design(s) with seeded random stimulus. With $(b,--backend \
         interpreter) or $(b,compiled) it steps that backend and prints a \
         backend-stable digest of every output on every cycle (the two \
         backends must print the same digest for the same seed). With \
         $(b,--backend both) (the default, and what the $(b,@simspeed) \
         dune alias gates on) it runs both backends in lockstep and exits \
         1 on the first divergence in any output or backdoor-read memory \
         word. BENCH_simspeed.json archives the throughput of both \
         backends over the same designs (bench sim-speed).";
    ]
    @ exit_status_man
  in
  Cmd.v
    (Cmd.info "sim" ~doc ~man)
    Term.(
      const sim_run $ sim_design_arg $ sim_backend_arg $ sim_cycles_arg
      $ seed_arg $ cores_arg)

(* ---- serve subcommand: multi-tenant serving campaign ---- *)

let serve_run seed n_clients n_tenants duration_us policy platform cores batch
    rate think_us hang =
  let policy =
    match Serve.policy_of_name policy with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown policy %S (wfq, fifo)\n" policy;
        exit 2
  in
  let plat =
    match List.assoc_opt platform platforms with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown platform %S (available: %s)\n" platform
          (String.concat ", " (List.map fst platforms));
        exit 2
  in
  if n_tenants < 1 || n_clients < 1 || duration_us < 1 then begin
    Printf.eprintf "serve: tenants, clients and duration must be >= 1\n";
    exit 2
  end;
  (* Alternate open-loop and closed-loop tenants with increasing weights,
     so the default invocation exercises both client models and the
     weighted-fair scheduler. *)
  let tenants =
    List.init n_tenants (fun i ->
        let load =
          if i mod 2 = 0 then Serve.Tenant.open_loop ~rate_rps:rate ()
          else Serve.Tenant.Closed_loop { think_ps = think_us * 1_000_000 }
        in
        Serve.Tenant.make
          ~name:(Printf.sprintf "t%d" i)
          ~weight:(float_of_int (i + 1))
          ~clients:n_clients ~load ())
  in
  let cfg =
    Serve.config ~seed ~duration_ps:(duration_us * 1_000_000) ~policy
      ~n_cores:cores ~batch_max:batch ~tenants ()
  in
  let plan =
    if hang then Some (Fault.Plan.with_hang ~after:1 ~system:0 ~core:0 Fault.Plan.none)
    else None
  in
  let r = Serve.run ?plan ~platform:plat cfg () in
  (* determinism gate: the same seed must reproduce the same campaign,
     down to every counter and quantile in the digest *)
  let r2 = Serve.run ?plan ~platform:plat cfg () in
  print_string (Serve.render r);
  Printf.printf "digest: %s\n" (Serve.digest r);
  let problems = Serve.violations r in
  List.iter (fun p -> Printf.eprintf "serve: accounting: %s\n" p) problems;
  let deterministic = String.equal (Serve.digest r) (Serve.digest r2) in
  if not deterministic then
    Printf.eprintf "serve: NON-DETERMINISTIC: same seed diverged\n";
  if problems <> [] || not deterministic then exit 1

let serve_clients_arg =
  let doc = "Clients per tenant." in
  Arg.(value & opt int 4 & info [ "clients"; "c" ] ~docv:"N" ~doc)

let serve_tenants_arg =
  let doc =
    "Number of tenants (even indices open-loop, odd closed-loop; weight \
     of tenant $(i,i) is $(i,i)+1)."
  in
  Arg.(value & opt int 2 & info [ "tenants"; "t" ] ~docv:"N" ~doc)

let serve_duration_arg =
  let doc = "Arrival-generation horizon, in simulated microseconds." in
  Arg.(value & opt int 1000 & info [ "duration" ] ~docv:"US" ~doc)

let serve_policy_arg =
  let doc = "Dispatch policy: wfq (weighted fair) or fifo." in
  Arg.(value & opt string "wfq" & info [ "policy" ] ~docv:"NAME" ~doc)

let serve_cores_arg =
  let doc = "Cores per deployed system." in
  Arg.(value & opt int 4 & info [ "cores"; "n" ] ~docv:"N" ~doc)

let serve_batch_arg =
  let doc = "Max commands coalesced per runtime-server occupancy." in
  Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc)

let serve_rate_arg =
  let doc = "Open-loop arrival rate per client, requests/second." in
  Arg.(value & opt float 100_000. & info [ "rate" ] ~docv:"RPS" ~doc)

let serve_think_arg =
  let doc = "Closed-loop think time per client, in microseconds." in
  Arg.(value & opt int 20 & info [ "think" ] ~docv:"US" ~doc)

let serve_hang_arg =
  let doc =
    "Hang core 0 of system 0 at its first command: the dispatcher must \
     shed around the quarantine without losing a request."
  in
  Arg.(value & flag & info [ "hang" ] ~doc)

let serve_cmd =
  let doc = "run a multi-tenant serving campaign and print the SLO report" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Deploys the memcpy and vecadd systems side by side, generates \
         deterministic open-loop (Poisson) and closed-loop (think-time) \
         request streams for each tenant, dispatches them weighted-fair \
         with per-server-occupancy batching and least-outstanding-work \
         core sharding, sheds on full queues and passed deadlines, and \
         prints per-tenant offered vs. achieved throughput with the \
         queue-wait / service / collect latency breakdown at \
         p50/p95/p99/p99.9. The campaign is run twice in-process; the \
         run exits 1 if the two digests differ (determinism) or any \
         accounting invariant is violated (conservation, allocator \
         cleanliness, unresolved faults).";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve_run $ seed_arg $ serve_clients_arg $ serve_tenants_arg
      $ serve_duration_arg $ serve_policy_arg $ platform_arg $ serve_cores_arg
      $ serve_batch_arg $ serve_rate_arg $ serve_think_arg $ serve_hang_arg)

(* ---- cluster subcommand: fault-tolerant multi-device serving ---- *)

let cluster_run seed devices warm duration_us rate kills restores curve =
  if devices < 1 || duration_us < 1 then begin
    Printf.eprintf "cluster: devices and duration must be >= 1\n";
    exit 2
  end;
  let duration_ps = duration_us * 1_000_000 in
  if curve then begin
    let pts =
      Cluster.device_loss_curve ~seed ~duration_ps ~rate_rps:rate ~devices ()
    in
    print_string (Cluster.render_loss_curve pts)
  end
  else begin
    let tenants =
      [
        Serve.Tenant.make ~name:"gold" ~weight:3.0 ~clients:4
          ~slo_ps:400_000_000 ~deadline_ps:900_000_000
          ~mix:[ Serve.Mix.memcpy ~bytes:(8 * 1024) () ]
          ~load:(Serve.Tenant.open_loop ~rate_rps:(rate /. 4.) ())
          ();
        Serve.Tenant.make ~name:"bronze" ~weight:1.0 ~clients:2
          ~slo_ps:500_000_000 ~deadline_ps:900_000_000
          ~mix:[ Serve.Mix.vecadd ~bytes:(4 * 1024) () ]
          ~load:(Serve.Tenant.Closed_loop { think_ps = 30_000_000 })
          ();
      ]
    in
    let cfg = Cluster.config ~seed ~duration_ps ~devices ?warm ~tenants () in
    let chaos =
      List.map
        (fun (dev, at_us) -> Cluster.Kill { at = at_us * 1_000_000; dev })
        kills
      @ List.map
          (fun (dev, at_us) -> Cluster.Restore { at = at_us * 1_000_000; dev })
          restores
    in
    let r = Cluster.run ~chaos cfg () in
    (* determinism gate: the same seed must reproduce the same campaign,
       down to every device generation and latency quantile *)
    let r2 = Cluster.run ~chaos cfg () in
    print_string (Cluster.render r);
    Printf.printf "digest: %s\n" (Cluster.digest r);
    let problems = Cluster.violations r in
    List.iter (fun p -> Printf.eprintf "cluster: accounting: %s\n" p) problems;
    if r.Cluster.c_lost_acked <> 0 then
      Printf.eprintf "cluster: %d acknowledged commands lost\n"
        r.Cluster.c_lost_acked;
    (if kills <> [] && r.Cluster.c_quarantines = 0 then
       Printf.eprintf "cluster: a kill was scheduled but nothing quarantined\n");
    let deterministic =
      String.equal (Cluster.digest r) (Cluster.digest r2)
    in
    if not deterministic then
      Printf.eprintf "cluster: NON-DETERMINISTIC: same seed diverged\n";
    if
      problems <> []
      || r.Cluster.c_lost_acked <> 0
      || (kills <> [] && r.Cluster.c_quarantines = 0)
      || not deterministic
    then exit 1
  end

let cluster_devices_arg =
  let doc = "Number of device slots in the fleet." in
  Arg.(value & opt int 4 & info [ "devices"; "d" ] ~docv:"N" ~doc)

let cluster_warm_arg =
  let doc =
    "Warm-pool size: slots beyond this boot as standby spares that the \
     elastic-promotion policy can pull in (default: all warm)."
  in
  Arg.(value & opt (some int) None & info [ "warm" ] ~docv:"N" ~doc)

let cluster_duration_arg =
  let doc = "Arrival-generation horizon, in simulated microseconds." in
  Arg.(value & opt int 600 & info [ "duration" ] ~docv:"US" ~doc)

let cluster_rate_arg =
  let doc = "Aggregate open-loop arrival rate, requests/second." in
  Arg.(value & opt float 30_000. & info [ "rate" ] ~docv:"RPS" ~doc)

let cluster_kill_arg =
  let doc =
    "Kill device $(i,DEV) at $(i,US) simulated microseconds (repeatable): \
     its engine freezes, the heartbeat monitor quarantines it, its \
     tenants drain and re-shard onto survivors."
  in
  Arg.(
    value
    & opt_all (pair ~sep:':' int int) []
    & info [ "kill" ] ~docv:"DEV:US" ~doc)

let cluster_restore_arg =
  let doc =
    "Restore device $(i,DEV) at $(i,US) simulated microseconds \
     (repeatable): a fresh SoC generation boots into the slot as a \
     standby spare."
  in
  Arg.(
    value
    & opt_all (pair ~sep:':' int int) []
    & info [ "restore" ] ~docv:"DEV:US" ~doc)

let cluster_curve_arg =
  let doc =
    "Instead of one campaign, sweep the device-loss degradation curve: \
     kill 0, 1, ... N-1 of the fleet's devices mid-campaign and print \
     achieved throughput and p99 against survivors."
  in
  Arg.(value & flag & info [ "curve" ] ~doc)

let cluster_cmd =
  let doc =
    "serve a multi-tenant workload across a heterogeneous device fleet"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Boots a fleet of simulated devices (AWS F1, Alveo U200 and Kria \
         shells, cycled), homes each tenant on a device by load and \
         locality, and serves the same deterministic request streams the \
         $(b,serve) campaign uses. A seeded heartbeat monitor drives the \
         health state machine (healthy, suspect, quarantined, dead, \
         standby); $(b,--kill) freezes a device so the monitor \
         quarantines it, drains it, and re-shards its tenants onto \
         survivors, replaying unacknowledged commands with bounded \
         backoff — at-least-once delivery with transaction-id \
         deduplication, so no acknowledged command is lost and none \
         applies twice. The campaign is run twice in-process; the run \
         exits 1 if the digests differ, any accounting invariant is \
         violated, an acknowledged command was lost, or a scheduled kill \
         quarantined nothing.";
    ]
  in
  Cmd.v
    (Cmd.info "cluster" ~doc ~man)
    Term.(
      const cluster_run $ seed_arg $ cluster_devices_arg $ cluster_warm_arg
      $ cluster_duration_arg $ cluster_rate_arg $ cluster_kill_arg
      $ cluster_restore_arg $ cluster_curve_arg)

(* ---- scenario subcommand: declarative multi-phase workload graphs ---- *)

let scenario_run name seed list_only format =
  if list_only then
    List.iter
      (fun (n, mk) ->
        let sc = mk ~seed in
        Printf.printf "%-28s %s, %d nodes\n" n
          (match sc.Scenario.sc_backend with
          | Scenario.Single _ -> "single-device"
          | Scenario.Fleet _ -> "fleet")
          (List.length sc.Scenario.sc_nodes))
      Scenario.bundled
  else
    match Scenario.find_bundled name with
    | None ->
        Printf.eprintf "unknown scenario %S (try --list)\n" name;
        exit 2
    | Some mk ->
        (* determinism gate: the same scenario value must reproduce the
           same transcript, entry times and bindings included *)
        let r1 = Scenario.run (mk ~seed) in
        let r2 = Scenario.run (mk ~seed) in
        let t1 = Scenario.transcript_json r1
        and t2 = Scenario.transcript_json r2 in
        print_string (if format = "json" then t1 else Scenario.render r1);
        let deterministic = String.equal t1 t2 in
        if not deterministic then
          Printf.eprintf
            "scenario: NON-DETERMINISTIC: double-run transcripts differ\n";
        List.iter
          (fun f -> Printf.eprintf "scenario: %s\n" f)
          r1.Scenario.res_failures;
        if (not deterministic) || not r1.Scenario.res_ok then exit 1

let scenario_name_arg =
  let doc = "Bundled scenario to run (see $(b,--list))." in
  Arg.(
    value
    & opt string "warmup-ramp-hang-recover"
    & info [ "name" ] ~docv:"NAME" ~doc)

let scenario_list_arg =
  let doc = "List the bundled scenarios and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let scenario_format_arg =
  let doc = "Output format: text (human transcript) or json (byte-comparable)." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let scenario_cmd =
  let doc = "execute a declarative multi-phase workload scenario" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a bundled scenario graph — traffic phases with \
         piecewise-linear rate curves, mid-run fault arming, cluster \
         chaos, bounded loops and assertions over the recorded reports — \
         against a single-device serving session or a device fleet, and \
         prints the per-node transcript (node, entry/exit simulated \
         time, bound variables, verdict). The scenario is executed twice \
         in-process; the run exits 1 if the two transcripts differ \
         byte-for-byte (determinism) or any scenario assertion failed.";
    ]
  in
  Cmd.v
    (Cmd.info "scenario" ~doc ~man)
    Term.(
      const scenario_run $ scenario_name_arg $ seed_arg $ scenario_list_arg
      $ scenario_format_arg)

(* ---- tune subcommand: closed-loop autotuner over composer knobs ---- *)

let tune_run seed budget knobs phase_us ab_rounds require_promotion format =
  let axes =
    if knobs = "all" then Tune.all_axes
    else
      List.map
        (fun n ->
          match Tune.axis_of_name (String.trim n) with
          | Some a -> a
          | None ->
              Printf.eprintf
                "unknown knob %S (try %s)\n" n
                (String.concat ", " (List.map Tune.axis_name Tune.all_axes));
              exit 2)
        (String.split_on_char ',' knobs)
  in
  (match format with
  | "text" | "json" -> ()
  | f ->
      Printf.eprintf "unknown format %S (text or json)\n" f;
      exit 2);
  if budget < 0 || ab_rounds < 1 || phase_us < 1 then begin
    Printf.eprintf "tune: budget must be >= 0, rounds >= 1, phase >= 1 us\n";
    exit 2
  end;
  let phase_ps = phase_us * 1_000_000 in
  (* determinism gate: the same arguments must reproduce the same Pareto
     front, byte for byte *)
  let r1 = Tune.run ~seed ~budget ~axes ~phase_ps ~ab_rounds () in
  let r2 = Tune.run ~seed ~budget ~axes ~phase_ps ~ab_rounds () in
  let j1 = Tune.pareto_json r1 and j2 = Tune.pareto_json r2 in
  print_string (if format = "json" then j1 else Tune.render r1);
  let deterministic = String.equal j1 j2 in
  if not deterministic then
    Printf.eprintf "tune: NON-DETERMINISTIC: double-run Pareto JSON differs\n";
  List.iter
    (fun v -> Printf.eprintf "tune: violation: %s\n" v)
    r1.Tune.r_violations;
  let unpromoted = require_promotion && r1.Tune.r_promotions = 0 in
  if unpromoted then
    Printf.eprintf
      "tune: no candidate was promoted over the seed configuration\n";
  if (not deterministic) || r1.Tune.r_violations <> [] || unpromoted then
    exit 1

let tune_budget_arg =
  let doc = "Number of one-knob proposals the search evaluates." in
  Arg.(value & opt int 6 & info [ "budget" ] ~docv:"N" ~doc)

let tune_knobs_arg =
  let doc =
    "Comma-separated knob axes to search ($(b,cores), $(b,channels), \
     $(b,prefetch), $(b,batch), $(b,core-cap)), or $(b,all)."
  in
  Arg.(value & opt string "all" & info [ "knobs" ] ~docv:"LIST" ~doc)

let tune_phase_arg =
  let doc = "Simulated serving time per A/B phase, in microseconds." in
  Arg.(value & opt int 100 & info [ "phase-us" ] ~docv:"N" ~doc)

let tune_rounds_arg =
  let doc = "Paired A/B phases per incumbent/challenger comparison." in
  Arg.(value & opt int 2 & info [ "rounds" ] ~docv:"N" ~doc)

let tune_promote_arg =
  let doc =
    "Exit 1 unless at least one challenger was promoted over the seed \
     configuration (CI smoke check that the search finds the headroom \
     the conservative baseline leaves)."
  in
  Arg.(value & flag & info [ "require-promotion" ] ~doc)

let tune_cmd =
  let doc = "closed-loop autotuning over the composer's knobs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the seeded $(b,Tune) search: one-knob proposals over the \
         serving SoC's memory channels, prefetch depth, core count, \
         batching cap and per-core bound. Each candidate is pre-filtered \
         by the full composer DRC through a content-hashed elaboration \
         cache ($(b,Beethoven.Elaborate.Cache)) — a one-knob delta only \
         re-elaborates the systems it actually changed — then measured \
         live against the incumbent over interleaved paired serving \
         phases under byte-identical offered load; promotion requires a \
         statistically-ordered win (more paired phases won than lost, \
         p99 not regressed beyond 10%). Prints the candidate table or, \
         with $(b,--format json), the byte-deterministic Pareto front \
         (throughput vs p99 vs peak SLR utilization) plus cache hit/miss \
         counts. The search runs twice in-process; the run exits 1 if \
         the two Pareto JSON documents differ byte-for-byte or any \
         serving accounting violation is recorded.";
    ]
    @ exit_status_man
  in
  Cmd.v
    (Cmd.info "tune" ~doc ~man)
    Term.(
      const tune_run $ seed_arg $ tune_budget_arg $ tune_knobs_arg
      $ tune_phase_arg $ tune_rounds_arg $ tune_promote_arg
      $ scenario_format_arg)

let gen_term =
  Term.(const run $ design_arg $ platform_arg $ cores_arg $ emit_arg $ out_arg)

let lint_cmd =
  let doc = "run the netlist linter and composer design-rule checker" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs $(b,Beethoven.Check) (composer design rules) and \
         $(b,Hw.Lint) (netlist rules, for RTL-DSL kernels) over bundled \
         designs. $(b,--format json) prints the diagnostics as one stable \
         line of JSON (objects with rule/severity/loc/message/hint plus \
         per-severity counts, the same schema $(b,sta --format json) \
         uses).";
      `S "RULES";
      `P
        (String.concat "; "
           (List.map
              (fun (id, sev, why) ->
                Printf.sprintf "$(b,%s) (%s) %s" id
                  (Hw.Diag.severity_name sev)
                  why)
              (Beethoven.Check.rules @ Hw.Lint.rules)));
    ]
    @ exit_status_man
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      const lint $ lint_design_arg $ platform_arg $ cores_arg $ json_arg
      $ diag_format_arg $ werror_arg $ waive_arg)

let cmd =
  let doc = "compose a Beethoven accelerator system and emit its artifacts" in
  let info = Cmd.info "beethoven_gen" ~version:"1.0" ~doc in
  Cmd.group ~default:gen_term info
    [
      lint_cmd;
      sta_cmd;
      sim_cmd;
      fault_cmd;
      trace_cmd;
      serve_cmd;
      cluster_cmd;
      scenario_cmd;
      tune_cmd;
    ]

let () = exit (Cmd.eval cmd)
