(* Unit + property tests for the Bits bitvector module. Properties check the
   arithmetic against OCaml's native integers on widths <= 62, and structural
   laws (slice/concat/reverse) on wider vectors. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_construction () =
  check_int "zero width" 16 (Bits.width (Bits.zero 16));
  check_bool "zero is zero" true (Bits.is_zero (Bits.zero 128));
  check_int "of_int roundtrip" 12345 (Bits.to_int (Bits.of_int ~width:20 12345));
  check_int "of_int truncates" 0b101 (Bits.to_int (Bits.of_int ~width:3 0b11101));
  check_int "one" 1 (Bits.to_int (Bits.one 64));
  check_int "ones width 5" 31 (Bits.to_int (Bits.ones 5));
  check_int "ones popcount 131" 131 (Bits.popcount (Bits.ones 131))

let test_strings () =
  check_string "bin" "1010" (Bits.to_bin_string (Bits.of_int ~width:4 10));
  check_int "of_bin" 10 (Bits.to_int (Bits.of_bin_string "1010"));
  check_int "of_bin underscore" 10 (Bits.to_int (Bits.of_bin_string "10_10"));
  check_string "hex" "deadbeef"
    (Bits.to_hex_string (Bits.of_hex_string ~width:32 "dead_beef"));
  check_string "hex wide" "00000000000000000001"
    (Bits.to_hex_string (Bits.of_int ~width:80 1));
  check_int "hex trunc" 0xf (Bits.to_int (Bits.of_hex_string ~width:4 "ff"))

let test_arith_edges () =
  let w = 8 in
  let a = Bits.of_int ~width:w 255 and b = Bits.of_int ~width:w 1 in
  check_int "overflow wraps" 0 (Bits.to_int (Bits.add a b));
  check_int "sub wraps" 255 (Bits.to_int (Bits.sub (Bits.zero w) b));
  check_int "neg" 246 (Bits.to_int (Bits.neg (Bits.of_int ~width:w 10)));
  check_int "mul trunc" ((255 * 255) land 255) (Bits.to_int (Bits.mul a a));
  check_int "mul wide" (255 * 255) (Bits.to_int (Bits.mul_wide a a));
  check_int "mul_wide width" 16 (Bits.width (Bits.mul_wide a a));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bits.add: width mismatch (8 vs 9)") (fun () ->
      ignore (Bits.add a (Bits.zero 9)))

let test_wide_arith () =
  (* 2^100 + 2^100 = 2^101 *)
  let x = Bits.shift_left (Bits.one 128) 100 in
  let s = Bits.add x x in
  check_bool "bit 101" true (Bits.bit s 101);
  check_int "popcount" 1 (Bits.popcount s);
  (* (2^64 - 1)^2 low 128 bits *)
  let m = Bits.ones 64 in
  let p = Bits.mul_wide m m in
  check_string "wide square" "fffffffffffffffe0000000000000001"
    (Bits.to_hex_string p)

let test_signed () =
  check_int "to_signed neg" (-1) (Bits.to_signed_int (Bits.ones 16));
  check_int "to_signed pos" 5 (Bits.to_signed_int (Bits.of_int ~width:16 5));
  check_int "of_signed roundtrip" (-123)
    (Bits.to_signed_int (Bits.of_signed_int ~width:32 (-123)));
  check_int "sext" (-3)
    (Bits.to_signed_int (Bits.sext (Bits.of_signed_int ~width:4 (-3)) 32));
  check_bool "signed compare" true
    (Bits.compare_signed (Bits.of_signed_int ~width:8 (-1))
       (Bits.of_signed_int ~width:8 1)
    < 0)

let test_structure () =
  let v = Bits.of_int ~width:12 0xabc in
  check_int "slice mid" 0xb (Bits.to_int (Bits.slice v ~hi:7 ~lo:4));
  check_int "concat" 0xabc
    (Bits.to_int
       (Bits.concat (Bits.of_int ~width:4 0xa) (Bits.of_int ~width:8 0xbc)));
  check_int "resize up" 0xabc (Bits.to_int (Bits.resize v 64));
  check_int "resize down" 0xbc (Bits.to_int (Bits.resize v 8));
  check_int "repeat" 0xaaaa (Bits.to_int (Bits.repeat (Bits.of_int ~width:4 0xa) 4));
  check_string "reverse" "0011" (Bits.to_bin_string (Bits.reverse (Bits.of_bin_string "1100")));
  check_int "select_bits" 0b101
    (Bits.to_int (Bits.select_bits (Bits.of_bin_string "0110") [ 2; 3; 1 ]))

let test_shifts () =
  let v = Bits.of_int ~width:8 0b1001_0110 in
  check_int "sll" 0b0101_1000 (Bits.to_int (Bits.shift_left v 2));
  check_int "srl" 0b0010_0101 (Bits.to_int (Bits.shift_right v 2));
  check_int "sra keeps sign" 0b1110_0101
    (Bits.to_int (Bits.shift_right_arith v 2));
  check_int "shift off the end" 0 (Bits.to_int (Bits.shift_left v 8));
  check_int "sra all the way" 0xff
    (Bits.to_int (Bits.shift_right_arith v 100))

(* ---------- properties ---------- *)

let gen_wv =
  (* (width, value) with value < 2^width, width in 1..60 *)
  QCheck.Gen.(
    1 -- 60 >>= fun w ->
    map (fun v -> (w, v land ((1 lsl w) - 1))) (0 -- max_int))

let arb_wv = QCheck.make ~print:(fun (w, v) -> Printf.sprintf "w=%d v=%d" w v) gen_wv

let gen_pair =
  QCheck.Gen.(
    1 -- 60 >>= fun w ->
    let mask = (1 lsl w) - 1 in
    map2 (fun a b -> (w, a land mask, b land mask)) (0 -- max_int) (0 -- max_int))

let arb_pair =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    gen_pair

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb f)

let props =
  [
    prop "add matches int" arb_pair (fun (w, a, b) ->
        let m = if w = 60 then (1 lsl 60) - 1 else (1 lsl w) - 1 in
        Bits.to_int (Bits.add (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = (a + b) land m);
    prop "sub matches int" arb_pair (fun (w, a, b) ->
        Bits.to_int (Bits.sub (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = (a - b) land ((1 lsl w) - 1));
    prop "mul matches int (<=30 bits)" arb_pair (fun (w, a, b) ->
        let w = min w 30 in
        let mask = (1 lsl w) - 1 in
        let a = a land mask and b = b land mask in
        Bits.to_int (Bits.mul (Bits.of_int ~width:w a) (Bits.of_int ~width:w b))
        = a * b land mask);
    prop "logic matches int" arb_pair (fun (w, a, b) ->
        let ba = Bits.of_int ~width:w a and bb = Bits.of_int ~width:w b in
        Bits.to_int (Bits.logand ba bb) = a land b
        && Bits.to_int (Bits.logor ba bb) = a lor b
        && Bits.to_int (Bits.logxor ba bb) = a lxor b);
    prop "compare matches int" arb_pair (fun (w, a, b) ->
        QCheck.( ==> ) true
          (Bits.compare (Bits.of_int ~width:w a) (Bits.of_int ~width:w b)
          = Int.compare a b));
    prop "lognot involution" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal (Bits.lognot (Bits.lognot b)) b);
    prop "neg is two's complement" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.is_zero (Bits.add b (Bits.neg b)));
    prop "bin string roundtrip" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal (Bits.of_bin_string (Bits.to_bin_string b)) b);
    prop "hex string roundtrip" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal (Bits.of_hex_string ~width:w (Bits.to_hex_string b)) b);
    prop "slice . concat = id" arb_pair (fun (w, a, b) ->
        let ba = Bits.of_int ~width:w a and bb = Bits.of_int ~width:w b in
        let c = Bits.concat ba bb in
        Bits.equal (Bits.slice c ~hi:((2 * w) - 1) ~lo:w) ba
        && Bits.equal (Bits.slice c ~hi:(w - 1) ~lo:0) bb);
    prop "reverse involution" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        Bits.equal (Bits.reverse (Bits.reverse b)) b);
    prop "shift_left then right" arb_wv (fun (w, v) ->
        let b = Bits.of_int ~width:w v in
        let n = v mod (w + 1) in
        (* low n bits survive the round trip cleared *)
        Bits.to_int (Bits.shift_right (Bits.shift_left b n) n)
        = v land ((1 lsl (w - n)) - 1));
    prop "popcount sums over concat" arb_pair (fun (w, a, b) ->
        let ba = Bits.of_int ~width:w a and bb = Bits.of_int ~width:w b in
        Bits.popcount (Bits.concat ba bb) = Bits.popcount ba + Bits.popcount bb);
    prop "signed roundtrip" arb_wv (fun (w, v) ->
        let v = v - (1 lsl (w - 1)) in
        (* may be negative *)
        let b = Bits.of_signed_int ~width:(w + 1) v in
        Bits.to_signed_int b = v);
  ]

let () =
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "arith edges" `Quick test_arith_edges;
          Alcotest.test_case "wide arith" `Quick test_wide_arith;
          Alcotest.test_case "signed" `Quick test_signed;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "shifts" `Quick test_shifts;
        ] );
      ("properties", props);
    ]
