(* Serving layer: weighted-fair shares, conservation accounting, seed
   determinism, the multi-outstanding/batched command path in the
   runtime, fault-paired shedding, and allocator churn. *)

module F = Fault
module H = Runtime.Handle
module D = Platform.Device
module S = Serve

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qcheck ?(count = 30) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---- workload description ---- *)

let test_mix_rounding () =
  let k = S.Mix.memcpy ~bytes:100 () in
  check_int "bytes rounded up to 64" 128 k.S.Mix.k_bytes;
  let k = S.Mix.vecadd ~bytes:1 () in
  check_int "minimum one beat" 64 k.S.Mix.k_bytes;
  check_string "label derives from rounded size" "vecadd-64b" k.S.Mix.k_label

let test_policy_names () =
  List.iter
    (fun p ->
      match S.policy_of_name (S.policy_name p) with
      | Some p' -> check_bool "round-trips" true (p = p')
      | None -> Alcotest.fail "policy name did not round-trip")
    [ S.Wfq; S.Fifo ];
  check_bool "unknown rejected" true (S.policy_of_name "lifo" = None)

(* ---- weighted-fair shares ---- *)

(* Two fully backlogged closed-loop tenants with equal request sizes:
   the byte share of the heavier tenant must track weight/(weight+1). *)
let prop_wfq_shares =
  qcheck ~count:5 "WFQ byte shares track tenant weights"
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (w, seed) ->
      let tenant name weight =
        S.Tenant.make ~name ~weight ~clients:6
          ~mix:[ S.Mix.memcpy ~bytes:(16 * 1024) () ]
          ~load:(S.Tenant.Closed_loop { think_ps = 0 })
          ()
      in
      let cfg =
        S.config ~seed ~duration_ps:300_000_000 ~n_cores:2 ~core_cap:2
          ~tenants:[ tenant "light" 1.0; tenant "heavy" (float_of_int w) ]
          ()
      in
      let r = S.run cfg () in
      if not (S.conserved r) then false
      else
        match r.S.r_tenants with
        | [ light; heavy ] ->
            let total = light.S.tr_bytes_served + heavy.S.tr_bytes_served in
            let completions = light.S.tr_completed + heavy.S.tr_completed in
            let share =
              float_of_int heavy.S.tr_bytes_served /. float_of_int total
            in
            let expect = float_of_int w /. float_of_int (w + 1) in
            completions >= 50 && Float.abs (share -. expect) < 0.15
        | _ -> false)

(* FIFO ignores weights: with the same backlogged pair the heavy tenant
   gets no preferential share. *)
let test_fifo_ignores_weights () =
  let tenant name weight =
    S.Tenant.make ~name ~weight ~clients:6
      ~mix:[ S.Mix.memcpy ~bytes:(16 * 1024) () ]
      ~load:(S.Tenant.Closed_loop { think_ps = 0 })
      ()
  in
  let cfg =
    S.config ~seed:7 ~duration_ps:300_000_000 ~policy:S.Fifo ~n_cores:2
      ~core_cap:2
      ~tenants:[ tenant "light" 1.0; tenant "heavy" 4.0 ]
      ()
  in
  let r = S.run cfg () in
  check_bool "conserved" true (S.conserved r);
  match r.S.r_tenants with
  | [ light; heavy ] ->
      let share =
        float_of_int heavy.S.tr_bytes_served
        /. float_of_int (light.S.tr_bytes_served + heavy.S.tr_bytes_served)
      in
      check_bool "FIFO share near 1/2 despite 4x weight" true
        (Float.abs (share -. 0.5) < 0.15)
  | _ -> Alcotest.fail "expected two tenants"

(* ---- conservation ---- *)

(* Every offered request is admitted or shed at admission; every admitted
   request completes, is shed at dispatch, or fails — exactly once — and
   the allocator ends where it started. Overload on the open-loop tenant
   makes the shedding paths actually fire. *)
let prop_conservation =
  qcheck ~count:6 "conservation holds under random seeds and policies"
    QCheck.(pair (int_range 0 10_000) bool)
    (fun (seed, wfq) ->
      let open_t =
        S.Tenant.make ~name:"open" ~clients:3 ~queue_cap:8
          ~load:(S.Tenant.open_loop ~rate_rps:600_000. ())
          ()
      in
      let closed_t =
        S.Tenant.make ~name:"closed" ~clients:2
          ~load:(S.Tenant.Closed_loop { think_ps = 5_000_000 })
          ()
      in
      let cfg =
        S.config ~seed
          ~policy:(if wfq then S.Wfq else S.Fifo)
          ~duration_ps:200_000_000 ~n_cores:2
          ~tenants:[ open_t; closed_t ]
          ()
      in
      let r = S.run cfg () in
      S.violations r = [] && List.for_all (fun t -> t.S.tr_completed > 0) r.S.r_tenants)

let test_deadline_shedding () =
  (* A 25 us admission deadline under heavy overload: requests expire at
     the head of the queue and are shed at dispatch, and the accounting
     still balances. *)
  let t =
    S.Tenant.make ~name:"hot" ~clients:4 ~queue_cap:512
      ~deadline_ps:25_000_000
      ~mix:[ S.Mix.memcpy ~bytes:(16 * 1024) () ]
      ~load:(S.Tenant.open_loop ~rate_rps:1_000_000. ())
      ()
  in
  let cfg =
    S.config ~seed:3 ~duration_ps:200_000_000 ~n_cores:2 ~tenants:[ t ] ()
  in
  let r = S.run cfg () in
  check_bool "conserved" true (S.conserved r);
  let tr = List.hd r.S.r_tenants in
  check_bool "deadline shedding fired" true (tr.S.tr_shed_deadline > 0);
  check_bool "still completing work" true (tr.S.tr_completed > 0)

(* ---- determinism ---- *)

let prop_determinism =
  qcheck ~count:4 "same seed, byte-identical digest"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cfg =
        S.config ~seed ~duration_ps:150_000_000 ~n_cores:2
          ~tenants:
            [
              S.Tenant.make ~name:"a" ~clients:2
                ~load:(S.Tenant.open_loop ~rate_rps:150_000. ())
                ();
              S.Tenant.make ~name:"b" ~clients:2
                ~load:(S.Tenant.Closed_loop { think_ps = 10_000_000 })
                ();
            ]
          ()
      in
      S.digest (S.run cfg ()) = S.digest (S.run cfg ()))

let test_seed_changes_digest () =
  let cfg seed =
    S.config ~seed ~duration_ps:150_000_000 ~n_cores:2
      ~tenants:
        [
          S.Tenant.make ~name:"a" ~clients:2
            ~load:(S.Tenant.open_loop ~rate_rps:150_000. ())
            ();
        ]
      ()
  in
  check_bool "different seeds diverge" true
    (S.digest (S.run (cfg 1) ()) <> S.digest (S.run (cfg 2) ()))

(* ---- the multi-outstanding / batched command path ---- *)

let memcpy_soc ?fault ?policy ~n_cores () =
  let design =
    Beethoven.Elaborate.elaborate
      (Beethoven.Config.make ~name:"m" [ Kernels.Memcpy.system ~n_cores ])
      D.aws_f1
  in
  Beethoven.Soc.create ?fault ?policy design ~behaviors:(fun _ ->
      Kernels.Memcpy.behavior)

let test_try_collect_and_batch () =
  let h = H.create (memcpy_soc ~n_cores:2 ()) in
  let a = H.malloc h 4096 and b = H.malloc h 4096 in
  let batch = H.begin_batch h ~n:2 in
  let send core =
    H.send ~batch h ~system:"Memcpy" ~core ~cmd:Kernels.Memcpy.command
      ~args:
        [
          ("src", Int64.of_int a.H.rp_addr);
          ("dst", Int64.of_int b.H.rp_addr);
          ("bytes", 4096L);
        ]
  in
  let h1 = send 0 and h2 = send 1 in
  check_bool "pending before the simulation runs" true
    (H.try_collect h1 = H.Pending);
  check_bool "no raw response yet" true (H.response_seen_at h1 = None);
  let settled = ref 0 in
  H.on_settled h1 (fun _ -> incr settled);
  H.on_settled h2 (fun _ -> incr settled);
  Desim.Engine.run (H.engine h);
  check_int "both handles settled exactly once" 2 !settled;
  (match H.try_collect h1 with
  | H.Done v -> check_bool "memcpy response is the byte count" true (v = 4096L)
  | _ -> Alcotest.fail "h1 did not complete");
  (match (H.response_seen_at h2, H.try_collect h2) with
  | Some seen, H.Done _ ->
      check_bool "raw response precedes collection" true
        (seen <= Desim.Engine.now (H.engine h))
  | _ -> Alcotest.fail "h2 did not complete");
  (* registering after settlement fires immediately *)
  let late = ref false in
  H.on_settled h1 (fun _ -> late := true);
  check_bool "late on_settled fires synchronously" true !late;
  H.mfree h a;
  H.mfree h b

let test_multi_outstanding_survives_hang () =
  (* Several commands in flight on ONE core that hangs at its first
     dispatch: the watchdog must recover every one of them through a
     single quarantine and a reroute — the multi-outstanding invariant
     under faults. *)
  let plan = F.Plan.with_hang ~after:1 ~system:0 ~core:0 F.Plan.none in
  let inj = F.Injector.create plan in
  let h = H.create (memcpy_soc ~fault:inj ~n_cores:2 ()) in
  let a = H.malloc h 4096 and b = H.malloc h 4096 in
  let send () =
    H.send h ~system:"Memcpy" ~core:0 ~cmd:Kernels.Memcpy.command
      ~args:
        [
          ("src", Int64.of_int a.H.rp_addr);
          ("dst", Int64.of_int b.H.rp_addr);
          ("bytes", 4096L);
        ]
  in
  let handles = [ send (); send (); send () ] in
  Desim.Engine.drain_or_fail (H.engine h);
  List.iteri
    (fun i rh ->
      match H.try_collect rh with
      | H.Done v -> check_bool (Printf.sprintf "command %d recovered" i) true (v = 4096L)
      | _ -> Alcotest.fail (Printf.sprintf "command %d not recovered" i))
    handles;
  check_int "core quarantined exactly once" 1 (F.Injector.quarantines inj);
  check_int "no pending lost messages" 0 (F.Injector.pending_lost inj);
  H.mfree h a;
  H.mfree h b

(* ---- fault pairing ---- *)

let test_serve_under_core_hang () =
  (* A serving campaign with core 0 of the memcpy system hanging at its
     first dispatch: the dispatcher keeps serving around the quarantine,
     nothing is lost, and the injector ledger resolves completely. *)
  let t =
    S.Tenant.make ~name:"t" ~clients:3
      ~mix:[ S.Mix.memcpy ~bytes:(8 * 1024) () ]
      ~load:(S.Tenant.Closed_loop { think_ps = 5_000_000 })
      ()
  in
  let cfg =
    S.config ~seed:11 ~duration_ps:200_000_000 ~n_cores:2 ~tenants:[ t ] ()
  in
  let plan = F.Plan.with_hang ~after:1 ~system:0 ~core:0 F.Plan.none in
  let r = S.run ~plan cfg () in
  check_bool "conserved under the hang" true (S.conserved r);
  let tr = List.hd r.S.r_tenants in
  check_bool "work still completes" true (tr.S.tr_completed > 0);
  match r.S.r_injector with
  | Some inj ->
      check_int "one quarantine" 1 (F.Injector.quarantines inj);
      check_int "lost-message ledger resolved" 0 (F.Injector.pending_lost inj)
  | None -> Alcotest.fail "injector missing from the report"

(* ---- allocator churn ---- *)

let prop_alloc_churn =
  qcheck ~count:4
    "free_bytes returns to baseline after the campaign drains"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let cfg =
        S.config ~seed ~duration_ps:200_000_000 ~n_cores:2
          ~tenants:
            [
              (* mixed sizes force real free-list churn *)
              S.Tenant.make ~name:"churn" ~clients:4 ~queue_cap:16
                ~load:(S.Tenant.open_loop ~rate_rps:400_000. ())
                ();
            ]
          ()
      in
      let r = S.run cfg () in
      r.S.r_alloc_ok && r.S.r_leaked_blocks = 0 && r.S.r_free_delta = 0)

(* ---- tracing integration ---- *)

let test_serve_traces_queue_wait () =
  let tracer = Trace.create () in
  let cfg =
    S.config ~seed:5 ~duration_ps:150_000_000 ~n_cores:2
      ~tenants:
        [
          S.Tenant.make ~name:"tr" ~clients:2
            ~load:(S.Tenant.open_loop ~rate_rps:200_000. ())
            ();
        ]
      ()
  in
  let r = S.run ~tracer cfg () in
  check_bool "conserved" true (S.conserved r);
  (match Trace.check tracer with
  | [] -> ()
  | problems ->
      Alcotest.fail ("trace not well-formed: " ^ String.concat "; " problems));
  let tr = List.hd r.S.r_tenants in
  check_int "admission counter matches the report" tr.S.tr_admitted
    (Trace.counter_value tracer "serve.admitted");
  check_int "completion counter matches the report" tr.S.tr_completed
    (Trace.counter_value tracer "serve.completed");
  check_bool "batched commands counted on the server" true
    (Trace.counter_value tracer "server.batched_cmds" >= tr.S.tr_completed)

(* ---- saturation sweep ---- *)

let test_saturation_monotone_offered () =
  let points =
    S.saturation ~seed:42 ~bytes:(16 * 1024) ~clients:4
      ~duration_ps:150_000_000
      ~rates_rps:[ 50_000.; 200_000.; 800_000. ]
      ()
  in
  check_int "one point per rate" 3 (List.length points);
  let offered = List.map (fun p -> p.S.sat_offered_rps) points in
  check_bool "offered load increases along the sweep" true
    (List.sort compare offered = offered);
  List.iter
    (fun p -> check_bool "everyone completes work" true (p.S.sat_completed > 0))
    points

let () =
  Alcotest.run "serve"
    [
      ( "workload",
        [
          Alcotest.test_case "mix rounding" `Quick test_mix_rounding;
          Alcotest.test_case "policy names" `Quick test_policy_names;
        ] );
      ( "fairness",
        [
          prop_wfq_shares;
          Alcotest.test_case "fifo ignores weights" `Quick
            test_fifo_ignores_weights;
        ] );
      ( "conservation",
        [
          prop_conservation;
          Alcotest.test_case "deadline shedding" `Quick test_deadline_shedding;
        ] );
      ( "determinism",
        [
          prop_determinism;
          Alcotest.test_case "seed changes digest" `Quick
            test_seed_changes_digest;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "try_collect and batching" `Quick
            test_try_collect_and_batch;
          Alcotest.test_case "multi-outstanding survives a hang" `Quick
            test_multi_outstanding_survives_hang;
        ] );
      ( "faults",
        [
          Alcotest.test_case "serving around a quarantine" `Quick
            test_serve_under_core_hang;
        ] );
      ("alloc", [ prop_alloc_churn ]);
      ( "trace",
        [
          Alcotest.test_case "queue-wait spans and counters" `Quick
            test_serve_traces_queue_wait;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "offered-load sweep" `Quick
            test_saturation_monotone_offered;
        ] );
    ]
