(* Tests for the discrete-event engine, channels, and statistics. *)

module E = Desim.Engine
module C = Desim.Channel
module S = Desim.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_event_order () =
  let e = E.create () in
  let log = ref [] in
  E.schedule e ~delay:5 (fun () -> log := 5 :: !log);
  E.schedule e ~delay:1 (fun () -> log := 1 :: !log);
  E.schedule e ~delay:3 (fun () -> log := 3 :: !log);
  E.run e;
  Alcotest.(check (list int)) "fires in time order" [ 1; 3; 5 ] (List.rev !log);
  check_int "clock at last event" 5 (E.now e)

let test_same_time_fifo () =
  let e = E.create () in
  let log = ref [] in
  for i = 0 to 9 do
    E.schedule e ~delay:7 (fun () -> log := i :: !log)
  done;
  E.run e;
  Alcotest.(check (list int))
    "same-tick events keep scheduling order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_nested_scheduling () =
  let e = E.create () in
  let hits = ref 0 in
  let rec chain n =
    if n > 0 then
      E.schedule e ~delay:2 (fun () ->
          incr hits;
          chain (n - 1))
  in
  chain 10;
  E.run e;
  check_int "chain completes" 10 !hits;
  check_int "clock advanced by 2 each" 20 (E.now e)

let test_run_until () =
  let e = E.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    E.schedule e ~delay:(i * 10) (fun () -> incr hits)
  done;
  E.run ~until:45 e;
  check_int "only events <= 45" 4 !hits;
  check_int "clock parked at limit" 45 (E.now e);
  E.run e;
  check_int "rest fire later" 10 !hits

let test_schedule_past_rejected () =
  let e = E.create () in
  E.schedule e ~delay:10 (fun () -> ());
  E.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument
       "Engine.schedule_at: time 5 is in the past (clock is at 10)")
    (fun () -> E.schedule_at e ~time:5 (fun () -> ()))

let test_livelock_guard () =
  let e = E.create () in
  (* a self-rescheduling event never drains: the guard must trip *)
  let rec again () = E.schedule e ~delay:1 again in
  again ();
  (match E.run ~max_events:1000 e with
  | () -> Alcotest.fail "expected Livelock"
  | exception E.Livelock { fired; pending; _ } ->
      check_int "fired the budget" 1000 fired;
      check_bool "work still pending" true (pending > 0));
  (* drain_or_fail converts it into a Failure naming the pending count *)
  let e2 = E.create () in
  let rec again2 () = E.schedule e2 ~delay:1 again2 in
  again2 ();
  (match E.drain_or_fail ~max_events:100 e2 with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool "message reports pending events" true
        (contains msg "pending event(s)"))

let test_drain_or_fail_clean () =
  let e = E.create () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    E.schedule e ~delay:3 (fun () -> incr hits)
  done;
  E.drain_or_fail e;
  check_int "clean drain fires everything" 5 !hits

let test_heap_stress () =
  (* Push events with pseudo-random times, check they fire sorted. *)
  let e = E.create () in
  let seed = ref 12345 in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod 10_000
  in
  let fired = ref [] in
  for _ = 1 to 2000 do
    let t = next () in
    E.schedule e ~delay:t (fun () -> fired := t :: !fired)
  done;
  E.run e;
  let fired = List.rev !fired in
  check_int "all fired" 2000 (List.length fired);
  check_bool "sorted" true
    (fst
       (List.fold_left
          (fun (ok, prev) t -> (ok && t >= prev, t))
          (true, 0) fired))

let test_channel_basic () =
  let e = E.create () in
  let ch = C.create e ~capacity:2 in
  let got = ref [] in
  C.send ch 1 ~on_accept:ignore;
  C.send ch 2 ~on_accept:ignore;
  C.recv ch (fun v -> got := v :: !got);
  C.recv ch (fun v -> got := v :: !got);
  E.run e;
  Alcotest.(check (list int)) "fifo order" [ 1; 2 ] (List.rev !got)

let test_channel_backpressure () =
  let e = E.create () in
  let ch = C.create e ~capacity:1 in
  let accepted = ref [] in
  C.send ch 1 ~on_accept:(fun () -> accepted := 1 :: !accepted);
  C.send ch 2 ~on_accept:(fun () -> accepted := 2 :: !accepted);
  E.run e;
  Alcotest.(check (list int)) "second blocked" [ 1 ] (List.rev !accepted);
  check_bool "try_send full" false (C.try_send ch 3);
  let got = ref (-1) in
  C.recv ch (fun v -> got := v);
  E.run e;
  check_int "first delivered" 1 !got;
  Alcotest.(check (list int)) "second admitted after drain" [ 1; 2 ]
    (List.rev !accepted)

let test_channel_pending_recv () =
  let e = E.create () in
  let ch = C.create e ~capacity:4 in
  let got = ref [] in
  (* receivers arrive before any data *)
  C.recv ch (fun v -> got := v :: !got);
  C.recv ch (fun v -> got := v :: !got);
  E.run e;
  check_int "nothing yet" 0 (List.length !got);
  C.send ch 10 ~on_accept:ignore;
  C.send ch 20 ~on_accept:ignore;
  E.run e;
  Alcotest.(check (list int)) "served in order" [ 10; 20 ] (List.rev !got)

let test_channel_try_ops () =
  let e = E.create () in
  let ch = C.create e ~capacity:2 in
  Alcotest.(check (option int)) "empty" None (C.try_recv ch);
  check_bool "send ok" true (C.try_send ch 42);
  Alcotest.(check (option int)) "peek" (Some 42) (C.peek ch);
  Alcotest.(check (option int)) "recv" (Some 42) (C.try_recv ch);
  check_int "occupancy back to 0" 0 (C.occupancy ch)

let test_stats () =
  let c = S.counter () in
  S.incr c;
  S.incr ~by:4 c;
  check_int "counter" 5 (S.count c);
  let s = S.series () in
  List.iter (S.observe s) [ 1.0; 2.0; 3.0 ];
  let sum = S.summarize s in
  check_int "n" 3 sum.S.n;
  Alcotest.(check (float 1e-9)) "mean" 2.0 sum.S.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 sum.S.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 sum.S.max;
  let h = S.histogram ~bucket_width:10. in
  List.iter (S.record h) [ 1.; 5.; 11.; 25. ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "buckets"
    [ (0., 2); (10., 1); (20., 1) ]
    (S.buckets h);
  let b = S.busy_tracker () in
  S.mark_busy b ~from_:0 ~until:10;
  S.mark_busy b ~from_:20 ~until:25;
  check_int "busy time" 15 (S.busy_time b);
  Alcotest.(check (float 1e-9)) "utilization" 0.15 (S.utilization b ~total:100)

(* Regression: overlapping busy intervals must merge, not double-count —
   the old accumulator summed raw durations and could report > 100%
   utilization for a port marked busy by two overlapping transactions. *)
let test_busy_overlap () =
  let b = S.busy_tracker () in
  S.mark_busy b ~from_:0 ~until:10;
  S.mark_busy b ~from_:5 ~until:15;
  check_int "overlap merged" 15 (S.busy_time b);
  S.mark_busy b ~from_:0 ~until:15;
  check_int "duplicate absorbed" 15 (S.busy_time b);
  S.mark_busy b ~from_:15 ~until:20;
  check_int "adjacent coalesced" 20 (S.busy_time b);
  S.mark_busy b ~from_:100 ~until:110;
  S.mark_busy b ~from_:30 ~until:40;
  check_int "disjoint summed" 40 (S.busy_time b);
  S.mark_busy b ~from_:0 ~until:110;
  check_int "superset absorbs all" 110 (S.busy_time b);
  Alcotest.(check (float 1e-9))
    "utilization clamped" 1.0
    (S.utilization b ~total:50)

let test_summarize_opt () =
  let s = S.series () in
  Alcotest.(check bool) "empty is None" true (S.summarize_opt s = None);
  (match S.summarize s with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "summarize of empty series must raise");
  S.observe s 7.0;
  (match S.summarize_opt s with
  | Some sum ->
      check_int "n" 1 sum.S.n;
      Alcotest.(check (float 1e-9)) "mean" 7.0 sum.S.mean
  | None -> Alcotest.fail "non-empty series must summarize")

let test_bucket_gaps () =
  let h = S.histogram ~bucket_width:10. in
  List.iter (S.record h) [ 1.; 35. ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "interior zero buckets present"
    [ (0., 1); (10., 0); (20., 0); (30., 1) ]
    (S.buckets h)

let test_quantiles () =
  let s = S.series () in
  Alcotest.(check bool) "empty quantile" true (S.quantile_opt s ~q:0.5 = None);
  List.iter (S.observe s) [ 4.0; 1.0; 3.0; 2.0 ];
  let q x = Option.get (S.quantile_opt s ~q:x) in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (q 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 4.0 (q 1.0);
  Alcotest.(check (float 1e-9)) "median interpolates" 2.5 (q 0.5);
  Alcotest.(check (float 1e-9)) "clamped below" 1.0 (q (-1.0))

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:100 ~name arb f)

let props =
  [
    prop "events always fire in nondecreasing time order"
      QCheck.(list_of_size Gen.(1 -- 200) (int_bound 1000))
      (fun delays ->
        let e = E.create () in
        let fired = ref [] in
        List.iter
          (fun d -> E.schedule e ~delay:d (fun () -> fired := E.now e :: !fired))
          delays;
        E.run e;
        let fired = List.rev !fired in
        List.length fired = List.length delays
        && fst
             (List.fold_left
                (fun (ok, prev) t -> (ok && t >= prev, t))
                (true, 0) fired));
    prop "channel preserves fifo order under interleaving"
      QCheck.(list_of_size Gen.(1 -- 100) (int_bound 1_000_000))
      (fun items ->
        let e = E.create () in
        let ch = C.create e ~capacity:3 in
        let got = ref [] in
        List.iteri
          (fun i v ->
            E.schedule e ~delay:i (fun () -> C.send ch v ~on_accept:ignore);
            E.schedule e ~delay:(i + 1) (fun () ->
                C.recv ch (fun v -> got := v :: !got)))
          items;
        E.run e;
        List.rev !got = items);
  ]

let () =
  Alcotest.run "desim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "past rejected" `Quick test_schedule_past_rejected;
          Alcotest.test_case "livelock guard" `Quick test_livelock_guard;
          Alcotest.test_case "drain_or_fail clean" `Quick
            test_drain_or_fail_clean;
          Alcotest.test_case "heap stress" `Quick test_heap_stress;
        ] );
      ( "channel",
        [
          Alcotest.test_case "basic" `Quick test_channel_basic;
          Alcotest.test_case "backpressure" `Quick test_channel_backpressure;
          Alcotest.test_case "pending recv" `Quick test_channel_pending_recv;
          Alcotest.test_case "try ops" `Quick test_channel_try_ops;
        ] );
      ( "stats",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "busy overlap" `Quick test_busy_overlap;
          Alcotest.test_case "summarize_opt" `Quick test_summarize_opt;
          Alcotest.test_case "bucket gaps" `Quick test_bucket_gaps;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
        ] );
      ("properties", props);
    ]
