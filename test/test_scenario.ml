(* Scenario DSL: executor determinism over random graphs, loop/budget
   bounds, single-phase equivalence with the plain serving entry point,
   constant-curve regression against historical reports, and snapshot
   non-perturbation. *)

module S = Serve
module Sc = Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qcheck ?(count = 30) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---- shared fixtures ---- *)

let small_tenant ?(rate = 60_000.) ?curve () =
  S.Tenant.make ~name:"t" ~weight:1.0 ~clients:2
    ~mix:[ S.Mix.memcpy ~bytes:4096 () ]
    ~load:(S.Tenant.open_loop ?curve ~rate_rps:rate ())
    ()

let small_cfg ?(seed = 42) ?(duration_ps = 40_000_000) ?tenants () =
  let tenants =
    match tenants with Some ts -> ts | None -> [ small_tenant () ]
  in
  S.config ~seed ~duration_ps ~n_cores:1 ~core_cap:2 ~tenants ()

let single ?(seed = 42) cfg =
  Sc.Single { sg_cfg = { cfg with S.c_seed = seed }; sg_plan = None; sg_policy = None }

(* ---- random scenario graphs are deterministic ---- *)

(* A small vocabulary of nodes, indexed so QCheck shrinks nicely. The
   graphs mix traffic phases, sleeps, bindings, conditionals, bounded
   loops, asserts (some deliberately failing: determinism must hold for
   failing runs too) and an injector-less hang request (records a
   failure verdict and continues). *)
let node_of_tag tag =
  match tag mod 8 with
  | 0 -> Sc.serve_phase ~label:"p" ~duration_ps:25_000_000 ()
  | 1 -> Sc.Act (Sc.Sleep 5_000_000)
  | 2 -> Sc.Let ("x", Sc.Stat (Sc.P95, "t"))
  | 3 ->
      Sc.Assert
        {
          a_cond = Sc.Cmp (Sc.Ge, Sc.Counter Sc.Wall_us, Sc.Const 0.);
          a_msg = "wall clock went negative";
        }
  | 4 ->
      Sc.If
        {
          if_cond = Sc.Cmp (Sc.Gt, Sc.Var "x", Sc.Const 0.);
          if_then = [ Sc.Act (Sc.Sleep 1_000_000) ];
          if_else = [ Sc.Let ("y", Sc.Const 1.) ];
        }
  | 5 ->
      Sc.While
        {
          w_cond = Sc.Cmp (Sc.Lt, Sc.Var "trips", Sc.Const 2.);
          w_max_trips = 2;
          w_body = [ Sc.Let ("trips", Sc.Const 2.) ];
        }
  | 6 -> Sc.inject_hang ~system:0 ~core:0 ()
  | _ ->
      Sc.Assert
        {
          a_cond = Sc.Cmp (Sc.Lt, Sc.Counter Sc.Wall_us, Sc.Const 0.);
          a_msg = "deliberately failing assert";
        }

let prop_transcript_deterministic =
  qcheck ~count:6 "random scenario graphs replay byte-identically"
    QCheck.(pair (int_range 0 1000) (list_of_size (Gen.int_range 1 5) (int_range 0 100)))
    (fun (seed, tags) ->
      let nodes = List.map node_of_tag tags in
      let sc =
        Sc.make ~name:"rand" ~seed ~backend:(single ~seed (small_cfg ())) nodes
      in
      let a = Sc.transcript_json (Sc.run sc) in
      let b = Sc.transcript_json (Sc.run sc) in
      a = b)

(* ---- loop bounds and the node budget ---- *)

let spin_scenario ~max_nodes ~trips =
  Sc.make ~max_nodes ~name:"spin" ~seed:1
    ~backend:(single (small_cfg ()))
    [
      Sc.While
        {
          w_cond = Sc.Cmp (Sc.Ge, Sc.Const 1., Sc.Const 0.);
          (* always true *)
          w_max_trips = trips;
          w_body = [ Sc.Let ("i", Sc.Const 1.) ];
        };
    ]

let prop_budget_honored =
  qcheck ~count:20 "execution never runs past the node budget"
    QCheck.(pair (int_range 1 24) (int_range 1 1000))
    (fun (max_nodes, trips) ->
      let res = Sc.run (spin_scenario ~max_nodes ~trips) in
      List.length res.Sc.res_entries <= max_nodes)

let test_trip_bound () =
  (* with a generous budget, an always-true loop runs exactly
     w_max_trips trips: one entry per body node per trip, plus the
     loop's own entry *)
  let res = Sc.run (spin_scenario ~max_nodes:256 ~trips:7) in
  check_bool "scenario ok" true res.Sc.res_ok;
  check_int "7 body entries + the loop entry" 8
    (List.length res.Sc.res_entries)

let test_budget_exhaustion_is_a_failure () =
  let res = Sc.run (spin_scenario ~max_nodes:4 ~trips:1000) in
  check_bool "budget exhaustion fails the run" false res.Sc.res_ok;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "a failure names the budget" true
    (List.exists (fun m -> contains m "budget") res.Sc.res_failures)

(* ---- single-phase scenario == plain Serve.run ---- *)

let prop_single_phase_matches_plain_run =
  qcheck ~count:4 "one constant-rate serve node observes the plain run"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let cfg = small_cfg ~seed () in
      let sc =
        Sc.make ~name:"one-phase" ~seed ~backend:(single ~seed cfg)
          [ Sc.serve_phase ~label:"only" ~duration_ps:cfg.S.c_duration_ps () ]
      in
      let res = Sc.run sc in
      let plain = S.run cfg () in
      res.Sc.res_ok
      && res.Sc.res_obs = Sc.obs_of_serve plain
      && S.digest plain = S.digest (S.run cfg ()))

(* ---- constant-curve regression ---- *)

(* an Open_loop tenant carrying [Curve.const r] must reproduce the
   historical no-curve report byte-for-byte: the thinning sampler
   degenerates to the exact single-rate draw sequence. *)
let prop_constant_curve_is_historical =
  qcheck ~count:5 "constant rate curve replays the curveless report"
    QCheck.(pair (int_range 0 1000) (int_range 20 200))
    (fun (seed, krps) ->
      let rate = float_of_int krps *. 1000. in
      let flat = small_cfg ~seed ~tenants:[ small_tenant ~rate () ] () in
      let curved =
        small_cfg ~seed
          ~tenants:[ small_tenant ~rate ~curve:(S.Curve.const rate) () ]
          ()
      in
      S.digest (S.run flat ()) = S.digest (S.run curved ()))

(* a genuinely varying curve must not silently degenerate: drive the
   same tenant through a 10x ramp and expect a different arrival set *)
let test_varying_curve_changes_arrivals () =
  let rate = 60_000. in
  let curve = S.Curve.make [ (0, rate); (40_000_000, 10. *. rate) ] in
  let flat = small_cfg ~tenants:[ small_tenant ~rate () ] () in
  let curved = small_cfg ~tenants:[ small_tenant ~rate ~curve () ] () in
  check_bool "ramped curve diverges from flat" false
    (S.digest (S.run flat ()) = S.digest (S.run curved ()))

(* ---- snapshot non-perturbation ---- *)

let test_snapshot_does_not_perturb () =
  let cfg = small_cfg ~seed:7 () in
  let straight = S.run cfg () in
  let s = S.Session.create cfg () in
  S.Session.start_phase s ~duration_ps:cfg.S.c_duration_ps;
  S.Session.advance s ~until:(cfg.S.c_duration_ps / 3);
  ignore (S.Session.snapshot s);
  S.Session.advance s ~until:(2 * cfg.S.c_duration_ps / 3);
  ignore (S.Session.snapshot s);
  ignore (S.Session.snapshot s);
  let probed = S.Session.finish_phase s in
  check_string "mid-phase snapshots leave the report byte-identical"
    (S.digest straight) (S.digest probed)

(* ---- conditions over a real run ---- *)

let test_conditions_see_the_phase () =
  let cfg = small_cfg ~seed:3 () in
  let sc =
    Sc.make ~name:"cond" ~seed:3 ~backend:(single ~seed:3 cfg)
      [
        Sc.serve_phase ~label:"p" ~duration_ps:cfg.S.c_duration_ps ();
        Sc.Let ("done", Sc.Stat (Sc.Completed, "t"));
        Sc.Assert
          {
            a_cond = Sc.Cmp (Sc.Ge, Sc.Var "done", Sc.Const 1.);
            a_msg = "no request completed";
          };
        Sc.Assert
          {
            a_cond =
              Sc.Cmp (Sc.Eq, Sc.Stat (Sc.Completed, "*"), Sc.Var "done");
            a_msg = "aggregate disagrees with the only tenant";
          };
      ]
  in
  let res = Sc.run sc in
  check_bool "assertions hold" true res.Sc.res_ok;
  check_bool "wall clock advanced" true (res.Sc.res_obs.Sc.ob_wall_us > 0.)

(* ---- chaos actions are rejected off-fleet ---- *)

let test_chaos_requires_fleet () =
  let cfg = small_cfg () in
  let sc =
    Sc.make ~name:"chaos-single" ~seed:1 ~backend:(single cfg)
      [ Sc.Act (Sc.Kill 0); Sc.Act Sc.Promote ]
  in
  let res = Sc.run sc in
  check_bool "single-device chaos fails the run" false res.Sc.res_ok;
  check_int "both actions record failures" 2 (List.length res.Sc.res_failures)

let () =
  Alcotest.run "scenario"
    [
      ( "executor",
        [
          prop_transcript_deterministic;
          prop_budget_honored;
          Alcotest.test_case "loop trip bound" `Quick test_trip_bound;
          Alcotest.test_case "budget exhaustion fails" `Quick
            test_budget_exhaustion_is_a_failure;
          Alcotest.test_case "conditions see the phase" `Quick
            test_conditions_see_the_phase;
          Alcotest.test_case "chaos requires a fleet" `Quick
            test_chaos_requires_fleet;
        ] );
      ( "serve-integration",
        [
          prop_single_phase_matches_plain_run;
          prop_constant_curve_is_historical;
          Alcotest.test_case "varying curve diverges" `Quick
            test_varying_curve_changes_arrivals;
          Alcotest.test_case "snapshot non-perturbation" `Quick
            test_snapshot_does_not_perturb;
        ] );
    ]
