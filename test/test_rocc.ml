(* RoCC instruction format, custom command packing, and C++ codegen. *)

module B = Beethoven

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let test_rocc_roundtrip_basic () =
  let cmd =
    {
      B.Rocc.system_id = 3;
      core_id = 17;
      funct = 5;
      expects_response = true;
      payload1 = 0xDEADBEEFL;
      payload2 = Int64.min_int;
    }
  in
  let decoded = B.Rocc.decode (B.Rocc.encode cmd) in
  check_bool "roundtrip" true (decoded = cmd)

let test_rocc_width () =
  let cmd =
    {
      B.Rocc.system_id = 0;
      core_id = 0;
      funct = 0;
      expects_response = false;
      payload1 = 0L;
      payload2 = 0L;
    }
  in
  check_int "wire width" B.Rocc.width (Bits.width (B.Rocc.encode cmd))

let test_rocc_field_limits () =
  let base =
    {
      B.Rocc.system_id = 255;
      core_id = 1023;
      funct = 127;
      expects_response = true;
      payload1 = -1L;
      payload2 = -1L;
    }
  in
  check_bool "extreme values roundtrip" true
    (B.Rocc.decode (B.Rocc.encode base) = base);
  let bad = { base with B.Rocc.core_id = 1024 } in
  Alcotest.check_raises "core_id out of range"
    (Invalid_argument "Rocc: core_id = 1024 out of range [0, 1023]")
    (fun () -> ignore (B.Rocc.encode bad))

let test_rocc_rejects_non_custom () =
  let b = Bits.zero B.Rocc.width in
  let raised =
    try
      ignore (B.Rocc.decode b);
      false
    with Invalid_argument _ -> true
  in
  check_bool "zero opcode rejected" true raised

let test_response_roundtrip () =
  let r =
    { B.Rocc.resp_system_id = 9; resp_core_id = 512; resp_data = 0x1234567890L }
  in
  check_bool "response roundtrip" true
    (B.Rocc.decode_response (B.Rocc.encode_response r) = r)

(* ---- Cmd_spec ---- *)

let vec_cmd =
  B.Cmd_spec.make ~name:"vec_add" ~funct:3 ~response_bits:32
    [
      ("addend", B.Cmd_spec.Uint 32);
      ("vec_addr", B.Cmd_spec.Address);
      ("n_eles", B.Cmd_spec.Uint 20);
    ]

let test_cmd_spec_layout () =
  check_int "payload bits" (32 + 64 + 20) (B.Cmd_spec.payload_bits vec_cmd);
  check_int "beats" 1 (B.Cmd_spec.rocc_beats vec_cmd);
  let wide =
    B.Cmd_spec.make ~name:"wide" ~funct:0
      (List.init 5 (fun i -> (Printf.sprintf "a%d" i, B.Cmd_spec.Address)))
  in
  check_int "5 addresses need 3 beats" 3 (B.Cmd_spec.rocc_beats wide)

let test_cmd_spec_pack_unpack () =
  let values =
    [
      ("addend", 0xCAFEL);
      ("vec_addr", 0x123456789AL);
      ("n_eles", 1000L);
    ]
  in
  let packed = B.Cmd_spec.pack vec_cmd values in
  check_int "one beat" 1 (List.length packed);
  let unpacked = B.Cmd_spec.unpack vec_cmd packed in
  List.iter
    (fun (name, v) -> check_i64 name v (List.assoc name unpacked))
    values

let test_cmd_spec_validation () =
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Cmd_spec.make: duplicate field x") (fun () ->
      ignore
        (B.Cmd_spec.make ~name:"bad" ~funct:0
           [ ("x", B.Cmd_spec.Uint 8); ("x", B.Cmd_spec.Uint 8) ]));
  Alcotest.check_raises "over-wide value"
    (Invalid_argument "Cmd_spec.pack: value too wide for addend") (fun () ->
      ignore
        (B.Cmd_spec.pack vec_cmd
           [
             ("addend", 0x1_0000_0000L);
             ("vec_addr", 0L);
             ("n_eles", 0L);
           ]));
  Alcotest.check_raises "missing field"
    (Invalid_argument "Cmd_spec.pack: field set mismatch") (fun () ->
      ignore (B.Cmd_spec.pack vec_cmd [ ("addend", 0L) ]))

(* ---- Codegen ---- *)

let has haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_codegen_header () =
  let config = Kernels.Vecadd.config ~n_cores:2 () in
  let h = B.Codegen.header config in
  List.iter
    (fun s -> check_bool s true (has h s))
    [
      "namespace VecAdd";
      "response_handle<uint32_t> vec_add(";
      "int16_t core_idx";
      "uint32_t addend";
      "const remote_ptr & vec_addr";
      "uint32_t n_eles";
    ]

let test_codegen_stubs () =
  let config = Kernels.Vecadd.config () in
  let s = B.Codegen.stubs config in
  List.iter
    (fun needle -> check_bool needle true (has s needle))
    [
      "VecAdd::vec_add(";
      "p.push_bits((uint64_t)addend, 32)";
      "p.push_bits(vec_addr.device_address(), 64)";
      "send_command<uint32_t>";
    ]

(* ---- properties ---- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let arb_rocc =
  QCheck.make
    ~print:(fun c -> Printf.sprintf "sys=%d core=%d" c.B.Rocc.system_id c.B.Rocc.core_id)
    QCheck.Gen.(
      map
        (fun (sys, core, funct, xd, (p1, p2)) ->
          {
            B.Rocc.system_id = sys;
            core_id = core;
            funct;
            expects_response = xd;
            payload1 = p1;
            payload2 = p2;
          })
        (tup5 (0 -- 255) (0 -- 1023) (0 -- 127) bool (pair int64 int64)))

let props =
  [
    prop "rocc encode/decode roundtrip" arb_rocc (fun c ->
        B.Rocc.decode (B.Rocc.encode c) = c);
    prop "cmd_spec pack/unpack roundtrip"
      QCheck.(
        list_of_size Gen.(1 -- 10)
          (pair (int_bound 62) (int_bound 1_000_000)))
      (fun fields ->
        (* build a command with the generated widths, pack masked values *)
        let fields =
          List.mapi
            (fun i (w, v) ->
              let w = max 1 w + 1 in
              let name = Printf.sprintf "f%d" i in
              let v = Int64.of_int (v land ((1 lsl min w 30) - 1)) in
              (name, w, v))
            fields
        in
        let total =
          List.fold_left (fun acc (_, w, _) -> acc + w) 0 fields
        in
        QCheck.assume (total <= 8 * 128);
        let cmd =
          B.Cmd_spec.make ~name:"t" ~funct:1
            (List.map (fun (n, w, _) -> (n, B.Cmd_spec.Uint w)) fields)
        in
        let values = List.map (fun (n, _, v) -> (n, v)) fields in
        B.Cmd_spec.unpack cmd (B.Cmd_spec.pack cmd values) = values);
  ]

let () =
  Alcotest.run "rocc"
    [
      ( "rocc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rocc_roundtrip_basic;
          Alcotest.test_case "width" `Quick test_rocc_width;
          Alcotest.test_case "field limits" `Quick test_rocc_field_limits;
          Alcotest.test_case "non-custom rejected" `Quick
            test_rocc_rejects_non_custom;
          Alcotest.test_case "response" `Quick test_response_roundtrip;
        ] );
      ( "cmd_spec",
        [
          Alcotest.test_case "layout" `Quick test_cmd_spec_layout;
          Alcotest.test_case "pack/unpack" `Quick test_cmd_spec_pack_unpack;
          Alcotest.test_case "validation" `Quick test_cmd_spec_validation;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "header" `Quick test_codegen_header;
          Alcotest.test_case "stubs" `Quick test_codegen_stubs;
        ] );
      ("properties", props);
    ]
