(* AXI port model: burst splitting rules, per-ID ordering, out-of-order
   completion across IDs, and trace recording. *)

module E = Desim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?trace () =
  let e = E.create () in
  let d = Dram.create e Dram.Config.ddr4_2400 in
  (e, Axi.create ?trace e d Axi.Params.aws_f1)

(* ---- Burst.split ---- *)

let test_split_simple () =
  let segs =
    Axi.Burst.split ~params:Axi.Params.aws_f1 ~addr:0 ~bytes:(8 * 1024)
  in
  check_int "two 4KB bursts" 2 (List.length segs);
  List.iter
    (fun s -> check_int "64 beats" 64 s.Axi.Burst.beats)
    segs

let test_split_boundary () =
  (* a transfer straddling a 4KB boundary must split there *)
  let segs =
    Axi.Burst.split ~params:Axi.Params.aws_f1 ~addr:(4096 - 128) ~bytes:256
  in
  (match segs with
  | [ a; b ] ->
      check_int "first stops at boundary" 2 a.Axi.Burst.beats;
      check_int "second starts at boundary" 4096 b.Axi.Burst.addr
  | _ -> Alcotest.fail "expected exactly two segments");
  Alcotest.check_raises "unaligned rejected"
    (Invalid_argument "Burst.split: address not beat-aligned") (fun () ->
      ignore (Axi.Burst.split ~params:Axi.Params.aws_f1 ~addr:3 ~bytes:64))

let test_illegal_bursts_rejected () =
  let _, port = mk () in
  Alcotest.check_raises "too long"
    (Invalid_argument "Axi: illegal burst length") (fun () ->
      Axi.read port ~id:0 ~addr:0 ~beats:65 ~on_beat:(fun ~beat:_ -> ())
        ~on_done:ignore);
  Alcotest.check_raises "4KB crossing"
    (Invalid_argument "Axi: burst crosses a 4KB boundary") (fun () ->
      Axi.read port ~id:0 ~addr:(4096 - 64) ~beats:2
        ~on_beat:(fun ~beat:_ -> ())
        ~on_done:ignore);
  Alcotest.check_raises "bad id" (Invalid_argument "Axi: bad id") (fun () ->
      Axi.write port ~id:99 ~addr:0 ~beats:1 ~on_done:ignore)

let test_beats_in_order () =
  let e, port = mk () in
  let beats = ref [] in
  Axi.read port ~id:0 ~addr:0 ~beats:16
    ~on_beat:(fun ~beat -> beats := beat :: !beats)
    ~on_done:ignore;
  E.run e;
  Alcotest.(check (list int))
    "beats 0..15 in order"
    (List.init 16 (fun i -> i))
    (List.rev !beats)

let test_same_id_serializes () =
  (* two transactions on one ID: the second's first beat cannot precede
     the first's last beat *)
  let e, port = mk () in
  let t1_last = ref 0 and t2_first = ref max_int in
  Axi.read port ~id:0 ~addr:0 ~beats:16
    ~on_beat:(fun ~beat -> if beat = 15 then t1_last := E.now e)
    ~on_done:ignore;
  Axi.read port ~id:0 ~addr:8192 ~beats:16
    ~on_beat:(fun ~beat -> if beat = 0 then t2_first := min !t2_first (E.now e))
    ~on_done:ignore;
  E.run e;
  check_bool "strict order on one id" true (!t2_first >= !t1_last)

let test_distinct_ids_overlap () =
  (* on distinct IDs the second transaction is serviced concurrently: the
     gap between the two completions is only the extra bus time, far less
     than a full serialized transaction *)
  let completion_gap id2 =
    let e, port = mk () in
    let t1 = ref 0 and t2 = ref 0 in
    Axi.read port ~id:0 ~addr:0 ~beats:16
      ~on_beat:(fun ~beat:_ -> ())
      ~on_done:(fun _resp -> t1 := E.now e);
    Axi.read port ~id:id2 ~addr:8192 ~beats:16
      ~on_beat:(fun ~beat:_ -> ())
      ~on_done:(fun _resp -> t2 := E.now e);
    E.run e;
    !t2 - !t1
  in
  check_bool "distinct ids pipeline" true
    (completion_gap 1 < completion_gap 0)

let test_multi_id_is_faster () =
  let run n_ids =
    let e, port = mk () in
    let finish = ref 0 in
    let remaining = ref 16 in
    for i = 0 to 15 do
      Axi.read port ~id:(i mod n_ids) ~addr:(i * 1024) ~beats:16
        ~on_beat:(fun ~beat:_ -> ())
        ~on_done:(fun _resp ->
          decr remaining;
          if !remaining = 0 then finish := E.now e)
    done;
    E.run e;
    !finish
  in
  check_bool "4 ids beat 1 id" true (run 4 < run 1)

let test_write_response () =
  let e, port = mk () in
  let done_ = ref false in
  Axi.write port ~id:2 ~addr:4096 ~beats:8 ~on_done:(fun _resp -> done_ := true);
  E.run e;
  check_bool "B response delivered" true !done_;
  check_int "one write issued" 1 (Axi.writes_issued port)

let test_trace_events () =
  let trace = Axi.Trace.create () in
  let e, port = mk ~trace () in
  Axi.read port ~id:0 ~addr:0 ~beats:4
    ~on_beat:(fun ~beat:_ -> ())
    ~on_done:ignore;
  Axi.write port ~id:1 ~addr:4096 ~beats:2 ~on_done:ignore;
  E.run e;
  let evs = Axi.Trace.events trace in
  let count p = List.length (List.filter p evs) in
  check_int "one AR" 1 (count (fun ev -> ev.Axi.Trace.channel = Axi.Trace.AR));
  check_int "one AW" 1 (count (fun ev -> ev.Axi.Trace.channel = Axi.Trace.AW));
  check_int "one R_last" 1
    (count (fun ev -> ev.Axi.Trace.channel = Axi.Trace.R_last));
  check_int "one B" 1 (count (fun ev -> ev.Axi.Trace.channel = Axi.Trace.B));
  check_bool "time-sorted" true
    (fst
       (List.fold_left
          (fun (ok, prev) ev -> (ok && ev.Axi.Trace.time >= prev, ev.Axi.Trace.time))
          (true, 0) evs));
  let rendered = Axi.Trace.render trace ~time_scale:10_000 in
  check_bool "render mentions lanes" true (String.length rendered > 20)

(* ---- properties ---- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:150 ~name arb f)

let props =
  [
    prop "split covers the transfer exactly, no burst crosses 4KB"
      QCheck.(pair (int_bound 10_000) (1 -- 300))
      (fun (addr_blk, n_beats) ->
        let p = Axi.Params.aws_f1 in
        let addr = addr_blk * p.Axi.Params.data_bytes in
        let bytes = n_beats * p.Axi.Params.data_bytes in
        let segs = Axi.Burst.split ~params:p ~addr ~bytes in
        (* contiguous coverage *)
        let covered, end_addr =
          List.fold_left
            (fun (ok, pos) s ->
              ( ok && s.Axi.Burst.addr = pos,
                s.Axi.Burst.addr + (s.Axi.Burst.beats * p.Axi.Params.data_bytes) ))
            (true, addr) segs
        in
        covered
        && end_addr = addr + bytes
        && List.for_all
             (fun s ->
               s.Axi.Burst.beats >= 1
               && s.Axi.Burst.beats <= p.Axi.Params.max_burst_beats
               &&
               let last =
                 s.Axi.Burst.addr
                 + (s.Axi.Burst.beats * p.Axi.Params.data_bytes)
                 - 1
               in
               s.Axi.Burst.addr / 4096 = last / 4096)
             segs);
    prop "per-ID transactions complete in issue order"
      QCheck.(list_of_size Gen.(2 -- 12) (pair (int_bound 3) (1 -- 16)))
      (fun txns ->
        let e, port = mk () in
        let completions = Hashtbl.create 4 in
        List.iteri
          (fun i (id, beats) ->
            Axi.read port ~id ~addr:(i * 4096) ~beats
              ~on_beat:(fun ~beat:_ -> ())
              ~on_done:(fun _resp ->
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt completions id)
                in
                Hashtbl.replace completions id (i :: cur)))
          txns;
        E.run e;
        Hashtbl.fold
          (fun _ order ok ->
            ok
            && List.rev order
               = List.sort compare (List.rev order))
          completions true);
  ]

let () =
  Alcotest.run "axi"
    [
      ( "burst",
        [
          Alcotest.test_case "simple split" `Quick test_split_simple;
          Alcotest.test_case "4KB boundary" `Quick test_split_boundary;
          Alcotest.test_case "illegal rejected" `Quick test_illegal_bursts_rejected;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "beats in order" `Quick test_beats_in_order;
          Alcotest.test_case "same id serializes" `Quick test_same_id_serializes;
          Alcotest.test_case "distinct ids overlap" `Quick test_distinct_ids_overlap;
          Alcotest.test_case "multi-id faster" `Quick test_multi_id_is_faster;
          Alcotest.test_case "write response" `Quick test_write_response;
        ] );
      ("trace", [ Alcotest.test_case "events" `Quick test_trace_events ]);
      ("properties", props);
    ]
