(* The closed-loop autotuner and its content-hashed elaboration cache:
   cached elaboration must be indistinguishable from fresh elaboration
   (the cache-equivalence property), the search must be a deterministic
   function of its seed, and a one-knob config delta must hit the cache
   for every system it did not touch. *)

module B = Beethoven
module C = B.Config
module D = Platform.Device

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- random multi-system configurations ---- *)

(* Plain (TLM) systems in the shape of test_fuzz's generator, plus an
   optional RTL-DSL kernel system so the cached analyses (netlist lint,
   STA, circuit stats) are exercised on a non-trivial circuit. *)
let gen_config =
  QCheck.Gen.(
    let* n_systems = 1 -- 2 in
    let* systems =
      flatten_l
        (List.init n_systems (fun si ->
             let* n_cores = 1 -- 4 in
             let* n_read = 0 -- 2 in
             let* n_write = 0 -- 1 in
             let* n_spads = 0 -- 1 in
             let* spad_bits = oneofl [ 8; 32; 64 ] in
             let* spad_depth = 16 -- 1024 in
             let* burst = oneofl [ 8; 16; 32 ] in
             let* in_flight = 1 -- 4 in
             let* tlp = bool in
             return
               (C.system
                  ~name:(Printf.sprintf "S%d" si)
                  ~n_cores
                  ~read_channels:
                    (List.init n_read (fun i ->
                         C.read_channel
                           ~name:(Printf.sprintf "r%d" i)
                           ~data_bytes:4 ~burst_beats:burst
                           ~max_in_flight:in_flight ~use_tlp:tlp
                           ~buffer_beats:(4 * burst) ()))
                  ~write_channels:
                    (List.init n_write (fun i ->
                         C.write_channel
                           ~name:(Printf.sprintf "w%d" i)
                           ~data_bytes:4 ~burst_beats:burst
                           ~max_in_flight:in_flight ~use_tlp:tlp
                           ~buffer_beats:(4 * burst) ()))
                  ~scratchpads:
                    (List.init n_spads (fun i ->
                         C.scratchpad
                           ~name:(Printf.sprintf "sp%d" i)
                           ~data_bits:spad_bits ~n_datas:spad_depth ()))
                  ~commands:
                    [ B.Cmd_spec.make ~name:"go" ~funct:0 ~response_bits:32 [] ]
                  ())))
    in
    let* rtl = bool in
    let* rtl_cores = 1 -- 2 in
    let systems =
      if rtl then
        systems
        @ (Kernels.Vecadd_rtl.config ~n_cores:rtl_cores ()).C.systems
      else systems
    in
    return (C.make ~name:"tunefuzz" systems))

let arb_config = QCheck.make ~print:(fun c -> c.C.acc_name) gen_config

let prop name ?(count = 40) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* observable fingerprint of an elaboration: every cached artifact,
   rendered to stable text *)
let fingerprint (d : B.Elaborate.t) =
  String.concat "\n"
    ([ Hw.Diag.render_json d.B.Elaborate.diagnostics ]
    @ List.map
        (fun (n, r) -> n ^ ":" ^ Hw.Sta.to_json r)
        d.B.Elaborate.sta
    @ List.map
        (fun (n, stats) ->
          n ^ ":"
          ^ String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) stats))
        d.B.Elaborate.kernel_stats)

let outcome f = match f () with d -> Ok (fingerprint d) | exception e -> Error (Printexc.to_string e)

(* ---- cache equivalence (the qcheck property) ---- *)

let test_cache_equivalence =
  prop "cached elaboration == fresh elaboration" arb_config (fun config ->
      let cache = B.Elaborate.Cache.create () in
      let fresh = outcome (fun () -> B.Elaborate.elaborate config D.aws_f1) in
      let cold =
        outcome (fun () -> B.Elaborate.Cache.elaborate cache config D.aws_f1)
      in
      (* a second cached elaboration is all hits and still identical *)
      let warm =
        outcome (fun () -> B.Elaborate.Cache.elaborate cache config D.aws_f1)
      in
      fresh = cold && fresh = warm)

(* warm lookups really are hits (the equivalence above would also pass
   on a cache that never stored anything) *)
let test_cache_warm_hits () =
  let config = Kernels.Vecadd_rtl.config ~n_cores:2 () in
  let cache = B.Elaborate.Cache.create () in
  ignore (B.Elaborate.Cache.elaborate cache config D.aws_f1);
  check_int "cold misses" (List.length config.C.systems)
    (B.Elaborate.Cache.misses cache);
  ignore (B.Elaborate.Cache.elaborate cache config D.aws_f1);
  check_int "warm hits" (List.length config.C.systems)
    (B.Elaborate.Cache.hits cache);
  List.iter
    (fun (_, hit) -> check_bool "warm lookup is a hit" true hit)
    (B.Elaborate.Cache.last_lookups cache)

(* ---- cache hit-rate regression: one-knob delta ---- *)

(* A one-knob memory-channel delta on a multi-system config must hit for
   every untouched system and miss only for the one it changed. *)
let test_one_knob_delta () =
  let base =
    C.make ~name:"delta"
      ((Kernels.Vecadd_rtl.config ~n_cores:2 ()).C.systems
      @ (Attention.A3_rtl_core.config ~n_cores:1 ()).C.systems)
  in
  check_bool "multi-system config" true (List.length base.C.systems >= 2);
  let cache = B.Elaborate.Cache.create () in
  ignore (B.Elaborate.Cache.elaborate cache base D.aws_f1);
  let touched = (List.hd base.C.systems).C.sys_name in
  let bump (sys : C.system) =
    if sys.C.sys_name <> touched then sys
    else
      {
        sys with
        C.read_channels =
          List.map
            (fun (rc : C.read_channel) ->
              { rc with C.rc_n_channels = rc.C.rc_n_channels + 1 })
            sys.C.read_channels;
      }
  in
  let delta = { base with C.systems = List.map bump base.C.systems } in
  ignore (B.Elaborate.Cache.elaborate cache delta D.aws_f1);
  List.iter
    (fun (name, hit) ->
      if name = touched then
        check_bool (name ^ " re-analyzed") false hit
      else check_bool (name ^ " cache hit") true hit)
    (B.Elaborate.Cache.last_lookups cache);
  (* the key really moved for the touched system only *)
  List.iter2
    (fun (a : C.system) (b : C.system) ->
      let same =
        B.Elaborate.Cache.system_key a = B.Elaborate.Cache.system_key b
      in
      check_bool (a.C.sys_name ^ " key stability") (a.C.sys_name <> touched)
        same)
    base.C.systems delta.C.systems

(* ---- the Dse pre-filter shares the cache ---- *)

let test_dse_fit_cached () =
  let cache = B.Elaborate.Cache.create () in
  let config = Kernels.Vecadd_rtl.config ~n_cores:2 () in
  (match B.Dse.fit ~cache config D.aws_f1 with
  | Ok util -> check_bool "utilization in (0,1]" true (util > 0. && util <= 1.)
  | Error m -> Alcotest.failf "vecadd-rtl should fit: %s" m);
  let misses = B.Elaborate.Cache.misses cache in
  (match B.Dse.fit ~cache config D.aws_f1 with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "second fit: %s" m);
  check_int "second fit is all hits" misses (B.Elaborate.Cache.misses cache);
  check_bool "hits recorded" true (B.Elaborate.Cache.hits cache > 0)

(* ---- tuner determinism and search behavior ---- *)

let tune_args = (7, 3, 1, 50_000_000)

let small_run () =
  let seed, budget, ab_rounds, phase_ps = tune_args in
  Tune.run ~seed ~budget ~ab_rounds ~phase_ps ()

let test_tune_deterministic () =
  let r1 = small_run () and r2 = small_run () in
  check_string "pareto JSON byte-identical" (Tune.pareto_json r1)
    (Tune.pareto_json r2);
  check_string "digest agrees" (Tune.digest r1) (Tune.digest r2)

let test_tune_result_shape () =
  let r = small_run () in
  check_int "seed candidate + budget proposals"
    (r.Tune.r_budget + 1)
    (List.length r.Tune.r_candidates);
  check_bool "no accounting violations" true (r.Tune.r_violations = []);
  check_bool "cache was exercised" true (r.Tune.r_cache_misses > 0);
  check_bool "cache hits across candidates" true (r.Tune.r_cache_hits > 0);
  let front = Tune.pareto r in
  check_bool "non-empty pareto front" true (front <> []);
  (* the final incumbent is never dominated *)
  check_bool "incumbent on the front" true
    (List.exists (fun c -> c.Tune.ca_id = r.Tune.r_best.Tune.ca_id) front)

let test_tune_promotion_improves () =
  (* the default-knob search must find a promotion, and the promoted
     incumbent must not be worse than the seed on either measured axis
     (this is the bench acceptance bar in miniature) *)
  let r = Tune.run ~seed:42 ~budget:6 () in
  check_bool "at least one promotion" true (r.Tune.r_promotions > 0);
  let score c =
    match c.Tune.ca_outcome with
    | Tune.Evaluated { ev_score; _ } -> ev_score
    | Tune.Infeasible m -> Alcotest.failf "unscored candidate: %s" m
  in
  let s0 =
    score (List.find (fun c -> c.Tune.ca_id = 0) r.Tune.r_candidates)
  in
  let sb = score r.Tune.r_best in
  check_bool "throughput not regressed" true
    (sb.Tune.sc_rps >= s0.Tune.sc_rps *. 0.99);
  check_bool "p99 not regressed beyond the rule" true
    (sb.Tune.sc_p99_us <= (s0.Tune.sc_p99_us *. 1.10) +. 1e-9)

let test_axis_names_roundtrip () =
  List.iter
    (fun ax ->
      match Tune.axis_of_name (Tune.axis_name ax) with
      | Some ax' -> check_bool (Tune.axis_name ax) true (ax = ax')
      | None -> Alcotest.failf "axis %s does not round-trip" (Tune.axis_name ax))
    Tune.all_axes;
  check_bool "unknown axis rejected" true (Tune.axis_of_name "bogus" = None)

let () =
  Alcotest.run "tune"
    [
      ( "cache",
        [
          test_cache_equivalence;
          Alcotest.test_case "warm lookups hit" `Quick test_cache_warm_hits;
          Alcotest.test_case "one-knob delta hits untouched systems" `Quick
            test_one_knob_delta;
          Alcotest.test_case "dse fit shares the cache" `Quick
            test_dse_fit_cached;
        ] );
      ( "search",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_tune_deterministic;
          Alcotest.test_case "result shape" `Quick test_tune_result_shape;
          Alcotest.test_case "promotion improves on the seed" `Slow
            test_tune_promotion_improves;
          Alcotest.test_case "axis names round-trip" `Quick
            test_axis_names_roundtrip;
        ] );
    ]
