(* The lib/trace observability subsystem: span-tree well-formedness, the
   counter registry, sink content, cross-layer transaction correlation on
   a traced memcpy, and byte-identical determinism across same-seed runs. *)

module D = Platform.Device
module T = Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* naive substring test — enough for sink-content checks *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let f1_one_channel = { D.aws_f1 with D.dram = Dram.Config.ddr4_2400 }

let traced_memcpy ?(seed = 11) ?(bytes = 16 * 1024) () =
  let tracer = T.create () in
  let r =
    Kernels.Memcpy.run ~tracer ~seed ~impl:Kernels.Memcpy.Beethoven ~bytes
      ~platform:f1_one_channel ()
  in
  (tracer, r)

(* ---- span model ---- *)

let test_span_basics () =
  let t = T.create () in
  let root = T.begin_span t ~now:0 ~txn:(T.fresh_txn t) ~track:"a" ~cat:"c"
      ~name:"root" () in
  let child = T.begin_span t ~now:5 ~parent:root ~track:"b" ~cat:"c"
      ~name:"child" () in
  T.end_span t ~now:8 child;
  T.end_span t ~now:10 root;
  Alcotest.(check (list string)) "clean tree" [] (T.check t);
  check_int "spans" 2 (T.span_count t);
  check_int "txns" 1 (T.txn_count t);
  (* closing again (or an unknown id) is ignored, not an error *)
  T.end_span t ~now:99 child;
  T.end_span t ~now:99 12345;
  Alcotest.(check (list string)) "still clean" [] (T.check t)

let test_check_catches_malformed () =
  let unclosed = T.create () in
  ignore (T.begin_span unclosed ~now:0 ~track:"a" ~cat:"c" ~name:"x" ());
  check_bool "unclosed span reported" true (T.check unclosed <> []);
  let backwards = T.create () in
  let sp = T.begin_span backwards ~now:10 ~track:"a" ~cat:"c" ~name:"x" () in
  T.end_span backwards ~now:5 sp;
  check_bool "stop < start reported" true (T.check backwards <> []);
  let escapee = T.create () in
  let p = T.begin_span escapee ~now:0 ~track:"a" ~cat:"c" ~name:"p" () in
  T.end_span escapee ~now:10 p;
  let c = T.begin_span escapee ~now:20 ~parent:p ~track:"a" ~cat:"c"
      ~name:"c" () in
  T.end_span escapee ~now:25 c;
  check_bool "child starting after parent end reported" true
    (T.check escapee <> []);
  (* a child merely *ending* after its parent is only a strict-mode error
     (fault campaigns: a duplicate response outlives the resolved root) *)
  let overhang = T.create () in
  let p = T.begin_span overhang ~now:0 ~track:"a" ~cat:"c" ~name:"p" () in
  let c = T.begin_span overhang ~now:5 ~parent:p ~track:"a" ~cat:"c"
      ~name:"c" () in
  T.end_span overhang ~now:10 p;
  T.end_span overhang ~now:15 c;
  check_bool "overhang flagged strictly" true
    (T.check ~strict:true overhang <> []);
  Alcotest.(check (list string)) "overhang tolerated loosely" []
    (T.check ~strict:false overhang)

let test_txn_inheritance () =
  let t = T.create () in
  let txn = T.fresh_txn t in
  let root = T.begin_span t ~now:0 ~txn ~track:"a" ~cat:"c" ~name:"r" () in
  let child = T.begin_span t ~now:1 ~parent:root ~track:"b" ~cat:"c"
      ~name:"k" () in
  let grandchild = T.begin_span t ~now:2 ~parent:child ~track:"b" ~cat:"c"
      ~name:"g" () in
  T.end_span t ~now:3 grandchild;
  T.end_span t ~now:4 child;
  T.end_span t ~now:5 root;
  (* inheritance is observable through the chrome sink's txn args *)
  let json = T.to_chrome_json t in
  let lines = String.split_on_char '\n' json in
  let spans_with_txn =
    List.length
      (List.filter
         (fun l ->
           contains l "\"ph\":\"X\""
           && contains l (Printf.sprintf "\"txn\":%d" txn))
         lines)
  in
  check_int "all three spans share the minted txn" 3 spans_with_txn

(* ---- registry ---- *)

let test_registry () =
  let t = T.create () in
  check_int "virgin counter" 0 (T.counter_value t "x");
  T.add t "x" 3;
  T.add t "x" 4;
  check_int "accumulates" 7 (T.counter_value t "x");
  T.sample t ~now:0 "q" 1;
  T.sample t ~now:10 "q" 3;
  List.iter (T.observe t "lat") [ 10.; 20.; 30.; 40. ];
  (match T.series_quantiles t "lat" with
  | Some (p50, p95, p99) ->
      check_bool "p50 sane" true (p50 >= 10. && p50 <= 40.);
      check_bool "quantiles ordered" true (p50 <= p95 && p95 <= p99)
  | None -> Alcotest.fail "series should exist");
  check_bool "absent series" true (T.series_quantiles t "nope" = None)

(* ---- full-stack memcpy trace ---- *)

let test_memcpy_trace_clean () =
  let tracer, r = traced_memcpy () in
  check_bool "memcpy verified" true r.Kernels.Memcpy.verified;
  Alcotest.(check (list string))
    "well-formed even strictly" [] (T.check ~strict:true tracer);
  check_bool "spans recorded" true (T.span_count tracer > 0);
  check_int "exactly one host transaction" 1 (T.txn_count tracer);
  check_bool "read traffic counted" true
    (T.counter_value tracer "ddr0.read_bytes" >= 16 * 1024);
  check_bool "core busy time counted" true
    (T.counter_value tracer "core Memcpy/0.busy_ps" > 0)

let test_memcpy_txn_correlation () =
  let tracer, _ = traced_memcpy () in
  let json = T.to_chrome_json tracer in
  let lines = String.split_on_char '\n' json in
  (* every layer of the stack must contribute at least one span carrying
     the single host command's transaction id *)
  List.iter
    (fun cat ->
      check_bool
        (Printf.sprintf "category %s correlated under txn 0" cat)
        true
        (List.exists
           (fun l ->
             contains l (Printf.sprintf "\"cat\":\"%s\"" cat)
             && contains l "\"txn\":0")
           lines))
    [ "command"; "server"; "noc"; "exec"; "mem"; "axi"; "dram" ]

let test_sinks_render () =
  let tracer, _ = traced_memcpy () in
  let profile = T.profile tracer in
  check_bool "profile header renders" true (contains profile "kernel profile:");
  check_bool "profile mentions exec" true (contains profile "exec");
  (* counter/series presence used to be asserted by grepping the emitted
     profile text; the structured snapshot reads the registry directly *)
  let counters = T.Counters.snapshot tracer in
  check_bool "read-bytes counter snapshotted" true
    (List.mem_assoc "ddr0.read_bytes" counters);
  check_bool "snapshot agrees with counter_value" true
    (List.assoc "ddr0.read_bytes" counters
    = T.counter_value tracer "ddr0.read_bytes");
  check_bool "hop-latency series summarized" true
    (match T.Series.summary tracer "noc.cmd.hop_ps" with
    | Some s -> s.T.Series.su_n > 0 && s.T.Series.su_p50 <= s.T.Series.su_p99
    | None -> false);
  let timeline = T.axi_timeline tracer in
  check_bool "timeline has a read lane" true (contains timeline "ddr0 rd");
  check_bool "timeline has issue glyphs" true (contains timeline ">");
  let json = T.to_chrome_json tracer in
  check_bool "chrome header" true
    (contains json "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  check_bool "chrome metadata" true (contains json "thread_name")

(* ---- traced fault campaign ---- *)

let test_traced_campaign () =
  let tracer = T.create () in
  let plan = Fault.Plan.default_recoverable ~seed:7 () in
  let r =
    Kernels.Campaign.run ~tracer ~plan ~bytes:(16 * 1024) ~iters:2
      ~platform:f1_one_channel ()
  in
  check_bool "campaign clean" true (Kernels.Campaign.clean r);
  (* at-least-once delivery: duplicate responses may outlive the resolved
     root span, so only the loose check is guaranteed for campaigns *)
  Alcotest.(check (list string))
    "campaign trace well-formed (loose)" []
    (T.check ~strict:false tracer);
  check_bool "campaign recorded spans" true (T.span_count tracer > 0)

(* ---- determinism ---- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:6 ~name arb f)

let props =
  [
    prop "same seed, byte-identical chrome JSON"
      QCheck.(int_bound 1000)
      (fun seed ->
        let run () =
          let tracer, _ = traced_memcpy ~seed ~bytes:4096 () in
          T.to_chrome_json tracer
        in
        String.equal (run ()) (run ()));
    prop "traced memcpy span tree is always well-formed"
      QCheck.(int_bound 1000)
      (fun seed ->
        let tracer, r = traced_memcpy ~seed ~bytes:4096 () in
        r.Kernels.Memcpy.verified && T.check ~strict:true tracer = []);
  ]

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "basics" `Quick test_span_basics;
          Alcotest.test_case "malformed trees" `Quick
            test_check_catches_malformed;
          Alcotest.test_case "txn inheritance" `Quick test_txn_inheritance;
        ] );
      ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
      ( "memcpy",
        [
          Alcotest.test_case "clean trace" `Quick test_memcpy_trace_clean;
          Alcotest.test_case "txn correlation" `Quick
            test_memcpy_txn_correlation;
          Alcotest.test_case "sinks" `Quick test_sinks_render;
        ] );
      ( "campaign",
        [ Alcotest.test_case "traced campaign" `Quick test_traced_campaign ]
      );
      ("determinism", props);
    ]
