(* Fault-injection subsystem: ECC correctness, campaign determinism,
   bounded-retry give-up, quarantine + rerouting, and the freed-memory
   safety rails in the runtime. *)

module F = Fault
module H = Runtime.Handle
module A = Runtime.Alloc
module D = Platform.Device

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qcheck ?(count = 30) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ---- SECDED ECC ---- *)

let prop_ecc_roundtrip =
  qcheck ~count:200 "clean codewords decode Ok" QCheck.int64 (fun w ->
      F.Ecc.decode ~data:w ~check:(F.Ecc.encode w) = F.Ecc.Ok)

let prop_ecc_single_bit =
  qcheck ~count:100 "every single data-bit flip is corrected" QCheck.int64
    (fun w ->
      let check = F.Ecc.encode w in
      let ok = ref true in
      for bit = 0 to 63 do
        let corrupted = Int64.logxor w (Int64.shift_left 1L bit) in
        (match F.Ecc.decode ~data:corrupted ~check with
        | F.Ecc.Corrected repaired -> if repaired <> w then ok := false
        | _ -> ok := false)
      done;
      !ok)

let prop_ecc_double_bit =
  qcheck ~count:100 "every double data-bit flip is flagged uncorrectable"
    QCheck.(triple int64 (int_bound 63) (int_bound 62))
    (fun (w, b1, db) ->
      let b2 = (b1 + 1 + db) mod 64 in
      QCheck.assume (b1 <> b2);
      let corrupted =
        Int64.logxor
          (Int64.logxor w (Int64.shift_left 1L b1))
          (Int64.shift_left 1L b2)
      in
      F.Ecc.decode ~data:corrupted ~check:(F.Ecc.encode w) = F.Ecc.Uncorrectable)

let test_ecc_scrub_repairs_memory () =
  let ecc = F.Ecc.create () in
  let mem = Bytes.create 64 in
  for i = 0 to 7 do
    Bytes.set_int64_le mem (i * 8) (Int64.of_int ((i * 2654435761) lor 1))
  done;
  let orig = Bytes.copy mem in
  F.Ecc.inject_flip ecc ~mem ~word_addr:16 ~bit:5;
  check_bool "memory corrupted" true (not (Bytes.equal mem orig));
  let corrected, uncorrectable = F.Ecc.scrub ecc ~mem ~addr:0 ~bytes:64 in
  check_int "one word repaired" 1 corrected;
  check_int "no uncorrectable" 0 uncorrectable;
  check_bool "memory restored in place" true (Bytes.equal mem orig);
  (* a second scrub finds nothing: the latch was consumed by the repair *)
  let c2, u2 = F.Ecc.scrub ecc ~mem ~addr:0 ~bytes:64 in
  check_int "idempotent" 0 (c2 + u2)

let test_ecc_double_flip_detected () =
  let ecc = F.Ecc.create () in
  let mem = Bytes.create 32 in
  Bytes.set_int64_le mem 8 0x1234_5678_9abc_def0L;
  F.Ecc.inject_flip ecc ~mem ~word_addr:8 ~bit:3;
  F.Ecc.inject_flip ecc ~mem ~word_addr:8 ~bit:40;
  let corrected, uncorrectable = F.Ecc.scrub ecc ~mem ~addr:0 ~bytes:32 in
  check_int "nothing correctable" 0 corrected;
  check_int "flagged uncorrectable" 1 uncorrectable;
  check_bool "corruption stands" true
    (Bytes.get_int64_le mem 8 <> 0x1234_5678_9abc_def0L);
  check_int "running total" 1 (F.Ecc.uncorrectable ecc)

let test_ecc_write_clears_latch () =
  let ecc = F.Ecc.create () in
  let mem = Bytes.create 16 in
  Bytes.set_int64_le mem 0 99L;
  F.Ecc.inject_flip ecc ~mem ~word_addr:0 ~bit:0;
  (* fresh data lands over the corrupted word: the latched codeword is
     stale and must not "repair" the new contents *)
  Bytes.set_int64_le mem 0 77L;
  F.Ecc.note_write ecc ~addr:0 ~bytes:8;
  let corrected, uncorrectable = F.Ecc.scrub ecc ~mem ~addr:0 ~bytes:16 in
  check_int "nothing to scrub" 0 (corrected + uncorrectable);
  check_string "fresh data intact" "77"
    (Int64.to_string (Bytes.get_int64_le mem 0))

(* ---- campaign determinism ---- *)

let small_campaign ~plan =
  Kernels.Campaign.run ~plan ~bytes:8192 ~iters:1 ~n_cores:2
    ~platform:D.aws_f1 ()

let prop_campaign_deterministic =
  qcheck ~count:5 "same seed => identical fault log and counters"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let plan = F.Plan.default_recoverable ~seed () in
      let a = small_campaign ~plan and b = small_campaign ~plan in
      a.Kernels.Campaign.counters = b.Kernels.Campaign.counters
      && F.Log.render a.Kernels.Campaign.log
         = F.Log.render b.Kernels.Campaign.log
      && a.Kernels.Campaign.wall_ps = b.Kernels.Campaign.wall_ps)

let test_campaign_seeds_differ () =
  (* not a hard guarantee per-seed, but across a scaled-up mix two seeds
     producing bit-identical logs would mean the seed is ignored *)
  let mix seed =
    F.Plan.scale 2.0 (F.Plan.default_recoverable ~seed ())
  in
  let a = small_campaign ~plan:(mix 1) and b = small_campaign ~plan:(mix 2) in
  check_bool "different seeds diverge" true
    (F.Log.render a.Kernels.Campaign.log
    <> F.Log.render b.Kernels.Campaign.log)

let test_default_mix_fully_recovered () =
  let r =
    Kernels.Campaign.run
      ~plan:(F.Plan.default_recoverable ~seed:11 ())
      ~bytes:32768 ~iters:2 ~n_cores:2 ~platform:D.aws_f1 ()
  in
  check_bool "campaign clean" true (Kernels.Campaign.clean r);
  check_bool "faults actually fired" true (r.Kernels.Campaign.injected > 0);
  check_int "accounting closes" r.Kernels.Campaign.injected
    (r.Kernels.Campaign.recovered + r.Kernels.Campaign.unrecovered)

(* ---- bounded retry gives up cleanly ---- *)

let only cls rate seed =
  { F.Plan.none with F.Plan.seed; rates = [ (cls, rate) ] }

let test_axi_retry_exhaustion_terminates () =
  (* every AXI read burst errors on every attempt: retries must exhaust
     and the stream force-complete rather than wedge the simulation *)
  let r = small_campaign ~plan:(only F.Class.Axi_read_error 1.0 3) in
  check_bool "gave up on something" true (r.Kernels.Campaign.unrecovered > 0);
  check_int "accounting closes" r.Kernels.Campaign.injected
    (r.Kernels.Campaign.recovered + r.Kernels.Campaign.unrecovered);
  check_int "nothing left pending" 0 r.Kernels.Campaign.pending

let test_dma_failure_surfaces_as_corruption () =
  let r = small_campaign ~plan:(only F.Class.Dma_fail 1.0 4) in
  check_bool "dma gave up" true (r.Kernels.Campaign.unrecovered > 0);
  check_bool "corruption detected by verification" true
    (not r.Kernels.Campaign.data_ok)

let test_double_flips_are_unrecovered () =
  let r = small_campaign ~plan:(only F.Class.Dram_double_flip 0.25 5) in
  check_bool "uncorrectable errors seen" true
    (r.Kernels.Campaign.ecc_uncorrectable > 0);
  check_bool "campaign not clean" true (not (Kernels.Campaign.clean r))

(* ---- quarantine and rerouting ---- *)

let test_hang_quarantine_reroute () =
  let plan =
    F.Plan.with_hang ~after:1 ~system:0 ~core:0 F.Plan.none
  in
  let r =
    Kernels.Campaign.run ~plan ~bytes:8192 ~iters:3 ~n_cores:2
      ~platform:D.aws_f1 ()
  in
  check_int "one quarantine" 1 r.Kernels.Campaign.quarantines;
  check_bool "watchdog fired" true (r.Kernels.Campaign.command_timeouts > 0);
  check_bool "rerouted commands all completed" true
    (r.Kernels.Campaign.failed_commands = 0);
  check_bool "hang itself accounted recovered" true
    (Kernels.Campaign.clean r)

let test_hang_single_core_fails_cleanly () =
  (* nowhere to reroute: awaits must raise (caught by the campaign), the
     simulation must still drain — never hang *)
  let plan = F.Plan.with_hang ~after:1 ~system:0 ~core:0 F.Plan.none in
  let r =
    Kernels.Campaign.run ~plan ~bytes:8192 ~iters:2 ~n_cores:1
      ~platform:D.aws_f1 ()
  in
  check_int "one quarantine" 1 r.Kernels.Campaign.quarantines;
  check_bool "commands failed" true (r.Kernels.Campaign.failed_commands > 0);
  check_bool "loss recorded" true (r.Kernels.Campaign.unrecovered > 0);
  check_int "nothing pending either way" 0 r.Kernels.Campaign.pending

let test_quarantine_visible_on_handle () =
  let inj =
    F.Injector.create (F.Plan.with_hang ~after:1 ~system:0 ~core:0 F.Plan.none)
  in
  let design =
    Beethoven.Elaborate.elaborate (Kernels.Campaign.config ~n_cores:2) D.aws_f1
  in
  let soc =
    Beethoven.Soc.create ~fault:inj design ~behaviors:(fun _ ->
        Kernels.Memcpy.behavior)
  in
  let h = H.create soc in
  let src = H.malloc h 4096 and dst = H.malloc h 4096 in
  let rh =
    H.send h ~system:"Memcpy" ~core:0 ~cmd:Kernels.Memcpy.command
      ~args:
        [
          ("src", Int64.of_int src.H.rp_addr);
          ("dst", Int64.of_int dst.H.rp_addr);
          ("bytes", 4096L);
        ]
  in
  let v = H.await h rh in
  check_string "rerouted command responded" "4096" (Int64.to_string v);
  check_bool "core 0 quarantined" true
    (H.is_quarantined h ~system_id:0 ~core_id:0);
  check_bool "core 1 healthy" true
    (not (H.is_quarantined h ~system_id:0 ~core_id:1));
  check_bool "hang latched on the SoC" true
    (Beethoven.Soc.core_hung soc ~system_id:0 ~core_id:0);
  check_int "exactly one quarantine logged" 1 (F.Injector.quarantines inj)

(* ---- freed-memory safety rails ---- *)

let fresh_handle () =
  let design =
    Beethoven.Elaborate.elaborate (Kernels.Campaign.config ~n_cores:1) D.aws_f1
  in
  Beethoven.Soc.create design ~behaviors:(fun _ -> Kernels.Memcpy.behavior)

let test_never_allocated_free () =
  let a = A.create ~size:(1 lsl 16) () in
  Alcotest.check_raises "free of a foreign address"
    (A.Invalid_free { addr = 4096; reason = A.Never_allocated }) (fun () ->
      A.free a 4096)

let test_poison_freed () =
  let h = H.create ~poison_freed:true (fresh_handle ()) in
  let p = H.malloc h 64 in
  let buf = H.host_bytes h p in
  Bytes.fill buf 0 64 'A';
  H.mfree h p;
  (* the stale Bytes.t must read as poison, not as the old contents *)
  check_int "poisoned" 0xde (Char.code (Bytes.get buf 0));
  check_int "poisoned to the end" 0xde (Char.code (Bytes.get buf 63))

let test_stale_pointer_after_reuse () =
  let h = H.create (fresh_handle ()) in
  let p1 = H.malloc h 4096 in
  H.mfree h p1;
  let p2 = H.malloc h 4096 in
  check_int "base recycled" p1.H.rp_addr p2.H.rp_addr;
  Alcotest.check_raises "old pointer is stale"
    (H.Stale_pointer { addr = p1.H.rp_addr; bytes = p1.H.rp_bytes }) (fun () ->
      ignore (H.host_bytes h p1));
  (* the fresh pointer still works *)
  check_int "new pointer live" 4096 (Bytes.length (H.host_bytes h p2))

(* ---- injector accounting ---- *)

let test_injector_lost_accounting () =
  let inj = F.Injector.create (F.Plan.default_recoverable ~seed:1 ()) in
  F.Injector.note_lost inj ~now:10 ~cls:F.Class.Noc_cmd_drop ~key:7
    ~site:"test";
  F.Injector.note_lost inj ~now:20 ~cls:F.Class.Noc_resp_drop ~key:7
    ~site:"test";
  check_int "two pending" 2 (F.Injector.pending_lost inj);
  F.Injector.resolve_lost inj ~now:30 ~key:7 ~recovered:true;
  check_int "none pending" 0 (F.Injector.pending_lost inj);
  check_int "both recovered" 2 (F.Injector.total_recovered inj);
  (* resolving an empty key is a no-op, not a double count *)
  F.Injector.resolve_lost inj ~now:40 ~key:7 ~recovered:false;
  check_int "still two" 2 (F.Injector.total_recovered inj);
  check_int "no losses" 0 (F.Injector.total_unrecovered inj)

(* ---- per-scope fork (device-scoped injectors for the cluster) ---- *)

let decide_sequence inj ~n =
  List.init n (fun _ -> F.Injector.decide inj F.Class.Dram_flip)

let test_fork_deterministic () =
  let plan = F.Plan.scale 10.0 (F.Plan.default_recoverable ~seed:3 ()) in
  let a = F.Injector.fork (F.Injector.create plan) ~scope:5 in
  let b = F.Injector.fork (F.Injector.create plan) ~scope:5 in
  check_bool "same scope, same stream" true
    (decide_sequence a ~n:200 = decide_sequence b ~n:200);
  check_bool "scope recorded" true (F.Injector.scope a = Some 5)

let test_fork_siblings_independent () =
  let plan = F.Plan.scale 10.0 (F.Plan.default_recoverable ~seed:3 ()) in
  let root = F.Injector.create plan in
  let a = F.Injector.fork root ~scope:0
  and b = F.Injector.fork root ~scope:1 in
  check_bool "sibling scopes diverge" true
    (decide_sequence a ~n:400 <> decide_sequence b ~n:400)

let test_fork_leaves_root_stream_untouched () =
  (* regression: the seeded @fault digests predate fork — a root that
     forked children must draw exactly what an unforked root draws *)
  let plan = F.Plan.scale 10.0 (F.Plan.default_recoverable ~seed:7 ()) in
  let pristine = F.Injector.create plan in
  let forked = F.Injector.create plan in
  for s = 0 to 7 do
    ignore (F.Injector.fork forked ~scope:s)
  done;
  check_bool "root stream unchanged by forking" true
    (decide_sequence pristine ~n:300 = decide_sequence forked ~n:300);
  check_bool "root has no scope" true (F.Injector.scope pristine = None)

let test_fork_campaign_digest_unchanged () =
  (* the seeded single-device campaign must render byte-identically
     whether or not sibling device injectors were forked from the same
     plan in between *)
  let plan = F.Plan.default_recoverable ~seed:11 () in
  let a = small_campaign ~plan in
  ignore (F.Injector.fork (F.Injector.create plan) ~scope:1);
  let b = small_campaign ~plan in
  check_string "digest unchanged"
    (F.Log.render a.Kernels.Campaign.log)
    (F.Log.render b.Kernels.Campaign.log)

let () =
  Alcotest.run "fault"
    [
      ( "ecc",
        [
          prop_ecc_roundtrip;
          prop_ecc_single_bit;
          prop_ecc_double_bit;
          Alcotest.test_case "scrub repairs memory" `Quick
            test_ecc_scrub_repairs_memory;
          Alcotest.test_case "double flip detected" `Quick
            test_ecc_double_flip_detected;
          Alcotest.test_case "write clears latch" `Quick
            test_ecc_write_clears_latch;
        ] );
      ( "determinism",
        [
          prop_campaign_deterministic;
          Alcotest.test_case "seeds diverge" `Quick test_campaign_seeds_differ;
          Alcotest.test_case "default mix fully recovered" `Quick
            test_default_mix_fully_recovered;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "axi retry exhaustion terminates" `Quick
            test_axi_retry_exhaustion_terminates;
          Alcotest.test_case "dma failure surfaces as corruption" `Quick
            test_dma_failure_surfaces_as_corruption;
          Alcotest.test_case "double flips unrecovered" `Quick
            test_double_flips_are_unrecovered;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "hang -> quarantine -> reroute" `Quick
            test_hang_quarantine_reroute;
          Alcotest.test_case "single core fails cleanly" `Quick
            test_hang_single_core_fails_cleanly;
          Alcotest.test_case "visible on handle" `Quick
            test_quarantine_visible_on_handle;
        ] );
      ( "memory safety",
        [
          Alcotest.test_case "never-allocated free" `Quick
            test_never_allocated_free;
          Alcotest.test_case "poison freed buffers" `Quick test_poison_freed;
          Alcotest.test_case "stale pointer after reuse" `Quick
            test_stale_pointer_after_reuse;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "lost-message bookkeeping" `Quick
            test_injector_lost_accounting;
        ] );
      ( "fork",
        [
          Alcotest.test_case "same scope, same stream" `Quick
            test_fork_deterministic;
          Alcotest.test_case "sibling scopes independent" `Quick
            test_fork_siblings_independent;
          Alcotest.test_case "forking never draws from the root" `Quick
            test_fork_leaves_root_stream_untouched;
          Alcotest.test_case "campaign digest unchanged" `Quick
            test_fork_campaign_digest_unchanged;
        ] );
    ]
