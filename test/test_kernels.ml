(* Evaluation kernels: the memcpy methodology comparison and the MachSuite
   references + accelerated runs. *)

module MS = Kernels.Machsuite
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let one_channel = { D.aws_f1 with D.dram = Dram.Config.ddr4_2400 }

(* ---- memcpy ---- *)

let test_memcpy_all_impls_correct () =
  List.iter
    (fun impl ->
      let r =
        Kernels.Memcpy.run ~impl ~bytes:16384 ~platform:one_channel ()
      in
      check_bool (Kernels.Memcpy.impl_name impl ^ " verified") true
        r.Kernels.Memcpy.verified;
      check_bool "bandwidth positive" true (r.Kernels.Memcpy.bandwidth_gbs > 1.0))
    Kernels.Memcpy.all_impls

let test_memcpy_paper_shape () =
  let bw impl =
    (Kernels.Memcpy.run ~impl ~bytes:(512 * 1024) ~platform:one_channel ())
      .Kernels.Memcpy.bandwidth_gbs
  in
  let hls = bw Kernels.Memcpy.Hls in
  let beethoven = bw Kernels.Memcpy.Beethoven in
  let no_tlp = bw Kernels.Memcpy.Beethoven_no_tlp in
  let pure_hdl = bw Kernels.Memcpy.Pure_hdl in
  let b16 = bw Kernels.Memcpy.Beethoven_16beat in
  (* paper: HLS clearly below the other three, which sit within ~7% *)
  check_bool "HLS slowest" true
    (hls < beethoven && hls < no_tlp && hls < pure_hdl);
  let close a b = Float.abs (a -. b) /. b < 0.10 in
  check_bool "Beethoven ~ No-TLP" true (close beethoven no_tlp);
  check_bool "Beethoven ~ Pure-HDL" true (close beethoven pure_hdl);
  (* paper: a 16-beat Beethoven shows no HLS-like degradation *)
  check_bool "16-beat TLP above HLS" true (b16 > hls)

let test_memcpy_trace_ids () =
  (* HLS keeps one read ID; Beethoven TLP uses several *)
  let read_ids impl =
    let trace = Axi.Trace.create () in
    ignore (Kernels.Memcpy.run ~trace ~impl ~bytes:4096 ~platform:one_channel ());
    Axi.Trace.events trace
    |> List.filter_map (fun ev ->
           match ev.Axi.Trace.channel with
           | Axi.Trace.AR -> Some ev.Axi.Trace.id
           | _ -> None)
    |> List.sort_uniq compare
  in
  check_int "HLS: one read id" 1 (List.length (read_ids Kernels.Memcpy.Hls));
  check_bool "Beethoven 16-beat: several ids" true
    (List.length (read_ids Kernels.Memcpy.Beethoven_16beat) >= 4)

(* ---- MachSuite references (hand-checked small cases) ---- *)

let test_table1_metadata () =
  check_int "five kernels" 5 (List.length MS.all);
  check_int "gemm N" 256 (MS.data_size MS.Gemm);
  check_int "stencil3d N" 32 (MS.data_size MS.Stencil3d);
  Alcotest.(check string) "NW unparallelizable" "None" (MS.parallelism MS.Nw);
  check_int "gemm inner ops" (256 * 256 * 256) (MS.inner_ops MS.Gemm)

let test_baseline_models_sane () =
  List.iter
    (fun k ->
      check_bool "hls positive" true (MS.hls_ops_per_sec k > 0.);
      check_bool "spatial positive" true (MS.spatial_ops_per_sec k > 0.))
    MS.all;
  (* the single-core NW claim: Beethoven (1 cell/cycle at 125 MHz) is ~2x
     the HLS model *)
  let beethoven_nw = 125.0e6 /. float_of_int (MS.beethoven_cycles MS.Nw) in
  let ratio = beethoven_nw /. MS.hls_ops_per_sec MS.Nw in
  check_bool "NW single-core ~2x" true (ratio > 1.7 && ratio < 2.3)

let test_run_small_kernels_verified () =
  let p125 =
    { D.aws_f1 with D.fabric_clock_ps = 8000;
      noc = Noc.Params.default ~clock_ps:8000 }
  in
  List.iter
    (fun k ->
      let r = MS.run k ~rounds:1 ~n_cores:2 ~platform:p125 () in
      check_bool (MS.name k ^ " verified") true r.MS.verified;
      check_bool "throughput positive" true (r.MS.measured_ops_per_sec > 0.))
    [ MS.Nw; MS.Stencil2d; MS.Stencil3d; MS.Md_knn ]

let test_auto_cores_positive () =
  List.iter
    (fun k ->
      let n = MS.auto_cores k D.aws_f1 in
      check_bool (MS.name k ^ " fits at least 2 cores") true (n >= 2))
    MS.all

let test_channel_tuner () =
  let points = Kernels.Memcpy.tune ~bytes:(64 * 1024) ~platform:one_channel () in
  check_int "full grid" (4 * 3 * 2) (List.length points);
  (* sorted best-first *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Kernels.Memcpy.tp_bandwidth_gbs >= b.Kernels.Memcpy.tp_bandwidth_gbs
        && sorted rest
    | _ -> true
  in
  check_bool "sorted" true (sorted points);
  (* the tuner recovers the platform defaults: long bursts with TLP win *)
  let best = List.hd points in
  check_bool "best uses 32+ beat bursts" true
    (best.Kernels.Memcpy.tp_burst_beats >= 32);
  check_bool "best beats the worst by >5%" true
    (best.Kernels.Memcpy.tp_bandwidth_gbs
    > (List.nth points 23).Kernels.Memcpy.tp_bandwidth_gbs *. 1.05)

(* ---- extra kernels (framework extensions beyond Fig. 6) ---- *)

module MX = Kernels.Machsuite_extra

let test_fft_reference () =
  (* impulse at t=0 -> flat spectrum of ones *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  MX.Ref.fft re im;
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "flat re" 1.0 v) re;
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "zero im" 0.0 v) im;
  (* DC signal -> all energy in bin 0 *)
  let re = Array.make n 2.0 and im = Array.make n 0.0 in
  MX.Ref.fft re im;
  Alcotest.(check (float 1e-9)) "bin0" (2.0 *. float_of_int n) re.(0);
  for i = 1 to n - 1 do
    Alcotest.(check (float 1e-9)) "other bins" 0.0 re.(i)
  done;
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Ref.fft: power-of-two complex input") (fun () ->
      MX.Ref.fft (Array.make 12 0.) (Array.make 12 0.))

let test_spmv_reference () =
  (* 3x3 identity: y = x *)
  let y =
    MX.Ref.spmv ~values:[| 1.; 1.; 1. |] ~col_idx:[| 0; 1; 2 |]
      ~row_ptr:[| 0; 1; 2; 3 |] ~x:[| 5.; -2.; 7. |]
  in
  Alcotest.(check (array (float 1e-9))) "identity" [| 5.; -2.; 7. |] y;
  (* [[2 0 1]; [0 0 0]; [0 3 0]] * [1;2;3] = [5; 0; 6] *)
  let y =
    MX.Ref.spmv ~values:[| 2.; 1.; 3. |] ~col_idx:[| 0; 2; 1 |]
      ~row_ptr:[| 0; 2; 2; 3 |] ~x:[| 1.; 2.; 3. |]
  in
  Alcotest.(check (array (float 1e-9))) "hand case" [| 5.; 0.; 6. |] y

let test_kmp_reference () =
  let kmp p t = MX.Ref.kmp ~pattern:(Bytes.of_string p) ~text:(Bytes.of_string t) in
  check_int "overlapping matches" 2 (kmp "ABAB" "ABABAB");
  check_int "no match" 0 (kmp "XYZ" "ABABAB");
  check_int "single char" 3 (kmp "A" "ABABA" - 0);
  check_int "full text" 1 (kmp "HELLO" "HELLO")

let test_merge_sort_reference () =
  Alcotest.(check (array int)) "sorts" [| 1; 2; 3; 5; 8 |]
    (MX.Ref.merge_sort [| 5; 3; 8; 1; 2 |]);
  Alcotest.(check (array int)) "stable on empty" [||] (MX.Ref.merge_sort [||])

let test_extra_kernels_end_to_end () =
  List.iter
    (fun k ->
      let r = MX.run k ~n_cores:2 ~platform:D.aws_f1 () in
      check_bool (MX.name k ^ " verified") true r.MX.verified)
    MX.all

let prop_sort =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"merge sort matches List.sort"
       QCheck.(list int)
       (fun l ->
         Array.to_list (MX.Ref.merge_sort (Array.of_list l))
         = List.sort compare l))

let prop_kmp =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"kmp matches the naive counter"
       QCheck.(pair (string_of_size Gen.(1 -- 4)) (string_of_size Gen.(0 -- 60)))
       (fun (p, t) ->
         QCheck.assume (String.length p > 0);
         let naive =
           let m = String.length p and n = String.length t in
           let c = ref 0 in
           for i = 0 to n - m do
             if String.sub t i m = p then incr c
           done;
           !c
         in
         MX.Ref.kmp ~pattern:(Bytes.of_string p) ~text:(Bytes.of_string t)
         = naive))

(* reference spot-checks with tiny hand-computable inputs go through the
   public run path indirectly; here we check structural properties *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:40 ~name arb f)

let props =
  [
    prop "memcpy bandwidth monotone-ish in prefetch depth"
      QCheck.(1 -- 3)
      (fun _ ->
        (* deterministic; just assert TLP >= no-TLP at 64KB *)
        let bw impl =
          (Kernels.Memcpy.run ~impl ~bytes:65536 ~platform:one_channel ())
            .Kernels.Memcpy.bandwidth_gbs
        in
        bw Kernels.Memcpy.Beethoven >= bw Kernels.Memcpy.Hls);
  ]

let () =
  Alcotest.run "kernels"
    [
      ( "memcpy",
        [
          Alcotest.test_case "all impls correct" `Quick
            test_memcpy_all_impls_correct;
          Alcotest.test_case "paper shape" `Quick test_memcpy_paper_shape;
          Alcotest.test_case "trace ids" `Quick test_memcpy_trace_ids;
          Alcotest.test_case "channel tuner" `Slow test_channel_tuner;
        ] );
      ( "machsuite",
        [
          Alcotest.test_case "table1 metadata" `Quick test_table1_metadata;
          Alcotest.test_case "baseline models" `Quick test_baseline_models_sane;
          Alcotest.test_case "small runs verified" `Slow
            test_run_small_kernels_verified;
          Alcotest.test_case "auto cores" `Quick test_auto_cores_positive;
        ] );
      ( "extra-kernels",
        [
          Alcotest.test_case "fft reference" `Quick test_fft_reference;
          Alcotest.test_case "spmv reference" `Quick test_spmv_reference;
          Alcotest.test_case "kmp reference" `Quick test_kmp_reference;
          Alcotest.test_case "sort reference" `Quick test_merge_sort_reference;
          Alcotest.test_case "end to end" `Slow test_extra_kernels_end_to_end;
        ] );
      ("properties", props @ [ prop_sort; prop_kmp ]);
    ]
