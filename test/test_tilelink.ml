(* TileLink protocol layer: rule checking, wire-form roundtrips, and the
   AXI termination adapter. *)

module TL = Tilelink

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk () =
  let e = Desim.Engine.create () in
  let dram = Dram.create e Dram.Config.ddr4_2400 in
  let axi = Axi.create e dram Axi.Params.aws_f1 in
  (e, axi, TL.To_axi.create e axi)

let test_rules () =
  check_bool "aligned get ok" true
    (TL.check_a (TL.Get { source = 0; address = 4096; size = 6 }) = Ok ());
  check_bool "misaligned rejected" true
    (match TL.check_a (TL.Get { source = 0; address = 68; size = 6 }) with
    | Error _ -> true
    | Ok () -> false);
  check_bool "oversize rejected" true
    (match TL.check_a (TL.Get { source = 0; address = 0; size = 13 }) with
    | Error _ -> true
    | Ok () -> false);
  check_bool "bad source rejected" true
    (match TL.check_a (TL.Get { source = 999; address = 0; size = 3 }) with
    | Error _ -> true
    | Ok () -> false)

let test_beats () =
  check_int "sub-beat transfer = 1 beat" 1 (TL.data_beats 3);
  check_int "one-beat transfer" 1 (TL.data_beats 6);
  check_int "4KB = 64 beats" 64 (TL.data_beats 12)

let test_wire_roundtrip () =
  let msgs =
    [
      TL.Get { source = 5; address = 0x1234000; size = 12 };
      TL.Put_full { source = 255; address = 64; size = 6 };
      TL.Get { source = 0; address = 0; size = 0 };
    ]
  in
  List.iter
    (fun m ->
      check_bool "a roundtrip" true (TL.decode_a (TL.encode_a m) = m);
      check_int "a width" TL.a_width (Bits.width (TL.encode_a m)))
    msgs;
  List.iter
    (fun d ->
      check_bool "d roundtrip" true (TL.decode_d (TL.encode_d d) = d))
    [
      TL.Access_ack { source = 3; size = 6 };
      TL.Access_ack_data { source = 200; size = 12 };
    ]

let test_adapter_get_put () =
  let e, axi, ad = mk () in
  let responses = ref [] in
  TL.To_axi.request ad (TL.Get { source = 1; address = 4096; size = 12 })
    ~on_d:(fun d -> responses := d :: !responses);
  TL.To_axi.request ad (TL.Put_full { source = 2; address = 8192; size = 10 })
    ~on_d:(fun d -> responses := d :: !responses);
  check_int "two outstanding" 2 (TL.To_axi.outstanding ad);
  Desim.Engine.run e;
  check_int "drained" 0 (TL.To_axi.outstanding ad);
  check_bool "ack-data for the get" true
    (List.mem (TL.Access_ack_data { source = 1; size = 12 }) !responses);
  check_bool "ack for the put" true
    (List.mem (TL.Access_ack { source = 2; size = 10 }) !responses);
  check_int "axi saw one read" 1 (Axi.reads_issued axi);
  check_int "axi saw one write" 1 (Axi.writes_issued axi)

let test_adapter_one_per_source () =
  let _, _, ad = mk () in
  TL.To_axi.request ad (TL.Get { source = 7; address = 0; size = 6 })
    ~on_d:(fun _ -> ());
  Alcotest.check_raises "second request on a busy source"
    (Invalid_argument "Tilelink.To_axi.request: source already outstanding")
    (fun () ->
      TL.To_axi.request ad (TL.Get { source = 7; address = 4096; size = 6 })
        ~on_d:(fun _ -> ()))

let test_adapter_source_parallelism () =
  (* distinct sources map to distinct AXI IDs: the same pair of 4KB gets
     completes sooner than when forced onto one source serially *)
  let parallel () =
    let e, _, ad = mk () in
    let t = ref 0 in
    let pending = ref 2 in
    List.iter
      (fun (src, addr) ->
        TL.To_axi.request ad (TL.Get { source = src; address = addr; size = 12 })
          ~on_d:(fun _ ->
            decr pending;
            if !pending = 0 then t := Desim.Engine.now e))
      [ (0, 0); (1, 4096) ];
    Desim.Engine.run e;
    !t
  in
  let serial () =
    let e, _, ad = mk () in
    let t = ref 0 in
    TL.To_axi.request ad (TL.Get { source = 0; address = 0; size = 12 })
      ~on_d:(fun _ ->
        TL.To_axi.request ad (TL.Get { source = 0; address = 4096; size = 12 })
          ~on_d:(fun _ -> t := Desim.Engine.now e));
    Desim.Engine.run e;
    !t
  in
  check_bool "distinct sources overlap at the controller" true
    (parallel () < serial ())

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let props =
  [
    prop "every legal A message roundtrips through the wire form"
      QCheck.(triple (int_bound 255) (int_bound 1_000_000) (int_bound 12))
      (fun (source, blk, size) ->
        let address = blk lsl size in
        QCheck.assume (address < 1 lsl 47);
        let msgs =
          [
            TL.Get { source; address; size };
            TL.Put_full { source; address; size };
          ]
        in
        List.for_all (fun m -> TL.decode_a (TL.encode_a m) = m) msgs);
    prop "adapter completes every request exactly once"
      QCheck.(list_of_size Gen.(1 -- 30) (pair (int_bound 200) (int_bound 8)))
      (fun reqs ->
        let e, _, ad = mk () in
        let acks = Hashtbl.create 16 in
        let issued = ref 0 in
        List.iteri
          (fun i (blk, size) ->
            let source = i mod 256 in
            if not (Hashtbl.mem acks source) then begin
              Hashtbl.add acks source 0;
              incr issued;
              TL.To_axi.request ad
                (TL.Get { source; address = blk lsl size; size })
                ~on_d:(fun _ ->
                  Hashtbl.replace acks source
                    (Hashtbl.find acks source + 1))
            end)
          reqs;
        Desim.Engine.run e;
        Hashtbl.fold (fun _ n ok -> ok && n = 1) acks true
        && TL.To_axi.outstanding ad = 0);
  ]

let () =
  Alcotest.run "tilelink"
    [
      ( "protocol",
        [
          Alcotest.test_case "rules" `Quick test_rules;
          Alcotest.test_case "beats" `Quick test_beats;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        ] );
      ( "adapter",
        [
          Alcotest.test_case "get/put" `Quick test_adapter_get_put;
          Alcotest.test_case "one per source" `Quick
            test_adapter_one_per_source;
          Alcotest.test_case "source parallelism" `Quick
            test_adapter_source_parallelism;
        ] );
      ("properties", props);
    ]
