(* Compiled-simulator tests: directed unit checks on every fast/wide
   evaluation path of Hw.Compile, the unconnected-wire diagnosability
   regression, and the differential qcheck suite — random mixed-width
   circuits with memories, interpreter and compiled backend in lockstep,
   every output and every backdoor-read memory word compared on every
   cycle. *)

open Hw.Signal
module Circuit = Hw.Circuit
module Cyclesim = Hw.Cyclesim
module Compile = Hw.Compile
module Sim = Hw.Sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let circuit1 ?(name = "t") o = Circuit.create ~name ~outputs:[ ("o", o) ]

(* run one combinational circuit through both backends on the same inputs
   and return (interpreter value, compiled value) of output "o" *)
let both circuit inputs =
  let si = Cyclesim.create circuit and sc = Compile.create circuit in
  let ports = Circuit.inputs circuit in
  List.iter
    (fun (n, v) ->
      (* unused operands may be folded out of small directed circuits *)
      if List.mem_assoc n ports then begin
        Cyclesim.set_input si n v;
        Compile.set_input sc n v
      end)
    inputs;
  (Cyclesim.output si "o", Compile.output sc "o")

let check_agree what circuit inputs =
  let vi, vc = both circuit inputs in
  check_string what (Bits.to_hex_string vi) (Bits.to_hex_string vc)

(* ---- directed: fast path (width <= 62) ---- *)

let test_fast_arith () =
  let a = input "a" 8 and b = input "b" 8 in
  let i x = [ ("a", Bits.of_int ~width:8 x); ("b", Bits.of_int ~width:8 200) ] in
  check_agree "add wraps" (circuit1 (a +: b)) (i 100);
  check_agree "sub wraps" (circuit1 (a -: b)) (i 100);
  check_agree "mul truncates" (circuit1 (a *: b)) (i 200);
  check_agree "not masks" (circuit1 (lnot a)) (i 0);
  check_agree "eq" (circuit1 (uresize (a ==: b) 8)) (i 200);
  check_agree "lt" (circuit1 (uresize (a <: b) 8)) (i 100);
  (* direct value check, not just agreement *)
  let sc = Compile.create (circuit1 (a +: b)) in
  Compile.set_input_int sc "a" 200;
  Compile.set_input_int sc "b" 100;
  check_int "200+100 mod 256" 44 (Compile.output_int sc "o")

let test_fast_near_63_bits () =
  (* width 62 is the last single-word width: masks and to_int_trunc must
     be exact right at the boundary *)
  let a = input "a" 62 and b = input "b" 62 in
  let x = Bits.sub (Bits.zero 62) (Bits.one 62) (* all-ones, 62 bits *) in
  let i = [ ("a", x); ("b", Bits.of_int ~width:62 3) ] in
  check_agree "62-bit add" (circuit1 (a +: b)) i;
  check_agree "62-bit mul" (circuit1 (a *: b)) i;
  check_agree "62-bit not" (circuit1 (lnot a)) i;
  check_agree "62-bit sra" (circuit1 (sra a 13)) i;
  let vi, vc = both (circuit1 (a +: b)) i in
  (* all-ones + 3 wraps to 2 at width 62 *)
  check_string "62-bit add value" "0000000000000002" (Bits.to_hex_string vi);
  check_string "62-bit add value (compiled)" "0000000000000002"
    (Bits.to_hex_string vc)

let test_fast_shifts () =
  let a = input "a" 8 in
  let i = [ ("a", Bits.of_int ~width:8 0xb5) ] in
  List.iter
    (fun k ->
      check_agree (Printf.sprintf "sll %d" k) (circuit1 (sll a k)) i;
      check_agree (Printf.sprintf "srl %d" k) (circuit1 (srl a k)) i;
      check_agree (Printf.sprintf "sra %d" k) (circuit1 (sra a k)) i)
    [ 0; 1; 7; 8; 9 ];
  (* saturation values, pinned *)
  let sc = Compile.create (circuit1 (sra a 9)) in
  Compile.set_input_int sc "a" 0xb5;
  check_int "sra past width replicates sign" 0xff (Compile.output_int sc "o");
  let sc = Compile.create (circuit1 (sll a 9)) in
  Compile.set_input_int sc "a" 0xb5;
  check_int "sll past width is zero" 0 (Compile.output_int sc "o")

let test_mux_clamp () =
  let sel = input "s" 4 in
  let cases = List.init 5 (fun i -> of_int ~width:8 (10 * (i + 1))) in
  let c = circuit1 (mux sel cases) in
  for s = 0 to 15 do
    check_agree
      (Printf.sprintf "mux sel=%d" s)
      c
      [ ("s", Bits.of_int ~width:4 s) ]
  done;
  let sc = Compile.create c in
  Compile.set_input_int sc "s" 12;
  check_int "out-of-range selects last case" 50 (Compile.output_int sc "o")

(* ---- directed: wide path and the fast/wide boundary ---- *)

let test_wide_ops () =
  let a = input "a" 65 and b = input "b" 65 in
  let va = Bits.of_hex_string ~width:65 "1ffffffffffffffff" in
  let vb = Bits.of_hex_string ~width:65 "0123456789abcdef0" in
  let i = [ ("a", va); ("b", vb) ] in
  check_agree "65-bit add" (circuit1 (a +: b)) i;
  check_agree "65-bit sub" (circuit1 (a -: b)) i;
  check_agree "65-bit mul" (circuit1 (a *: b)) i;
  check_agree "65-bit xor" (circuit1 (a ^: b)) i;
  check_agree "65-bit not" (circuit1 (lnot a)) i;
  check_agree "65-bit srl" (circuit1 (srl a 33)) i;
  check_agree "65-bit sra" (circuit1 (sra a 33)) i;
  (* wide operands, 1-bit (fast) results *)
  check_agree "65-bit eq" (circuit1 (uresize (a ==: b) 8)) i;
  check_agree "65-bit lt" (circuit1 (uresize (a <: b) 8)) i

let test_cross_boundary () =
  let a = input "a" 128 and b = input "b" 8 in
  let va = Bits.of_hex_string ~width:128 "deadbeefcafebabe0123456789abcdef" in
  let i = [ ("a", va); ("b", Bits.of_int ~width:8 0x5a) ] in
  (* fast select out of a wide source, straddling limb boundaries *)
  List.iter
    (fun lo ->
      check_agree
        (Printf.sprintf "select 8 @%d from 128" lo)
        (circuit1 (select a ~hi:(lo + 7) ~lo))
        i)
    [ 0; 13; 15; 16; 31; 60; 63; 64; 119; 120 ];
  (* wide select out of a wide source *)
  check_agree "wide select" (circuit1 (select a ~hi:99 ~lo:2)) i;
  (* fast concat built from fast parts *)
  check_agree "fast concat"
    (circuit1 (concat [ b; select a ~hi:7 ~lo:0; b ]))
    i;
  (* wide concat mixing fast and wide parts *)
  check_agree "wide concat" (circuit1 (concat [ b; select a ~hi:70 ~lo:0 ])) i;
  (* mux with a wide selector (fast cases) *)
  let sel = input "s" 70 in
  check_agree "wide selector mux"
    (circuit1 (mux sel [ b; lnot b; b ^: of_int ~width:8 3 ]))
    (("s", Bits.of_int ~width:70 1) :: i)

(* ---- directed: sequential elements ---- *)

let test_reg_enable_clear () =
  let d = input "d" 8 and en = input "en" 1 and clr = input "clr" 1 in
  let q = reg ~enable:en ~clear:clr ~init:(Bits.of_int ~width:8 7) d -- "q" in
  let c = circuit1 q in
  let si = Cyclesim.create c and sc = Compile.create c in
  let drive n v =
    Cyclesim.set_input_int si n v;
    Compile.set_input_int sc n v
  in
  let agree what =
    check_int what (Cyclesim.output_int si "o") (Compile.output_int sc "o")
  in
  drive "d" 0;
  drive "en" 0;
  drive "clr" 0;
  agree "init visible before first step";
  check_int "init value" 7 (Compile.output_int sc "o");
  drive "d" 42;
  drive "en" 1;
  Cyclesim.step si;
  Compile.step sc;
  agree "latched when enabled";
  check_int "latched value" 42 (Compile.output_int sc "o");
  drive "d" 99;
  drive "en" 0;
  Cyclesim.step si;
  Compile.step sc;
  agree "holds when disabled";
  check_int "held value" 42 (Compile.output_int sc "o");
  drive "clr" 1;
  drive "en" 1;
  Cyclesim.step si;
  Compile.step sc;
  agree "clear beats enable";
  check_int "cleared to init" 7 (Compile.output_int sc "o")

let test_reg_read_before_write () =
  (* a 2-stage shift register: q2 must see q1's pre-edge value *)
  let d = input "d" 8 in
  let q1 = reg d -- "q1" in
  let q2 = reg q1 -- "q2" in
  let c = Circuit.create ~name:"t" ~outputs:[ ("q1", q1); ("q2", q2) ] in
  let sc = Compile.create c in
  Compile.set_input_int sc "d" 5;
  Compile.step sc;
  Compile.set_input_int sc "d" 6;
  Compile.step sc;
  check_int "q1 after two steps" 6 (Compile.output_int sc "q1");
  check_int "q2 lags one cycle" 5 (Compile.output_int sc "q2")

let test_memory_semantics () =
  let m = Mem.create ~name:"m" ~size:16 ~width:8 () in
  let wa = input "wa" 4 and wd = input "wd" 8 and we = input "we" 1 in
  let ra = input "ra" 4 in
  Mem.write m ~enable:we ~addr:wa ~data:wd;
  (* second port on the same address: declared later, must win *)
  Mem.write m ~enable:we ~addr:wa ~data:(wd +: of_int ~width:8 1);
  let rd_async = Mem.read_async m ~addr:ra in
  let rd_sync = Mem.read_sync m ~enable:vdd ~addr:ra () in
  let c =
    Circuit.create ~name:"t"
      ~outputs:[ ("ra_async", rd_async); ("ra_sync", rd_sync) ]
  in
  let si = Cyclesim.create c and sc = Compile.create c in
  let drive n v =
    Cyclesim.set_input_int si n v;
    Compile.set_input_int sc n v
  in
  let agree what out =
    check_int what (Cyclesim.output_int si out) (Compile.output_int sc out)
  in
  drive "wa" 3;
  drive "wd" 10;
  drive "we" 1;
  drive "ra" 3;
  Cyclesim.settle si;
  Compile.settle sc;
  agree "async read of unwritten cell" "ra_async";
  check_int "unwritten reads zero" 0 (Compile.output_int sc "ra_async");
  Cyclesim.step si;
  Compile.step sc;
  (* sync read latched the pre-write (read-first) contents *)
  agree "sync read is read-first" "ra_sync";
  check_int "read-first sees old zero" 0 (Compile.output_int sc "ra_sync");
  agree "async read sees committed write" "ra_async";
  check_int "last write port wins" 11 (Compile.output_int sc "ra_async");
  drive "we" 0;
  Cyclesim.step si;
  Compile.step sc;
  agree "sync read catches up" "ra_sync";
  check_int "sync read now 11" 11 (Compile.output_int sc "ra_sync");
  (* backdoor access agrees and invalidates settled state the same way *)
  let v = Bits.of_int ~width:8 77 in
  Cyclesim.write_memory si m 9 v;
  Compile.write_memory sc m 9 v;
  drive "ra" 9;
  agree "backdoor write visible" "ra_async";
  check_string "backdoor read agrees"
    (Bits.to_hex_string (Cyclesim.read_memory si m 9))
    (Bits.to_hex_string (Compile.read_memory sc m 9))

let test_wide_memory () =
  let m = Mem.create ~name:"wm" ~size:8 ~width:100 () in
  let wa = input "wa" 3 and wd = input "wd" 100 and we = input "we" 1 in
  Mem.write m ~enable:we ~addr:wa ~data:wd;
  let c = circuit1 (Mem.read_async m ~addr:(input "ra" 3)) in
  let si = Cyclesim.create c and sc = Compile.create c in
  let v = Bits.of_hex_string ~width:100 "fedcba9876543210fedcba987" in
  List.iter
    (fun (n, b) ->
      Cyclesim.set_input si n b;
      Compile.set_input sc n b)
    [
      ("wa", Bits.of_int ~width:3 5); ("wd", v); ("we", Bits.one 1);
      ("ra", Bits.of_int ~width:3 5);
    ];
  Cyclesim.step si;
  Compile.step sc;
  check_string "wide memory write/read"
    (Bits.to_hex_string (Cyclesim.output si "o"))
    (Bits.to_hex_string (Compile.output sc "o"));
  check_string "wide memory value" (Bits.to_hex_string v)
    (Bits.to_hex_string (Compile.output sc "o"))

(* ---- diagnosability: unconnected wires ---- *)

let test_unconnected_wire_rejected () =
  (* Circuit.create is the front door: a dangling wire must be rejected
     there with the wire named, before either backend can trip on it *)
  let w = wire 4 -- "hanging" in
  match Circuit.create ~name:"t" ~outputs:[ ("o", w +: of_int ~width:4 1) ] with
  | _ -> Alcotest.fail "dangling wire must not elaborate"
  | exception Failure msg ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      check_bool ("error names the wire: " ^ msg) true (contains "hanging")

(* ---- the Sim dispatch layer ---- *)

let test_sim_dispatch () =
  let a = input "a" 8 in
  let c = circuit1 (a +: of_int ~width:8 1) in
  check_bool "default backend is compiled" true
    (Sim.default_backend = Sim.Compiled);
  check_string "backend names" "interpreter,compiled"
    (String.concat ","
       (List.map Sim.backend_name [ Sim.Interpreter; Sim.Compiled ]));
  check_bool "backend_of_string round-trips" true
    (List.for_all
       (fun b -> Sim.backend_of_string (Sim.backend_name b) = Some b)
       [ Sim.Interpreter; Sim.Compiled ]);
  check_bool "backend_of_string rejects junk" true
    (Sim.backend_of_string "fast" = None);
  List.iter
    (fun b ->
      let s = Sim.create ~backend:b c in
      check_bool "backend recorded" true (Sim.backend s = b);
      Sim.set_input_int s "a" 41;
      check_int (Sim.backend_name b ^ " computes") 42 (Sim.output_int s "o");
      Sim.step s;
      check_int (Sim.backend_name b ^ " counts cycles") 1 (Sim.cycle s))
    [ Sim.Interpreter; Sim.Compiled ]

(* ---- qcheck: interpreter and compiled in lockstep ---- *)

(* random mixed-width circuit: an 8-bit (fast) pool and a 70-bit (wide)
   pool grown by the op list, cross-linked by selects/concats/resizes,
   plus a memory with two write ports and both kinds of read *)
let build_mixed ops =
  let m = Mem.create ~name:"m" ~size:16 ~width:8 () in
  let a = input "a" 8 and b = input "b" 70 and c = input "c" 8 in
  let p8 = ref [ a; c; of_int ~width:8 129; reg (a ^: c) -- "r8" ] in
  let p70 =
    ref [ b; uresize a 70; of_int ~width:70 12345; reg b -- "r70" ]
  in
  let pick p i = List.nth !p (i mod List.length !p) in
  List.iteri
    (fun k (op, i, j) ->
      let x8 = pick p8 i and y8 = pick p8 j in
      let x70 = pick p70 i and y70 = pick p70 j in
      match op mod 14 with
      | 0 -> p8 := !p8 @ [ x8 +: y8 ]
      | 1 -> p70 := !p70 @ [ x70 -: y70 ]
      | 2 -> p8 := !p8 @ [ x8 *: y8 ]
      | 3 -> p70 := !p70 @ [ x70 *: y70 ]
      | 4 -> p8 := !p8 @ [ lnot (x8 &: y8) ]
      | 5 -> p70 := !p70 @ [ x70 ^: (y70 |: x70) ]
      | 6 -> p8 := !p8 @ [ sll x8 (j mod 10) ] (* k may exceed the width *)
      | 7 -> p8 := !p8 @ [ sra x8 (j mod 10) ]
      | 8 -> p70 := !p70 @ [ srl x70 (j mod 80) ]
      | 9 ->
          let lo = j mod 62 in
          p8 := !p8 @ [ select x70 ~hi:(lo + 7) ~lo ]
      | 10 -> p70 := !p70 @ [ concat [ select y70 ~hi:61 ~lo:0; x8 ] ]
      | 11 ->
          p8 :=
            !p8 @ [ mux (select x8 ~hi:1 ~lo:0) [ x8; y8; x8 ^: y8; x8 +: y8 ] ]
      | 12 ->
          p8 :=
            !p8
            @ [
                reg ~enable:(bit x8 0) ~clear:(bit y8 1)
                  ~init:(Bits.of_int ~width:8 7)
                  (x8 |: y8)
                -- Printf.sprintf "q%d" k;
              ]
      | _ ->
          p8 := !p8 @ [ uresize (x8 <: y8) 8 ];
          p70 := !p70 @ [ uresize (x70 ==: y70) 70 ])
    ops;
  let last p = List.nth !p (List.length !p - 1) in
  let wa = select (last p8) ~hi:3 ~lo:0 in
  Mem.write m ~enable:(bit (pick p8 1) 0) ~addr:wa ~data:(pick p8 2);
  Mem.write m ~enable:(bit (pick p8 3) 1) ~addr:wa ~data:(pick p8 4);
  let ra = select (pick p8 5) ~hi:3 ~lo:0 in
  Circuit.create ~name:"rand"
    ~outputs:
      [
        ("o8", last p8);
        ("o70", last p70);
        ("m_async", Mem.read_async m ~addr:ra);
        ("m_sync", Mem.read_sync m ~enable:(bit (pick p8 6) 2) ~addr:ra ());
      ]

let random_bits st ~width =
  let rec chunks w =
    if w <= 16 then [ Bits.of_int ~width:w (Random.State.int st (1 lsl w)) ]
    else Bits.of_int ~width:16 (Random.State.int st 65536) :: chunks (w - 16)
  in
  Bits.concat_list (chunks width)

(* drive both backends with identical random stimulus; compare every
   output and every memory word on every cycle *)
let lockstep ~cycles ~seed circuit =
  let st = Random.State.make [| seed |] in
  let si = Cyclesim.create circuit and sc = Compile.create circuit in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (n, w) ->
        let v = random_bits st ~width:w in
        Cyclesim.set_input si n v;
        Compile.set_input sc n v)
      (Circuit.inputs circuit);
    Cyclesim.settle si;
    Compile.settle sc;
    List.iter
      (fun (n, _) ->
        if not (Bits.equal (Cyclesim.output si n) (Compile.output sc n)) then
          ok := false)
      (Circuit.outputs circuit);
    List.iter
      (fun m ->
        for a = 0 to mem_size m - 1 do
          if
            not
              (Bits.equal (Cyclesim.read_memory si m a)
                 (Compile.read_memory sc m a))
          then ok := false
        done)
      (Circuit.memories circuit);
    Cyclesim.step si;
    Compile.step sc
  done;
  !ok

let gen_mixed =
  QCheck.Gen.(
    pair (list_size (3 -- 30) (triple (0 -- 13) small_nat small_nat)) nat)

let prop_lockstep =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"compiled backend bit-identical to interpreter"
       (QCheck.make gen_mixed)
       (fun (ops, seed) -> lockstep ~cycles:25 ~seed (build_mixed ops)))

(* bundled designs: every kernel circuit in the beethoven_gen table runs
   both backends in lockstep (the same check `beethoven_gen sim
   --backend both` and the @simspeed gate run from the CLI) *)
let test_bundled_lockstep () =
  List.iter
    (fun (name, (config : Beethoven.Config.t)) ->
      List.iter
        (fun (sys : Beethoven.Config.system) ->
          match sys.Beethoven.Config.kernel_circuit with
          | None -> ()
          | Some c ->
              check_bool (name ^ " lockstep clean") true
                (lockstep ~cycles:64 ~seed:7 c))
        config.Beethoven.Config.systems)
    [
      ("a3-rtl", Attention.A3_rtl_core.config ~n_cores:1 ());
      ("vecadd-rtl", Kernels.Vecadd_rtl.config ~n_cores:1 ());
    ]

let () =
  Alcotest.run "compile"
    [
      ( "fast-path",
        [
          Alcotest.test_case "arithmetic" `Quick test_fast_arith;
          Alcotest.test_case "62-bit boundary" `Quick test_fast_near_63_bits;
          Alcotest.test_case "shifts and saturation" `Quick test_fast_shifts;
          Alcotest.test_case "mux clamp" `Quick test_mux_clamp;
        ] );
      ( "wide-path",
        [
          Alcotest.test_case "wide operators" `Quick test_wide_ops;
          Alcotest.test_case "fast/wide boundary" `Quick test_cross_boundary;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "reg enable/clear" `Quick test_reg_enable_clear;
          Alcotest.test_case "reg read-before-write" `Quick
            test_reg_read_before_write;
          Alcotest.test_case "memory semantics" `Quick test_memory_semantics;
          Alcotest.test_case "wide memory" `Quick test_wide_memory;
        ] );
      ( "diagnosability",
        [
          Alcotest.test_case "unconnected wire named" `Quick
            test_unconnected_wire_rejected;
        ] );
      ("dispatch", [ Alcotest.test_case "Hw.Sim" `Quick test_sim_dispatch ]);
      ( "differential",
        [
          prop_lockstep;
          Alcotest.test_case "bundled kernels lockstep" `Quick
            test_bundled_lockstep;
        ] );
    ]
