(* Fault-tolerant multi-device cluster serving: health, quarantine,
   drain/re-shard, failover. *)

let tenants ?(rate = 30_000.) () =
  [
    Serve.Tenant.make ~name:"gold" ~weight:3.0 ~clients:4
      ~slo_ps:400_000_000 ~deadline_ps:900_000_000
      ~mix:[ Serve.Mix.memcpy ~bytes:(8 * 1024) () ]
      ~load:(Serve.Tenant.open_loop ~rate_rps:(rate /. 4.) ())
      ();
    Serve.Tenant.make ~name:"bronze" ~weight:1.0 ~clients:2
      ~slo_ps:500_000_000 ~deadline_ps:900_000_000
      ~mix:[ Serve.Mix.vecadd ~bytes:(4 * 1024) () ]
      ~load:(Serve.Tenant.Closed_loop { think_ps = 30_000_000 })
      ();
  ]

let small_cfg ?(seed = 42) ?(devices = 2) ?warm ?rate () =
  Cluster.config ~seed ~duration_ps:600_000_000 ~devices ?warm
    ~heartbeat_ps:25_000_000 ~drain_ps:80_000_000
    ~tenants:(tenants ?rate ()) ()

(* ---------------- basic serving across a fleet --------------------- *)

let test_basic () =
  let r = Cluster.run (small_cfg ()) () in
  Alcotest.(check (list string)) "conserves" [] (Cluster.violations r);
  let total =
    List.fold_left (fun a t -> a + t.Serve.tr_completed) 0 r.Cluster.c_tenants
  in
  Alcotest.(check bool) "completed some work" true (total > 30);
  Alcotest.(check int) "no quarantines" 0 r.Cluster.c_quarantines;
  Alcotest.(check int) "no duplicates" 0 r.Cluster.c_duplicates;
  (* locality: both tenants placed, spread over both devices *)
  List.iter
    (fun (_, slot) -> Alcotest.(check bool) "placed" true (slot >= 0))
    r.Cluster.c_placements;
  let homes = List.map snd r.Cluster.c_placements in
  Alcotest.(check bool) "spread over devices" true
    (List.sort_uniq compare homes = [ 0; 1 ])

let test_device_report () =
  let r = Cluster.run (small_cfg ()) () in
  Alcotest.(check int) "two devices" 2 (List.length r.Cluster.c_devices);
  List.iter
    (fun d ->
      Alcotest.(check bool) "served" true (d.Cluster.dr_dispatched > 0);
      Alcotest.(check bool) "utilized" true (d.Cluster.dr_utilization > 0.);
      Alcotest.(check bool) "healthy at end" true
        (d.Cluster.dr_state = Cluster.Health.Healthy))
    r.Cluster.c_devices

(* ---------------- determinism -------------------------------------- *)

let test_determinism () =
  List.iter
    (fun devices ->
      let digest () =
        Cluster.digest (Cluster.run (small_cfg ~devices ()) ())
      in
      let a = digest () and b = digest () in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical for %d devices" devices)
        a b)
    [ 1; 2; 4 ]

let test_seed_changes_digest () =
  let d seed = Cluster.digest (Cluster.run (small_cfg ~seed ()) ()) in
  Alcotest.(check bool) "seed changes digest" false (d 1 = d 2)

(* ---------------- chaos: kill, drain, re-shard, restore ------------ *)

let test_kill_reshard_restore () =
  let cfg = small_cfg ~devices:4 () in
  let chaos =
    [
      Cluster.Kill { at = 150_000_000; dev = 0 };
      Cluster.Restore { at = 400_000_000; dev = 0 };
    ]
  in
  let r = Cluster.run ~chaos cfg () in
  Alcotest.(check (list string)) "conserves under chaos" []
    (Cluster.violations r);
  Alcotest.(check int) "zero lost acked" 0 r.Cluster.c_lost_acked;
  Alcotest.(check bool) "device quarantined" true (r.Cluster.c_quarantines >= 1);
  (* every tenant that lived on dev0 moved to a survivor *)
  List.iter
    (fun (_, slot) -> Alcotest.(check bool) "re-homed" true (slot <> 0 || slot < 0))
    r.Cluster.c_placements;
  let d0 = List.hd r.Cluster.c_devices in
  Alcotest.(check bool) "dev0 rebooted" true (d0.Cluster.dr_generations >= 2);
  let dead_seen =
    List.exists
      (fun (_, s) -> s = Cluster.Health.Dead)
      d0.Cluster.dr_transitions
  in
  Alcotest.(check bool) "dev0 went dead" true dead_seen

let test_kill_all_degrades () =
  let cfg = small_cfg ~devices:2 () in
  let chaos =
    [
      Cluster.Kill { at = 100_000_000; dev = 0 };
      Cluster.Kill { at = 100_000_000; dev = 1 };
    ]
  in
  let r = Cluster.run ~chaos cfg () in
  Alcotest.(check (list string)) "still conserves" [] (Cluster.violations r);
  Alcotest.(check bool) "degradation shed load" true
    (r.Cluster.c_degraded_sheds > 0)

let test_warm_pool_promotion () =
  (* 3 slots, 2 warm; killing one pulls the standby in (stranded or SLO) *)
  let cfg = small_cfg ~devices:3 ~warm:2 () in
  let chaos = [ Cluster.Kill { at = 150_000_000; dev = 0 } ] in
  let r = Cluster.run ~chaos cfg () in
  Alcotest.(check (list string)) "conserves" [] (Cluster.violations r);
  Alcotest.(check int) "zero lost acked" 0 r.Cluster.c_lost_acked;
  Alcotest.(check bool) "no tenant left degraded at end" true
    (List.for_all (fun (_, s) -> s >= 0) r.Cluster.c_placements)

(* ---------------- qcheck properties -------------------------------- *)

let prop_no_lost_acked =
  QCheck.Test.make ~name:"drain+re-shard loses no acked, duplicates none"
    ~count:8
    QCheck.(
      pair (int_range 1 1000)
        (list_of_size Gen.(int_range 1 3)
           (pair (int_range 0 3) (int_range 50 450))))
    (fun (seed, kills) ->
      let cfg = small_cfg ~seed ~devices:4 () in
      let chaos =
        List.map
          (fun (dev, at_ms) -> Cluster.Kill { at = at_ms * 1_000_000; dev })
          kills
      in
      let r = Cluster.run ~chaos cfg () in
      Cluster.violations r = [] && r.Cluster.c_lost_acked = 0)

let prop_deterministic =
  QCheck.Test.make ~name:"same seed, byte-identical report (1/2/4 devices)"
    ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      List.for_all
        (fun devices ->
          let go () =
            let cfg =
              Cluster.config ~seed ~duration_ps:300_000_000 ~devices
                ~heartbeat_ps:25_000_000 ~tenants:(tenants ~rate:20_000. ())
                ()
            in
            Cluster.digest (Cluster.run cfg ())
          in
          go () = go ())
        [ 1; 2; 4 ])

(* ---------------- device-loss degradation curve -------------------- *)

let test_loss_curve () =
  let pts =
    Cluster.device_loss_curve ~seed:7 ~duration_ps:400_000_000
      ~rate_rps:40_000. ~devices:2 ()
  in
  Alcotest.(check int) "two points" 2 (List.length pts);
  let full = List.hd pts and degraded = List.nth pts 1 in
  Alcotest.(check bool) "losing a device cannot help throughput" true
    (degraded.Cluster.lp_achieved_rps <= full.Cluster.lp_achieved_rps *. 1.05);
  Alcotest.(check bool) "renders" true
    (String.length (Cluster.render_loss_curve pts) > 0)

(* ---------------- report rendering --------------------------------- *)

let test_render () =
  let chaos = [ Cluster.Kill { at = 150_000_000; dev = 1 } ] in
  let r = Cluster.run ~chaos (small_cfg ~devices:2 ()) () in
  let s = Cluster.render r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "render has %S" needle) true
        (contains s needle))
    [ "cluster campaign"; "shed breakdown"; "dev0"; "dev1" ]

let () =
  Alcotest.run "cluster"
    [
      ( "serving",
        [
          Alcotest.test_case "two-device fleet serves and conserves" `Quick
            test_basic;
          Alcotest.test_case "device reports" `Quick test_device_report;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical digests (1/2/4 devices)" `Quick
            test_determinism;
          Alcotest.test_case "seed changes digest" `Quick
            test_seed_changes_digest;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill -> drain -> re-shard -> restore" `Quick
            test_kill_reshard_restore;
          Alcotest.test_case "killing every device degrades gracefully" `Quick
            test_kill_all_degrades;
          Alcotest.test_case "warm-pool promotion absorbs a loss" `Quick
            test_warm_pool_promotion;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_no_lost_acked;
          QCheck_alcotest.to_alcotest prop_deterministic;
        ] );
      ( "degradation",
        [ Alcotest.test_case "device-loss curve" `Quick test_loss_curve ] );
      ( "render", [ Alcotest.test_case "report renders" `Quick test_render ] );
    ]
