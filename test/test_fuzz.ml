(* Composer-level fuzzing: random configurations through elaboration
   invariants, and randomized end-to-end runs through the full stack
   (TLM and RTL cores, both platform families, odd sizes and tunings). *)

module B = Beethoven
module C = B.Config
module D = Platform.Device

let check_bool = Alcotest.(check bool)

(* ---- random configuration generator ---- *)

let gen_config =
  QCheck.Gen.(
    let* n_systems = 1 -- 3 in
    let* systems =
      flatten_l
        (List.init n_systems (fun si ->
             let* n_cores = 1 -- 6 in
             let* n_read = 0 -- 2 in
             let* n_write = 0 -- 2 in
             let* n_spads = 0 -- 2 in
             let* spad_bits = oneofl [ 8; 32; 64; 512 ] in
             let* spad_depth = 16 -- 2048 in
             let* burst = oneofl [ 8; 16; 32; 64 ] in
             let* in_flight = 1 -- 4 in
             let* tlp = bool in
             return
               (C.system
                  ~name:(Printf.sprintf "S%d" si)
                  ~n_cores
                  ~read_channels:
                    (List.init n_read (fun i ->
                         C.read_channel
                           ~name:(Printf.sprintf "r%d" i)
                           ~data_bytes:4 ~burst_beats:burst
                           ~max_in_flight:in_flight ~use_tlp:tlp
                           ~buffer_beats:(4 * burst) ()))
                  ~write_channels:
                    (List.init n_write (fun i ->
                         C.write_channel
                           ~name:(Printf.sprintf "w%d" i)
                           ~data_bytes:4 ~burst_beats:burst
                           ~max_in_flight:in_flight ~use_tlp:tlp
                           ~buffer_beats:(4 * burst) ()))
                  ~scratchpads:
                    (List.init n_spads (fun i ->
                         C.scratchpad
                           ~name:(Printf.sprintf "sp%d" i)
                           ~data_bits:spad_bits ~n_datas:spad_depth ()))
                  ~commands:
                    [ B.Cmd_spec.make ~name:"go" ~funct:0 ~response_bits:32 [] ]
                  ())))
    in
    return (C.make ~name:"fuzz" systems))

let arb_config = QCheck.make ~print:(fun c -> c.C.acc_name) gen_config

let prop name ?(count = 60) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let elaboration_invariants platform config =
  match B.Elaborate.elaborate config platform with
  | exception Failure _ -> true (* a clean does-not-fit is acceptable *)
  | d ->
      let module R = Platform.Resources in
      (* command endpoints are dense and unique *)
      let eps =
        List.concat_map
          (fun sys ->
            List.init sys.C.n_cores (fun core ->
                B.Elaborate.cmd_endpoint d ~system:sys.C.sys_name ~core))
          config.C.systems
      in
      let dense =
        List.sort compare eps = List.init (List.length eps) (fun i -> i)
      in
      (* memory endpoints: one per channel instance (+ spad init readers) *)
      let expected_mem_eps =
        List.fold_left
          (fun acc sys ->
            acc
            + sys.C.n_cores
              * (List.fold_left
                   (fun a rc -> a + rc.C.rc_n_channels)
                   0 sys.C.read_channels
                + List.fold_left
                    (fun a wc -> a + wc.C.wc_n_channels)
                    0 sys.C.write_channels
                + List.length
                    (List.filter
                       (fun sp -> sp.C.sp_init_from_memory)
                       sys.C.scratchpads)))
          0 config.C.systems
      in
      let mem_ok = Noc.n_endpoints d.B.Elaborate.mem_noc = expected_mem_eps in
      (* accounting: grand total = beethoven + shell *)
      let acct =
        d.B.Elaborate.grand_total
        = R.add d.B.Elaborate.beethoven_total (D.total_shell platform)
      in
      (* every core is placed exactly once *)
      let placed =
        List.length d.B.Elaborate.floorplan.B.Floorplan.places
        = C.total_cores config
      in
      dense && mem_ok && acct && placed

let fuzz_elaborate =
  [
    prop "random configs elaborate with invariants (F1)" arb_config
      (elaboration_invariants D.aws_f1);
    prop "random configs elaborate with invariants (Kria)" arb_config
      (elaboration_invariants D.kria);
    prop "random configs elaborate with invariants (ASIC)" ~count:30
      arb_config
      (elaboration_invariants D.asap7);
  ]

(* ---- end-to-end fuzz ---- *)

let fuzz_end_to_end =
  [
    prop "vecadd correct for random sizes/cores/platforms" ~count:25
      QCheck.(triple (1 -- 4) (1 -- 3000) bool)
      (fun (cores, n_eles, embedded) ->
        let platform = if embedded then D.kria else D.aws_f1 in
        QCheck.assume (n_eles >= cores);
        let expected, actual, _ =
          Kernels.Vecadd.run ~n_cores:cores ~n_eles ~platform ()
        in
        expected = actual);
    prop "rtl vecadd correct for random sizes" ~count:10
      QCheck.(pair (1 -- 2) (1 -- 600))
      (fun (cores, n_eles) ->
        let ok, _, _ =
          Kernels.Vecadd_rtl.run ~n_cores:cores ~n_eles ~platform:D.aws_f1 ()
        in
        ok);
    prop "memcpy correct for random sizes and tunings" ~count:20
      QCheck.(pair (oneofl Kernels.Memcpy.all_impls) (64 -- 100_000))
      (fun (impl, bytes) ->
        let bytes = bytes / 4 * 4 in
        QCheck.assume (bytes > 0);
        let platform = { D.aws_f1 with D.dram = Dram.Config.ddr4_2400 } in
        (Kernels.Memcpy.run ~impl ~bytes ~platform ()).Kernels.Memcpy.verified);
  ]

let () =
  Alcotest.run "fuzz"
    [ ("elaborate", fuzz_elaborate); ("end-to-end", fuzz_end_to_end) ]
