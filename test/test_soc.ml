(* The simulated SoC: reader/writer timing semantics, scratchpads,
   command dispatch/queueing, and a full vecadd integration run. *)

module B = Beethoven
module Soc = B.Soc
module C = B.Config
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* a single-core SoC whose behavior is injected per test *)
let mk_soc ?(read_channels = [ C.read_channel ~name:"in" ~data_bytes:4 () ])
    ?(write_channels = [ C.write_channel ~name:"out" ~data_bytes:4 () ])
    ?(scratchpads = []) behavior =
  let cfg =
    C.make ~name:"t"
      [
        C.system ~name:"S" ~n_cores:1 ~read_channels ~write_channels
          ~scratchpads
          ~commands:
            [ B.Cmd_spec.make ~name:"go" ~funct:0 ~response_bits:32 [] ]
          ();
      ]
  in
  let design = B.Elaborate.elaborate cfg D.aws_f1 in
  Soc.create design ~behaviors:(fun _ -> behavior)

let go_cmd soc k =
  Soc.send_command soc
    {
      B.Rocc.system_id = 0;
      core_id = 0;
      funct = 0;
      expects_response = true;
      payload1 = 0L;
      payload2 = 0L;
    }
    ~on_response:k

let test_reader_stream_rate () =
  (* items are delivered at most one per fabric cycle, in order *)
  let deliveries = ref [] in
  let soc =
    mk_soc (fun ctx _ ~respond ->
        let r = Soc.reader ctx "in" in
        Soc.Reader.stream r ~addr:0 ~bytes:(256 * 4)
          ~on_item:(fun ~offset ->
            deliveries := (offset, Desim.Engine.now ctx.Soc.engine) :: !deliveries)
          ~on_done:(fun () -> respond 0L)
          ())
  in
  let got = ref false in
  go_cmd soc (fun _ -> got := true);
  Desim.Engine.run (Soc.engine soc);
  check_bool "completed" true !got;
  let ds = List.rev !deliveries in
  check_int "256 items" 256 (List.length ds);
  check_bool "offsets in order" true
    (List.map fst ds = List.init 256 (fun i -> i * 4));
  (* at most one per 4ns cycle *)
  let rec spaced = function
    | (_, t1) :: ((_, t2) :: _ as rest) -> t2 - t1 >= 4000 && spaced rest
    | _ -> true
  in
  check_bool "max 1 item per cycle" true (spaced ds)

let test_reader_rejects_concurrent_streams () =
  let failed = ref false in
  let soc =
    mk_soc (fun ctx _ ~respond ->
        let r = Soc.reader ctx "in" in
        Soc.Reader.stream r ~addr:0 ~bytes:64
          ~on_item:(fun ~offset:_ -> ())
          ~on_done:(fun () -> respond 0L)
          ();
        (try
           Soc.Reader.stream r ~addr:0 ~bytes:64
             ~on_item:(fun ~offset:_ -> ())
             ~on_done:ignore ()
         with Failure _ -> failed := true))
  in
  go_cmd soc (fun _ -> ());
  Desim.Engine.run (Soc.engine soc);
  check_bool "second stream rejected while busy" true !failed

let test_writer_counts_and_completion () =
  let soc =
    mk_soc (fun ctx _ ~respond ->
        let w = Soc.writer ctx "out" in
        let n = 100 in
        Soc.Writer.begin_txn w ~addr:4096 ~bytes:(n * 4) ~on_done:(fun () ->
            respond 7L);
        let rec push i =
          if i < n then
            Soc.Writer.push w ~on_accept:(fun () -> push (i + 1)) ()
        in
        push 0)
  in
  let resp = ref 0L in
  go_cmd soc (fun r -> resp := r.B.Rocc.resp_data);
  Desim.Engine.run (Soc.engine soc);
  Alcotest.(check int64) "done fires after all B responses" 7L !resp;
  let writes =
    Array.fold_left
      (fun acc p -> acc + Axi.writes_issued p)
      0 (Soc.axi_ports soc)
  in
  check_bool "axi saw writes" true (writes > 0)

let test_scratchpad_init_and_access () =
  let spads =
    [ C.scratchpad ~name:"sp" ~data_bits:64 ~n_datas:128 ~init_from_memory:true () ]
  in
  let seen = ref 0L in
  let soc =
    mk_soc ~scratchpads:spads (fun ctx _ ~respond ->
        let sp = Soc.scratchpad ctx "sp" in
        check_int "depth" 128 (Soc.Scratchpad.depth sp);
        Soc.Scratchpad.init_from_memory sp ~addr:8192 ~on_done:(fun () ->
            seen := Soc.Scratchpad.get_u64 sp 5;
            Soc.Scratchpad.set_u64 sp 6 99L;
            respond (Soc.Scratchpad.get_u64 sp 6))
          ())
  in
  Soc.write_u64 soc (8192 + 40) 4242L;
  let resp = ref 0L in
  go_cmd soc (fun r -> resp := r.B.Rocc.resp_data);
  Desim.Engine.run (Soc.engine soc);
  Alcotest.(check int64) "init pulled device contents" 4242L !seen;
  Alcotest.(check int64) "set/get roundtrip" 99L !resp

let test_core_queues_commands () =
  (* two commands to one core run strictly one after the other *)
  let starts = ref [] in
  let soc =
    mk_soc (fun ctx _ ~respond ->
        starts := Desim.Engine.now ctx.Soc.engine :: !starts;
        Soc.after_cycles ctx 1000 (fun () -> respond 0L))
  in
  let done_count = ref 0 in
  go_cmd soc (fun _ -> incr done_count);
  go_cmd soc (fun _ -> incr done_count);
  Desim.Engine.run (Soc.engine soc);
  check_int "both completed" 2 !done_count;
  match List.rev !starts with
  | [ t1; t2 ] ->
      check_bool "second starts after first's 1000 cycles" true
        (t2 - t1 >= 1000 * 4000)
  | _ -> Alcotest.fail "expected two starts"

let test_mmio_and_noc_latency () =
  (* a do-nothing command still takes 2x (MMIO + NoC) time *)
  let soc = mk_soc (fun _ _ ~respond -> respond 0L) in
  let finish = ref 0 in
  go_cmd soc (fun _ -> finish := Desim.Engine.now (Soc.engine soc));
  Desim.Engine.run (Soc.engine soc);
  let mmio = D.aws_f1.D.host.D.mmio_latency_ps in
  check_bool "roundtrip >= 2x mmio" true (!finish >= 2 * mmio)

(* ---- full integration: vecadd on 1..4 cores ---- *)

let test_vecadd_end_to_end () =
  List.iter
    (fun cores ->
      let expected, actual, _ =
        Kernels.Vecadd.run ~n_cores:cores ~n_eles:2048 ~platform:D.aws_f1 ()
      in
      check_bool (Printf.sprintf "%d cores correct" cores) true
        (expected = actual))
    [ 1; 3 ]

let test_vecadd_multicore_speedup () =
  let _, _, t1 = Kernels.Vecadd.run ~n_cores:1 ~n_eles:65536 ~platform:D.aws_f1 () in
  let _, _, t4 = Kernels.Vecadd.run ~n_cores:4 ~n_eles:65536 ~platform:D.aws_f1 () in
  check_bool "4 cores faster than 1" true (t4 < t1)

(* ---- property: streamed data arrives exactly once, in order ---- *)

let prop_stream =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"reader delivers each item exactly once"
       QCheck.(pair (1 -- 500) (int_bound 1000))
       (fun (n_items, addr_blk) ->
         let addr = addr_blk * 64 in
         let seen = Array.make n_items 0 in
         let ok = ref true in
         let soc =
           mk_soc (fun ctx _ ~respond ->
               let r = Soc.reader ctx "in" in
               Soc.Reader.stream r ~addr ~bytes:(n_items * 4)
                 ~on_item:(fun ~offset ->
                   let i = offset / 4 in
                   if i < 0 || i >= n_items then ok := false
                   else seen.(i) <- seen.(i) + 1)
                 ~on_done:(fun () -> respond 0L)
                 ())
         in
         let responded = ref false in
         go_cmd soc (fun _ -> responded := true);
         Desim.Engine.run (Soc.engine soc);
         !ok && !responded && Array.for_all (( = ) 1) seen))

let () =
  Alcotest.run "soc"
    [
      ( "reader",
        [
          Alcotest.test_case "stream rate" `Quick test_reader_stream_rate;
          Alcotest.test_case "busy rejected" `Quick
            test_reader_rejects_concurrent_streams;
        ] );
      ( "writer",
        [ Alcotest.test_case "push/complete" `Quick test_writer_counts_and_completion ] );
      ( "scratchpad",
        [ Alcotest.test_case "init/access" `Quick test_scratchpad_init_and_access ] );
      ( "commands",
        [
          Alcotest.test_case "queueing" `Quick test_core_queues_commands;
          Alcotest.test_case "latency floor" `Quick test_mmio_and_noc_latency;
        ] );
      ( "integration",
        [
          Alcotest.test_case "vecadd correct" `Quick test_vecadd_end_to_end;
          Alcotest.test_case "multicore speedup" `Quick
            test_vecadd_multicore_speedup;
        ] );
      ("properties", [ prop_stream ]);
    ]
