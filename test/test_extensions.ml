(* Extension features: the FIFO generator, signed-arithmetic DSL helpers,
   A3's RTL dot-product stage, DRAM refresh, the page-table model, strided
   Reader streams, and the ASIC/test-chip platform entries. *)

module B = Beethoven
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Signal.sext / repeat ---- *)

let test_sext_repeat () =
  let open Hw.Signal in
  let a = input "a" 4 in
  let sim =
    Hw.Cyclesim.create
      (Hw.Circuit.create ~name:"t"
         ~outputs:[ ("sx", sext a 8); ("rp", repeat a 3) ])
  in
  Hw.Cyclesim.set_input_int sim "a" 0b1010;
  check_int "sign extended" 0b11111010 (Hw.Cyclesim.output_int sim "sx");
  check_int "repeated" 0b1010_1010_1010 (Hw.Cyclesim.output_int sim "rp");
  Hw.Cyclesim.set_input_int sim "a" 0b0101;
  check_int "positive sext" 0b0101 (Hw.Cyclesim.output_int sim "sx")

(* ---- FIFO generator ---- *)

let mk_fifo depth =
  let open Hw.Signal in
  let f = Hw.Fifo.create ~depth ~width:8 () in
  let enq_valid = input "enq_valid" 1 in
  let enq_data = input "enq_data" 8 in
  let deq_ready = input "deq_ready" 1 in
  assign f.Hw.Fifo.enq_valid enq_valid;
  assign f.Hw.Fifo.enq_data enq_data;
  assign f.Hw.Fifo.deq_ready deq_ready;
  let c =
    Hw.Circuit.create ~name:"fifo_tb"
      ~outputs:
        [
          ("enq_ready", f.Hw.Fifo.enq_ready);
          ("deq_valid", f.Hw.Fifo.deq_valid);
          ("deq_data", f.Hw.Fifo.deq_data);
          ("occupancy", f.Hw.Fifo.occupancy);
        ]
  in
  Hw.Cyclesim.create c

let test_fifo_fill_drain () =
  let sim = mk_fifo 4 in
  let set = Hw.Cyclesim.set_input_int sim in
  set "deq_ready" 0;
  (* fill to capacity *)
  List.iteri
    (fun i v ->
      set "enq_valid" 1;
      set "enq_data" v;
      check_int (Printf.sprintf "ready while filling %d" i) 1
        (Hw.Cyclesim.output_int sim "enq_ready");
      Hw.Cyclesim.step sim)
    [ 11; 22; 33; 44 ];
  check_int "full: not ready" 0 (Hw.Cyclesim.output_int sim "enq_ready");
  check_int "occupancy 4" 4 (Hw.Cyclesim.output_int sim "occupancy");
  set "enq_valid" 0;
  (* drain in order *)
  set "deq_ready" 1;
  List.iter
    (fun v ->
      check_int "valid while draining" 1
        (Hw.Cyclesim.output_int sim "deq_valid");
      check_int "fifo order" v (Hw.Cyclesim.output_int sim "deq_data");
      Hw.Cyclesim.step sim)
    [ 11; 22; 33; 44 ];
  check_int "empty" 0 (Hw.Cyclesim.output_int sim "deq_valid")

let test_fifo_bad_depth () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fifo.create: depth must be a power of two >= 2")
    (fun () -> ignore (Hw.Fifo.create ~depth:6 ~width:8 ()))

let prop_fifo =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"fifo matches a queue model"
       QCheck.(list_of_size Gen.(1 -- 120) (pair bool (int_bound 255)))
       (fun ops ->
         let sim = mk_fifo 8 in
         let set = Hw.Cyclesim.set_input_int sim in
         let model = Queue.create () in
         let ok = ref true in
         List.iter
           (fun (is_enq, v) ->
             if is_enq then begin
               set "deq_ready" 0;
               set "enq_valid" 1;
               set "enq_data" v;
               Hw.Cyclesim.settle sim;
               let accepted = Hw.Cyclesim.output_int sim "enq_ready" = 1 in
               if accepted <> (Queue.length model < 8) then ok := false;
               if accepted then Queue.push v model
             end
             else begin
               set "enq_valid" 0;
               set "deq_ready" 1;
               Hw.Cyclesim.settle sim;
               let valid = Hw.Cyclesim.output_int sim "deq_valid" = 1 in
               if valid <> not (Queue.is_empty model) then ok := false;
               if valid then begin
                 let got = Hw.Cyclesim.output_int sim "deq_data" in
                 if got <> Queue.pop model then ok := false
               end
             end;
             Hw.Cyclesim.step sim;
             if
               Hw.Cyclesim.output_int sim "occupancy" <> Queue.length model
             then ok := false)
           ops;
         !ok))

(* ---- netlist optimization ---- *)

let test_constant_fold_shrinks () =
  let open Hw.Signal in
  let a = input "a" 8 in
  (* (a + (2*3)) & 0xFF-of-zero-or  -- plenty of foldable structure *)
  let k = of_int ~width:8 2 *: of_int ~width:8 3 in
  let z = zero 8 &: of_int ~width:8 0xAA in
  let out = a +: k |: z in
  let c = Hw.Circuit.create ~name:"f" ~outputs:[ ("o", out) ] in
  let folded = Hw.Opt.constant_fold c in
  check_bool "fewer nodes" true (Hw.Opt.node_count folded < Hw.Opt.node_count c);
  (* behaviourally identical *)
  let s1 = Hw.Cyclesim.create c and s2 = Hw.Cyclesim.create folded in
  List.iter
    (fun v ->
      Hw.Cyclesim.set_input_int s1 "a" v;
      Hw.Cyclesim.set_input_int s2 "a" v;
      check_int "same output" (Hw.Cyclesim.output_int s1 "o")
        (Hw.Cyclesim.output_int s2 "o"))
    [ 0; 1; 77; 255 ]

let test_constant_fold_mux_and_reg () =
  let open Hw.Signal in
  let a = input "a" 8 in
  (* constant selector mux collapses; always-enabled register loses its
     enable; the counter feedback survives the rebuild *)
  let chosen = mux (of_int ~width:2 1) [ zero 8; a; of_int ~width:8 9 ] in
  let q = reg ~enable:vdd chosen in
  let count = reg_fb ~width:8 (fun c -> c +: of_int ~width:8 1) in
  let c =
    Hw.Circuit.create ~name:"fr" ~outputs:[ ("q", q); ("count", count) ]
  in
  let folded = Hw.Opt.constant_fold c in
  check_bool "shrinks" true (Hw.Opt.node_count folded < Hw.Opt.node_count c);
  let s1 = Hw.Cyclesim.create c and s2 = Hw.Cyclesim.create folded in
  for step = 1 to 20 do
    let v = (step * 37) land 0xFF in
    Hw.Cyclesim.set_input_int s1 "a" v;
    Hw.Cyclesim.set_input_int s2 "a" v;
    Hw.Cyclesim.step s1;
    Hw.Cyclesim.step s2;
    check_int "reg matches" (Hw.Cyclesim.output_int s1 "q")
      (Hw.Cyclesim.output_int s2 "q");
    check_int "counter matches" (Hw.Cyclesim.output_int s1 "count")
      (Hw.Cyclesim.output_int s2 "count")
  done

let prop_fold_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"folding the A3 stage-2 circuit preserves behaviour"
       QCheck.(list_of_size Gen.(1 -- 30) (int_bound 100_000))
       (fun scores ->
         let c = Attention.A3_rtl.stage2_circuit () in
         let folded = Hw.Opt.constant_fold c in
         let s1 = Hw.Cyclesim.create c and s2 = Hw.Cyclesim.create folded in
         let drive sim name v = Hw.Cyclesim.set_input sim name v in
         let ok = ref true in
         List.iter
           (fun sim ->
             drive sim "max_score" (Bits.of_int ~width:24 100_000);
             Hw.Cyclesim.set_input_int sim "clear" 1;
             Hw.Cyclesim.set_input_int sim "score_valid" 0;
             drive sim "score" (Bits.zero 24);
             Hw.Cyclesim.step sim;
             Hw.Cyclesim.set_input_int sim "clear" 0)
           [ s1; s2 ];
         List.iter
           (fun sc ->
             List.iter
               (fun sim ->
                 Hw.Cyclesim.set_input_int sim "score_valid" 1;
                 drive sim "score" (Bits.of_int ~width:24 sc);
                 Hw.Cyclesim.step sim)
               [ s1; s2 ];
             if
               Hw.Cyclesim.output_int s1 "weight"
               <> Hw.Cyclesim.output_int s2 "weight"
               || Hw.Cyclesim.output_int s1 "wsum"
                  <> Hw.Cyclesim.output_int s2 "wsum"
             then ok := false)
           scores;
         !ok))

(* ---- A3 stage-1 RTL ---- *)

let test_a3_stage1_dot_products () =
  let sim = Hw.Cyclesim.create (Attention.A3_rtl.circuit ()) in
  let rand =
    let s = ref 5 in
    fun () ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (!s mod 256) - 128
  in
  let q = Array.init 64 (fun _ -> rand ()) in
  Hw.Cyclesim.set_input_int sim "load_q" 1;
  Hw.Cyclesim.set_input sim "q_row" (Attention.A3_rtl.pack_row q);
  Hw.Cyclesim.set_input_int sim "key_valid" 0;
  Hw.Cyclesim.set_input_int sim "clear" 1;
  Hw.Cyclesim.set_input sim "key_row" (Bits.zero 512);
  Hw.Cyclesim.step sim;
  Hw.Cyclesim.set_input_int sim "load_q" 0;
  Hw.Cyclesim.set_input_int sim "clear" 0;
  let max_ref = ref min_int in
  for i = 1 to 40 do
    let k = Array.init 64 (fun _ -> rand ()) in
    Hw.Cyclesim.set_input_int sim "key_valid" 1;
    Hw.Cyclesim.set_input sim "key_row" (Attention.A3_rtl.pack_row k);
    Hw.Cyclesim.step sim;
    let expect = Attention.A3_rtl.dot_reference q k in
    if expect > !max_ref then max_ref := expect;
    check_int
      (Printf.sprintf "dot product %d" i)
      expect
      (Bits.to_signed_int (Hw.Cyclesim.output sim "score"))
  done;
  Hw.Cyclesim.set_input_int sim "key_valid" 0;
  Hw.Cyclesim.step sim;
  check_int "running max (first global reduction)" !max_ref
    (Bits.to_signed_int (Hw.Cyclesim.output sim "max_score"))

let mk_divider w =
  let open Hw.Signal in
  let d = Hw.Divider.create ~width:w () in
  let start = input "start" 1 in
  let a = input "a" w in
  let b = input "b" w in
  assign d.Hw.Divider.start start;
  assign d.Hw.Divider.dividend a;
  assign d.Hw.Divider.divisor b;
  Hw.Cyclesim.create
    (Hw.Circuit.create ~name:"div"
       ~outputs:
         [
           ("q", d.Hw.Divider.quotient);
           ("r", d.Hw.Divider.remainder);
           ("busy", d.Hw.Divider.busy);
           ("done", d.Hw.Divider.done_);
         ])

let divider_divide sim width x y =
  Hw.Cyclesim.set_input_int sim "start" 1;
  Hw.Cyclesim.set_input_int sim "a" x;
  Hw.Cyclesim.set_input_int sim "b" y;
  Hw.Cyclesim.step sim;
  Hw.Cyclesim.set_input_int sim "start" 0;
  let guard = ref 0 in
  while Hw.Cyclesim.output_int sim "done" = 0 && !guard < (2 * width) do
    Hw.Cyclesim.step sim;
    incr guard
  done;
  (Hw.Cyclesim.output_int sim "q", Hw.Cyclesim.output_int sim "r")

let test_divider_basics () =
  let sim = mk_divider 16 in
  List.iter
    (fun (x, y) ->
      let q, r = divider_divide sim 16 x y in
      check_int (Printf.sprintf "%d/%d quotient" x y) (x / y) q;
      check_int (Printf.sprintf "%d mod %d" x y) (x mod y) r)
    [ (100, 7); (65535, 255); (5, 10); (42, 1); (0, 3) ];
  (* division by zero: all-ones quotient, remainder = dividend *)
  let q, r = divider_divide sim 16 1234 0 in
  check_int "div0 quotient" 0xFFFF q;
  check_int "div0 remainder" 1234 r;
  check_int "takes width steps after issue" 16
    (let sim2 = mk_divider 16 in
     Hw.Cyclesim.set_input_int sim2 "start" 1;
     Hw.Cyclesim.set_input_int sim2 "a" 99;
     Hw.Cyclesim.set_input_int sim2 "b" 7;
     Hw.Cyclesim.step sim2;
     Hw.Cyclesim.set_input_int sim2 "start" 0;
     let n = ref 0 in
     while Hw.Cyclesim.output_int sim2 "done" = 0 do
       Hw.Cyclesim.step sim2;
       incr n
     done;
     !n)

let prop_divider =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"divider matches integer division"
       QCheck.(pair (int_bound 0xFFFFFF) (1 -- 0xFFFFFF))
       (fun (x, y) ->
         let sim = mk_divider 24 in
         let q, r = divider_divide sim 24 x y in
         q = x / y && r = x mod y))

(* the full three-stage A3 pipeline at netlist level, normalization via
   the sequential divider, verified bit-exact against the functional
   model *)
let test_a3_full_rtl_pipeline () =
  let rand =
    let s = ref 99 in
    fun () ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (!s mod 33) - 16
  in
  let q = Array.init 64 (fun _ -> rand ()) in
  let keys = Array.init Attention.A3.n_keys (fun _ -> Array.init 64 (fun _ -> rand ())) in
  let values = Array.init Attention.A3.n_keys (fun _ -> Array.init 64 (fun _ -> rand ())) in
  (* stage 1 netlist: scores + max *)
  let s1 = Hw.Cyclesim.create (Attention.A3_rtl.circuit ()) in
  Hw.Cyclesim.set_input_int s1 "load_q" 1;
  Hw.Cyclesim.set_input s1 "q_row" (Attention.A3_rtl.pack_row q);
  Hw.Cyclesim.set_input_int s1 "key_valid" 0;
  Hw.Cyclesim.set_input_int s1 "clear" 1;
  Hw.Cyclesim.set_input s1 "key_row" (Bits.zero 512);
  Hw.Cyclesim.step s1;
  Hw.Cyclesim.set_input_int s1 "load_q" 0;
  Hw.Cyclesim.set_input_int s1 "clear" 0;
  let scores =
    Array.map
      (fun k ->
        Hw.Cyclesim.set_input_int s1 "key_valid" 1;
        Hw.Cyclesim.set_input s1 "key_row" (Attention.A3_rtl.pack_row k);
        Hw.Cyclesim.step s1;
        Bits.to_signed_int (Hw.Cyclesim.output s1 "score"))
      keys
  in
  Hw.Cyclesim.set_input_int s1 "key_valid" 0;
  Hw.Cyclesim.step s1;
  let max_score = Bits.to_signed_int (Hw.Cyclesim.output s1 "max_score") in
  Alcotest.(check (array int))
    "stage 1 scores == reference" (Attention.A3.stage1_scores ~query:q ~keys)
    scores;
  (* stage 2 netlist: weights + wsum *)
  let s2 = Hw.Cyclesim.create (Attention.A3_rtl.stage2_circuit ()) in
  Hw.Cyclesim.set_input_int s2 "clear" 1;
  Hw.Cyclesim.set_input_int s2 "score_valid" 0;
  Hw.Cyclesim.set_input s2 "score" (Bits.zero 24);
  Hw.Cyclesim.set_input s2 "max_score" (Bits.zero 24);
  Hw.Cyclesim.step s2;
  Hw.Cyclesim.set_input_int s2 "clear" 0;
  Hw.Cyclesim.set_input s2 "max_score"
    (Bits.of_signed_int ~width:24 max_score);
  let weights =
    Array.map
      (fun sc ->
        Hw.Cyclesim.set_input_int s2 "score_valid" 1;
        Hw.Cyclesim.set_input s2 "score" (Bits.of_signed_int ~width:24 sc);
        Hw.Cyclesim.step s2;
        Hw.Cyclesim.output_int s2 "weight")
      scores
  in
  Hw.Cyclesim.set_input_int s2 "score_valid" 0;
  Hw.Cyclesim.step s2;
  let wsum = Hw.Cyclesim.output_int s2 "wsum" in
  let ref_weights = Attention.A3.stage2_weights scores in
  Alcotest.(check (array int)) "stage 2 weights == reference" ref_weights weights;
  check_int "wsum == reference" (Array.fold_left ( + ) 0 ref_weights) wsum;
  (* stage 3 netlist: weighted accumulators *)
  let s3 = Hw.Cyclesim.create (Attention.A3_rtl.stage3_circuit ()) in
  Hw.Cyclesim.set_input_int s3 "clear" 1;
  Hw.Cyclesim.set_input_int s3 "w_valid" 0;
  Hw.Cyclesim.set_input_int s3 "weight" 0;
  Hw.Cyclesim.set_input_int s3 "sel" 0;
  Hw.Cyclesim.set_input s3 "v_row" (Bits.zero 512);
  Hw.Cyclesim.step s3;
  Hw.Cyclesim.set_input_int s3 "clear" 0;
  Array.iteri
    (fun i w ->
      Hw.Cyclesim.set_input_int s3 "w_valid" 1;
      Hw.Cyclesim.set_input_int s3 "weight" w;
      Hw.Cyclesim.set_input s3 "v_row" (Attention.A3_rtl.pack_row values.(i));
      Hw.Cyclesim.step s3)
    weights;
  Hw.Cyclesim.set_input_int s3 "w_valid" 0;
  let acc d =
    Hw.Cyclesim.set_input_int s3 "sel" d;
    Bits.to_signed_int (Hw.Cyclesim.output s3 "acc")
  in
  (* normalization through the sequential divider, sign handled around it
     (the functional model divides toward zero) *)
  let open Hw.Signal in
  let dv = Hw.Divider.create ~width:32 () in
  let start = input "start" 1 and a = input "a" 32 and b = input "b" 32 in
  assign dv.Hw.Divider.start start;
  assign dv.Hw.Divider.dividend a;
  assign dv.Hw.Divider.divisor b;
  let dsim =
    Hw.Cyclesim.create
      (Hw.Circuit.create ~name:"norm"
         ~outputs:[ ("q", dv.Hw.Divider.quotient); ("done", dv.Hw.Divider.done_) ])
  in
  let divide x y =
    Hw.Cyclesim.set_input_int dsim "start" 1;
    Hw.Cyclesim.set_input_int dsim "a" x;
    Hw.Cyclesim.set_input_int dsim "b" y;
    Hw.Cyclesim.step dsim;
    Hw.Cyclesim.set_input_int dsim "start" 0;
    let guard = ref 0 in
    while Hw.Cyclesim.output_int dsim "done" = 0 && !guard < 64 do
      Hw.Cyclesim.step dsim;
      incr guard
    done;
    Hw.Cyclesim.output_int dsim "q"
  in
  let expect = Attention.A3.attend_fixed ~query:q ~keys ~values in
  let got =
    Array.init 64 (fun d ->
        let num = acc d + (wsum / 2) in
        let v =
          if num >= 0 then divide num wsum else -divide (-num) wsum
        in
        max (-128) (min 127 v))
  in
  Alcotest.(check (array int))
    "normalized outputs == attend_fixed" expect got

(* ---- DRAM refresh ---- *)

let test_refresh_costs_bandwidth () =
  let stream cfg =
    let e = Desim.Engine.create () in
    let d = Dram.create e cfg in
    Dram.submit d ~addr:0 ~bytes:(4 lsl 20) ~dir:Dram.Read
      ~on_complete:ignore ();
    Desim.Engine.run e;
    Dram.achieved_bandwidth_gbs d
  in
  let with_refresh = stream Dram.Config.ddr4_2400 in
  let without = stream { Dram.Config.ddr4_2400 with Dram.Config.trfc = 0 } in
  check_bool "refresh costs some bandwidth" true (with_refresh < without);
  (* tRFC/tREFI ~ 4.5%: the loss must be single-digit percent *)
  check_bool "loss bounded" true (with_refresh > without *. 0.90)

let test_refresh_closes_rows () =
  (* a row left open across a refresh boundary must re-activate (miss) *)
  let e = Desim.Engine.create () in
  let d = Dram.create e Dram.Config.ddr4_2400 in
  Dram.submit d ~addr:0 ~bytes:64 ~dir:Dram.Read ~on_complete:ignore ();
  Desim.Engine.run e;
  (* wait past the first refresh interval *)
  Desim.Engine.schedule e ~delay:(10_000 * 833) (fun () ->
      Dram.submit d ~addr:(64 * 16) ~bytes:64 ~dir:Dram.Read
        ~on_complete:ignore ());
  Desim.Engine.run e;
  check_int "both are misses" 2 (Dram.row_misses d);
  check_int "no hits" 0 (Dram.row_hits d)

(* ---- Pagemap ---- *)

let test_pagemap_translation () =
  let pm = Runtime.Pagemap.create ~phys_bytes:(64 * 1024 * 1024) () in
  let m = Runtime.Pagemap.mmap pm 10_000 in
  (* translations exist and respect the page offset *)
  let p0 = Runtime.Pagemap.translate pm m.Runtime.Pagemap.vaddr in
  let p5 = Runtime.Pagemap.translate pm (m.Runtime.Pagemap.vaddr + 5) in
  check_int "offset preserved" (p0 + 5) p5;
  check_bool "unmapped raises" true
    (try
       ignore (Runtime.Pagemap.translate pm 12345);
       false
     with Not_found -> true)

let test_pagemap_hugepages_contiguous () =
  let pm = Runtime.Pagemap.create ~phys_bytes:(64 * 1024 * 1024) () in
  let small = Runtime.Pagemap.mmap pm (64 * 1024) in
  let huge = Runtime.Pagemap.mmap pm ~hugepages:true (3 * 1024 * 1024) in
  check_bool "4KB-backed region is fragmented" false
    (Runtime.Pagemap.physically_contiguous pm small);
  check_bool "hugepage-backed region is contiguous" true
    (Runtime.Pagemap.physically_contiguous pm huge);
  check_int "regions cover the request"
    (3 * 1024 * 1024)
    (List.fold_left (fun acc (_, l) -> acc + l) 0
       (Runtime.Pagemap.phys_regions pm huge));
  Runtime.Pagemap.munmap pm huge;
  Runtime.Pagemap.munmap pm small

let test_pagemap_frames_recycle () =
  let pm = Runtime.Pagemap.create ~phys_bytes:(16 * 1024 * 1024) () in
  let before = Runtime.Pagemap.frames_free pm in
  let m = Runtime.Pagemap.mmap pm (1024 * 1024) in
  check_int "256 frames taken" (before - 256) (Runtime.Pagemap.frames_free pm);
  Runtime.Pagemap.munmap pm m;
  check_int "frames returned" before (Runtime.Pagemap.frames_free pm);
  Alcotest.check_raises "double unmap"
    (Invalid_argument "Pagemap.munmap: not mapped") (fun () ->
      Runtime.Pagemap.munmap pm m)

let prop_pagemap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"no two mappings share a physical frame"
       QCheck.(list_of_size Gen.(1 -- 12) (pair bool (1 -- 200_000)))
       (fun reqs ->
         let pm = Runtime.Pagemap.create ~phys_bytes:(128 * 1024 * 1024) () in
         let mappings =
           List.filter_map
             (fun (huge, bytes) ->
               try Some (Runtime.Pagemap.mmap pm ~hugepages:huge bytes)
               with Failure _ -> None)
             reqs
         in
         let seen = Hashtbl.create 256 in
         List.for_all
           (fun m ->
             let pages =
               ((m.Runtime.Pagemap.bytes - 1) / 4096) + 1
             in
             List.for_all
               (fun i ->
                 let p =
                   Runtime.Pagemap.translate pm
                     (m.Runtime.Pagemap.vaddr + (i * 4096))
                   / 4096
                 in
                 if Hashtbl.mem seen p then false
                 else begin
                   Hashtbl.add seen p ();
                   true
                 end)
               (List.init pages (fun i -> i)))
           mappings))

(* ---- strided reader ---- *)

let test_strided_stream () =
  let cfg =
    B.Config.make ~name:"t"
      [
        B.Config.system ~name:"S" ~n_cores:1
          ~read_channels:[ B.Config.read_channel ~name:"in" ~data_bytes:4 () ]
          ~commands:[ B.Cmd_spec.make ~name:"go" ~funct:0 [] ]
          ();
      ]
  in
  let design = B.Elaborate.elaborate cfg D.aws_f1 in
  let got = ref [] in
  let behavior : B.Soc.behavior =
   fun ctx _ ~respond ->
    let r = B.Soc.reader ctx "in" in
    B.Soc.Reader.stream_strided r ~addr:4096 ~row_bytes:16 ~stride:256
      ~n_rows:3
      ~on_item:(fun ~row ~offset -> got := (row, offset) :: !got)
      ~on_done:(fun () -> respond 0L)
      ()
  in
  let soc = B.Soc.create design ~behaviors:(fun _ -> behavior) in
  let h = Runtime.Handle.create soc in
  let cmd = B.Cmd_spec.make ~name:"go" ~funct:0 [] in
  ignore
    (Runtime.Handle.await h
       (Runtime.Handle.send h ~system:"S" ~core:0 ~cmd ~args:[]));
  let expect =
    List.concat_map (fun row -> List.init 4 (fun i -> (row, i * 4))) [ 0; 1; 2 ]
  in
  Alcotest.(check (list (pair int int)))
    "rows in order, 4 items each" expect (List.rev !got)

(* ---- platforms ---- *)

let test_asic_platforms () =
  check_bool "chipkit shares address space" true
    D.chipkit.D.host.D.shared_address_space;
  check_bool "chipkit on-die mmio is fast" true
    (D.chipkit.D.host.D.mmio_latency_ps < D.aws_f1.D.host.D.mmio_latency_ps);
  (* the same design compiles to different macro sets on the two PDKs *)
  let cfg =
    B.Config.make ~name:"t"
      [
        B.Config.system ~name:"S" ~n_cores:1
          ~scratchpads:
            [ B.Config.scratchpad ~name:"sp" ~data_bits:64 ~n_datas:2048 () ]
          ();
      ]
  in
  let plan p =
    match (B.Elaborate.elaborate cfg p).B.Elaborate.sram_plans with
    | [ (_, plan) ] -> plan
    | _ -> Alcotest.fail "expected one plan"
  in
  let a7 = plan D.chipkit and s32 = plan D.saed32 in
  check_bool "different macros" true
    (a7.Platform.Sram.macro.Platform.Sram.macro_name
    <> s32.Platform.Sram.macro.Platform.Sram.macro_name);
  check_bool "7nm denser" true
    (a7.Platform.Sram.total_area_um2 < s32.Platform.Sram.total_area_um2)

let () =
  Alcotest.run "extensions"
    [
      ( "dsl",
        [
          Alcotest.test_case "sext/repeat" `Quick test_sext_repeat;
          Alcotest.test_case "fifo fill/drain" `Quick test_fifo_fill_drain;
          Alcotest.test_case "fifo bad depth" `Quick test_fifo_bad_depth;
          Alcotest.test_case "divider" `Quick test_divider_basics;
          Alcotest.test_case "constant folding" `Quick test_constant_fold_shrinks;
          Alcotest.test_case "fold mux/reg" `Quick test_constant_fold_mux_and_reg;
          prop_fifo;
          prop_divider;
          prop_fold_equiv;
        ] );
      ( "a3-rtl",
        [
          Alcotest.test_case "dot products + max" `Quick
            test_a3_stage1_dot_products;
          Alcotest.test_case "full pipeline bit-exact" `Quick
            test_a3_full_rtl_pipeline;
        ] );
      ( "refresh",
        [
          Alcotest.test_case "bandwidth cost" `Quick test_refresh_costs_bandwidth;
          Alcotest.test_case "closes rows" `Quick test_refresh_closes_rows;
        ] );
      ( "pagemap",
        [
          Alcotest.test_case "translation" `Quick test_pagemap_translation;
          Alcotest.test_case "hugepages contiguous" `Quick
            test_pagemap_hugepages_contiguous;
          Alcotest.test_case "recycling" `Quick test_pagemap_frames_recycle;
          prop_pagemap;
        ] );
      ("strided", [ Alcotest.test_case "stream" `Quick test_strided_stream ]);
      ("platforms", [ Alcotest.test_case "asic entries" `Quick test_asic_platforms ]);
    ]
