(* RV32I interpreter + RoCC custom instructions, and the ChipKIT
   co-simulation where the simulated CPU drives a Beethoven accelerator
   through real RoCC instruction encodings. *)

module A = Riscv.Asm
module Cpu = Riscv.Cpu
module B = Beethoven

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i32 = Alcotest.(check int32)

let run_program ?on_rocc program =
  let cpu = Cpu.create ?on_rocc ~program () in
  ignore (Cpu.run cpu);
  cpu

(* ---- base ISA ---- *)

let test_arith () =
  let cpu =
    run_program
      [
        A.addi 1 0 100;
        A.addi 2 0 (-3);
        A.add 3 1 2; (* 97 *)
        A.sub 4 1 2; (* 103 *)
        A.slli 5 1 4; (* 1600 *)
        A.srai 6 2 1; (* -2 *)
        A.andi 7 1 0x6c; (* 100 & 0x6c = 0x64 & 0x6c = 0x64 *)
        A.xori 8 1 0xF; (* 107 *)
        A.slt 9 2 1; (* 1 *)
        A.sltu 10 2 1; (* 0: -3 unsigned is huge *)
        A.ecall;
      ]
  in
  check_i32 "add" 97l (Cpu.reg cpu 3);
  check_i32 "sub" 103l (Cpu.reg cpu 4);
  check_i32 "slli" 1600l (Cpu.reg cpu 5);
  check_i32 "srai" (-2l) (Cpu.reg cpu 6);
  check_i32 "andi" 0x64l (Cpu.reg cpu 7);
  check_i32 "xori" 107l (Cpu.reg cpu 8);
  check_i32 "slt" 1l (Cpu.reg cpu 9);
  check_i32 "sltu" 0l (Cpu.reg cpu 10);
  check_bool "halted" true (Cpu.halted cpu)

let test_x0_is_zero () =
  let cpu = run_program [ A.addi 0 0 42; A.add 1 0 0; A.ecall ] in
  check_i32 "x0 stays zero" 0l (Cpu.reg cpu 0);
  check_i32 "x1 = 0" 0l (Cpu.reg cpu 1)

let test_memory_ops () =
  let cpu =
    run_program
      [
        A.addi 1 0 0x100;
        A.addi 2 0 (-123);
        A.sw 2 1 0;
        A.lw 3 1 0;
        A.lh 4 1 0;
        A.lbu 5 1 0;
        A.addi 6 0 0x7f;
        A.sb 6 1 8;
        A.lb 7 1 8;
        A.ecall;
      ]
  in
  check_i32 "lw roundtrip" (-123l) (Cpu.reg cpu 3);
  check_i32 "lh sign-extends" (-123l) (Cpu.reg cpu 4);
  check_i32 "lbu zero-extends" 0x85l (Cpu.reg cpu 5);
  check_i32 "lb positive" 0x7fl (Cpu.reg cpu 7)

let test_loop_sum () =
  (* sum 1..10 with a branch loop: x1=i, x2=acc *)
  let cpu =
    run_program
      [
        A.addi 1 0 1;
        A.addi 2 0 0;
        A.addi 3 0 11;
        (* loop: *)
        A.add 2 2 1;
        A.addi 1 1 1;
        A.bne 1 3 (-8);
        A.ecall;
      ]
  in
  check_i32 "sum 1..10" 55l (Cpu.reg cpu 2)

let test_jal_jalr () =
  let cpu =
    run_program
      [
        A.jal 1 8; (* skip the next insn; x1 = 4 *)
        A.addi 6 0 99; (* skipped *)
        A.addi 3 0 7;
        A.jalr 4 1 12; (* jump to x1+12 = 16: the ecall *)
        A.ecall;
      ]
  in
  check_i32 "link register" 4l (Cpu.reg cpu 1);
  check_i32 "skipped insn" 0l (Cpu.reg cpu 6);
  check_i32 "fallthrough ran" 7l (Cpu.reg cpu 3)

let test_lui_auipc () =
  let cpu = run_program [ A.lui 1 0xABCDE; A.auipc 2 1; A.ecall ] in
  check_i32 "lui" (Int32.shift_left 0xABCDEl 12) (Cpu.reg cpu 1);
  check_i32 "auipc" (Int32.of_int ((1 lsl 12) + 4)) (Cpu.reg cpu 2)

let test_illegal_and_misaligned () =
  let cpu = Cpu.create ~program:[ A.lw 1 0 2; A.ecall ] () in
  check_bool "misaligned load traps" true
    (try
       ignore (Cpu.run cpu);
       false
     with Failure _ -> true);
  let cpu2 = Cpu.create ~program:[ A.custom0 ~funct7:0 ~rd:1 ~rs1:0 ~rs2:0 ~xd:false ] () in
  check_bool "rocc without accelerator traps" true
    (try
       ignore (Cpu.run cpu2);
       false
     with Failure _ -> true)

(* ---- RoCC hook ---- *)

let test_rocc_immediate_result () =
  let seen = ref [] in
  let cpu =
    run_program
      ~on_rocc:(fun req supply ->
        seen := (req.Cpu.funct7, req.Cpu.rs1_value, req.Cpu.rs2_value) :: !seen;
        if req.Cpu.expects_result then
          supply (Int32.mul req.Cpu.rs1_value 2l))
      [
        A.addi 1 0 21;
        A.addi 2 0 5;
        A.custom0 ~funct7:3 ~rd:4 ~rs1:1 ~rs2:2 ~xd:true;
        A.custom0 ~funct7:9 ~rd:0 ~rs1:2 ~rs2:1 ~xd:false;
        A.ecall;
      ]
  in
  check_i32 "result written" 42l (Cpu.reg cpu 4);
  check_int "both commands seen" 2 (List.length !seen);
  check_bool "funct7 routed" true
    (List.mem (3, 21l, 5l) !seen && List.mem (9, 5l, 21l) !seen)

let test_rocc_blocks_until_supplied () =
  let pending = ref None in
  let cpu =
    Cpu.create
      ~on_rocc:(fun _ supply -> pending := Some supply)
      ~program:
        [
          A.custom0 ~funct7:0 ~rd:1 ~rs1:0 ~rs2:0 ~xd:true;
          A.addi 6 0 1;
          A.ecall;
        ]
      ()
  in
  ignore (Cpu.run cpu);
  check_bool "blocked" true (Cpu.blocked_on_rocc cpu);
  check_i32 "next insn not executed" 0l (Cpu.reg cpu 6);
  (Option.get !pending) 77l;
  ignore (Cpu.run cpu);
  check_bool "halted after unblock" true (Cpu.halted cpu);
  check_i32 "result arrived" 77l (Cpu.reg cpu 1);
  check_i32 "pipeline resumed" 1l (Cpu.reg cpu 6)

(* ---- ChipKIT co-simulation ---- *)

(* a CPU-friendly accelerator: add (p2 low 16) to (p2 high 16 = count)
   words in place at p1 *)
let scale_cmd =
  B.Cmd_spec.make ~name:"scale" ~funct:0 ~response_bits:32
    [ ("addr", B.Cmd_spec.Uint 64); ("args", B.Cmd_spec.Uint 64) ]

let scale_behavior : B.Soc.behavior =
 fun ctx beats ~respond ->
  let b = List.hd beats in
  let addr = Int64.to_int b.B.Rocc.payload1 in
  let args = Int64.to_int b.B.Rocc.payload2 in
  let addend = args land 0xFFFF and count = (args lsr 16) land 0xFFFF in
  let soc = ctx.B.Soc.soc in
  B.Soc.after_cycles ctx count (fun () ->
      for i = 0 to count - 1 do
        B.Soc.write_u32 soc (addr + (4 * i))
          (Int32.add (B.Soc.read_u32 soc (addr + (4 * i))) (Int32.of_int addend))
      done;
      respond (Int64.of_int count))

let test_chipkit_cosim () =
  let cfg =
    B.Config.make ~name:"testchip"
      [ B.Config.system ~name:"Scale" ~n_cores:1 ~commands:[ scale_cmd ] () ]
  in
  let design = B.Elaborate.elaborate cfg Platform.Device.chipkit in
  let soc = B.Soc.create design ~behaviors:(fun _ -> scale_behavior) in
  (* operands in device memory (shared address space with the CPU's view) *)
  let base = 0x10000 in
  for i = 0 to 7 do
    B.Soc.write_u32 soc (base + (4 * i)) (Int32.of_int (i * 10))
  done;
  (* host program: x1 = base; x2 = count<<16 | addend; issue; await *)
  let program =
    [
      Riscv.Asm.lui 1 (base lsr 12);
      Riscv.Asm.addi 2 0 8;
      Riscv.Asm.slli 2 2 16;
      Riscv.Asm.addi 2 2 5; (* count=8, addend=5 *)
      Riscv.Asm.custom0 ~funct7:0 ~rd:3 ~rs1:1 ~rs2:2 ~xd:true;
      Riscv.Asm.addi 4 3 0; (* copy the response *)
      Riscv.Asm.ecall;
    ]
  in
  let host = Runtime.Chipkit_host.create soc ~program in
  let halted = ref false in
  Runtime.Chipkit_host.start host ~on_halt:(fun () -> halted := true);
  Desim.Engine.run (B.Soc.engine soc);
  check_bool "program halted" true !halted;
  check_i32 "response in rd" 8l (Riscv.Cpu.reg (Runtime.Chipkit_host.cpu host) 4);
  check_int "one command issued" 1 (Runtime.Chipkit_host.commands_issued host);
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "word %d scaled" i)
      ((i * 10) + 5)
      (Int32.to_int (B.Soc.read_u32 soc (base + (4 * i))))
  done;
  check_bool "time advanced with the cpu clock" true
    (Desim.Engine.now (B.Soc.engine soc) > 0)

(* property: ALU ops agree with a simple model *)

let prop_alu =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"register ALU matches Int32 model"
       QCheck.(pair int32 int32)
       (fun (a, b) ->
         let cpu = Cpu.create ~program:[ A.add 3 1 2; A.sub 4 1 2;
                                         A.xor_ 5 1 2; A.and_ 6 1 2;
                                         A.or_ 7 1 2; A.sltu 8 1 2;
                                         A.ecall ] () in
         Cpu.set_reg cpu 1 a;
         Cpu.set_reg cpu 2 b;
         ignore (Cpu.run cpu);
         Cpu.reg cpu 3 = Int32.add a b
         && Cpu.reg cpu 4 = Int32.sub a b
         && Cpu.reg cpu 5 = Int32.logxor a b
         && Cpu.reg cpu 6 = Int32.logand a b
         && Cpu.reg cpu 7 = Int32.logor a b
         && Cpu.reg cpu 8 = (if Int32.unsigned_compare a b < 0 then 1l else 0l)))

let () =
  Alcotest.run "riscv"
    [
      ( "isa",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "x0" `Quick test_x0_is_zero;
          Alcotest.test_case "memory" `Quick test_memory_ops;
          Alcotest.test_case "loop" `Quick test_loop_sum;
          Alcotest.test_case "jal/jalr" `Quick test_jal_jalr;
          Alcotest.test_case "lui/auipc" `Quick test_lui_auipc;
          Alcotest.test_case "traps" `Quick test_illegal_and_misaligned;
        ] );
      ( "rocc",
        [
          Alcotest.test_case "immediate result" `Quick
            test_rocc_immediate_result;
          Alcotest.test_case "interlock" `Quick test_rocc_blocks_until_supplied;
        ] );
      ( "chipkit",
        [ Alcotest.test_case "cosimulation" `Quick test_chipkit_cosim ] );
      ("properties", [ prop_alu ]);
    ]
