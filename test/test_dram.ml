(* DRAM timing model: protocol-level invariants, row-hit behaviour, bus
   saturation, and turnaround penalties. *)

module E = Desim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(cfg = Dram.Config.ddr4_2400) () =
  let e = E.create () in
  (e, Dram.create e cfg)

let test_config_sanity () =
  let c = Dram.Config.ddr4_2400 in
  check_int "burst bytes (x64 BL8)" 64 (Dram.Config.burst_bytes c);
  Alcotest.(check (float 0.1))
    "peak ~19.2 GB/s" 19.2
    (Dram.Config.peak_bandwidth_gbs c);
  Alcotest.(check (float 0.5))
    "quad channel ~76.9" 76.9
    (Dram.Config.peak_bandwidth_gbs Dram.Config.ddr4_2400_quad)

let test_single_burst_latency () =
  let e, d = mk () in
  let done_at = ref 0 in
  Dram.submit d ~addr:0 ~bytes:64 ~dir:Dram.Read
    ~on_complete:(fun () -> done_at := E.now e)
    ();
  E.run e;
  (* cold access: tRCD + CL + tBURST = (17+17+4) * 833 ps *)
  let expect = (17 + 17 + 4) * 833 in
  check_int "cold read latency" expect !done_at

let test_row_hit_faster_than_miss () =
  let e, d = mk () in
  let t_hit = ref 0 and t_miss = ref 0 in
  (* revisit bank 0 in the same row: sequential bursts interleave banks,
     so the next bank-0 burst is n_banks bursts later *)
  Dram.submit d ~addr:0 ~bytes:64 ~dir:Dram.Read ~on_complete:ignore ();
  Dram.submit d ~addr:(64 * 16) ~bytes:64 ~dir:Dram.Read
    ~on_complete:(fun () -> t_hit := E.now e)
    ();
  E.run e;
  let e2, d2 = mk () in
  Dram.submit d2 ~addr:0 ~bytes:64 ~dir:Dram.Read ~on_complete:ignore ();
  (* same bank, different row: force a precharge+activate *)
  let cfg = Dram.config d2 in
  let row_stride =
    Dram.Config.burst_bytes cfg * cfg.Dram.Config.n_banks
    * (cfg.Dram.Config.row_bytes / Dram.Config.burst_bytes cfg)
    * cfg.Dram.Config.n_channels
  in
  Dram.submit d2 ~addr:row_stride ~bytes:64 ~dir:Dram.Read
    ~on_complete:(fun () -> t_miss := E.now e2)
    ();
  E.run e2;
  check_bool "hit faster than miss" true (!t_hit < !t_miss);
  check_int "one hit recorded" 1 (Dram.row_hits d);
  check_int "two misses recorded" 2 (Dram.row_misses d2)

let test_streaming_bandwidth () =
  let e, d = mk () in
  (* 1 MB sequential read *)
  Dram.submit d ~addr:0 ~bytes:(1 lsl 20) ~dir:Dram.Read
    ~on_complete:ignore ();
  E.run e;
  let bw = Dram.achieved_bandwidth_gbs d in
  check_bool "within 15% of peak" true (bw > 19.2 *. 0.85);
  check_int "read bytes accounted" (1 lsl 20) (Dram.bytes_read d)

let test_turnaround_penalty () =
  (* alternating read/write bursts must be slower than all-reads *)
  let run dirs =
    let e, d = mk () in
    List.iteri
      (fun i dir ->
        Dram.submit d ~addr:(i * 64) ~bytes:64 ~dir ~on_complete:ignore ())
      dirs;
    E.run e;
    Dram.achieved_bandwidth_gbs d
  in
  let n = 64 in
  let all_reads = run (List.init n (fun _ -> Dram.Read)) in
  let alternating =
    run (List.init n (fun i -> if i mod 2 = 0 then Dram.Read else Dram.Write))
  in
  check_bool "turnaround costs bandwidth" true (alternating < all_reads)

let test_channel_interleave () =
  (* the same stream over 4 channels must finish ~4x faster *)
  let time cfg =
    let e, d = mk ~cfg () in
    let finish = ref 0 in
    Dram.submit d ~addr:0 ~bytes:(1 lsl 19) ~dir:Dram.Write
      ~on_complete:(fun () -> finish := E.now e)
      ();
    E.run e;
    !finish
  in
  let t1 = time Dram.Config.ddr4_2400 in
  let t4 = time Dram.Config.ddr4_2400_quad in
  check_bool "4 channels ~4x faster" true
    (float_of_int t1 /. float_of_int t4 > 3.0)

let test_chunk_ordering () =
  let e, d = mk () in
  let chunks = ref [] in
  Dram.submit d ~addr:0 ~bytes:1024 ~dir:Dram.Read
    ~on_chunk:(fun ~chunk -> chunks := (chunk, E.now e) :: !chunks)
    ~on_complete:ignore ();
  E.run e;
  let chunks = List.rev !chunks in
  check_int "16 chunks for 1KB" 16 (List.length chunks);
  let indices = List.map fst chunks and times = List.map snd chunks in
  check_bool "indices in order" true
    (indices = List.init 16 (fun i -> i));
  check_bool "times nondecreasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) t -> (ok && t >= prev, t))
          (true, 0) times))

let test_bad_request_rejected () =
  let _, d = mk () in
  Alcotest.check_raises "zero bytes"
    (Invalid_argument "Dram.submit: bytes must be positive") (fun () ->
      Dram.submit d ~addr:0 ~bytes:0 ~dir:Dram.Read ~on_complete:ignore ())

(* properties *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:60 ~name arb f)

let props =
  [
    prop "per-request chunks complete in order, completion = last chunk"
      QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 100_000) (1 -- 4096)))
      (fun reqs ->
        let e, d = mk () in
        let ok = ref true in
        List.iter
          (fun (addr, bytes) ->
            let last = ref (-1) in
            let completed = ref false in
            Dram.submit d ~addr:(addr * 64) ~bytes ~dir:Dram.Read
              ~on_chunk:(fun ~chunk ->
                if chunk <> !last + 1 then ok := false;
                last := chunk;
                if !completed then ok := false)
              ~on_complete:(fun () -> completed := true)
              ();
            ignore completed)
          reqs;
        E.run e;
        !ok);
    prop "traffic accounting matches requests (rounded to bursts)"
      QCheck.(list_of_size Gen.(1 -- 15) (pair bool (1 -- 2000)))
      (fun reqs ->
        let e, d = mk () in
        let expect_r = ref 0 and expect_w = ref 0 in
        List.iteri
          (fun i (is_read, bytes) ->
            let chunks = ((bytes - 1) / 64) + 1 in
            if is_read then expect_r := !expect_r + (chunks * 64)
            else expect_w := !expect_w + (chunks * 64);
            Dram.submit d ~addr:(i * 8192) ~bytes
              ~dir:(if is_read then Dram.Read else Dram.Write)
              ~on_complete:ignore ())
          reqs;
        E.run e;
        Dram.bytes_read d = !expect_r && Dram.bytes_written d = !expect_w);
  ]

let () =
  Alcotest.run "dram"
    [
      ( "timing",
        [
          Alcotest.test_case "config" `Quick test_config_sanity;
          Alcotest.test_case "single burst" `Quick test_single_burst_latency;
          Alcotest.test_case "row hit vs miss" `Quick test_row_hit_faster_than_miss;
          Alcotest.test_case "streaming bandwidth" `Quick test_streaming_bandwidth;
          Alcotest.test_case "turnaround" `Quick test_turnaround_penalty;
          Alcotest.test_case "channel interleave" `Quick test_channel_interleave;
          Alcotest.test_case "chunk order" `Quick test_chunk_ordering;
          Alcotest.test_case "bad request" `Quick test_bad_request_rejected;
        ] );
      ("properties", props);
    ]
