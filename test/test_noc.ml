(* SLR-aware interconnect generator: structure, latency model, messaging. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let prm = Noc.Params.default ~clock_ps:4000

let eps_of_list slrs =
  List.mapi (fun i slr -> { Noc.ep_id = i; ep_slr = slr }) slrs

let test_single_endpoint () =
  let noc = Noc.build prm ~root_slr:0 ~endpoints:(eps_of_list [ 0 ]) in
  check_int "one buffer minimum" 1 (Noc.n_buffers noc);
  check_int "no crossings" 0 (Noc.n_slr_crossings noc);
  check_int "latency = 1 node" (1 * 4000) (Noc.latency_ps noc ~ep_id:0)

let test_fanout_tree_depth () =
  (* 16 endpoints at fanout 4 on one SLR: depth 2, 4+1 buffers *)
  let noc =
    Noc.build prm ~root_slr:0
      ~endpoints:(eps_of_list (List.init 16 (fun _ -> 0)))
  in
  check_int "depth 2" 2 (Noc.depth_of noc ~ep_id:0);
  check_int "5 buffers (4 leaves groups + root)" 5 (Noc.n_buffers noc);
  (* 17 endpoints needs another level *)
  let noc17 =
    Noc.build prm ~root_slr:0
      ~endpoints:(eps_of_list (List.init 17 (fun _ -> 0)))
  in
  check_int "depth 3 past fanout^2" 3 (Noc.depth_of noc17 ~ep_id:0)

let test_slr_crossing_latency () =
  let noc =
    Noc.build prm ~root_slr:0 ~endpoints:(eps_of_list [ 0; 1; 2 ])
  in
  let l0 = Noc.latency_cycles noc ~ep_id:0 in
  let l1 = Noc.latency_cycles noc ~ep_id:1 in
  let l2 = Noc.latency_cycles noc ~ep_id:2 in
  check_bool "farther SLR = more latency" true (l0 < l1 && l1 < l2);
  check_int "crossing cost" prm.Noc.Params.slr_crossing_latency_cycles (l1 - l0);
  check_int "crossings counted" 3 (Noc.n_slr_crossings noc)

let test_duplicate_endpoint_rejected () =
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Noc.build: duplicate endpoint id") (fun () ->
      ignore
        (Noc.build prm ~root_slr:0
           ~endpoints:[ { Noc.ep_id = 1; ep_slr = 0 }; { Noc.ep_id = 1; ep_slr = 1 } ]))

let test_send_timing () =
  let e = Desim.Engine.create () in
  let noc = Noc.build prm ~root_slr:0 ~endpoints:(eps_of_list [ 0; 2 ]) in
  let t_near = ref 0 and t_far = ref 0 in
  ignore (Noc.send noc e ~ep_id:0 (fun () -> t_near := Desim.Engine.now e));
  ignore (Noc.send noc e ~ep_id:1 (fun () -> t_far := Desim.Engine.now e));
  Desim.Engine.run e;
  check_int "near latency" (Noc.latency_ps noc ~ep_id:0) !t_near;
  check_int "far latency" (Noc.latency_ps noc ~ep_id:1) !t_far;
  check_int "messages counted" 2 (Noc.messages_sent noc);
  (* multi-beat payloads add a cycle per extra beat *)
  let t_payload = ref 0 in
  ignore
    (Noc.send noc e ~ep_id:0 ~payload_beats:5 (fun () ->
         t_payload := Desim.Engine.now e));
  Desim.Engine.run e;
  check_int "payload beats add cycles"
    (Noc.latency_ps noc ~ep_id:0 + (4 * 4000))
    (!t_payload - !t_far)

let test_describe () =
  let noc =
    Noc.build prm ~root_slr:1 ~endpoints:(eps_of_list [ 0; 0; 1; 2; 2; 2 ])
  in
  let d = Noc.describe noc in
  check_bool "mentions endpoints" true
    (String.length d > 0
    && String.sub d 0 8 = "tree NoC")

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:150 ~name arb f)

let props =
  [
    prop "every endpoint routes with positive bounded latency"
      QCheck.(list_of_size Gen.(1 -- 200) (int_bound 2))
      (fun slrs ->
        let noc = Noc.build prm ~root_slr:0 ~endpoints:(eps_of_list slrs) in
        List.for_all
          (fun i ->
            let l = Noc.latency_cycles noc ~ep_id:i in
            l >= 1 && l <= 64)
          (List.init (List.length slrs) (fun i -> i)));
    prop "buffers grow monotonically with endpoint count (same SLR)"
      QCheck.(1 -- 150)
      (fun n ->
        let b k =
          Noc.n_buffers
            (Noc.build prm ~root_slr:0
               ~endpoints:(eps_of_list (List.init k (fun _ -> 0))))
        in
        b n <= b (n + 4));
    prop "lower fanout never reduces depth"
      QCheck.(2 -- 100)
      (fun n ->
        let depth fanout =
          let p = { prm with Noc.Params.max_fanout = fanout } in
          let noc =
            Noc.build p ~root_slr:0
              ~endpoints:(eps_of_list (List.init n (fun _ -> 0)))
          in
          Noc.depth_of noc ~ep_id:0
        in
        depth 2 >= depth 4 && depth 4 >= depth 8);
  ]

let () =
  Alcotest.run "noc"
    [
      ( "structure",
        [
          Alcotest.test_case "single endpoint" `Quick test_single_endpoint;
          Alcotest.test_case "fanout/depth" `Quick test_fanout_tree_depth;
          Alcotest.test_case "slr crossings" `Quick test_slr_crossing_latency;
          Alcotest.test_case "duplicates rejected" `Quick
            test_duplicate_endpoint_rejected;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "send timing" `Quick test_send_timing;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ("properties", props);
    ]
