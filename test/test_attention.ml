(* The A3 case study: fixed-point pipeline numerics, stage behaviour, the
   multi-core accelerated run, and the Table III baselines. *)

module A3 = Attention.A3

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rand seed =
  let s = ref seed in
  fun () ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s

let random_head seed =
  let r = rand seed in
  let q8 () = (r () mod 33) - 16 in
  let mat () =
    Array.init A3.n_keys (fun _ -> Array.init A3.dim (fun _ -> q8 ()))
  in
  (Array.init A3.dim (fun _ -> q8 ()), mat (), mat ())

let test_quantize_roundtrip () =
  check_int "0.5 -> 8" 8 (A3.quantize 0.5);
  check_int "saturates high" 127 (A3.quantize 100.0);
  check_int "saturates low" (-128) (A3.quantize (-100.0));
  Alcotest.(check (float 1e-9)) "dequantize" 0.5 (A3.dequantize 8)

let test_exp_lut_monotone () =
  check_int "lut size" 256 (Array.length A3.exp_lut);
  check_int "exp(0) = 1.0 in Q1.15" 32768 A3.exp_lut.(0);
  let ok = ref true in
  for i = 1 to 255 do
    if A3.exp_lut.(i) > A3.exp_lut.(i - 1) then ok := false
  done;
  check_bool "monotone nonincreasing" true !ok;
  check_bool "tail near zero" true (A3.exp_lut.(255) < 4)

let test_uniform_keys_average_values () =
  (* identical keys -> uniform weights -> output = mean of values *)
  let query = Array.make A3.dim 4 in
  let keys = Array.make A3.n_keys (Array.make A3.dim 1) in
  let values =
    Array.init A3.n_keys (fun i -> Array.make A3.dim (if i mod 2 = 0 then 10 else 30))
  in
  let out = A3.attend_fixed ~query ~keys ~values in
  Array.iter (fun v -> check_bool "mean of 10 and 30" true (abs (v - 20) <= 1)) out

let test_dominant_key_selects_its_value () =
  (* one key matches the query strongly; its value dominates the output *)
  let query = Array.make A3.dim 16 in
  let keys =
    Array.init A3.n_keys (fun i ->
        if i = 77 then Array.make A3.dim 16 else Array.make A3.dim (-16))
  in
  let values =
    Array.init A3.n_keys (fun i ->
        if i = 77 then Array.make A3.dim 42 else Array.make A3.dim 0)
  in
  let out = A3.attend_fixed ~query ~keys ~values in
  Array.iter (fun v -> check_bool "selected value" true (abs (v - 42) <= 1)) out

let test_accuracy_vs_float () =
  List.iter
    (fun seed ->
      let query, keys, values = random_head seed in
      let fixed = A3.attend_fixed ~query ~keys ~values in
      let exact =
        A3.attend_float
          ~query:(Array.map A3.dequantize query)
          ~keys:(Array.map (Array.map A3.dequantize) keys)
          ~values:(Array.map (Array.map A3.dequantize) values)
      in
      let err = A3.mean_abs_error fixed exact in
      check_bool
        (Printf.sprintf "seed %d error %.4f < 1.5 quanta" seed err)
        true
        (err < 1.5 *. A3.operand_scale))
    [ 1; 2; 3; 4; 5 ]

let test_dimension_checks () =
  let query, keys, values = random_head 9 in
  Alcotest.check_raises "bad query" (Invalid_argument "A3: query dimension")
    (fun () ->
      ignore (A3.attend_fixed ~query:(Array.make 10 0) ~keys ~values));
  Alcotest.check_raises "bad rows" (Invalid_argument "A3: key/value row count")
    (fun () ->
      ignore
        (A3.attend_fixed ~query ~keys:(Array.sub keys 0 10) ~values))

let test_timing_constants () =
  (* the 1-core ASIC number of Table III follows from the issue interval *)
  check_int "issue interval" 340 A3.issue_interval_cycles;
  let asic = Attention.Baselines.asic_1core in
  check_bool "ASIC ~2.94M ops/s" true
    (Float.abs (asic.Attention.Baselines.throughput_ops -. 2.94e6) < 0.05e6)

let test_accel_small_run () =
  let r =
    Attention.Accel.run ~n_queries_per_core:24 ~n_cores:3
      ~platform:Platform.Device.aws_f1 ()
  in
  check_bool "verified bit-exact" true r.Attention.Accel.verified;
  check_int "all queries" (3 * 24) r.Attention.Accel.n_queries;
  check_bool "quantization error bounded" true
    (r.Attention.Accel.max_error < 2.0 *. A3.operand_scale)

let test_accel_throughput_scales () =
  let thr n =
    (Attention.Accel.run ~n_queries_per_core:120 ~n_cores:n
       ~platform:Platform.Device.aws_f1 ())
      .Attention.Accel.throughput_ops
  in
  let t1 = thr 1 and t4 = thr 4 in
  check_bool "4 cores >= 2.5x one core" true (t4 /. t1 > 2.5)

let test_auto_cores_is_23 () =
  check_int "the paper's 23-core design point" 23
    (Attention.Accel.auto_cores Platform.Device.aws_f1)

let test_baseline_rows () =
  let open Attention.Baselines in
  check_bool "cpu energy ~885 uJ" true
    (Float.abs (Option.get cpu.energy_per_op_uj -. 884.4) < 1.0);
  check_bool "gpu energy ~64 uJ" true
    (Float.abs (Option.get gpu.energy_per_op_uj -. 64.0) < 0.5);
  let f = fpga ~throughput_ops:16.0e6
      ~resources:(Platform.Resources.make ~lut:700_000 ~ff:340_000 ~bram:520 ~uram:580 ())
      ~freq_mhz:250.0
  in
  check_bool "fpga >> gpu energy efficiency" true
    (Option.get f.energy_per_op_uj < Option.get gpu.energy_per_op_uj /. 20.)

(* properties *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:50 ~name arb f)

let props =
  [
    prop "fixed outputs stay in int8 range" QCheck.(int_bound 10_000)
      (fun seed ->
        let query, keys, values = random_head seed in
        Array.for_all
          (fun v -> v >= -128 && v <= 127)
          (A3.attend_fixed ~query ~keys ~values));
    prop "attention output within value extremes (float)" QCheck.(int_bound 10_000)
      (fun seed ->
        let _, _, values = random_head seed in
        let query, keys, _ = random_head (seed + 1) in
        let out =
          A3.attend_float
            ~query:(Array.map A3.dequantize query)
            ~keys:(Array.map (Array.map A3.dequantize) keys)
            ~values:(Array.map (Array.map A3.dequantize) values)
        in
        let mn = ref infinity and mx = ref neg_infinity in
        Array.iter
          (Array.iter (fun v ->
               let f = A3.dequantize v in
               if f < !mn then mn := f;
               if f > !mx then mx := f))
          values;
        Array.for_all (fun v -> v >= !mn -. 1e-9 && v <= !mx +. 1e-9) out);
  ]

let test_rtl_core_in_soc () =
  let r =
    Attention.A3_rtl_core.run ~n_queries:2 ~platform:Platform.Device.aws_f1 ()
  in
  check_bool "netlist outputs bit-exact" true r.Attention.A3_rtl_core.verified;
  (* un-pipelined control: ~3 passes over 320 keys + 64 32-cycle divides *)
  check_bool "cycles/query in the expected band" true
    (r.Attention.A3_rtl_core.cycles_per_query > 3000.
    && r.Attention.A3_rtl_core.cycles_per_query < 6000.)

let () =
  Alcotest.run "attention"
    [
      ( "pipeline",
        [
          Alcotest.test_case "quantize" `Quick test_quantize_roundtrip;
          Alcotest.test_case "exp lut" `Quick test_exp_lut_monotone;
          Alcotest.test_case "uniform average" `Quick
            test_uniform_keys_average_values;
          Alcotest.test_case "dominant key" `Quick
            test_dominant_key_selects_its_value;
          Alcotest.test_case "accuracy" `Quick test_accuracy_vs_float;
          Alcotest.test_case "dimension checks" `Quick test_dimension_checks;
          Alcotest.test_case "timing constants" `Quick test_timing_constants;
        ] );
      ( "accelerator",
        [
          Alcotest.test_case "small run" `Quick test_accel_small_run;
          Alcotest.test_case "scaling" `Slow test_accel_throughput_scales;
          Alcotest.test_case "23 cores" `Quick test_auto_cores_is_23;
          Alcotest.test_case "baselines" `Quick test_baseline_rows;
          Alcotest.test_case "full RTL core in SoC" `Slow test_rtl_core_in_soc;
        ] );
      ("properties", props);
    ]
