(* The RTL developer surface: the Fig. 2 core in the DSL, driven (a) in
   isolation through Cyclesim with a hand-rolled test bench + VCD dump,
   and (b) inside the full composed SoC through the Rtl_core bridge.
   Also covers the Intercore write ports. *)

module B = Beethoven
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- the circuit in isolation ---- *)

let test_vecadd_circuit_standalone () =
  let circuit = Kernels.Vecadd_rtl.circuit () in
  let sim = Hw.Cyclesim.create circuit in
  let set = Hw.Cyclesim.set_input_int sim in
  (* idle, both request ports ready *)
  set "vec_in_req_ready" 1;
  set "vec_out_req_ready" 1;
  set "resp_ready" 1;
  set "vec_in_data_valid" 0;
  set "vec_out_data_ready" 1;
  set "req_valid" 0;
  check_int "idle: ready" 1 (Hw.Cyclesim.output_int sim "req_ready");
  check_int "idle: no resp" 0 (Hw.Cyclesim.output_int sim "resp_valid");
  (* issue a command: 4 elements, addend 7, addr 0x1000 *)
  set "req_valid" 1;
  Hw.Cyclesim.set_input sim "req_p1" (Bits.of_int ~width:64 0x1000);
  Hw.Cyclesim.set_input sim "req_p2"
    (Bits.of_int64 ~width:64 Int64.(logor 7L (shift_left 4L 32)));
  Hw.Cyclesim.settle sim;
  check_int "issues read req" 1 (Hw.Cyclesim.output_int sim "vec_in_req_valid");
  check_int "read addr" 0x1000 (Hw.Cyclesim.output_int sim "vec_in_req_addr");
  check_int "read len = 16 bytes" 16 (Hw.Cyclesim.output_int sim "vec_in_req_len");
  check_int "issues write req" 1 (Hw.Cyclesim.output_int sim "vec_out_req_valid");
  Hw.Cyclesim.step sim;
  set "req_valid" 0;
  check_int "busy: not ready" 0 (Hw.Cyclesim.output_int sim "req_ready");
  (* stream 4 elements through the datapath *)
  List.iteri
    (fun i v ->
      set "vec_in_data_valid" 1;
      set "vec_in_data" v;
      Hw.Cyclesim.settle sim;
      check_int
        (Printf.sprintf "element %d added" i)
        (v + 7)
        (Hw.Cyclesim.output_int sim "vec_out_data");
      check_int "out valid" 1 (Hw.Cyclesim.output_int sim "vec_out_data_valid");
      Hw.Cyclesim.step sim)
    [ 10; 20; 30; 40 ];
  set "vec_in_data_valid" 0;
  check_int "response raised" 1 (Hw.Cyclesim.output_int sim "resp_valid");
  check_int "count reported" 4 (Hw.Cyclesim.output_int sim "resp_data");
  Hw.Cyclesim.step sim;
  check_int "back to idle" 1 (Hw.Cyclesim.output_int sim "req_ready");
  check_int "resp cleared" 0 (Hw.Cyclesim.output_int sim "resp_valid")

let test_vecadd_circuit_backpressure () =
  (* with out_data_ready low, elements must not be consumed *)
  let circuit = Kernels.Vecadd_rtl.circuit () in
  let sim = Hw.Cyclesim.create circuit in
  let set = Hw.Cyclesim.set_input_int sim in
  set "vec_in_req_ready" 1;
  set "vec_out_req_ready" 1;
  set "resp_ready" 1;
  set "req_valid" 1;
  Hw.Cyclesim.set_input sim "req_p1" (Bits.of_int ~width:64 0);
  Hw.Cyclesim.set_input sim "req_p2"
    (Bits.of_int64 ~width:64 Int64.(shift_left 2L 32));
  Hw.Cyclesim.step sim;
  set "req_valid" 0;
  set "vec_in_data_valid" 1;
  set "vec_in_data" 5;
  set "vec_out_data_ready" 0;
  Hw.Cyclesim.settle sim;
  check_int "input stalled" 0 (Hw.Cyclesim.output_int sim "vec_in_data_ready");
  Hw.Cyclesim.step sim;
  Hw.Cyclesim.step sim;
  check_int "no response while stalled" 0
    (Hw.Cyclesim.output_int sim "resp_valid")

let test_vecadd_verilog () =
  let v = Hw.Verilog.of_circuit (Kernels.Vecadd_rtl.circuit ()) in
  let has s =
    let n = String.length s and m = String.length v in
    let rec go i = i + n <= m && (String.sub v i n = s || go (i + 1)) in
    go 0
  in
  check_bool "module" true (has "module vecadd_core");
  check_bool "ports" true (has "vec_out_data");
  check_bool "sequential logic" true (has "always @(posedge clk)")

(* ---- VCD dumping ---- *)

let test_vcd_dump () =
  let open Hw.Signal in
  let d = input "d" 4 in
  let q = reg d -- "q" in
  let circuit = Hw.Circuit.create ~name:"t" ~outputs:[ ("q", q) ] in
  let sim = Hw.Cyclesim.create circuit in
  let vcd = Hw.Vcd.create sim ~signals:[ ("d", d); ("q", q) ] () in
  List.iter
    (fun v ->
      Hw.Cyclesim.set_input_int sim "d" v;
      Hw.Cyclesim.settle sim;
      Hw.Vcd.sample vcd;
      Hw.Cyclesim.step sim)
    [ 1; 1; 1; 5; 9 ];
  let text = Hw.Vcd.contents vcd in
  let has s =
    let n = String.length s and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = s || go (i + 1)) in
    go 0
  in
  check_bool "header" true (has "$enddefinitions $end");
  check_bool "var declared" true (has "$var wire 4");
  check_bool "initial timestep" true (has "#0");
  check_bool "binary value change" true (has "b0001 ");
  (* d changes at steps 0, 3, 4; q changes at step 1; step 2 is stable *)
  check_bool "change at step 3" true (has "#3");
  check_bool "change at step 4" true (has "#4");
  check_bool "no timestep without changes" true (not (has "#2"))

(* ---- the bridge: RTL core inside the SoC ---- *)

let test_rtl_core_in_soc () =
  let ok, resps, _ =
    Kernels.Vecadd_rtl.run ~n_cores:2 ~n_eles:200 ~platform:D.aws_f1 ()
  in
  check_bool "contents correct (computed by the netlist)" true ok;
  Alcotest.(check (list int64)) "responses carry counts" [ 200L; 200L ] resps

let test_rtl_core_sequential_commands () =
  (* the same core instance must handle several commands in sequence *)
  let design =
    B.Elaborate.elaborate (Kernels.Vecadd_rtl.config ()) D.aws_f1
  in
  let soc =
    B.Soc.create design ~behaviors:(fun _ -> Kernels.Vecadd_rtl.behavior)
  in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let p = H.malloc handle 1024 in
  for i = 0 to 255 do
    Bytes.set_int32_le (H.host_bytes handle p) (i * 4) 0l
  done;
  let dma = ref false in
  H.copy_to_fpga handle p ~on_done:(fun () -> dma := true);
  Desim.Engine.run (H.engine handle);
  (* three in-place adds of 1 over the same buffer *)
  for _ = 1 to 3 do
    let h =
      H.send handle ~system:"VecAddRTL" ~core:0 ~cmd:Kernels.Vecadd_rtl.command
        ~args:
          [
            ("vec_addr", Int64.of_int p.H.rp_addr);
            ("addend", 1L);
            ("n_eles", 256L);
          ]
    in
    ignore (H.await handle h)
  done;
  Alcotest.(check int32)
    "three adds accumulated" 3l
    (B.Soc.read_u32 soc (p.H.rp_addr + 400))

let test_rtl_missing_port_rejected () =
  let bad () =
    let open Hw.Signal in
    Hw.Circuit.create ~name:"bad" ~outputs:[ ("req_ready", input "x" 1) ]
  in
  let cfg = Kernels.Vecadd_rtl.config () in
  let design = B.Elaborate.elaborate cfg D.aws_f1 in
  let soc =
    B.Soc.create design ~behaviors:(fun _ -> B.Rtl_core.behavior ~build:bad ())
  in
  let handle = Runtime.Handle.create soc in
  let raised = ref false in
  (try
     let h =
       Runtime.Handle.send handle ~system:"VecAddRTL" ~core:0
         ~cmd:Kernels.Vecadd_rtl.command
         ~args:[ ("vec_addr", 0L); ("addend", 0L); ("n_eles", 1L) ]
     in
     ignore (Runtime.Handle.await handle h)
   with Failure msg ->
     raised := String.length msg > 0);
  check_bool "missing ports rejected with a diagnostic" true !raised

(* ---- intercore ports ---- *)

let intercore_config () =
  let producer_cmd =
    B.Cmd_spec.make ~name:"produce" ~funct:0 ~response_bits:32
      [ ("base", B.Cmd_spec.Uint 32); ("count", B.Cmd_spec.Uint 16) ]
  in
  let consumer_cmd =
    B.Cmd_spec.make ~name:"reduce" ~funct:0 ~response_bits:64
      [ ("count", B.Cmd_spec.Uint 16) ]
  in
  ( producer_cmd,
    consumer_cmd,
    B.Config.make ~name:"pipeline"
      [
        B.Config.system ~name:"Producer" ~n_cores:1
          ~intra_core_ports:
            [
              {
                B.Config.ic_name = "to_consumer";
                ic_to_system = "Consumer";
                ic_to_scratchpad = "inbox";
                ic_n_channels = 1;
              };
            ]
          ~commands:[ producer_cmd ] ();
        B.Config.system ~name:"Consumer" ~n_cores:2
          ~scratchpads:
            [ B.Config.scratchpad ~name:"inbox" ~data_bits:64 ~n_datas:64 () ]
          ~commands:[ consumer_cmd ] ();
      ] )

let test_intercore_pipeline () =
  let producer_cmd, consumer_cmd, cfg = intercore_config () in
  let design = B.Elaborate.elaborate cfg D.aws_f1 in
  let producer : B.Soc.behavior =
   fun ctx beats ~respond ->
    let args =
      B.Cmd_spec.unpack producer_cmd
        (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
    in
    let base = Int64.to_int (List.assoc "base" args) in
    let count = Int64.to_int (List.assoc "count" args) in
    let port = B.Soc.intercore_out ctx "to_consumer" in
    let pending = ref (2 * count) in
    let finish () =
      decr pending;
      if !pending = 0 then respond (Int64.of_int count)
    in
    for row = 0 to count - 1 do
      (* fan the values out to both consumer cores *)
      List.iter
        (fun target_core ->
          let data = Bytes.create 8 in
          Bytes.set_int64_le data 0 (Int64.of_int (base + row));
          B.Soc.Intercore.write port ~target_core ~row ~data ~on_done:finish)
        [ 0; 1 ]
    done
  in
  let consumer : B.Soc.behavior =
   fun ctx beats ~respond ->
    let args =
      B.Cmd_spec.unpack consumer_cmd
        (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
    in
    let count = Int64.to_int (List.assoc "count" args) in
    let sp = B.Soc.scratchpad ctx "inbox" in
    let sum = ref 0L in
    for row = 0 to count - 1 do
      sum := Int64.add !sum (B.Soc.Scratchpad.get_u64 sp row)
    done;
    respond !sum
  in
  let soc =
    B.Soc.create design ~behaviors:(function
      | "Producer" -> producer
      | "Consumer" -> consumer
      | s -> failwith s)
  in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let p =
    H.send handle ~system:"Producer" ~core:0 ~cmd:producer_cmd
      ~args:[ ("base", 100L); ("count", 10L) ]
  in
  Alcotest.(check int64) "producer wrote all rows" 10L (H.await handle p);
  (* both consumers see the same data: sum 100..109 = 1045 *)
  List.iter
    (fun core ->
      let c =
        H.send handle ~system:"Consumer" ~core ~cmd:consumer_cmd
          ~args:[ ("count", 10L) ]
      in
      Alcotest.(check int64)
        (Printf.sprintf "consumer %d sum" core)
        1045L (H.await handle c))
    [ 0; 1 ]

let test_intercore_validation () =
  let _, _, cfg = intercore_config () in
  let design = B.Elaborate.elaborate cfg D.aws_f1 in
  let seen = ref [] in
  let probe : B.Soc.behavior =
   fun ctx _ ~respond ->
    let port = B.Soc.intercore_out ctx "to_consumer" in
    (try
       B.Soc.Intercore.write port ~target_core:5 ~row:0
         ~data:(Bytes.create 8) ~on_done:ignore
     with Invalid_argument m -> seen := m :: !seen);
    (try
       B.Soc.Intercore.write port ~target_core:0 ~row:999
         ~data:(Bytes.create 8) ~on_done:ignore
     with Invalid_argument m -> seen := m :: !seen);
    (try
       B.Soc.Intercore.write port ~target_core:0 ~row:0
         ~data:(Bytes.create 3) ~on_done:ignore
     with Invalid_argument m -> seen := m :: !seen);
    respond 0L
  in
  let soc =
    B.Soc.create design ~behaviors:(function
      | "Producer" -> probe
      | _ -> fun _ _ ~respond -> respond 0L)
  in
  let handle = Runtime.Handle.create soc in
  let producer_cmd, _, _ = intercore_config () in
  let h =
    Runtime.Handle.send handle ~system:"Producer" ~core:0 ~cmd:producer_cmd
      ~args:[ ("base", 0L); ("count", 0L) ]
  in
  ignore (Runtime.Handle.await handle h);
  check_int "three rejections" 3 (List.length !seen)

let () =
  Alcotest.run "rtl"
    [
      ( "circuit",
        [
          Alcotest.test_case "standalone" `Quick test_vecadd_circuit_standalone;
          Alcotest.test_case "backpressure" `Quick
            test_vecadd_circuit_backpressure;
          Alcotest.test_case "verilog" `Quick test_vecadd_verilog;
        ] );
      ("vcd", [ Alcotest.test_case "dump" `Quick test_vcd_dump ]);
      ( "bridge",
        [
          Alcotest.test_case "in soc" `Quick test_rtl_core_in_soc;
          Alcotest.test_case "sequential commands" `Quick
            test_rtl_core_sequential_commands;
          Alcotest.test_case "missing ports" `Quick
            test_rtl_missing_port_rejected;
        ] );
      ( "intercore",
        [
          Alcotest.test_case "pipeline" `Quick test_intercore_pipeline;
          Alcotest.test_case "validation" `Quick test_intercore_validation;
        ] );
    ]
