(* Resource vectors, FPGA memory mapping (incl. the 80% spill rule), the
   ASIC SRAM compiler, device descriptions, and the power model. *)

module R = Platform.Resources
module FM = Platform.Fpga_mem
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Resources ---- *)

let test_resources_algebra () =
  let a = R.make ~clb:10 ~lut:100 ~bram:2 () in
  let b = R.make ~clb:5 ~ff:50 ~uram:1 () in
  let s = R.add a b in
  check_int "clb adds" 15 s.R.clb;
  check_int "lut adds" 100 s.R.lut;
  check_int "ff adds" 50 s.R.ff;
  let sc = R.scale a 3 in
  check_int "scale" 30 sc.R.clb;
  check_bool "sum = repeated add" true (R.sum [ a; a; a ] = sc);
  let d = R.sub s b in
  check_bool "sub inverts add" true (d = a)

let test_resources_fits () =
  let cap = R.make ~clb:100 ~lut:100 ~ff:100 ~bram:10 ~uram:10 ~dsp:10 () in
  check_bool "fits" true (R.fits (R.make ~clb:100 ~bram:10 ()) ~cap);
  check_bool "exceeds one axis" false (R.fits (R.make ~clb:101 ()) ~cap);
  Alcotest.(check (float 1e-9))
    "max utilization" 0.9
    (R.max_utilization (R.make ~clb:90 ~lut:20 ()) ~cap)

(* ---- FPGA memory mapping ---- *)

let test_bram_aspect_ratios () =
  (* 72x512 fits exactly one BRAM36 *)
  check_int "72x512 -> 1" 1 (FM.brams_for ~width_bits:72 ~depth:512);
  (* narrow-deep uses the deep aspect, not ceil(1/72)*ceil(32768/512) *)
  check_int "1x32768 -> 1" 1 (FM.brams_for ~width_bits:1 ~depth:32768);
  check_int "9x4096 -> 1" 1 (FM.brams_for ~width_bits:9 ~depth:4096);
  check_int "512x320 -> 8" 8 (FM.brams_for ~width_bits:512 ~depth:320);
  check_int "uram 72x4096 -> 1" 1 (FM.urams_for ~width_bits:72 ~depth:4096);
  check_int "uram 512x1280 -> 8" 8 (FM.urams_for ~width_bits:512 ~depth:1280)

let test_preferred_mapping () =
  (* tiny memories map to LUTRAM *)
  check_bool "tiny -> lutram" true
    ((FM.preferred ~width_bits:8 ~depth:64).FM.cell = FM.Lutram);
  (* a 36Kb-ish request prefers BRAM *)
  check_bool "36Kb -> bram" true
    ((FM.preferred ~width_bits:72 ~depth:512).FM.cell = FM.Bram);
  (* a URAM-shaped request prefers URAM (1 URAM beats 8 BRAMs in bits) *)
  check_bool "72x4096 -> uram" true
    ((FM.preferred ~width_bits:72 ~depth:4096).FM.cell = FM.Uram)

let test_spill_rule () =
  (* BRAM-preferred request; SLR nearly full of BRAM -> spills to URAM *)
  let choice =
    FM.choose ~width_bits:512 ~depth:320 ~bram_used:600 ~bram_avail:720
      ~uram_used:0 ~uram_avail:320 ()
  in
  check_bool "spills to uram past 80%" true (choice.FM.cell = FM.Uram);
  (* below the threshold it stays on BRAM *)
  let choice =
    FM.choose ~width_bits:512 ~depth:320 ~bram_used:100 ~bram_avail:720
      ~uram_used:0 ~uram_avail:320 ()
  in
  check_bool "stays on bram below threshold" true (choice.FM.cell = FM.Bram);
  (* both past threshold: pick the less-utilized *)
  let choice =
    FM.choose ~width_bits:512 ~depth:320 ~bram_used:700 ~bram_avail:720
      ~uram_used:319 ~uram_avail:320 ()
  in
  check_bool "both full: least bad" true (choice.FM.cell = FM.Bram)

(* ---- SRAM compiler ---- *)

let test_sram_exact_fit () =
  let plan =
    Platform.Sram.compile ~library:Platform.Sram.asap7_library ~width_bits:64
      ~depth:1024
  in
  check_int "single macro" 1 (plan.Platform.Sram.banks * plan.Platform.Sram.cascade);
  check_int "no overhead" 0 plan.Platform.Sram.overhead_bits

let test_sram_banking_and_cascading () =
  let plan =
    Platform.Sram.compile ~library:Platform.Sram.asap7_library
      ~width_bits:512 ~depth:640
  in
  (* capacity must cover the request *)
  let words = plan.Platform.Sram.banks * plan.Platform.Sram.macro.Platform.Sram.words in
  let bits = plan.Platform.Sram.cascade * plan.Platform.Sram.macro.Platform.Sram.bits in
  check_bool "covers depth" true (words >= 640);
  check_bool "covers width" true (bits >= 512);
  (* area should beat the naive smallest-macro tiling *)
  let naive =
    let m = List.hd Platform.Sram.asap7_library in
    float_of_int
      (((511 / m.Platform.Sram.bits) + 1) * ((639 / m.Platform.Sram.words) + 1))
    *. m.Platform.Sram.area_um2
  in
  check_bool "better than naive" true (plan.Platform.Sram.total_area_um2 <= naive)

let test_sram_library_differences () =
  let a7 =
    Platform.Sram.compile ~library:Platform.Sram.asap7_library ~width_bits:64
      ~depth:2048
  in
  let s32 =
    Platform.Sram.compile ~library:Platform.Sram.saed32_library ~width_bits:64
      ~depth:2048
  in
  check_bool "7nm smaller than 32nm" true
    (a7.Platform.Sram.total_area_um2 < s32.Platform.Sram.total_area_um2)

(* ---- Devices ---- *)

let test_u200_description () =
  let p = D.aws_f1 in
  check_int "3 SLRs" 3 (D.n_slrs p);
  let cap = D.total_capacity p in
  (* VU9P totals *)
  check_int "CLBs" (3 * 49260) cap.R.clb;
  check_int "BRAMs" 2160 cap.R.bram;
  check_int "URAMs" 960 cap.R.uram;
  Alcotest.(check (float 0.1)) "250 MHz" 250.0 (D.fabric_freq_mhz p);
  check_bool "discrete" true (p.D.kind = D.Fpga_discrete);
  check_bool "shell on SLR0" true
    ((D.slr_exn p 0).D.shell.R.lut > (D.slr_exn p 2).D.shell.R.lut)

let test_kria_description () =
  let p = D.kria in
  check_bool "embedded shares address space" true
    p.D.host.D.shared_address_space;
  check_int "single SLR" 1 (D.n_slrs p)

let test_power_model () =
  (* the paper's Table II resources at 250 MHz should land near the
     24-30 W envelope the paper reports *)
  let a3 = R.make ~lut:737000 ~ff:335000 ~bram:518 ~uram:576 () in
  let w = D.Power.fpga_watts a3 ~freq_mhz:250.0 in
  check_bool "A3 power in 20..35 W" true (w > 20.0 && w < 35.0);
  let half = D.Power.fpga_watts a3 ~freq_mhz:125.0 in
  check_bool "scales with frequency" true (half < w);
  check_bool "static floor" true (D.Power.fpga_watts R.zero ~freq_mhz:250.0 > 0.)

(* ---- properties ---- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let arb_mem_req =
  QCheck.(pair (1 -- 1024) (1 -- 100_000))
  |> QCheck.map (fun (w, d) -> (w, d))

let props =
  [
    prop "bram mapping always covers the request" arb_mem_req (fun (w, d) ->
        let n = FM.brams_for ~width_bits:w ~depth:d in
        (* against the best single aspect, capacity must cover w*d bits *)
        n * FM.bram_bits * 8 >= w * d || n * FM.bram_bits >= 0
        (* the real invariant: some aspect (wi, di) has ceil(w/wi)*ceil(d/di)=n
           and therefore covers; check coverage directly: *)
        &&
        List.exists
          (fun (wi, di) ->
            let nw = ((w - 1) / wi) + 1 and nd = ((d - 1) / di) + 1 in
            nw * nd = n && nw * wi >= w && nd * di >= d)
          [ (72, 512); (36, 1024); (18, 2048); (9, 4096); (4, 8192);
            (2, 16384); (1, 32768) ]);
    prop "sram plan covers request and wastes < 4x" arb_mem_req
      (fun (w, d) ->
        let plan =
          Platform.Sram.compile ~library:Platform.Sram.asap7_library
            ~width_bits:w ~depth:d
        in
        let open Platform.Sram in
        plan.cascade * plan.macro.bits >= w
        && plan.banks * plan.macro.words >= d
        && plan.overhead_bits >= 0);
    prop "spill choice never picks an unavailable cell"
      QCheck.(quad (1 -- 600) (1 -- 720) (0 -- 320) (1 -- 5000))
      (fun (bram_used, bram_avail, uram_used, depth) ->
        let c =
          FM.choose ~width_bits:64 ~depth ~bram_used ~bram_avail ~uram_used
            ~uram_avail:320 ()
        in
        c.FM.count >= 0);
  ]

let () =
  Alcotest.run "platform"
    [
      ( "resources",
        [
          Alcotest.test_case "algebra" `Quick test_resources_algebra;
          Alcotest.test_case "fits" `Quick test_resources_fits;
        ] );
      ( "fpga_mem",
        [
          Alcotest.test_case "aspect ratios" `Quick test_bram_aspect_ratios;
          Alcotest.test_case "preferred" `Quick test_preferred_mapping;
          Alcotest.test_case "spill rule" `Quick test_spill_rule;
        ] );
      ( "sram",
        [
          Alcotest.test_case "exact fit" `Quick test_sram_exact_fit;
          Alcotest.test_case "bank+cascade" `Quick test_sram_banking_and_cascading;
          Alcotest.test_case "libraries" `Quick test_sram_library_differences;
        ] );
      ( "devices",
        [
          Alcotest.test_case "u200" `Quick test_u200_description;
          Alcotest.test_case "kria" `Quick test_kria_description;
          Alcotest.test_case "power" `Quick test_power_model;
        ] );
      ("properties", props);
    ]
