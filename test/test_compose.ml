(* Configuration validation, floorplanning, and whole-design elaboration. *)

module B = Beethoven
module C = B.Config
module R = Platform.Resources
module D = Platform.Device

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sys ?(n_cores = 1) ?(bram_heavy = false) name =
  C.system ~name ~n_cores
    ~read_channels:[ C.read_channel ~name:"in" ~data_bytes:4 () ]
    ~write_channels:[ C.write_channel ~name:"out" ~data_bytes:4 () ]
    ~scratchpads:
      (if bram_heavy then
         [ C.scratchpad ~name:"big" ~data_bits:512 ~n_datas:4096 () ]
       else [])
    ~kernel_resources:(R.make ~clb:1000 ~lut:5000 ~ff:4000 ())
    ()

(* ---- Config ---- *)

let test_config_validation () =
  Alcotest.check_raises "duplicate systems"
    (Invalid_argument "Config: duplicate system \"X\"") (fun () ->
      ignore (C.make ~name:"bad" [ sys "X"; sys "X" ]));
  Alcotest.check_raises "no systems"
    (Invalid_argument "Config.make: no systems") (fun () ->
      ignore (C.make ~name:"bad" []));
  Alcotest.check_raises "zero cores"
    (Invalid_argument "Config: n_cores must be positive") (fun () ->
      ignore (sys ~n_cores:0 "X"));
  Alcotest.check_raises "reader buffer too small"
    (Invalid_argument "Config: reader buffer smaller than one burst")
    (fun () ->
      ignore
        (C.read_channel ~name:"r" ~data_bytes:4 ~burst_beats:64
           ~buffer_beats:32 ()))

let test_config_accessors () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:3 "A"; sys ~n_cores:2 "B" ] in
  check_int "total cores" 5 (C.total_cores cfg);
  check_int "find_system" 2 (C.find_system cfg "B").C.n_cores

(* ---- Floorplan ---- *)

let test_floorplan_balances () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:9 "A" ] in
  let fp = B.Floorplan.place cfg D.aws_f1 in
  let n slr = List.length (B.Floorplan.cores_on_slr fp slr) in
  check_int "all cores placed" 9 (n 0 + n 1 + n 2);
  check_bool "spreads over several SLRs" true
    (List.length (List.filter (fun s -> n s > 0) [ 0; 1; 2 ]) >= 2);
  check_bool "placement follows free capacity" true (n 2 >= n 1 && n 1 >= n 0)

let test_floorplan_shell_affinity () =
  (* the first core must land on the SLR with the least shell usage *)
  let cfg = C.make ~name:"acc" [ sys "A" ] in
  let fp = B.Floorplan.place cfg D.aws_f1 in
  check_int "first core avoids the shell" 2
    (B.Floorplan.slr_of fp ~system:"A" ~core:0)

let test_floorplan_rejects_oversize () =
  let huge =
    C.system ~name:"H" ~n_cores:1
      ~kernel_resources:(R.make ~clb:1_000_000 ())
      ()
  in
  let raised =
    try
      ignore (B.Floorplan.place (C.make ~name:"acc" [ huge ]) D.aws_f1);
      false
    with Failure _ -> true
  in
  check_bool "oversize rejected with Failure" true raised

let test_floorplan_spill_produces_mixed_cells () =
  (* enough BRAM-hungry cores to cross the 80% per-SLR threshold *)
  let cfg = C.make ~name:"acc" [ sys ~n_cores:24 ~bram_heavy:true "A" ] in
  let fp = B.Floorplan.place cfg D.aws_f1 in
  let cells =
    List.concat_map
      (fun cp ->
        List.filter_map
          (fun m ->
            if m.B.Floorplan.mm_name = "big" then
              Some m.B.Floorplan.mm_choice.Platform.Fpga_mem.cell
            else None)
          cp.B.Floorplan.cp_memories)
      fp.B.Floorplan.places
  in
  let brams = List.length (List.filter (( = ) Platform.Fpga_mem.Bram) cells) in
  let urams = List.length (List.filter (( = ) Platform.Fpga_mem.Uram) cells) in
  check_int "every core mapped" 24 (List.length cells);
  check_bool "mixed BRAM/URAM mapping" true (brams > 0 && urams > 0)

let test_constraints_text () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:2 "A" ] in
  let fp = B.Floorplan.place cfg D.aws_f1 in
  let xdc = B.Floorplan.constraints fp in
  let has s =
    let n = String.length s and m = String.length xdc in
    let rec go i = i + n <= m && (String.sub xdc i n = s || go (i + 1)) in
    go 0
  in
  check_bool "pblock per SLR" true (has "create_pblock pblock_slr2");
  check_bool "core assigned" true (has "A_0");
  check_bool "resize to SLR" true (has "resize_pblock pblock_slr0 -add {SLR0}")

(* ---- Elaborate ---- *)

let test_elaborate_endpoints () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:2 "A"; sys ~n_cores:1 "B" ] in
  let d = B.Elaborate.elaborate cfg D.aws_f1 in
  check_int "cmd endpoints are dense" 0 (B.Elaborate.cmd_endpoint d ~system:"A" ~core:0);
  check_int "second system offset" 2 (B.Elaborate.cmd_endpoint d ~system:"B" ~core:0);
  (* each core has in + out channels on the memory NoC *)
  check_int "mem noc endpoints" 6 (Noc.n_endpoints d.B.Elaborate.mem_noc);
  let ep0 = B.Elaborate.mem_endpoint d ~system:"A" ~core:0 ~channel:"in[0]" in
  let ep1 = B.Elaborate.mem_endpoint d ~system:"A" ~core:1 ~channel:"in[0]" in
  check_bool "distinct endpoints" true (ep0 <> ep1);
  Alcotest.check_raises "unknown channel"
    (Invalid_argument "Elaborate.mem_endpoint: no channel zzz on A[0]")
    (fun () -> ignore (B.Elaborate.mem_endpoint d ~system:"A" ~core:0 ~channel:"zzz"))

let test_elaborate_resource_accounting () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:4 "A" ] in
  let d = B.Elaborate.elaborate cfg D.aws_f1 in
  let cores =
    R.sum (List.map (fun cp -> cp.B.Floorplan.cp_total) d.B.Elaborate.floorplan.B.Floorplan.places)
  in
  check_bool "beethoven = cores + interconnect + frontend" true
    (d.B.Elaborate.beethoven_total
    = R.sum [ cores; d.B.Elaborate.interconnect; d.B.Elaborate.frontend ]);
  check_bool "grand total adds the shell" true
    (d.B.Elaborate.grand_total
    = R.add d.B.Elaborate.beethoven_total (D.total_shell D.aws_f1));
  check_bool "interconnect nonzero" true (d.B.Elaborate.interconnect.R.lut > 0)

let test_elaborate_asic_sram_plans () =
  let cfg =
    C.make ~name:"acc"
      [
        C.system ~name:"A" ~n_cores:1
          ~scratchpads:[ C.scratchpad ~name:"sp" ~data_bits:512 ~n_datas:640 () ]
          ();
      ]
  in
  let d = B.Elaborate.elaborate cfg D.asap7 in
  check_int "one plan per scratchpad" 1 (List.length d.B.Elaborate.sram_plans);
  let _, plan = List.hd d.B.Elaborate.sram_plans in
  check_bool "plan covers the request" true
    (plan.Platform.Sram.cascade * plan.Platform.Sram.macro.Platform.Sram.bits
     >= 512)

let test_elaborate_verilog_passthrough () =
  let open Hw.Signal in
  let a = input "a" 8 in
  let circuit = Hw.Circuit.create ~name:"double" ~outputs:[ ("o", a +: a) ] in
  let cfg =
    C.make ~name:"acc"
      [ C.system ~name:"A" ~n_cores:1 ~kernel_circuit:circuit () ]
  in
  let d = B.Elaborate.elaborate cfg D.aws_f1 in
  match B.Elaborate.verilog d with
  | [ (name, v) ] ->
      check_bool "system name" true (name = "A");
      check_bool "verilog emitted" true (String.length v > 50)
  | _ -> Alcotest.fail "expected one verilog module"

let test_kria_platform_elaborates () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:2 "A" ] in
  let d = B.Elaborate.elaborate cfg D.kria in
  check_int "single-SLR floorplan" 0
    (B.Floorplan.slr_of d.B.Elaborate.floorplan ~system:"A" ~core:1);
  check_int "no SLR crossings" 0 (Noc.n_slr_crossings d.B.Elaborate.cmd_noc)

let test_top_verilog () =
  let cfg = C.make ~name:"acc" [ sys ~n_cores:3 "A" ] in
  let d = B.Elaborate.elaborate cfg D.aws_f1 in
  let v = B.Top_verilog.generate d in
  let count needle =
    let n = String.length needle and m = String.length v in
    let rec go i acc =
      if i + n > m then acc
      else go (i + 1) (if String.sub v i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "one top module" 1 (count "module beethoven_top");
  check_int "one core instance per core" 3 (count "A_core u_A_");
  check_int "reader+writer adapters per core" 3 (count "u_A_0_in_0" + count "u_A_1_in_0" + count "u_A_2_in_0");
  check_int "cmd noc instances" (Noc.n_buffers d.B.Elaborate.cmd_noc)
    (count "u_cmd_noc_");
  check_int "mem noc instances" (Noc.n_buffers d.B.Elaborate.mem_noc)
    (count "u_mem_noc_");
  check_bool "support modules present" true
    (count "module beethoven_reader" = 1
    && count "module beethoven_writer" = 1
    && count "module beethoven_mmio_frontend" = 1);
  check_bool "pblock annotations" true (count "// pblock_slr" >= 3)

let test_dse_sweep () =
  let points =
    B.Dse.sweep_cores
      ~config_of:(fun ~n_cores -> Attention.Accel.config ~n_cores ())
      ~max_cores:30
      ~metric:(fun ~n_cores -> float_of_int n_cores)
      D.aws_f1
  in
  check_int "30 points" 30 (List.length points);
  (* feasibility is monotone: once it stops fitting it never fits again *)
  let rec monotone seen_fail = function
    | [] -> true
    | p :: rest ->
        if p.B.Dse.pt_fits && seen_fail then false
        else monotone (seen_fail || not p.B.Dse.pt_fits) rest
  in
  check_bool "fit is monotone in core count" true (monotone false points);
  match B.Dse.best points with
  | Some best ->
      check_int "best = the paper's 23-core point" 23 best.B.Dse.pt_cores;
      check_bool "utilization < 100%" true (best.B.Dse.pt_peak_utilization < 1.0)
  | None -> Alcotest.fail "no feasible point"

let test_send_command_validation () =
  let cfg = C.make ~name:"acc" [ sys "A" ] in
  let d = B.Elaborate.elaborate cfg D.aws_f1 in
  let soc = B.Soc.create d ~behaviors:(fun _ -> fun _ _ ~respond -> respond 0L) in
  let cmd sys core =
    { B.Rocc.system_id = sys; core_id = core; funct = 0;
      expects_response = true; payload1 = 0L; payload2 = 0L }
  in
  Alcotest.check_raises "bad system"
    (Invalid_argument "Soc.send_command: no system 7") (fun () ->
      B.Soc.send_command soc (cmd 7 0) ~on_response:ignore);
  Alcotest.check_raises "bad core"
    (Invalid_argument "Soc.send_command: A has no core 3") (fun () ->
      B.Soc.send_command soc (cmd 0 3) ~on_response:ignore)

let test_stats_report () =
  let expected, actual, _ =
    Kernels.Vecadd.run ~n_cores:1 ~n_eles:1024 ~platform:D.aws_f1 ()
  in
  check_bool "run ok" true (expected = actual);
  (* a fresh soc for the report (run doesn't return its soc); drive one *)
  let d = B.Elaborate.elaborate (Kernels.Vecadd.config ()) D.aws_f1 in
  let soc = B.Soc.create d ~behaviors:(fun _ -> Kernels.Vecadd.behavior) in
  let h = Runtime.Handle.create soc in
  let p = Runtime.Handle.malloc h 4096 in
  ignore
    (Runtime.Handle.await h
       (Runtime.Handle.send h ~system:"VecAdd" ~core:0
          ~cmd:Kernels.Vecadd.command
          ~args:
            [
              ("addend", 1L);
              ("vec_addr", Int64.of_int p.Runtime.Handle.rp_addr);
              ("out_addr", Int64.of_int p.Runtime.Handle.rp_addr);
              ("n_eles", 64L);
            ]));
  let report = B.Soc.stats_report soc in
  let has needle =
    let n = String.length needle and m = String.length report in
    let rec go i = i + n <= m && (String.sub report i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions DRAM" true (has "DRAM:");
  check_bool "mentions AXI" true (has "AXI:");
  check_bool "mentions NoC" true (has "NoC:")

let () =
  Alcotest.run "compose"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "accessors" `Quick test_config_accessors;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "balances" `Quick test_floorplan_balances;
          Alcotest.test_case "shell affinity" `Quick test_floorplan_shell_affinity;
          Alcotest.test_case "oversize rejected" `Quick
            test_floorplan_rejects_oversize;
          Alcotest.test_case "spill mixes cells" `Quick
            test_floorplan_spill_produces_mixed_cells;
          Alcotest.test_case "constraints" `Quick test_constraints_text;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "endpoints" `Quick test_elaborate_endpoints;
          Alcotest.test_case "resources" `Quick test_elaborate_resource_accounting;
          Alcotest.test_case "asic sram" `Quick test_elaborate_asic_sram_plans;
          Alcotest.test_case "verilog" `Quick test_elaborate_verilog_passthrough;
          Alcotest.test_case "kria" `Quick test_kria_platform_elaborates;
          Alcotest.test_case "top verilog" `Quick test_top_verilog;
          Alcotest.test_case "dse sweep" `Quick test_dse_sweep;
          Alcotest.test_case "command validation" `Quick
            test_send_command_validation;
          Alcotest.test_case "stats report" `Quick test_stats_report;
        ] );
    ]
