(* Tests for the RTL DSL: signal construction, circuit checking, the cycle
   simulator, and Verilog emission. Includes a small state-machine design
   (an accumulating vector-add datapath) exercised end to end. *)

open Hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sim_of outputs = Cyclesim.create (Circuit.create ~name:"t" ~outputs)

let test_comb_ops () =
  let a = Signal.input "a" 8 and b = Signal.input "b" 8 in
  let open Signal in
  let sim =
    sim_of
      [
        ("sum", a +: b);
        ("diff", a -: b);
        ("prod", a *: b);
        ("and_", a &: b);
        ("or_", a |: b);
        ("xor_", a ^: b);
        ("eq", a ==: b);
        ("lt", a <: b);
        ("not_a", lnot a);
      ]
  in
  Cyclesim.set_input_int sim "a" 200;
  Cyclesim.set_input_int sim "b" 100;
  check_int "sum wraps" ((200 + 100) land 255) (Cyclesim.output_int sim "sum");
  check_int "diff" 100 (Cyclesim.output_int sim "diff");
  check_int "prod" (200 * 100 land 255) (Cyclesim.output_int sim "prod");
  check_int "and" (200 land 100) (Cyclesim.output_int sim "and_");
  check_int "or" (200 lor 100) (Cyclesim.output_int sim "or_");
  check_int "xor" (200 lxor 100) (Cyclesim.output_int sim "xor_");
  check_int "eq" 0 (Cyclesim.output_int sim "eq");
  check_int "lt" 0 (Cyclesim.output_int sim "lt");
  check_int "not" (Stdlib.lnot 200 land 255) (Cyclesim.output_int sim "not_a")

let test_mux_select_concat () =
  let open Signal in
  let sel = input "sel" 2 in
  let cases = List.map (of_int ~width:8) [ 10; 20; 30 ] in
  let sim =
    sim_of
      [
        ("m", mux sel cases);
        ("hi", select (of_int ~width:8 0xab) ~hi:7 ~lo:4);
        ("cat", concat [ of_int ~width:4 0xa; of_int ~width:4 0xb ]);
        ("rz", uresize (of_int ~width:4 0xf) 8);
      ]
  in
  Cyclesim.set_input_int sim "sel" 0;
  check_int "mux 0" 10 (Cyclesim.output_int sim "m");
  Cyclesim.set_input_int sim "sel" 2;
  check_int "mux 2" 30 (Cyclesim.output_int sim "m");
  Cyclesim.set_input_int sim "sel" 3;
  check_int "mux clamps" 30 (Cyclesim.output_int sim "m");
  check_int "select" 0xa (Cyclesim.output_int sim "hi");
  check_int "concat" 0xab (Cyclesim.output_int sim "cat");
  check_int "uresize" 0xf (Cyclesim.output_int sim "rz")

let test_register () =
  let open Signal in
  let d = input "d" 8 and en = input "en" 1 in
  let q = reg ~enable:en d in
  let sim = sim_of [ ("q", q) ] in
  Cyclesim.set_input_int sim "d" 42;
  Cyclesim.set_input_int sim "en" 1;
  check_int "before edge" 0 (Cyclesim.output_int sim "q");
  Cyclesim.step sim;
  check_int "after edge" 42 (Cyclesim.output_int sim "q");
  Cyclesim.set_input_int sim "d" 7;
  Cyclesim.set_input_int sim "en" 0;
  Cyclesim.step sim;
  check_int "enable low holds" 42 (Cyclesim.output_int sim "q")

let test_counter_feedback () =
  let open Signal in
  let count = reg_fb ~width:8 (fun q -> q +: of_int ~width:8 1) in
  let sim = sim_of [ ("c", count) ] in
  for _ = 1 to 300 do
    Cyclesim.step sim
  done;
  check_int "wraps mod 256" (300 mod 256) (Cyclesim.output_int sim "c");
  check_int "cycle count" 300 (Cyclesim.cycle sim)

let test_clear_priority () =
  let open Signal in
  let clr = input "clr" 1 in
  let q =
    reg_fb ~width:4 (fun q -> q +: of_int ~width:4 1) |> fun _ ->
    (* separate register with clear *)
    let w = wire 4 in
    let q = reg ~clear:clr ~init:(Bits.of_int ~width:4 9) w in
    assign w (q +: of_int ~width:4 1);
    q
  in
  let sim = sim_of [ ("q", q) ] in
  Cyclesim.set_input_int sim "clr" 0;
  check_int "init value" 9 (Cyclesim.output_int sim "q");
  Cyclesim.step sim;
  check_int "counts" 10 (Cyclesim.output_int sim "q");
  Cyclesim.set_input_int sim "clr" 1;
  Cyclesim.step sim;
  check_int "clear wins" 9 (Cyclesim.output_int sim "q")

let test_memory_read_first () =
  let open Signal in
  let mem = Mem.create ~size:16 ~width:8 () in
  let we = input "we" 1 and addr = input "addr" 4 and data = input "data" 8 in
  Mem.write mem ~enable:we ~addr ~data;
  let async = Mem.read_async mem ~addr in
  let sync = Mem.read_sync mem ~addr () in
  let sim = sim_of [ ("async", async); ("sync", sync) ] in
  Cyclesim.set_input_int sim "we" 1;
  Cyclesim.set_input_int sim "addr" 3;
  Cyclesim.set_input_int sim "data" 77;
  check_int "async pre-write" 0 (Cyclesim.output_int sim "async");
  Cyclesim.step sim;
  (* write committed; sync port latched the OLD value (read-first) *)
  check_int "sync is read-first" 0 (Cyclesim.output_int sim "sync");
  check_int "async sees write" 77 (Cyclesim.output_int sim "async");
  Cyclesim.step sim;
  check_int "sync one cycle later" 77 (Cyclesim.output_int sim "sync")

let test_memory_backdoor () =
  let open Signal in
  let mem = Mem.create ~size:8 ~width:16 () in
  let addr = input "addr" 3 in
  let out = Mem.read_async mem ~addr in
  let circuit = Circuit.create ~name:"m" ~outputs:[ ("out", out) ] in
  let sim = Cyclesim.create circuit in
  Cyclesim.write_memory sim mem 5 (Bits.of_int ~width:16 1234);
  Cyclesim.set_input_int sim "addr" 5;
  check_int "backdoor write visible" 1234 (Cyclesim.output_int sim "out");
  check_int "backdoor read" 1234 (Bits.to_int (Cyclesim.read_memory sim mem 5))

let test_dangling_wire_rejected () =
  let open Signal in
  let w = wire 4 in
  check_bool "unassigned" false (is_assigned w);
  let raised =
    try
      ignore (Circuit.create ~name:"bad" ~outputs:[ ("o", w) ]);
      false
    with Failure m -> String.length m > 0
  in
  check_bool "dangling wire rejected" true raised

let test_comb_loop_rejected () =
  let open Signal in
  let w = wire 4 in
  assign w (w +: of_int ~width:4 1);
  let raised =
    try
      ignore (Circuit.create ~name:"loop" ~outputs:[ ("o", w) ]);
      false
    with Failure m ->
      String.length m > 0
      && String.sub m 0 30 = "Circuit.create: combinational "
  in
  check_bool "comb loop rejected" true raised

let test_reg_breaks_loop () =
  let open Signal in
  (* feedback through a register is legal *)
  let q = reg_fb ~width:8 (fun q -> q +: of_int ~width:8 3) in
  let c = Circuit.create ~name:"ok" ~outputs:[ ("q", q) ] in
  check_int "one register" 1 (List.length (Circuit.registers c))

let test_circuit_introspection () =
  let open Signal in
  let a = input "a" 8 in
  let q = reg a in
  let mem = Mem.create ~size:4 ~width:8 () in
  Mem.write mem ~enable:vdd ~addr:(of_int ~width:2 0) ~data:a;
  let r = Mem.read_sync mem ~addr:(of_int ~width:2 0) () in
  let c = Circuit.create ~name:"x" ~outputs:[ ("q", q); ("r", r) ] in
  check_int "inputs" 1 (List.length (Circuit.inputs c));
  check_int "memories" 1 (List.length (Circuit.memories c));
  check_int "sync reads" 1 (List.length (Circuit.sync_reads c));
  let stats = Circuit.stats c in
  check_int "register bits" 8 (List.assoc "register_bits" stats);
  check_int "memory bits" 32 (List.assoc "memory_bits" stats)

(* A small but real datapath: streaming accumulator with valid/ready-less
   enable, the shape of the paper's Fig. 2 vector-add core. *)
let test_stream_accumulator () =
  let open Signal in
  let in_valid = input "in_valid" 1 in
  let in_data = input "in_data" 32 in
  let addend = input "addend" 32 in
  let out_data = reg ~enable:in_valid (in_data +: addend) in
  let count = reg_fb ~enable:in_valid ~width:16 (fun q -> q +: of_int ~width:16 1) in
  let sim = sim_of [ ("out", out_data); ("count", count) ] in
  Cyclesim.set_input_int sim "addend" 1000;
  let results = ref [] in
  List.iteri
    (fun i v ->
      Cyclesim.set_input_int sim "in_valid" (if v >= 0 then 1 else 0);
      Cyclesim.set_input_int sim "in_data" (abs v);
      Cyclesim.step sim;
      if v >= 0 then results := Cyclesim.output_int sim "out" :: !results;
      ignore i)
    [ 1; 2; -3; 4 ];
  Alcotest.(check (list int))
    "stream outputs" [ 1001; 1002; 1004 ] (List.rev !results);
  check_int "count only on valid" 3 (Cyclesim.output_int sim "count")

let test_verilog_emission () =
  let open Signal in
  let a = input "a" 8 and b = input "b" 8 in
  let mem = Mem.create ~name:"spad" ~size:16 ~width:8 () in
  Mem.write mem ~enable:vdd ~addr:(of_int ~width:4 1) ~data:a;
  let sum = reg (a +: b) -- "sum_r" in
  let rd = Mem.read_sync mem ~addr:(of_int ~width:4 1) () in
  let c = Circuit.create ~name:"vadd" ~outputs:[ ("sum", sum); ("rd", rd) ] in
  let v = Verilog.of_circuit c in
  let has s =
    let n = String.length s and m = String.length v in
    let rec go i = i + n <= m && (String.sub v i n = s || go (i + 1)) in
    go 0
  in
  check_bool "module header" true (has "module vadd");
  check_bool "declares inputs" true (has "input [7:0] a;");
  check_bool "always block" true (has "always @(posedge clk)");
  check_bool "memory declared" true (has "reg [7:0] spad [0:15];");
  check_bool "named register" true (has "sum_r");
  check_bool "endmodule" true (has "endmodule")

(* property: a registered adder pipeline computes the same as a delayed
   functional model, for random input streams *)
let prop_pipeline =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"2-stage pipeline matches delayed model"
       QCheck.(list_of_size Gen.(5 -- 40) (pair (int_bound 0xffff) (int_bound 0xffff)))
       (fun stream ->
         let open Signal in
         let a = input "a" 16 and b = input "b" 16 in
         let s1 = reg (uresize a 17 +: uresize b 17) in
         let s2 = reg s1 in
         let sim =
           Cyclesim.create (Circuit.create ~name:"p" ~outputs:[ ("o", s2) ])
         in
         let expect = ref [] and got = ref [] in
         List.iteri
           (fun i (x, y) ->
             Cyclesim.set_input_int sim "a" x;
             Cyclesim.set_input_int sim "b" y;
             Cyclesim.step sim;
             expect := (x + y) :: !expect;
             (* reading after the i-th edge, s2 holds the sum of inputs i-1 *)
             if i >= 1 then got := Cyclesim.output_int sim "o" :: !got)
           stream;
         (* got.(i) should equal expect delayed by 2 *)
         let expect = List.rev !expect and got = List.rev !got in
         List.for_all2
           (fun e g -> e = g)
           (List.filteri (fun i _ -> i < List.length got) expect)
           got))

let () =
  Alcotest.run "hw"
    [
      ( "comb",
        [
          Alcotest.test_case "operators" `Quick test_comb_ops;
          Alcotest.test_case "mux/select/concat" `Quick test_mux_select_concat;
        ] );
      ( "seq",
        [
          Alcotest.test_case "register" `Quick test_register;
          Alcotest.test_case "counter feedback" `Quick test_counter_feedback;
          Alcotest.test_case "clear priority" `Quick test_clear_priority;
          Alcotest.test_case "stream accumulator" `Quick test_stream_accumulator;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read-first" `Quick test_memory_read_first;
          Alcotest.test_case "backdoor" `Quick test_memory_backdoor;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "dangling wire" `Quick test_dangling_wire_rejected;
          Alcotest.test_case "comb loop" `Quick test_comb_loop_rejected;
          Alcotest.test_case "reg breaks loop" `Quick test_reg_breaks_loop;
          Alcotest.test_case "introspection" `Quick test_circuit_introspection;
        ] );
      ("verilog", [ Alcotest.test_case "emission" `Quick test_verilog_emission ]);
      ("properties", [ prop_pipeline ]);
    ]
