(* Static analyzer tests: a seeded-defect corpus (one minimal design per
   rule, asserting the exact rule id), the construction-time hardening of
   Signal.mux / Signal.Mem addresses, the diagnostics framework policy
   knobs, a qcheck property (well-formed random circuits produce no error
   diagnostics), and the acceptance bar: every bundled design passes the
   composer DRC with zero errors. *)

open Hw.Signal
module Diag = Hw.Diag
module Lint = Hw.Lint
module B = Beethoven
module C = B.Config
module D = Platform.Device

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let rule_ids ds = List.map (fun (d : Diag.t) -> d.Diag.rule) ds
let has_rule r ds = List.mem r (rule_ids ds)

let check_has_rule r ds =
  check_bool
    (Printf.sprintf "emits %s (got: %s)" r (String.concat ", " (rule_ids ds)))
    true (has_rule r ds)

let no_errors what ds =
  check_string
    (what ^ " has no error diagnostics")
    ""
    (String.concat "; "
       (List.map (fun (d : Diag.t) -> d.Diag.message) (Diag.errors ds)))

(* ---- seeded netlist defects, one per lint rule ---- *)

let test_undriven_wire () =
  let w = wire 4 -- "dangling" in
  let ds = Lint.graph ~name:"t" [ ("o", w +: of_int ~width:4 1) ] in
  check_has_rule "undriven-wire" ds;
  let d = List.hd (Diag.errors ds) in
  (* the diagnostic names the consumer, not just the wire *)
  check_bool "mentions consumer context" true
    (String.length d.Diag.message > 0 && d.Diag.loc <> None)

let test_comb_loop_soft () =
  let w = wire 4 -- "loop_w" in
  let x = w +: of_int ~width:4 1 in
  assign w x;
  let ds = Lint.graph ~name:"t" [ ("o", x) ] in
  check_has_rule "comb-loop" ds;
  let d = List.hd (Diag.errors ds) in
  check_bool "cycle path names the wire" true
    (let msg = d.Diag.message in
     let contains sub =
       let n = String.length sub and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
       go 0
     in
     contains "loop_w" && contains "->" && contains "add")

let test_dup_output () =
  let a = of_int ~width:2 1 in
  check_has_rule "dup-output-port"
    (Lint.graph ~name:"t" [ ("o", a); ("o", a) ])

let test_no_outputs () =
  check_has_rule "no-outputs" (Lint.graph ~name:"t" [])

let test_input_width_conflict () =
  let a = input "x" 8 and b = input "x" 4 in
  check_has_rule "input-width-conflict"
    (Lint.graph ~name:"t" [ ("o", concat [ a; uresize b 8 ]) ])

let test_dead_logic () =
  let (outs, tracked) =
    tracking (fun () ->
        let live = input "a" 4 in
        let _dead = reg (of_int ~width:4 0) -- "orphan_reg" in
        [ ("o", live +: of_int ~width:4 1) ])
  in
  let ds = Lint.graph ~tracked ~name:"t" outs in
  check_has_rule "dead-logic" ds;
  (* live logic must not be flagged *)
  check_int "exactly one dead-logic diagnostic" 1
    (List.length (List.filter (fun r -> r = "dead-logic") (rule_ids ds)))

let test_mux_sel_wide () =
  let sel = input "sel" 4 in
  let ds =
    Lint.graph ~name:"t"
      [ ("o", mux sel [ of_int ~width:8 1; of_int ~width:8 2 ]) ]
  in
  check_has_rule "mux-sel-wide" ds

let test_async_read_mapping () =
  let m = Mem.create ~name:"big" ~size:2048 ~width:8 () in
  Mem.write m ~enable:vdd ~addr:(input "wa" 11) ~data:(input "wd" 8);
  let ds =
    Lint.graph ~name:"t" [ ("o", Mem.read_async m ~addr:(input "ra" 11)) ]
  in
  check_has_rule "async-read-mapping" ds;
  (* a small memory may stay async: it maps to LUTRAM *)
  let s = Mem.create ~name:"small" ~size:16 ~width:8 () in
  Mem.write s ~enable:vdd ~addr:(input "swa" 4) ~data:(input "swd" 8);
  let ds2 =
    Lint.graph ~name:"t" [ ("o", Mem.read_async s ~addr:(input "sra" 4)) ]
  in
  check_bool "LUTRAM-sized async read is fine" false
    (has_rule "async-read-mapping" ds2)

let test_mem_addr_wide () =
  let m = Mem.create ~name:"m" ~size:16 ~width:8 () in
  Mem.write m ~enable:vdd ~addr:(input "wa" 8) ~data:(input "wd" 8);
  let ds =
    Lint.graph ~name:"t"
      [ ("o", Mem.read_sync m ~addr:(input "ra" 4) ()) ]
  in
  check_has_rule "mem-addr-wide" ds

let test_write_port_overlap () =
  let m = Mem.create ~name:"m" ~size:16 ~width:8 () in
  let addr = input "a" 4 and data = input "d" 8 in
  Mem.write m ~enable:(input "e1" 1) ~addr ~data;
  Mem.write m ~enable:(input "e2" 1) ~addr ~data;
  let ds =
    Lint.graph ~name:"t" [ ("o", Mem.read_sync m ~addr ()) ]
  in
  check_has_rule "write-port-overlap" ds;
  (* complementary enables are provably exclusive *)
  let m2 = Mem.create ~name:"m2" ~size:16 ~width:8 () in
  let e = input "e" 1 in
  Mem.write m2 ~enable:e ~addr ~data;
  Mem.write m2 ~enable:(lnot e) ~addr ~data;
  let ds2 = Lint.graph ~name:"t" [ ("o", Mem.read_sync m2 ~addr ()) ] in
  check_bool "complementary enables do not overlap" false
    (has_rule "write-port-overlap" ds2);
  (* FSM idiom: (state == K1) vs (state == K2) *)
  let m3 = Mem.create ~name:"m3" ~size:16 ~width:8 () in
  let st = input "st" 2 in
  Mem.write m3 ~enable:(st ==: of_int ~width:2 0) ~addr ~data;
  Mem.write m3 ~enable:(st ==: of_int ~width:2 1) ~addr ~data;
  let ds3 = Lint.graph ~name:"t" [ ("o", Mem.read_sync m3 ~addr ()) ] in
  check_bool "distinct FSM states do not overlap" false
    (has_rule "write-port-overlap" ds3)

let test_unnamed_state () =
  let ds = Lint.graph ~name:"t" [ ("o", reg (input "a" 4)) ] in
  check_has_rule "unnamed-state" ds;
  let ds2 = Lint.graph ~name:"t" [ ("o", reg (input "a" 4) -- "q") ] in
  check_bool "named register is fine" false (has_rule "unnamed-state" ds2)

let test_const_foldable () =
  let ds =
    Lint.graph ~name:"t"
      [ ("o", (of_int ~width:8 3 +: of_int ~width:8 4) &: input "a" 8) ]
  in
  check_has_rule "const-foldable" ds

(* every rule id emitted above must be declared in the catalog *)
let test_rule_catalog () =
  let declared = List.map (fun (id, _, _) -> id) Lint.rules in
  List.iter
    (fun id -> check_bool ("catalog declares " ^ id) true (List.mem id declared))
    [
      "undriven-wire"; "comb-loop"; "dup-output-port"; "no-outputs";
      "input-width-conflict"; "dead-logic"; "mux-sel-wide";
      "async-read-mapping"; "mem-addr-wide"; "write-port-overlap";
      "unnamed-state"; "const-foldable"; "read-before-init"; "const-output";
      "dead-mux-arm"; "redundant-reset"; "dataflow-opt-divergence";
    ]

(* ---- value-aware rules: Hw.Dataflow over Hw.Levelize ---- *)

module Levelize = Hw.Levelize
module Dataflow = Hw.Dataflow
module Sta = Hw.Sta
module Cyclesim = Hw.Cyclesim

let test_read_before_init () =
  (* a memory the circuit never writes can never be initialized by it *)
  let rom = Mem.create ~name:"rom" ~size:16 ~width:8 () in
  let ds =
    Lint.graph ~name:"t" [ ("o", Mem.read_async rom ~addr:(input "a" 4)) ]
  in
  check_has_rule "read-before-init" ds;
  (* a memory with a defined write port is assumed initialized by it *)
  let ram = Mem.create ~name:"ram" ~size:16 ~width:8 () in
  Mem.write ram ~enable:(input "we" 1) ~addr:(input "wa" 4)
    ~data:(input "wd" 8);
  let ds2 =
    Lint.graph ~name:"t" [ ("o", Mem.read_async ram ~addr:(input "a" 4)) ]
  in
  check_bool "written memory reads are defined" false
    (has_rule "read-before-init" ds2);
  (* the constant mask: x & 0 is 0 whatever x was *)
  let rom2 = Mem.create ~name:"rom2" ~size:16 ~width:8 () in
  let ds3 =
    Lint.graph ~name:"t"
      [ ("o", Mem.read_async rom2 ~addr:(input "a" 4) &: zero 8) ]
  in
  check_bool "constant-masked X is defined" false
    (has_rule "read-before-init" ds3)

let test_read_before_init_write_enable () =
  (* an X-derived write enable can corrupt arbitrary addresses *)
  let rom = Mem.create ~name:"rom" ~size:16 ~width:8 () in
  let tainted = bit (Mem.read_async rom ~addr:(input "ra" 4)) 0 in
  let ram = Mem.create ~name:"ram" ~size:16 ~width:8 () in
  Mem.write ram ~enable:tainted ~addr:(input "wa" 4) ~data:(input "wd" 8);
  let ds =
    Lint.graph ~name:"t" [ ("o", Mem.read_sync ram ~addr:(input "a" 4) ()) ]
  in
  check_has_rule "read-before-init" ds

let test_const_output () =
  (* all arms equal: stronger than Opt's folder, which needs a const sel *)
  let c7 = of_int ~width:8 7 in
  let ds = Lint.graph ~name:"t" [ ("o", mux2 (input "s" 1) c7 c7) ] in
  check_has_rule "const-output" ds;
  (* a literal constant output is deliberate, not a bug *)
  let ds2 = Lint.graph ~name:"t" [ ("o", of_int ~width:8 7) ] in
  check_bool "literal constant output not flagged" false
    (has_rule "const-output" ds2);
  (* an input-driven output is not constant *)
  let ds3 = Lint.graph ~name:"t" [ ("o", input "x" 8) ] in
  check_bool "input-driven output not flagged" false
    (has_rule "const-output" ds3)

let test_dead_mux_arm () =
  (* selector provably 0 without being syntactically a constant *)
  let sel = input "s" 1 &: gnd in
  let ds =
    Lint.graph ~name:"t" [ ("o", mux2 sel (input "x" 8) (input "y" 8)) ]
  in
  check_has_rule "dead-mux-arm" ds;
  let ds2 =
    Lint.graph ~name:"t"
      [ ("o", mux2 (input "s2" 1) (input "x" 8) (input "y" 8)) ]
  in
  check_bool "live mux not flagged" false (has_rule "dead-mux-arm" ds2)

let test_redundant_reset () =
  let q = reg ~clear:(input "clr" 1) ~init:(Bits.zero 8) (zero 8) -- "q" in
  let ds = Lint.graph ~name:"t" [ ("o", q |: input "m" 8) ] in
  check_has_rule "redundant-reset" ds;
  check_bool "redundant-reset is info severity" true
    (List.for_all
       (fun (d : Diag.t) ->
         d.Diag.rule <> "redundant-reset" || d.Diag.severity = Diag.Info)
       ds);
  (* a register whose data can differ from init needs its reset *)
  let q2 = reg ~clear:(input "clr2" 1) ~init:(Bits.zero 8) (input "d" 8) in
  let ds2 = Lint.graph ~name:"t" [ ("o", q2) ] in
  check_bool "useful reset not flagged" false (has_rule "redundant-reset" ds2)

let test_dataflow_values () =
  let x = input "x" 8 in
  let held = reg ~init:(Bits.of_int ~width:8 5) (of_int ~width:8 5) -- "held" in
  let counter =
    reg_fb ~width:8 (fun q -> q +: of_int ~width:8 1) -- "ctr"
  in
  let c =
    Hw.Circuit.create ~name:"df"
      ~outputs:[ ("held", held); ("ctr", counter); ("x", x) ]
  in
  let df = Dataflow.run (Levelize.of_circuit c) in
  check_bool "reg holding its init is Const" true
    (match Dataflow.value_of df held with
    | Dataflow.Const b -> Bits.to_int b = 5
    | _ -> false);
  check_bool "counter is Top (value varies across cycles)" true
    (Dataflow.value_of df counter = Dataflow.Top);
  check_bool "input is Top" true (Dataflow.value_of df x = Dataflow.Top);
  check_bool "no X without memories (registers always have init)" true
    (List.for_all
       (fun s -> not (Dataflow.is_x df s))
       (Hw.Circuit.signals_in_topo_order c))

(* ---- Hw.Levelize ---- *)

let test_levelize_basic () =
  let a = input "a" 8 and b = input "b" 8 in
  let s = (a +: b) -- "s" in
  let q = reg s -- "q" in
  let o = s &: q in
  let c = Hw.Circuit.create ~name:"lv" ~outputs:[ ("o", o) ] in
  let lv = Levelize.of_circuit c in
  check_int "n_nodes matches topo"
    (List.length (Hw.Circuit.signals_in_topo_order c))
    (Levelize.n_nodes lv);
  check_int "input is a source" 0 (Levelize.level_of lv a);
  check_int "reg is a source" 0 (Levelize.level_of lv q);
  check_int "add above its operands" 1 (Levelize.level_of lv s);
  check_int "and above the add" 2 (Levelize.level_of lv o);
  check_int "comb depth" 2 (Levelize.comb_depth lv);
  (* slices tile the node array in level-major order *)
  let total = ref 0 in
  for l = 0 to Levelize.n_levels lv - 1 do
    let first, count = Levelize.level_slice lv l in
    check_int (Printf.sprintf "slice %d is contiguous" l) !total first;
    total := !total + count
  done;
  check_int "slices cover every node" (Levelize.n_nodes lv) !total;
  (* fanout of s: the and (comb) plus the reg's d (seq) *)
  check_int "fanout counts comb and seq loads" 2 (Levelize.fanout_of lv s);
  (* hotspots are fanout-descending *)
  let hs = Levelize.hotspots lv ~n:3 in
  check_bool "hotspots sorted by fanout" true
    (let fos = List.map (fun nd -> nd.Levelize.n_fanout) hs in
     List.sort (fun x y -> compare y x) fos = fos)

let test_stats_levelize_agree () =
  (* Circuit.stats computes depth/fanout inline (it cannot see Levelize);
     the two implementations must agree on every bundled kernel *)
  List.iter
    (fun (name, (config : C.t)) ->
      List.iter
        (fun (sys : C.system) ->
          match sys.C.kernel_circuit with
          | None -> ()
          | Some c ->
              let lv = Levelize.of_circuit c in
              let stats = Hw.Circuit.stats c in
              check_int
                (name ^ "/" ^ sys.C.sys_name ^ " comb_depth agrees")
                (Levelize.comb_depth lv)
                (List.assoc "comb_depth" stats);
              check_int
                (name ^ "/" ^ sys.C.sys_name ^ " max_fanout agrees")
                (Levelize.max_fanout lv)
                (List.assoc "max_fanout" stats))
        config.C.systems)
    [
      ("a3-rtl", Attention.A3_rtl_core.config ~n_cores:1 ());
      ("vecadd-rtl", Kernels.Vecadd_rtl.config ~n_cores:1 ());
    ]

(* ---- Hw.Sta ---- *)

let deep_chain_circuit n =
  let x = input "x" 32 in
  let acc = ref x in
  for _ = 1 to n do
    acc := !acc +: x
  done;
  Hw.Circuit.create ~name:"deep" ~outputs:[ ("o", !acc) ]

let test_sta_report () =
  let c = deep_chain_circuit 10 in
  let r = Sta.of_circuit c in
  check_int "10 chained adds at 2 per add" 20 r.Sta.r_max_delay;
  check_int "comb depth counts the chain" 10 r.Sta.r_comb_depth;
  check_int "unit model max delay = comb depth" r.Sta.r_comb_depth
    (Sta.of_circuit ~model:Sta.Unit c).Sta.r_max_delay;
  let arrivals = List.map (fun pn -> pn.Sta.pn_arrival) r.Sta.r_worst_path in
  check_bool "worst-path arrivals are monotone" true
    (List.sort compare arrivals = arrivals);
  check_int "worst path ends at the max delay" r.Sta.r_max_delay
    (List.nth arrivals (List.length arrivals - 1));
  check_int "per-output table covers every output" 1
    (List.length r.Sta.r_outputs);
  check_string "report is deterministic" (Sta.to_json r)
    (Sta.to_json (Sta.of_circuit c))

(* ---- construction-time hardening (the linter's error rules cover what
   construction cannot reject; these cover what it now can) ---- *)

let test_mux_narrow_sel_rejected () =
  let sel = input "s" 1 in
  let cases = [ of_int ~width:4 0; of_int ~width:4 1; of_int ~width:4 2 ] in
  (match mux sel cases with
  | _ -> Alcotest.fail "1-bit selector with 3 cases must be rejected"
  | exception Invalid_argument _ -> ());
  (* exactly-fitting selector still works *)
  check_int "2-bit selector reaches 4 cases" 4
    (width (mux (input "s2" 2) [ zero 4; zero 4; zero 4; zero 4 ]))

let test_mem_narrow_addr_rejected () =
  let m = Mem.create ~name:"m" ~size:16 ~width:8 () in
  (match Mem.write m ~enable:vdd ~addr:(input "a" 3) ~data:(input "d" 8) with
  | () -> Alcotest.fail "3-bit address into 16 entries must be rejected"
  | exception Invalid_argument _ -> ());
  (match Mem.read_async m ~addr:(input "ra" 2) with
  | _ -> Alcotest.fail "2-bit read address into 16 entries must be rejected"
  | exception Invalid_argument _ -> ())

let test_comb_loop_hard_path () =
  let w = wire 4 -- "loop_a" in
  let x = (w +: of_int ~width:4 1) -- "loop_b" in
  assign w x;
  match Hw.Circuit.create ~name:"loop" ~outputs:[ ("o", x) ] with
  | _ -> Alcotest.fail "combinational loop must not elaborate"
  | exception Failure msg ->
      let contains sub =
        let n = String.length sub and m = String.length msg in
        let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
        go 0
      in
      check_bool ("path names loop_a in: " ^ msg) true (contains "loop_a");
      check_bool ("path names loop_b in: " ^ msg) true (contains "loop_b");
      check_bool "path shows the edge direction" true (contains "->")

(* ---- diagnostics framework policy ---- *)

let sample_diags () =
  [
    Diag.make ~rule:"mux-sel-wide" ~severity:Diag.Warning "w1";
    Diag.make ~rule:"comb-loop" ~severity:Diag.Error ~loc:"sig" "e1";
    Diag.make ~rule:"unnamed-state" ~severity:Diag.Info "i1";
  ]

let test_waive () =
  let ds = Diag.waive ~rules:[ "mux-sel-wide"; "unnamed-state" ] (sample_diags ()) in
  check_int "only the error survives" 1 (List.length ds);
  check_string "survivor" "comb-loop" (List.hd ds).Diag.rule

let test_werror () =
  let ds = Diag.promote_warnings (sample_diags ()) in
  check_int "two errors after -Werror" 2 (List.length (Diag.errors ds));
  check_int "info untouched" 1 (Diag.count ds Diag.Info)

let test_sort_order () =
  match Diag.sort (sample_diags ()) with
  | e :: w :: i :: [] ->
      check_string "errors first" "comb-loop" e.Diag.rule;
      check_string "then warnings" "mux-sel-wide" w.Diag.rule;
      check_string "infos last" "unnamed-state" i.Diag.rule
  | _ -> Alcotest.fail "expected three diagnostics"

let test_json () =
  let json = Diag.render_json (sample_diags ()) in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "has diagnostics array" true (contains "\"diagnostics\":[");
  check_bool "has rule" true (contains "\"rule\":\"comb-loop\"");
  check_bool "has loc" true (contains "\"loc\":\"sig\"");
  check_bool "has counts" true (contains "\"errors\":1");
  check_bool "escapes are sane" true (contains "\"severity\":\"warning\"")

(* ---- qcheck: well-formed random circuits never produce error diags ---- *)

let gen_ops = QCheck.Gen.(list_size (1 -- 20) (triple (0 -- 6) small_nat small_nat))

let build_random_circuit ops =
  let pool =
    ref [ input "a" 8; input "b" 8; of_int ~width:8 5; reg (input "c" 8) -- "rc" ]
  in
  let pick i = List.nth !pool (i mod List.length !pool) in
  List.iter
    (fun (op, i, j) ->
      let x = pick i and y = pick j in
      let s =
        match op with
        | 0 -> x +: y
        | 1 -> x -: y
        | 2 -> x &: y
        | 3 -> x |: y
        | 4 -> x ^: y
        | 5 -> reg x -- Printf.sprintf "r%d" (List.length !pool)
        | _ -> mux2 (bit x 0) x y
      in
      pool := !pool @ [ s ])
    ops;
  [ ("o", List.nth !pool (List.length !pool - 1)) ]

let prop_random_clean =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"random well-formed circuits lint clean"
       (QCheck.make gen_ops)
       (fun ops ->
         let (outs, tracked) = tracking (fun () -> build_random_circuit ops) in
         let ds = Lint.graph ~tracked ~name:"rand" outs in
         not (Diag.has_errors ds)))

(* like build_random_circuit, but parameterized over the leaf pool and an
   optional pipelining pass that registers every other derived node *)
let build_ops ~pipeline ~pool0 ops =
  let pool = ref pool0 in
  let pick i = List.nth !pool (i mod List.length !pool) in
  List.iteri
    (fun k (op, i, j) ->
      let x = pick i and y = pick j in
      let s =
        match op with
        | 0 -> x +: y
        | 1 -> x -: y
        | 2 -> x &: y
        | 3 -> x |: y
        | 4 -> x ^: y
        | 5 -> reg x -- Printf.sprintf "qr%d" k
        | _ -> mux2 (bit x 0) x y
      in
      let s =
        if pipeline && k mod 2 = 1 then reg s -- Printf.sprintf "qp%d" k else s
      in
      pool := !pool @ [ s ])
    ops;
  List.nth !pool (List.length !pool - 1)

let input_pool () =
  [ input "a" 8; input "b" 8; of_int ~width:8 5; reg (input "c" 8) -- "rc" ]

(* levelization respects Circuit.comb_deps (every dep strictly lower) and
   agrees with signals_in_topo_order; the Unit STA model is comb depth *)
let prop_levelize_respects_deps =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"levelization respects comb deps"
       (QCheck.make gen_ops)
       (fun ops ->
         let o = build_ops ~pipeline:false ~pool0:(input_pool ()) ops in
         let c = Hw.Circuit.create ~name:"rand" ~outputs:[ ("o", o) ] in
         let lv = Levelize.of_circuit c in
         let topo = Hw.Circuit.signals_in_topo_order c in
         Levelize.n_nodes lv = List.length topo
         && List.for_all
              (fun s ->
                let l = Levelize.level_of lv s in
                List.for_all
                  (fun d ->
                    Levelize.level_of lv d < l
                    && Levelize.slot_of lv d < Levelize.slot_of lv s)
                  (Hw.Circuit.comb_deps s))
              topo
         && (Sta.analyze ~model:Sta.Unit lv).Sta.r_max_delay
            = Levelize.comb_depth lv))

(* dataflow soundness: on circuits built only from constants, any output
   the analysis claims is Const b must simulate to exactly b on every
   cycle, and the differential check against Opt.constant_fold is clean *)
let prop_dataflow_agrees_with_cyclesim =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"dataflow const-prop agrees with Cyclesim"
       (QCheck.make gen_ops)
       (fun ops ->
         let pool0 =
           [
             of_int ~width:8 5; of_int ~width:8 0; of_int ~width:8 255;
             of_int ~width:8 3;
           ]
         in
         let o = build_ops ~pipeline:false ~pool0 ops in
         let c = Hw.Circuit.create ~name:"const" ~outputs:[ ("o", o) ] in
         let df = Dataflow.run (Levelize.of_circuit c) in
         Dataflow.crosscheck df = []
         &&
         match Dataflow.value_of df o with
         | Dataflow.Top | Dataflow.Bot -> true
         | Dataflow.Const b ->
             let sim = Cyclesim.create c in
             let ok = ref true in
             for _ = 0 to 7 do
               Cyclesim.settle sim;
               if not (Bits.equal (Cyclesim.output sim "o") b) then ok := false;
               Cyclesim.step sim
             done;
             !ok))

(* pipelining only ever cuts combinational paths: registering every other
   node must never increase the STA worst-path delay *)
let prop_sta_monotone_pipeline =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"STA worst path monotone under pipelining"
       (QCheck.make gen_ops)
       (fun ops ->
         let circuit ~pipeline =
           let o = build_ops ~pipeline ~pool0:(input_pool ()) ops in
           Hw.Circuit.create ~name:"p" ~outputs:[ ("o", o) ]
         in
         let flat = Sta.of_circuit (circuit ~pipeline:false) in
         let piped = Sta.of_circuit (circuit ~pipeline:true) in
         piped.Sta.r_max_delay <= flat.Sta.r_max_delay))

(* ---- composer DRC: seeded configuration defects ---- *)

let cmd ~name ~funct = B.Cmd_spec.make ~name ~funct ~response_bits:32 []

let tiny_system ?(n_cores = 1) ?(commands = [ cmd ~name:"go" ~funct:0 ])
    ?(scratchpads = []) ?(read_channels = []) ?(intra_core_ports = []) name =
  C.system ~name ~n_cores ~commands ~scratchpads ~read_channels
    ~intra_core_ports ()

(* record literal: bypasses Config.make validation on purpose, as a
   hand-rolled or generated config could *)
let raw_config systems = { C.acc_name = "seeded"; systems }

let drc ?(platform = D.aws_f1) systems =
  B.Check.run (raw_config systems) platform

let test_drc_name_collision () =
  check_has_rule "drc-name-collision"
    (drc [ tiny_system "S"; tiny_system "S" ])

let test_drc_core_count () =
  check_has_rule "drc-core-count" (drc [ tiny_system ~n_cores:2000 "S" ]);
  (* zero cores is unconstructible through C.system; a raw record is not *)
  check_has_rule "drc-core-count"
    (drc [ { (tiny_system "S") with C.n_cores = 0 } ])

let test_drc_funct_collision () =
  check_has_rule "drc-funct-collision"
    (drc
       [
         tiny_system
           ~commands:[ cmd ~name:"a" ~funct:3; cmd ~name:"b" ~funct:3 ]
           "S";
       ])

let test_drc_rocc_encoding () =
  let bad_funct =
    {
      B.Cmd_spec.cmd_name = "z";
      cmd_funct = 500;
      fields = [];
      has_response = false;
      resp_bits = 0;
    }
  in
  check_has_rule "drc-rocc-encoding"
    (drc [ tiny_system ~commands:[ bad_funct ] "S" ])

let test_drc_dangling_ref () =
  let port =
    {
      C.ic_name = "p";
      ic_to_system = "no_such_system";
      ic_to_scratchpad = "sp";
      ic_n_channels = 1;
    }
  in
  check_has_rule "drc-dangling-ref"
    (drc [ tiny_system ~intra_core_ports:[ port ] "S" ])

let test_drc_scratchpad_capacity () =
  (* 64 Mbit request on a Kria (~24 Mbit of BRAM+URAM) *)
  let sp =
    C.scratchpad ~name:"huge" ~data_bits:64 ~n_datas:1_000_000 ()
  in
  let ds = drc ~platform:D.kria [ tiny_system ~scratchpads:[ sp ] "S" ] in
  check_has_rule "drc-scratchpad-capacity" ds;
  check_bool "is an error" true (Diag.has_errors ds)

let test_drc_floorplan () =
  let sys =
    C.system ~name:"S" ~n_cores:1
      ~commands:[ cmd ~name:"go" ~funct:0 ]
      ~kernel_resources:(Platform.Resources.make ~clb:10_000_000 ())
      ()
  in
  check_has_rule "drc-floorplan" (drc [ sys ])

let test_drc_axi_capacity () =
  (* 8 cores x 4 channels = 32 instances > 16 AXI IDs on the F1 *)
  let rc =
    C.read_channel ~name:"r" ~data_bytes:4 ~n_channels:4 ()
  in
  let ds = drc [ tiny_system ~n_cores:8 ~read_channels:[ rc ] "S" ] in
  check_has_rule "drc-axi-capacity" ds;
  check_bool "axi capacity is a warning, not an error" false
    (Diag.has_errors ds)

let test_drc_structural_gates_mapping () =
  (* a structurally broken config must not reach the floorplanner *)
  let sys =
    C.system ~name:"S" ~n_cores:1
      ~commands:[ cmd ~name:"go" ~funct:0 ]
      ~kernel_resources:(Platform.Resources.make ~clb:10_000_000 ())
      ()
  in
  let ds = drc [ { sys with C.n_cores = 0 } ] in
  check_has_rule "drc-core-count" ds;
  check_bool "no mapping diagnostics on structural errors" false
    (has_rule "drc-floorplan" ds)

(* ---- floorplan-aware static timing DRC ---- *)

let test_drc_sta_slr_path () =
  (* ~600 delay units of chained adders against the default 256 budget *)
  let deep = deep_chain_circuit 300 in
  let sys = { (tiny_system "S") with C.kernel_circuit = Some deep } in
  let ds = drc [ sys ] in
  check_has_rule "drc-sta-slr-path" ds;
  (* on a multi-die part the placer steers cores away from the shell die,
     so the over-budget path also crosses an SLR boundary: error *)
  check_bool "cross-SLR over-budget path is an error" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.rule = "drc-sta-slr-path" && d.Diag.severity = Diag.Error)
       ds);
  (* single-die part: same path, no crossing tax -> warning only *)
  let ds_kria = drc ~platform:D.kria [ sys ] in
  check_bool "on-die over-budget path is only a warning" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.rule = "drc-sta-slr-path" && d.Diag.severity = Diag.Warning)
       ds_kria);
  check_bool "no error on a single die" false (Diag.has_errors ds_kria);
  (* a raised budget clears it *)
  let ds_big = B.Check.run ~sta_budget:10_000 (raw_config [ sys ]) D.aws_f1 in
  check_bool "raised budget clears the DRC" false
    (has_rule "drc-sta-slr-path" ds_big);
  (* a shallow kernel is clean under the default budget *)
  let ok =
    { (tiny_system "T") with C.kernel_circuit = Some (deep_chain_circuit 4) }
  in
  check_bool "shallow kernel passes" false
    (has_rule "drc-sta-slr-path" (drc [ ok ]))

(* ---- elaborate integration ---- *)

let test_elaborate_raises_on_drc_error () =
  let config =
    raw_config
      [
        tiny_system
          ~commands:[ cmd ~name:"a" ~funct:3; cmd ~name:"b" ~funct:3 ]
          "S";
      ]
  in
  (match B.Elaborate.elaborate config D.aws_f1 with
  | _ -> Alcotest.fail "funct collision must not elaborate"
  | exception Failure msg ->
      check_bool ("mentions the DRC: " ^ msg) true
        (let contains sub =
           let n = String.length sub and m = String.length msg in
           let rec go i =
             i + n <= m && (String.sub msg i n = sub || go (i + 1))
           in
           go 0
         in
         contains "drc-funct-collision"));
  (* the escape hatch still elaborates *)
  let d = B.Elaborate.elaborate ~checks:false config D.aws_f1 in
  check_int "forced elaboration records no diagnostics" 0
    (List.length d.B.Elaborate.diagnostics)

let test_elaborate_keeps_diagnostics () =
  let d =
    B.Elaborate.elaborate (Kernels.Vecadd.config ~n_cores:2 ()) D.aws_f1
  in
  check_bool "clean design elaborates without error diags" false
    (Diag.has_errors d.B.Elaborate.diagnostics)

(* ---- acceptance: every bundled design is DRC-clean ---- *)

let bundled_designs =
  [
    ("vecadd", Kernels.Vecadd.config ~n_cores:4 ());
    ("memcpy", Kernels.Memcpy.config Kernels.Memcpy.Beethoven);
    ("a3", Attention.Accel.config ~n_cores:2 ());
    ("a3-rtl", Attention.A3_rtl_core.config ~n_cores:2 ());
    ("vecadd-rtl", Kernels.Vecadd_rtl.config ~n_cores:2 ());
    ("nw", Kernels.Machsuite.(config Nw ~n_cores:2));
    ("gemm", Kernels.Machsuite.(config Gemm ~n_cores:2));
    ("stencil2d", Kernels.Machsuite.(config Stencil2d ~n_cores:2));
    ("stencil3d", Kernels.Machsuite.(config Stencil3d ~n_cores:2));
    ("mdknn", Kernels.Machsuite.(config Md_knn ~n_cores:2));
    ("fft", Kernels.Machsuite_extra.(config Fft ~n_cores:2));
    ("spmv", Kernels.Machsuite_extra.(config Spmv ~n_cores:2));
    ("kmp", Kernels.Machsuite_extra.(config Kmp ~n_cores:2));
    ("msort", Kernels.Machsuite_extra.(config Merge_sort ~n_cores:2));
  ]

let test_bundled_designs_clean () =
  List.iter
    (fun (name, config) ->
      no_errors name (B.Check.run config D.aws_f1))
    bundled_designs

let test_bundled_kernels_lint_clean () =
  (* the RTL-DSL kernel circuits themselves, through the netlist linter *)
  List.iter
    (fun (name, config) ->
      List.iter
        (fun (sys : C.system) ->
          match sys.C.kernel_circuit with
          | None -> ()
          | Some c -> no_errors (name ^ "/" ^ sys.C.sys_name) (Lint.circuit c))
        config.C.systems)
    bundled_designs

let () =
  Alcotest.run "lint"
    [
      ( "netlist-rules",
        [
          Alcotest.test_case "undriven wire" `Quick test_undriven_wire;
          Alcotest.test_case "comb loop (soft path)" `Quick test_comb_loop_soft;
          Alcotest.test_case "duplicate output" `Quick test_dup_output;
          Alcotest.test_case "no outputs" `Quick test_no_outputs;
          Alcotest.test_case "input width conflict" `Quick
            test_input_width_conflict;
          Alcotest.test_case "dead logic" `Quick test_dead_logic;
          Alcotest.test_case "mux selector too wide" `Quick test_mux_sel_wide;
          Alcotest.test_case "async read mapping" `Quick
            test_async_read_mapping;
          Alcotest.test_case "memory address too wide" `Quick
            test_mem_addr_wide;
          Alcotest.test_case "write port overlap" `Quick
            test_write_port_overlap;
          Alcotest.test_case "unnamed state" `Quick test_unnamed_state;
          Alcotest.test_case "const foldable" `Quick test_const_foldable;
          Alcotest.test_case "rule catalog complete" `Quick test_rule_catalog;
        ] );
      ( "value-rules",
        [
          Alcotest.test_case "read before init" `Quick test_read_before_init;
          Alcotest.test_case "read before init via write enable" `Quick
            test_read_before_init_write_enable;
          Alcotest.test_case "const output" `Quick test_const_output;
          Alcotest.test_case "dead mux arm" `Quick test_dead_mux_arm;
          Alcotest.test_case "redundant reset" `Quick test_redundant_reset;
          Alcotest.test_case "dataflow values" `Quick test_dataflow_values;
        ] );
      ( "levelize-sta",
        [
          Alcotest.test_case "levelize basic" `Quick test_levelize_basic;
          Alcotest.test_case "stats agrees with levelize" `Quick
            test_stats_levelize_agree;
          Alcotest.test_case "sta report" `Quick test_sta_report;
        ] );
      ( "construction-hardening",
        [
          Alcotest.test_case "mux rejects narrow selector" `Quick
            test_mux_narrow_sel_rejected;
          Alcotest.test_case "mem rejects narrow address" `Quick
            test_mem_narrow_addr_rejected;
          Alcotest.test_case "comb loop failure shows cycle path" `Quick
            test_comb_loop_hard_path;
        ] );
      ( "diag-framework",
        [
          Alcotest.test_case "waivers" `Quick test_waive;
          Alcotest.test_case "-Werror promotion" `Quick test_werror;
          Alcotest.test_case "sort order" `Quick test_sort_order;
          Alcotest.test_case "json rendering" `Quick test_json;
        ] );
      ( "properties",
        [
          prop_random_clean;
          prop_levelize_respects_deps;
          prop_dataflow_agrees_with_cyclesim;
          prop_sta_monotone_pipeline;
        ] );
      ( "composer-drc",
        [
          Alcotest.test_case "name collision" `Quick test_drc_name_collision;
          Alcotest.test_case "core count" `Quick test_drc_core_count;
          Alcotest.test_case "funct collision" `Quick test_drc_funct_collision;
          Alcotest.test_case "rocc encoding" `Quick test_drc_rocc_encoding;
          Alcotest.test_case "dangling ref" `Quick test_drc_dangling_ref;
          Alcotest.test_case "scratchpad capacity" `Quick
            test_drc_scratchpad_capacity;
          Alcotest.test_case "floorplan feasibility" `Quick test_drc_floorplan;
          Alcotest.test_case "axi capacity" `Quick test_drc_axi_capacity;
          Alcotest.test_case "structural errors gate mapping checks" `Quick
            test_drc_structural_gates_mapping;
          Alcotest.test_case "sta slr path" `Quick test_drc_sta_slr_path;
        ] );
      ( "integration",
        [
          Alcotest.test_case "elaborate raises on DRC error" `Quick
            test_elaborate_raises_on_drc_error;
          Alcotest.test_case "elaborate keeps diagnostics" `Quick
            test_elaborate_keeps_diagnostics;
          Alcotest.test_case "bundled designs DRC-clean" `Quick
            test_bundled_designs_clean;
          Alcotest.test_case "bundled kernels lint-clean" `Quick
            test_bundled_kernels_lint_clean;
        ] );
    ]
