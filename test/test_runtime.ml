(* Host runtime: allocator invariants and the fpga_handle services (DMA,
   command/response, server-lock contention accounting). *)

module H = Runtime.Handle
module A = Runtime.Alloc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Allocator ---- *)

let test_alloc_basic () =
  let a = A.create ~size:(1 lsl 20) () in
  let p1 = Option.get (A.alloc a 100) in
  let p2 = Option.get (A.alloc a 5000) in
  check_int "aligned" 0 (p1 mod 4096);
  check_int "aligned 2" 0 (p2 mod 4096);
  check_bool "disjoint" true (p1 <> p2);
  check_int "rounding: 100 -> 4096, 5000 -> 8192" (4096 + 8192)
    (A.allocated_bytes a);
  check_bool "invariants" true (A.check_invariants a)

let test_alloc_exhaustion_and_reuse () =
  let a = A.create ~size:(16 * 4096) () in
  let ps = List.init 16 (fun _ -> Option.get (A.alloc a 4096)) in
  check_bool "17th fails" true (A.alloc a 1 = None);
  A.free a (List.nth ps 7);
  check_bool "freed slot reusable" true (A.alloc a 4096 <> None);
  check_bool "invariants" true (A.check_invariants a)

let test_alloc_coalescing () =
  let a = A.create ~size:(8 * 4096) () in
  let ps = List.init 8 (fun _ -> Option.get (A.alloc a 4096)) in
  (* free all: neighbours must coalesce back into one region *)
  List.iter (A.free a) ps;
  check_int "no live blocks" 0 (A.n_blocks a);
  check_bool "one big region again" true (A.alloc a (8 * 4096) <> None)

let test_alloc_double_free_rejected () =
  let a = A.create ~size:(1 lsl 16) () in
  let p = Option.get (A.alloc a 4096) in
  A.free a p;
  Alcotest.check_raises "double free"
    (A.Invalid_free { addr = p; reason = A.Double_free }) (fun () ->
      A.free a p);
  Alcotest.check_raises "never allocated"
    (A.Invalid_free { addr = 12288; reason = A.Never_allocated }) (fun () ->
      A.free a 12288)

(* ---- fpga_handle over a tiny SoC ---- *)

let mk_handle ?server_op_ps () =
  let design =
    Beethoven.Elaborate.elaborate
      (Kernels.Vecadd.config ~n_cores:2 ())
      Platform.Device.aws_f1
  in
  let soc =
    Beethoven.Soc.create design ~behaviors:(fun _ -> Kernels.Vecadd.behavior)
  in
  H.create ?server_op_ps soc

let test_handle_malloc_dma () =
  let h = mk_handle () in
  let p = H.malloc h 4096 in
  let host = H.host_bytes h p in
  Bytes.set_int32_le host 0 0xFEEDl;
  let done_in = ref false and done_out = ref false in
  H.copy_to_fpga h p ~on_done:(fun () -> done_in := true);
  Desim.Engine.run (H.engine h);
  check_bool "dma in completed" true !done_in;
  Alcotest.(check int32)
    "device memory holds the data" 0xFEEDl
    (Beethoven.Soc.read_u32 (H.soc h) p.H.rp_addr);
  Beethoven.Soc.write_u32 (H.soc h) (p.H.rp_addr + 4) 0xBEEFl;
  H.copy_from_fpga h p ~on_done:(fun () -> done_out := true);
  Desim.Engine.run (H.engine h);
  check_bool "dma out completed" true !done_out;
  Alcotest.(check int32)
    "host sees device writes" 0xBEEFl
    (Bytes.get_int32_le (H.host_bytes h p) 4);
  H.mfree h p;
  Alcotest.check_raises "stale pointer"
    (H.Stale_pointer { addr = p.H.rp_addr; bytes = p.H.rp_bytes }) (fun () ->
      ignore (H.host_bytes h p));
  Alcotest.check_raises "double mfree"
    (A.Invalid_free { addr = p.H.rp_addr; reason = A.Double_free }) (fun () ->
      H.mfree h p)

let test_handle_command_roundtrip () =
  let h = mk_handle () in
  let p_in = H.malloc h 1024 and p_out = H.malloc h 1024 in
  for i = 0 to 255 do
    Bytes.set_int32_le (H.host_bytes h p_in) (i * 4) (Int32.of_int i)
  done;
  let dma = ref false in
  H.copy_to_fpga h p_in ~on_done:(fun () -> dma := true);
  Desim.Engine.run (H.engine h);
  let handle =
    H.send h ~system:"VecAdd" ~core:1 ~cmd:Kernels.Vecadd.command
      ~args:
        [
          ("addend", 10L);
          ("vec_addr", Int64.of_int p_in.H.rp_addr);
          ("out_addr", Int64.of_int p_out.H.rp_addr);
          ("n_eles", 256L);
        ]
  in
  check_bool "not ready immediately" true (H.try_get handle = None);
  let resp = H.await h handle in
  Alcotest.(check int64) "response counts elements" 256L resp;
  Alcotest.(check int32)
    "element 100 incremented" 110l
    (Beethoven.Soc.read_u32 (H.soc h) (p_out.H.rp_addr + 400));
  check_int "commands counted (2 beats)" 2 (H.commands_sent h)

let test_on_ready_callback () =
  let h = mk_handle () in
  let p = H.malloc h 256 in
  let got = ref (-1L) in
  let handle =
    H.send h ~system:"VecAdd" ~core:0 ~cmd:Kernels.Vecadd.command
      ~args:
        [
          ("addend", 1L);
          ("vec_addr", Int64.of_int p.H.rp_addr);
          ("out_addr", Int64.of_int p.H.rp_addr);
          ("n_eles", 16L);
        ]
  in
  H.on_ready handle (fun v -> got := v);
  Desim.Engine.run (H.engine h);
  Alcotest.(check int64) "callback fired with value" 16L !got;
  (* late registration fires immediately *)
  let again = ref 0L in
  H.on_ready handle (fun v -> again := v);
  Alcotest.(check int64) "late callback immediate" 16L !again

let test_server_contention () =
  (* with a slow server, N concurrent short commands serialize: total busy
     time is proportional to operation count *)
  let h = mk_handle ~server_op_ps:2_000_000 () in
  let p = H.malloc h 4096 in
  let hs =
    List.init 8 (fun i ->
        H.send h ~system:"VecAdd" ~core:(i mod 2) ~cmd:Kernels.Vecadd.command
          ~args:
            [
              ("addend", 1L);
              ("vec_addr", Int64.of_int p.H.rp_addr);
              ("out_addr", Int64.of_int p.H.rp_addr);
              ("n_eles", 4L);
            ])
  in
  ignore (H.await_all h hs);
  (* 8 commands x 2 beats + 8 response collections = 24 server ops *)
  check_int "server busy accounting" (24 * 2_000_000) (H.server_busy_ps h);
  check_int "responses" 8 (H.responses_received h)

let test_embedded_kria_path () =
  (* on the embedded platform the allocator hands out hugepage-backed
     physical addresses and the full vecadd flow still verifies *)
  let expected, actual, _ =
    Kernels.Vecadd.run ~n_cores:2 ~n_eles:4096 ~platform:Platform.Device.kria ()
  in
  check_bool "kria end-to-end correct" true (expected = actual)

let test_embedded_addresses_are_hugepage_aligned () =
  let design =
    Beethoven.Elaborate.elaborate (Kernels.Vecadd.config ())
      Platform.Device.kria
  in
  let soc =
    Beethoven.Soc.create design ~behaviors:(fun _ -> Kernels.Vecadd.behavior)
  in
  let h = H.create soc in
  let p = H.malloc h 100_000 in
  check_int "2MB aligned physical base" 0 (p.H.rp_addr mod (2 * 1024 * 1024));
  H.mfree h p;
  (* the slot is reusable *)
  let p2 = H.malloc h 100_000 in
  check_bool "hugepage slot recycled" true (p2.H.rp_addr = p.H.rp_addr)

(* ---- prompt settlement around quarantine (cluster drain regression) --- *)

(* the prompt-settle contract is stated for fault-armed SoCs (the
   watchdog machinery owns the abort hooks), so build one: an empty
   plan injects nothing but arms the watchdogs *)
let mk_fault_handle () =
  let design =
    Beethoven.Elaborate.elaborate
      (Kernels.Vecadd.config ~n_cores:2 ())
      Platform.Device.aws_f1
  in
  let soc =
    Beethoven.Soc.create
      ~fault:(Fault.Injector.create Fault.Plan.none)
      design
      ~behaviors:(fun _ -> Kernels.Vecadd.behavior)
  in
  H.create soc

let send_vecadd h ~core p =
  H.send h ~system:"VecAdd" ~core ~cmd:Kernels.Vecadd.command
    ~args:
      [
        ("addend", 1L);
        ("vec_addr", Int64.of_int p.H.rp_addr);
        ("out_addr", Int64.of_int p.H.rp_addr);
        ("n_eles", 16L);
      ]

let test_quarantine_reroutes_inflight () =
  let h = mk_fault_handle () in
  let p = H.malloc h 256 in
  let doomed = send_vecadd h ~core:0 p in
  check_bool "pending before quarantine" true (H.try_collect doomed = H.Pending);
  (* the health monitor writes core 0 off while the command is in flight:
     it must reroute to core 1, not sit Pending until a watchdog *)
  H.quarantine_core h ~system_id:0 ~core_id:0 ~reason:"health monitor";
  Desim.Engine.run (H.engine h);
  (match H.try_collect doomed with
  | H.Done v -> Alcotest.(check int64) "rerouted and completed" 16L v
  | H.Pending -> Alcotest.fail "stayed pending across quarantine"
  | H.Failed m -> Alcotest.fail ("failed instead of rerouting: " ^ m))

let test_try_collect_prompt_fail_when_no_core_survives () =
  let h = mk_fault_handle () in
  let p = H.malloc h 256 in
  let doomed = send_vecadd h ~core:0 p in
  H.quarantine_core h ~system_id:0 ~core_id:1 ~reason:"health monitor";
  H.quarantine_core h ~system_id:0 ~core_id:0 ~reason:"health monitor";
  (* no survivor: the handle must settle Failed at the quarantine
     instant, with NO engine time — a draining dispatcher polls this *)
  (match H.try_collect doomed with
  | H.Failed _ -> ()
  | H.Pending -> Alcotest.fail "quarantine-doomed command stayed Pending"
  | H.Done _ -> Alcotest.fail "cannot complete on a quarantined system");
  (* and a fresh send to the written-off system settles at submission *)
  let late = send_vecadd h ~core:0 p in
  (match H.try_collect late with
  | H.Failed _ -> ()
  | _ -> Alcotest.fail "post-quarantine send did not fail promptly");
  let settled = ref false in
  H.on_settled late (fun r -> settled := Result.is_error r);
  check_bool "on_settled fires immediately with Error" true !settled

let test_ace_coherence_counted () =
  (* embedded platforms snoop on every fabric memory transaction *)
  let run platform =
    let design =
      Beethoven.Elaborate.elaborate (Kernels.Vecadd.config ()) platform
    in
    let soc =
      Beethoven.Soc.create design ~behaviors:(fun _ -> Kernels.Vecadd.behavior)
    in
    let h = H.create soc in
    let p = H.malloc h 4096 in
    ignore
      (H.await h
         (H.send h ~system:"VecAdd" ~core:0 ~cmd:Kernels.Vecadd.command
            ~args:
              [
                ("addend", 1L);
                ("vec_addr", Int64.of_int p.H.rp_addr);
                ("out_addr", Int64.of_int p.H.rp_addr);
                ("n_eles", 128L);
              ]));
    Beethoven.Soc.coherent_transactions soc
  in
  check_int "discrete platform: no snoops" 0 (run Platform.Device.aws_f1);
  check_bool "embedded platform: snoops counted" true
    (run Platform.Device.kria > 0)

(* ---- properties ---- *)

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:100 ~name arb f)

let props =
  [
    prop "allocator invariants hold under random alloc/free"
      QCheck.(list_of_size Gen.(1 -- 80) (pair bool (1 -- 20_000)))
      (fun ops ->
        let a = A.create ~size:(1 lsl 20) () in
        let live = ref [] in
        List.iter
          (fun (do_alloc, n) ->
            if do_alloc || !live = [] then (
              match A.alloc a n with
              | Some p -> live := p :: !live
              | None -> ())
            else
              match !live with
              | p :: rest ->
                  A.free a p;
                  live := rest
              | [] -> ())
          ops;
        A.check_invariants a);
    prop "allocations never overlap"
      QCheck.(list_of_size Gen.(2 -- 40) (1 -- 30_000))
      (fun sizes ->
        let a = A.create ~size:(4 lsl 20) () in
        let blocks =
          List.filter_map
            (fun n -> Option.map (fun p -> (p, n)) (A.alloc a n))
            sizes
        in
        let sorted = List.sort compare blocks in
        let rec ok = function
          | (p1, n1) :: ((p2, _) :: _ as rest) ->
              p1 + n1 <= p2 && ok rest
          | _ -> true
        in
        ok sorted);
  ]

let () =
  Alcotest.run "runtime"
    [
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "exhaustion/reuse" `Quick
            test_alloc_exhaustion_and_reuse;
          Alcotest.test_case "coalescing" `Quick test_alloc_coalescing;
          Alcotest.test_case "double free" `Quick test_alloc_double_free_rejected;
        ] );
      ( "handle",
        [
          Alcotest.test_case "malloc + dma" `Quick test_handle_malloc_dma;
          Alcotest.test_case "command roundtrip" `Quick
            test_handle_command_roundtrip;
          Alcotest.test_case "on_ready" `Quick test_on_ready_callback;
          Alcotest.test_case "server contention" `Quick test_server_contention;
          Alcotest.test_case "embedded kria path" `Quick test_embedded_kria_path;
          Alcotest.test_case "hugepage alignment" `Quick
            test_embedded_addresses_are_hugepage_aligned;
          Alcotest.test_case "ace coherence" `Quick test_ace_coherence_counted;
          Alcotest.test_case "quarantine reroutes in-flight" `Quick
            test_quarantine_reroutes_inflight;
          Alcotest.test_case "try_collect fails promptly" `Quick
            test_try_collect_prompt_fail_when_no_core_survives;
        ] );
      ("properties", props);
    ]
