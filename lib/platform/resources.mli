(** FPGA/ASIC resource vectors (the units of Table II). *)

type t = {
  clb : int;
  lut : int;
  ff : int;
  bram : int;  (** BRAM36 tiles *)
  uram : int;
  dsp : int;
}

val zero : t
val make : ?clb:int -> ?lut:int -> ?ff:int -> ?bram:int -> ?uram:int -> ?dsp:int -> unit -> t
val add : t -> t -> t
val sub : t -> t -> t
(** May go negative; use {!fits} to check capacity. *)

val scale : t -> int -> t
val sum : t list -> t
val fits : t -> cap:t -> bool
val utilization : t -> cap:t -> (string * float) list
(** Fraction used per resource class (skips classes with zero capacity). *)

val max_utilization : t -> cap:t -> float
val pp : Format.formatter -> t -> unit
val to_row : t -> string list
(** [clb; lut; ff; bram; uram] formatted with K-suffixes, for tables. *)
