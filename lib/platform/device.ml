type kind = Fpga_discrete | Fpga_embedded | Asic | Simulation

type slr = {
  slr_index : int;
  capacity : Resources.t;
  shell : Resources.t;
}

type host_link = {
  mmio_latency_ps : int;
  dma_bandwidth_gbs : float;
  dma_setup_ps : int;
  shared_address_space : bool;
}

type t = {
  name : string;
  kind : kind;
  slrs : slr list;
  fabric_clock_ps : int;
  dram : Dram.Config.t;
  axi : Axi.Params.t;
  noc : Noc.Params.t;
  host : host_link;
  memory_spill_threshold : float;
  sram_library : Sram.macro list option;
}

(* VU9P: one of three identical SLRs. *)
let vu9p_slr_capacity =
  Resources.make ~clb:49260 ~lut:394080 ~ff:788160 ~bram:720 ~uram:320
    ~dsp:2280 ()

(* The F1 shell footprint (Table II: Total minus Beethoven partition),
   placed mostly on SLR0 with spill onto SLR1. *)
let f1_shell_slr0 =
  Resources.make ~clb:22000 ~lut:105000 ~ff:145000 ~bram:100 ~uram:30 ()

let f1_shell_slr1 =
  Resources.make ~clb:9000 ~lut:45000 ~ff:61000 ~bram:40 ~uram:13 ()

let aws_f1 =
  {
    name = "AWS F1 (Alveo U200 / VU9P)";
    kind = Fpga_discrete;
    slrs =
      [
        { slr_index = 0; capacity = vu9p_slr_capacity; shell = f1_shell_slr0 };
        { slr_index = 1; capacity = vu9p_slr_capacity; shell = f1_shell_slr1 };
        { slr_index = 2; capacity = vu9p_slr_capacity; shell = Resources.zero };
      ];
    fabric_clock_ps = 4000 (* 250 MHz *);
    dram = Dram.Config.ddr4_2400_quad;
    axi = Axi.Params.aws_f1;
    noc = Noc.Params.default ~clock_ps:4000;
    host =
      {
        mmio_latency_ps = 1_000_000 (* ~1 us PCIe MMIO round trip *);
        dma_bandwidth_gbs = 12.0 (* PCIe gen3 x16 effective *);
        dma_setup_ps = 5_000_000;
        shared_address_space = false;
      };
    memory_spill_threshold = 0.8;
    sram_library = None;
  }

(* The on-prem XDMA shell is much leaner than the F1 shell: static region
   plus the DMA engine on SLR1 only. *)
let u200_shell_slr1 =
  Resources.make ~clb:12000 ~lut:60000 ~ff:90000 ~bram:60 ~uram:20 ()

let u200 =
  {
    aws_f1 with
    name = "Alveo U200 (on-prem, XDMA shell)";
    slrs =
      [
        { slr_index = 0; capacity = vu9p_slr_capacity; shell = Resources.zero };
        { slr_index = 1; capacity = vu9p_slr_capacity; shell = u200_shell_slr1 };
        { slr_index = 2; capacity = vu9p_slr_capacity; shell = Resources.zero };
      ];
    fabric_clock_ps = 3333 (* 300 MHz kernel clock *);
    noc = Noc.Params.default ~clock_ps:3333;
    host =
      {
        mmio_latency_ps = 800_000 (* local PCIe, no virtualization hop *);
        dma_bandwidth_gbs = 13.0;
        dma_setup_ps = 4_000_000;
        shared_address_space = false;
      };
  }

let kria =
  {
    name = "Kria KV260 (Zynq UltraScale+)";
    kind = Fpga_embedded;
    slrs =
      [
        {
          slr_index = 0;
          capacity =
            Resources.make ~clb:14760 ~lut:117120 ~ff:234240 ~bram:144
              ~uram:64 ~dsp:1248 ();
          shell = Resources.make ~clb:800 ~lut:4000 ~ff:6000 ~bram:4 ();
        };
      ];
    fabric_clock_ps = 8000 (* 125 MHz default *);
    dram = Dram.Config.ddr4_2400;
    axi = Axi.Params.kria;
    noc = Noc.Params.default ~clock_ps:8000;
    host =
      {
        mmio_latency_ps = 200_000 (* on-die MMIO *);
        dma_bandwidth_gbs = 0. (* unused: shared address space *);
        dma_setup_ps = 0;
        shared_address_space = true;
      };
    memory_spill_threshold = 0.8;
    sram_library = None;
  }

let asap7 =
  {
    name = "ASIC (ASAP7-class)";
    kind = Asic;
    slrs =
      [
        {
          slr_index = 0;
          (* ASIC resources are unconstrained at this altitude; memory is
             the real constraint, handled by the SRAM compiler. *)
          capacity =
            Resources.make ~clb:max_int ~lut:max_int ~ff:max_int
              ~bram:max_int ~uram:max_int ~dsp:max_int ();
          shell = Resources.zero;
        };
      ];
    fabric_clock_ps = 1000 (* 1 GHz *);
    dram = Dram.Config.ddr4_2400;
    axi = Axi.Params.aws_f1;
    noc = Noc.Params.default ~clock_ps:1000;
    host =
      {
        mmio_latency_ps = 100_000;
        dma_bandwidth_gbs = 0.;
        dma_setup_ps = 0;
        shared_address_space = true;
      };
    memory_spill_threshold = 1.0;
    sram_library = Some Sram.asap7_library;
  }

(* ChipKIT-style test chip: an on-die ARM M0-class CPU drives the fabric
   directly (no external host IOs to declare) — the paper's third
   platform family. The M0 core itself is user-provided for licensing
   reasons; only its interface timing matters here. *)
let chipkit =
  {
    asap7 with
    name = "ChipKIT test chip (ASAP7, on-die M0)";
    fabric_clock_ps = 2500 (* 400 MHz test-chip clock *);
    noc = Noc.Params.default ~clock_ps:2500;
    host =
      {
        mmio_latency_ps = 20_000 (* a few on-die bus cycles *);
        dma_bandwidth_gbs = 0.;
        dma_setup_ps = 0;
        shared_address_space = true;
      };
  }

(* Synopsys educational PDK flow: same composer path as ASAP7 with the
   32-nm-class SRAM macros and a slower clock target. *)
let saed32 =
  {
    asap7 with
    name = "ASIC (Synopsys SAED32-class)";
    fabric_clock_ps = 2000 (* 500 MHz *);
    noc = Noc.Params.default ~clock_ps:2000;
    sram_library = Some Sram.saed32_library;
  }

let sim =
  {
    aws_f1 with
    name = "Simulation (Verilator-class)";
    kind = Simulation;
    host =
      {
        mmio_latency_ps = 40_000;
        dma_bandwidth_gbs = 100.;
        dma_setup_ps = 0;
        shared_address_space = false;
      };
  }

let total_capacity t =
  Resources.sum (List.map (fun s -> s.capacity) t.slrs)

let total_shell t = Resources.sum (List.map (fun s -> s.shell) t.slrs)
let n_slrs t = List.length t.slrs

let slr_exn t i =
  match List.find_opt (fun s -> s.slr_index = i) t.slrs with
  | Some s -> s
  | None -> invalid_arg "Platform.slr_exn: no such SLR"

let fabric_freq_mhz t = 1.0e6 /. float_of_int t.fabric_clock_ps
let core_clock_cycles_to_ps t cycles = cycles * t.fabric_clock_ps

module Power = struct
  (* Calibrated against the paper's 23-core A3 design: 24 W average power
     and 1.84 uJ/op at 16.59 M op/s (which implies ~30 W under load); the
     model lands between the two figures. *)
  let fpga_watts (r : Resources.t) ~freq_mhz =
    let f = freq_mhz /. 250. in
    let dynamic =
      (float_of_int r.Resources.lut *. 25e-6)
      +. (float_of_int r.Resources.ff *. 2e-6)
      +. (float_of_int r.Resources.bram *. 4e-3)
      +. (float_of_int r.Resources.uram *. 6e-3)
      +. (float_of_int r.Resources.dsp *. 0.5e-3)
    in
    4.0 +. (dynamic *. f)

  let asic_watts ~area_um2 ~freq_mhz =
    (* ~0.15 W/mm^2 static-ish + dynamic scaling; coarse but monotone *)
    let mm2 = area_um2 /. 1.0e6 in
    (0.05 *. mm2) +. (0.25 *. mm2 *. (freq_mhz /. 1000.))
end
