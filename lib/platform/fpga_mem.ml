type cell = Bram | Uram | Lutram
type choice = { cell : cell; count : int }

let bram_bits = 36 * 1024
let uram_bits = 288 * 1024

(* largest request realized as distributed RAM (LUTRAM) instead of block
   cells; also the async-read budget the netlist linter checks against *)
let lutram_max_bits = 1024

let cdiv a b = ((a - 1) / b) + 1

(* BRAM36 aspect ratios (width x depth). *)
let bram_aspects = [ (72, 512); (36, 1024); (18, 2048); (9, 4096); (4, 8192); (2, 16384); (1, 32768) ]

let brams_for ~width_bits ~depth =
  if width_bits <= 0 || depth <= 0 then invalid_arg "Fpga_mem.brams_for";
  List.fold_left
    (fun best (w, d) ->
      let n = cdiv width_bits w * cdiv depth d in
      min best n)
    max_int bram_aspects

let urams_for ~width_bits ~depth =
  if width_bits <= 0 || depth <= 0 then invalid_arg "Fpga_mem.urams_for";
  cdiv width_bits 72 * cdiv depth 4096

let preferred ~width_bits ~depth =
  if width_bits * depth <= lutram_max_bits then { cell = Lutram; count = 0 }
  else begin
    let nb = brams_for ~width_bits ~depth in
    let nu = urams_for ~width_bits ~depth in
    (* compare by storage bits consumed; on a tie the URAM mapping wins
       (fewer, denser cells) *)
    if nu * uram_bits <= nb * bram_bits then { cell = Uram; count = nu }
    else { cell = Bram; count = nb }
  end

let choose ~width_bits ~depth ~bram_used ~bram_avail ~uram_used ~uram_avail
    ?(spill_threshold = 0.8) () =
  let pref = preferred ~width_bits ~depth in
  match pref.cell with
  | Lutram -> pref
  | _ ->
      let frac used avail add =
        if avail = 0 then infinity
        else float_of_int (used + add) /. float_of_int avail
      in
      let nb = brams_for ~width_bits ~depth in
      let nu = urams_for ~width_bits ~depth in
      let bram_frac = frac bram_used bram_avail nb in
      let uram_frac = frac uram_used uram_avail nu in
      let alt =
        match pref.cell with
        | Bram -> { cell = Uram; count = nu }
        | Uram | Lutram -> { cell = Bram; count = nb }
      in
      let pref_frac =
        match pref.cell with Bram -> bram_frac | _ -> uram_frac
      in
      let alt_frac = match alt.cell with Bram -> bram_frac | _ -> uram_frac in
      if pref_frac <= spill_threshold then pref
      else if alt_frac <= spill_threshold then alt
      else if pref_frac <= alt_frac then pref
      else alt
