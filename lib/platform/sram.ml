type macro = {
  macro_name : string;
  words : int;
  bits : int;
  area_um2 : float;
  access_ps : int;
}

let m name words bits area access_ps =
  { macro_name = name; words; bits; area_um2 = area; access_ps }

(* Area figures follow the usual sqrt-ish scaling of real compilers: bigger
   macros amortize periphery, so bits/um^2 improves with size. *)
let asap7_library =
  [
    m "sram_asap7_64x32" 64 32 450. 180;
    m "sram_asap7_256x32" 256 32 1100. 220;
    m "sram_asap7_256x64" 256 64 1900. 240;
    m "sram_asap7_1024x32" 1024 32 3400. 300;
    m "sram_asap7_1024x64" 1024 64 6100. 320;
    m "sram_asap7_4096x32" 4096 32 12200. 420;
    m "sram_asap7_4096x64" 4096 64 22800. 450;
  ]

let saed32_library =
  [
    m "sram_saed32_128x32" 128 32 5200. 600;
    m "sram_saed32_512x32" 512 32 16500. 750;
    m "sram_saed32_512x64" 512 64 30500. 800;
    m "sram_saed32_2048x32" 2048 32 58000. 950;
    m "sram_saed32_2048x64" 2048 64 109000. 1000;
  ]

type plan = {
  macro : macro;
  banks : int;
  cascade : int;
  total_area_um2 : float;
  overhead_bits : int;
}

let cdiv a b = ((a - 1) / b) + 1

let compile ~library ~width_bits ~depth =
  if library = [] then invalid_arg "Sram.compile: empty library";
  if width_bits <= 0 || depth <= 0 then invalid_arg "Sram.compile: dimensions";
  let plan_for macro =
    let cascade = cdiv width_bits macro.bits in
    let banks = cdiv depth macro.words in
    let n = cascade * banks in
    {
      macro;
      banks;
      cascade;
      total_area_um2 = float_of_int n *. macro.area_um2;
      overhead_bits = (n * macro.words * macro.bits) - (width_bits * depth);
    }
  in
  List.fold_left
    (fun best macro ->
      let p = plan_for macro in
      match best with
      | None -> Some p
      | Some b -> if p.total_area_um2 < b.total_area_um2 then Some p else best)
    None library
  |> Option.get

let describe p =
  Printf.sprintf "%d bank(s) x %d cascaded %s (%.0f um^2, %d overhead bits)"
    p.banks p.cascade p.macro.macro_name p.total_area_um2 p.overhead_bits
