(** Target platform descriptions — the information a platform developer
    provides to Beethoven (§II-B "Platform Development"): device kind,
    per-die resources and shell footprint, external memory configuration,
    host-link characteristics, and interconnect elaboration knobs. *)

type kind = Fpga_discrete | Fpga_embedded | Asic | Simulation

type slr = {
  slr_index : int;
  capacity : Resources.t;
  shell : Resources.t;  (** resources pre-consumed by the platform shell *)
}

type host_link = {
  mmio_latency_ps : int;  (** one host MMIO access *)
  dma_bandwidth_gbs : float;  (** host<->device copies (PCIe or on-die) *)
  dma_setup_ps : int;
  shared_address_space : bool;  (** embedded platforms: no copies needed *)
}

type t = {
  name : string;
  kind : kind;
  slrs : slr list;
  fabric_clock_ps : int;
  dram : Dram.Config.t;
  axi : Axi.Params.t;
  noc : Noc.Params.t;
  host : host_link;
  memory_spill_threshold : float;  (** BRAM/URAM spill point (0.8) *)
  sram_library : Sram.macro list option;  (** ASIC platforms only *)
}

val aws_f1 : t
(** Alveo U200 (VU9P, 3 SLRs) on an AWS F1 instance: discrete, PCIe,
    250 MHz fabric, 4-channel DDR4, shell on SLR0/1. *)

val u200 : t
(** Alveo U200 on-prem (XDMA shell): same VU9P die as {!aws_f1} but a
    leaner shell (SLR1 only), a 300 MHz kernel clock, and a local PCIe
    link without the virtualization hop — the second discrete flavor a
    heterogeneous cluster mixes with F1 instances. *)

val kria : t
(** Kria KV260 (Zynq UltraScale+): embedded, shared address space, single
    SLR, one DDR4 channel. *)

val asap7 : t
(** ASIC flow against the ASAP7-class SRAM library, 1 GHz target. *)

val chipkit : t
(** ChipKIT-style test chip: ASAP7 flow with an on-die M0-class host (the
    CPU source is user-provided; only its interface is modelled). *)

val saed32 : t
(** Synopsys educational PDK flow (SAED32-class SRAM macros, 500 MHz). *)

val sim : t
(** Simulation platform: U200-like device, ideal host link. *)

val total_capacity : t -> Resources.t
val total_shell : t -> Resources.t
val n_slrs : t -> int
val slr_exn : t -> int -> slr
val fabric_freq_mhz : t -> float

val core_clock_cycles_to_ps : t -> int -> int
(** Convert fabric cycles to simulation picoseconds. *)

module Power : sig
  val fpga_watts : Resources.t -> freq_mhz:float -> float
  (** Activity-based FPGA power estimate: static + per-resource dynamic
      term scaled by clock frequency. *)

  val asic_watts : area_um2:float -> freq_mhz:float -> float
end
