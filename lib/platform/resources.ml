type t = {
  clb : int;
  lut : int;
  ff : int;
  bram : int;
  uram : int;
  dsp : int;
}

let zero = { clb = 0; lut = 0; ff = 0; bram = 0; uram = 0; dsp = 0 }

let make ?(clb = 0) ?(lut = 0) ?(ff = 0) ?(bram = 0) ?(uram = 0) ?(dsp = 0) () =
  { clb; lut; ff; bram; uram; dsp }

let add a b =
  {
    clb = a.clb + b.clb;
    lut = a.lut + b.lut;
    ff = a.ff + b.ff;
    bram = a.bram + b.bram;
    uram = a.uram + b.uram;
    dsp = a.dsp + b.dsp;
  }

let sub a b =
  {
    clb = a.clb - b.clb;
    lut = a.lut - b.lut;
    ff = a.ff - b.ff;
    bram = a.bram - b.bram;
    uram = a.uram - b.uram;
    dsp = a.dsp - b.dsp;
  }

let scale a k =
  {
    clb = a.clb * k;
    lut = a.lut * k;
    ff = a.ff * k;
    bram = a.bram * k;
    uram = a.uram * k;
    dsp = a.dsp * k;
  }

let sum = List.fold_left add zero

let fits a ~cap =
  a.clb <= cap.clb && a.lut <= cap.lut && a.ff <= cap.ff && a.bram <= cap.bram
  && a.uram <= cap.uram && a.dsp <= cap.dsp

let utilization a ~cap =
  let f used capacity = float_of_int used /. float_of_int capacity in
  List.filter_map
    (fun (name, used, capacity) ->
      if capacity = 0 then None else Some (name, f used capacity))
    [
      ("CLB", a.clb, cap.clb);
      ("LUT", a.lut, cap.lut);
      ("FF", a.ff, cap.ff);
      ("BRAM", a.bram, cap.bram);
      ("URAM", a.uram, cap.uram);
      ("DSP", a.dsp, cap.dsp);
    ]

let max_utilization a ~cap =
  List.fold_left (fun acc (_, u) -> Float.max acc u) 0. (utilization a ~cap)

let fmt_k n =
  if n >= 10_000 then Printf.sprintf "%.0fK" (float_of_int n /. 1000.)
  else if n >= 1_000 then Printf.sprintf "%.1fK" (float_of_int n /. 1000.)
  else string_of_int n

let to_row a = [ fmt_k a.clb; fmt_k a.lut; fmt_k a.ff; fmt_k a.bram; fmt_k a.uram ]

let pp fmt a =
  Format.fprintf fmt "{clb=%d lut=%d ff=%d bram=%d uram=%d dsp=%d}" a.clb a.lut
    a.ff a.bram a.uram a.dsp
