(** ASIC SRAM memory compiler.

    Technology libraries ship a fixed set of SRAM macros; a requested
    memory must be assembled by banking (parallel macros selected by high
    address bits) and cascading (widening the word by placing macros side
    by side). Beethoven provides this "memory compiler-like utility" for
    its ASIC backends (ASAP7, Synopsys educational PDK); this module
    implements it with an area-minimizing macro selection. *)

type macro = {
  macro_name : string;
  words : int;
  bits : int;  (** word width *)
  area_um2 : float;
  access_ps : int;
}

val asap7_library : macro list
(** A representative 7-nm-class macro set. *)

val saed32_library : macro list
(** Synopsys educational 32-nm-class macro set (larger, slower). *)

type plan = {
  macro : macro;
  banks : int;  (** depth-wise replication *)
  cascade : int;  (** width-wise replication *)
  total_area_um2 : float;
  overhead_bits : int;  (** allocated minus requested storage *)
}

val compile : library:macro list -> width_bits:int -> depth:int -> plan
(** Pick the macro and arrangement minimizing total area. Raises
    [Invalid_argument] on an empty library or non-positive dimensions. *)

val describe : plan -> string
