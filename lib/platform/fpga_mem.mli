(** On-chip memory cell mapping for UltraScale+ FPGAs.

    Maps a (width × depth) memory request onto BRAM36 or URAM cells. The
    composer tracks per-SLR utilization during elaboration and spills to the
    other cell type once the preferred one exceeds the spill threshold
    (80 % in the paper) — the mechanism behind Table II's mixed
    BRAM/URAM Value scratchpads. *)

type cell = Bram | Uram | Lutram

val bram_bits : int (** 36 Kb *)

val uram_bits : int (** 288 Kb *)

val lutram_max_bits : int
(** Largest request (in bits) realized as distributed RAM; beyond this the
    composer uses BRAM/URAM, whose reads are synchronous — the figure the
    netlist linter's [async-read-mapping] rule checks against. *)

val brams_for : width_bits:int -> depth:int -> int
(** Minimum BRAM36 count over the supported aspect ratios
    (72x512, 36x1024, 18x2048, 9x4096, ...). *)

val urams_for : width_bits:int -> depth:int -> int
(** URAMs are fixed 72 x 4096. *)

type choice = { cell : cell; count : int }

val preferred : width_bits:int -> depth:int -> choice
(** Cheapest mapping by storage-bit cost, ignoring utilization. Requests of
    at most 1 Kb map to LUTRAM. *)

val choose :
  width_bits:int ->
  depth:int ->
  bram_used:int ->
  bram_avail:int ->
  uram_used:int ->
  uram_avail:int ->
  ?spill_threshold:float ->
  unit ->
  choice
(** The utilization-aware policy: take the preferred mapping unless it would
    push that cell type past [spill_threshold] (default 0.8) of the SLR's
    capacity while the alternative stays under it. *)
