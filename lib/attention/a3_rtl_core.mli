(** The complete A³ core as a single RTL netlist, runnable inside the
    composed SoC through {!Beethoven.Rtl_core}.

    All three Fig. 7 stages plus control: the 64-lane dot-product unit
    with running max (stage 1), the exp-LUT softmax with the weight-sum
    reduction (stage 2), the 64-lane weighted value accumulation
    (stage 3), and normalization through a shared sequential
    {!Hw.Divider} — every arithmetic result in the output is computed by
    this netlist, bit-exact with {!A3.attend_fixed}. The core processes
    one query at a time (the un-pipelined "low-effort" variant; the
    pipelined TLM model in {!Accel} is the throughput design point).

    Commands: funct 0 = [load_kv] (scratchpad fill, serviced by the
    composer's Scratchpad machinery); funct 1 = [attend] with
    payload1 = query address, payload2 = output address (32 b) |
    n_queries << 32. *)

val attend_command : Beethoven.Cmd_spec.command
val circuit : unit -> Hw.Circuit.t
val config : ?n_cores:int -> unit -> Beethoven.Config.t

val behavior : Beethoven.Soc.behavior
(** Dispatches funct 0 to the scratchpad-init path and funct 1 into the
    netlist. *)

type result = {
  verified : bool;  (** outputs bit-exact vs {!A3.attend_fixed} *)
  n_queries : int;
  wall_ps : int;
  cycles_per_query : float;
}

val run :
  ?n_queries:int ->
  ?n_cores:int ->
  platform:Platform.Device.t ->
  unit ->
  result
