let dim = 64
let n_keys = 320
let operand_scale = 1.0 /. 16.0

let quantize f =
  let v = int_of_float (Float.round (f /. operand_scale)) in
  max (-128) (min 127 v)

let dequantize v = float_of_int v *. operand_scale

(* exp(-x) for x in Q4.4 steps (0 .. 255 -> 0 .. 15.94), Q1.15 results. *)
let exp_lut =
  Array.init 256 (fun i ->
      int_of_float
        (Float.round (32768.0 *. Float.exp (-.float_of_int i /. 16.0))))

let check_dims ~query ~keys ~values =
  if Array.length query <> dim then invalid_arg "A3: query dimension";
  if Array.length keys <> n_keys || Array.length values <> n_keys then
    invalid_arg "A3: key/value row count";
  Array.iter
    (fun r -> if Array.length r <> dim then invalid_arg "A3: row width")
    keys;
  Array.iter
    (fun r -> if Array.length r <> dim then invalid_arg "A3: row width")
    values

(* Stage 1: integer dot products, running max (the first global
   reduction). Scores are "logits" in units of operand_scale^2. *)
let stage1_scores ~query ~keys =
  Array.map
    (fun key ->
      let acc = ref 0 in
      for d = 0 to dim - 1 do
        acc := !acc + (query.(d) * key.(d))
      done;
      !acc)
    keys

(* Stage 2: softmax weights via the exp LUT. The exponent argument is
   (max - score) * scale^2, converted to the LUT's Q4.4 domain. *)
let stage2_weights scores =
  let m = Array.fold_left max min_int scores in
  let scale2 = operand_scale *. operand_scale in
  Array.map
    (fun s ->
      let x = float_of_int (m - s) *. scale2 in
      let idx = int_of_float (Float.round (x *. 16.0)) in
      if idx > 255 then 0 else exp_lut.(idx))
    scores

(* Stage 3: weighted value reduction, normalized by the weight total. *)
let stage3_output ~weights ~values =
  let wsum = Array.fold_left ( + ) 0 weights in
  Array.init dim (fun d ->
      let acc = ref 0 in
      for i = 0 to n_keys - 1 do
        acc := !acc + (weights.(i) * values.(i).(d))
      done;
      (* round-to-nearest division *)
      let v =
        if wsum = 0 then 0
        else (!acc + (wsum / 2)) / wsum
      in
      max (-128) (min 127 v))

let attend_fixed ~query ~keys ~values =
  check_dims ~query ~keys ~values;
  let scores = stage1_scores ~query ~keys in
  let weights = stage2_weights scores in
  stage3_output ~weights ~values

let attend_float ~query ~keys ~values =
  if Array.length query <> dim then invalid_arg "A3: query dimension";
  let scores =
    Array.map
      (fun key ->
        let acc = ref 0.0 in
        for d = 0 to dim - 1 do
          acc := !acc +. (query.(d) *. key.(d))
        done;
        !acc)
      keys
  in
  let m = Array.fold_left Float.max neg_infinity scores in
  let ws = Array.map (fun s -> Float.exp (s -. m)) scores in
  let wsum = Array.fold_left ( +. ) 0.0 ws in
  Array.init dim (fun d ->
      let acc = ref 0.0 in
      Array.iteri (fun i w -> acc := !acc +. (w *. values.(i).(d))) ws;
      !acc /. wsum)

let mean_abs_error fixed float_out =
  let n = Array.length float_out in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (dequantize fixed.(i) -. float_out.(i))
  done;
  !acc /. float_of_int n

let issue_interval_cycles = 340
let pipeline_latency_cycles = 420
