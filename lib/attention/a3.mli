(** Functional model of the A³ approximate-attention pipeline (the case
    study of §III-C), parameterized for BERT: 64-dimensional embeddings,
    320-row key/value matrices, 1-byte fixed-point operands with wider
    intermediates.

    The three coarse stages of Fig. 7 are modelled bit-exactly:
    (1) query×key dot products with a running-max reduction, staged
    through a FIFO; (2) softmax via a fixed-point exp lookup table after
    the first global reduction; (3) the weighted value-matrix reduction.
    A float reference implements exact attention on the dequantized
    operands for accuracy checks. *)

val dim : int (** 64 *)

val n_keys : int (** 320 *)

(** Operands are Q3.4 fixed point (scale 1/16, range [-8, 8)). *)
val operand_scale : float

val quantize : float -> int
(** Saturating to int8 Q3.4. *)

val dequantize : int -> float

(** {1 Fixed-point pipeline} *)

val exp_lut : int array
(** 256-entry table: [exp_lut.(i)] = round(2^15 * exp(-i/16)) — the
    stage-2 exponentiation unit. *)

val stage1_scores : query:int array -> keys:int array array -> int array
(** Raw integer dot products (exposed for stage-level RTL verification). *)

val stage2_weights : int array -> int array
(** Scores → Q1.15 softmax weights via the exp LUT. *)

val attend_fixed : query:int array -> keys:int array array -> values:int array array -> int array
(** All operands int8-valued ints; result: [dim] outputs in int8 range.
    Raises [Invalid_argument] on dimension mismatches. *)

val attend_float : query:float array -> keys:float array array -> values:float array array -> float array
(** Exact softmax attention, the accuracy baseline. *)

val mean_abs_error : int array -> float array -> float
(** Mean |dequantized fixed output − float output| across dimensions. *)

(** {1 Pipeline timing constants} *)

val issue_interval_cycles : int
(** Cycles between successive queries entering the pipeline (stage-1 rate:
    one key row per cycle, plus reduction turnaround) = 340. *)

val pipeline_latency_cycles : int
(** Query-in to result-out latency. *)
