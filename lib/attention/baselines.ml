type row = {
  label : string;
  throughput_ops : float;
  avg_power_w : float option;
  energy_per_op_uj : float option;
}

let make label throughput power =
  {
    label;
    throughput_ops = throughput;
    avg_power_w = Some power;
    energy_per_op_uj = Some (power /. throughput *. 1.0e6);
  }

(* i7-12700K: 8P+4E cores; one attention op = 320x64 dot products + softmax
   + weighted sum ~ 2 * 2 * 320 * 64 FLOPs = 82k FLOPs. Effective FP32
   throughput with AVX2 on this mixed workload ~ 7 GFLOP/s sustained
   (memory-bound softmax, per-query batch-1 latency), giving the ~85 K
   ops/s the paper measured at 75 W package power. *)
let cpu = make "CPU (i7-12700K, FP32)" 84.8e3 75.0

(* RTX 3090 at batch 1024x18, FP16 tensor cores: utilization limited by
   the small per-head geometry (64x320); ~5 M ops/s at 320 W board
   power. *)
let gpu = make "GPU (RTX 3090, FP16)" 5.0e6 320.0

(* The original publication's single-core ASIC at 1 GHz: one query per
   ~340 cycles. Published as ideal throughput without a power figure. *)
let asic_1core =
  {
    label = "1-core ASIC @ 1 GHz (A3 paper)";
    throughput_ops = 1.0e9 /. float_of_int A3.issue_interval_cycles;
    avg_power_w = None;
    energy_per_op_uj = None;
  }

let fpga ~throughput_ops ~resources ~freq_mhz =
  let power = Platform.Device.Power.fpga_watts resources ~freq_mhz in
  {
    label = "Beethoven (multi-core FPGA @ 250 MHz)";
    throughput_ops;
    avg_power_w = Some power;
    energy_per_op_uj = Some (power /. throughput_ops *. 1.0e6);
  }

let table ~rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-38s %14s %12s %12s\n" "" "Thruput (op/s)" "E/op (uJ)"
       "Power (W)");
  List.iter
    (fun r ->
      let opt f = function None -> "-" | Some v -> Printf.sprintf f v in
      Buffer.add_string buf
        (Printf.sprintf "%-38s %14.3e %12s %12s\n" r.label r.throughput_ops
           (opt "%.2f" r.energy_per_op_uj)
           (opt "%.0f" r.avg_power_w)))
    rows;
  Buffer.contents buf
