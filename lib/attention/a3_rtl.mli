(** A³'s stage-1 datapath in real RTL: a 64-lane signed int8 dot-product
    unit with the running-max reduction (the first global reduction of
    Fig. 7), written in the {!Hw} DSL. One key row per cycle at full
    width — the element the case study's throughput model rests on,
    demonstrated here at netlist level.

    Ports: input [load_q]:1 with [q_row]:512 latches the query; input
    [key_valid]:1 with [key_row]:512 streams key rows; input [clear]:1
    resets the running max. Outputs [score_valid]:1, [score]:24 (two's
    complement), [max_score]:24. *)

val dot_width : int (** score width, 24 bits: 64 * int8*int8 products *)

val circuit : unit -> Hw.Circuit.t

val stage2_circuit : unit -> Hw.Circuit.t
(** Stage 2: the exp-LUT softmax unit. Inputs [score_valid]:1,
    [score]:24, [max_score]:24, [clear]:1; outputs [weight_valid]:1,
    [weight]:16 (Q1.15), [wsum]:24 (the second global reduction, a running
    sum of the weights). The 256-entry LUT is elaborated as constant
    ROM logic, bit-exact with {!A3.exp_lut}. *)

val stage3_circuit : unit -> Hw.Circuit.t
(** Stage 3: the weighted value reduction. Inputs [w_valid]:1,
    [weight]:16, [v_row]:512, [clear]:1, [sel]:6; outputs [acc]:32 — the
    selected lane's signed accumulator (sum of weight x value over the
    rows streamed so far). Normalization by the weight total uses the
    shared {!Hw.Divider}. *)

(** Host-side helpers for driving the circuit in tests/benches. *)

val pack_row : int array -> Bits.t
(** 64 int8 values (lane 0 = least-significant byte) → 512-bit row. *)

val dot_reference : int array -> int array -> int
(** Signed reference for one row. *)
