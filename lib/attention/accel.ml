module B = Beethoven
module Soc = B.Soc
module R = Platform.Resources

let load_kv_command =
  B.Cmd_spec.make ~name:"load_kv" ~funct:0 ~response_bits:1
    [ ("k_addr", B.Cmd_spec.Address); ("v_addr", B.Cmd_spec.Address) ]

let attend_command =
  B.Cmd_spec.make ~name:"attend" ~funct:1 ~response_bits:32
    [
      ("q_addr", B.Cmd_spec.Address);
      ("out_addr", B.Cmd_spec.Address);
      ("n_queries", B.Cmd_spec.Uint 24);
    ]

(* One K or V row = 64 bytes; the scratchpads stage four batches of
   operands so the next batches' K/V can load during compute. *)
let row_bytes = A3.dim
let kv_bytes = A3.n_keys * row_bytes

let config ?(n_cores = 23) () =
  B.Config.make ~name:"a3_attention"
    [
      B.Config.system ~name:"A3" ~n_cores
        ~read_channels:
          [
            (* query stream; buffer sized per the paper's Query reader *)
            B.Config.read_channel ~name:"query" ~data_bytes:64
              ~buffer_beats:480 ();
          ]
        ~write_channels:
          [
            B.Config.write_channel ~name:"output" ~data_bytes:64
              ~buffer_beats:480 ();
          ]
        ~scratchpads:
          [
            B.Config.scratchpad ~name:"keys" ~data_bits:512
              ~n_datas:(4 * A3.n_keys) ~init_from_memory:true ();
            B.Config.scratchpad ~name:"values" ~data_bits:512
              ~n_datas:(4 * A3.n_keys) ~init_from_memory:true ();
          ]
        ~commands:[ load_kv_command; attend_command ]
          (* Table II kernel row: ~3K CLB, 16.9K LUT, 8.2K FF, 1 BRAM *)
        ~kernel_resources:(R.make ~clb:2100 ~lut:16900 ~ff:8200 ~bram:1 ())
        ();
    ]

let auto_cores platform =
  let fits n =
    match B.Floorplan.place (config ~n_cores:n ()) platform with
    | exception Failure _ -> false
    | _ -> true
  in
  let rec grow n = if n < 64 && fits (n + 1) then grow (n + 1) else n in
  if fits 1 then grow 1 else 0

(* Read an int8 row of [dim] operands from a bytes source. *)
let row_of_bytes b off =
  Array.init A3.dim (fun d ->
      let v = Char.code (Bytes.get b (off + d)) in
      if v >= 128 then v - 256 else v)

let behavior : Soc.behavior =
 fun ctx beats ~respond ->
  let cmd = List.hd beats in
  let soc = ctx.Soc.soc in
  match cmd.B.Rocc.funct with
  | 0 ->
      (* load_kv: fill both scratchpads from device memory *)
      let args =
        B.Cmd_spec.unpack load_kv_command
          (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
      in
      let k_addr = Int64.to_int (List.assoc "k_addr" args) in
      let v_addr = Int64.to_int (List.assoc "v_addr" args) in
      let keys_sp = Soc.scratchpad ctx "keys" in
      let values_sp = Soc.scratchpad ctx "values" in
      let pending = ref 2 in
      let arrive () =
        decr pending;
        if !pending = 0 then respond 1L
      in
      Soc.Scratchpad.init_from_memory keys_sp ~addr:k_addr ~bytes:kv_bytes
        ~on_done:arrive ();
      Soc.Scratchpad.init_from_memory values_sp ~addr:v_addr ~bytes:kv_bytes
        ~on_done:arrive ()
  | 1 ->
      (* attend: stream queries through the three-stage pipeline *)
      let args =
        B.Cmd_spec.unpack attend_command
          (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
      in
      let q_addr = Int64.to_int (List.assoc "q_addr" args) in
      let out_addr = Int64.to_int (List.assoc "out_addr" args) in
      let n_queries = Int64.to_int (List.assoc "n_queries" args) in
      let keys_sp = Soc.scratchpad ctx "keys" in
      let values_sp = Soc.scratchpad ctx "values" in
      (* materialize the stationary operands once per command *)
      let keys =
        Array.init A3.n_keys (fun i ->
            row_of_bytes (Soc.Scratchpad.get keys_sp i) 0)
      in
      let values =
        Array.init A3.n_keys (fun i ->
            row_of_bytes (Soc.Scratchpad.get values_sp i) 0)
      in
      let reader = Soc.reader ctx "query" in
      let writer = Soc.writer ctx "output" in
      let out_bytes = n_queries * row_bytes in
      Soc.Writer.begin_txn writer ~addr:out_addr ~bytes:out_bytes
        ~on_done:(fun () -> respond (Int64.of_int n_queries));
      (* pipeline occupancy: a query enters stage 1 every issue_interval
         cycles once its operand has arrived *)
      let stage_free = ref 0 in
      Soc.Reader.stream reader ~addr:q_addr ~bytes:out_bytes ~item_bytes:64
        ~on_item:(fun ~offset ->
          let qi = offset / row_bytes in
          let query =
            Array.init A3.dim (fun d ->
                let v = Soc.read_u8 soc (q_addr + offset + d) in
                if v >= 128 then v - 256 else v)
          in
          let now = Desim.Engine.now ctx.Soc.engine in
          let start = max now !stage_free in
          stage_free :=
            start + (A3.issue_interval_cycles * ctx.Soc.clock_ps);
          let finish =
            start + (A3.pipeline_latency_cycles * ctx.Soc.clock_ps)
          in
          Desim.Engine.schedule_at ctx.Soc.engine ~time:finish (fun () ->
              let out = A3.attend_fixed ~query ~keys ~values in
              Array.iteri
                (fun d v ->
                  Soc.write_u8 soc (out_addr + (qi * row_bytes) + d)
                    (v land 0xff))
                out;
              Soc.Writer.push writer ~on_accept:(fun () -> ()) ()))
        ~on_done:(fun () -> ())
        ()
  | f -> failwith (Printf.sprintf "A3: unknown funct %d" f)

type result = {
  n_cores : int;
  n_queries : int;
  wall_ps : int;
  throughput_ops : float;
  max_error : float;
  verified : bool;
}

let run ?(n_queries_per_core = 64) ?(n_cores = 23) ~platform () =
  let design = B.Elaborate.elaborate (config ~n_cores ()) platform in
  let soc = Soc.create design ~behaviors:(fun _ -> behavior) in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let rand =
    let state = ref 42 in
    fun () ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state
  in
  let q8 () = (rand () mod 33) - 16 in
  (* per-core K/V and query buffers *)
  let core_data =
    Array.init n_cores (fun _ ->
        let keys =
          Array.init A3.n_keys (fun _ -> Array.init A3.dim (fun _ -> q8 ()))
        in
        let values =
          Array.init A3.n_keys (fun _ -> Array.init A3.dim (fun _ -> q8 ()))
        in
        let queries =
          Array.init n_queries_per_core (fun _ ->
              Array.init A3.dim (fun _ -> q8 ()))
        in
        (keys, values, queries))
  in
  let allocs =
    Array.map
      (fun (keys, values, queries) ->
        let pk = H.malloc handle kv_bytes in
        let pv = H.malloc handle kv_bytes in
        let pq = H.malloc handle (n_queries_per_core * row_bytes) in
        let po = H.malloc handle (n_queries_per_core * row_bytes) in
        let put buf rows =
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun d v ->
                  Bytes.set buf ((i * row_bytes) + d)
                    (Char.chr (v land 0xff)))
                row)
            rows
        in
        put (H.host_bytes handle pk) keys;
        put (H.host_bytes handle pv) values;
        put (H.host_bytes handle pq) queries;
        (pk, pv, pq, po))
      core_data
  in
  let pending = ref 0 in
  Array.iter
    (fun (pk, pv, pq, _) ->
      List.iter
        (fun p ->
          incr pending;
          H.copy_to_fpga handle p ~on_done:(fun () -> decr pending))
        [ pk; pv; pq ])
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "A3: input DMA incomplete";
  (* load K/V on every core *)
  let loads =
    Array.to_list
      (Array.mapi
         (fun core (pk, pv, _, _) ->
           H.send handle ~system:"A3" ~core ~cmd:load_kv_command
             ~args:
               [
                 ("k_addr", Int64.of_int pk.H.rp_addr);
                 ("v_addr", Int64.of_int pv.H.rp_addr);
               ])
         allocs)
  in
  ignore (H.await_all handle loads);
  (* attention phase *)
  let t1 = Desim.Engine.now (H.engine handle) in
  let runs =
    Array.to_list
      (Array.mapi
         (fun core (_, _, pq, po) ->
           H.send handle ~system:"A3" ~core ~cmd:attend_command
             ~args:
               [
                 ("q_addr", Int64.of_int pq.H.rp_addr);
                 ("out_addr", Int64.of_int po.H.rp_addr);
                 ("n_queries", Int64.of_int n_queries_per_core);
               ])
         allocs)
  in
  ignore (H.await_all handle runs);
  let t2 = Desim.Engine.now (H.engine handle) in
  (* collect + verify *)
  let pending = ref 0 in
  Array.iter
    (fun (_, _, _, po) ->
      incr pending;
      H.copy_from_fpga handle po ~on_done:(fun () -> decr pending))
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "A3: output DMA incomplete";
  let verified = ref true in
  let max_error = ref 0.0 in
  Array.iteri
    (fun core (keys, values, queries) ->
      let _, _, _, po = allocs.(core) in
      let out_host = H.host_bytes handle po in
      Array.iteri
        (fun qi query ->
          let expect = A3.attend_fixed ~query ~keys ~values in
          let got = row_of_bytes out_host (qi * row_bytes) in
          if got <> expect then verified := false;
          let float_ref =
            A3.attend_float
              ~query:(Array.map A3.dequantize query)
              ~keys:(Array.map (Array.map A3.dequantize) keys)
              ~values:(Array.map (Array.map A3.dequantize) values)
          in
          let err = A3.mean_abs_error got float_ref in
          if err > !max_error then max_error := err)
        queries)
    core_data;
  let n_queries = n_cores * n_queries_per_core in
  let wall_ps = t2 - t1 in
  {
    n_cores;
    n_queries;
    wall_ps;
    throughput_ops =
      float_of_int n_queries /. (float_of_int wall_ps *. 1e-12);
    max_error = !max_error;
    verified = !verified;
  }
