let lanes = 64
let dot_width = 24

let circuit () =
  let open Hw.Signal in
  let load_q = input "load_q" 1 in
  let q_row = input "q_row" (8 * lanes) in
  let key_valid = input "key_valid" 1 in
  let key_row = input "key_row" (8 * lanes) in
  let clear = input "clear" 1 in
  let q_reg = reg ~enable:load_q q_row in
  let lane i v = select v ~hi:((8 * i) + 7) ~lo:(8 * i) in
  (* signed int8 x int8: multiply the sign-extended 16-bit operands; the
     low 16 bits are the two's-complement product *)
  let products =
    List.init lanes (fun i ->
        sext (mul (sext (lane i q_reg) 16) (sext (lane i key_row) 16))
          dot_width)
  in
  (* balanced adder tree: log2(64) = 6 levels *)
  let rec tree = function
    | [] -> invalid_arg "empty tree"
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> add a b :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        tree (pair xs)
  in
  let score = tree products in
  (* pipeline register on the score (stage-1 output into the FIFO) *)
  let score_r = reg ~enable:key_valid score -- "score_r" in
  let score_valid = reg key_valid in
  (* running max over the signed scores: compare with the sign bit
     flipped, which orders two's-complement values correctly *)
  let flip x = x ^: sll (of_int ~width:dot_width 1) (dot_width - 1) in
  let neg_inf = sll (of_int ~width:dot_width 1) (dot_width - 1) in
  let max_reg = wire dot_width in
  let bigger = flip score_r >: flip max_reg in
  let next_max =
    mux2 clear neg_inf
      (mux2 (score_valid &: bigger) score_r max_reg)
  in
  assign max_reg (reg ~init:(Bits.shift_left (Bits.one dot_width) (dot_width - 1)) next_max);
  Hw.Circuit.create ~name:"a3_stage1"
    ~outputs:
      [
        ("score_valid", score_valid);
        ("score", score_r);
        ("max_score", max_reg);
      ]

let pack_row values =
  if Array.length values <> lanes then invalid_arg "A3_rtl.pack_row: 64 lanes";
  Bits.concat_list
    (List.init lanes (fun i ->
         Bits.of_signed_int ~width:8 values.(lanes - 1 - i)))

let dot_reference q k =
  let acc = ref 0 in
  for i = 0 to lanes - 1 do
    acc := !acc + (q.(i) * k.(i))
  done;
  !acc

(* Stage 2: softmax weights through the exp LUT, plus the running weight
   sum (the algorithm's second global reduction). *)
let stage2_circuit () =
  let open Hw.Signal in
  let score_valid = input "score_valid" 1 in
  let score = input "score" dot_width in
  let max_score = input "max_score" dot_width in
  let clear = input "clear" 1 in
  (* index = round((max - score) / 16), clamped to the table *)
  let diff = sub max_score score in
  let idx_wide = srl (add diff (of_int ~width:dot_width 8)) 4 in
  let over = idx_wide >=: of_int ~width:dot_width 256 in
  let idx = select idx_wide ~hi:7 ~lo:0 in
  (* the 256-entry ROM as constant logic, bit-exact with A3.exp_lut *)
  let rom =
    mux idx (List.init 256 (fun i -> of_int ~width:16 A3.exp_lut.(i)))
  in
  let weight_now = mux2 over (zero 16) rom in
  let weight = reg ~enable:score_valid weight_now -- "weight_r" in
  let weight_valid = reg score_valid in
  let wsum = wire dot_width in
  assign wsum
    (reg
       (mux2 clear (zero dot_width)
          (mux2 score_valid (add wsum (uresize weight_now dot_width)) wsum)));
  Hw.Circuit.create ~name:"a3_stage2"
    ~outputs:
      [ ("weight_valid", weight_valid); ("weight", weight); ("wsum", wsum) ]

(* Stage 3: 64 weighted-accumulate lanes over streamed value rows. *)
let stage3_circuit () =
  let open Hw.Signal in
  let w_valid = input "w_valid" 1 in
  let weight = input "weight" 16 in
  let v_row = input "v_row" (8 * lanes) in
  let clear = input "clear" 1 in
  let sel = input "sel" 6 in
  let lane_sig i v = select v ~hi:((8 * i) + 7) ~lo:(8 * i) in
  let accs =
    List.init lanes (fun i ->
        let acc = wire 32 in
        (* signed product: unsigned weight x signed int8, computed in
           two's complement at 32 bits *)
        let prod = mul (uresize weight 32) (sext (lane_sig i v_row) 32) in
        assign acc
          (reg
             (mux2 clear (zero 32) (mux2 w_valid (add acc prod) acc)));
        acc)
  in
  Hw.Circuit.create ~name:"a3_stage3"
    ~outputs:[ ("acc", mux sel accs) ]
