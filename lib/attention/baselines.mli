(** CPU / GPU / 1-core-ASIC comparison points for Table III.

    Roofline-style analytic models of the paper's baselines — an Intel
    i7-12700K (FP32, 12 cores) and an NVIDIA RTX 3090 (FP16, batch
    1024×18) — plus the original A³ single-core ASIC at 1 GHz. The FPGA
    row is measured by {!Accel.run}; its power comes from the activity
    model in {!Platform.Device.Power}. See DESIGN.md §4 for why analytic
    envelopes substitute for the physical baselines. *)

type row = {
  label : string;
  throughput_ops : float;  (** attention ops / second *)
  avg_power_w : float option;  (** None where the paper reports none *)
  energy_per_op_uj : float option;
}

val cpu : row
val gpu : row
val asic_1core : row

val fpga : throughput_ops:float -> resources:Platform.Resources.t -> freq_mhz:float -> row
(** Build the Beethoven row from a measured throughput and the elaborated
    design's resource vector. *)

val table : rows:row list -> string
