module B = Beethoven

let attend_command =
  B.Cmd_spec.make ~name:"attend" ~funct:1 ~response_bits:32
    [
      ("q_addr", B.Cmd_spec.Uint 64);
      ("out_addr", B.Cmd_spec.Uint 32);
      ("n_queries", B.Cmd_spec.Uint 16);
    ]

let lanes = A3.dim
let n_keys = A3.n_keys
let dotw = A3_rtl.dot_width

(* FSM states *)
let s_idle = 0
let s_waitq = 1
let s_dot = 2
let s_soft = 3
let s_acc = 4
let s_norm = 5
let s_emit = 6
let s_resp = 7

let circuit () =
  let open Hw.Signal in
  (* ---- ports ---- *)
  let req_valid = input "req_valid" 1 in
  let req_p1 = input "req_p1" 64 in
  let req_p2 = input "req_p2" 64 in
  let resp_ready = input "resp_ready" 1 in
  let q_req_ready = input "query_req_ready" 1 in
  let q_data_valid = input "query_data_valid" 1 in
  let q_data = input "query_data" 512 in
  let o_req_ready = input "output_req_ready" 1 in
  let o_data_ready = input "output_data_ready" 1 in
  let keys_rd_data = input "keys_rd_data" 512 in
  let values_rd_data = input "values_rd_data" 512 in

  let state = wire 3 in
  let in_state n = state ==: of_int ~width:3 n in

  (* ---- command handshake ---- *)
  let req_ready = in_state s_idle &: q_req_ready &: o_req_ready in
  let req_fire = req_valid &: req_ready in
  let n_queries = reg ~enable:req_fire (select req_p2 ~hi:47 ~lo:32) in
  let len_bytes =
    uresize (concat [ select req_p2 ~hi:47 ~lo:32; zero 6 ]) 32
  in

  (* ---- counters and data registers ---- *)
  let q_accept = in_state s_waitq &: q_data_valid in
  let q = reg ~enable:q_accept q_data -- "q_reg" in
  let i = wire 9 in
  let d = wire 6 in
  let i_last = i ==: of_int ~width:9 (n_keys - 1) in
  let d_last = d ==: of_int ~width:6 (lanes - 1) in

  (* ---- stage 1: dot product + running max ---- *)
  let lane_of v k = select v ~hi:((8 * k) + 7) ~lo:(8 * k) in
  let products =
    List.init lanes (fun k ->
        sext (mul (sext (lane_of q k) 16) (sext (lane_of keys_rd_data k) 16))
          dotw)
  in
  let rec tree = function
    | [] -> invalid_arg "empty"
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> add a b :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        tree (pair xs)
  in
  let dot = tree products -- "dot" in
  let flip x = x ^: sll (of_int ~width:dotw 1) (dotw - 1) in
  let neg_inf_b = Bits.shift_left (Bits.one dotw) (dotw - 1) in
  let max_r = wire dotw in
  let dot_bigger = flip dot >: flip max_r in
  assign max_r
    (reg
       ~init:neg_inf_b
       (mux2 q_accept (const neg_inf_b)
          (mux2 (in_state s_dot &: dot_bigger) dot max_r)));

  let score_mem = Mem.create ~name:"scores" ~size:n_keys ~width:dotw () in
  Mem.write score_mem ~enable:(in_state s_dot) ~addr:i ~data:dot;

  (* ---- stage 2: exp LUT + weight sum ---- *)
  let score_i = Mem.read_async score_mem ~addr:i in
  let diff = sub max_r score_i in
  let idx_wide = srl (add diff (of_int ~width:dotw 8)) 4 in
  let over = idx_wide >=: of_int ~width:dotw 256 in
  let rom =
    mux (select idx_wide ~hi:7 ~lo:0)
      (List.init 256 (fun k -> of_int ~width:16 A3.exp_lut.(k)))
  in
  let weight_now = mux2 over (zero 16) rom -- "weight_now" in
  let weight_mem = Mem.create ~name:"weights" ~size:n_keys ~width:16 () in
  Mem.write weight_mem ~enable:(in_state s_soft) ~addr:i ~data:weight_now;
  let wsum = wire dotw in
  assign wsum
    (reg
       (mux2 q_accept (zero dotw)
          (mux2 (in_state s_soft) (add wsum (uresize weight_now dotw)) wsum)));

  (* ---- stage 3: weighted value accumulation ---- *)
  let weight_i = Mem.read_async weight_mem ~addr:i in
  let accs =
    List.init lanes (fun k ->
        let acc = wire 32 in
        let prod =
          mul (uresize weight_i 32) (sext (lane_of values_rd_data k) 32)
        in
        assign acc
          (reg
             (mux2 q_accept (zero 32)
                (mux2 (in_state s_acc) (add acc prod) acc)));
        acc)
  in

  (* ---- normalization: shared sequential divider ---- *)
  let div = Hw.Divider.create ~width:32 () in
  let acc_d = mux d accs in
  let num = add acc_d (uresize (srl wsum 1) 32) in
  let num_neg = msb num in
  let mag = mux2 num_neg (sub (zero 32) num) num in
  let issued = wire 1 in
  let div_start = in_state s_norm &: lnot issued &: lnot div.Hw.Divider.busy in
  assign div.Hw.Divider.start div_start;
  assign div.Hw.Divider.dividend mag;
  assign div.Hw.Divider.divisor (uresize wsum 32);
  let sign_r = reg ~enable:div_start num_neg in
  assign issued
    (reg (mux2 div_start vdd (mux2 div.Hw.Divider.done_ gnd issued)));
  let quot = div.Hw.Divider.quotient in
  (* clamp to int8: negative results floor at -128, positive cap at 127 *)
  let q8 = select quot ~hi:7 ~lo:0 in
  let too_big_pos = quot >=: of_int ~width:32 127 in
  let too_big_neg = quot >=: of_int ~width:32 129 in
  let byte =
    mux2 sign_r
      (mux2 too_big_neg (of_int ~width:8 0x80) (sub (zero 8) q8))
      (mux2 too_big_pos (of_int ~width:8 0x7F) q8)
  in
  let out_bytes =
    List.init lanes (fun k ->
        reg
          ~enable:
            (in_state s_norm &: div.Hw.Divider.done_
            &: (d ==: of_int ~width:6 k))
          byte)
  in
  let out_row = concat (List.rev out_bytes) in

  (* ---- counters ---- *)
  let i_step = in_state s_dot |: in_state s_soft |: in_state s_acc in
  assign i
    (reg
       (mux2 q_accept (zero 9)
          (mux2 (i_step &: i_last) (zero 9)
             (mux2 i_step (i +: of_int ~width:9 1) i))));
  let d_step = in_state s_norm &: div.Hw.Divider.done_ in
  assign d
    (reg
       (mux2 q_accept (zero 6) (mux2 d_step (d +: of_int ~width:6 1) d)));

  (* ---- query bookkeeping ---- *)
  let emit_fire = in_state s_emit &: o_data_ready in
  let q_done = wire 16 in
  assign q_done
    (reg
       (mux2 req_fire (zero 16)
          (mux2 emit_fire (q_done +: of_int ~width:16 1) q_done)));
  let last_query = q_done ==: (n_queries -: of_int ~width:16 1) in

  (* ---- FSM ---- *)
  let resp_fire = in_state s_resp &: resp_ready in
  let next_state =
    mux state
      [
        (* IDLE *) mux2 req_fire (of_int ~width:3 s_waitq) (of_int ~width:3 s_idle);
        (* WAITQ *) mux2 q_accept (of_int ~width:3 s_dot) (of_int ~width:3 s_waitq);
        (* DOT *) mux2 i_last (of_int ~width:3 s_soft) (of_int ~width:3 s_dot);
        (* SOFT *) mux2 i_last (of_int ~width:3 s_acc) (of_int ~width:3 s_soft);
        (* ACC *) mux2 i_last (of_int ~width:3 s_norm) (of_int ~width:3 s_acc);
        (* NORM *)
        mux2 (d_step &: d_last) (of_int ~width:3 s_emit) (of_int ~width:3 s_norm);
        (* EMIT *)
        mux2 emit_fire
          (mux2 last_query (of_int ~width:3 s_resp) (of_int ~width:3 s_waitq))
          (of_int ~width:3 s_emit);
        (* RESP *) mux2 resp_fire (of_int ~width:3 s_idle) (of_int ~width:3 s_resp);
      ]
  in
  assign state (reg next_state);

  Hw.Circuit.create ~name:"a3_core"
    ~outputs:
      [
        ("req_ready", req_ready);
        ("resp_valid", in_state s_resp);
        ("resp_data", uresize q_done 64);
        ("query_req_valid", req_fire);
        ("query_req_addr", req_p1);
        ("query_req_len", len_bytes);
        ("query_data_ready", in_state s_waitq);
        ("output_req_valid", req_fire);
        ("output_req_addr", uresize (select req_p2 ~hi:31 ~lo:0) 64);
        ("output_req_len", len_bytes);
        ("output_data_valid", in_state s_emit);
        ("output_data", out_row);
        ("keys_rd_addr", uresize i 16);
        ("values_rd_addr", uresize i 16);
      ]

let config ?(n_cores = 1) () =
  B.Config.make ~name:"a3_rtl"
    [
      B.Config.system ~name:"A3RTL" ~n_cores
        ~read_channels:
          [ B.Config.read_channel ~name:"query" ~data_bytes:64 () ]
        ~write_channels:
          [ B.Config.write_channel ~name:"output" ~data_bytes:64 () ]
        ~scratchpads:
          [
            B.Config.scratchpad ~name:"keys" ~data_bits:512 ~n_datas:n_keys
              ~init_from_memory:true ();
            B.Config.scratchpad ~name:"values" ~data_bits:512 ~n_datas:n_keys
              ~init_from_memory:true ();
          ]
        ~commands:[ Accel.load_kv_command; attend_command ]
        ~kernel_circuit:(circuit ())
        ();
    ]

let rtl_behavior = B.Rtl_core.behavior ~build:circuit ()

(* funct 0 (load_kv) is serviced by the composer's scratchpad machinery;
   funct 1 enters the netlist *)
let behavior : B.Soc.behavior =
 fun ctx beats ~respond ->
  match (List.hd beats).B.Rocc.funct with
  | 0 ->
      let args =
        B.Cmd_spec.unpack Accel.load_kv_command
          (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
      in
      let k_addr = Int64.to_int (List.assoc "k_addr" args) in
      let v_addr = Int64.to_int (List.assoc "v_addr" args) in
      let keys_sp = B.Soc.scratchpad ctx "keys" in
      let values_sp = B.Soc.scratchpad ctx "values" in
      let pending = ref 2 in
      let arrive () =
        decr pending;
        if !pending = 0 then respond 1L
      in
      let bytes = n_keys * 64 in
      B.Soc.Scratchpad.init_from_memory keys_sp ~addr:k_addr ~bytes
        ~on_done:arrive ();
      B.Soc.Scratchpad.init_from_memory values_sp ~addr:v_addr ~bytes
        ~on_done:arrive ()
  | _ -> rtl_behavior ctx beats ~respond

type result = {
  verified : bool;
  n_queries : int;
  wall_ps : int;
  cycles_per_query : float;
}

let run ?(n_queries = 2) ?(n_cores = 1) ~platform () =
  let design = B.Elaborate.elaborate (config ~n_cores ()) platform in
  let soc = B.Soc.create design ~behaviors:(fun _ -> behavior) in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let rand =
    let s = ref 4242 in
    fun () ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      (!s mod 33) - 16
  in
  let keys = Array.init n_keys (fun _ -> Array.init lanes (fun _ -> rand ())) in
  let values = Array.init n_keys (fun _ -> Array.init lanes (fun _ -> rand ())) in
  let queries =
    Array.init n_queries (fun _ -> Array.init lanes (fun _ -> rand ()))
  in
  let put buf rows =
    Array.iteri
      (fun r row ->
        Array.iteri
          (fun c v -> Bytes.set buf ((r * lanes) + c) (Char.chr (v land 0xff)))
          row)
      rows
  in
  let pk = H.malloc handle (n_keys * 64) in
  let pv = H.malloc handle (n_keys * 64) in
  let pq = H.malloc handle (n_queries * 64) in
  let po = H.malloc handle (n_queries * 64) in
  put (H.host_bytes handle pk) keys;
  put (H.host_bytes handle pv) values;
  put (H.host_bytes handle pq) queries;
  let pending = ref 0 in
  List.iter
    (fun p ->
      incr pending;
      H.copy_to_fpga handle p ~on_done:(fun () -> decr pending))
    [ pk; pv; pq ];
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "a3_rtl: DMA incomplete";
  ignore
    (H.await handle
       (H.send handle ~system:"A3RTL" ~core:0 ~cmd:Accel.load_kv_command
          ~args:
            [
              ("k_addr", Int64.of_int pk.H.rp_addr);
              ("v_addr", Int64.of_int pv.H.rp_addr);
            ]));
  let t0 = Desim.Engine.now (H.engine handle) in
  ignore
    (H.await handle
       (H.send handle ~system:"A3RTL" ~core:0 ~cmd:attend_command
          ~args:
            [
              ("q_addr", Int64.of_int pq.H.rp_addr);
              ("out_addr", Int64.of_int po.H.rp_addr);
              ("n_queries", Int64.of_int n_queries);
            ]));
  let t1 = Desim.Engine.now (H.engine handle) in
  let done_ = ref false in
  H.copy_from_fpga handle po ~on_done:(fun () -> done_ := true);
  Desim.Engine.run (H.engine handle);
  assert !done_;
  let out_host = H.host_bytes handle po in
  let verified = ref true in
  Array.iteri
    (fun qi query ->
      let expect = A3.attend_fixed ~query ~keys ~values in
      let got =
        Array.init lanes (fun c ->
            let v = Char.code (Bytes.get out_host ((qi * lanes) + c)) in
            if v >= 128 then v - 256 else v)
      in
      if got <> expect then verified := false)
    queries;
  let clock_ps = platform.Platform.Device.fabric_clock_ps in
  {
    verified = !verified;
    n_queries;
    wall_ps = t1 - t0;
    cycles_per_query =
      float_of_int (t1 - t0) /. float_of_int clock_ps /. float_of_int n_queries;
  }
