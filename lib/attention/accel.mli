(** The multi-core A³ accelerator composed with Beethoven — the design of
    Fig. 7/8 and Tables II/III.

    Each core holds stationary key and value matrices in Beethoven
    Scratchpads (filled from device memory by a [load_kv] command),
    streams query vectors through a Reader, runs the three-stage pipeline
    at one key row per cycle, and writes outputs through a Writer. The
    23-core F1 configuration reproduces the floorplan and utilization
    behaviour the paper reports (SLR affinity, BRAM→URAM spill). *)

val load_kv_command : Beethoven.Cmd_spec.command
val attend_command : Beethoven.Cmd_spec.command

val config : ?n_cores:int -> unit -> Beethoven.Config.t
(** Default 23 cores, the paper's F1 design point. *)

val behavior : Beethoven.Soc.behavior

val auto_cores : Platform.Device.t -> int
(** Largest configuration the floorplanner accepts (the paper's "23" on
    the U200). *)

type result = {
  n_cores : int;
  n_queries : int;
  wall_ps : int;
  throughput_ops : float;  (** attention ops (queries) per second *)
  max_error : float;  (** worst per-query mean-abs-error vs float *)
  verified : bool;  (** outputs bit-exact vs the functional A3 model *)
}

val run :
  ?n_queries_per_core:int ->
  ?n_cores:int ->
  platform:Platform.Device.t ->
  unit ->
  result
(** Load per-core K/V, stream a query batch through every core, verify
    outputs against {!A3.attend_fixed} and accuracy against
    {!A3.attend_float}. *)
