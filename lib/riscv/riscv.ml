module Asm = struct
  type reg = int
  type insn = int32

  let check_reg r = if r < 0 || r > 31 then invalid_arg "Asm: register x0..x31"

  let check_range name v lo hi =
    if v < lo || v > hi then
      invalid_arg (Printf.sprintf "Asm: %s immediate %d out of range" name v)

  let ( <<< ) v n = Int32.shift_left (Int32.of_int v) n
  let ( ||| ) = Int32.logor

  let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
    check_reg rs2; check_reg rs1; check_reg rd;
    (funct7 <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
    ||| (rd <<< 7) ||| Int32.of_int opcode

  let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
    check_reg rs1; check_reg rd;
    check_range "I" imm (-2048) 2047;
    ((imm land 0xFFF) <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
    ||| (rd <<< 7) ||| Int32.of_int opcode

  let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
    check_reg rs2; check_reg rs1;
    check_range "S" imm (-2048) 2047;
    let imm = imm land 0xFFF in
    ((imm lsr 5) <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
    ||| ((imm land 0x1F) <<< 7) ||| Int32.of_int opcode

  let b_type ~imm ~rs2 ~rs1 ~funct3 =
    check_reg rs2; check_reg rs1;
    check_range "B" imm (-4096) 4095;
    if imm land 1 <> 0 then invalid_arg "Asm: branch offset must be even";
    let imm = imm land 0x1FFF in
    ((imm lsr 12) <<< 31)
    ||| (((imm lsr 5) land 0x3F) <<< 25)
    ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
    ||| (((imm lsr 1) land 0xF) <<< 8)
    ||| (((imm lsr 11) land 1) <<< 7)
    ||| 0b1100011l

  let u_type ~imm ~rd ~opcode =
    check_reg rd;
    check_range "U" imm 0 0xFFFFF;
    (imm <<< 12) ||| (rd <<< 7) ||| Int32.of_int opcode

  let j_type ~imm ~rd =
    check_reg rd;
    check_range "J" imm (-(1 lsl 20)) ((1 lsl 20) - 1);
    if imm land 1 <> 0 then invalid_arg "Asm: jump offset must be even";
    let imm = imm land 0x1FFFFF in
    ((imm lsr 20) <<< 31)
    ||| (((imm lsr 1) land 0x3FF) <<< 21)
    ||| (((imm lsr 11) land 1) <<< 20)
    ||| (((imm lsr 12) land 0xFF) <<< 12)
    ||| (rd <<< 7) ||| 0b1101111l

  let addi rd rs1 imm = i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b0010011
  let slti rd rs1 imm = i_type ~imm ~rs1 ~funct3:2 ~rd ~opcode:0b0010011
  let xori rd rs1 imm = i_type ~imm ~rs1 ~funct3:4 ~rd ~opcode:0b0010011
  let ori rd rs1 imm = i_type ~imm ~rs1 ~funct3:6 ~rd ~opcode:0b0010011
  let andi rd rs1 imm = i_type ~imm ~rs1 ~funct3:7 ~rd ~opcode:0b0010011

  let slli rd rs1 sh =
    check_range "shamt" sh 0 31;
    i_type ~imm:sh ~rs1 ~funct3:1 ~rd ~opcode:0b0010011

  let srli rd rs1 sh =
    check_range "shamt" sh 0 31;
    i_type ~imm:sh ~rs1 ~funct3:5 ~rd ~opcode:0b0010011

  let srai rd rs1 sh =
    check_range "shamt" sh 0 31;
    i_type ~imm:(sh lor 0x400) ~rs1 ~funct3:5 ~rd ~opcode:0b0010011

  let add rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0 ~rd ~opcode:0b0110011
  let sub rd rs1 rs2 = r_type ~funct7:0x20 ~rs2 ~rs1 ~funct3:0 ~rd ~opcode:0b0110011
  let sll rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:1 ~rd ~opcode:0b0110011
  let slt rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:2 ~rd ~opcode:0b0110011
  let sltu rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:3 ~rd ~opcode:0b0110011
  let xor_ rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:4 ~rd ~opcode:0b0110011
  let srl rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:5 ~rd ~opcode:0b0110011
  let sra rd rs1 rs2 = r_type ~funct7:0x20 ~rs2 ~rs1 ~funct3:5 ~rd ~opcode:0b0110011
  let or_ rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:6 ~rd ~opcode:0b0110011
  let and_ rd rs1 rs2 = r_type ~funct7:0 ~rs2 ~rs1 ~funct3:7 ~rd ~opcode:0b0110011
  let lui rd imm = u_type ~imm ~rd ~opcode:0b0110111
  let auipc rd imm = u_type ~imm ~rd ~opcode:0b0010111
  let lb rd rs1 imm = i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b0000011
  let lh rd rs1 imm = i_type ~imm ~rs1 ~funct3:1 ~rd ~opcode:0b0000011
  let lw rd rs1 imm = i_type ~imm ~rs1 ~funct3:2 ~rd ~opcode:0b0000011
  let lbu rd rs1 imm = i_type ~imm ~rs1 ~funct3:4 ~rd ~opcode:0b0000011
  let lhu rd rs1 imm = i_type ~imm ~rs1 ~funct3:5 ~rd ~opcode:0b0000011
  let sb rs2 rs1 imm = s_type ~imm ~rs2 ~rs1 ~funct3:0 ~opcode:0b0100011
  let sh rs2 rs1 imm = s_type ~imm ~rs2 ~rs1 ~funct3:1 ~opcode:0b0100011
  let sw rs2 rs1 imm = s_type ~imm ~rs2 ~rs1 ~funct3:2 ~opcode:0b0100011
  let beq rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:0
  let bne rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:1
  let blt rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:4
  let bge rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:5
  let bltu rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:6
  let bgeu rs1 rs2 imm = b_type ~imm ~rs2 ~rs1 ~funct3:7
  let jal rd imm = j_type ~imm ~rd
  let jalr rd rs1 imm = i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b1100111

  let custom0 ~funct7 ~rd ~rs1 ~rs2 ~xd =
    if funct7 < 0 || funct7 > 127 then invalid_arg "Asm: funct7";
    (* RoCC: funct3 = {xd, xs1, xs2}; sources always read *)
    let funct3 = (if xd then 4 else 0) lor 0b011 in
    r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:0b0001011

  let ecall = 0b1110011l
  let encode i = i
end

module Cpu = struct
  type rocc_request = {
    funct7 : int;
    rs1_value : int32;
    rs2_value : int32;
    expects_result : bool;
  }

  type t = {
    mem : Bytes.t;
    regs : int32 array;
    mutable pc : int;
    mutable halted : bool;
    mutable rocc_wait : int option; (* rd awaiting a result *)
    on_rocc : (rocc_request -> (int32 -> unit) -> unit) option;
  }

  let create ?(mem_bytes = 1 lsl 20) ?on_rocc ~program () =
    let mem = Bytes.make mem_bytes '\000' in
    List.iteri
      (fun i insn -> Bytes.set_int32_le mem (4 * i) (Asm.encode insn))
      program;
    let regs = Array.make 32 0l in
    regs.(2) <- Int32.of_int mem_bytes;
    { mem; regs; pc = 0; halted = false; rocc_wait = None; on_rocc }

  let reg t r = if r = 0 then 0l else t.regs.(r)

  let set_reg t r v = if r <> 0 then t.regs.(r) <- v

  let check_addr t a n =
    if a < 0 || a + n > Bytes.length t.mem then
      failwith (Printf.sprintf "Cpu: memory access out of range (0x%x)" a);
    if a mod n <> 0 then
      failwith (Printf.sprintf "Cpu: misaligned %d-byte access (0x%x)" n a)

  let load_word t a =
    check_addr t a 4;
    Bytes.get_int32_le t.mem a

  let store_word t a v =
    check_addr t a 4;
    Bytes.set_int32_le t.mem a v

  let pc t = t.pc
  let halted t = t.halted
  let blocked_on_rocc t = t.rocc_wait <> None

  let sext32 v bits =
    let shift = 32 - bits in
    Int32.shift_right (Int32.shift_left v shift) shift

  let step t =
    if t.halted || t.rocc_wait <> None then false
    else begin
      let insn = Int32.to_int (load_word t t.pc) land 0xFFFFFFFF in
      let opcode = insn land 0x7F in
      let rd = (insn lsr 7) land 0x1F in
      let funct3 = (insn lsr 12) land 0x7 in
      let rs1 = (insn lsr 15) land 0x1F in
      let rs2 = (insn lsr 20) land 0x1F in
      let funct7 = (insn lsr 25) land 0x7F in
      let i_imm = Int32.to_int (sext32 (Int32.of_int (insn lsr 20)) 12) in
      let s_imm =
        Int32.to_int
          (sext32
             (Int32.of_int (((insn lsr 25) lsl 5) lor ((insn lsr 7) land 0x1F)))
             12)
      in
      let b_imm =
        let v =
          (((insn lsr 31) land 1) lsl 12)
          lor (((insn lsr 7) land 1) lsl 11)
          lor (((insn lsr 25) land 0x3F) lsl 5)
          lor (((insn lsr 8) land 0xF) lsl 1)
        in
        Int32.to_int (sext32 (Int32.of_int v) 13)
      in
      let j_imm =
        let v =
          (((insn lsr 31) land 1) lsl 20)
          lor (((insn lsr 12) land 0xFF) lsl 12)
          lor (((insn lsr 20) land 1) lsl 11)
          lor (((insn lsr 21) land 0x3FF) lsl 1)
        in
        Int32.to_int (sext32 (Int32.of_int v) 21)
      in
      let v1 = reg t rs1 and v2 = reg t rs2 in
      let next = ref (t.pc + 4) in
      (match opcode with
      | 0b0010011 -> (
          (* ALU immediate *)
          let imm32 = Int32.of_int i_imm in
          match funct3 with
          | 0 -> set_reg t rd (Int32.add v1 imm32)
          | 2 -> set_reg t rd (if Int32.compare v1 imm32 < 0 then 1l else 0l)
          | 3 ->
              set_reg t rd
                (if Int32.unsigned_compare v1 imm32 < 0 then 1l else 0l)
          | 4 -> set_reg t rd (Int32.logxor v1 imm32)
          | 6 -> set_reg t rd (Int32.logor v1 imm32)
          | 7 -> set_reg t rd (Int32.logand v1 imm32)
          | 1 -> set_reg t rd (Int32.shift_left v1 (i_imm land 0x1F))
          | 5 ->
              if i_imm land 0x400 <> 0 then
                set_reg t rd (Int32.shift_right v1 (i_imm land 0x1F))
              else set_reg t rd (Int32.shift_right_logical v1 (i_imm land 0x1F))
          | _ -> failwith "Cpu: illegal OP-IMM")
      | 0b0110011 -> (
          match (funct3, funct7) with
          | 0, 0 -> set_reg t rd (Int32.add v1 v2)
          | 0, 0x20 -> set_reg t rd (Int32.sub v1 v2)
          | 1, _ -> set_reg t rd (Int32.shift_left v1 (Int32.to_int v2 land 31))
          | 2, _ -> set_reg t rd (if Int32.compare v1 v2 < 0 then 1l else 0l)
          | 3, _ ->
              set_reg t rd
                (if Int32.unsigned_compare v1 v2 < 0 then 1l else 0l)
          | 4, _ -> set_reg t rd (Int32.logxor v1 v2)
          | 5, 0 ->
              set_reg t rd (Int32.shift_right_logical v1 (Int32.to_int v2 land 31))
          | 5, 0x20 ->
              set_reg t rd (Int32.shift_right v1 (Int32.to_int v2 land 31))
          | 6, _ -> set_reg t rd (Int32.logor v1 v2)
          | 7, _ -> set_reg t rd (Int32.logand v1 v2)
          | _ -> failwith "Cpu: illegal OP")
      | 0b0110111 -> set_reg t rd (Int32.shift_left (Int32.of_int (insn lsr 12)) 12)
      | 0b0010111 ->
          set_reg t rd
            (Int32.add (Int32.of_int t.pc)
               (Int32.shift_left (Int32.of_int (insn lsr 12)) 12))
      | 0b0000011 -> (
          let addr = Int32.to_int v1 + i_imm in
          match funct3 with
          | 0 ->
              check_addr t addr 1;
              set_reg t rd
                (sext32 (Int32.of_int (Char.code (Bytes.get t.mem addr))) 8)
          | 1 ->
              check_addr t addr 2;
              set_reg t rd
                (sext32 (Int32.of_int (Bytes.get_uint16_le t.mem addr)) 16)
          | 2 -> set_reg t rd (load_word t addr)
          | 4 ->
              check_addr t addr 1;
              set_reg t rd (Int32.of_int (Char.code (Bytes.get t.mem addr)))
          | 5 ->
              check_addr t addr 2;
              set_reg t rd (Int32.of_int (Bytes.get_uint16_le t.mem addr))
          | _ -> failwith "Cpu: illegal LOAD")
      | 0b0100011 -> (
          let addr = Int32.to_int v1 + s_imm in
          match funct3 with
          | 0 ->
              check_addr t addr 1;
              Bytes.set t.mem addr (Char.chr (Int32.to_int v2 land 0xFF))
          | 1 ->
              check_addr t addr 2;
              Bytes.set_uint16_le t.mem addr (Int32.to_int v2 land 0xFFFF)
          | 2 -> store_word t addr v2
          | _ -> failwith "Cpu: illegal STORE")
      | 0b1100011 ->
          let taken =
            match funct3 with
            | 0 -> Int32.equal v1 v2
            | 1 -> not (Int32.equal v1 v2)
            | 4 -> Int32.compare v1 v2 < 0
            | 5 -> Int32.compare v1 v2 >= 0
            | 6 -> Int32.unsigned_compare v1 v2 < 0
            | 7 -> Int32.unsigned_compare v1 v2 >= 0
            | _ -> failwith "Cpu: illegal BRANCH"
          in
          if taken then next := t.pc + b_imm
      | 0b1101111 ->
          set_reg t rd (Int32.of_int (t.pc + 4));
          next := t.pc + j_imm
      | 0b1100111 ->
          set_reg t rd (Int32.of_int (t.pc + 4));
          next := (Int32.to_int v1 + i_imm) land lnot 1
      | 0b1110011 -> t.halted <- true
      | 0b0001011 | 0b0101011 -> (
          (* custom-0 / custom-1: RoCC *)
          match t.on_rocc with
          | None -> failwith "Cpu: RoCC instruction with no accelerator"
          | Some f ->
              let expects_result = funct3 land 4 <> 0 in
              let req =
                { funct7; rs1_value = v1; rs2_value = v2; expects_result }
              in
              if expects_result then begin
                t.rocc_wait <- Some rd;
                f req (fun result ->
                    (match t.rocc_wait with
                    | Some rd -> set_reg t rd result
                    | None -> ());
                    t.rocc_wait <- None)
              end
              else f req (fun _ -> ()))
      | _ -> failwith (Printf.sprintf "Cpu: illegal opcode 0x%02x" opcode));
      t.pc <- !next;
      true
    end

  let run ?(max_steps = 10_000_000) t =
    let retired = ref 0 in
    while step t do
      incr retired;
      if !retired >= max_steps then failwith "Cpu.run: step ceiling reached"
    done;
    !retired
end
