(** Minimal RV32I host CPU with RoCC custom instructions.

    Beethoven carries commands in the RoCC format so its designs "can
    integrate with any RISC-V systems that support the RoCC extensions"
    (§II-A), and the ChipKIT test-chip platform instantiates an on-die CPU
    wired straight to the fabric. This module supplies that substrate: an
    RV32I interpreter with the custom-0/1 opcodes routed to a RoCC
    callback, plus an instruction-constructor "assembler" so host programs
    are written as OCaml values rather than parsed text.

    Scope: the RV32I base ISA (ALU ops, loads/stores, branches, jumps,
    LUI/AUIPC) + custom-0/1. No CSRs, no traps beyond illegal-instruction
    and misalignment errors — enough to run accelerator test benches, which
    is all the paper's platforms need from the M0-class host. *)

module Asm : sig
  type reg = int (** x0..x31 *)

  type insn

  (* ALU, immediate *)
  val addi : reg -> reg -> int -> insn
  val slti : reg -> reg -> int -> insn
  val andi : reg -> reg -> int -> insn
  val ori : reg -> reg -> int -> insn
  val xori : reg -> reg -> int -> insn
  val slli : reg -> reg -> int -> insn
  val srli : reg -> reg -> int -> insn
  val srai : reg -> reg -> int -> insn

  (* ALU, register *)
  val add : reg -> reg -> reg -> insn
  val sub : reg -> reg -> reg -> insn
  val and_ : reg -> reg -> reg -> insn
  val or_ : reg -> reg -> reg -> insn
  val xor_ : reg -> reg -> reg -> insn
  val sll : reg -> reg -> reg -> insn
  val srl : reg -> reg -> reg -> insn
  val sra : reg -> reg -> reg -> insn
  val slt : reg -> reg -> reg -> insn
  val sltu : reg -> reg -> reg -> insn

  (* upper immediates *)
  val lui : reg -> int -> insn
  val auipc : reg -> int -> insn

  (* memory *)
  val lw : reg -> reg -> int -> insn (** [lw rd rs1 imm] *)

  val lh : reg -> reg -> int -> insn
  val lhu : reg -> reg -> int -> insn
  val lb : reg -> reg -> int -> insn
  val lbu : reg -> reg -> int -> insn
  val sw : reg -> reg -> int -> insn (** [sw rs2 rs1 imm]: M[rs1+imm] = rs2 *)

  val sh : reg -> reg -> int -> insn
  val sb : reg -> reg -> int -> insn

  (* control flow (offsets in bytes, relative to the branch) *)
  val beq : reg -> reg -> int -> insn
  val bne : reg -> reg -> int -> insn
  val blt : reg -> reg -> int -> insn
  val bge : reg -> reg -> int -> insn
  val bltu : reg -> reg -> int -> insn
  val bgeu : reg -> reg -> int -> insn
  val jal : reg -> int -> insn
  val jalr : reg -> reg -> int -> insn

  (* RoCC: custom-0, funct7 selects the accelerator command *)
  val custom0 : funct7:int -> rd:reg -> rs1:reg -> rs2:reg -> xd:bool -> insn

  val ecall : insn (** halts the interpreter *)

  val encode : insn -> int32
  (** The 32-bit RV32I encoding (also what {!Cpu} executes). *)
end

module Cpu : sig
  type t

  type rocc_request = {
    funct7 : int;
    rs1_value : int32;
    rs2_value : int32;
    expects_result : bool;
  }

  val create :
    ?mem_bytes:int ->
    ?on_rocc:(rocc_request -> (int32 -> unit) -> unit) ->
    program:Asm.insn list ->
    unit ->
    t
  (** Load the program at address 0, PC = 0, SP (x2) at the top of memory.
      [on_rocc] receives each custom-0/1 instruction; when the instruction
      expects a result ([xd]), the CPU *blocks* until the callback supplies
      it — the RoCC response interlock. Default memory: 1 MB. *)

  val step : t -> bool
  (** Execute one instruction; [false] once halted ([ecall]) or blocked on
      an outstanding RoCC result that has not been supplied. *)

  val run : ?max_steps:int -> t -> int
  (** Run until halt/block (default ceiling 10M steps, then [Failure]).
      Returns instructions retired. *)

  val halted : t -> bool
  val blocked_on_rocc : t -> bool
  val reg : t -> int -> int32
  val set_reg : t -> int -> int32 -> unit
  val load_word : t -> int -> int32
  val store_word : t -> int -> int32 -> unit
  val pc : t -> int
end
