module Mix = Serve.Mix
module Tenant = Serve.Tenant
module Curve = Serve.Curve

(* ------------------------------------------------------------------ *)
(* Observations                                                       *)
(* ------------------------------------------------------------------ *)

type obs = {
  ob_tenants : Serve.tenant_report list;
  ob_quarantines : int;
  ob_promotions : int;
  ob_replays : int;
  ob_duplicates : int;
  ob_lost_acked : int;
  ob_injected : int;
  ob_recovered : int;
  ob_unrecovered : int;
  ob_wall_us : float;
  ob_health : (int * string) list;  (* device slot -> health name *)
}

let empty_obs =
  {
    ob_tenants = [];
    ob_quarantines = 0;
    ob_promotions = 0;
    ob_replays = 0;
    ob_duplicates = 0;
    ob_lost_acked = 0;
    ob_injected = 0;
    ob_recovered = 0;
    ob_unrecovered = 0;
    ob_wall_us = 0.;
    ob_health = [];
  }

let obs_of_serve (r : Serve.report) =
  let inj = r.Serve.r_injector in
  let i f = match inj with Some i -> f i | None -> 0 in
  {
    empty_obs with
    ob_tenants = r.Serve.r_tenants;
    ob_quarantines = i Fault.Injector.quarantines;
    ob_injected = i Fault.Injector.total_injected;
    ob_recovered = i Fault.Injector.total_recovered;
    ob_unrecovered = i Fault.Injector.total_unrecovered;
    ob_wall_us = float_of_int r.Serve.r_wall_ps /. 1e6;
  }

let obs_of_cluster (r : Cluster.report) =
  let sum f =
    List.fold_left
      (fun a (d : Cluster.device_report) ->
        a + match d.Cluster.dr_injector with Some i -> f i | None -> 0)
      0 r.Cluster.c_devices
  in
  {
    ob_tenants = r.Cluster.c_tenants;
    ob_quarantines = r.Cluster.c_quarantines;
    ob_promotions = r.Cluster.c_promotions;
    ob_replays = r.Cluster.c_replays;
    ob_duplicates = r.Cluster.c_duplicates;
    ob_lost_acked = r.Cluster.c_lost_acked;
    ob_injected = sum Fault.Injector.total_injected;
    ob_recovered = sum Fault.Injector.total_recovered;
    ob_unrecovered = sum Fault.Injector.total_unrecovered;
    ob_wall_us = float_of_int r.Cluster.c_wall_ps /. 1e6;
    ob_health =
      List.mapi
        (fun i (d : Cluster.device_report) ->
          (i, Cluster.Health.name d.Cluster.dr_state))
        r.Cluster.c_devices;
  }

(* ------------------------------------------------------------------ *)
(* Expressions and conditions                                         *)
(* ------------------------------------------------------------------ *)

type stat =
  | P50
  | P95
  | P99
  | Mean
  | Completed
  | Failed
  | Shed
  | Slo_violations
  | Offered
  | Achieved_rps

type counter =
  | Quarantines
  | Promotions
  | Replays
  | Duplicates
  | Lost_acked
  | Faults_injected
  | Faults_recovered
  | Faults_unrecovered
  | Wall_us

type expr =
  | Const of float
  | Var of string
  | Stat of stat * string  (* tenant name, or "*" for all tenants *)
  | Counter of counter

type cmp = Lt | Le | Gt | Ge | Eq

type cond =
  | Cmp of cmp * expr * expr
  | Health_is of int * string
  | All of cond list
  | Any of cond list
  | Not of cond

let stat_name = function
  | P50 -> "p50"
  | P95 -> "p95"
  | P99 -> "p99"
  | Mean -> "mean"
  | Completed -> "completed"
  | Failed -> "failed"
  | Shed -> "shed"
  | Slo_violations -> "slo_violations"
  | Offered -> "offered"
  | Achieved_rps -> "achieved_rps"

let counter_name = function
  | Quarantines -> "quarantines"
  | Promotions -> "promotions"
  | Replays -> "replays"
  | Duplicates -> "duplicates"
  | Lost_acked -> "lost_acked"
  | Faults_injected -> "faults_injected"
  | Faults_recovered -> "faults_recovered"
  | Faults_unrecovered -> "faults_unrecovered"
  | Wall_us -> "wall_us"

let cmp_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="

(* Quantiles of a tenant's end-to-end latency; counting stats over the
   tenant ledgers. An aggregate over "*" sums counts and takes the max
   of quantiles (worst tenant). *)
let stat_of_tr (s : stat) (tr : Serve.tenant_report) =
  let q f = match tr.Serve.tr_total with Some p -> f p | None -> 0. in
  match s with
  | P50 -> q (fun p -> p.Serve.ph_p50_us)
  | P95 -> q (fun p -> p.Serve.ph_p95_us)
  | P99 -> q (fun p -> p.Serve.ph_p99_us)
  | Mean -> q (fun p -> p.Serve.ph_mean_us)
  | Completed -> float_of_int tr.Serve.tr_completed
  | Failed -> float_of_int tr.Serve.tr_failed
  | Shed ->
      float_of_int
        (tr.Serve.tr_shed_queue + tr.Serve.tr_shed_deadline
       + tr.Serve.tr_shed_degraded)
  | Slo_violations -> float_of_int tr.Serve.tr_slo_violations
  | Offered -> float_of_int tr.Serve.tr_offered
  | Achieved_rps -> tr.Serve.tr_achieved_rps

let is_quantile = function P50 | P95 | P99 | Mean -> true | _ -> false

let eval_stat obs s tenant =
  if tenant = "*" then
    List.fold_left
      (fun acc tr ->
        let v = stat_of_tr s tr in
        if is_quantile s then Float.max acc v else acc +. v)
      0. obs.ob_tenants
  else
    match
      List.find_opt (fun tr -> tr.Serve.tr_name = tenant) obs.ob_tenants
    with
    | Some tr -> stat_of_tr s tr
    | None -> 0.

let eval_counter obs = function
  | Quarantines -> float_of_int obs.ob_quarantines
  | Promotions -> float_of_int obs.ob_promotions
  | Replays -> float_of_int obs.ob_replays
  | Duplicates -> float_of_int obs.ob_duplicates
  | Lost_acked -> float_of_int obs.ob_lost_acked
  | Faults_injected -> float_of_int obs.ob_injected
  | Faults_recovered -> float_of_int obs.ob_recovered
  | Faults_unrecovered -> float_of_int obs.ob_unrecovered
  | Wall_us -> obs.ob_wall_us

let eval_expr env obs = function
  | Const v -> v
  | Var name -> ( match List.assoc_opt name env with Some v -> v | None -> 0.)
  | Stat (s, tenant) -> eval_stat obs s tenant
  | Counter c -> eval_counter obs c

let rec eval_cond env obs = function
  | Cmp (op, a, b) -> (
      let va = eval_expr env obs a and vb = eval_expr env obs b in
      match op with
      | Lt -> va < vb
      | Le -> va <= vb
      | Gt -> va > vb
      | Ge -> va >= vb
      | Eq -> va = vb)
  | Health_is (dev, state) -> (
      match List.assoc_opt dev obs.ob_health with
      | Some s -> s = state
      | None -> false)
  | All cs -> List.for_all (eval_cond env obs) cs
  | Any cs -> List.exists (eval_cond env obs) cs
  | Not c -> not (eval_cond env obs c)

let render_expr = function
  | Const v -> Printf.sprintf "%g" v
  | Var name -> "$" ^ name
  | Stat (s, tenant) -> Printf.sprintf "%s(%s)" (stat_name s) tenant
  | Counter c -> counter_name c

let rec render_cond = function
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (render_expr a) (cmp_name op) (render_expr b)
  | Health_is (dev, state) -> Printf.sprintf "health(dev%d) is %s" dev state
  | All cs -> "(" ^ String.concat " and " (List.map render_cond cs) ^ ")"
  | Any cs -> "(" ^ String.concat " or " (List.map render_cond cs) ^ ")"
  | Not c -> "not " ^ render_cond c

(* ------------------------------------------------------------------ *)
(* Actions and nodes                                                  *)
(* ------------------------------------------------------------------ *)

type action =
  | Serve_phase of {
      sp_label : string;
      sp_duration_ps : int;
      sp_tenants : Tenant.t list option;  (* single-device backend only *)
    }
  | Sleep of int
  | Inject_hang of { ih_dev : int; ih_system : int; ih_core : int; ih_after : int }
  | Kill of int
  | Restore of int
  | Promote
  | Checkpoint of string

type node =
  | Act of action
  | Let of string * expr
  | If of { if_cond : cond; if_then : node list; if_else : node list }
  | While of { w_cond : cond; w_max_trips : int; w_body : node list }
  | Assert of { a_cond : cond; a_msg : string }

let serve_phase ?tenants ~label ~duration_ps () =
  Act (Serve_phase { sp_label = label; sp_duration_ps = duration_ps; sp_tenants = tenants })

let inject_hang ?(dev = 0) ?(after = 1) ~system ~core () =
  Act (Inject_hang { ih_dev = dev; ih_system = system; ih_core = core; ih_after = after })

let action_label = function
  | Serve_phase { sp_label; _ } -> "serve:" ^ sp_label
  | Sleep d -> Printf.sprintf "sleep:%d" d
  | Inject_hang { ih_dev; ih_system; ih_core; ih_after } ->
      Printf.sprintf "inject-hang:dev%d.sys%d.core%d.after%d" ih_dev ih_system
        ih_core ih_after
  | Kill dev -> Printf.sprintf "kill:dev%d" dev
  | Restore dev -> Printf.sprintf "restore:dev%d" dev
  | Promote -> "promote"
  | Checkpoint label -> "checkpoint:" ^ label

let node_label = function
  | Act a -> action_label a
  | Let (name, e) -> Printf.sprintf "let:%s=%s" name (render_expr e)
  | If { if_cond; _ } -> "if:" ^ render_cond if_cond
  | While { w_cond; w_max_trips; _ } ->
      Printf.sprintf "while[%d]:%s" w_max_trips (render_cond w_cond)
  | Assert { a_cond; _ } -> "assert:" ^ render_cond a_cond

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

type backend =
  | Single of {
      sg_cfg : Serve.config;
      sg_plan : Fault.Plan.t option;
      sg_policy : Fault.Policy.t option;
    }
  | Fleet of {
      fl_cfg : Cluster.config;
      fl_plan : Fault.Plan.t option;
      fl_policy : Fault.Policy.t option;
    }

type t = {
  sc_name : string;
  sc_seed : int;
  sc_backend : backend;
  sc_nodes : node list;
  sc_max_nodes : int;  (* executed-node budget: loops cannot run past it *)
}

let make ?(max_nodes = 256) ~name ~seed ~backend nodes =
  if max_nodes < 1 then invalid_arg "Scenario.make: max_nodes must be >= 1";
  if nodes = [] then invalid_arg "Scenario.make: empty node list";
  {
    sc_name = name;
    sc_seed = seed;
    sc_backend = backend;
    sc_nodes = nodes;
    sc_max_nodes = max_nodes;
  }

(* ------------------------------------------------------------------ *)
(* Transcript                                                         *)
(* ------------------------------------------------------------------ *)

type entry = {
  en_id : int;  (* execution order *)
  en_node : string;  (* node label *)
  en_enter_ps : int;
  en_exit_ps : int;
  en_verdict : string;  (* "ok" / "ok (...)" / "fail: ..." *)
  en_bindings : (string * float) list;  (* env after the node, oldest first *)
}

type result = {
  res_scenario : string;
  res_seed : int;
  res_entries : entry list;  (* completion order *)
  res_failures : string list;
  res_ok : bool;
  res_obs : obs;  (* after the last node *)
}

(* ------------------------------------------------------------------ *)
(* Executor                                                           *)
(* ------------------------------------------------------------------ *)

type session = Sv of Serve.Session.t | Cl of Cluster.Session.t

exception Budget_exhausted

type exec = {
  ex_sc : t;
  ex_session : session;
  ex_tracer : Trace.t option;
  mutable ex_obs : obs;
  mutable ex_env : (string * float) list;  (* newest binding first *)
  mutable ex_entries : entry list;  (* reverse completion order *)
  mutable ex_failures : string list;  (* reverse *)
  mutable ex_count : int;  (* nodes executed *)
}

let ex_now ex =
  match ex.ex_session with
  | Sv s -> Serve.Session.now s
  | Cl s -> Cluster.Session.now s

let fail ex msg =
  ex.ex_failures <- msg :: ex.ex_failures;
  "fail: " ^ msg

(* Bindings snapshot for the transcript: oldest first, shadowed names
   dropped in favor of the newest binding. *)
let env_snapshot env =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem seen name) then Hashtbl.add seen name ())
    env;
  List.rev
    (List.filter
       (fun (name, _) ->
         if Hashtbl.mem seen name then begin
           Hashtbl.remove seen name;
           true
         end
         else false)
       env)

let exec_action ex = function
  | Serve_phase { sp_label; sp_duration_ps; sp_tenants } -> (
      match ex.ex_session with
      | Sv s -> (
          try
            let r =
              Serve.Session.run_phase ?tenants:sp_tenants s
                ~duration_ps:sp_duration_ps
            in
            ex.ex_obs <- obs_of_serve r;
            Printf.sprintf "ok (%s)" sp_label
          with Invalid_argument msg -> fail ex msg)
      | Cl s -> (
          match sp_tenants with
          | Some _ ->
              fail ex "phase tenant override requires a single-device backend"
          | None ->
              let r = Cluster.Session.run_phase s ~duration_ps:sp_duration_ps in
              ex.ex_obs <- obs_of_cluster r;
              Printf.sprintf "ok (%s)" sp_label))
  | Sleep delta_ps ->
      (match ex.ex_session with
      | Sv s -> Serve.Session.sleep s ~delta_ps
      | Cl s -> Cluster.Session.sleep s ~delta_ps);
      "ok"
  | Inject_hang { ih_dev; ih_system; ih_core; ih_after } -> (
      let inj =
        match ex.ex_session with
        | Sv s -> if ih_dev <> 0 then None else Serve.Session.injector s
        | Cl s -> (
            let r = Cluster.Session.snapshot s in
            match List.nth_opt r.Cluster.c_devices ih_dev with
            | Some d -> d.Cluster.dr_injector
            | None -> None)
      in
      match inj with
      | Some inj ->
          Fault.Injector.set_hang ~after:ih_after inj ~system:ih_system
            ~core:ih_core;
          "ok"
      | None -> fail ex "no fault injector on the target device")
  | Kill dev -> (
      match ex.ex_session with
      | Sv _ -> fail ex "kill requires a fleet backend"
      | Cl s -> (
          try
            Cluster.Session.kill s ~dev;
            ex.ex_obs <- obs_of_cluster (Cluster.Session.snapshot s);
            "ok"
          with Invalid_argument msg -> fail ex msg))
  | Restore dev -> (
      match ex.ex_session with
      | Sv _ -> fail ex "restore requires a fleet backend"
      | Cl s -> (
          try
            Cluster.Session.restore s ~dev;
            ex.ex_obs <- obs_of_cluster (Cluster.Session.snapshot s);
            "ok"
          with Invalid_argument msg -> fail ex msg))
  | Promote -> (
      match ex.ex_session with
      | Sv _ -> fail ex "promote requires a fleet backend"
      | Cl s ->
          if Cluster.Session.promote_standby s then begin
            ex.ex_obs <- obs_of_cluster (Cluster.Session.snapshot s);
            "ok"
          end
          else fail ex "no standby device available to promote")
  | Checkpoint label -> (
      match ex.ex_session with
      | Sv s -> (
          try
            ex.ex_obs <- obs_of_serve (Serve.Session.snapshot s);
            Printf.sprintf "ok (%s)" label
          with Invalid_argument _ -> Printf.sprintf "ok (%s, no report yet)" label)
      | Cl s ->
          ex.ex_obs <- obs_of_cluster (Cluster.Session.snapshot s);
          Printf.sprintf "ok (%s)" label)

let rec exec_node ex node =
  if ex.ex_count >= ex.ex_sc.sc_max_nodes then raise Budget_exhausted;
  ex.ex_count <- ex.ex_count + 1;
  let id = ex.ex_count - 1 in
  let enter = ex_now ex in
  let verdict =
    match node with
    | Act a -> exec_action ex a
    | Let (name, e) ->
        let v = eval_expr ex.ex_env ex.ex_obs e in
        ex.ex_env <- (name, v) :: ex.ex_env;
        Printf.sprintf "ok (%s=%.6f)" name v
    | If { if_cond; if_then; if_else } ->
        let taken = eval_cond ex.ex_env ex.ex_obs if_cond in
        List.iter (exec_node ex) (if taken then if_then else if_else);
        Printf.sprintf "ok (%s)" (if taken then "then" else "else")
    | While { w_cond; w_max_trips; w_body } ->
        let trips = ref 0 in
        while !trips < w_max_trips && eval_cond ex.ex_env ex.ex_obs w_cond do
          incr trips;
          List.iter (exec_node ex) w_body
        done;
        Printf.sprintf "ok (%d trips)" !trips
    | Assert { a_cond; a_msg } ->
        if eval_cond ex.ex_env ex.ex_obs a_cond then "ok"
        else fail ex (Printf.sprintf "%s: %s" a_msg (render_cond a_cond))
  in
  let exit_ = ex_now ex in
  (match ex.ex_tracer with
  | None -> ()
  | Some tr ->
      ignore
        (Trace.complete_span tr ~start:enter ~stop:(max exit_ (enter + 1))
           ~track:"scenario" ~cat:"scenario" ~name:(node_label node)
           ~args:[ ("verdict", Trace.Str verdict); ("node", Trace.Int id) ]
           ()));
  ex.ex_entries <-
    {
      en_id = id;
      en_node = node_label node;
      en_enter_ps = enter;
      en_exit_ps = exit_;
      en_verdict = verdict;
      en_bindings = env_snapshot ex.ex_env;
    }
    :: ex.ex_entries

let run ?tracer sc =
  let session =
    match sc.sc_backend with
    | Single { sg_cfg; sg_plan; sg_policy } ->
        Sv
          (Serve.Session.create ?tracer ?plan:sg_plan ?fault_policy:sg_policy
             sg_cfg ())
    | Fleet { fl_cfg; fl_plan; fl_policy } ->
        Cl
          (Cluster.Session.create ?tracer ?plan:fl_plan
             ?fault_policy:fl_policy fl_cfg ())
  in
  let ex =
    {
      ex_sc = sc;
      ex_session = session;
      ex_tracer = tracer;
      ex_obs = empty_obs;
      ex_env = [];
      ex_entries = [];
      ex_failures = [];
      ex_count = 0;
    }
  in
  (try List.iter (exec_node ex) sc.sc_nodes
   with Budget_exhausted ->
     ex.ex_failures <-
       Printf.sprintf "node budget exhausted (%d)" sc.sc_max_nodes
       :: ex.ex_failures);
  let failures = List.rev ex.ex_failures in
  {
    res_scenario = sc.sc_name;
    res_seed = sc.sc_seed;
    res_entries = List.rev ex.ex_entries;
    res_failures = failures;
    res_ok = failures = [];
    res_obs = ex.ex_obs;
  }

(* ------------------------------------------------------------------ *)
(* Transcript rendering                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One entry per line: diffable, and byte-identical for a fixed seed
   (floats printed with a fixed %.6f format). *)
let transcript_json res =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\"scenario\":\"%s\",\"seed\":%d,\"ok\":%b,\n" (json_escape res.res_scenario)
    res.res_seed res.res_ok;
  pf "\"failures\":[%s],\n"
    (String.concat ","
       (List.map (fun f -> "\"" ^ json_escape f ^ "\"") res.res_failures));
  pf "\"entries\":[\n";
  let n = List.length res.res_entries in
  List.iteri
    (fun i en ->
      pf
        "{\"id\":%d,\"node\":\"%s\",\"enter_ps\":%d,\"exit_ps\":%d,\"verdict\":\"%s\",\"bindings\":{%s}}%s\n"
        en.en_id (json_escape en.en_node) en.en_enter_ps en.en_exit_ps
        (json_escape en.en_verdict)
        (String.concat ","
           (List.map
              (fun (name, v) ->
                Printf.sprintf "\"%s\":%.6f" (json_escape name) v)
              en.en_bindings))
        (if i = n - 1 then "" else ","))
    res.res_entries;
  pf "]}\n";
  Buffer.contents b

let render res =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "scenario %s: seed=%d %s\n" res.res_scenario res.res_seed
    (if res.res_ok then "OK" else "FAILED");
  List.iter
    (fun en ->
      pf "  #%-3d [%10.1f .. %10.1f us] %-44s %s\n" en.en_id
        (float_of_int en.en_enter_ps /. 1e6)
        (float_of_int en.en_exit_ps /. 1e6)
        en.en_node en.en_verdict)
    res.res_entries;
  List.iter (fun f -> pf "  failure: %s\n" f) res.res_failures;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Bundled scenarios                                                  *)
(* ------------------------------------------------------------------ *)

let us n = n * 1_000_000

(* Warm up, ramp the offered load along a piecewise curve, arm a core
   hang mid-story, serve through the hang (watchdog detects, retries,
   quarantines the core, recovers every command), then cool down until
   the tail latency is back under the bar. *)
let warmup_ramp_hang_recover ~seed =
  let phase_ps = us 200 in
  let tenant ?curve ~rate_rps () =
    Tenant.make ~name:"app" ~clients:4 ~queue_cap:128 ~slo_ps:(us 300)
      ~deadline_ps:(us 600) ~mix:Mix.heterogeneous
      ~load:(Tenant.open_loop ?curve ~rate_rps ())
      ()
  in
  let cfg =
    Serve.config ~seed ~duration_ps:phase_ps
      ~tenants:[ tenant ~rate_rps:50_000. () ]
      ()
  in
  let ramp =
    Curve.make [ (0, 50_000.); (phase_ps, 300_000.) ]
  in
  make ~name:"warmup-ramp-hang-recover" ~seed
    ~backend:
      (Single
         {
           sg_cfg = cfg;
           sg_plan = Some { Fault.Plan.none with Fault.Plan.seed };
           sg_policy = Some Fault.Policy.default;
         })
    [
      serve_phase ~label:"warm" ~duration_ps:phase_ps ();
      serve_phase ~label:"ramp" ~duration_ps:phase_ps
        ~tenants:[ tenant ~curve:ramp ~rate_rps:0. () ]
        ();
      Let ("p95_ramp", Stat (P95, "app"));
      inject_hang ~system:0 ~core:0 ~after:1 ();
      serve_phase ~label:"hang" ~duration_ps:phase_ps ();
      Assert
        {
          a_cond = Cmp (Ge, Counter Quarantines, Const 1.);
          a_msg = "the hung core was never quarantined";
        };
      Assert
        {
          a_cond = Cmp (Ge, Counter Faults_recovered, Const 1.);
          a_msg = "no command recovered from the hang";
        };
      Assert
        {
          a_cond = Cmp (Le, Counter Faults_unrecovered, Const 0.);
          a_msg = "commands were lost to the hang";
        };
      While
        {
          w_cond = Cmp (Gt, Stat (P95, "app"), Const 250.);
          w_max_trips = 3;
          w_body = [ serve_phase ~label:"cool" ~duration_ps:phase_ps () ];
        };
      Assert
        {
          a_cond =
            All
              [
                Cmp (Lt, Stat (P95, "app"), Const 250.);
                Cmp (Ge, Stat (Completed, "app"), Const 1.);
                Cmp (Le, Stat (Failed, "app"), Const 0.);
              ];
          a_msg = "tail latency never recovered after the hang";
        };
    ]

(* One simulated day: trough, diurnal sweep up through saturation and
   back down, then an evening trough phase that must meet the SLO again
   — the report has to show saturation sheds during the day and a clean
   recovery after it. *)
let diurnal_daycycle ~seed =
  let phase_ps = us 250 in
  let tenant ?curve ~rate_rps () =
    Tenant.make ~name:"web" ~clients:4 ~queue_cap:64 ~slo_ps:(us 200)
      ~deadline_ps:(us 400)
      ~mix:[ Mix.memcpy ~bytes:(4 * 1024) () ]
      ~load:(Tenant.open_loop ?curve ~rate_rps ())
      ()
  in
  let day =
    Curve.diurnal ~period_ps:phase_ps ~trough_rps:10_000. ~peak_rps:5_000_000.
  in
  let cfg =
    Serve.config ~seed ~duration_ps:phase_ps
      ~tenants:[ tenant ~rate_rps:10_000. () ]
      ()
  in
  make ~name:"diurnal-daycycle" ~seed
    ~backend:(Single { sg_cfg = cfg; sg_plan = None; sg_policy = None })
    [
      serve_phase ~label:"night" ~duration_ps:phase_ps ();
      Let ("p95_night", Stat (P95, "web"));
      serve_phase ~label:"day" ~duration_ps:phase_ps
        ~tenants:[ tenant ~curve:day ~rate_rps:0. () ]
        ();
      Let ("p95_day", Stat (P95, "web"));
      Let ("shed_day", Stat (Shed, "web"));
      Assert
        {
          a_cond = Cmp (Gt, Var "shed_day", Const 0.);
          a_msg = "the midday peak never saturated the device";
        };
      Assert
        {
          a_cond = Cmp (Gt, Var "p95_day", Var "p95_night");
          a_msg = "saturation left no latency signature";
        };
      serve_phase ~label:"evening" ~duration_ps:phase_ps ();
      Assert
        {
          a_cond =
            All
              [
                Cmp (Lt, Stat (P95, "web"), Var "p95_day");
                Cmp (Le, Stat (Shed, "web"), Const 0.);
                Cmp (Ge, Stat (Completed, "web"), Const 1.);
              ];
          a_msg = "the SLO did not recover after the diurnal peak";
        };
    ]

(* Peak traffic on a 3-slot fleet (2 warm + 1 standby), then the loaded
   device drops off the host link mid-story: heartbeats miss, the slot
   is quarantined and drained, its tenants re-shard, unacked commands
   replay elsewhere — and the cumulative ledgers must show zero lost
   acked commands end to end. *)
let failover_under_peak ~seed =
  let phase_ps = us 300 in
  let tenants =
    [
      Tenant.make ~name:"gold" ~weight:2.0 ~clients:4 ~queue_cap:128
        ~slo_ps:(us 300) ~deadline_ps:(us 900)
        ~mix:[ Mix.memcpy ~bytes:(16 * 1024) () ]
        ~load:(Tenant.open_loop ~rate_rps:40_000. ())
        ();
      Tenant.make ~name:"bronze" ~clients:4 ~queue_cap:128 ~slo_ps:(us 300)
        ~deadline_ps:(us 900)
        ~mix:[ Mix.memcpy ~bytes:(4 * 1024) (); Mix.vecadd ~bytes:(4 * 1024) () ]
        ~load:(Tenant.open_loop ~rate_rps:40_000. ())
        ();
    ]
  in
  let cfg =
    Cluster.config ~seed ~duration_ps:phase_ps ~devices:3 ~warm:2 ~tenants ()
  in
  make ~name:"failover-under-peak" ~seed
    ~backend:(Fleet { fl_cfg = cfg; fl_plan = None; fl_policy = None })
    [
      serve_phase ~label:"steady" ~duration_ps:phase_ps ();
      Let ("completed_steady", Stat (Completed, "*"));
      Act (Kill 0);
      serve_phase ~label:"failover" ~duration_ps:phase_ps ();
      Assert
        {
          a_cond = Cmp (Ge, Counter Quarantines, Const 1.);
          a_msg = "the killed device was never quarantined";
        };
      Assert
        {
          a_cond = Health_is (0, "dead");
          a_msg = "the killed device is not dead after its drain";
        };
      Act (Restore 0);
      Assert
        {
          a_cond = Health_is (0, "standby");
          a_msg = "the restored device did not rejoin the standby pool";
        };
      serve_phase ~label:"tail" ~duration_ps:phase_ps ();
      Assert
        {
          a_cond =
            All
              [
                Cmp (Eq, Counter Lost_acked, Const 0.);
                Cmp (Gt, Stat (Completed, "*"), Var "completed_steady");
              ];
          a_msg = "acked commands were lost across the failover";
        };
    ]

let bundled =
  [
    ("warmup-ramp-hang-recover", fun ~seed -> warmup_ramp_hang_recover ~seed);
    ("diurnal-daycycle", fun ~seed -> diurnal_daycycle ~seed);
    ("failover-under-peak", fun ~seed -> failover_under_peak ~seed);
  ]

let find_bundled name = List.assoc_opt name bundled
