(** Declarative, seeded, multi-phase workload scenarios.

    A scenario is a plain OCaml value: a graph of nodes carrying
    {e actions} (serve a traffic phase, ramp the open-loop rate along a
    piecewise curve, arm a core hang mid-run, kill / restore / promote a
    cluster device, sleep, checkpoint), {e conditions} over the recorded
    results (latency-quantile thresholds, shed counts, health-state
    predicates, cluster counters), bounded {e loops}, and {e saved
    variables} threaded through an environment. A deterministic executor
    runs the graph against either a single-device {!Serve.Session} or a
    {!Cluster.Session} fleet and records a per-node transcript — node
    id, entry/exit simulated time, bound variables, verdict —
    byte-identical for a fixed seed ({!transcript_json}).

    This is the layer that turns the serving / cluster / fault stacks
    into executable regression stories: "ramp to peak, hang a core,
    assert the watchdog quarantined it and the tail recovered" is a
    value, re-run and byte-compared in CI ({!bundled}). *)

module Mix = Serve.Mix
module Tenant = Serve.Tenant
module Curve = Serve.Curve

(** {1 Observations}

    What conditions see: a distilled view of the most recent phase
    report (single-device) or cumulative cluster report (fleet),
    refreshed after every [Serve_phase] / [Checkpoint]. Before the first
    phase everything reads as zero. *)

type obs = {
  ob_tenants : Serve.tenant_report list;
  ob_quarantines : int;  (** cores (single) or devices (fleet) *)
  ob_promotions : int;
  ob_replays : int;
  ob_duplicates : int;
  ob_lost_acked : int;
  ob_injected : int;
  ob_recovered : int;
  ob_unrecovered : int;
  ob_wall_us : float;
  ob_health : (int * string) list;  (** device slot → health name; fleet only *)
}

val empty_obs : obs
val obs_of_serve : Serve.report -> obs
val obs_of_cluster : Cluster.report -> obs

(** {1 Expressions and conditions} *)

type stat =
  | P50
  | P95
  | P99
  | Mean  (** end-to-end latency quantiles, µs *)
  | Completed
  | Failed
  | Shed  (** all three shed reasons summed *)
  | Slo_violations
  | Offered
  | Achieved_rps

type counter =
  | Quarantines
  | Promotions
  | Replays
  | Duplicates
  | Lost_acked
  | Faults_injected
  | Faults_recovered
  | Faults_unrecovered
  | Wall_us

type expr =
  | Const of float
  | Var of string  (** a [Let]-bound variable; unbound reads as 0 *)
  | Stat of stat * string
      (** per-tenant stat by tenant name; ["*"] aggregates (sums counts,
          takes the worst quantile) *)
  | Counter of counter

type cmp = Lt | Le | Gt | Ge | Eq

type cond =
  | Cmp of cmp * expr * expr
  | Health_is of int * string
      (** device slot's health name (fleet backends; false on single) *)
  | All of cond list
  | Any of cond list
  | Not of cond

val eval_expr : (string * float) list -> obs -> expr -> float
val eval_cond : (string * float) list -> obs -> cond -> bool
val render_expr : expr -> string
val render_cond : cond -> string

(** {1 Actions and nodes} *)

type action =
  | Serve_phase of {
      sp_label : string;
      sp_duration_ps : int;
      sp_tenants : Tenant.t list option;
          (** per-phase tenant override (rate curves anchor at the phase
              start); single-device backends only *)
    }
  | Sleep of int  (** advance simulated time without traffic *)
  | Inject_hang of { ih_dev : int; ih_system : int; ih_core : int; ih_after : int }
      (** arm a core hang on the (device's) injector: the [after]-th
          subsequent dispatch to that core never responds *)
  | Kill of int  (** fleet: freeze a device slot's engine *)
  | Restore of int  (** fleet: boot a fresh generation into the slot *)
  | Promote  (** fleet: force-promote a standby device *)
  | Checkpoint of string
      (** refresh the observation from a non-perturbing session snapshot *)

type node =
  | Act of action
  | Let of string * expr  (** evaluate now, bind for later conditions *)
  | If of { if_cond : cond; if_then : node list; if_else : node list }
  | While of { w_cond : cond; w_max_trips : int; w_body : node list }
      (** bounded loop: at most [w_max_trips] trips, and never past the
          scenario's node budget *)
  | Assert of { a_cond : cond; a_msg : string }
      (** a failed assertion records a failure (and fails the run) but
          execution continues *)

val serve_phase :
  ?tenants:Tenant.t list -> label:string -> duration_ps:int -> unit -> node

val inject_hang :
  ?dev:int -> ?after:int -> system:int -> core:int -> unit -> node

val node_label : node -> string

(** {1 Scenarios} *)

type backend =
  | Single of {
      sg_cfg : Serve.config;
      sg_plan : Fault.Plan.t option;
      sg_policy : Fault.Policy.t option;
    }
  | Fleet of {
      fl_cfg : Cluster.config;
      fl_plan : Fault.Plan.t option;
      fl_policy : Fault.Policy.t option;
    }

type t = {
  sc_name : string;
  sc_seed : int;
  sc_backend : backend;
  sc_nodes : node list;
  sc_max_nodes : int;
}

val make :
  ?max_nodes:int -> name:string -> seed:int -> backend:backend -> node list -> t
(** [max_nodes] (default 256) bounds the total nodes executed,
    including every loop trip — the budget that makes every scenario
    terminate. *)

(** {1 Results} *)

type entry = {
  en_id : int;  (** execution order *)
  en_node : string;
  en_enter_ps : int;
  en_exit_ps : int;
  en_verdict : string;  (** ["ok"] / ["ok (...)"] / ["fail: ..."] *)
  en_bindings : (string * float) list;
      (** the variable environment after the node, oldest binding first *)
}

type result = {
  res_scenario : string;
  res_seed : int;
  res_entries : entry list;  (** completion order (a loop's entry follows
                                 its body's entries) *)
  res_failures : string list;
  res_ok : bool;
  res_obs : obs;  (** after the last node *)
}

val run : ?tracer:Trace.t -> t -> result
(** Execute the scenario against a fresh session of its backend.
    Deterministic: the same scenario value yields a byte-identical
    {!transcript_json}, entry times included. [tracer] records one span
    per executed node on the ["scenario"] track. Invalid actions (chaos
    on a single-device backend, hang with no injector) record a failure
    verdict and continue. *)

val transcript_json : result -> string
(** Machine-comparable transcript, one entry per line, floats printed
    with a fixed format — the byte-compare artifact for the CI gate. *)

val render : result -> string

(** {1 Bundled scenarios}

    Executable regression stories shipped with the framework, seeded
    from the command line ([beethoven_gen scenario]):

    - ["warmup-ramp-hang-recover"] (single device): warm up, ramp the
      offered load along a piecewise curve, arm a core hang, serve
      through it (watchdog quarantine + recovery asserted), cool down
      until p95 is back under the bar.
    - ["diurnal-daycycle"] (single device): a trough / diurnal-sweep /
      trough day that must saturate the device at midday (sheds, p95
      inflation asserted) and meet the SLO again in the evening.
    - ["failover-under-peak"] (3-slot fleet): kill the loaded device
      under traffic; quarantine, drain, re-shard and replay must hand
      the work over with zero lost acked commands. *)

val warmup_ramp_hang_recover : seed:int -> t
val diurnal_daycycle : seed:int -> t
val failover_under_peak : seed:int -> t

val bundled : (string * (seed:int -> t)) list
val find_bundled : string -> (seed:int -> t) option
