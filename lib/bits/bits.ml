(* Little-endian limbs of [limb_bits] bits each; the top limb is kept
   masked so that structural equality coincides with value equality. *)

let limb_bits = 16 (* products of two limbs must fit an OCaml int *)
let limb_mask = (1 lsl limb_bits) - 1

type t = { width : int; limbs : int array }

let n_limbs width = if width = 0 then 0 else ((width - 1) / limb_bits) + 1

(* Mask the top limb in place and return the vector. *)
let canonicalize t =
  let n = Array.length t.limbs in
  if n > 0 then begin
    let used = t.width - ((n - 1) * limb_bits) in
    if used < limb_bits then
      t.limbs.(n - 1) <- t.limbs.(n - 1) land ((1 lsl used) - 1)
  end;
  t

let make width = { width; limbs = Array.make (n_limbs width) 0 }

let zero width =
  if width < 0 then invalid_arg "Bits.zero: negative width";
  make width

let width t = t.width

let bit t i =
  if i < 0 then invalid_arg "Bits.bit: negative index";
  if i >= t.width then false
  else t.limbs.(i / limb_bits) land (1 lsl (i mod limb_bits)) <> 0

let set_bit t i v =
  let limb = i / limb_bits and off = i mod limb_bits in
  if v then t.limbs.(limb) <- t.limbs.(limb) lor (1 lsl off)
  else t.limbs.(limb) <- t.limbs.(limb) land lnot (1 lsl off)

let of_int ~width n =
  if width < 0 then invalid_arg "Bits.of_int: negative width";
  if n < 0 then invalid_arg "Bits.of_int: negative value";
  let t = make width in
  let rec fill i n =
    if n <> 0 && i < Array.length t.limbs then begin
      t.limbs.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end
  in
  fill 0 n;
  canonicalize t

let of_int64 ~width n =
  let t = make width in
  let rec fill i n =
    if (not (Int64.equal n 0L)) && i < Array.length t.limbs then begin
      t.limbs.(i) <- Int64.to_int (Int64.logand n (Int64.of_int limb_mask));
      fill (i + 1) (Int64.shift_right_logical n limb_bits)
    end
  in
  fill 0 n;
  canonicalize t

let one width =
  if width < 1 then invalid_arg "Bits.one: width must be >= 1";
  of_int ~width 1

let ones width =
  let t = make width in
  Array.fill t.limbs 0 (Array.length t.limbs) limb_mask;
  canonicalize t

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let msb t = if t.width = 0 then false else bit t (t.width - 1)

let highest_set_bit t =
  let rec scan i =
    if i < 0 then -1 else if t.limbs.(i) <> 0 then
      let rec bitscan b = if t.limbs.(i) land (1 lsl b) <> 0 then b else bitscan (b - 1) in
      (i * limb_bits) + bitscan (limb_bits - 1)
    else scan (i - 1)
  in
  scan (Array.length t.limbs - 1)

let to_int t =
  let h = highest_set_bit t in
  if h >= 62 then failwith "Bits.to_int: value too large";
  let v = ref 0 in
  for i = Array.length t.limbs - 1 downto 0 do
    v := (!v lsl limb_bits) lor t.limbs.(i)
  done;
  !v

let to_int_trunc t =
  (* accumulate enough limbs to cover bit 61; the wrap-around of the
     intermediate [lsl] is harmless because the final mask keeps only the
     low 62 bits, which survive arithmetic modulo 2^63 *)
  let v = ref 0 in
  let top = min (Array.length t.limbs) (((62 - 1) / limb_bits) + 1) - 1 in
  for i = top downto 0 do
    v := (!v lsl limb_bits) lor t.limbs.(i)
  done;
  !v land max_int

let to_int64 t =
  let h = highest_set_bit t in
  if h >= 64 then failwith "Bits.to_int64: value too large";
  let v = ref 0L in
  for i = min (Array.length t.limbs) (64 / limb_bits) - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v limb_bits) (Int64.of_int t.limbs.(i))
  done;
  !v

let popcount t =
  let pop_limb l =
    let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + (l land 1)) in
    go l 0
  in
  Array.fold_left (fun acc l -> acc + pop_limb l) 0 t.limbs

let of_bin_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let w = List.length digits in
  let t = make w in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit t (w - 1 - i) true
      | _ -> invalid_arg "Bits.of_bin_string: not a binary digit")
    digits;
  t

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bits: not a hex digit"

let of_hex_string ~width s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let n = List.length digits in
  let t = make width in
  List.iteri
    (fun i c ->
      let v = hex_val c in
      let base = (n - 1 - i) * 4 in
      for b = 0 to 3 do
        if base + b < width && v land (1 lsl b) <> 0 then set_bit t (base + b) true
      done)
    digits;
  canonicalize t

let to_bin_string t =
  if t.width = 0 then "" else
    String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let to_hex_string t =
  if t.width = 0 then "0" else begin
    let n_digits = ((t.width - 1) / 4) + 1 in
    String.init n_digits (fun i ->
        let base = (n_digits - 1 - i) * 4 in
        let v = ref 0 in
        for b = 3 downto 0 do
          v := (!v lsl 1) lor (if bit t (base + b) then 1 else 0)
        done;
        "0123456789abcdef".[!v])
  end

let pp fmt t = Format.fprintf fmt "%d'h%s" t.width (to_hex_string t)

let check_same_width op a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" op a.width b.width)

let add a b =
  check_same_width "add" a b;
  let t = make a.width in
  let carry = ref 0 in
  for i = 0 to Array.length t.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    t.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  canonicalize t

let lognot t =
  let r = make t.width in
  Array.iteri (fun i l -> r.limbs.(i) <- lnot l land limb_mask) t.limbs;
  canonicalize r

let neg t =
  let r = lognot t in
  (* add one *)
  let carry = ref 1 in
  let i = ref 0 in
  let n = Array.length r.limbs in
  while !carry <> 0 && !i < n do
    let s = r.limbs.(!i) + !carry in
    r.limbs.(!i) <- s land limb_mask;
    carry := s lsr limb_bits;
    incr i
  done;
  canonicalize r

let sub a b =
  check_same_width "sub" a b;
  add a (neg b)

let succ t = if t.width = 0 then t else add t (one t.width)

let mul_wide a b =
  let t = make (a.width + b.width) in
  let na = Array.length a.limbs and nb = Array.length b.limbs in
  for i = 0 to na - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        if i + j < Array.length t.limbs then begin
          let p = (a.limbs.(i) * b.limbs.(j)) + t.limbs.(i + j) + !carry in
          t.limbs.(i + j) <- p land limb_mask;
          carry := p lsr limb_bits
        end
      done;
      let k = ref (i + nb) in
      while !carry <> 0 && !k < Array.length t.limbs do
        let s = t.limbs.(!k) + !carry in
        t.limbs.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    end
  done;
  canonicalize t

let resize t w =
  if w = t.width then t
  else begin
    let r = make w in
    let n = min (Array.length r.limbs) (Array.length t.limbs) in
    Array.blit t.limbs 0 r.limbs 0 n;
    canonicalize r
  end

let mul a b =
  check_same_width "mul" a b;
  resize (mul_wide a b) a.width

let logand a b =
  check_same_width "logand" a b;
  let t = make a.width in
  Array.iteri (fun i l -> t.limbs.(i) <- l land b.limbs.(i)) a.limbs;
  t

let logor a b =
  check_same_width "logor" a b;
  let t = make a.width in
  Array.iteri (fun i l -> t.limbs.(i) <- l lor b.limbs.(i)) a.limbs;
  t

let logxor a b =
  check_same_width "logxor" a b;
  let t = make a.width in
  Array.iteri (fun i l -> t.limbs.(i) <- l lxor b.limbs.(i)) a.limbs;
  t

let shift_left t n =
  if n < 0 then invalid_arg "Bits.shift_left: negative shift";
  let r = make t.width in
  for i = t.width - 1 downto n do
    if bit t (i - n) then set_bit r i true
  done;
  r

let shift_right t n =
  if n < 0 then invalid_arg "Bits.shift_right: negative shift";
  let r = make t.width in
  for i = 0 to t.width - 1 - n do
    if bit t (i + n) then set_bit r i true
  done;
  r

let shift_right_arith t n =
  let r = shift_right t n in
  if msb t then
    for i = max 0 (t.width - n) to t.width - 1 do
      set_bit r i true
    done;
  r

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  check_same_width "compare" a b;
  let rec go i =
    if i < 0 then 0
    else
      let c = Int.compare a.limbs.(i) b.limbs.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0

let compare_signed a b =
  check_same_width "compare_signed" a b;
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> compare a b

let to_signed_int t =
  if not (msb t) then to_int t
  else
    let m = neg t in
    -to_int m

let of_signed_int ~width n =
  if n >= 0 then of_int ~width n else neg (of_int ~width (-n))

(* limb_bits-wide window of [limbs] starting at bit [pos]; bits past the
   array read as zero (the top limb is canonical, so bits past the width
   are already zero) *)
let get_window limbs n pos =
  let i = pos / limb_bits and off = pos mod limb_bits in
  let lo = if i < n then limbs.(i) lsr off else 0 in
  let hi =
    if off > 0 && i + 1 < n then limbs.(i + 1) lsl (limb_bits - off) else 0
  in
  (lo lor hi) land limb_mask

(* OR the window [v] (<= limb_mask) into [limbs] at bit [pos]; target
   bits must currently be zero; bits past the array are dropped *)
let or_window limbs pos v =
  let i = pos / limb_bits and off = pos mod limb_bits in
  let n = Array.length limbs in
  if i < n then limbs.(i) <- limbs.(i) lor ((v lsl off) land limb_mask);
  if off > 0 && i + 1 < n then
    limbs.(i + 1) <- limbs.(i + 1) lor (v lsr (limb_bits - off))

(* OR all of [src]'s bits into [dst] starting at [dst_pos]; the affected
   bits of [dst] must be zero *)
let blit_bits src dst ~dst_pos =
  let n = Array.length src.limbs in
  let rec go k =
    if k < src.width then begin
      or_window dst.limbs (dst_pos + k) (get_window src.limbs n k);
      go (k + limb_bits)
    end
  in
  go 0

let slice t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.width then
    invalid_arg
      (Printf.sprintf "Bits.slice: [%d:%d] out of range for width %d" hi lo
         t.width);
  let w = hi - lo + 1 in
  let r = make w in
  let n = Array.length t.limbs in
  let rec go k =
    if k < w then begin
      or_window r.limbs k (get_window t.limbs n (lo + k));
      go (k + limb_bits)
    end
  in
  go 0;
  canonicalize r

let concat hi lo =
  let r = make (hi.width + lo.width) in
  blit_bits lo r ~dst_pos:0;
  blit_bits hi r ~dst_pos:lo.width;
  canonicalize r

(* head of the list = most-significant bits; single allocation *)
let concat_list parts =
  let total = List.fold_left (fun a p -> a + p.width) 0 parts in
  let r = make total in
  let pos = ref total in
  List.iter
    (fun p ->
      pos := !pos - p.width;
      blit_bits p r ~dst_pos:!pos)
    parts;
  canonicalize r

let sext t w =
  if w <= t.width then resize t w
  else begin
    let r = resize t w in
    if msb t then
      for i = t.width to w - 1 do
        set_bit r i true
      done;
    r
  end

let repeat t n =
  if n < 0 then invalid_arg "Bits.repeat: negative count";
  let rec go acc n = if n = 0 then acc else go (concat acc t) (n - 1) in
  if n = 0 then zero 0 else go t (n - 1)

let extract_int t ~lo ~width:w =
  if w < 0 || w > 62 then
    invalid_arg "Bits.extract_int: width must be in [0, 62]";
  if lo < 0 then invalid_arg "Bits.extract_int: negative lo";
  if w = 0 then 0
  else begin
    let mask = if w >= 62 then max_int else (1 lsl w) - 1 in
    let n = Array.length t.limbs in
    let v = ref 0 in
    let pos = ref (-(lo mod limb_bits)) in
    let i = ref (lo / limb_bits) in
    while !pos < w && !i < n do
      let limb = t.limbs.(!i) in
      (if !pos >= 0 then v := !v lor (limb lsl !pos)
       else v := !v lor (limb lsr - !pos));
      pos := !pos + limb_bits;
      incr i
    done;
    !v land mask
  end

let select_bits t positions =
  let w = List.length positions in
  let r = make w in
  List.iteri
    (fun i pos -> if bit t pos then set_bit r (w - 1 - i) true)
    positions;
  r

let reverse t =
  let r = make t.width in
  for i = 0 to t.width - 1 do
    if bit t i then set_bit r (t.width - 1 - i) true
  done;
  r
