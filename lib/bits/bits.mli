(** Arbitrary-width bitvectors.

    Values are unsigned, fixed-width words, the data values that flow through
    the {!Hw} RTL DSL (the role Chisel's [UInt]/[Bits] play for Beethoven).
    All arithmetic is modulo [2^width]; mixed-width operands are rejected
    with [Invalid_argument] so that width bugs surface at the point of use,
    exactly like an HDL elaborator would. *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. [w >= 0]. *)

val one : int -> t
(** [one w] is the value 1 at width [w >= 1]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] takes the low [width] bits of [n]. [n >= 0]. *)

val of_int64 : width:int -> int64 -> t
(** Low [width] bits of [n], interpreting [n] as unsigned. *)

val of_bin_string : string -> t
(** Parse a binary string, e.g. ["1010"] (width 4). Underscores ignored. *)

val of_hex_string : width:int -> string -> t
(** Parse a hex string, e.g. ["dead_beef"], truncated/zero-extended to
    [width]. *)

(** {1 Inspection} *)

val width : t -> int
val is_zero : t -> bool
val bit : t -> int -> bool
(** [bit t i] is bit [i] (0 = LSB). Out-of-range bits are [false]. *)

val msb : t -> bool
val to_int : t -> int
(** Raises [Failure] if the value does not fit in an OCaml [int]. *)

val to_int64 : t -> int64
(** Raises [Failure] if width > 64 and high bits are set. *)

val to_int_trunc : t -> int
(** Low 62 bits as a non-negative [int]; never raises. *)

val popcount : t -> int
val to_bin_string : t -> string
val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit
(** Prints as [width'hHEX]. *)

(** {1 Arithmetic} (operands must have equal width) *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Truncating multiply at the operand width. *)

val mul_wide : t -> t -> t
(** Full-width multiply: result width is the sum of operand widths. *)

val neg : t -> t
val succ : t -> t

(** {1 Logic} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Comparison} (unsigned unless noted) *)

val equal : t -> t -> bool
val compare : t -> t -> int
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val compare_signed : t -> t -> int
val to_signed_int : t -> int
(** Two's-complement interpretation; raises [Failure] when it can't fit. *)

val of_signed_int : width:int -> int -> t
(** Two's-complement encoding of a possibly negative [int]. *)

(** {1 Structure} *)

val slice : t -> hi:int -> lo:int -> t
(** [slice t ~hi ~lo] extracts bits [hi..lo] inclusive (width hi-lo+1). *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] becomes the high bits. *)

val concat_list : t list -> t
(** [concat_list [a; b; c]] = [concat a (concat b c)]. *)

val resize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sext : t -> int -> t
(** Sign-extend (or truncate) to the given width. *)

val repeat : t -> int -> t
(** [repeat t n] concatenates [n] copies of [t]. *)

val extract_int : t -> lo:int -> width:int -> int
(** [extract_int t ~lo ~width] is bits [lo .. lo+width-1] as a
    non-negative [int], without allocating — the single-word fast path of
    the compiled simulator. Bits beyond [t]'s width read as zero. Raises
    [Invalid_argument] when [width] is outside [0, 62] or [lo] is
    negative. *)

val select_bits : t -> int list -> t
(** Gather the listed bit positions (head of list = MSB of result). *)

val reverse : t -> t
(** Bit-reverse. *)
