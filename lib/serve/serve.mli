(** Multi-tenant serving layer over the composed SoC.

    The paper's runtime (§II-C, Fig. 3c) serializes every command through
    a userspace management server — the contention behind the
    ideal-vs-measured gap in Fig. 6. This library turns that observation
    into a load-testable serving stack: deterministic open-loop (Poisson)
    and closed-loop (think-time) clients generate kernel requests, a
    dispatcher with per-tenant FIFO queues schedules them weighted-fair
    across tenants, coalesces up to N compatible commands per server
    occupancy (amortizing [server_op_ps]), and shards them across the
    SoC's cores by least outstanding work; admission control bounds the
    queues, sheds requests whose deadline passed before dispatch, and
    keeps a per-tenant SLO ledger. The report gives offered vs. achieved
    throughput and p50/p95/p99/p99.9 latency split into
    queue-wait / service / collect phases via {!Desim.Stats}.

    Everything is seeded splitmix64 (like {!Fault}): the same seed over
    the same config yields a byte-identical report. *)

(** {1 Workload description} *)

module Mix : sig
  type kind = Memcpy | Vecadd

  type klass = {
    k_label : string;
    k_kind : kind;
    k_bytes : int;  (** payload per request; rounded up to 64 B *)
    k_weight : float;  (** relative draw probability within the mix *)
  }

  type t = klass list

  val kind_system : kind -> string
  (** Deployed system name a request of this kind is dispatched to. *)

  val memcpy : ?label:string -> ?weight:float -> bytes:int -> unit -> klass
  val vecadd : ?label:string -> ?weight:float -> bytes:int -> unit -> klass

  val default : t
  (** Small/medium/large memcpy (4/16/64 KB, the MachSuite working-set
      scale) plus a 4 KB vecadd. *)
end

module Tenant : sig
  type load =
    | Open_loop of { rate_rps : float }
        (** Poisson arrivals per client, regardless of completions. *)
    | Closed_loop of { think_ps : int }
        (** Each client keeps one request in flight and thinks between
            completions ([think_ps = 0] is a fully backlogged client). *)

  type t = {
    t_name : string;
    t_weight : float;  (** weighted-fair share of dispatched bytes *)
    t_clients : int;
    t_load : load;
    t_slo_ps : int;
        (** end-to-end latency target; completions above it are counted
            in the SLO-violation ledger *)
    t_deadline_ps : int;
        (** admission deadline: a request still queued this long after
            arrival is shed at dispatch instead of submitted *)
    t_queue_cap : int;  (** bounded tenant queue; arrivals beyond it shed *)
    t_mix : Mix.t;
  }

  val make :
    ?weight:float ->
    ?clients:int ->
    ?slo_ps:int ->
    ?deadline_ps:int ->
    ?queue_cap:int ->
    ?mix:Mix.t ->
    name:string ->
    load:load ->
    unit ->
    t
  (** Defaults: weight 1.0, 4 clients, SLO 150 µs, deadline 600 µs,
      queue cap 64, {!Mix.default}. *)
end

(** {1 Shed reasons}

    Every shed command is accounted under the reason it was dropped, so a
    report can tell overload (queue-full at admission, deadline at
    dispatch) apart from deliberate cluster-level graceful degradation
    (capacity lost to quarantined devices; lowest-weight tenants shed
    first). Single-SoC campaigns never shed for [Degradation] — that
    reason exists for the cluster dispatcher, which reuses this ledger. *)

type shed_reason =
  | Shed_queue_full  (** rejected at admission: tenant queue at capacity *)
  | Shed_deadline  (** dropped at dispatch: admission deadline passed *)
  | Shed_degradation
      (** dropped by cluster-level graceful degradation: offered load
          exceeds surviving capacity, lowest-weight tenants shed first *)

val shed_reason_name : shed_reason -> string

type policy =
  | Wfq
      (** weighted-fair queuing over dispatched bytes (start-time fair
          queueing: min virtual start tag wins; a tenant's tag advances
          by bytes/weight per dispatch) *)
  | Fifo  (** global arrival order, weights ignored *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

type config = {
  c_seed : int;
  c_duration_ps : int;  (** clients generate arrivals in [0, duration) *)
  c_tenants : Tenant.t list;
  c_policy : policy;
  c_batch_max : int;  (** commands coalesced per server occupancy *)
  c_core_cap : int;  (** per-core outstanding-command bound *)
  c_n_cores : int;  (** cores per deployed system *)
  c_max_events : int;  (** simulation event budget (livelock guard) *)
}

val config :
  ?seed:int ->
  ?duration_ps:int ->
  ?policy:policy ->
  ?batch_max:int ->
  ?core_cap:int ->
  ?n_cores:int ->
  ?max_events:int ->
  tenants:Tenant.t list ->
  unit ->
  config
(** Defaults: seed 42, 2 ms, Wfq, batch 8, core cap 4, 4 cores, 50M
    events. *)

(** {1 Results} *)

type phase = {
  ph_n : int;
  ph_mean_us : float;
  ph_p50_us : float;
  ph_p95_us : float;
  ph_p99_us : float;
  ph_p999_us : float;
}

type tenant_report = {
  tr_name : string;
  tr_weight : float;
  tr_offered : int;  (** requests generated by the tenant's clients *)
  tr_admitted : int;  (** accepted into the tenant queue *)
  tr_shed_queue : int;  (** rejected at admission: queue full *)
  tr_shed_deadline : int;  (** dropped at dispatch: deadline passed *)
  tr_shed_degraded : int;
      (** dropped by cluster-level graceful degradation (always 0 for a
          single-SoC campaign) *)
  tr_completed : int;
  tr_failed : int;  (** handle failed (recovery exhausted) *)
  tr_bad_responses : int;  (** response payload mismatched the request *)
  tr_slo_violations : int;  (** completions above [t_slo_ps] *)
  tr_bytes_served : int;
  tr_offered_rps : float;  (** offered / duration *)
  tr_achieved_rps : float;  (** completed / wall *)
  tr_queue : phase option;  (** enqueue → submission *)
  tr_service : phase option;  (** submission → response at MMIO *)
  tr_collect : phase option;  (** response at MMIO → collected *)
  tr_total : phase option;  (** enqueue → collected *)
}

type report = {
  r_seed : int;
  r_policy : policy;
  r_duration_ps : int;
  r_wall_ps : int;  (** duration plus the drain tail *)
  r_tenants : tenant_report list;
  r_batches : int;  (** server occupancies charged for submissions *)
  r_batched_commands : int;  (** commands submitted across them *)
  r_server_busy_ps : int;
  r_dispatched_per_core : (string * int array) list;
      (** per system, commands dispatched to each core (the
          least-outstanding-work sharding evidence) *)
  r_stuck : int;  (** requests still queued after drain (always 0) *)
  r_alloc_ok : bool;  (** allocator invariants after the churn *)
  r_leaked_blocks : int;  (** live allocations after drain (always 0) *)
  r_free_delta : int;  (** free_bytes drift vs. pre-campaign baseline *)
  r_injector : Fault.Injector.t option;
      (** present when the campaign ran under a fault plan *)
}

val run :
  ?tracer:Trace.t ->
  ?plan:Fault.Plan.t ->
  ?fault_policy:Fault.Policy.t ->
  ?platform:Platform.Device.t ->
  config ->
  unit ->
  report
(** Deploy one system per kernel kind used by the tenant mixes
    ([n_cores] each), start every client, and drive the simulation until
    the horizon passes and every admitted request settled. [plan] runs
    the campaign under seeded fault injection (the injector is returned
    in the report); [tracer] records queue-wait spans under each
    command's transaction id plus queue-depth samples and serve
    counters. Default platform {!Platform.Device.aws_f1}. *)

val violations : report -> string list
(** Accounting violations, [[]] when clean: per-tenant conservation
    (offered = admitted + shed at admission; admitted = completed + shed
    at dispatch + shed by degradation + failed — every admitted request
    settled exactly once),
    no bad responses, nothing stuck, allocator invariants hold with no
    leaked blocks and [free_bytes] back at its pre-campaign baseline,
    and (under a fault plan) no pending lost messages. *)

val conserved : report -> bool

val digest : report -> string
(** One-line machine-comparable summary (for determinism checks). *)

val render : report -> string
(** The SLO report: per-tenant counters, the shed-reason breakdown
    (queue-full vs deadline vs degradation — the line that tells cluster
    graceful degradation apart from plain overload), and the four-phase
    p50/p95/p99/p99.9 latency table. *)

(** {1 Reusable workload machinery}

    The seeded client machinery, exported so a multi-device placement
    layer ({!Cluster}) can generate byte-identical offered load without
    duplicating the derivations. *)

val draw_class : Fault.Rng.t -> Mix.t -> Mix.klass
(** Weighted draw of a request class from a mix. *)

val exp_draw : Fault.Rng.t -> mean_ps:float -> int
(** Exponential inter-arrival draw (>= 1 ps) — Poisson arrivals. *)

val client_rng : seed:int -> tenant:int -> client:int -> Fault.Rng.t
(** The per-client splitmix64 stream, derived from (campaign seed, tenant
    index, client index) only — never from completion order, so offered
    load is identical across policies, fault plans and placements. *)

val phase_of : Desim.Stats.series -> phase option
(** Summarize a latency series into the report's phase quantiles. *)

(** {1 Saturation sweep} *)

type sat_point = {
  sat_offered_rps : float;
  sat_achieved_rps : float;
  sat_completed : int;
  sat_shed : int;
  sat_p50_us : float;
  sat_p99_us : float;
}

val saturation :
  ?seed:int ->
  ?bytes:int ->
  ?n_cores:int ->
  ?clients:int ->
  ?duration_ps:int ->
  ?batch_max:int ->
  ?platform:Platform.Device.t ->
  rates_rps:float list ->
  unit ->
  sat_point list
(** Offered-load sweep of a single open-loop memcpy tenant: the
    throughput–latency saturation curve (the Fig. 6 contention shape
    regenerated from simulated concurrency). *)

val render_saturation : sat_point list -> string
