module B = Beethoven
module Soc = B.Soc
module H = Runtime.Handle
module S = Desim.Stats

(* ------------------------------------------------------------------ *)
(* Workload description                                               *)
(* ------------------------------------------------------------------ *)

module Mix = struct
  type kind = Memcpy | Vecadd | Sort

  type klass = {
    k_label : string;
    k_kind : kind;
    k_bytes : int;
    k_weight : float;
  }

  type t = klass list

  let kind_system = function
    | Memcpy -> "Memcpy"
    | Vecadd -> "VecAdd"
    | Sort -> "Sort"

  (* Payloads are rounded to the 64 B beat granule so every request maps
     onto whole bursts; vecadd additionally needs 4 B elements, which 64
     already guarantees. *)
  let round64 b = ((max 64 b) + 63) / 64 * 64

  let human b =
    if b >= 1024 && b mod 1024 = 0 then Printf.sprintf "%dk" (b / 1024)
    else Printf.sprintf "%db" b

  let memcpy ?label ?(weight = 1.0) ~bytes () =
    let b = round64 bytes in
    let k_label =
      match label with
      | Some l -> l
      | None -> Printf.sprintf "memcpy-%s" (human b)
    in
    { k_label; k_kind = Memcpy; k_bytes = b; k_weight = weight }

  let vecadd ?label ?(weight = 1.0) ~bytes () =
    let b = round64 bytes in
    let k_label =
      match label with
      | Some l -> l
      | None -> Printf.sprintf "vecadd-%s" (human b)
    in
    { k_label; k_kind = Vecadd; k_bytes = b; k_weight = weight }

  (* The MachSuite merge-sort kernel sorts a fixed 2048-element working
     set, so the class's payload is pinned to the kernel's buffer
     footprint rather than caller-chosen. *)
  let sort ?label ?(weight = 1.0) () =
    let b = Kernels.Machsuite_extra.(out_bytes Merge_sort) in
    let k_label =
      match label with Some l -> l | None -> Printf.sprintf "sort-%s" (human b)
    in
    { k_label; k_kind = Sort; k_bytes = b; k_weight = weight }

  let default =
    [
      memcpy ~weight:3.0 ~bytes:(4 * 1024) ();
      memcpy ~weight:2.0 ~bytes:(16 * 1024) ();
      memcpy ~weight:1.0 ~bytes:(64 * 1024) ();
      vecadd ~weight:2.0 ~bytes:(4 * 1024) ();
    ]

  let heterogeneous =
    default @ [ sort ~weight:1.0 () ]
end

(* ------------------------------------------------------------------ *)
(* Piecewise-linear rate curves                                       *)
(* ------------------------------------------------------------------ *)

module Curve = struct
  (* (time_ps, rps) breakpoints with strictly increasing times; the
     rate is linearly interpolated between breakpoints and clamped to
     the first/last rate outside them. *)
  type t = (int * float) array

  let make pts =
    if pts = [] then invalid_arg "Serve.Curve.make: empty breakpoint list";
    let a = Array.of_list pts in
    Array.iteri
      (fun i (tm, r) ->
        if r < 0. then invalid_arg "Serve.Curve.make: negative rate";
        if tm < 0 then invalid_arg "Serve.Curve.make: negative time";
        if i > 0 && tm <= fst a.(i - 1) then
          invalid_arg "Serve.Curve.make: times must be strictly increasing")
      a;
    a

  let const r = make [ (0, r) ]

  let breakpoints c = Array.to_list c

  let rate_at c ~at_ps =
    let n = Array.length c in
    let t0, r0 = c.(0) and tn, rn = c.(n - 1) in
    if at_ps <= t0 then r0
    else if at_ps >= tn then rn
    else begin
      (* find the segment [i, i+1] with t_i <= at_ps < t_{i+1} *)
      let i = ref 0 in
      while fst c.(!i + 1) <= at_ps do
        incr i
      done;
      let ta, ra = c.(!i) and tb, rb = c.(!i + 1) in
      let f = float_of_int (at_ps - ta) /. float_of_int (tb - ta) in
      ra +. (f *. (rb -. ra))
    end

  let max_rate c = Array.fold_left (fun m (_, r) -> Float.max m r) 0. c

  (* A curve whose every breakpoint carries the same rate degenerates to
     a constant: arrival generation takes the exact single-rate path, so
     a constant curve is byte-identical to no curve at all. *)
  let constant_rate c =
    let _, r0 = c.(0) in
    if Array.for_all (fun (_, r) -> r = r0) c then Some r0 else None

  (* One day cycle: overnight trough, linear morning ramp, a flat midday
     peak plateau, evening fall-off back to the trough. *)
  let diurnal ~period_ps ~trough_rps ~peak_rps =
    if period_ps < 10 then invalid_arg "Serve.Curve.diurnal: period too short";
    make
      [
        (0, trough_rps);
        (period_ps / 10, trough_rps);
        (4 * period_ps / 10, peak_rps);
        (6 * period_ps / 10, peak_rps);
        (9 * period_ps / 10, trough_rps);
        (period_ps, trough_rps);
      ]

  let render c =
    String.concat " "
      (List.map (fun (tm, r) -> Printf.sprintf "%d:%.0f" tm r) (breakpoints c))
end

module Tenant = struct
  type load =
    | Open_loop of { rate_rps : float; rate_curve : Curve.t option }
    | Closed_loop of { think_ps : int }

  let open_loop ?curve ~rate_rps () =
    Open_loop { rate_rps; rate_curve = curve }

  let closed_loop ~think_ps () = Closed_loop { think_ps }

  type t = {
    t_name : string;
    t_weight : float;
    t_clients : int;
    t_load : load;
    t_slo_ps : int;
    t_deadline_ps : int;
    t_queue_cap : int;
    t_mix : Mix.t;
  }

  let make ?(weight = 1.0) ?(clients = 4) ?(slo_ps = 150_000_000)
      ?(deadline_ps = 600_000_000) ?(queue_cap = 64) ?(mix = Mix.default)
      ~name ~load () =
    if weight <= 0. then invalid_arg "Serve.Tenant.make: weight must be > 0";
    if clients < 1 then invalid_arg "Serve.Tenant.make: clients must be >= 1";
    if queue_cap < 1 then
      invalid_arg "Serve.Tenant.make: queue_cap must be >= 1";
    if mix = [] then invalid_arg "Serve.Tenant.make: empty mix";
    {
      t_name = name;
      t_weight = weight;
      t_clients = clients;
      t_load = load;
      t_slo_ps = slo_ps;
      t_deadline_ps = deadline_ps;
      t_queue_cap = queue_cap;
      t_mix = mix;
    }
end

type shed_reason = Shed_queue_full | Shed_deadline | Shed_degradation

let shed_reason_name = function
  | Shed_queue_full -> "queue-full"
  | Shed_deadline -> "deadline"
  | Shed_degradation -> "degradation"

type policy = Wfq | Fifo

let policy_name = function Wfq -> "wfq" | Fifo -> "fifo"

let policy_of_name = function
  | "wfq" -> Some Wfq
  | "fifo" -> Some Fifo
  | _ -> None

type config = {
  c_seed : int;
  c_duration_ps : int;
  c_tenants : Tenant.t list;
  c_policy : policy;
  c_batch_max : int;
  c_core_cap : int;
  c_n_cores : int;
  c_max_events : int;
}

let config ?(seed = 42) ?(duration_ps = 2_000_000_000) ?(policy = Wfq)
    ?(batch_max = 8) ?(core_cap = 4) ?(n_cores = 4) ?(max_events = 50_000_000)
    ~tenants () =
  if tenants = [] then invalid_arg "Serve.config: no tenants";
  if duration_ps < 1 then invalid_arg "Serve.config: duration must be >= 1";
  if batch_max < 1 then invalid_arg "Serve.config: batch_max must be >= 1";
  if core_cap < 1 then invalid_arg "Serve.config: core_cap must be >= 1";
  if n_cores < 1 then invalid_arg "Serve.config: n_cores must be >= 1";
  {
    c_seed = seed;
    c_duration_ps = duration_ps;
    c_tenants = tenants;
    c_policy = policy;
    c_batch_max = batch_max;
    c_core_cap = core_cap;
    c_n_cores = n_cores;
    c_max_events = max_events;
  }

(* ------------------------------------------------------------------ *)
(* Campaign state                                                     *)
(* ------------------------------------------------------------------ *)

type req = {
  rq_class : Mix.klass;
  rq_arrival : int;
  rq_deadline : int;
  rq_k : (unit -> unit) option;  (* closed-loop continuation *)
}

type tstate = {
  ts_t : Tenant.t;
  ts_queue : req Queue.t;
  mutable ts_vft : float;  (* WFQ virtual finish time of the last dispatch *)
  mutable ts_offered : int;
  mutable ts_admitted : int;
  mutable ts_shed_queue : int;
  mutable ts_shed_deadline : int;
  ts_shed_degraded : int;
      (* always 0 in a single-SoC campaign; the cluster layer accounts
         degradation sheds in its own aggregated reports *)
  mutable ts_completed : int;
  mutable ts_failed : int;
  mutable ts_bad : int;
  mutable ts_slo_viol : int;
  mutable ts_bytes : int;
  ts_q_wait : S.series;  (* all four in microseconds *)
  ts_service : S.series;
  ts_collect : S.series;
  ts_total : S.series;
}

(* One deployed system (a kernel kind at [c_n_cores] cores): per-core
   outstanding counts drive the least-outstanding-work shard choice, the
   dispatched counts are the evidence kept for the report. *)
type sysstate = {
  sy_kind : Mix.kind;
  sy_name : string;
  sy_id : int;  (* index in the elaborated design, for quarantine checks *)
  sy_out : int array;
  sy_disp : int array;
}

type sstate = {
  st_cfg : config;
  st_engine : Desim.Engine.t;
  st_handle : H.t;
  st_tracer : Trace.t option;
  st_tenants : tstate array;
  st_systems : sysstate array;
  mutable st_global_v : float;  (* WFQ system virtual time *)
  mutable st_armed : bool;
  mutable st_batches : int;
  mutable st_batched : int;
}

let sys_index st (kind : Mix.kind) =
  let rec go i =
    if i >= Array.length st.st_systems then
      invalid_arg "Serve: request kind has no deployed system"
    else if st.st_systems.(i).sy_kind = kind then i
    else go (i + 1)
  in
  go 0

let sample_depth st ts =
  match st.st_tracer with
  | None -> ()
  | Some tr ->
      Trace.sample tr
        ~now:(Desim.Engine.now st.st_engine)
        (Printf.sprintf "serve.q.%s.depth" ts.ts_t.Tenant.t_name)
        (Queue.length ts.ts_queue)

let bump st name =
  match st.st_tracer with None -> () | Some tr -> Trace.add tr name 1

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                         *)
(* ------------------------------------------------------------------ *)

(* Deadline shedding happens when a request reaches the head of its
   tenant queue: requests behind it are younger (per-tenant FIFO), so an
   un-expired head proves nothing behind it expired. *)
let shed_expired st ts =
  let now = Desim.Engine.now st.st_engine in
  let rec go () =
    match Queue.peek_opt ts.ts_queue with
    | Some r when now > r.rq_deadline ->
        ignore (Queue.pop ts.ts_queue);
        ts.ts_shed_deadline <- ts.ts_shed_deadline + 1;
        bump st "serve.shed_deadline";
        sample_depth st ts;
        (match r.rq_k with Some k -> k () | None -> ());
        go ()
    | _ -> ()
  in
  go ()

(* Least-outstanding-work core within a system, respecting the per-core
   occupancy cap and avoiding quarantined cores when a healthy one has
   room. If only quarantined cores have room we still dispatch — the
   handle fails fast and the request settles as failed instead of
   wedging its queue. *)
let choose_core st sy =
  let cap = st.st_cfg.c_core_cap in
  let best = ref (-1) and best_q = ref (-1) in
  Array.iteri
    (fun c out ->
      if out < cap then
        if H.is_quarantined st.st_handle ~system_id:sy.sy_id ~core_id:c then (
          if !best_q < 0 || out < sy.sy_out.(!best_q) then best_q := c)
        else if !best < 0 || out < sy.sy_out.(!best) then best := c)
    sy.sy_out;
  if !best >= 0 then Some !best else if !best_q >= 0 then Some !best_q
  else None

(* Start-time fair queueing: the key of a tenant's head request is its
   virtual START tag — the finish tag of the tenant's previous dispatch,
   or the system virtual time if the tenant went idle. Dispatching
   advances the tenant's finish tag by bytes/weight (heavier tenants
   accumulate virtual time more slowly, so they win more often) and
   ratchets the system time to the dispatched start tag. Comparing start
   tags rather than finish tags matters: a finish-tag rule under this
   virtual clock permanently starves any flow whose normalized cost
   (bytes/weight) exceeds a backlogged competitor's. *)
let wfq_key st ts = Float.max ts.ts_vft st.st_global_v

(* Pick (and reserve a core for) the next dispatchable request.
   [same] constrains the choice to one deployed system — the batching
   compatibility rule: one server occupancy carries commands for one
   system only. *)
let pick_next st ~same =
  let cand = ref None in
  Array.iteri
    (fun ti ts ->
      shed_expired st ts;
      match Queue.peek_opt ts.ts_queue with
      | None -> ()
      | Some r -> (
          let si = sys_index st r.rq_class.Mix.k_kind in
          if (match same with Some s -> s = si | None -> true) then
            match choose_core st st.st_systems.(si) with
            | None -> ()  (* system saturated: head-of-line blocked *)
            | Some core ->
                let key =
                  match st.st_cfg.c_policy with
                  | Wfq -> wfq_key st ts
                  | Fifo -> float_of_int r.rq_arrival
                in
                let better =
                  match !cand with
                  | None -> true
                  | Some (k, _, _, _, _) -> key < k
                in
                if better then cand := Some (key, ti, r, si, core)))
    st.st_tenants;
  match !cand with
  | None -> None
  | Some (_, ti, r, si, core) ->
      let ts = st.st_tenants.(ti) in
      ignore (Queue.pop ts.ts_queue);
      sample_depth st ts;
      (match st.st_cfg.c_policy with
      | Wfq ->
          let start = Float.max ts.ts_vft st.st_global_v in
          ts.ts_vft <-
            start
            +. (float_of_int r.rq_class.Mix.k_bytes /. ts.ts_t.Tenant.t_weight);
          st.st_global_v <- start
      | Fifo -> ());
      (* reserve the slot so the rest of the batch sees the occupancy *)
      st.st_systems.(si).sy_out.(core) <-
        st.st_systems.(si).sy_out.(core) + 1;
      Some (ts, r, si, core)

let rec arm_dispatch st =
  if not st.st_armed then begin
    st.st_armed <- true;
    Desim.Engine.schedule st.st_engine ~delay:0 (fun () ->
        st.st_armed <- false;
        dispatch_all st)
  end

and dispatch_all st =
  match pick_next st ~same:None with
  | None -> ()
  | Some first ->
      let _, _, si, _ = first in
      let picks = ref [ first ] and n = ref 1 in
      let continue_ = ref true in
      while !continue_ && !n < st.st_cfg.c_batch_max do
        match pick_next st ~same:(Some si) with
        | Some p ->
            picks := p :: !picks;
            incr n
        | None -> continue_ := false
      done;
      let picks = List.rev !picks in
      st.st_batches <- st.st_batches + 1;
      st.st_batched <- st.st_batched + !n;
      let batch = H.begin_batch st.st_handle ~n:!n in
      List.iter (submit st ~batch) picks;
      dispatch_all st

and submit st ~batch (ts, r, si, core) =
  let sy = st.st_systems.(si) in
  let h = st.st_handle in
  let now = Desim.Engine.now st.st_engine in
  sy.sy_disp.(core) <- sy.sy_disp.(core) + 1;
  let bytes = r.rq_class.Mix.k_bytes in
  let a = H.malloc h bytes and b = H.malloc h bytes in
  let args, cmd, expect =
    match r.rq_class.Mix.k_kind with
    | Mix.Memcpy ->
        ( [
            ("src", Int64.of_int a.H.rp_addr);
            ("dst", Int64.of_int b.H.rp_addr);
            ("bytes", Int64.of_int bytes);
          ],
          Kernels.Memcpy.command,
          Int64.of_int bytes )
    | Mix.Vecadd ->
        let n_eles = bytes / 4 in
        ( [
            ("addend", 1L);
            ("vec_addr", Int64.of_int a.H.rp_addr);
            ("out_addr", Int64.of_int b.H.rp_addr);
            ("n_eles", Int64.of_int n_eles);
          ],
          Kernels.Vecadd.command,
          Int64.of_int n_eles )
    | Mix.Sort ->
        (* the sort kernel's in2 channel is unused (in2_bytes = 0); the
           freshly allocated input buffer is zeroed device memory, which
           sorts deterministically *)
        ( [
            ("in1", Int64.of_int a.H.rp_addr);
            ("in2", Int64.of_int a.H.rp_addr);
            ("out", Int64.of_int b.H.rp_addr);
          ],
          Kernels.Machsuite_extra.command,
          1L )
  in
  let rh = H.send ~batch ~queued_at:r.rq_arrival h ~system:sy.sy_name ~core ~cmd ~args in
  H.on_settled rh (fun res ->
      let tnow = Desim.Engine.now st.st_engine in
      H.mfree h a;
      H.mfree h b;
      sy.sy_out.(core) <- sy.sy_out.(core) - 1;
      (match res with
      | Ok v ->
          ts.ts_completed <- ts.ts_completed + 1;
          if v <> expect then ts.ts_bad <- ts.ts_bad + 1;
          ts.ts_bytes <- ts.ts_bytes + bytes;
          let us ps = float_of_int ps /. 1e6 in
          let total = tnow - r.rq_arrival in
          let seen =
            match H.response_seen_at rh with Some s -> s | None -> tnow
          in
          S.observe ts.ts_q_wait (us (now - r.rq_arrival));
          S.observe ts.ts_service (us (seen - now));
          S.observe ts.ts_collect (us (tnow - seen));
          S.observe ts.ts_total (us total);
          if total > ts.ts_t.Tenant.t_slo_ps then
            ts.ts_slo_viol <- ts.ts_slo_viol + 1;
          bump st "serve.completed";
          (match st.st_tracer with
          | Some tr ->
              Trace.observe tr
                (Printf.sprintf "serve.%s.total_us" ts.ts_t.Tenant.t_name)
                (us total)
          | None -> ())
      | Error _ ->
          ts.ts_failed <- ts.ts_failed + 1;
          bump st "serve.failed");
      (match r.rq_k with Some k -> k () | None -> ());
      arm_dispatch st)

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

let offer st ts ~klass ~k =
  ts.ts_offered <- ts.ts_offered + 1;
  if Queue.length ts.ts_queue >= ts.ts_t.Tenant.t_queue_cap then begin
    ts.ts_shed_queue <- ts.ts_shed_queue + 1;
    bump st "serve.shed_queue";
    false
  end
  else begin
    let now = Desim.Engine.now st.st_engine in
    Queue.push
      {
        rq_class = klass;
        rq_arrival = now;
        rq_deadline = now + ts.ts_t.Tenant.t_deadline_ps;
        rq_k = k;
      }
      ts.ts_queue;
    ts.ts_admitted <- ts.ts_admitted + 1;
    bump st "serve.admitted";
    sample_depth st ts;
    arm_dispatch st;
    true
  end

(* ------------------------------------------------------------------ *)
(* Clients                                                            *)
(* ------------------------------------------------------------------ *)

let draw_class rng (mix : Mix.t) =
  let total = List.fold_left (fun a k -> a +. k.Mix.k_weight) 0. mix in
  let u = Fault.Rng.float rng *. total in
  let rec go u = function
    | [ k ] -> k
    | k :: tl -> if u < k.Mix.k_weight then k else go (u -. k.Mix.k_weight) tl
    | [] -> assert false
  in
  go u mix

let exp_draw rng ~mean_ps =
  let u = Fault.Rng.float rng in
  max 1 (int_of_float (-.log (1. -. u) *. mean_ps))

(* Every client owns a splitmix64 stream derived from (campaign seed,
   phase salt, tenant index, client index) only — arrivals, sizes and
   think times never depend on completion order, so the offered load is
   identical across policies and fault plans. Salt 0 (the default, and
   every single-phase campaign) reproduces the historical derivation
   exactly; session phases salt by phase index so successive phases
   draw mutually independent streams. *)
let client_rng ?(salt = 0) ~seed ~tenant ~client () =
  Fault.Rng.create
    ~seed:
      (Int64.of_int
         ((seed * 1_000_003) + (salt * 523_717) + (tenant * 8191)
         + (client * 131) + 17))

(* The seeded client machinery, shared by the single-SoC campaign, the
   session phases, and the cluster layer. Arrivals are generated on
   [engine] in [now, horizon); [offer] admits one request for tenant
   [tenant] and returns false when shed at admission.

   Open-loop clients without a curve (or with a constant one — see
   [Curve.constant_rate]) draw exponential inter-arrivals at the fixed
   rate: exactly the historical draw sequence. A genuinely time-varying
   curve generates a non-homogeneous Poisson process by Lewis-Shedler
   thinning: candidate arrivals at the curve's max rate, each accepted
   with probability rate(now - t0) / max_rate. [t0] anchors curve time
   (a phase started at t0 evaluates the curve from 0 at t0). *)
let spawn_clients ~engine ~seed ?(salt = 0) ~horizon ?(t0 = 0) ~tenants
    ~offer () =
  List.iteri
    (fun ti t ->
      for ci = 0 to t.Tenant.t_clients - 1 do
        let rng = client_rng ~salt ~seed ~tenant:ti ~client:ci () in
        match t.Tenant.t_load with
        | Tenant.Open_loop { rate_rps; rate_curve } -> (
            let constant rate =
              if rate <= 0. then
                invalid_arg "Serve: open-loop rate must be > 0";
              let mean_ps = 1e12 /. rate in
              let rec arrive () =
                if Desim.Engine.now engine < horizon then begin
                  ignore
                    (offer ~tenant:ti ~klass:(draw_class rng t.Tenant.t_mix)
                       ~k:None);
                  Desim.Engine.schedule engine ~delay:(exp_draw rng ~mean_ps)
                    arrive
                end
              in
              Desim.Engine.schedule engine ~delay:(exp_draw rng ~mean_ps)
                arrive
            in
            match rate_curve with
            | None -> constant rate_rps
            | Some c -> (
                match Curve.constant_rate c with
                | Some r -> constant r
                | None ->
                    let lmax = Curve.max_rate c in
                    let mean_ps = 1e12 /. lmax in
                    let rec arrive () =
                      let now = Desim.Engine.now engine in
                      if now < horizon then begin
                        if
                          Fault.Rng.float rng *. lmax
                          < Curve.rate_at c ~at_ps:(now - t0)
                        then
                          ignore
                            (offer ~tenant:ti
                               ~klass:(draw_class rng t.Tenant.t_mix)
                               ~k:None);
                        Desim.Engine.schedule engine
                          ~delay:(exp_draw rng ~mean_ps)
                          arrive
                      end
                    in
                    Desim.Engine.schedule engine
                      ~delay:(exp_draw rng ~mean_ps)
                      arrive))
        | Tenant.Closed_loop { think_ps } ->
            let rec issue () =
              if Desim.Engine.now engine < horizon then begin
                let k () =
                  Desim.Engine.schedule engine ~delay:(max 1 think_ps) issue
                in
                if
                  not
                    (offer ~tenant:ti
                       ~klass:(draw_class rng t.Tenant.t_mix)
                       ~k:(Some k))
                then
                  (* admission shed: back off so a full queue is retried
                     at queue-drain granularity, not every tick *)
                  Desim.Engine.schedule engine
                    ~delay:(max think_ps 1_000_000)
                    issue
              end
            in
            (* stagger the initial burst deterministically *)
            Desim.Engine.schedule engine
              ~delay:(1 + Fault.Rng.int rng ~bound:(max 1 (think_ps + 1)))
              issue
      done)
    tenants

let start_clients ?(salt = 0) ?(t0 = 0) ~horizon st =
  spawn_clients ~engine:st.st_engine ~seed:st.st_cfg.c_seed ~salt ~horizon
    ~t0
    ~tenants:(Array.to_list (Array.map (fun ts -> ts.ts_t) st.st_tenants))
    ~offer:(fun ~tenant ~klass ~k ->
      offer st st.st_tenants.(tenant) ~klass ~k)
    ()

(* ------------------------------------------------------------------ *)
(* Results                                                            *)
(* ------------------------------------------------------------------ *)

type phase = {
  ph_n : int;
  ph_mean_us : float;
  ph_p50_us : float;
  ph_p95_us : float;
  ph_p99_us : float;
  ph_p999_us : float;
}

type tenant_report = {
  tr_name : string;
  tr_weight : float;
  tr_offered : int;
  tr_admitted : int;
  tr_shed_queue : int;
  tr_shed_deadline : int;
  tr_shed_degraded : int;
  tr_completed : int;
  tr_failed : int;
  tr_bad_responses : int;
  tr_slo_violations : int;
  tr_bytes_served : int;
  tr_offered_rps : float;
  tr_achieved_rps : float;
  tr_queue : phase option;
  tr_service : phase option;
  tr_collect : phase option;
  tr_total : phase option;
}

type report = {
  r_seed : int;
  r_policy : policy;
  r_duration_ps : int;
  r_wall_ps : int;
  r_tenants : tenant_report list;
  r_batches : int;
  r_batched_commands : int;
  r_server_busy_ps : int;
  r_dispatched_per_core : (string * int array) list;
  r_stuck : int;
  r_alloc_ok : bool;
  r_leaked_blocks : int;
  r_free_delta : int;
  r_injector : Fault.Injector.t option;
}

let phase_of series =
  match S.summarize_opt series with
  | None -> None
  | Some s ->
      let q q =
        match S.quantile_opt series ~q with Some v -> v | None -> 0.
      in
      Some
        {
          ph_n = s.S.n;
          ph_mean_us = s.S.mean;
          ph_p50_us = q 0.5;
          ph_p95_us = q 0.95;
          ph_p99_us = q 0.99;
          ph_p999_us = q 0.999;
        }

let kinds_used tenants =
  let used k =
    List.exists
      (fun t -> List.exists (fun c -> c.Mix.k_kind = k) t.Tenant.t_mix)
      tenants
  in
  List.filter used [ Mix.Memcpy; Mix.Vecadd; Mix.Sort ]

let system_of_kind (k : Mix.kind) ~n_cores =
  match k with
  | Mix.Memcpy -> Kernels.Memcpy.system ~n_cores
  | Mix.Vecadd -> Kernels.Vecadd.system ~n_cores
  | Mix.Sort ->
      Kernels.Machsuite_extra.system Kernels.Machsuite_extra.Merge_sort
        ~n_cores

let behavior_of_system name =
  if name = "Memcpy" then Kernels.Memcpy.behavior
  else if name = "VecAdd" then Kernels.Vecadd.behavior
  else Kernels.Machsuite_extra.behavior Kernels.Machsuite_extra.Merge_sort

let mk_tstate t =
  {
    ts_t = t;
    ts_queue = Queue.create ();
    ts_vft = 0.;
    ts_offered = 0;
    ts_admitted = 0;
    ts_shed_queue = 0;
    ts_shed_deadline = 0;
    ts_shed_degraded = 0;
    ts_completed = 0;
    ts_failed = 0;
    ts_bad = 0;
    ts_slo_viol = 0;
    ts_bytes = 0;
    ts_q_wait = S.series ();
    ts_service = S.series ();
    ts_collect = S.series ();
    ts_total = S.series ();
  }

(* Assemble a report from the live campaign state. Pure observation: it
   reads counters, summarizes the latency series and checks allocator
   invariants, but never touches a queue, an engine, or an RNG stream —
   the contract that makes {!Session.snapshot} safe mid-run. *)
let mk_report st ~inj ~baseline_free ~duration_ps ~t0 =
  let cfg = st.st_cfg in
  let wall_ps = Desim.Engine.now st.st_engine - t0 in
  let stuck =
    Array.fold_left (fun a ts -> a + Queue.length ts.ts_queue) 0 st.st_tenants
  in
  let alloc = H.allocator st.st_handle in
  let tenants =
    Array.to_list
      (Array.map
         (fun ts ->
           {
             tr_name = ts.ts_t.Tenant.t_name;
             tr_weight = ts.ts_t.Tenant.t_weight;
             tr_offered = ts.ts_offered;
             tr_admitted = ts.ts_admitted;
             tr_shed_queue = ts.ts_shed_queue;
             tr_shed_deadline = ts.ts_shed_deadline;
             tr_shed_degraded = ts.ts_shed_degraded;
             tr_completed = ts.ts_completed;
             tr_failed = ts.ts_failed;
             tr_bad_responses = ts.ts_bad;
             tr_slo_violations = ts.ts_slo_viol;
             tr_bytes_served = ts.ts_bytes;
             tr_offered_rps =
               float_of_int ts.ts_offered
               /. (float_of_int duration_ps /. 1e12);
             tr_achieved_rps =
               (if wall_ps = 0 then 0.
                else
                  float_of_int ts.ts_completed
                  /. (float_of_int wall_ps /. 1e12));
             tr_queue = phase_of ts.ts_q_wait;
             tr_service = phase_of ts.ts_service;
             tr_collect = phase_of ts.ts_collect;
             tr_total = phase_of ts.ts_total;
           })
         st.st_tenants)
  in
  {
    r_seed = cfg.c_seed;
    r_policy = cfg.c_policy;
    r_duration_ps = duration_ps;
    r_wall_ps = wall_ps;
    r_tenants = tenants;
    r_batches = st.st_batches;
    r_batched_commands = st.st_batched;
    r_server_busy_ps = H.server_busy_ps st.st_handle;
    r_dispatched_per_core =
      Array.to_list
        (Array.map (fun sy -> (sy.sy_name, Array.copy sy.sy_disp)) st.st_systems);
    r_stuck = stuck;
    r_alloc_ok = Runtime.Alloc.check_invariants alloc;
    r_leaked_blocks = Runtime.Alloc.n_blocks alloc;
    r_free_delta = Runtime.Alloc.free_bytes alloc - baseline_free;
    r_injector = inj;
  }

(* ------------------------------------------------------------------ *)
(* Sessions: the SoC outlives a single campaign                       *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type t = {
    se_cfg : config;
    se_engine : Desim.Engine.t;
    se_handle : H.t;
    se_tracer : Trace.t option;
    se_inj : Fault.Injector.t option;
    se_baseline_free : int;
    se_kinds : Mix.kind list;  (* systems deployed at create time *)
    mutable se_phases : int;  (* phases started (the next phase's salt) *)
    mutable se_cur : (sstate * int * int) option;  (* state, t0, duration *)
    mutable se_last : report option;
  }

  let create ?tracer ?plan ?fault_policy
      ?(platform = Platform.Device.aws_f1) ?systems ?cache cfg () =
    let kinds = kinds_used cfg.c_tenants in
    let system_of =
      match systems with None -> system_of_kind | Some f -> f
    in
    let systems =
      List.map (fun k -> system_of k ~n_cores:cfg.c_n_cores) kinds
    in
    let inj = Option.map Fault.Injector.create plan in
    let config = B.Config.make ~name:"serve" systems in
    let design =
      match cache with
      | Some c -> B.Elaborate.Cache.elaborate c config platform
      | None -> B.Elaborate.elaborate config platform
    in
    let soc =
      Soc.create ?tracer ?fault:inj ?policy:fault_policy design
        ~behaviors:behavior_of_system
    in
    let handle = H.create soc in
    let engine = Soc.engine soc in
    let baseline_free = Runtime.Alloc.free_bytes (H.allocator handle) in
    {
      se_cfg = cfg;
      se_engine = engine;
      se_handle = handle;
      se_tracer = tracer;
      se_inj = inj;
      se_baseline_free = baseline_free;
      se_kinds = kinds;
      se_phases = 0;
      se_cur = None;
      se_last = None;
    }

  let engine s = s.se_engine
  let handle s = s.se_handle
  let now s = Desim.Engine.now s.se_engine
  let injector s = s.se_inj
  let phases s = s.se_phases

  let start_phase ?tenants s ~duration_ps =
    (match s.se_cur with
    | Some _ ->
        invalid_arg "Serve.Session.start_phase: a phase is already running"
    | None -> ());
    if duration_ps < 1 then
      invalid_arg "Serve.Session.start_phase: duration must be >= 1";
    let tenants =
      match tenants with
      | None -> s.se_cfg.c_tenants
      | Some [] -> invalid_arg "Serve.Session.start_phase: no tenants"
      | Some l ->
          List.iter
            (fun t ->
              List.iter
                (fun c ->
                  if not (List.mem c.Mix.k_kind s.se_kinds) then
                    invalid_arg
                      "Serve.Session.start_phase: tenant mix uses a kind \
                       with no deployed system (declare it in the session \
                       config's tenants)")
                t.Tenant.t_mix)
            l;
          l
    in
    let st =
      {
        st_cfg = s.se_cfg;
        st_engine = s.se_engine;
        st_handle = s.se_handle;
        st_tracer = s.se_tracer;
        st_tenants = Array.of_list (List.map mk_tstate tenants);
        st_systems =
          Array.of_list
            (List.mapi
               (fun i k ->
                 {
                   sy_kind = k;
                   sy_name = Mix.kind_system k;
                   sy_id = i;
                   sy_out = Array.make s.se_cfg.c_n_cores 0;
                   sy_disp = Array.make s.se_cfg.c_n_cores 0;
                 })
               s.se_kinds);
        st_global_v = 0.;
        st_armed = false;
        st_batches = 0;
        st_batched = 0;
      }
    in
    let t0 = Desim.Engine.now s.se_engine in
    s.se_cur <- Some (st, t0, duration_ps);
    start_clients ~salt:s.se_phases ~t0 ~horizon:(t0 + duration_ps) st;
    s.se_phases <- s.se_phases + 1

  let advance s ~until =
    Desim.Engine.run ~until ~max_events:s.se_cfg.c_max_events s.se_engine

  let sleep s ~delta_ps =
    if delta_ps < 0 then invalid_arg "Serve.Session.sleep: negative delta";
    advance s ~until:(now s + delta_ps)

  (* Mid-run, non-finalizing summary of the work completed so far in the
     current phase (or the last finished phase when idle). Never
     perturbs the campaign: no queue is popped, no event fires, no RNG
     stream advances — double-snapshotting and then finishing the phase
     yields the same final report as finishing it without snapshots. *)
  let snapshot s =
    match s.se_cur with
    | Some (st, t0, duration_ps) ->
        mk_report st ~inj:s.se_inj ~baseline_free:s.se_baseline_free
          ~duration_ps ~t0
    | None -> (
        match s.se_last with
        | Some r -> r
        | None -> invalid_arg "Serve.Session.snapshot: no phase has run")

  let finish_phase s =
    match s.se_cur with
    | None -> invalid_arg "Serve.Session.finish_phase: no phase running"
    | Some (st, t0, duration_ps) ->
        Desim.Engine.drain_or_fail ~max_events:s.se_cfg.c_max_events
          s.se_engine;
        let r =
          mk_report st ~inj:s.se_inj ~baseline_free:s.se_baseline_free
            ~duration_ps ~t0
        in
        s.se_cur <- None;
        s.se_last <- Some r;
        r

  let run_phase ?tenants s ~duration_ps =
    start_phase ?tenants s ~duration_ps;
    finish_phase s
end

let run ?tracer ?plan ?fault_policy ?platform cfg () =
  let s = Session.create ?tracer ?plan ?fault_policy ?platform cfg () in
  Session.run_phase s ~duration_ps:cfg.c_duration_ps

let violations r =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun t ->
      if t.tr_offered <> t.tr_admitted + t.tr_shed_queue then
        add "%s: offered %d <> admitted %d + shed-at-admission %d" t.tr_name
          t.tr_offered t.tr_admitted t.tr_shed_queue;
      if
        t.tr_admitted
        <> t.tr_completed + t.tr_shed_deadline + t.tr_shed_degraded
           + t.tr_failed
      then
        add
          "%s: admitted %d <> completed %d + shed-at-dispatch %d + \
           shed-degraded %d + failed %d"
          t.tr_name t.tr_admitted t.tr_completed t.tr_shed_deadline
          t.tr_shed_degraded t.tr_failed;
      if t.tr_bad_responses > 0 then
        add "%s: %d response payloads mismatched their requests" t.tr_name
          t.tr_bad_responses)
    r.r_tenants;
  if r.r_stuck > 0 then add "%d requests still queued after drain" r.r_stuck;
  if not r.r_alloc_ok then add "allocator invariants violated";
  if r.r_leaked_blocks > 0 then
    add "%d device allocations leaked" r.r_leaked_blocks;
  if r.r_free_delta <> 0 then
    add "free_bytes drifted %+d from the pre-campaign baseline" r.r_free_delta;
  (match r.r_injector with
  | Some inj when Fault.Injector.pending_lost inj > 0 ->
      add "%d lost-message faults never resolved"
        (Fault.Injector.pending_lost inj)
  | _ -> ());
  List.rev !out

let conserved r = violations r = []

let digest r =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "serve seed=%d policy=%s wall=%d batches=%d cmds=%d busy=%d" r.r_seed
    (policy_name r.r_policy) r.r_wall_ps r.r_batches r.r_batched_commands
    r.r_server_busy_ps;
  List.iter
    (fun t ->
      pf
        " | %s off=%d adm=%d shq=%d shd=%d shg=%d ok=%d fail=%d bad=%d \
         slo=%d by=%d"
        t.tr_name t.tr_offered t.tr_admitted t.tr_shed_queue t.tr_shed_deadline
        t.tr_shed_degraded t.tr_completed t.tr_failed t.tr_bad_responses
        t.tr_slo_violations t.tr_bytes_served;
      match t.tr_total with
      | Some p -> pf " p99=%.2f" p.ph_p99_us
      | None -> pf " p99=-")
    r.r_tenants;
  pf " | stuck=%d alloc=%s leak=%d drift=%d" r.r_stuck
    (if r.r_alloc_ok then "ok" else "BAD")
    r.r_leaked_blocks r.r_free_delta;
  (match r.r_injector with
  | Some inj -> pf " | %s" (Fault.Injector.counters_line inj)
  | None -> ());
  Buffer.contents b

let render r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "serve campaign: seed=%d policy=%s duration=%.0f us wall=%.0f us\n"
    r.r_seed (policy_name r.r_policy)
    (float_of_int r.r_duration_ps /. 1e6)
    (float_of_int r.r_wall_ps /. 1e6);
  pf "  server: %d batches carrying %d commands (%.2f cmds/occupancy), busy %.0f us\n"
    r.r_batches r.r_batched_commands
    (if r.r_batches = 0 then 0.
     else float_of_int r.r_batched_commands /. float_of_int r.r_batches)
    (float_of_int r.r_server_busy_ps /. 1e6);
  List.iter
    (fun (name, disp) ->
      pf "  %-8s dispatched per core:" name;
      Array.iter (fun d -> pf " %d" d) disp;
      pf "\n")
    r.r_dispatched_per_core;
  pf "\n%-10s %4s %8s %8s %6s %6s %8s %6s %6s %10s %10s\n" "tenant" "wt"
    "offered" "admitted" "shedQ" "shedD" "complete" "fail" "slo!"
    "offered/s" "achieved/s";
  List.iter
    (fun t ->
      pf "%-10s %4.1f %8d %8d %6d %6d %8d %6d %6d %10.0f %10.0f\n" t.tr_name
        t.tr_weight t.tr_offered t.tr_admitted t.tr_shed_queue
        t.tr_shed_deadline t.tr_completed t.tr_failed t.tr_slo_violations
        t.tr_offered_rps t.tr_achieved_rps)
    r.r_tenants;
  let sq, sd, sg =
    List.fold_left
      (fun (q, d, g) t ->
        (q + t.tr_shed_queue, d + t.tr_shed_deadline, g + t.tr_shed_degraded))
      (0, 0, 0) r.r_tenants
  in
  pf "shed breakdown: %s=%d %s=%d %s=%d\n"
    (shed_reason_name Shed_queue_full)
    sq
    (shed_reason_name Shed_deadline)
    sd
    (shed_reason_name Shed_degradation)
    sg;
  pf "\nlatency (us)%-16s %8s %8s %8s %8s %8s\n" "" "mean" "p50" "p95" "p99"
    "p99.9";
  List.iter
    (fun t ->
      let row label = function
        | None -> pf "  %-10s %-15s %8s %8s %8s %8s %8s\n" t.tr_name label "-" "-" "-" "-" "-"
        | Some p ->
            pf "  %-10s %-15s %8.1f %8.1f %8.1f %8.1f %8.1f\n" t.tr_name label
              p.ph_mean_us p.ph_p50_us p.ph_p95_us p.ph_p99_us p.ph_p999_us
      in
      row "queue-wait" t.tr_queue;
      row "service" t.tr_service;
      row "collect" t.tr_collect;
      row "total" t.tr_total)
    r.r_tenants;
  (match r.r_injector with
  | Some inj -> pf "\nfaults: %s\n" (Fault.Injector.counters_line inj)
  | None -> ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Saturation sweep                                                   *)
(* ------------------------------------------------------------------ *)

type sat_point = {
  sat_offered_rps : float;
  sat_achieved_rps : float;
  sat_completed : int;
  sat_shed : int;
  sat_p50_us : float;
  sat_p99_us : float;
}

let saturation ?(seed = 42) ?(bytes = 16 * 1024) ?(n_cores = 4) ?(clients = 8)
    ?(duration_ps = 1_000_000_000) ?(batch_max = 8)
    ?(platform = Platform.Device.aws_f1) ~rates_rps () =
  List.map
    (fun rate ->
      let tenant =
        Tenant.make ~name:"load" ~clients ~queue_cap:128
          ~mix:[ Mix.memcpy ~bytes () ]
          ~load:(Tenant.open_loop ~rate_rps:(rate /. float_of_int clients) ())
          ()
      in
      let cfg =
        config ~seed ~duration_ps ~batch_max ~n_cores ~tenants:[ tenant ] ()
      in
      let r = run ~platform cfg () in
      let t = List.hd r.r_tenants in
      let q f = match t.tr_total with Some p -> f p | None -> 0. in
      {
        sat_offered_rps = t.tr_offered_rps;
        sat_achieved_rps = t.tr_achieved_rps;
        sat_completed = t.tr_completed;
        sat_shed = t.tr_shed_queue + t.tr_shed_deadline;
        sat_p50_us = q (fun p -> p.ph_p50_us);
        sat_p99_us = q (fun p -> p.ph_p99_us);
      })
    rates_rps

let render_saturation points =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%12s %12s %9s %6s %9s %9s\n" "offered/s" "achieved/s" "complete" "shed"
    "p50 us" "p99 us";
  List.iter
    (fun p ->
      pf "%12.0f %12.0f %9d %6d %9.1f %9.1f\n" p.sat_offered_rps
        p.sat_achieved_rps p.sat_completed p.sat_shed p.sat_p50_us p.sat_p99_us)
    points;
  Buffer.contents b
