module B = Beethoven

module Knobs = struct
  type t = {
    kn_cores : int;
    kn_channels : int;
    kn_in_flight : int;
    kn_batch : int;
    kn_core_cap : int;
  }

  let default =
    { kn_cores = 2; kn_channels = 1; kn_in_flight = 1; kn_batch = 1;
      kn_core_cap = 2 }

  let render k =
    Printf.sprintf "cores=%d ch=%d inflight=%d batch=%d cap=%d" k.kn_cores
      k.kn_channels k.kn_in_flight k.kn_batch k.kn_core_cap

  let key = render
end

type axis = Cores | Channels | In_flight | Batch | Core_cap

let all_axes = [ Cores; Channels; In_flight; Batch; Core_cap ]

let axis_name = function
  | Cores -> "cores"
  | Channels -> "channels"
  | In_flight -> "prefetch"
  | Batch -> "batch"
  | Core_cap -> "core-cap"

let axis_of_name = function
  | "cores" -> Some Cores
  | "channels" -> Some Channels
  | "prefetch" | "in-flight" -> Some In_flight
  | "batch" -> Some Batch
  | "core-cap" | "cap" -> Some Core_cap
  | _ -> None

let axis_values = function
  | Cores -> [ 1; 2; 3; 4; 6; 8 ]
  | Channels -> [ 1; 2 ]
  | In_flight -> [ 1; 2; 4; 8 ]
  | Batch -> [ 1; 2; 4; 8; 16 ]
  | Core_cap -> [ 1; 2; 4; 8 ]

let axis_get (k : Knobs.t) = function
  | Cores -> k.Knobs.kn_cores
  | Channels -> k.Knobs.kn_channels
  | In_flight -> k.Knobs.kn_in_flight
  | Batch -> k.Knobs.kn_batch
  | Core_cap -> k.Knobs.kn_core_cap

let axis_set (k : Knobs.t) ax v =
  match ax with
  | Cores -> { k with Knobs.kn_cores = v }
  | Channels -> { k with Knobs.kn_channels = v }
  | In_flight -> { k with Knobs.kn_in_flight = v }
  | Batch -> { k with Knobs.kn_batch = v }
  | Core_cap -> { k with Knobs.kn_core_cap = v }

type score = {
  sc_rps : float;
  sc_p99_us : float;
  sc_util : float;
  sc_qdepth_p95 : float;
  sc_completed : int;
}

type outcome =
  | Infeasible of string
  | Evaluated of {
      ev_score : score;
      ev_wins : int;
      ev_losses : int;
      ev_promoted : bool;
    }

type candidate = { ca_id : int; ca_knobs : Knobs.t; ca_outcome : outcome }

type result = {
  r_seed : int;
  r_budget : int;
  r_axes : axis list;
  r_phase_ps : int;
  r_ab_rounds : int;
  r_candidates : candidate list;
  r_best : candidate;
  r_promotions : int;
  r_prefiltered : int;
  r_phases_run : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_cache_entries : int;
  r_violations : string list;
}

(* ------------------------------------------------------------------ *)
(* The fixed tuning workload                                          *)
(* ------------------------------------------------------------------ *)

(* Closed-loop tenants, so throughput reflects capacity (open-loop
   throughput just echoes the offered rate while underloaded): a
   backlogged bulk-copy tenant and a think-time interactive tenant. *)
let tenants () =
  [
    Serve.Tenant.make ~name:"bulk" ~clients:3 ~weight:2.0
      ~mix:[ Serve.Mix.memcpy ~bytes:16384 () ]
      ~load:(Serve.Tenant.closed_loop ~think_ps:0 ())
      ();
    Serve.Tenant.make ~name:"interactive" ~clients:2
      ~mix:[ Serve.Mix.vecadd ~bytes:4096 () ]
      ~load:(Serve.Tenant.closed_loop ~think_ps:5_000_000 ())
      ();
  ]

(* Deploy a candidate: the canonical serving systems with the
   channel/prefetch knobs rewritten (names are preserved, so dispatch
   and behaviors still resolve). *)
let deploy (k : Knobs.t) kind ~n_cores =
  let sys = Serve.system_of_kind kind ~n_cores in
  let rd (rc : B.Config.read_channel) =
    {
      rc with
      B.Config.rc_n_channels = k.Knobs.kn_channels;
      rc_max_in_flight = k.Knobs.kn_in_flight;
      rc_buffer_beats =
        max rc.B.Config.rc_buffer_beats
          (rc.B.Config.rc_burst_beats * k.Knobs.kn_in_flight);
    }
  in
  let wr (wc : B.Config.write_channel) =
    {
      wc with
      B.Config.wc_n_channels = k.Knobs.kn_channels;
      wc_max_in_flight = k.Knobs.kn_in_flight;
      wc_buffer_beats =
        max wc.B.Config.wc_buffer_beats
          (wc.B.Config.wc_burst_beats * k.Knobs.kn_in_flight);
    }
  in
  {
    sys with
    B.Config.read_channels = List.map rd sys.B.Config.read_channels;
    write_channels = List.map wr sys.B.Config.write_channels;
  }

let config_of ~tenants (k : Knobs.t) =
  let kinds = Serve.kinds_used tenants in
  B.Config.make ~name:"tune"
    (List.map (fun kind -> deploy k kind ~n_cores:k.Knobs.kn_cores) kinds)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-phase measurements plus the evaluation-level trace snapshot. *)
type evaluation = {
  el_phases : (int * float * float) list;  (* completed, rps, worst p99 us *)
  el_qdepth_p95 : float;
  el_violations : string list;
}

let phase_measure (r : Serve.report) =
  let completed =
    List.fold_left
      (fun a (t : Serve.tenant_report) -> a + t.Serve.tr_completed)
      0 r.Serve.r_tenants
  in
  let rps =
    List.fold_left
      (fun a (t : Serve.tenant_report) -> a +. t.Serve.tr_achieved_rps)
      0. r.Serve.r_tenants
  in
  let p99 =
    List.fold_left
      (fun a (t : Serve.tenant_report) ->
        match t.Serve.tr_total with
        | Some p -> Float.max a p.Serve.ph_p99_us
        | None -> a)
      0. r.Serve.r_tenants
  in
  (completed, rps, p99)

let mean_score (ev : evaluation) ~util =
  let n = max 1 (List.length ev.el_phases) in
  let fn = float_of_int n in
  let completed, rps, p99 =
    List.fold_left
      (fun (c, r, p) (c', r', p') -> (c + c', r +. r', p +. p'))
      (0, 0., 0.) ev.el_phases
  in
  {
    sc_rps = rps /. fn;
    sc_p99_us = p99 /. fn;
    sc_util = util;
    sc_qdepth_p95 = ev.el_qdepth_p95;
    sc_completed = completed;
  }

(* Paired sign test over phase i of each side: completions first, p99 as
   the tiebreak. Returns (challenger wins, losses). *)
let ab_compare (inc : evaluation) (ch : evaluation) =
  List.fold_left2
    (fun (w, l) (ci, _, pi) (cc, _, pc) ->
      if cc > ci then (w + 1, l)
      else if cc < ci then (w, l + 1)
      else if pc < pi -. 1e-9 then (w + 1, l)
      else if pc > pi +. 1e-9 then (w, l + 1)
      else (w, l))
    (0, 0) inc.el_phases ch.el_phases

(* The promotion rule: strictly more paired wins than losses, and mean
   p99 must not regress by more than 10%. *)
let promotes ~(inc : score) ~(ch : score) ~wins ~losses =
  wins > losses && ch.sc_p99_us <= (inc.sc_p99_us *. 1.10) +. 1e-9

(* ------------------------------------------------------------------ *)
(* JSON / rendering helpers                                           *)
(* ------------------------------------------------------------------ *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let knobs_json (k : Knobs.t) =
  Printf.sprintf
    "{\"cores\":%d,\"channels\":%d,\"prefetch\":%d,\"batch\":%d,\"core_cap\":%d}"
    k.Knobs.kn_cores k.Knobs.kn_channels k.Knobs.kn_in_flight k.Knobs.kn_batch
    k.Knobs.kn_core_cap

let candidate_json (c : candidate) =
  match c.ca_outcome with
  | Infeasible reason ->
      Printf.sprintf "{\"id\":%d,\"knobs\":%s,\"infeasible\":\"%s\"}" c.ca_id
        (knobs_json c.ca_knobs)
        (String.map (fun ch -> if ch = '"' then '\'' else ch) reason)
  | Evaluated e ->
      Printf.sprintf
        "{\"id\":%d,\"knobs\":%s,\"rps\":%.1f,\"p99_us\":%.3f,\"util\":%.4f,\"qdepth_p95\":%.1f,\"completed\":%d,\"wins\":%d,\"losses\":%d,\"promoted\":%b}"
        c.ca_id (knobs_json c.ca_knobs) e.ev_score.sc_rps
        e.ev_score.sc_p99_us e.ev_score.sc_util e.ev_score.sc_qdepth_p95
        e.ev_score.sc_completed e.ev_wins e.ev_losses e.ev_promoted

(* ------------------------------------------------------------------ *)
(* Pareto front                                                       *)
(* ------------------------------------------------------------------ *)

let scored c =
  match c.ca_outcome with Evaluated e -> Some (c, e.ev_score) | _ -> None

let dominates (a : score) (b : score) =
  a.sc_rps >= b.sc_rps -. 1e-9
  && a.sc_p99_us <= b.sc_p99_us +. 1e-9
  && a.sc_util <= b.sc_util +. 1e-9
  && (a.sc_rps > b.sc_rps +. 1e-9
     || a.sc_p99_us < b.sc_p99_us -. 1e-9
     || a.sc_util < b.sc_util -. 1e-9)

let pareto (r : result) =
  let pts = List.filter_map scored r.r_candidates in
  let front =
    List.filter
      (fun (c, s) ->
        not
          (List.exists
             (fun (c', s') -> c'.ca_id <> c.ca_id && dominates s' s)
             pts))
      pts
  in
  (* a dominated duplicate knob-set can survive as an exact tie; keep the
     lowest id per knob key *)
  let seen = Hashtbl.create 8 in
  let front =
    List.filter
      (fun (c, _) ->
        let k = Knobs.key c.ca_knobs in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (List.sort (fun (a, _) (b, _) -> compare a.ca_id b.ca_id) front)
  in
  List.map fst
    (List.sort
       (fun (a, sa) (b, sb) ->
         if sa.sc_rps <> sb.sc_rps then compare sb.sc_rps sa.sc_rps
         else if sa.sc_p99_us <> sb.sc_p99_us then
           compare sa.sc_p99_us sb.sc_p99_us
         else compare a.ca_id b.ca_id)
       front)

let pareto_json (r : result) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\"tune\":{\"seed\":%d,\"budget\":%d,\"axes\":[%s]," r.r_seed r.r_budget
    (String.concat ","
       (List.map (fun a -> Printf.sprintf "\"%s\"" (axis_name a)) r.r_axes));
  pf "\"phase_us\":%.3f,\"ab_rounds\":%d,"
    (float_of_int r.r_phase_ps /. 1e6)
    r.r_ab_rounds;
  pf "\"candidates\":%d,\"prefiltered\":%d,\"promotions\":%d,\"phases\":%d,"
    (List.length r.r_candidates)
    r.r_prefiltered r.r_promotions r.r_phases_run;
  pf "\"cache\":{\"hits\":%d,\"misses\":%d,\"entries\":%d}," r.r_cache_hits
    r.r_cache_misses r.r_cache_entries;
  pf "\"incumbent\":%s," (candidate_json r.r_best);
  pf "\"pareto\":[%s]}}\n"
    (String.concat "," (List.map candidate_json (pareto r)));
  Buffer.contents b

let digest r = fnv1a64 (pareto_json r)

let render (r : result) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let front_ids = List.map (fun c -> c.ca_id) (pareto r) in
  pf "tune: seed %d, budget %d, %d phase(s) of %.0f us, axes [%s]\n" r.r_seed
    r.r_budget r.r_ab_rounds
    (float_of_int r.r_phase_ps /. 1e6)
    (String.concat ", " (List.map axis_name r.r_axes));
  pf "%-4s %-44s %12s %10s %7s %6s %9s %s\n" "id" "knobs" "rps" "p99_us"
    "util" "A/B" "promoted" "pareto";
  List.iter
    (fun c ->
      match c.ca_outcome with
      | Infeasible reason ->
          pf "%-4d %-44s %s\n" c.ca_id (Knobs.render c.ca_knobs)
            ("infeasible: " ^ reason)
      | Evaluated e ->
          pf "%-4d %-44s %12.1f %10.3f %6.1f%% %3d-%-2d %9s %s\n" c.ca_id
            (Knobs.render c.ca_knobs) e.ev_score.sc_rps e.ev_score.sc_p99_us
            (100. *. e.ev_score.sc_util)
            e.ev_wins e.ev_losses
            (if e.ev_promoted then "yes" else "-")
            (if List.mem c.ca_id front_ids then "*" else ""))
    r.r_candidates;
  pf "incumbent: id %d (%s)\n" r.r_best.ca_id (Knobs.render r.r_best.ca_knobs);
  pf "%d promotion(s), %d prefiltered, cache %d hit(s) %d miss(es) %d \
      entrie(s)\n"
    r.r_promotions r.r_prefiltered r.r_cache_hits r.r_cache_misses
    r.r_cache_entries;
  (match r.r_violations with
  | [] -> ()
  | vs -> List.iter (fun v -> pf "VIOLATION: %s\n" v) vs);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The search loop                                                    *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?(budget = 6) ?(axes = all_axes)
    ?(phase_ps = 100_000_000) ?(ab_rounds = 2)
    ?(platform = Platform.Device.aws_f1) ?(start = Knobs.default) () =
  if budget < 0 then invalid_arg "Tune.run: budget must be >= 0";
  if ab_rounds < 1 then invalid_arg "Tune.run: ab_rounds must be >= 1";
  if phase_ps < 1 then invalid_arg "Tune.run: phase_ps must be >= 1";
  if axes = [] then invalid_arg "Tune.run: no axes to search";
  let tenants = tenants () in
  let cache = B.Elaborate.Cache.create () in
  let rng = Fault.Rng.create ~seed:(Int64.of_int (seed lxor 0x7e57_7e57)) in
  let memo : (string, evaluation) Hashtbl.t = Hashtbl.create 16 in
  let phases_run = ref 0 in
  let violations = ref [] in
  (* one candidate's serving evaluation: a fresh session over the shared
     elaboration cache; phase i uses client-stream salt i, so every
     candidate sees byte-identical offered load *)
  let fresh_session k =
    let tracer = Trace.create () in
    let cfg =
      Serve.config ~seed ~duration_ps:phase_ps ~batch_max:k.Knobs.kn_batch
        ~core_cap:k.Knobs.kn_core_cap ~n_cores:k.Knobs.kn_cores ~tenants ()
    in
    (tracer, Serve.Session.create ~tracer ~platform ~cache
               ~systems:(deploy k) cfg ())
  in
  let seal k tracer reports =
    let qdepth =
      List.fold_left
        (fun acc (name, s) ->
          if
            String.length name >= 8
            && String.sub name 0 8 = "serve.q."
          then Float.max acc s.Trace.Series.su_p95
          else acc)
        0.
        (Trace.Series.snapshot tracer)
    in
    let ev =
      {
        el_phases = List.map phase_measure reports;
        el_qdepth_p95 = qdepth;
        el_violations =
          List.concat_map
            (fun r ->
              List.map
                (fun v -> Knobs.render k ^ ": " ^ v)
                (Serve.violations r))
            reports;
      }
    in
    violations := !violations @ ev.el_violations;
    Hashtbl.replace memo (Knobs.key k) ev;
    ev
  in
  let run_phases sess =
    List.init ab_rounds (fun _ ->
        incr phases_run;
        Serve.Session.run_phase sess ~duration_ps:phase_ps)
  in
  (* evaluate a pair with temporally interleaved phases when both sides
     are fresh; a memoized side is replayed (deterministic simulation
     makes the replay exact), leaving only the other to simulate *)
  let eval_pair inc ch =
    match
      (Hashtbl.find_opt memo (Knobs.key inc), Hashtbl.find_opt memo (Knobs.key ch))
    with
    | Some a, Some b -> (a, b)
    | Some a, None ->
        let tb, sb = fresh_session ch in
        (a, seal ch tb (run_phases sb))
    | None, Some b ->
        let ta, sa = fresh_session inc in
        (seal inc ta (run_phases sa), b)
    | None, None ->
        let ta, sa = fresh_session inc and tb, sb = fresh_session ch in
        let ra = ref [] and rb = ref [] in
        for _ = 1 to ab_rounds do
          incr phases_run;
          ra := Serve.Session.run_phase sa ~duration_ps:phase_ps :: !ra;
          incr phases_run;
          rb := Serve.Session.run_phase sb ~duration_ps:phase_ps :: !rb
        done;
        (seal inc ta (List.rev !ra), seal ch tb (List.rev !rb))
  in
  let fit k = B.Dse.fit ~cache (config_of ~tenants k) platform in
  let seed_util =
    match fit start with
    | Ok u -> u
    | Error m -> invalid_arg ("Tune.run: start config infeasible: " ^ m)
  in
  (* propose a seeded one-knob mutation of the incumbent, biased towards
     unseen knob combinations *)
  let seen_keys = Hashtbl.create 16 in
  Hashtbl.replace seen_keys (Knobs.key start) ();
  let mutate k =
    let usable =
      List.filter
        (fun ax ->
          List.exists (fun v -> v <> axis_get k ax) (axis_values ax))
        axes
    in
    match usable with
    | [] -> k
    | _ ->
        let ax =
          List.nth usable (Fault.Rng.int rng ~bound:(List.length usable))
        in
        let vals =
          List.filter (fun v -> v <> axis_get k ax) (axis_values ax)
        in
        axis_set k ax (List.nth vals (Fault.Rng.int rng ~bound:(List.length vals)))
    in
  let propose k =
    let rec go n best =
      if n = 0 then best
      else
        let c = mutate k in
        if Hashtbl.mem seen_keys (Knobs.key c) then go (n - 1) c else c
    in
    let c = go 8 k in
    Hashtbl.replace seen_keys (Knobs.key c) ();
    c
  in
  let candidates = ref [] in
  let incumbent = ref { ca_id = 0; ca_knobs = start; ca_outcome = Infeasible "pending" } in
  let incumbent_util = ref seed_util in
  let promotions = ref 0 and prefiltered = ref 0 in
  for id = 1 to budget do
    let knobs = propose (!incumbent).ca_knobs in
    match fit knobs with
    | Error m ->
        incr prefiltered;
        candidates :=
          { ca_id = id; ca_knobs = knobs; ca_outcome = Infeasible m }
          :: !candidates
    | Ok util ->
        let inc_ev, ch_ev = eval_pair (!incumbent).ca_knobs knobs in
        let inc_score = mean_score inc_ev ~util:!incumbent_util in
        let ch_score = mean_score ch_ev ~util in
        let wins, losses = ab_compare inc_ev ch_ev in
        let promoted =
          promotes ~inc:inc_score ~ch:ch_score ~wins ~losses
        in
        let cand =
          {
            ca_id = id;
            ca_knobs = knobs;
            ca_outcome =
              Evaluated
                {
                  ev_score = ch_score;
                  ev_wins = wins;
                  ev_losses = losses;
                  ev_promoted = promoted;
                };
          }
        in
        candidates := cand :: !candidates;
        if promoted then begin
          incr promotions;
          incumbent := cand;
          incumbent_util := util
        end
  done;
  (* the seed candidate's record: its evaluation is memoized from the
     first A/B round (or simulated here if every proposal was
     prefiltered) *)
  let seed_ev =
    match Hashtbl.find_opt memo (Knobs.key start) with
    | Some ev -> ev
    | None ->
        let t, s = fresh_session start in
        seal start t (run_phases s)
  in
  let seed_cand =
    {
      ca_id = 0;
      ca_knobs = start;
      ca_outcome =
        Evaluated
          {
            ev_score = mean_score seed_ev ~util:seed_util;
            ev_wins = 0;
            ev_losses = 0;
            ev_promoted = false;
          };
    }
  in
  let best =
    if (!incumbent).ca_id = 0 then seed_cand else !incumbent
  in
  {
    r_seed = seed;
    r_budget = budget;
    r_axes = axes;
    r_phase_ps = phase_ps;
    r_ab_rounds = ab_rounds;
    r_candidates = seed_cand :: List.rev !candidates;
    r_best = best;
    r_promotions = !promotions;
    r_prefiltered = !prefiltered;
    r_phases_run = !phases_run;
    r_cache_hits = B.Elaborate.Cache.hits cache;
    r_cache_misses = B.Elaborate.Cache.misses cache;
    r_cache_entries = B.Elaborate.Cache.entries cache;
    r_violations = !violations;
  }
