(** Closed-loop autotuner over the composer's knobs.

    The COSMOS observation (PAPERS.md) is that synthesis-side knobs and
    memory-system knobs must be searched {e together}: the best memory
    channel count depends on the core count that competes for the same
    SLRs, and both trade against latency under live load. This module
    closes that loop: a seeded, deterministic search proposes one-knob
    deltas over the deployed serving SoC — memory channels per port,
    prefetch (in-flight) depth, cores per system, server batching cap,
    per-core outstanding bound — and measures each candidate instead of
    modeling it:

    + {b pre-filter} — the candidate config is elaborated through a
      shared {!Beethoven.Elaborate.Cache} via {!Beethoven.Dse.fit}; the
      full DRC (floorplan, capacity, timing) rejects infeasible knob
      combinations at cache-hit cost before any serving phase is spent,
      and the fit's peak per-SLR utilization becomes the candidate's
      resource axis;
    + {b live evaluation} — a fresh {!Serve.Session} deploys the
      candidate's systems (same elaboration cache) and serves the fixed
      closed-loop tuning workload for [ab_rounds] phases; phase [i] of
      every candidate uses client-stream salt [i], so all candidates are
      measured under byte-identical offered load;
    + {b A/B promotion} — incumbent and challenger run interleaved
      paired phases; the challenger is promoted only on a
      statistically-ordered win: it must win strictly more paired phases
      than it loses (completions first, p99 as the tiebreak) without
      regressing mean p99 by more than 10%. Deterministic evaluations
      are replayed from a memo rather than re-simulated — the serving
      analogue of the elaboration cache.

    The search emits a byte-deterministic Pareto front (throughput vs.
    p99 vs. resource utilization) as JSON: same seed ⇒ byte-identical
    output across processes, which is what the [@tune] gate compares. *)

module Knobs : sig
  type t = {
    kn_cores : int;  (** cores per deployed system *)
    kn_channels : int;  (** memory channels per Reader/Writer port *)
    kn_in_flight : int;  (** prefetch depth (concurrent transactions) *)
    kn_batch : int;  (** commands coalesced per server occupancy *)
    kn_core_cap : int;  (** per-core outstanding-command bound *)
  }

  val default : t
  (** The conservative baseline the search starts from: 2 cores, 1
      channel, no prefetch overlap, no batching. *)

  val render : t -> string
  val key : t -> string
  (** Canonical one-line form; equal keys ⇔ equal knobs. *)
end

type axis = Cores | Channels | In_flight | Batch | Core_cap

val all_axes : axis list
val axis_name : axis -> string
val axis_of_name : string -> axis option
val axis_values : axis -> int list
(** The discrete grid the search draws from on each axis. *)

type score = {
  sc_rps : float;  (** mean over phases of total achieved requests/s *)
  sc_p99_us : float;  (** mean over phases of the worst tenant p99 *)
  sc_util : float;  (** peak per-SLR utilization of the elaborated SoC *)
  sc_qdepth_p95 : float;
      (** p95 tenant queue depth over the evaluation, from the
          {!Trace.Series} snapshot *)
  sc_completed : int;  (** completions summed over the phases *)
}

type outcome =
  | Infeasible of string  (** rejected by the {!Beethoven.Dse.fit} pre-filter *)
  | Evaluated of {
      ev_score : score;
      ev_wins : int;  (** paired phases won vs. the then-incumbent *)
      ev_losses : int;
      ev_promoted : bool;
    }

type candidate = { ca_id : int; ca_knobs : Knobs.t; ca_outcome : outcome }

type result = {
  r_seed : int;
  r_budget : int;
  r_axes : axis list;
  r_phase_ps : int;
  r_ab_rounds : int;
  r_candidates : candidate list;
      (** the seed candidate (id 0) then every proposal in search order *)
  r_best : candidate;  (** the final incumbent *)
  r_promotions : int;
  r_prefiltered : int;
  r_phases_run : int;  (** serving phases actually simulated *)
  r_cache_hits : int;
  r_cache_misses : int;
  r_cache_entries : int;
  r_violations : string list;
      (** accounting violations from any evaluation report (must be
          empty; the CLI exits 1 otherwise) *)
}

val run :
  ?seed:int ->
  ?budget:int ->
  ?axes:axis list ->
  ?phase_ps:int ->
  ?ab_rounds:int ->
  ?platform:Platform.Device.t ->
  ?start:Knobs.t ->
  unit ->
  result
(** Run the search: [budget] proposals (default 6) of seeded one-knob
    mutations restricted to [axes] (default {!all_axes}), each A/B-tested
    against the incumbent over [ab_rounds] (default 2) interleaved phases
    of [phase_ps] (default 100 µs) simulated serving. Deterministic:
    equal arguments ⇒ identical result, byte-identical
    {!pareto_json}. *)

val pareto : result -> candidate list
(** The non-dominated evaluated candidates (maximize throughput,
    minimize p99, minimize utilization), sorted by descending throughput
    then ascending p99 then id. *)

val pareto_json : result -> string
(** Byte-deterministic JSON: search metadata, elaboration-cache
    hit/miss counts, the final incumbent, and the Pareto front. *)

val render : result -> string
(** Human-readable search log: every candidate with its knobs, score,
    A/B record and Pareto membership, plus the cache stats line. *)

val digest : result -> string
(** Content hash of {!pareto_json} (for determinism checks). *)
