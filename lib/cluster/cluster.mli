(** Fault-tolerant multi-device cluster serving.

    A host-level placement layer over {!Serve}'s multi-tenant workload:
    N simulated devices (a mix of {!Platform.Device} flavors), each a
    full SoC + {!Runtime.Handle} behind a {!Device} wrapper, driven in
    lockstep by a conservative coordinator — every device owns its own
    {!Desim.Engine}; the coordinator repeatedly advances all live
    engines to the earliest pending event time (host engine first, then
    devices in slot order), so cross-device cascades are byte-
    deterministic.

    Tenants are placed data-locality-aware: each tenant's resident
    working set is allocated on exactly one home device and every
    request of that tenant is dispatched there. A seeded heartbeat
    monitor drives the per-device health state machine
    (healthy → suspect → quarantined on consecutive missed probes, back
    to healthy on a response while merely suspect); heartbeat loss and
    partial brownouts are drawn from each device's forked fault-
    injection stream ({!Fault.Injector.fork}), so the false-positive
    pressure is reproducible. On quarantine the device is {e drained}
    (no new admissions; in-flight commands get a deadline to settle)
    and its tenants {e re-sharded} onto the least-loaded survivor;
    after the drain deadline every unacknowledged command is replayed
    on the tenant's new home with bounded exponential backoff —
    at-least-once delivery with acknowledgment-id dedup, so an ack is
    never lost and a side effect never counted twice. Devices killed
    mid-run freeze their engine; restored devices come back as a fresh
    SoC in the warm standby pool, promoted on sustained cluster SLO
    violation. When capacity cannot cover the offered load, graceful
    degradation sheds the lowest-weight tenants first (accounted as
    {!Serve.Shed_degradation}).

    Everything is seeded: the same seed over the same config and chaos
    schedule yields a byte-identical cluster SLO report. *)

module Health : sig
  type state =
    | Healthy
    | Suspect  (** missed probes, still serving — may recover *)
    | Quarantined  (** written off: draining, then frozen *)
    | Dead  (** killed or frozen; engine excluded from the lockstep *)
    | Standby  (** warm pool: booted but not serving *)

  val name : state -> string
end

(** {1 Configuration} *)

type config = {
  cl_seed : int;
  cl_duration_ps : int;  (** clients generate arrivals in [0, duration) *)
  cl_tenants : Serve.Tenant.t list;
  cl_devices : int;  (** total device slots *)
  cl_warm : int;  (** slots initially serving; the rest are standby *)
  cl_platforms : Platform.Device.t list;
      (** cycled over slots — the heterogeneous fleet mix *)
  cl_n_cores : int;  (** cores per deployed system per device *)
  cl_core_cap : int;  (** per-core outstanding-command bound *)
  cl_heartbeat_ps : int;  (** health-probe period *)
  cl_suspect_misses : int;  (** consecutive misses → suspect *)
  cl_quarantine_misses : int;  (** consecutive misses → quarantined *)
  cl_drain_ps : int;  (** in-flight settle window after quarantine *)
  cl_replay_max_retries : int;  (** replay attempts per unacked command *)
  cl_replay_backoff_ps : int;  (** base backoff; attempt k waits base*2^k *)
  cl_resident_bytes : int;  (** per-tenant resident working set *)
  cl_promote_strikes : int;
      (** consecutive hot probes before a standby is promoted *)
  cl_slo_hot_frac : float;
      (** a probe window is hot when violations/completions exceeds this *)
  cl_max_events : int;  (** per-engine event budget (livelock guard) *)
}

val config :
  ?seed:int ->
  ?duration_ps:int ->
  ?devices:int ->
  ?warm:int ->
  ?platforms:Platform.Device.t list ->
  ?n_cores:int ->
  ?core_cap:int ->
  ?heartbeat_ps:int ->
  ?suspect_misses:int ->
  ?quarantine_misses:int ->
  ?drain_ps:int ->
  ?replay_max_retries:int ->
  ?replay_backoff_ps:int ->
  ?resident_bytes:int ->
  ?promote_strikes:int ->
  ?slo_hot_frac:float ->
  ?max_events:int ->
  tenants:Serve.Tenant.t list ->
  unit ->
  config
(** Defaults: seed 42, 2 ms, 2 devices all warm, platforms
    [[aws_f1; u200; kria]] cycled, 2 cores, core cap 4, heartbeat
    50 µs, suspect after 2 misses, quarantine after 4, drain 150 µs,
    3 replay retries at 20 µs base backoff, 64 KB resident set,
    promote after 3 hot probes at 50% violations, 50M events. *)

(** {1 Chaos schedule} *)

type chaos =
  | Kill of { at : int; dev : int }
      (** the device drops off the host link: its engine freezes, so
          nothing in flight there ever settles *)
  | Restore of { at : int; dev : int }
      (** a fresh SoC is booted into the slot and joins the standby
          pool (promotion decides when it serves again) *)

(** {1 Results} *)

type device_report = {
  dr_name : string;  (** ["dev0"], ... *)
  dr_platform : string;
  dr_state : Health.state;  (** at end of run *)
  dr_generations : int;  (** SoC boots in this slot (restores add one) *)
  dr_dispatched : int;
  dr_completed : int;
  dr_busy_ps : int;  (** runtime-server busy time across generations *)
  dr_utilization : float;  (** busy / wall *)
  dr_transitions : (int * Health.state) list;
      (** chronological health transitions (time, new state) *)
  dr_injector : Fault.Injector.t option;
      (** the slot's current-generation forked injector *)
}

type report = {
  c_seed : int;
  c_duration_ps : int;
  c_wall_ps : int;
  c_tenants : Serve.tenant_report list;
      (** cluster-wide per-tenant ledgers, including the
          [tr_shed_degraded] reason bucket *)
  c_devices : device_report list;
  c_placements : (string * int) list;  (** final tenant → device slot *)
  c_resharded : (string * int * int) list;
      (** chronological migrations: tenant, from slot, to slot *)
  c_quarantines : int;  (** device-level quarantine events *)
  c_promotions : int;  (** standby devices promoted into service *)
  c_replays : int;  (** unacked commands replayed after a drain *)
  c_replayed_ok : int;  (** replays that completed *)
  c_duplicates : int;
      (** duplicate acks dropped by txn-id dedup (a browned-out device
          completing a command that was already replayed elsewhere) *)
  c_lost_acked : int;  (** acked txns missing from tenant ledgers — 0 *)
  c_degraded_sheds : int;
  c_device_tracers : (string * Trace.t) list;
      (** per-device tracers (current generation) when the run was
          traced; every track is prefixed ["devN/"] *)
}

val run :
  ?tracer:Trace.t ->
  ?plan:Fault.Plan.t ->
  ?fault_policy:Fault.Policy.t ->
  ?chaos:chaos list ->
  config ->
  unit ->
  report
(** Boot the fleet, place the tenants, start the clients, and drive the
    lockstep until the horizon passed and every admitted request
    settled (completed, shed with a reason, or failed). [plan] is the
    root fault plan: each device generation gets a forked child
    injector ({!Fault.Injector.fork}, scope = slot + devices ×
    generation), so single-device campaigns are unaffected by the
    existence of siblings. [chaos] kills/restores devices mid-run.
    [tracer] records cluster counters and per-request spans annotated
    with the serving device; per-device tracers (device-prefixed
    tracks) ride in the report. *)

(** {1 Sessions}

    A cluster session keeps the fleet alive across multiple traffic
    phases and exposes chaos as immediate actions, so a scenario can
    serve, kill a device mid-story, keep serving while the heartbeat
    monitor quarantines / drains / re-shards / replays, restore the
    slot, and assert on the cumulative ledgers. Phase [i] spawns its
    clients with stream salt [i] (phase 0 = the historical streams),
    and reports are {e cumulative} over the session — the ack/dedup
    ledgers are cluster-lifetime, so [c_lost_acked] remains the
    zero-lost-acks invariant across any phase/chaos interleaving. *)

module Session : sig
  type t

  val create :
    ?tracer:Trace.t ->
    ?plan:Fault.Plan.t ->
    ?fault_policy:Fault.Policy.t ->
    config ->
    unit ->
    t
  (** Boot every device slot and place the tenants. No clients run and
      no heartbeat is armed until the first phase. *)

  val run_phase : t -> duration_ps:int -> report
  (** One traffic phase from the current cluster time: re-arm the
      heartbeat chain, spawn this phase's clients (open-loop rate curves
      are anchored at the phase start), and drive the lockstep until
      every admitted request settled and all drains/replays resolved.
      Returns the cumulative session report. *)

  val sleep : t -> delta_ps:int -> unit
  (** Advance cluster time without traffic (pending agenda work — e.g.
      a drain deadline — fires on the way). *)

  val kill : t -> dev:int -> unit
  (** Freeze the slot's engine now — the next phase's heartbeats notice,
      quarantine, drain and re-shard. *)

  val restore : t -> dev:int -> unit
  (** Replay whatever the dead generation still held, then boot a fresh
      SoC generation into the slot (standby pool). *)

  val promote_standby : t -> bool
  (** Promote the first available standby device into service
      immediately; [false] when none is available. *)

  val health : t -> dev:int -> Health.state
  val snapshot : t -> report
  (** Cumulative session report without driving anything. *)

  val now : t -> int
  val phases : t -> int
  val quarantines : t -> int
end

val violations : report -> string list
(** Conservation and exactly-once accounting, [[]] when clean: per
    tenant offered = admitted + shed-at-admission and admitted =
    completed + shed-deadline + shed-degraded + failed; no bad
    responses; zero lost acked commands and zero unexplained
    duplicates. *)

val conserved : report -> bool

val digest : report -> string
(** One-line machine-comparable summary (for cross-process determinism
    gates). *)

val render : report -> string
(** The cluster SLO report: per-device health timeline and utilization,
    per-tenant counters with the shed-reason breakdown, re-shard and
    replay ledger, and the four-phase latency quantiles. *)

(** {1 Degradation curve} *)

type loss_point = {
  lp_devices : int;  (** surviving warm devices *)
  lp_offered_rps : float;
  lp_achieved_rps : float;
  lp_completed : int;
  lp_shed : int;
  lp_p99_us : float;
}

val device_loss_curve :
  ?seed:int ->
  ?duration_ps:int ->
  ?rate_rps:float ->
  devices:int ->
  unit ->
  loss_point list
(** Fixed offered load served by [devices], then the same load after
    killing 1, 2, ... devices mid-run — the graceful-degradation curve
    (throughput retained and p99 inflation per device lost). *)

val render_loss_curve : loss_point list -> string
