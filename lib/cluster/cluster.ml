module B = Beethoven
module H = Runtime.Handle
module S = Desim.Stats
module Mix = Serve.Mix
module Tenant = Serve.Tenant

module Health = struct
  type state = Healthy | Suspect | Quarantined | Dead | Standby

  let name = function
    | Healthy -> "healthy"
    | Suspect -> "suspect"
    | Quarantined -> "quarantined"
    | Dead -> "dead"
    | Standby -> "standby"
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  cl_seed : int;
  cl_duration_ps : int;
  cl_tenants : Tenant.t list;
  cl_devices : int;
  cl_warm : int;
  cl_platforms : Platform.Device.t list;
  cl_n_cores : int;
  cl_core_cap : int;
  cl_heartbeat_ps : int;
  cl_suspect_misses : int;
  cl_quarantine_misses : int;
  cl_drain_ps : int;
  cl_replay_max_retries : int;
  cl_replay_backoff_ps : int;
  cl_resident_bytes : int;
  cl_promote_strikes : int;
  cl_slo_hot_frac : float;
  cl_max_events : int;
}

let config ?(seed = 42) ?(duration_ps = 2_000_000_000) ?(devices = 2)
    ?warm
    ?(platforms =
      [ Platform.Device.aws_f1; Platform.Device.u200; Platform.Device.kria ])
    ?(n_cores = 2) ?(core_cap = 4) ?(heartbeat_ps = 50_000_000)
    ?(suspect_misses = 2) ?(quarantine_misses = 4)
    ?(drain_ps = 150_000_000) ?(replay_max_retries = 3)
    ?(replay_backoff_ps = 20_000_000) ?(resident_bytes = 64 * 1024)
    ?(promote_strikes = 3) ?(slo_hot_frac = 0.5) ?(max_events = 50_000_000)
    ~tenants () =
  if tenants = [] then invalid_arg "Cluster.config: no tenants";
  if devices < 1 then invalid_arg "Cluster.config: devices must be >= 1";
  let warm = match warm with Some w -> w | None -> devices in
  if warm < 1 || warm > devices then
    invalid_arg "Cluster.config: warm must be in [1, devices]";
  if platforms = [] then invalid_arg "Cluster.config: no platforms";
  if heartbeat_ps < 1 then invalid_arg "Cluster.config: heartbeat must be >= 1";
  if quarantine_misses < suspect_misses then
    invalid_arg "Cluster.config: quarantine_misses < suspect_misses";
  {
    cl_seed = seed;
    cl_duration_ps = duration_ps;
    cl_tenants = tenants;
    cl_devices = devices;
    cl_warm = warm;
    cl_platforms = platforms;
    cl_n_cores = n_cores;
    cl_core_cap = core_cap;
    cl_heartbeat_ps = heartbeat_ps;
    cl_suspect_misses = suspect_misses;
    cl_quarantine_misses = quarantine_misses;
    cl_drain_ps = drain_ps;
    cl_replay_max_retries = replay_max_retries;
    cl_replay_backoff_ps = replay_backoff_ps;
    cl_resident_bytes = resident_bytes;
    cl_promote_strikes = promote_strikes;
    cl_slo_hot_frac = slo_hot_frac;
    cl_max_events = max_events;
  }

type chaos =
  | Kill of { at : int; dev : int }
  | Restore of { at : int; dev : int }

(* ------------------------------------------------------------------ *)
(* Cluster state                                                      *)
(* ------------------------------------------------------------------ *)

type request = {
  cr_txn : int;  (* cluster-wide ack id: the dedup key *)
  cr_tenant : int;
  cr_class : Mix.klass;
  cr_arrival : int;
  cr_deadline : int;
  mutable cr_attempts : int;  (* replay attempts so far *)
  cr_k : (unit -> unit) option;  (* closed-loop continuation *)
}

type inflight = {
  il_req : request;
  il_gen : int;  (* device generation the command was sent to *)
}

type devstate = {
  dv_slot : int;
  dv_platform : Platform.Device.t;
  mutable dv_gen : int;
  mutable dv_handle : H.t;
  mutable dv_inj : Fault.Injector.t option;
  mutable dv_tracer : Trace.t option;
  mutable dv_state : Health.state;
  mutable dv_frozen : bool;  (* engine excluded from the lockstep *)
  mutable dv_misses : int;  (* consecutive missed heartbeats *)
  mutable dv_brownout : int;  (* probes still inside a brownout window *)
  mutable dv_vt : float;  (* per-device SFQ virtual time *)
  dv_out : int array array;  (* [system][core] outstanding *)
  dv_inflight : (int, inflight) Hashtbl.t;  (* txn -> record *)
  mutable dv_dispatched : int;
  mutable dv_completed : int;
  mutable dv_busy_prev : int;  (* server busy accumulated by dead gens *)
  mutable dv_transitions : (int * Health.state) list;  (* reverse *)
}

type ctstate = {
  ct_t : Tenant.t;
  ct_index : int;
  mutable ct_home : int;  (* device slot *)
  mutable ct_resident : H.remote_ptr option;
  mutable ct_degraded : bool;
  ct_queue : request Queue.t;
  mutable ct_vft : float;
  mutable ct_offered : int;
  mutable ct_admitted : int;
  mutable ct_shed_queue : int;
  mutable ct_shed_deadline : int;
  mutable ct_shed_degraded : int;
  mutable ct_completed : int;
  mutable ct_failed : int;
  mutable ct_bad : int;
  mutable ct_slo_viol : int;
  mutable ct_bytes : int;
  ct_q_wait : S.series;
  ct_service : S.series;
  ct_collect : S.series;
  ct_total : S.series;
}

(* Coordinator agenda: host-level actions (heartbeats, chaos, drain
   deadlines, replay backoffs) executed between lockstep rounds, when
   every live engine clock agrees. A sorted list keyed by (time, seq) —
   seq keeps same-time actions in insertion order. *)
type agenda_item = { ag_time : int; ag_seq : int; ag_act : unit -> unit }

type cstate = {
  st_cfg : config;
  st_host : Desim.Engine.t;  (* clients + host-side bookkeeping *)
  st_kinds : Mix.kind list;
  st_tenants : ctstate array;
  st_devices : devstate array;
  st_plan : Fault.Plan.t;
  st_policy : Fault.Policy.t option;
  st_tracer : Trace.t option;
  mutable st_next_txn : int;
  st_acked : (int, unit) Hashtbl.t;
  mutable st_duplicates : int;
  mutable st_replays : int;
  mutable st_replayed_ok : int;
  mutable st_quarantines : int;
  mutable st_promotions : int;
  mutable st_resharded : (string * int * int) list;  (* reverse *)
  mutable st_agenda : agenda_item list;  (* sorted by (time, seq) *)
  mutable st_agenda_seq : int;
  mutable st_dirty : bool;  (* some device may have dispatchable work *)
  mutable st_win_completed : int;  (* completions since the last probe *)
  mutable st_win_viol : int;
  mutable st_strikes : int;  (* consecutive hot probe windows *)
  mutable st_horizon : int;  (* heartbeats self-reschedule until then *)
  mutable st_served_ps : int;  (* accumulated traffic-phase time *)
  mutable st_phases : int;  (* phases started (next phase's salt) *)
}

let now st = Desim.Engine.now st.st_host

let schedule_action st ~at act =
  let it = { ag_time = at; ag_seq = st.st_agenda_seq; ag_act = act } in
  st.st_agenda_seq <- st.st_agenda_seq + 1;
  let rec ins = function
    | [] -> [ it ]
    | hd :: tl ->
        if
          hd.ag_time < it.ag_time
          || (hd.ag_time = it.ag_time && hd.ag_seq < it.ag_seq)
        then hd :: ins tl
        else it :: hd :: tl
  in
  st.st_agenda <- ins st.st_agenda

let bump st name =
  match st.st_tracer with None -> () | Some tr -> Trace.add tr name 1

let transition st dv state =
  if dv.dv_state <> state then begin
    dv.dv_state <- state;
    dv.dv_transitions <- (now st, state) :: dv.dv_transitions;
    match st.st_tracer with
    | None -> ()
    | Some tr ->
        Trace.instant tr ~now:(now st) ~track:"cluster/health" ~cat:"health"
          ~name:(Printf.sprintf "dev%d->%s" dv.dv_slot (Health.name state))
          ()
  end

(* ------------------------------------------------------------------ *)
(* Device boot                                                        *)
(* ------------------------------------------------------------------ *)

let kinds_used = Serve.kinds_used

let sys_index kinds (kind : Mix.kind) =
  let rec go i = function
    | [] -> invalid_arg "Cluster: request kind has no deployed system"
    | k :: tl -> if k = kind then i else go (i + 1) tl
  in
  go 0 kinds

(* Boot one SoC generation into a slot. Each generation gets its own
   forked injector (scope = slot + devices * gen), so sibling devices
   and successive reboots draw from independent seeded streams. *)
let boot_soc cfg ~plan ~policy ~traced ~slot ~gen ~platform =
  let kinds = kinds_used cfg.cl_tenants in
  let systems =
    List.map (fun k -> Serve.system_of_kind k ~n_cores:cfg.cl_n_cores) kinds
  in
  let root = Fault.Injector.create plan in
  let inj =
    Fault.Injector.fork root ~scope:(slot + (cfg.cl_devices * gen))
  in
  let design =
    B.Elaborate.elaborate
      (B.Config.make ~name:(Printf.sprintf "dev%d" slot) systems)
      platform
  in
  let behaviors = Serve.behavior_of_system in
  let tracer =
    if traced then Some (Trace.create ~device:(Printf.sprintf "dev%d" slot) ())
    else None
  in
  (* 128 MB of device memory: embedded slots model a hugetlb pool of
     half their memory in 2 MB slots, and every outstanding request
     holds two hugepage-backed buffers — the default 64 MB pool (16
     slots) is exactly exhaustible at full core occupancy *)
  let soc =
    B.Soc.create ~memory_bytes:(128 * 1024 * 1024) ?tracer ~fault:inj ?policy
      design ~behaviors
  in
  (B.Soc.engine soc, H.create soc, inj, tracer)

let fresh_device cfg ~plan ~policy ~traced ~slot ~state =
  let platform =
    List.nth cfg.cl_platforms (slot mod List.length cfg.cl_platforms)
  in
  let _, handle, inj, tracer =
    boot_soc cfg ~plan ~policy ~traced ~slot ~gen:0 ~platform
  in
  let n_sys = List.length (kinds_used cfg.cl_tenants) in
  {
    dv_slot = slot;
    dv_platform = platform;
    dv_gen = 0;
    dv_handle = handle;
    dv_inj = Some inj;
    dv_tracer = tracer;
    dv_state = state;
    dv_frozen = false;
    dv_misses = 0;
    dv_brownout = 0;
    dv_vt = 0.;
    dv_out = Array.init n_sys (fun _ -> Array.make cfg.cl_n_cores 0);
    dv_inflight = Hashtbl.create 64;
    dv_dispatched = 0;
    dv_completed = 0;
    dv_busy_prev = 0;
    dv_transitions = [ (0, state) ];
  }

let dev_engine dv = H.engine dv.dv_handle

(* Reboot a killed slot: the old generation's server-busy total is
   banked, a fresh SoC (next generation, fresh forked injector) joins
   the standby pool with its engine clock synced to cluster time. *)
let reboot st dv =
  let cfg = st.st_cfg in
  dv.dv_busy_prev <- dv.dv_busy_prev + H.server_busy_ps dv.dv_handle;
  dv.dv_gen <- dv.dv_gen + 1;
  let traced = dv.dv_tracer <> None || (st.st_tracer <> None) in
  let engine, handle, inj, tracer =
    boot_soc cfg ~plan:st.st_plan ~policy:st.st_policy ~traced
      ~slot:dv.dv_slot ~gen:dv.dv_gen ~platform:dv.dv_platform
  in
  Desim.Engine.run ~until:(now st) engine;
  dv.dv_handle <- handle;
  dv.dv_inj <- Some inj;
  dv.dv_tracer <- tracer;
  dv.dv_frozen <- false;
  dv.dv_misses <- 0;
  dv.dv_brownout <- 0;
  dv.dv_vt <- 0.;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) dv.dv_out;
  Hashtbl.reset dv.dv_inflight;
  transition st dv Health.Standby

(* ------------------------------------------------------------------ *)
(* Placement                                                          *)
(* ------------------------------------------------------------------ *)

let is_active dv =
  (not dv.dv_frozen)
  && (dv.dv_state = Health.Healthy || dv.dv_state = Health.Suspect)

(* Least total homed tenant weight among active devices; ties to the
   lowest slot. *)
let pick_home st =
  let load = Array.make (Array.length st.st_devices) 0. in
  Array.iter
    (fun ts ->
      if ts.ct_home >= 0 && not ts.ct_degraded then
        load.(ts.ct_home) <- load.(ts.ct_home) +. ts.ct_t.Tenant.t_weight)
    st.st_tenants;
  let best = ref (-1) in
  Array.iter
    (fun dv ->
      if is_active dv then
        if !best < 0 || load.(dv.dv_slot) < load.(!best) then
          best := dv.dv_slot)
    st.st_devices;
  if !best >= 0 then Some !best else None

(* Move a tenant's residence: free the working set on the old device
   (pure allocator bookkeeping even on a frozen device) and allocate on
   the new home — the data-locality cost a re-shard pays. *)
let rehome st ts ~target =
  let cfg = st.st_cfg in
  (match (ts.ct_resident, ts.ct_home) with
  | Some ptr, from when from >= 0 -> (
      try H.mfree st.st_devices.(from).dv_handle ptr with _ -> ())
  | _ -> ());
  ts.ct_home <- target;
  ts.ct_resident <-
    (if target >= 0 then
       Some (H.malloc st.st_devices.(target).dv_handle cfg.cl_resident_bytes)
     else None);
  if target >= 0 then st.st_dirty <- true

let degrade st ts =
  if not ts.ct_degraded then begin
    ts.ct_degraded <- true;
    bump st "cluster.degraded";
    (match (ts.ct_resident, ts.ct_home) with
    | Some ptr, from when from >= 0 -> (
        try H.mfree st.st_devices.(from).dv_handle ptr with _ -> ())
    | _ -> ());
    ts.ct_resident <- None;
    ts.ct_home <- -1
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

(* Least-outstanding-work core within a device's system, respecting the
   per-core cap and preferring non-quarantined cores (same rule as the
   single-SoC dispatcher). *)
let choose_core st dv ~si =
  let cap = st.st_cfg.cl_core_cap in
  let out = dv.dv_out.(si) in
  let best = ref (-1) and best_q = ref (-1) in
  Array.iteri
    (fun c o ->
      if o < cap then
        if H.is_quarantined dv.dv_handle ~system_id:si ~core_id:c then (
          if !best_q < 0 || o < out.(!best_q) then best_q := c)
        else if !best < 0 || o < out.(!best) then best := c)
    out;
  if !best >= 0 then Some !best else if !best_q >= 0 then Some !best_q
  else None

(* Settle a request's outcome against the cluster ledgers. The txn id
   is the ack id: the first completion wins; any later completion of
   the same txn (a browned-out device finishing a command that was
   already replayed elsewhere) is dropped by the dedup check. *)
let ack st ts (r : request) ~replayed ~submit_ps ~seen_ps ~done_ps v expect =
  if Hashtbl.mem st.st_acked r.cr_txn then begin
    st.st_duplicates <- st.st_duplicates + 1;
    bump st "cluster.duplicate_dropped"
  end
  else begin
    Hashtbl.replace st.st_acked r.cr_txn ();
    ts.ct_completed <- ts.ct_completed + 1;
    if v <> expect then ts.ct_bad <- ts.ct_bad + 1;
    ts.ct_bytes <- ts.ct_bytes + r.cr_class.Mix.k_bytes;
    if replayed then st.st_replayed_ok <- st.st_replayed_ok + 1;
    let us ps = float_of_int ps /. 1e6 in
    let total = done_ps - r.cr_arrival in
    S.observe ts.ct_q_wait (us (submit_ps - r.cr_arrival));
    S.observe ts.ct_service (us (seen_ps - submit_ps));
    S.observe ts.ct_collect (us (done_ps - seen_ps));
    S.observe ts.ct_total (us total);
    st.st_win_completed <- st.st_win_completed + 1;
    if total > ts.ct_t.Tenant.t_slo_ps then begin
      ts.ct_slo_viol <- ts.ct_slo_viol + 1;
      st.st_win_viol <- st.st_win_viol + 1
    end;
    bump st "cluster.completed"
  end;
  match r.cr_k with Some k -> k () | None -> ()

let fail_request st ts (r : request) =
  ts.ct_failed <- ts.ct_failed + 1;
  bump st "cluster.failed";
  match r.cr_k with Some k -> k () | None -> ()

(* Submit one request on its tenant's home device. Runs only from the
   coordinator (between lockstep rounds) or from a callback of the same
   device's engine, so the target engine clock always equals cluster
   time. *)
let rec submit st ts (r : request) =
  let dv = st.st_devices.(ts.ct_home) in
  let h = dv.dv_handle in
  let gen = dv.dv_gen in
  let si = sys_index st.st_kinds r.cr_class.Mix.k_kind in
  match choose_core st dv ~si with
  | None -> assert false (* caller reserved capacity *)
  | Some core ->
      dv.dv_out.(si).(core) <- dv.dv_out.(si).(core) + 1;
      dv.dv_dispatched <- dv.dv_dispatched + 1;
      let bytes = r.cr_class.Mix.k_bytes in
      let a = H.malloc h bytes and b = H.malloc h bytes in
      let submit_ps = Desim.Engine.now (dev_engine dv) in
      let args, cmd, expect =
        match r.cr_class.Mix.k_kind with
        | Mix.Memcpy ->
            ( [
                ("src", Int64.of_int a.H.rp_addr);
                ("dst", Int64.of_int b.H.rp_addr);
                ("bytes", Int64.of_int bytes);
              ],
              Kernels.Memcpy.command,
              Int64.of_int bytes )
        | Mix.Vecadd ->
            let n_eles = bytes / 4 in
            ( [
                ("addend", 1L);
                ("vec_addr", Int64.of_int a.H.rp_addr);
                ("out_addr", Int64.of_int b.H.rp_addr);
                ("n_eles", Int64.of_int n_eles);
              ],
              Kernels.Vecadd.command,
              Int64.of_int n_eles )
        | Mix.Sort ->
            (* the sort kernel's in2 channel is unused (in2_bytes = 0);
               fresh zeroed device buffers sort deterministically *)
            ( [
                ("in1", Int64.of_int a.H.rp_addr);
                ("in2", Int64.of_int a.H.rp_addr);
                ("out", Int64.of_int b.H.rp_addr);
              ],
              Kernels.Machsuite_extra.command,
              1L )
      in
      let replayed = r.cr_attempts > 0 in
      Hashtbl.replace dv.dv_inflight r.cr_txn { il_req = r; il_gen = gen };
      let rh =
        H.send ~queued_at:r.cr_arrival h
          ~system:(Mix.kind_system r.cr_class.Mix.k_kind)
          ~core ~cmd ~args
      in
      H.on_settled rh (fun res ->
          (* Fires inside this device's engine (or synchronously from a
             coordinator-driven send); if the generation moved on, the
             registry entry belongs to a newer boot and stays. *)
          let done_ps = Desim.Engine.now (dev_engine dv) in
          (try
             H.mfree h a;
             H.mfree h b
           with _ -> ());
          dv.dv_out.(si).(core) <- dv.dv_out.(si).(core) - 1;
          (match Hashtbl.find_opt dv.dv_inflight r.cr_txn with
          | Some il when il.il_gen = gen ->
              Hashtbl.remove dv.dv_inflight r.cr_txn
          | _ -> ());
          (match res with
          | Ok v ->
              dv.dv_completed <- dv.dv_completed + 1;
              let seen_ps =
                match H.response_seen_at rh with
                | Some s -> s
                | None -> done_ps
              in
              (match st.st_tracer with
              | None -> ()
              | Some tr ->
                  ignore
                    (Trace.complete_span tr ~start:r.cr_arrival ~stop:done_ps
                       ~track:(Printf.sprintf "cluster/%s" ts.ct_t.Tenant.t_name)
                       ~cat:"cluster" ~name:r.cr_class.Mix.k_label
                       ~args:
                         [
                           ("device", Trace.Int dv.dv_slot);
                           ("txn", Trace.Int r.cr_txn);
                         ]
                       ()));
              ack st ts r ~replayed ~submit_ps ~seen_ps ~done_ps v expect
          | Error _ ->
              (* The device-local watchdog exhausted recovery (every
                 core quarantined). Retry elsewhere with backoff while
                 the budget lasts — the same path a post-drain replay
                 takes. *)
              retry_or_fail st ts r);
          st.st_dirty <- true)

(* Bounded-exponential-backoff replay of a command that either lost its
   device (drain deadline passed) or failed device-local recovery. *)
and retry_or_fail st ts (r : request) =
  if Hashtbl.mem st.st_acked r.cr_txn then ()
  else if r.cr_attempts >= st.st_cfg.cl_replay_max_retries then
    fail_request st ts r
  else begin
    let delay =
      st.st_cfg.cl_replay_backoff_ps * (1 lsl r.cr_attempts)
    in
    r.cr_attempts <- r.cr_attempts + 1;
    st.st_replays <- st.st_replays + 1;
    bump st "cluster.replay";
    schedule_action st ~at:(now st + delay) (fun () -> replay st ts r)
  end

and replay st ts (r : request) =
  if Hashtbl.mem st.st_acked r.cr_txn then ()
  else if ts.ct_degraded || ts.ct_home < 0 then fail_request st ts r
  else begin
    let dv = st.st_devices.(ts.ct_home) in
    let si = sys_index st.st_kinds r.cr_class.Mix.k_kind in
    if (not (is_active dv)) || choose_core st dv ~si = None then
      (* home busy or gone: burn an attempt and back off again *)
      retry_or_fail st ts r
    else submit st ts r
  end

(* Shed expired heads of a tenant queue (per-tenant FIFO: an unexpired
   head proves nothing behind it expired). A degraded tenant sheds its
   whole queue — graceful degradation accounts those separately. *)
let shed_queue_head st ts =
  let t = now st in
  let rec go () =
    if ts.ct_degraded then
      match Queue.take_opt ts.ct_queue with
      | Some r ->
          ts.ct_shed_degraded <- ts.ct_shed_degraded + 1;
          bump st "cluster.shed_degraded";
          (match r.cr_k with Some k -> k () | None -> ());
          go ()
      | None -> ()
    else
      match Queue.peek_opt ts.ct_queue with
      | Some r when t > r.cr_deadline ->
          ignore (Queue.pop ts.ct_queue);
          ts.ct_shed_deadline <- ts.ct_shed_deadline + 1;
          bump st "cluster.shed_deadline";
          (match r.cr_k with Some k -> k () | None -> ());
          go ()
      | _ -> ()
  in
  go ()

(* Start-time fair queueing across the tenants homed on one device —
   the same SFQ rule as the single-SoC dispatcher, with a per-device
   virtual clock. *)
let pick_next st dv =
  let cand = ref None in
  Array.iter
    (fun ts ->
      shed_queue_head st ts;
      if ts.ct_home = dv.dv_slot && not ts.ct_degraded then
        match Queue.peek_opt ts.ct_queue with
        | None -> ()
        | Some r -> (
            let si = sys_index st.st_kinds r.cr_class.Mix.k_kind in
            match choose_core st dv ~si with
            | None -> ()  (* system saturated on this device *)
            | Some _ ->
                let key = Float.max ts.ct_vft dv.dv_vt in
                let better =
                  match !cand with None -> true | Some (k, _, _) -> key < k
                in
                if better then cand := Some (key, ts, r)))
    st.st_tenants;
  match !cand with
  | None -> None
  | Some (_, ts, r) ->
      ignore (Queue.pop ts.ct_queue);
      let start = Float.max ts.ct_vft dv.dv_vt in
      ts.ct_vft <-
        start +. (float_of_int r.cr_class.Mix.k_bytes /. ts.ct_t.Tenant.t_weight);
      dv.dv_vt <- start;
      Some (ts, r)

let pump_device st dv =
  if is_active dv then begin
    let continue_ = ref true in
    while !continue_ do
      match pick_next st dv with
      | None -> continue_ := false
      | Some (ts, r) -> submit st ts r
    done
  end

let pump_all st =
  while st.st_dirty do
    st.st_dirty <- false;
    Array.iter (fun dv -> pump_device st dv) st.st_devices;
    (* a degraded tenant's queue still needs shedding even though no
       device pumps it *)
    Array.iter
      (fun ts -> if ts.ct_degraded then shed_queue_head st ts)
      st.st_tenants
  done

(* ------------------------------------------------------------------ *)
(* Admission + clients                                                *)
(* ------------------------------------------------------------------ *)

let offer st ts ~klass ~k =
  ts.ct_offered <- ts.ct_offered + 1;
  bump st "cluster.offered";
  if Queue.length ts.ct_queue >= ts.ct_t.Tenant.t_queue_cap then begin
    ts.ct_shed_queue <- ts.ct_shed_queue + 1;
    bump st "cluster.shed_queue";
    false
  end
  else begin
    let t = now st in
    let txn = st.st_next_txn in
    st.st_next_txn <- txn + 1;
    Queue.push
      {
        cr_txn = txn;
        cr_tenant = ts.ct_index;
        cr_class = klass;
        cr_arrival = t;
        cr_deadline = t + ts.ct_t.Tenant.t_deadline_ps;
        cr_attempts = 0;
        cr_k = k;
      }
      ts.ct_queue;
    ts.ct_admitted <- ts.ct_admitted + 1;
    bump st "cluster.admitted";
    st.st_dirty <- true;
    true
  end

(* The same seeded client machinery as the single-SoC campaign
   (Serve.spawn_clients), generating arrivals on the host engine:
   per-client streams derive from (seed, salt, tenant, client) only, so
   the offered load is identical for any placement, device count, or
   chaos schedule. *)
let start_clients ?(salt = 0) ?(t0 = 0) ~horizon st =
  Serve.spawn_clients ~engine:st.st_host ~seed:st.st_cfg.cl_seed ~salt
    ~horizon ~t0
    ~tenants:(Array.to_list (Array.map (fun ts -> ts.ct_t) st.st_tenants))
    ~offer:(fun ~tenant ~klass ~k -> offer st st.st_tenants.(tenant) ~klass ~k)
    ()

(* ------------------------------------------------------------------ *)
(* Health: quarantine, drain, re-shard, promotion                     *)
(* ------------------------------------------------------------------ *)

(* After the drain deadline: every still-unacknowledged command of the
   drained generation is replayed on its tenant's new home. Replays go
   through the same backoff budget as device-local failures. Then the
   device is frozen — a browned-out (alive) device gets no further
   engine time, so a late completion there can only arrive before this
   point and is deduped by the ack table. *)
let finish_drain st dv ~gen =
  if dv.dv_gen = gen then begin
    let stuck =
      Hashtbl.fold
        (fun txn il acc -> if il.il_gen = gen then (txn, il) :: acc else acc)
        dv.dv_inflight []
    in
    let stuck = List.sort (fun (a, _) (b, _) -> compare a b) stuck in
    List.iter
      (fun (txn, il) ->
        Hashtbl.remove dv.dv_inflight txn;
        if not (Hashtbl.mem st.st_acked txn) then begin
          let ts = st.st_tenants.(il.il_req.cr_tenant) in
          retry_or_fail st ts il.il_req
        end)
      stuck;
    dv.dv_frozen <- true;
    if dv.dv_state <> Health.Dead then transition st dv Health.Dead
  end

(* Quarantine a device: log it, stop admitting, re-home its tenants to
   the least-loaded survivor (or degrade, lowest weight first, when no
   survivor exists), and arm the drain deadline. *)
let quarantine_device st dv ~reason =
  if dv.dv_state <> Health.Quarantined && dv.dv_state <> Health.Dead then begin
    st.st_quarantines <- st.st_quarantines + 1;
    bump st "cluster.quarantine";
    (match dv.dv_inj with
    | Some inj ->
        Fault.Injector.log inj ~now:(now st) ~cls:Fault.Class.Device_offline
          ~kind:Fault.Log.Quarantined
          ~site:(Printf.sprintf "dev%d: %s" dv.dv_slot reason)
    | None -> ());
    transition st dv Health.Quarantined;
    let victims =
      Array.to_list st.st_tenants
      |> List.filter (fun ts -> ts.ct_home = dv.dv_slot)
    in
    List.iter
      (fun ts ->
        match pick_home st with
        | Some target ->
            st.st_resharded <-
              (ts.ct_t.Tenant.t_name, dv.dv_slot, target) :: st.st_resharded;
            bump st "cluster.reshard";
            rehome st ts ~target
        | None -> ())
      victims;
    (* No survivor: shed load, lowest weight first, until the ones we
       cannot place are marked degraded. *)
    Array.to_list st.st_tenants
    |> List.filter (fun ts -> ts.ct_home = dv.dv_slot)
    |> List.sort (fun a b ->
           compare
             (a.ct_t.Tenant.t_weight, a.ct_index)
             (b.ct_t.Tenant.t_weight, b.ct_index))
    |> List.iter (fun ts -> degrade st ts);
    let gen = dv.dv_gen in
    schedule_action st
      ~at:(now st + st.st_cfg.cl_drain_ps)
      (fun () -> finish_drain st dv ~gen)
  end

(* Promote a standby device into service. Re-admit degraded tenants
   (highest weight first) onto it; with none degraded, migrate the
   most-backlogged tenant so the fresh capacity actually serves. *)
let promote st dv =
  if dv.dv_state = Health.Standby && not dv.dv_frozen then begin
    st.st_promotions <- st.st_promotions + 1;
    bump st "cluster.promote";
    transition st dv Health.Healthy;
    let degraded =
      Array.to_list st.st_tenants
      |> List.filter (fun ts -> ts.ct_degraded)
      |> List.sort (fun a b ->
             compare
               (b.ct_t.Tenant.t_weight, a.ct_index)
               (a.ct_t.Tenant.t_weight, b.ct_index))
    in
    match degraded with
    | _ :: _ ->
        List.iter
          (fun ts ->
            ts.ct_degraded <- false;
            st.st_resharded <-
              (ts.ct_t.Tenant.t_name, -1, dv.dv_slot) :: st.st_resharded;
            rehome st ts ~target:dv.dv_slot)
          degraded
    | [] -> (
        let cand = ref None in
        Array.iter
          (fun ts ->
            let backlog = Queue.length ts.ct_queue in
            if backlog > 0 && ts.ct_home >= 0 && ts.ct_home <> dv.dv_slot
            then
              match !cand with
              | Some (b, _) when b >= backlog -> ()
              | _ -> cand := Some (backlog, ts))
          st.st_tenants;
        match !cand with
        | Some (_, ts) ->
            st.st_resharded <-
              (ts.ct_t.Tenant.t_name, ts.ct_home, dv.dv_slot)
              :: st.st_resharded;
            bump st "cluster.reshard";
            rehome st ts ~target:dv.dv_slot
        | None -> ())
  end

let cluster_busy st =
  Array.exists (fun ts -> Queue.length ts.ct_queue > 0) st.st_tenants
  || Array.exists (fun dv -> Hashtbl.length dv.dv_inflight > 0) st.st_devices

(* One heartbeat round: probe every serving device, advance the health
   state machine, then evaluate elastic promotion on the cluster-wide
   SLO window. All decisions draw from each device's forked stream, so
   the round is deterministic. *)
let rec heartbeat st =
  let cfg = st.st_cfg in
  Array.iter
    (fun dv ->
      match dv.dv_state with
      | Health.Healthy | Health.Suspect ->
          let missed =
            if dv.dv_frozen then true
            else begin
              (match dv.dv_inj with
              | Some inj ->
                  if
                    dv.dv_brownout = 0
                    && Fault.Injector.decide inj Fault.Class.Device_brownout
                  then begin
                    dv.dv_brownout <-
                      1 + Fault.Injector.draw_int inj ~bound:cfg.cl_quarantine_misses;
                    Fault.Injector.log inj ~now:(now st)
                      ~cls:Fault.Class.Device_brownout ~kind:Fault.Log.Injected
                      ~site:
                        (Printf.sprintf "dev%d brownout %d probes" dv.dv_slot
                           dv.dv_brownout)
                  end
              | None -> ());
              if dv.dv_brownout > 0 then begin
                dv.dv_brownout <- dv.dv_brownout - 1;
                true
              end
              else
                match dv.dv_inj with
                | Some inj ->
                    if Fault.Injector.decide inj Fault.Class.Heartbeat_loss
                    then begin
                      Fault.Injector.log inj ~now:(now st)
                        ~cls:Fault.Class.Heartbeat_loss
                        ~kind:Fault.Log.Injected
                        ~site:(Printf.sprintf "dev%d probe lost" dv.dv_slot);
                      true
                    end
                    else false
                | None -> false
            end
          in
          if missed then begin
            dv.dv_misses <- dv.dv_misses + 1;
            bump st "cluster.hb_miss";
            if dv.dv_misses >= cfg.cl_quarantine_misses then
              quarantine_device st dv
                ~reason:
                  (Printf.sprintf "%d consecutive missed heartbeats"
                     dv.dv_misses)
            else if dv.dv_misses >= cfg.cl_suspect_misses then
              transition st dv Health.Suspect
          end
          else begin
            (* a response heals a merely-suspect device: transient
               heartbeat loss and short brownouts never quarantine *)
            if dv.dv_misses > 0 then begin
              dv.dv_misses <- 0;
              if dv.dv_state = Health.Suspect then begin
                transition st dv Health.Healthy;
                (match dv.dv_inj with
                | Some inj ->
                    Fault.Injector.log inj ~now:(now st)
                      ~cls:Fault.Class.Heartbeat_loss
                      ~kind:Fault.Log.Recovered
                      ~site:(Printf.sprintf "dev%d probes resumed" dv.dv_slot)
                | None -> ())
              end
            end
          end
      | _ -> ())
    st.st_devices;
  (* Elastic promotion: sustained SLO violation (or stranded degraded
     tenants) pulls a standby device into service. *)
  let hot =
    st.st_win_completed > 0
    && float_of_int st.st_win_viol
       > cfg.cl_slo_hot_frac *. float_of_int st.st_win_completed
  in
  st.st_win_completed <- 0;
  st.st_win_viol <- 0;
  if hot then st.st_strikes <- st.st_strikes + 1 else st.st_strikes <- 0;
  let stranded = Array.exists (fun ts -> ts.ct_degraded) st.st_tenants in
  if st.st_strikes >= cfg.cl_promote_strikes || stranded then begin
    let standby =
      Array.to_list st.st_devices
      |> List.find_opt (fun dv ->
             dv.dv_state = Health.Standby && not dv.dv_frozen)
    in
    match standby with
    | Some dv ->
        promote st dv;
        st.st_strikes <- 0
    | None -> ()
  end;
  if now st < st.st_horizon || cluster_busy st then
    schedule_action st ~at:(now st + cfg.cl_heartbeat_ps) (fun () ->
        heartbeat st)

(* ------------------------------------------------------------------ *)
(* Chaos                                                              *)
(* ------------------------------------------------------------------ *)

let kill_device st dv =
  if not dv.dv_frozen then begin
    (match dv.dv_inj with
    | Some inj ->
        Fault.Injector.log inj ~now:(now st) ~cls:Fault.Class.Device_offline
          ~kind:Fault.Log.Injected
          ~site:(Printf.sprintf "dev%d offline" dv.dv_slot)
    | None -> ());
    bump st "cluster.kill";
    (* the engine freezes: nothing in flight there ever settles; the
       heartbeat monitor notices, quarantines, drains, and re-shards *)
    dv.dv_frozen <- true;
    if dv.dv_state = Health.Standby then transition st dv Health.Dead
  end

let restore_device st dv =
  if dv.dv_frozen then begin
    bump st "cluster.restore";
    (* a restore can land before the drain deadline fires; the reboot
       bumps the generation (making the pending drain a no-op), so
       replay whatever the dead generation still held first *)
    let stuck =
      Hashtbl.fold (fun txn il acc -> (txn, il) :: acc) dv.dv_inflight []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (txn, il) ->
        if not (Hashtbl.mem st.st_acked txn) then begin
          let ts = st.st_tenants.(il.il_req.cr_tenant) in
          retry_or_fail st ts il.il_req
        end)
      stuck;
    reboot st dv
  end

(* ------------------------------------------------------------------ *)
(* Lockstep coordinator                                               *)
(* ------------------------------------------------------------------ *)

(* Conservative multi-engine lockstep: find the earliest pending event
   across the host engine, every live device engine, and the agenda;
   advance every live engine to that time (host first, then devices in
   slot order — engines without events there just move their clock), and
   iterate until no live engine holds an event at or before it. Agenda
   actions and the dispatch pump run between rounds, when every live
   clock agrees — so cross-engine calls (H.send from the coordinator,
   closed-loop wakeups on the host engine from a device completion) are
   always made at a single consistent cluster time. *)
let drive st =
  let cfg = st.st_cfg in
  let live_engines () =
    st.st_host
    :: (Array.to_list st.st_devices
       |> List.filter (fun dv -> not dv.dv_frozen)
       |> List.map dev_engine)
  in
  let next_min () =
    let engines = live_engines () in
    let m =
      List.fold_left
        (fun acc e ->
          match (Desim.Engine.next_time e, acc) with
          | None, acc -> acc
          | Some t, None -> Some t
          | Some t, Some a -> Some (min t a))
        None engines
    in
    match (st.st_agenda, m) with
    | [], m -> m
    | it :: _, None -> Some it.ag_time
    | it :: _, Some a -> Some (min it.ag_time a)
  in
  let run_due_agenda () =
    let rec go () =
      match st.st_agenda with
      | it :: tl when it.ag_time <= now st ->
          st.st_agenda <- tl;
          it.ag_act ();
          go ()
      | _ -> ()
    in
    go ()
  in
  let rounds = ref 0 in
  let rec loop () =
    incr rounds;
    if !rounds > cfg.cl_max_events then
      failwith "Cluster: coordinator livelock (round budget exhausted)";
    run_due_agenda ();
    pump_all st;
    match next_min () with
    | None -> ()
    | Some t ->
        let fire () =
          List.iter
            (fun e -> Desim.Engine.run ~until:t ~max_events:cfg.cl_max_events e)
            (live_engines ())
        in
        fire ();
        (* same-time cascades across engines *)
        let rec settle () =
          let again =
            List.exists
              (fun e ->
                match Desim.Engine.next_time e with
                | Some t' -> t' <= t
                | None -> false)
              (live_engines ())
          in
          if again then begin
            fire ();
            settle ()
          end
        in
        settle ();
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Run + report                                                       *)
(* ------------------------------------------------------------------ *)

type device_report = {
  dr_name : string;
  dr_platform : string;
  dr_state : Health.state;
  dr_generations : int;
  dr_dispatched : int;
  dr_completed : int;
  dr_busy_ps : int;
  dr_utilization : float;
  dr_transitions : (int * Health.state) list;
  dr_injector : Fault.Injector.t option;
}

type report = {
  c_seed : int;
  c_duration_ps : int;
  c_wall_ps : int;
  c_tenants : Serve.tenant_report list;
  c_devices : device_report list;
  c_placements : (string * int) list;
  c_resharded : (string * int * int) list;
  c_quarantines : int;
  c_promotions : int;
  c_replays : int;
  c_replayed_ok : int;
  c_duplicates : int;
  c_lost_acked : int;
  c_degraded_sheds : int;
  c_device_tracers : (string * Trace.t) list;
}

(* Build the cluster state and boot every device slot. Shared by the
   one-shot [run] and by [Session.create]. *)
let mk_state ?tracer ?plan ?fault_policy cfg =
  let plan =
    match plan with
    | Some p -> p
    | None -> { Fault.Plan.none with Fault.Plan.seed = cfg.cl_seed }
  in
  let st =
    {
      st_cfg = cfg;
      st_host = Desim.Engine.create ();
      st_kinds = kinds_used cfg.cl_tenants;
      st_tenants =
        Array.of_list
          (List.mapi
             (fun i t ->
               {
                 ct_t = t;
                 ct_index = i;
                 ct_home = -1;
                 ct_resident = None;
                 ct_degraded = false;
                 ct_queue = Queue.create ();
                 ct_vft = 0.;
                 ct_offered = 0;
                 ct_admitted = 0;
                 ct_shed_queue = 0;
                 ct_shed_deadline = 0;
                 ct_shed_degraded = 0;
                 ct_completed = 0;
                 ct_failed = 0;
                 ct_bad = 0;
                 ct_slo_viol = 0;
                 ct_bytes = 0;
                 ct_q_wait = S.series ();
                 ct_service = S.series ();
                 ct_collect = S.series ();
                 ct_total = S.series ();
               })
             cfg.cl_tenants);
      st_devices =
        Array.init cfg.cl_devices (fun slot ->
            fresh_device cfg ~plan ~policy:fault_policy
              ~traced:(tracer <> None) ~slot
              ~state:
                (if slot < cfg.cl_warm then Health.Healthy else Health.Standby));
      st_plan = plan;
      st_policy = fault_policy;
      st_tracer = tracer;
      st_next_txn = 0;
      st_acked = Hashtbl.create 1024;
      st_duplicates = 0;
      st_replays = 0;
      st_replayed_ok = 0;
      st_quarantines = 0;
      st_promotions = 0;
      st_resharded = [];
      st_agenda = [];
      st_agenda_seq = 0;
      st_dirty = false;
      st_win_completed = 0;
      st_win_viol = 0;
      st_strikes = 0;
      st_horizon = 0;
      st_served_ps = 0;
      st_phases = 0;
    }
  in
  (* Initial placement: tenants in declaration order onto the least
     weight-loaded warm device — data locality established by giving
     each tenant its resident working set on its home. *)
  Array.iter
    (fun ts ->
      match pick_home st with
      | Some slot -> rehome st ts ~target:slot
      | None -> degrade st ts)
    st.st_tenants;
  st

(* Assemble the cumulative cluster report from live state. Pure
   observation (counters, series summaries) — nothing is drained,
   scheduled or drawn, so sessions can snapshot mid-scenario. *)
let mk_report st ~duration_ps =
  let cfg = st.st_cfg in
  let wall_ps = now st in
  let tenants =
    Array.to_list
      (Array.map
         (fun ts ->
           {
             Serve.tr_name = ts.ct_t.Tenant.t_name;
             tr_weight = ts.ct_t.Tenant.t_weight;
             tr_offered = ts.ct_offered;
             tr_admitted = ts.ct_admitted;
             tr_shed_queue = ts.ct_shed_queue;
             tr_shed_deadline = ts.ct_shed_deadline;
             tr_shed_degraded = ts.ct_shed_degraded;
             tr_completed = ts.ct_completed;
             tr_failed = ts.ct_failed;
             tr_bad_responses = ts.ct_bad;
             tr_slo_violations = ts.ct_slo_viol;
             tr_bytes_served = ts.ct_bytes;
             tr_offered_rps =
               float_of_int ts.ct_offered
               /. (float_of_int duration_ps /. 1e12);
             tr_achieved_rps =
               (if wall_ps = 0 then 0.
                else
                  float_of_int ts.ct_completed
                  /. (float_of_int wall_ps /. 1e12));
             tr_queue = Serve.phase_of ts.ct_q_wait;
             tr_service = Serve.phase_of ts.ct_service;
             tr_collect = Serve.phase_of ts.ct_collect;
             tr_total = Serve.phase_of ts.ct_total;
           })
         st.st_tenants)
  in
  let devices =
    Array.to_list
      (Array.map
         (fun dv ->
           let busy = dv.dv_busy_prev + H.server_busy_ps dv.dv_handle in
           {
             dr_name = Printf.sprintf "dev%d" dv.dv_slot;
             dr_platform = dv.dv_platform.Platform.Device.name;
             dr_state = dv.dv_state;
             dr_generations = dv.dv_gen + 1;
             dr_dispatched = dv.dv_dispatched;
             dr_completed = dv.dv_completed;
             dr_busy_ps = busy;
             dr_utilization =
               (if wall_ps = 0 then 0.
                else float_of_int busy /. float_of_int wall_ps);
             dr_transitions = List.rev dv.dv_transitions;
             dr_injector = dv.dv_inj;
           })
         st.st_devices)
  in
  let completed_total =
    Array.fold_left (fun a ts -> a + ts.ct_completed) 0 st.st_tenants
  in
  {
    c_seed = cfg.cl_seed;
    c_duration_ps = duration_ps;
    c_wall_ps = wall_ps;
    c_tenants = tenants;
    c_devices = devices;
    c_placements =
      Array.to_list
        (Array.map
           (fun ts -> (ts.ct_t.Tenant.t_name, ts.ct_home))
           st.st_tenants);
    c_resharded = List.rev st.st_resharded;
    c_quarantines = st.st_quarantines;
    c_promotions = st.st_promotions;
    c_replays = st.st_replays;
    c_replayed_ok = st.st_replayed_ok;
    c_duplicates = st.st_duplicates;
    c_lost_acked = Hashtbl.length st.st_acked - completed_total;
    c_degraded_sheds =
      Array.fold_left (fun a ts -> a + ts.ct_shed_degraded) 0 st.st_tenants;
    c_device_tracers =
      Array.to_list st.st_devices
      |> List.filter_map (fun dv ->
             match dv.dv_tracer with
             | Some tr -> Some (Printf.sprintf "dev%d" dv.dv_slot, tr)
             | None -> None);
  }

let run ?tracer ?plan ?fault_policy ?(chaos = []) cfg () =
  let st = mk_state ?tracer ?plan ?fault_policy cfg in
  (* Chaos schedule and the first heartbeat go on the agenda. *)
  List.iter
    (function
      | Kill { at; dev } ->
          if dev < 0 || dev >= cfg.cl_devices then
            invalid_arg "Cluster.run: chaos device out of range";
          schedule_action st ~at (fun () ->
              kill_device st st.st_devices.(dev))
      | Restore { at; dev } ->
          if dev < 0 || dev >= cfg.cl_devices then
            invalid_arg "Cluster.run: chaos device out of range";
          schedule_action st ~at (fun () ->
              restore_device st st.st_devices.(dev)))
    chaos;
  st.st_horizon <- cfg.cl_duration_ps;
  st.st_served_ps <- cfg.cl_duration_ps;
  st.st_phases <- 1;
  schedule_action st ~at:cfg.cl_heartbeat_ps (fun () -> heartbeat st);
  start_clients ~horizon:cfg.cl_duration_ps st;
  drive st;
  mk_report st ~duration_ps:cfg.cl_duration_ps

(* ------------------------------------------------------------------ *)
(* Sessions: the fleet outlives a single campaign                     *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type t = cstate

  let create ?tracer ?plan ?fault_policy cfg () =
    mk_state ?tracer ?plan ?fault_policy cfg

  let now = now
  let health st ~dev =
    if dev < 0 || dev >= Array.length st.st_devices then
      invalid_arg "Cluster.Session.health: device out of range";
    st.st_devices.(dev).dv_state

  let check_dev st name dev =
    if dev < 0 || dev >= Array.length st.st_devices then
      invalid_arg (Printf.sprintf "Cluster.Session.%s: device out of range" name)

  (* Immediate chaos actions: the executor performs these between
     lockstep rounds (the cluster is settled), so they run directly
     rather than through the agenda. *)
  let kill st ~dev =
    check_dev st "kill" dev;
    kill_device st st.st_devices.(dev)

  let restore st ~dev =
    check_dev st "restore" dev;
    restore_device st st.st_devices.(dev)

  let promote_standby st =
    let standby =
      Array.to_list st.st_devices
      |> List.find_opt (fun dv ->
             dv.dv_state = Health.Standby && not dv.dv_frozen)
    in
    match standby with
    | Some dv ->
        promote st dv;
        true
    | None -> false

  (* One traffic phase: re-arm the heartbeat monitor, spawn a fresh
     generation of clients (salt = phase index; phase 0 = the
     historical streams), and drive the fleet until every engine and
     the agenda are quiet — admitted requests settled, drains and
     replays resolved. Reports are cumulative over the session (the
     dedup/ack ledgers are cluster-lifetime), so [c_lost_acked] stays
     meaningful across phases. *)
  let run_phase st ~duration_ps =
    if duration_ps < 1 then
      invalid_arg "Cluster.Session.run_phase: duration must be >= 1";
    let t0 = now st in
    st.st_horizon <- t0 + duration_ps;
    st.st_served_ps <- st.st_served_ps + duration_ps;
    (* between phases the agenda is empty (drive runs it dry), so the
       heartbeat chain is always re-armed here *)
    schedule_action st ~at:(t0 + st.st_cfg.cl_heartbeat_ps) (fun () ->
        heartbeat st);
    start_clients ~salt:st.st_phases ~t0 ~horizon:(t0 + duration_ps) st;
    st.st_phases <- st.st_phases + 1;
    drive st;
    mk_report st ~duration_ps:(max 1 st.st_served_ps)

  (* Advance cluster time without traffic: host engine plus every live
     device engine move to [now + delta] in lockstep (pending agenda
     work — e.g. a drain deadline — fires on the way). *)
  let sleep st ~delta_ps =
    if delta_ps < 0 then
      invalid_arg "Cluster.Session.sleep: negative delta";
    let target = now st + delta_ps in
    let rec go () =
      (match st.st_agenda with
      | it :: tl when it.ag_time <= target ->
          Desim.Engine.run ~until:it.ag_time
            ~max_events:st.st_cfg.cl_max_events st.st_host;
          Array.iter
            (fun dv ->
              if not dv.dv_frozen then
                Desim.Engine.run ~until:it.ag_time
                  ~max_events:st.st_cfg.cl_max_events (dev_engine dv))
            st.st_devices;
          st.st_agenda <- tl;
          it.ag_act ();
          (* dispatch any work the action freed; completions landing
             after [target] stay pending and settle in the next phase *)
          pump_all st;
          go ()
      | _ -> ())
    in
    go ();
    Desim.Engine.run ~until:target ~max_events:st.st_cfg.cl_max_events
      st.st_host;
    Array.iter
      (fun dv ->
        if not dv.dv_frozen then
          Desim.Engine.run ~until:target ~max_events:st.st_cfg.cl_max_events
            (dev_engine dv))
      st.st_devices

  let snapshot st = mk_report st ~duration_ps:(max 1 st.st_served_ps)
  let phases st = st.st_phases
  let quarantines st = st.st_quarantines
end

(* ------------------------------------------------------------------ *)
(* Accounting checks, digest, render                                  *)
(* ------------------------------------------------------------------ *)

let violations r =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun t ->
      let open Serve in
      if t.tr_offered <> t.tr_admitted + t.tr_shed_queue then
        add "%s: offered %d <> admitted %d + shed-at-admission %d" t.tr_name
          t.tr_offered t.tr_admitted t.tr_shed_queue;
      if
        t.tr_admitted
        <> t.tr_completed + t.tr_shed_deadline + t.tr_shed_degraded
           + t.tr_failed
      then
        add
          "%s: admitted %d <> completed %d + shed-deadline %d + \
           shed-degraded %d + failed %d"
          t.tr_name t.tr_admitted t.tr_completed t.tr_shed_deadline
          t.tr_shed_degraded t.tr_failed;
      if t.tr_bad_responses > 0 then
        add "%s: %d bad responses" t.tr_name t.tr_bad_responses)
    r.c_tenants;
  if r.c_lost_acked <> 0 then
    add "cluster: %d acked commands missing from tenant ledgers"
      r.c_lost_acked;
  if r.c_duplicates < 0 then add "cluster: negative duplicate count";
  List.rev !out

let conserved r = violations r = []

let digest r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cluster seed=%d devs=%d wall=%d q=%d promo=%d replay=%d/%d dup=%d lost=%d"
    r.c_seed
    (List.length r.c_devices)
    r.c_wall_ps r.c_quarantines r.c_promotions r.c_replayed_ok r.c_replays
    r.c_duplicates r.c_lost_acked;
  List.iter
    (fun (d : device_report) ->
      pf " | %s st=%s gen=%d disp=%d ok=%d busy=%d" d.dr_name
        (Health.name d.dr_state) d.dr_generations d.dr_dispatched
        d.dr_completed d.dr_busy_ps)
    r.c_devices;
  List.iter
    (fun t ->
      let open Serve in
      pf " | %s off=%d adm=%d shq=%d shd=%d shg=%d ok=%d fail=%d slo=%d by=%d"
        t.tr_name t.tr_offered t.tr_admitted t.tr_shed_queue
        t.tr_shed_deadline t.tr_shed_degraded t.tr_completed t.tr_failed
        t.tr_slo_violations t.tr_bytes_served;
      match t.tr_total with
      | Some p -> pf " p99=%.2f" p.ph_p99_us
      | None -> pf " p99=-")
    r.c_tenants;
  Buffer.contents b

let render r =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cluster campaign: seed=%d devices=%d duration=%.0f us wall=%.0f us\n"
    r.c_seed
    (List.length r.c_devices)
    (float_of_int r.c_duration_ps /. 1e6)
    (float_of_int r.c_wall_ps /. 1e6);
  pf
    "  health: %d quarantines, %d promotions; %d replays (%d completed), %d \
     duplicate acks dropped, %d lost acked\n"
    r.c_quarantines r.c_promotions r.c_replays r.c_replayed_ok r.c_duplicates
    r.c_lost_acked;
  List.iter
    (fun (d : device_report) ->
      pf "  %-5s %-32s %-11s gen=%d disp=%-6d ok=%-6d util=%5.1f%%\n"
        d.dr_name d.dr_platform
        (Health.name d.dr_state)
        d.dr_generations d.dr_dispatched d.dr_completed
        (100. *. d.dr_utilization);
      List.iter
        (fun (t, s) ->
          if t > 0 then
            pf "        @%-10.0f -> %s\n"
              (float_of_int t /. 1e6)
              (Health.name s))
        d.dr_transitions)
    r.c_devices;
  (match r.c_resharded with
  | [] -> ()
  | moves ->
      pf "  re-shards:\n";
      List.iter
        (fun (name, from, to_) ->
          if from < 0 then pf "    %s: degraded -> dev%d\n" name to_
          else pf "    %s: dev%d -> dev%d\n" name from to_)
        moves);
  pf "  placements:";
  List.iter
    (fun (name, slot) ->
      if slot < 0 then pf " %s=degraded" name else pf " %s=dev%d" name slot)
    r.c_placements;
  pf "\n";
  pf "\n%-10s %4s %8s %8s %6s %6s %6s %8s %6s %6s %10s %10s\n" "tenant" "wt"
    "offered" "admitted" "shedQ" "shedD" "shedG" "complete" "fail" "slo!"
    "offered/s" "achieved/s";
  List.iter
    (fun t ->
      let open Serve in
      pf "%-10s %4.1f %8d %8d %6d %6d %6d %8d %6d %6d %10.0f %10.0f\n"
        t.tr_name t.tr_weight t.tr_offered t.tr_admitted t.tr_shed_queue
        t.tr_shed_deadline t.tr_shed_degraded t.tr_completed t.tr_failed
        t.tr_slo_violations t.tr_offered_rps t.tr_achieved_rps)
    r.c_tenants;
  let sq, sd, sg =
    List.fold_left
      (fun (q, d, g) t ->
        let open Serve in
        (q + t.tr_shed_queue, d + t.tr_shed_deadline, g + t.tr_shed_degraded))
      (0, 0, 0) r.c_tenants
  in
  pf "shed breakdown: queue-full=%d deadline=%d degradation=%d\n" sq sd sg;
  pf "\nlatency (us)%-16s %8s %8s %8s %8s %8s\n" "" "mean" "p50" "p95" "p99"
    "p99.9";
  List.iter
    (fun t ->
      let open Serve in
      let row label = function
        | None ->
            pf "  %-10s %-15s %8s %8s %8s %8s %8s\n" t.tr_name label "-" "-"
              "-" "-" "-"
        | Some p ->
            pf "  %-10s %-15s %8.1f %8.1f %8.1f %8.1f %8.1f\n" t.tr_name
              label p.ph_mean_us p.ph_p50_us p.ph_p95_us p.ph_p99_us
              p.ph_p999_us
      in
      row "queue-wait" t.tr_queue;
      row "service" t.tr_service;
      row "collect" t.tr_collect;
      row "total" t.tr_total)
    r.c_tenants;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Degradation curve                                                  *)
(* ------------------------------------------------------------------ *)

type loss_point = {
  lp_devices : int;
  lp_offered_rps : float;
  lp_achieved_rps : float;
  lp_completed : int;
  lp_shed : int;
  lp_p99_us : float;
}

let device_loss_curve ?(seed = 42) ?(duration_ps = 1_500_000_000)
    ?(rate_rps = 120_000.) ~devices () =
  if devices < 1 then invalid_arg "Cluster.device_loss_curve: devices >= 1";
  (* one shard tenant per device slot, so the offered load actually
     spreads across the fleet and killing k slots concentrates it on
     the survivors *)
  let tenants =
    List.init devices (fun i ->
        Tenant.make
          ~name:(Printf.sprintf "shard%d" i)
          ~clients:4 ~queue_cap:128 ~slo_ps:300_000_000
          ~deadline_ps:600_000_000
          ~mix:[ Mix.memcpy ~bytes:(16 * 1024) () ]
          ~load:
            (Tenant.open_loop
               ~rate_rps:(rate_rps /. float_of_int (4 * devices))
               ())
          ())
  in
  let point ~kill =
    let cfg = config ~seed ~duration_ps ~devices ~tenants () in
    let chaos =
      List.init kill (fun i -> Kill { at = duration_ps / 3; dev = i })
    in
    let r = run ~chaos cfg () in
    let open Serve in
    let sumf f = List.fold_left (fun a t -> a +. f t) 0. r.c_tenants in
    let sumi f = List.fold_left (fun a t -> a + f t) 0 r.c_tenants in
    {
      lp_devices = devices - kill;
      lp_offered_rps = sumf (fun t -> t.tr_offered_rps);
      lp_achieved_rps = sumf (fun t -> t.tr_achieved_rps);
      lp_completed = sumi (fun t -> t.tr_completed);
      lp_shed =
        sumi (fun t ->
            t.tr_shed_queue + t.tr_shed_deadline + t.tr_shed_degraded);
      lp_p99_us =
        List.fold_left
          (fun a t ->
            match t.tr_total with
            | Some p -> Float.max a p.ph_p99_us
            | None -> a)
          0. r.c_tenants;
    }
  in
  List.init devices (fun kill -> point ~kill)

let render_loss_curve points =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%8s %12s %12s %9s %6s %9s\n" "devices" "offered/s" "achieved/s"
    "complete" "shed" "p99 us";
  List.iter
    (fun p ->
      pf "%8d %12.0f %12.0f %9d %6d %9.1f\n" p.lp_devices p.lp_offered_rps
        p.lp_achieved_rps p.lp_completed p.lp_shed p.lp_p99_us)
    points;
  Buffer.contents b
