(* Deterministic, seed-driven fault injection: PRNG streams, the SECDED
   ECC code + scrub model, campaign plans, the structured fault log, and
   the injector the stack's recovery machinery reports back to. *)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let create ~seed = { state = seed }

  let next t =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t =
    (* top 53 bits -> uniform in [0,1) *)
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.

  let int t ~bound =
    if bound <= 0 then invalid_arg "Fault.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                    (Int64.of_int bound))
end

(* ------------------------------------------------------------------ *)
(* SECDED Hamming(72,64)                                               *)
(* ------------------------------------------------------------------ *)

module Ecc = struct
  (* Codeword positions 1..71; positions 1,2,4,8,16,32,64 hold the seven
     Hamming check bits, the remaining 64 hold data bits in order. An
     overall parity bit (over positions 1..71) extends correction to
     SECDED. The check byte is [p0..p6] in bits 0..6 and the overall
     parity in bit 7. *)

  let is_pow2 p = p land (p - 1) = 0

  (* data bit index -> codeword position *)
  let data_pos =
    let a = Array.make 64 0 in
    let i = ref 0 in
    for p = 1 to 71 do
      if not (is_pow2 p) then begin
        a.(!i) <- p;
        incr i
      end
    done;
    a

  (* codeword position -> data bit index (or -1 for check positions) *)
  let pos_data =
    let a = Array.make 72 (-1) in
    Array.iteri (fun i p -> a.(p) <- i) data_pos;
    a

  let data_bit w i = Int64.to_int (Int64.shift_right_logical w i) land 1

  let hamming_checks w =
    (* p_i = parity over data positions whose index has bit i set *)
    let checks = ref 0 in
    for i = 0 to 6 do
      let p = ref 0 in
      for b = 0 to 63 do
        if data_pos.(b) land (1 lsl i) <> 0 then p := !p lxor data_bit w b
      done;
      checks := !checks lor (!p lsl i)
    done;
    !checks

  let popcount_parity v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc lxor (v land 1)) in
    go v 0

  let word_parity w =
    let x = Int64.logxor w (Int64.shift_right_logical w 32) in
    let x = Int64.logxor x (Int64.shift_right_logical x 16) in
    let x = Int64.logxor x (Int64.shift_right_logical x 8) in
    let x = Int64.logxor x (Int64.shift_right_logical x 4) in
    let x = Int64.logxor x (Int64.shift_right_logical x 2) in
    let x = Int64.logxor x (Int64.shift_right_logical x 1) in
    Int64.to_int x land 1

  let encode w =
    let h = hamming_checks w in
    (* overall parity over positions 1..71 = data bits ^ check bits *)
    let overall = word_parity w lxor popcount_parity h in
    h lor (overall lsl 7)

  type verdict = Ok | Corrected of int64 | Uncorrectable

  let decode ~data ~check =
    let stored_h = check land 0x7f in
    let stored_overall = (check lsr 7) land 1 in
    let h = hamming_checks data in
    let syndrome = h lxor stored_h in
    let overall = word_parity data lxor popcount_parity stored_h in
    let parity_mismatch = overall <> stored_overall in
    if syndrome = 0 then
      if parity_mismatch then Corrected data (* overall parity bit flipped *)
      else Ok
    else if not parity_mismatch then Uncorrectable (* even # of flips *)
    else if syndrome <= 71 && pos_data.(syndrome) >= 0 then
      (* single data-bit error at codeword position [syndrome] *)
      Corrected (Int64.logxor data (Int64.shift_left 1L pos_data.(syndrome)))
    else if syndrome <= 71 then Corrected data (* a check bit flipped *)
    else Uncorrectable (* syndrome points outside the codeword *)

  (* ---- the memory-model half: latched codewords + scrub-on-read ---- *)

  type t = {
    latched : (int, int) Hashtbl.t; (* word addr -> check byte *)
    mutable n_corrected : int;
    mutable n_uncorrectable : int;
  }

  let create () =
    { latched = Hashtbl.create 64; n_corrected = 0; n_uncorrectable = 0 }

  let get_word mem addr = Bytes.get_int64_le mem addr
  let set_word mem addr v = Bytes.set_int64_le mem addr v

  let inject_flip t ~mem ~word_addr ~bit =
    if bit < 0 || bit > 63 then invalid_arg "Ecc.inject_flip: bit";
    let word_addr = word_addr land lnot 7 in
    if word_addr + 8 > Bytes.length mem then
      invalid_arg "Ecc.inject_flip: address out of range";
    let w = get_word mem word_addr in
    if not (Hashtbl.mem t.latched word_addr) then
      (* first corruption since the word was last rewritten: the cells
         held a valid codeword until now *)
      Hashtbl.replace t.latched word_addr (encode w);
    set_word mem word_addr (Int64.logxor w (Int64.shift_left 1L bit))

  let note_write t ~addr ~bytes =
    let first = addr land lnot 7 in
    let last = (addr + bytes - 1) land lnot 7 in
    let a = ref first in
    while !a <= last do
      Hashtbl.remove t.latched !a;
      a := !a + 8
    done

  let scrub t ~mem ~addr ~bytes =
    let first = addr land lnot 7 in
    let last = min ((addr + bytes - 1) land lnot 7) (Bytes.length mem - 8) in
    let corrected = ref 0 and uncorrectable = ref 0 in
    let a = ref first in
    while !a <= last do
      (match Hashtbl.find_opt t.latched !a with
      | None -> ()
      | Some check -> (
          match decode ~data:(get_word mem !a) ~check with
          | Ok -> Hashtbl.remove t.latched !a
          | Corrected w ->
              set_word mem !a w;
              Hashtbl.remove t.latched !a;
              incr corrected;
              t.n_corrected <- t.n_corrected + 1
          | Uncorrectable ->
              (* detected, flagged, but the data is gone *)
              Hashtbl.remove t.latched !a;
              incr uncorrectable;
              t.n_uncorrectable <- t.n_uncorrectable + 1));
      a := !a + 8
    done;
    (!corrected, !uncorrectable)

  let corrected t = t.n_corrected
  let uncorrectable t = t.n_uncorrectable
end

(* ------------------------------------------------------------------ *)
(* Fault classes                                                       *)
(* ------------------------------------------------------------------ *)

module Class = struct
  type t =
    | Dram_flip
    | Dram_double_flip
    | Axi_read_error
    | Axi_write_error
    | Noc_cmd_drop
    | Noc_resp_drop
    | Noc_delay
    | Core_hang
    | Dma_fail
    | Device_offline
    | Heartbeat_loss
    | Device_brownout

  (* Device-scope classes are appended, never inserted: a class's index
     seeds its decision stream, so the prefix must stay frozen for the
     digests of existing campaigns to survive new classes. *)
  let all =
    [
      Dram_flip; Dram_double_flip; Axi_read_error; Axi_write_error;
      Noc_cmd_drop; Noc_resp_drop; Noc_delay; Core_hang; Dma_fail;
      Device_offline; Heartbeat_loss; Device_brownout;
    ]

  let name = function
    | Dram_flip -> "dram-flip"
    | Dram_double_flip -> "dram-double-flip"
    | Axi_read_error -> "axi-read-error"
    | Axi_write_error -> "axi-write-error"
    | Noc_cmd_drop -> "noc-cmd-drop"
    | Noc_resp_drop -> "noc-resp-drop"
    | Noc_delay -> "noc-delay"
    | Core_hang -> "core-hang"
    | Dma_fail -> "dma-fail"
    | Device_offline -> "device-offline"
    | Heartbeat_loss -> "heartbeat-loss"
    | Device_brownout -> "device-brownout"

  let of_name s = List.find_opt (fun c -> name c = s) all

  let index c =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = c then i else go (i + 1) rest
    in
    go 0 all

  let count = List.length all
end

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

module Plan = struct
  type hang = { hang_system : int; hang_core : int; hang_after : int }

  type t = {
    seed : int;
    rates : (Class.t * float) list;
    max_delay_ps : int;
    hang : hang option;
  }

  let none = { seed = 0; rates = []; max_delay_ps = 0; hang = None }

  let default_recoverable ?(seed = 1) () =
    {
      seed;
      rates =
        [
          (Class.Dram_flip, 0.02);
          (Class.Axi_read_error, 0.02);
          (Class.Axi_write_error, 0.02);
          (Class.Noc_cmd_drop, 0.03);
          (Class.Noc_resp_drop, 0.03);
          (Class.Noc_delay, 0.05);
          (Class.Dma_fail, 0.10);
        ];
      max_delay_ps = 100_000;
      hang = None;
    }

  let with_hang ?(after = 1) ~system ~core t =
    { t with hang = Some { hang_system = system; hang_core = core;
                           hang_after = after } }

  let scale k t =
    {
      t with
      rates = List.map (fun (c, r) -> (c, Float.min 1.0 (r *. k))) t.rates;
    }
end

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

module Policy = struct
  type t = {
    axi_max_retries : int;
    axi_backoff_ps : int;
    cmd_timeout_ps : int;
    cmd_max_retries : int;
    partial_timeout_ps : int;
    dma_max_retries : int;
    dma_backoff_ps : int;
  }

  let default =
    {
      axi_max_retries = 4;
      axi_backoff_ps = 50_000;
      cmd_timeout_ps = 300_000_000;
      cmd_max_retries = 3;
      partial_timeout_ps = 75_000_000;
      dma_max_retries = 4;
      dma_backoff_ps = 100_000;
    }
end

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

module Log = struct
  type kind = Injected | Corrected | Recovered | Unrecovered | Quarantined

  type entry = { time : int; cls : Class.t; kind : kind; site : string }

  let kind_name = function
    | Injected -> "INJECT"
    | Corrected -> "CORRECT"
    | Recovered -> "RECOVER"
    | Unrecovered -> "LOST"
    | Quarantined -> "QUARANTINE"

  let render_entry e =
    Printf.sprintf "%12d ps  %-10s %-16s %s" e.time (kind_name e.kind)
      (Class.name e.cls) e.site

  let render entries =
    String.concat "\n" (List.map render_entry entries)
end

(* ------------------------------------------------------------------ *)
(* Injector                                                            *)
(* ------------------------------------------------------------------ *)

module Injector = struct
  type t = {
    mutable plan : Plan.t; (* mutable so a hang can be armed mid-run *)
    scope : int option; (* the device/shard this child was forked for *)
    ecc : Ecc.t;
    streams : Rng.t array; (* one per class, decision stream *)
    aux : Rng.t; (* victim selection, delays, error-code choice *)
    rates : float array;
    n_injected : int array;
    n_recovered : int array;
    n_unrecovered : int array;
    mutable n_quarantines : int;
    mutable log_rev : Log.entry list;
    mutable n_logged : int; (* = List.length log_rev; ids are indices *)
    (* lost-message faults pending resolution, by routing key *)
    lost : (int, (Class.t * string) list) Hashtbl.t;
    mutable hang_seen : int; (* commands dispatched to the hang victim *)
    mutable hang_fired : bool;
  }

  let create (plan : Plan.t) =
    let seed64 i =
      Rng.next (Rng.create ~seed:(Int64.of_int ((plan.Plan.seed * 1021) + i)))
    in
    let rates = Array.make Class.count 0. in
    List.iter
      (fun (c, r) -> rates.(Class.index c) <- r)
      plan.Plan.rates;
    {
      plan;
      scope = None;
      ecc = Ecc.create ();
      streams = Array.init Class.count (fun i -> Rng.create ~seed:(seed64 i));
      aux = Rng.create ~seed:(seed64 1000);
      rates;
      n_injected = Array.make Class.count 0;
      n_recovered = Array.make Class.count 0;
      n_unrecovered = Array.make Class.count 0;
      n_quarantines = 0;
      log_rev = [];
      n_logged = 0;
      lost = Hashtbl.create 8;
      hang_seen = 0;
      hang_fired = false;
    }

  let plan t = t.plan
  let ecc t = t.ecc

  (* A child injector for an enclosed scope (one device of a cluster).
     The child's seed is a pure integer mix of (parent plan seed, scope):
     forking draws nothing from the parent's streams, so a single-device
     campaign is bit-identical whether or not children were forked, and
     sibling scopes get mutually independent streams. *)
  let fork ?plan t ~scope =
    let base = match plan with Some p -> p | None -> t.plan in
    let mixed =
      Rng.next
        (Rng.create
           ~seed:
             (Int64.add
                (Int64.mul (Int64.of_int t.plan.Plan.seed) 0x100000001B3L)
                (Int64.of_int ((scope * 2_654_435_769) + 1))))
    in
    let seed = Int64.to_int (Int64.shift_right_logical mixed 2) in
    { (create { base with Plan.seed }) with scope = Some scope }

  let scope t = t.scope

  let decide t cls =
    let i = Class.index cls in
    let r = t.rates.(i) in
    r > 0. && Rng.float t.streams.(i) < r

  let draw_delay_ps t =
    let bound = max 1 t.plan.Plan.max_delay_ps in
    1 + Rng.int t.aux ~bound

  let draw_int t ~bound = Rng.int t.aux ~bound

  (* Arm (or re-arm) a core hang on a live injector. The decision and
     aux streams are untouched, so a campaign that never reaches the
     victim is bit-identical to one run without the call; the hang
     counters restart so the next [hang_after]-th dispatch fires. *)
  let set_hang ?(after = 1) t ~system ~core =
    t.plan <-
      { t.plan with
        Plan.hang =
          Some { Plan.hang_system = system; hang_core = core;
                 hang_after = after } };
    t.hang_seen <- 0;
    t.hang_fired <- false

  let should_hang t ~system ~core =
    match t.plan.Plan.hang with
    | Some h
      when (not t.hang_fired)
           && h.Plan.hang_system = system && h.Plan.hang_core = core ->
        t.hang_seen <- t.hang_seen + 1;
        if t.hang_seen >= h.Plan.hang_after then begin
          t.hang_fired <- true;
          true
        end
        else false
    | _ -> false

  let log t ~now ~cls ~kind ~site =
    let i = Class.index cls in
    (match kind with
    | Log.Injected -> t.n_injected.(i) <- t.n_injected.(i) + 1
    | Log.Corrected | Log.Recovered ->
        t.n_recovered.(i) <- t.n_recovered.(i) + 1
    | Log.Unrecovered -> t.n_unrecovered.(i) <- t.n_unrecovered.(i) + 1
    | Log.Quarantined -> t.n_quarantines <- t.n_quarantines + 1);
    t.log_rev <- { Log.time = now; cls; kind; site } :: t.log_rev;
    t.n_logged <- t.n_logged + 1

  (* Ledger id of the most recent entry: its index in [entries] order.
     Trace spans record this to cross-reference the fault that explains a
     retry or quarantine. -1 before anything is logged. *)
  let last_id t = t.n_logged - 1

  let note_lost t ~now ~cls ~key ~site =
    log t ~now ~cls ~kind:Log.Injected ~site;
    let cur = Option.value ~default:[] (Hashtbl.find_opt t.lost key) in
    Hashtbl.replace t.lost key ((cls, site) :: cur)

  let resolve_lost t ~now ~key ~recovered =
    match Hashtbl.find_opt t.lost key with
    | None -> ()
    | Some pending ->
        Hashtbl.remove t.lost key;
        List.iter
          (fun (cls, site) ->
            log t ~now ~cls
              ~kind:(if recovered then Log.Recovered else Log.Unrecovered)
              ~site)
          (List.rev pending)

  let injected t cls = t.n_injected.(Class.index cls)
  let recovered t cls = t.n_recovered.(Class.index cls)
  let unrecovered t cls = t.n_unrecovered.(Class.index cls)
  let total a = Array.fold_left ( + ) 0 a
  let total_injected t = total t.n_injected
  let total_recovered t = total t.n_recovered
  let total_unrecovered t = total t.n_unrecovered

  let pending_lost t =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) t.lost 0

  let quarantines t = t.n_quarantines
  let entries t = List.rev t.log_rev

  let counters_line t =
    let per_class =
      List.filter_map
        (fun c ->
          let i = Class.index c in
          if
            t.n_injected.(i) = 0 && t.n_recovered.(i) = 0
            && t.n_unrecovered.(i) = 0
          then None
          else
            Some
              (Printf.sprintf "%s:%d/%d/%d" (Class.name c) t.n_injected.(i)
                 t.n_recovered.(i) t.n_unrecovered.(i)))
        Class.all
    in
    Printf.sprintf "injected=%d recovered=%d unrecovered=%d quarantines=%d %s"
      (total_injected t) (total_recovered t) (total_unrecovered t)
      t.n_quarantines
      (String.concat " " per_class)

  let report t =
    let buf = Buffer.create 512 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr "fault campaign (seed %d):\n" t.plan.Plan.seed;
    pr "  %-18s %9s %10s %12s\n" "class" "injected" "recovered" "unrecovered";
    List.iter
      (fun c ->
        let i = Class.index c in
        if t.n_injected.(i) > 0 || t.n_unrecovered.(i) > 0 then
          pr "  %-18s %9d %10d %12d\n" (Class.name c) t.n_injected.(i)
            t.n_recovered.(i) t.n_unrecovered.(i))
      Class.all;
    pr "  total: %d injected, %d recovered, %d unrecovered, %d quarantine(s)\n"
      (total_injected t) (total_recovered t) (total_unrecovered t)
      t.n_quarantines;
    if t.log_rev <> [] then begin
      pr "fault log:\n";
      List.iter (fun e -> pr "  %s\n" (Log.render_entry e)) (entries t)
    end;
    Buffer.contents buf
end
