(** Deterministic, seed-driven fault injection.

    The reliability layer the paper's evaluation assumes away: the
    platforms Beethoven targets (AWS F1 shells, Alveo boards, ChipKIT
    ASICs) live with DRAM bit errors, AXI error responses, and hung
    accelerator cores. This library generates reproducible fault
    campaigns — every injection decision is drawn from a per-class
    splitmix64 stream seeded from the campaign seed, so the same seed
    over the same workload yields bit-identical fault logs and counters
    — and gives the recovery machinery (ECC scrub, bounded retry,
    watchdogs, quarantine) a single place to account for what it
    injected, corrected, recovered, and lost. *)

(** {1 Deterministic PRNG} *)

module Rng : sig
  type t

  val create : seed:int64 -> t
  (** A splitmix64 stream. Equal seeds yield equal streams. *)

  val next : t -> int64
  val float : t -> float  (** Uniform in [0, 1). *)

  val int : t -> bound:int -> int
  (** Uniform in [0, bound). [bound] must be positive. *)
end

(** {1 SECDED ECC}

    A real Hamming(72,64) code over 64-bit words: 7 Hamming check bits
    plus an overall parity bit. Any single-bit error in the 72-bit
    codeword is corrected; any double-bit error is detected as
    uncorrectable. The model half ({!Ecc.t}) tracks which device-memory
    words hold a codeword (established lazily, before the first
    corruption) so the DRAM read path can scrub on read. *)

module Ecc : sig
  val encode : int64 -> int
  (** The 8 check bits protecting a 64-bit data word. *)

  type verdict =
    | Ok  (** codeword clean *)
    | Corrected of int64  (** single-bit error; the repaired word *)
    | Uncorrectable  (** double-bit (or worse) error detected *)

  val decode : data:int64 -> check:int -> verdict
  (** Syndrome-decode a possibly corrupted codeword. Single-bit flips
      (in data or check bits) are corrected; double flips detected. *)

  type t

  val create : unit -> t

  val inject_flip : t -> mem:Bytes.t -> word_addr:int -> bit:int -> unit
  (** Corrupt bit [bit] (0..63) of the aligned 8-byte word at
      [word_addr] in [mem], first latching the word's check bits if this
      is the first corruption since the word was last rewritten. *)

  val note_write : t -> addr:int -> bytes:int -> unit
  (** A write burst landed over [addr, addr+bytes): any latched
      codewords there are stale (the cells hold fresh data). *)

  val scrub : t -> mem:Bytes.t -> addr:int -> bytes:int -> int * int
  (** Scrub-on-read over a burst window: decode every latched codeword
      in range, repairing single-bit errors in place. Returns
      [(corrected, uncorrectable)] counts for the window. *)

  val corrected : t -> int
  val uncorrectable : t -> int
  (** Running totals. *)
end

(** {1 Fault classes} *)

module Class : sig
  type t =
    | Dram_flip  (** single-bit DRAM error in a word about to be read *)
    | Dram_double_flip  (** double-bit error: detectable, uncorrectable *)
    | Axi_read_error  (** transient SLVERR/DECERR on a read burst *)
    | Axi_write_error  (** transient SLVERR/DECERR on a write burst *)
    | Noc_cmd_drop  (** a command beat lost in the command fabric *)
    | Noc_resp_drop  (** a response message lost on the way back *)
    | Noc_delay  (** a message delayed (ordering preserved per route) *)
    | Core_hang  (** a core stops responding permanently *)
    | Dma_fail  (** transient host<->device DMA failure *)
    | Device_offline  (** a whole device drops off the host link *)
    | Heartbeat_loss  (** a health probe goes unanswered (transient) *)
    | Device_brownout
        (** partial brownout: the device still serves traffic but misses
            health probes for a stretch — the false-positive pressure a
            quarantine state machine must survive *)

  val all : t list
  (* Order note: new classes are appended, never inserted — a class's
     index seeds its decision stream, so the prefix order is frozen for
     digest stability. *)
  val name : t -> string
  val of_name : string -> t option
end

(** {1 Campaign plans} *)

module Plan : sig
  type hang = {
    hang_system : int;  (** system index *)
    hang_core : int;
    hang_after : int;  (** hang on the Nth command dispatched to it (1-based) *)
  }

  type t = {
    seed : int;
    rates : (Class.t * float) list;
    (** Injection probability per opportunity (burst, transaction,
        message, copy). Classes absent from the list never fire. *)
    max_delay_ps : int;  (** upper bound for [Noc_delay] injections *)
    hang : hang option;
  }

  val none : t
  (** No faults (all rates zero) — an injector that only counts. *)

  val default_recoverable : ?seed:int -> unit -> t
  (** The default campaign mix: single-bit DRAM flips, transient AXI
      errors, dropped/delayed NoC messages, dropped responses, transient
      DMA failures — every class the stack recovers without data loss.
      No double-bit flips, no hung cores. *)

  val with_hang : ?after:int -> system:int -> core:int -> t -> t
  val scale : float -> t -> t
  (** Multiply every rate (clamped to 1.0) — the degradation-curve knob. *)
end

(** {1 Recovery policy} *)

module Policy : sig
  type t = {
    axi_max_retries : int;  (** bounded retry per AXI burst *)
    axi_backoff_ps : int;  (** base backoff; attempt k waits base*2^k *)
    cmd_timeout_ps : int;  (** per-command response deadline *)
    cmd_max_retries : int;  (** watchdog retries before quarantine *)
    partial_timeout_ps : int;
        (** command-reassembly watchdog: clear a stale partial
            multi-beat command after this long *)
    dma_max_retries : int;
    dma_backoff_ps : int;
  }

  val default : t
end

(** {1 The fault log} *)

module Log : sig
  type kind =
    | Injected
    | Corrected  (** repaired in place (ECC scrub) *)
    | Recovered  (** recovered by retry / watchdog / rerouting *)
    | Unrecovered  (** gave up; data loss or failed command *)
    | Quarantined  (** a core was marked failed and taken out of rotation *)

  type entry = { time : int; cls : Class.t; kind : kind; site : string }

  val kind_name : kind -> string
  val render_entry : entry -> string
  val render : entry list -> string
end

(** {1 The injector} *)

module Injector : sig
  type t

  val create : Plan.t -> t
  val plan : t -> Plan.t
  val ecc : t -> Ecc.t

  val fork : ?plan:Plan.t -> t -> scope:int -> t
  (** A seeded child injector for an enclosed fault scope (one simulated
      device of a cluster, a shard of a campaign). The child's streams are
      seeded from [(parent plan seed, scope)] only — forking never draws
      from the parent's streams, so single-device campaigns are
      bit-identical whether or not children were forked, and sibling
      scopes are mutually independent. [plan] overrides the child's plan
      (rates, hang spec); the seed is always the derived one. The child
      keeps its own ledger and ECC model. *)

  val scope : t -> int option
  (** The scope this injector was forked for, [None] for a root. *)

  val decide : t -> Class.t -> bool
  (** Draw from the class's stream against its rate. Deterministic in
      the sequence of calls per class. *)

  val draw_delay_ps : t -> int
  (** Extra latency for a [Noc_delay] injection, in
      [1, plan.max_delay_ps]. *)

  val draw_int : t -> bound:int -> int
  (** Auxiliary deterministic draw (victim bit/word selection). *)

  val set_hang : ?after:int -> t -> system:int -> core:int -> unit
  (** Arm (or re-arm) a core hang on a live injector — the scenario
      executor's "inject a hang mid-run" action. Replaces the plan's
      hang spec and restarts the dispatch counter, so the [after]-th
      (default 1) subsequent dispatch to the victim fires. The seeded
      decision streams are untouched: a campaign that never dispatches
      to the victim is bit-identical to one run without this call. *)

  val should_hang : t -> system:int -> core:int -> bool
  (** True exactly once per arming: when the plan's hang spec matches
      this core and its dispatch count reaches [hang_after]. *)

  (** {2 Accounting} *)

  val log : t -> now:int -> cls:Class.t -> kind:Log.kind -> site:string -> unit

  val last_id : t -> int
  (** Ledger id of the most recently logged entry — its index in
      {!entries} order, [-1] before anything is logged. Trace spans
      record this to cross-reference the fault behind a retry, error
      response, or quarantine. *)

  val note_lost : t -> now:int -> cls:Class.t -> key:int -> site:string -> unit
  (** Record an injected lost-message fault (dropped command/response,
      hung core) pending against routing key [key] — resolved when the
      runtime's watchdog recovers or abandons commands on that route. *)

  val resolve_lost : t -> now:int -> key:int -> recovered:bool -> unit
  (** Mark every pending lost-message fault on [key] recovered (the
      retry/reroute produced a response) or unrecovered. *)

  val injected : t -> Class.t -> int
  val recovered : t -> Class.t -> int
  (** [recovered] includes ECC-corrected faults. *)

  val unrecovered : t -> Class.t -> int
  val total_injected : t -> int
  val total_recovered : t -> int
  val total_unrecovered : t -> int
  val pending_lost : t -> int
  (** Lost-message faults not yet resolved either way. *)

  val quarantines : t -> int
  val entries : t -> Log.entry list  (** chronological *)

  val report : t -> string
  (** Per-class injected/recovered/unrecovered table plus the log. *)

  val counters_line : t -> string
  (** One-line machine-comparable digest (for determinism tests). *)
end
