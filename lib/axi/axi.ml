(* The structured tracer from lib/trace; aliased before the local ASCII
   [Trace] module below shadows the library name. *)
module Tracer = Trace

module Resp = struct
  type t = Okay | Slverr | Decerr

  let name = function
    | Okay -> "OKAY"
    | Slverr -> "SLVERR"
    | Decerr -> "DECERR"

  let is_error = function Okay -> false | Slverr | Decerr -> true
end

module Params = struct
  type t = { data_bytes : int; max_burst_beats : int; n_ids : int }

  let aws_f1 = { data_bytes = 64; max_burst_beats = 64; n_ids = 16 }
  let kria = { data_bytes = 16; max_burst_beats = 64; n_ids = 6 }
end

module Burst = struct
  type segment = { addr : int; beats : int }

  let boundary = 4096

  let split ~(params : Params.t) ~addr ~bytes =
    if bytes <= 0 then invalid_arg "Burst.split: bytes must be positive";
    if bytes mod params.data_bytes <> 0 then
      invalid_arg "Burst.split: bytes not a multiple of the beat size";
    if addr mod params.data_bytes <> 0 then
      invalid_arg "Burst.split: address not beat-aligned";
    let rec go addr remaining acc =
      if remaining = 0 then List.rev acc
      else begin
        let to_boundary = boundary - (addr mod boundary) in
        let max_bytes =
          min
            (min remaining to_boundary)
            (params.max_burst_beats * params.data_bytes)
        in
        let beats = max_bytes / params.data_bytes in
        go (addr + max_bytes) (remaining - max_bytes)
          ({ addr; beats } :: acc)
      end
    in
    go addr bytes []
end

module Trace = struct
  type channel = AR | R of int | R_last | AW | W of int | B
  type event = { time : int; id : int; channel : channel; addr : int }
  type t = { mutable events : event list }

  let create () = { events = [] }
  let record t ev = t.events <- ev :: t.events

  let events t =
    List.stable_sort (fun a b -> Int.compare a.time b.time) (List.rev t.events)

  (* One lane per (direction, id); '>' = address issue, '#' = data beat,
     '|' = completion. *)
  let render t ~time_scale =
    let evs = events t in
    if evs = [] then "(empty trace)"
    else begin
      let t0 = (List.hd evs).time in
      let t1 = List.fold_left (fun acc e -> max acc e.time) t0 evs in
      let columns = ((t1 - t0) / time_scale) + 1 in
      let lanes = Hashtbl.create 8 in
      let lane_key e =
        match e.channel with
        | AR | R _ | R_last -> Printf.sprintf "RD id%-2d" e.id
        | AW | W _ | B -> Printf.sprintf "WR id%-2d" e.id
      in
      List.iter
        (fun e ->
          let key = lane_key e in
          let lane =
            match Hashtbl.find_opt lanes key with
            | Some l -> l
            | None ->
                let l = Bytes.make columns ' ' in
                Hashtbl.add lanes key l;
                l
          in
          let col = (e.time - t0) / time_scale in
          let glyph =
            match e.channel with
            | AR | AW -> '>'
            | R _ | W _ -> '#'
            | R_last | B -> '|'
          in
          (* completion marks win over data beats, data over issues *)
          let cur = Bytes.get lane col in
          let rank c = match c with '|' -> 3 | '#' -> 2 | '>' -> 1 | _ -> 0 in
          if rank glyph >= rank cur then Bytes.set lane col glyph)
        evs;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) lanes []
        |> List.sort String.compare
      in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "t0=%d ps, 1 column = %d ps  ('>' issue, '#' data, '|' done)\n"
           t0 time_scale);
      List.iter
        (fun k ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" k (Bytes.to_string (Hashtbl.find lanes k))))
        keys;
      Buffer.contents buf
    end
end

type txn = {
  txn_id : int;
  txn_addr : int;
  txn_beats : int;
  txn_dir : Dram.dir;
  txn_on_beat : beat:int -> unit;
  txn_on_done : Resp.t -> unit;
  txn_issued_at : int;
  txn_span : int option; (* structured-trace span for this burst *)
  txn_track : string;
}

type id_queue = { q : txn Queue.t; mutable in_flight : bool }

type t = {
  engine : Desim.Engine.t;
  dram : Dram.t;
  prm : Params.t;
  trace : Trace.t option;
  tracer : Tracer.t option;
  port_name : string;
  mutable outstanding : int; (* accepted but not yet responded *)
  fault : Fault.Injector.t option;
  (* Per-(direction, id) queues. At most one transaction per queue is in
     flight at the DRAM; the rest wait — same-ID ordering. *)
  read_queues : id_queue array;
  write_queues : id_queue array;
  read_latency : Desim.Stats.series;
  write_latency : Desim.Stats.series;
  mutable reads_issued : int;
  mutable writes_issued : int;
  mutable error_responses : int;
}

let create ?trace ?tracer ?(name = "axi") ?fault engine dram prm =
  {
    engine;
    dram;
    prm;
    trace;
    tracer;
    port_name = name;
    outstanding = 0;
    fault;
    read_queues =
      Array.init prm.Params.n_ids (fun _ ->
          { q = Queue.create (); in_flight = false });
    write_queues =
      Array.init prm.Params.n_ids (fun _ ->
          { q = Queue.create (); in_flight = false });
    read_latency = Desim.Stats.series ();
    write_latency = Desim.Stats.series ();
    reads_issued = 0;
    writes_issued = 0;
    error_responses = 0;
  }

let params t = t.prm

let record t ev = match t.trace with Some tr -> Trace.record tr ev | None -> ()

let sample_outstanding t =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Tracer.sample tr
        ~now:(Desim.Engine.now t.engine)
        (t.port_name ^ ".outstanding")
        t.outstanding

(* Close a burst's span and update registry counters at response time. *)
let finish_txn t txn resp =
  t.outstanding <- t.outstanding - 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
      let now = Desim.Engine.now t.engine in
      (match txn.txn_span with
      | None -> ()
      | Some span ->
          Tracer.add_arg tr span "resp" (Tracer.Str (Resp.name resp));
          Tracer.end_span tr ~now span);
      let bytes = txn.txn_beats * t.prm.Params.data_bytes in
      let lat = float_of_int (now - txn.txn_issued_at) in
      (match txn.txn_dir with
      | Dram.Read ->
          if resp = Resp.Okay then
            Tracer.add tr (t.port_name ^ ".read_bytes") bytes;
          Tracer.observe tr (t.port_name ^ ".rd_latency_ps") lat
      | Dram.Write ->
          if resp = Resp.Okay then
            Tracer.add tr (t.port_name ^ ".write_bytes") bytes;
          Tracer.observe tr (t.port_name ^ ".wr_latency_ps") lat);
      if Resp.is_error resp then Tracer.add tr (t.port_name ^ ".errors") 1;
      sample_outstanding t

let check_burst t ~id ~addr ~beats =
  if id < 0 || id >= t.prm.Params.n_ids then invalid_arg "Axi: bad id";
  if beats < 1 || beats > t.prm.Params.max_burst_beats then
    invalid_arg "Axi: illegal burst length";
  if addr mod t.prm.Params.data_bytes <> 0 then
    invalid_arg "Axi: address not beat-aligned";
  let last = addr + (beats * t.prm.Params.data_bytes) - 1 in
  if addr / Burst.boundary <> last / Burst.boundary then
    invalid_arg "Axi: burst crosses a 4KB boundary"

(* Launch the head transaction of a queue at the DRAM (if idle). *)
let rec launch t queue =
  match Queue.peek_opt queue.q with
  | None -> ()
  | Some _ when queue.in_flight -> ()
  | Some txn ->
      queue.in_flight <- true;
      let injected_resp =
        match t.fault with
        | None -> None
        | Some inj ->
            let cls =
              match txn.txn_dir with
              | Dram.Read -> Fault.Class.Axi_read_error
              | Dram.Write -> Fault.Class.Axi_write_error
            in
            if Fault.Injector.decide inj cls then begin
              let resp =
                if Fault.Injector.draw_int inj ~bound:4 = 0 then Resp.Decerr
                else Resp.Slverr
              in
              Fault.Injector.log inj
                ~now:(Desim.Engine.now t.engine)
                ~cls ~kind:Fault.Log.Injected
                ~site:
                  (Printf.sprintf "axi %s id=%d addr=0x%x beats=%d -> %s"
                     (match txn.txn_dir with
                     | Dram.Read -> "rd"
                     | Dram.Write -> "wr")
                     txn.txn_id txn.txn_addr txn.txn_beats (Resp.name resp));
              Some (resp, Fault.Injector.last_id inj)
            end
            else None
      in
      (match injected_resp with
      | Some (resp, fault_id) ->
          (* the slave errors the whole burst: no data beats, an error
             response after roughly a CAS latency *)
          let cfg = Dram.config t.dram in
          let err_latency = cfg.Dram.Config.cl * cfg.Dram.Config.tck_ps in
          t.error_responses <- t.error_responses + 1;
          Desim.Engine.schedule t.engine ~delay:err_latency (fun () ->
              queue.in_flight <- false;
              ignore (Queue.pop queue.q);
              (match (t.tracer, txn.txn_span) with
              | Some tr, Some span ->
                  (* cross-reference the fault-ledger entry that errored us *)
                  Tracer.add_arg tr span "fault_id" (Tracer.Int fault_id)
              | _ -> ());
              finish_txn t txn resp;
              txn.txn_on_done resp;
              launch t queue)
      | None ->
      let data_bytes = t.prm.Params.data_bytes in
      let chunk_bytes = Dram.Config.burst_bytes (Dram.config t.dram) in
      (* wide AXI beats span several DRAM chunks; narrow beats share one *)
      let chunks_per_beat = max 1 (data_bytes / chunk_bytes) in
      let beats_per_chunk = max 1 (chunk_bytes / data_bytes) in
      let total_chunks =
        max 1 (((txn.txn_beats * data_bytes) - 1) / chunk_bytes + 1)
      in
      let fire_beat beat =
        let beat = min beat (txn.txn_beats - 1) in
        let now = Desim.Engine.now t.engine in
        (match txn.txn_dir with
        | Dram.Read ->
            record t
              {
                Trace.time = now;
                id = txn.txn_id;
                channel =
                  (if beat = txn.txn_beats - 1 then Trace.R_last
                   else Trace.R beat);
                addr = txn.txn_addr;
              }
        | Dram.Write ->
            record t
              { Trace.time = now; id = txn.txn_id; channel = Trace.W beat;
                addr = txn.txn_addr });
        (match t.tracer with
        | None -> ()
        | Some tr ->
            Tracer.instant tr ~now ?parent:txn.txn_span ~track:txn.txn_track
              ~cat:"axi.beat"
              ~name:(Printf.sprintf "beat %d" beat)
              ());
        txn.txn_on_beat ~beat
      in
      Dram.submit t.dram ~addr:txn.txn_addr
        ~bytes:(txn.txn_beats * data_bytes)
        ~dir:txn.txn_dir
        ~on_chunk:(fun ~chunk ->
          if beats_per_chunk > 1 then begin
            (* one DRAM chunk completes several narrow beats *)
            let first = chunk * beats_per_chunk in
            let last =
              min (((chunk + 1) * beats_per_chunk) - 1) (txn.txn_beats - 1)
            in
            for beat = first to last do
              fire_beat beat
            done
          end
          else if
            (chunk + 1) mod chunks_per_beat = 0 || chunk = total_chunks - 1
          then fire_beat (chunk / chunks_per_beat))
        ~on_complete:(fun () ->
          let now = Desim.Engine.now t.engine in
          let lat = float_of_int (now - txn.txn_issued_at) in
          (match txn.txn_dir with
          | Dram.Read -> Desim.Stats.observe t.read_latency lat
          | Dram.Write ->
              Desim.Stats.observe t.write_latency lat;
              record t
                { Trace.time = now; id = txn.txn_id; channel = Trace.B;
                  addr = txn.txn_addr })
          ;
          queue.in_flight <- false;
          ignore (Queue.pop queue.q);
          finish_txn t txn Resp.Okay;
          txn.txn_on_done Resp.Okay;
          launch t queue)
        ?span:txn.txn_span ())

let enqueue t queue txn =
  Queue.push txn queue.q;
  launch t queue

(* Open the burst span at issue time (the AR/AW handshake). *)
let open_span t ~dir ~parent ~id ~addr ~beats ~now =
  let dir_s = match dir with Dram.Read -> "rd" | Dram.Write -> "wr" in
  let track = Printf.sprintf "%s %s id%02d" t.port_name dir_s id in
  let span =
    match t.tracer with
    | None -> None
    | Some tr ->
        Some
          (Tracer.begin_span tr ~now ?parent ~track ~cat:"axi"
             ~name:(Printf.sprintf "%s 0x%x x%d" dir_s addr beats)
             ())
  in
  t.outstanding <- t.outstanding + 1;
  sample_outstanding t;
  (span, track)

let read ?span:parent t ~id ~addr ~beats ~on_beat ~on_done =
  check_burst t ~id ~addr ~beats;
  let now = Desim.Engine.now t.engine in
  t.reads_issued <- t.reads_issued + 1;
  record t { Trace.time = now; id; channel = Trace.AR; addr };
  let span, track = open_span t ~dir:Dram.Read ~parent ~id ~addr ~beats ~now in
  enqueue t t.read_queues.(id)
    {
      txn_id = id;
      txn_addr = addr;
      txn_beats = beats;
      txn_dir = Dram.Read;
      txn_on_beat = on_beat;
      txn_on_done = on_done;
      txn_issued_at = now;
      txn_span = span;
      txn_track = track;
    }

let write ?span:parent t ~id ~addr ~beats ~on_done =
  check_burst t ~id ~addr ~beats;
  let now = Desim.Engine.now t.engine in
  t.writes_issued <- t.writes_issued + 1;
  record t { Trace.time = now; id; channel = Trace.AW; addr };
  let span, track =
    open_span t ~dir:Dram.Write ~parent ~id ~addr ~beats ~now
  in
  enqueue t t.write_queues.(id)
    {
      txn_id = id;
      txn_addr = addr;
      txn_beats = beats;
      txn_dir = Dram.Write;
      txn_on_beat = (fun ~beat:_ -> ());
      txn_on_done = on_done;
      txn_issued_at = now;
      txn_span = span;
      txn_track = track;
    }

let error_responses t = t.error_responses
let read_latency t = t.read_latency
let write_latency t = t.write_latency
let reads_issued t = t.reads_issued
let writes_issued t = t.writes_issued
