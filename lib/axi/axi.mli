(** AXI4 memory-port model.

    Encodes the protocol behaviour the paper's §III-A microbenchmark turns
    on: bursts are bounded in length and may not cross 4 KB; transactions
    that share an AXI ID are serviced strictly in order (no overlap — the
    conservative behaviour of the Xilinx DDR controller front-end the paper
    measured), while transactions on distinct IDs proceed concurrently and
    may complete out of order. A {!Trace} records the channel events used
    to regenerate Fig. 5. *)

module Tracer = Trace
(** Alias for the structured tracer from [lib/trace], visible despite the
    local {!Trace} (ASCII channel-event log) below shadowing the name. *)

module Resp : sig
  type t =
    | Okay
    | Slverr  (** slave error — the transaction reached a slave that failed *)
    | Decerr  (** decode error — no slave claimed the address *)

  val name : t -> string
  val is_error : t -> bool
end

module Params : sig
  type t = {
    data_bytes : int;  (** bytes per data beat (64 on the F1 shell) *)
    max_burst_beats : int;  (** AXI4 limit: 256; DDR IP sweet spot: 64 *)
    n_ids : int;  (** number of distinct AXI IDs available *)
  }

  val aws_f1 : t
  (** 512-bit data bus, 64-beat max burst, 16 IDs. *)

  val kria : t
  (** 128-bit data bus on the Zynq MPSoC HP ports. *)
end

module Burst : sig
  type segment = { addr : int; beats : int }

  val boundary : int
  (** AXI bursts may not cross this boundary (4096). *)

  val split : params:Params.t -> addr:int -> bytes:int -> segment list
  (** Decompose a transfer into legal AXI bursts: beat-aligned lengths of at
      most [max_burst_beats], never crossing a 4 KB boundary. [bytes] must
      be a multiple of [data_bytes] and [addr] beat-aligned. *)
end

module Trace : sig
  type channel =
    | AR  (** read address issue *)
    | R of int  (** read data beat (index within burst) *)
    | R_last
    | AW  (** write address issue *)
    | W of int  (** write data beat *)
    | B  (** write response *)

  type event = { time : int; id : int; channel : channel; addr : int }

  type t

  val create : unit -> t
  val events : t -> event list (** in time order *)

  val render : t -> time_scale:int -> string
  (** ASCII timeline, one row per (direction, id), one column per
      [time_scale] picoseconds — the Fig. 5 rendering. *)
end

type t

val create :
  ?trace:Trace.t ->
  ?tracer:Tracer.t ->
  ?name:string ->
  ?fault:Fault.Injector.t ->
  Desim.Engine.t ->
  Dram.t ->
  Params.t ->
  t
(** With [fault], each burst reaching the head of its ID queue may be
    turned into a transient SLVERR/DECERR: no data beats fire and the
    error response arrives after roughly a CAS latency. With [tracer],
    every burst opens a span (track ["<name> rd id<NN>"]) carrying the
    response code, byte counters, per-direction latency series, and an
    outstanding-transaction occupancy sample stream; [name] defaults to
    ["axi"] and prefixes all registry entries for this port. *)

val params : t -> Params.t

val read :
  ?span:int ->
  t ->
  id:int ->
  addr:int ->
  beats:int ->
  on_beat:(beat:int -> unit) ->
  on_done:(Resp.t -> unit) ->
  unit
(** Issue one read burst. [on_beat] fires as each data beat is delivered in
    order; [on_done] after the last beat with the response code (on an
    error response no beats fire at all). Raises [Invalid_argument] for
    illegal bursts (too long, 4 KB crossing, bad id). [span] is the parent
    span (typically a reader stream) for the burst's trace span. *)

val write :
  ?span:int ->
  t ->
  id:int ->
  addr:int ->
  beats:int ->
  on_done:(Resp.t -> unit) ->
  unit
(** Issue one write burst; the master is assumed to supply write data at
    full rate. [on_done] fires with the B response code. *)

(** {1 Statistics} *)

val read_latency : t -> Desim.Stats.series
(** Per-transaction latency (issue to last beat), picoseconds. *)

val write_latency : t -> Desim.Stats.series
val reads_issued : t -> int
val writes_issued : t -> int

val error_responses : t -> int
(** Number of injected SLVERR/DECERR responses returned. *)
