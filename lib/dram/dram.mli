(** Cycle-approximate DRAM timing model — the DRAMsim3 substitute.

    The model is timing-only: data contents live in the host-memory model of
    the {!Runtime} library. Requests are decomposed into bus-width bursts
    (64 B for a x64 DDR4 device at BL8); each burst is scheduled against
    per-bank row state (activate/precharge/CAS timings), a shared data bus
    with read/write turnaround penalties, and an FR-FCFS-style preference
    for row hits. Simulation time is in picoseconds. *)

module Config : sig
  type t = {
    name : string;
    tck_ps : int;  (** DRAM clock period *)
    cl : int;  (** CAS latency, cycles *)
    trcd : int;  (** RAS-to-CAS delay, cycles *)
    trp : int;  (** row precharge, cycles *)
    tras : int;  (** row active minimum, cycles *)
    tccd : int;  (** column-to-column, cycles *)
    tburst : int;  (** data transfer per burst, cycles (BL8 on DDR = 4) *)
    tturnaround : int;  (** bus direction switch penalty, cycles *)
    trefi : int;  (** refresh interval, cycles *)
    trfc : int;  (** refresh duration, cycles (0 disables refresh) *)
    bus_bytes : int;  (** data bus width in bytes (8 for x64) *)
    row_bytes : int;  (** row (page) size in bytes *)
    n_banks : int;
    n_channels : int;
  }

  val ddr4_2400 : t
  (** One 64-bit DDR4-2400 channel: 19.2 GB/s peak. *)

  val ddr4_2400_quad : t
  (** Four channels, the AWS F1 / U200 board configuration. *)

  val burst_bytes : t -> int
  (** Bytes moved per device burst = [bus_bytes * 8] (BL8). *)

  val peak_bandwidth_gbs : t -> float
end

type t

type dir = Read | Write

val create : Desim.Engine.t -> Config.t -> t
val config : t -> Config.t

val set_burst_hook : t -> (addr:int -> bytes:int -> dir:dir -> unit) -> unit
(** Install a callback fired at every device burst's data completion
    time, before the requester's [on_chunk]. The SoC uses it to model
    DRAM bit errors and the SECDED scrub-on-read path without coupling
    the timing model to data contents. *)

val set_tracer : t -> Trace.t -> unit
(** Attach a structured tracer: every {!submit} records a ["dram"] span
    (parented on the submitting AXI burst's span when given) annotated
    with the row-hit/miss and bank-conflict deltas it produced, and bumps
    the [dram.row_hits]/[dram.row_misses]/[dram.bank_conflicts] registry
    counters. *)

val submit :
  t ->
  addr:int ->
  bytes:int ->
  dir:dir ->
  ?on_chunk:(chunk:int -> unit) ->
  on_complete:(unit -> unit) ->
  ?span:int ->
  unit ->
  unit
(** Issue a request. [on_chunk] fires as each device burst's data completes
    on the bus (chunk 0, 1, …, in order within the request); [on_complete]
    fires with the last chunk. For reads, a chunk completion is the time its
    data has been returned; for writes, the time it has been accepted.
    [span] is the parent trace span (see {!set_tracer}). *)

(** {1 Statistics} *)

val bytes_read : t -> int
val bytes_written : t -> int
val row_hits : t -> int
val row_misses : t -> int

val bank_conflicts : t -> int
(** Bursts whose column command stalled behind a busy bank. *)

val achieved_bandwidth_gbs : t -> float
(** Total traffic divided by elapsed simulation time. *)
