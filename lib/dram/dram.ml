module Config = struct
  type t = {
    name : string;
    tck_ps : int;
    cl : int;
    trcd : int;
    trp : int;
    tras : int;
    tccd : int;
    tburst : int;
    tturnaround : int;
    trefi : int;
    trfc : int;
    bus_bytes : int;
    row_bytes : int;
    n_banks : int;
    n_channels : int;
  }

  let ddr4_2400 =
    {
      name = "DDR4-2400";
      tck_ps = 833;
      cl = 17;
      trcd = 17;
      trp = 17;
      tras = 39;
      tccd = 6;
      tburst = 4;
      tturnaround = 8;
      trefi = 9363 (* 7.8 us *);
      trfc = 420 (* ~350 ns *);
      bus_bytes = 8;
      row_bytes = 8192;
      n_banks = 16;
      n_channels = 1;
    }

  let ddr4_2400_quad = { ddr4_2400 with name = "4x DDR4-2400"; n_channels = 4 }
  let burst_bytes t = t.bus_bytes * 8

  let peak_bandwidth_gbs t =
    let bytes_per_ps =
      float_of_int (burst_bytes t * t.n_channels)
      /. float_of_int (t.tburst * t.tck_ps)
    in
    bytes_per_ps *. 1000.
end

type dir = Read | Write

type bank = { mutable open_row : int; mutable ready_at : int }
(* open_row = -1 when closed *)

type channel = {
  banks : bank array;
  mutable bus_free_at : int;
  mutable last_dir : dir option;
  mutable next_refresh_at : int;
}

type t = {
  engine : Desim.Engine.t;
  cfg : Config.t;
  channels : channel array;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable row_hits : int;
  mutable row_misses : int;
  mutable bank_conflicts : int; (* command stalled on a busy bank *)
  mutable first_traffic_at : int option;
  mutable tracer : Trace.t option;
  mutable last_traffic_at : int;
  (* fired at each device burst's data completion time, before the
     requester's [on_chunk] — the ECC / fault-injection tap point *)
  mutable burst_hook : (addr:int -> bytes:int -> dir:dir -> unit) option;
}

let create engine cfg =
  let channel () =
    {
      banks = Array.init cfg.Config.n_banks (fun _ -> { open_row = -1; ready_at = 0 });
      bus_free_at = 0;
      last_dir = None;
      next_refresh_at = cfg.Config.trefi * cfg.Config.tck_ps;
    }
  in
  {
    engine;
    cfg;
    channels = Array.init cfg.Config.n_channels (fun _ -> channel ());
    bytes_read = 0;
    bytes_written = 0;
    row_hits = 0;
    row_misses = 0;
    bank_conflicts = 0;
    first_traffic_at = None;
    tracer = None;
    last_traffic_at = 0;
    burst_hook = None;
  }

let config t = t.cfg
let set_burst_hook t f = t.burst_hook <- Some f
let set_tracer t tr = t.tracer <- Some tr

(* Address mapping: burst | channel | bank | row. Interleaving channels and
   banks at burst granularity spreads streams for parallelism, like the
   default DRAMsim3 mapping. *)
let map_addr t addr =
  let cfg = t.cfg in
  let burst = addr / Config.burst_bytes cfg in
  let chan = burst mod cfg.n_channels in
  let burst = burst / cfg.n_channels in
  let bank = burst mod cfg.n_banks in
  let col_bursts_per_row = max 1 (cfg.row_bytes / Config.burst_bytes cfg) in
  let row = burst / cfg.n_banks / col_bursts_per_row in
  (chan, bank, row)

(* Schedule one device burst; returns its data completion time. *)
let schedule_burst t ~addr ~dir =
  let cfg = t.cfg in
  let chan_i, bank_i, row = map_addr t addr in
  let ch = t.channels.(chan_i) in
  let bank = ch.banks.(bank_i) in
  let now = Desim.Engine.now t.engine in
  let ck n = n * cfg.tck_ps in
  (* refreshes that have already elapsed close every row before this
     command is classified as a hit or miss *)
  if cfg.trfc > 0 then
    while ch.next_refresh_at <= now do
      let refresh_end = ch.next_refresh_at + ck cfg.trfc in
      if ch.bus_free_at < refresh_end then ch.bus_free_at <- refresh_end;
      ch.next_refresh_at <- ch.next_refresh_at + ck cfg.trefi;
      Array.iter (fun b -> b.open_row <- -1) ch.banks
    done;
  if bank.ready_at > now then t.bank_conflicts <- t.bank_conflicts + 1;
  let t_cmd = max now bank.ready_at in
  let t_col_ready =
    if bank.open_row = row then begin
      t.row_hits <- t.row_hits + 1;
      t_cmd
    end
    else begin
      t.row_misses <- t.row_misses + 1;
      let precharge = if bank.open_row >= 0 then ck cfg.trp else 0 in
      bank.open_row <- row;
      t_cmd + precharge + ck cfg.trcd
    end
  in
  let turnaround =
    match ch.last_dir with
    | Some d when d <> dir -> ck cfg.tturnaround
    | _ -> 0
  in
  let data_start =
    ref (max (t_col_ready + ck cfg.cl) (ch.bus_free_at + turnaround))
  in
  (* all-bank refresh: every tREFI the channel stalls for tRFC and every
     row closes *)
  if cfg.trfc > 0 then
    while ch.next_refresh_at <= !data_start do
      let refresh_end = ch.next_refresh_at + ck cfg.trfc in
      if !data_start < refresh_end then data_start := refresh_end;
      ch.next_refresh_at <- ch.next_refresh_at + ck cfg.trefi;
      Array.iter (fun b -> b.open_row <- -1) ch.banks
    done;
  let data_start = !data_start in
  let data_end = data_start + ck cfg.tburst in
  ch.bus_free_at <- data_end;
  ch.last_dir <- Some dir;
  bank.ready_at <- t_col_ready + ck cfg.tccd;
  let bytes = Config.burst_bytes cfg in
  (match dir with
  | Read -> t.bytes_read <- t.bytes_read + bytes
  | Write -> t.bytes_written <- t.bytes_written + bytes);
  if t.first_traffic_at = None then t.first_traffic_at <- Some now;
  if data_end > t.last_traffic_at then t.last_traffic_at <- data_end;
  data_end

let submit t ~addr ~bytes ~dir ?on_chunk ~on_complete ?span () =
  if bytes <= 0 then invalid_arg "Dram.submit: bytes must be positive";
  let chunk_size = Config.burst_bytes t.cfg in
  let n_chunks = ((bytes - 1) / chunk_size) + 1 in
  let hits0 = t.row_hits
  and misses0 = t.row_misses
  and conflicts0 = t.bank_conflicts in
  (* Bursts of one request target sequential addresses; schedule them all
     now — the per-channel bus and per-bank state serialize them in time.
     Within a request, completions are forced monotone so [on_chunk] fires
     in order. *)
  let last_end = ref 0 in
  for chunk = 0 to n_chunks - 1 do
    let chunk_addr = addr + (chunk * chunk_size) in
    let data_end = max (schedule_burst t ~addr:chunk_addr ~dir) !last_end in
    last_end := data_end;
    Desim.Engine.schedule_at t.engine ~time:data_end (fun () ->
        (match t.burst_hook with
        | Some f -> f ~addr:chunk_addr ~bytes:chunk_size ~dir
        | None -> ());
        (match on_chunk with Some f -> f ~chunk | None -> ());
        if chunk = n_chunks - 1 then on_complete ())
  done;
  (* All bank/bus timing resolved synchronously above, so the trace span
     for the whole request can be recorded here with its final end time
     and the row-hit/miss/conflict deltas it produced. *)
  match t.tracer with
  | None -> ()
  | Some tr ->
      let now = Desim.Engine.now t.engine in
      let dir_s = match dir with Read -> "rd" | Write -> "wr" in
      let sp =
        Trace.begin_span tr ~now ?parent:span ~track:"dram" ~cat:"dram"
          ~name:(Printf.sprintf "%s 0x%x %dB" dir_s addr bytes)
          ()
      in
      let hits = t.row_hits - hits0
      and misses = t.row_misses - misses0
      and conflicts = t.bank_conflicts - conflicts0 in
      Trace.add_arg tr sp "row_hits" (Trace.Int hits);
      Trace.add_arg tr sp "row_misses" (Trace.Int misses);
      if conflicts > 0 then
        Trace.add_arg tr sp "bank_conflicts" (Trace.Int conflicts);
      Trace.add tr "dram.row_hits" hits;
      Trace.add tr "dram.row_misses" misses;
      Trace.add tr "dram.bank_conflicts" conflicts;
      Trace.end_span tr ~now:!last_end sp

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let row_hits t = t.row_hits
let row_misses t = t.row_misses
let bank_conflicts t = t.bank_conflicts

let achieved_bandwidth_gbs t =
  match t.first_traffic_at with
  | None -> 0.
  | Some start ->
      let elapsed = t.last_traffic_at - start in
      if elapsed <= 0 then 0.
      else
        float_of_int (t.bytes_read + t.bytes_written)
        /. float_of_int elapsed *. 1000.
