type free_error = Double_free | Never_allocated

exception Invalid_free of { addr : int; reason : free_error }

let () =
  Printexc.register_printer (function
    | Invalid_free { addr; reason } ->
        Some
          (Printf.sprintf "Alloc.Invalid_free: 0x%x %s" addr
             (match reason with
             | Double_free -> "was already freed"
             | Never_allocated -> "was never allocated"))
    | _ -> None)

type t = {
  size : int;
  alignment : int;
  (* live allocations: base -> length (aligned) *)
  live : (int, int) Hashtbl.t;
  (* bases freed and not reallocated since — distinguishes a double-free
     from freeing garbage *)
  freed : (int, unit) Hashtbl.t;
  (* free list: sorted (base, length) *)
  mutable free_list : (int * int) list;
}

let create ~size ?(alignment = 4096) () =
  if size <= 0 then invalid_arg "Alloc.create: size";
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    invalid_arg "Alloc.create: alignment must be a power of two";
  {
    size;
    alignment;
    live = Hashtbl.create 64;
    freed = Hashtbl.create 64;
    free_list = [ (0, size) ];
  }

let round_up t n = (n + t.alignment - 1) / t.alignment * t.alignment

let alloc t n =
  if n <= 0 then invalid_arg "Alloc.alloc: size";
  let n = round_up t n in
  let rec go acc = function
    | [] -> None
    | (base, len) :: rest ->
        if len >= n then begin
          let remaining =
            if len = n then rest else (base + n, len - n) :: rest
          in
          t.free_list <- List.rev_append acc remaining;
          Hashtbl.add t.live base n;
          Hashtbl.remove t.freed base;
          Some base
        end
        else go ((base, len) :: acc) rest
  in
  go [] t.free_list

let free t base =
  match Hashtbl.find_opt t.live base with
  | None ->
      let reason =
        if Hashtbl.mem t.freed base then Double_free else Never_allocated
      in
      raise (Invalid_free { addr = base; reason })
  | Some len ->
      Hashtbl.remove t.live base;
      Hashtbl.replace t.freed base ();
      (* insert sorted and coalesce *)
      let rec insert = function
        | [] -> [ (base, len) ]
        | (b, l) :: rest when base < b -> (base, len) :: (b, l) :: rest
        | hd :: rest -> hd :: insert rest
      in
      let rec coalesce = function
        | (b1, l1) :: (b2, l2) :: rest when b1 + l1 = b2 ->
            coalesce ((b1, l1 + l2) :: rest)
        | hd :: rest -> hd :: coalesce rest
        | [] -> []
      in
      t.free_list <- coalesce (insert t.free_list)

let allocated_bytes t = Hashtbl.fold (fun _ len acc -> acc + len) t.live 0
let free_bytes t = List.fold_left (fun acc (_, l) -> acc + l) 0 t.free_list
let n_blocks t = Hashtbl.length t.live

let check_invariants t =
  let blocks =
    Hashtbl.fold (fun b l acc -> (b, l) :: acc) t.live []
    @ t.free_list
    |> List.sort compare
  in
  let rec no_overlap = function
    | (b1, l1) :: ((b2, _) :: _ as rest) ->
        b1 + l1 <= b2 && no_overlap rest
    | _ -> true
  in
  let aligned =
    Hashtbl.fold (fun b _ acc -> acc && b mod t.alignment = 0) t.live true
  in
  let total =
    List.fold_left (fun acc (_, l) -> acc + l) 0 blocks = t.size
  in
  no_overlap blocks && aligned && total
  && allocated_bytes t + free_bytes t = t.size
