(** [fpga_handle_t] — the host-side entry point (Fig. 3c).

    Wraps a simulated {!Beethoven.Soc} with the services of the Beethoven
    software stack: the device-memory allocator, host↔device DMA (or
    shared-address-space mapping on embedded platforms), and the
    command/response path through the FPGA management runtime — a
    userspace server that serializes access to the MMIO bus. Every command
    submission and response collection occupies the server for a fixed
    service time, so many short-latency commands contend on the server
    lock; this is the effect behind the ideal-vs-measured gap in Fig. 6. *)

type t

type remote_ptr = { rp_addr : int; rp_bytes : int }

val create : ?server_op_ps:int -> Beethoven.Soc.t -> t
(** [server_op_ps] — runtime-server service time per MMIO operation
    (default 1.5 µs, a syscall + a handful of MMIO accesses). *)

val soc : t -> Beethoven.Soc.t
val engine : t -> Desim.Engine.t

(** {1 Memory} *)

val malloc : t -> int -> remote_ptr
(** Raises [Failure] when device memory is exhausted. *)

val mfree : t -> remote_ptr -> unit
val host_bytes : t -> remote_ptr -> Bytes.t
(** The host-side staging buffer backing this allocation ([getHostAddr]).
    On embedded platforms this aliases device memory semantics: copies
    are free but still explicit in the API. *)

val copy_to_fpga : t -> remote_ptr -> on_done:(unit -> unit) -> unit
(** DMA host → device. Timing: setup + bytes / link bandwidth on discrete
    platforms; a cache-maintenance-scale constant on embedded ones. *)

val copy_from_fpga : t -> remote_ptr -> on_done:(unit -> unit) -> unit

(** {1 Commands} *)

type response_handle

val send :
  t ->
  system:string ->
  core:int ->
  cmd:Beethoven.Cmd_spec.command ->
  args:(string * int64) list ->
  response_handle
(** Pack the arguments per the command spec and submit all RoCC beats
    through the runtime server. *)

val send_raw : t -> Beethoven.Rocc.t -> response_handle

val try_get : response_handle -> int64 option
val on_ready : response_handle -> (int64 -> unit) -> unit

val await : t -> response_handle -> int64
(** Run the simulation until the response arrives ([response_handle::get]).
    Raises [Failure] if the simulation drains without a response. *)

val await_all : t -> response_handle list -> int64 list

(** {1 Statistics} *)

val commands_sent : t -> int
val responses_received : t -> int
val server_busy_ps : t -> int
(** Total time the runtime server spent servicing operations — the
    contention metric. *)
