(** [fpga_handle_t] — the host-side entry point (Fig. 3c).

    Wraps a simulated {!Beethoven.Soc} with the services of the Beethoven
    software stack: the device-memory allocator, host↔device DMA (or
    shared-address-space mapping on embedded platforms), and the
    command/response path through the FPGA management runtime — a
    userspace server that serializes access to the MMIO bus. Every command
    submission and response collection occupies the server for a fixed
    service time, so many short-latency commands contend on the server
    lock; this is the effect behind the ideal-vs-measured gap in Fig. 6. *)

type t

type remote_ptr = { rp_addr : int; rp_bytes : int; rp_gen : int }
(** [rp_gen] is the allocation generation of the base address; a pointer
    kept across [mfree]/[malloc] of the same base is detected as stale. *)

exception Stale_pointer of { addr : int; bytes : int }
(** Raised when a [remote_ptr] no longer (or not yet again) backs a live
    allocation — freed, or its base reallocated since. *)

val create : ?server_op_ps:int -> ?poison_freed:bool -> Beethoven.Soc.t -> t
(** [server_op_ps] — runtime-server service time per MMIO operation
    (default 1.5 µs, a syscall + a handful of MMIO accesses).
    [poison_freed] — debug aid: on [mfree], fill the freed host staging
    buffer with [0xDE] so use-after-free through a stale [Bytes.t] shows
    up as poisoned data instead of silently aliasing. *)

val soc : t -> Beethoven.Soc.t
val engine : t -> Desim.Engine.t

val tracer : t -> Trace.t option
(** The SoC's structured tracer, if one was given to
    {!Beethoven.Soc.create}. When present, every {!send} mints a fresh
    transaction id and records a root ["command"] span that the server
    ops, NoC hops, core execution, and memory-system spans parent under;
    {!copy_to_fpga}/{!copy_from_fpga} record ["dma"] spans under their
    own transactions. Watchdog timeouts become instants and
    quarantine/DMA-failure ledger ids are attached as span args. *)

(** {1 Memory} *)

val malloc : t -> int -> remote_ptr
(** Raises [Failure] when device memory is exhausted. *)

val mfree : t -> remote_ptr -> unit
(** Release an allocation. Raises {!Stale_pointer} if the base was
    reallocated since this pointer was minted, {!Alloc.Invalid_free}
    (carrying the base address) on a double-free or a pointer that never
    came from {!malloc}. *)

val host_bytes : t -> remote_ptr -> Bytes.t
(** The host-side staging buffer backing this allocation ([getHostAddr]).
    On embedded platforms this aliases device memory semantics: copies
    are free but still explicit in the API. Raises {!Stale_pointer} on a
    freed or reallocated pointer. *)

val copy_to_fpga : t -> remote_ptr -> on_done:(unit -> unit) -> unit
(** DMA host → device. Timing: setup + bytes / link bandwidth on discrete
    platforms; a cache-maintenance-scale constant on embedded ones. *)

val copy_from_fpga : t -> remote_ptr -> on_done:(unit -> unit) -> unit

(** {1 Commands}

    {2 The multi-outstanding invariant}

    Any number of commands may be in flight concurrently, including
    several on one core. This is safe because:

    - the beats of one {!send} occupy {e consecutive} server slots,
      reserved atomically at submission (or ride one batch occupancy in
      submission order), so the beats of two multi-beat commands never
      interleave on their way to a core — reassembly at the core always
      sees whole commands;
    - the command NoC preserves per-route ordering (even under injected
      delays), so per-core arrival order equals submission order;
    - cores execute one command at a time and queue the rest, and
      responses resolve their handles idempotently (a duplicate response
      from a watchdog resend is dropped at the handle).

    The one obligation on the client: the watchdog deadline
    ([policy.cmd_timeout_ps]) covers queueing {e at the core}, so a
    client keeping many commands outstanding on one core must either
    bound per-core occupancy (as [Serve]'s least-outstanding-work
    dispatcher does) or size the deadline above the worst-case queue
    depth times service time — otherwise a merely busy core is resent to,
    and eventually quarantined, as if it had hung. A core is quarantined
    (and its ledger entry logged) exactly once no matter how many
    outstanding commands time out on it. *)

type response_handle

type batch
(** One runtime-server occupancy shared by a coalesced submission: the
    syscall + MMIO cost that [server_op_ps] models is paid once for the
    whole batch instead of once per beat. *)

val begin_batch : t -> n:int -> batch
(** Reserve one server occupancy for a batch of [n] compatible commands
    about to be {!send}t with [~batch]. The occupancy starts when the
    server frees up and beats enter the fabric when it ends; [n] is
    recorded on the tracer's [server.batched_cmds] counter. *)

val send :
  ?batch:batch ->
  ?queued_at:int ->
  t ->
  system:string ->
  core:int ->
  cmd:Beethoven.Cmd_spec.command ->
  args:(string * int64) list ->
  response_handle
(** Pack the arguments per the command spec and submit all RoCC beats
    through the runtime server. When the SoC carries a fault injector and
    the command expects a response, a watchdog guards the response
    deadline ([policy.cmd_timeout_ps]): on timeout the command is resent
    with a doubled deadline, and after [policy.cmd_max_retries] resends
    the core is quarantined and the command rerouted to the next healthy
    core of the system — at-least-once delivery, so kernels are assumed
    idempotent. With every core of the system quarantined the handle
    fails and {!await} raises.

    [batch] submits this command on a shared server occupancy from
    {!begin_batch} (watchdog resends pay their own server operations).
    [queued_at] tells the tracer when the request was enqueued upstream:
    the root command span then opens at that time with a ["queue-wait"]
    child span covering enqueue → submission, under the command's
    transaction id. *)

val send_raw :
  ?span:int -> ?batch:batch -> t -> Beethoven.Rocc.t -> response_handle
(** Submit one raw RoCC beat. [span] is the trace parent for the server
    operations and the SoC delivery path (see {!tracer}). *)

val try_get : response_handle -> int64 option

type collect = Pending | Done of int64 | Failed of string

val try_collect : response_handle -> collect
(** Non-blocking response poll: [Pending] while the command is in flight,
    [Done] once the response was collected, [Failed] when recovery was
    exhausted (every core of the system quarantined). Never advances the
    simulation — the multi-outstanding client drives the engine itself
    and polls, or registers {!on_settled}.

    Failure is prompt: a command sent to a core already quarantined is
    rerouted (or settled [Failed]) at submission, and a command in flight
    when its core is quarantined — by another command's watchdog or by
    {!quarantine_core} — is rerouted or failed at the quarantine instant
    rather than staying [Pending] until its own (possibly doubled)
    watchdog deadline. A draining dispatcher can therefore poll
    [try_collect] and trust that quarantine-doomed commands settle
    immediately. *)

val response_seen_at : response_handle -> int option
(** Simulated time the raw response reached the MMIO frontend, before
    the serialized collect operation — the service/collect phase boundary
    a latency breakdown needs. [None] until then (or on failure). *)

val on_ready : response_handle -> (int64 -> unit) -> unit
(** Call [k] on success. Never fires on failure; conservation accounting
    should use {!on_settled}. *)

val on_settled : response_handle -> ((int64, string) result -> unit) -> unit
(** Call [k] exactly once when the handle settles: [Ok data] on the
    (first) response, [Error msg] when recovery is exhausted. *)

val await : t -> response_handle -> int64
(** Run the simulation until the response arrives ([response_handle::get]).
    Raises [Failure] if the simulation drains without a response, or if
    recovery was exhausted (every core of the system quarantined). *)

val await_all : t -> response_handle list -> int64 list

(** {1 Statistics} *)

val commands_sent : t -> int
val responses_received : t -> int

val command_timeouts : t -> int
(** Response deadlines missed by the watchdog. *)

val command_retries : t -> int
(** Commands resent after a timeout (including reroutes). *)

val is_quarantined : t -> system_id:int -> core_id:int -> bool

val quarantine_core :
  ?cls:Fault.Class.t ->
  t ->
  system_id:int ->
  core_id:int ->
  reason:string ->
  unit
(** Externally imposed quarantine — a cluster health monitor writing off
    every core of a failed device, or a test forcing the state. Marks the
    core failed (future {!send}s reroute around it or settle [Failed]),
    logs a [Quarantined] ledger entry under [cls] (default
    [Core_hang]) when the SoC carries an injector, and promptly settles
    every command currently pending on the core: each is rerouted to the
    next healthy core of its system, or failed when none survives.
    Idempotent; quarantining an already-quarantined core does nothing. *)

val server_busy_ps : t -> int
(** Total time the runtime server spent servicing operations — the
    contention metric. *)

val allocator : t -> Alloc.t
(** The discrete-platform device allocator, for read-only inspection
    (invariant checks, fragmentation accounting in churn tests). On
    embedded platforms ({!Pagemap}-backed) it is present but unused. *)
