module Soc = Beethoven.Soc

type t = {
  soc : Soc.t;
  mutable cpu : Riscv.Cpu.t;
  cpi_ps : int;
  system_id : int;
  core : int;
  mutable retired : int;
  mutable commands : int;
}

(* instructions executed per scheduling quantum; one event per instruction
   would be precise but slow, and the CPU's timing is not the experiment *)
let batch = 64

let create ?cpi_ps ?system ?(core = 0) soc ~program =
  let platform = Soc.platform soc in
  let cpi_ps =
    Option.value cpi_ps ~default:platform.Platform.Device.fabric_clock_ps
  in
  let systems =
    (Soc.design soc).Beethoven.Elaborate.config.Beethoven.Config.systems
  in
  let system_id =
    match system with
    | None -> 0
    | Some name -> (
        match
          List.mapi (fun i s -> (i, s.Beethoven.Config.sys_name)) systems
          |> List.find_opt (fun (_, n) -> n = name)
        with
        | Some (i, _) -> i
        | None -> invalid_arg ("Chipkit_host: unknown system " ^ name))
  in
  let t =
    {
      soc;
      cpu = Riscv.Cpu.create ~program ();
      cpi_ps;
      system_id;
      core;
      retired = 0;
      commands = 0;
    }
  in
  (* rebuild the cpu with the RoCC hook (needs t in scope) *)
  t.cpu <-
    Riscv.Cpu.create
      ~on_rocc:(fun req supply ->
        t.commands <- t.commands + 1;
        let u32 v = Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL in
        Soc.send_command t.soc
          {
            Beethoven.Rocc.system_id = t.system_id;
            core_id = t.core;
            funct = req.Riscv.Cpu.funct7;
            expects_response = req.Riscv.Cpu.expects_result;
            payload1 = u32 req.Riscv.Cpu.rs1_value;
            payload2 = u32 req.Riscv.Cpu.rs2_value;
          }
          ~on_response:(fun resp ->
            supply (Int64.to_int32 resp.Beethoven.Rocc.resp_data)))
      ~program ();
  t

let cpu t = t.cpu
let instructions_retired t = t.retired
let commands_issued t = t.commands

let start t ~on_halt =
  let engine = Soc.engine t.soc in
  let rec quantum () =
    (* execute up to [batch] instructions, one cpi each *)
    let n = ref 0 in
    while !n < batch && Riscv.Cpu.step t.cpu do
      incr n
    done;
    t.retired <- t.retired + !n;
    if Riscv.Cpu.halted t.cpu then
      Desim.Engine.schedule engine ~delay:(!n * t.cpi_ps) on_halt
    else if Riscv.Cpu.blocked_on_rocc t.cpu then
      (* the response callback unblocks the pipeline; poll for it at the
         host clock until the interlock clears *)
      Desim.Engine.schedule engine
        ~delay:(max 1 !n * t.cpi_ps)
        (fun () -> wait_unblock ())
    else Desim.Engine.schedule engine ~delay:(!n * t.cpi_ps) quantum
  and wait_unblock () =
    if Riscv.Cpu.blocked_on_rocc t.cpu then
      Desim.Engine.schedule engine ~delay:t.cpi_ps wait_unblock
    else quantum ()
  in
  quantum ()
