(** Device-memory allocator.

    The discrete-platform allocator of §II-C2: a first-fit free list over
    the FPGA's physical address space, with all state held host-side so
    separate host processes can share the device without conflicts. The
    embedded flavour models hugepage-backed allocation in a shared address
    space (same mechanics, different base/alignment). *)

type t

type free_error =
  | Double_free  (** the base was allocated once, and freed already *)
  | Never_allocated  (** the base was never returned by {!alloc} *)

exception Invalid_free of { addr : int; reason : free_error }
(** Raised by {!free} with the offending base address. *)

val create : size:int -> ?alignment:int -> unit -> t
(** Default alignment 4096 (one hugepage-ish granule / AXI burst window). *)

val alloc : t -> int -> int option
(** First-fit allocation; [None] when no region fits. Returned addresses
    are aligned and non-overlapping. *)

val free : t -> int -> unit
(** Free by base address; coalesces neighbours. Raises {!Invalid_free} on
    a base that is not currently allocated, distinguishing a double-free
    from a pointer that never came out of {!alloc}. *)

val allocated_bytes : t -> int
val free_bytes : t -> int
val n_blocks : t -> int
(** Live allocations. *)

val check_invariants : t -> bool
(** No overlap, alignment respected, accounting consistent — used by the
    property tests. *)
