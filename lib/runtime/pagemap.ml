let page_bytes = 4096
let huge_bytes = 2 * 1024 * 1024
let frames_per_huge = huge_bytes / page_bytes

type mapping = { vaddr : int; bytes : int; hugepages : bool }

type t = {
  n_frames : int;
  (* free 4 KB frame indices, deliberately shuffled to model external
     fragmentation of a long-running system *)
  mutable free_frames : int list;
  (* free hugepage slots (aligned groups of 512 frames) *)
  mutable free_huge : int list;
  (* vpage index -> physical frame *)
  page_table : (int, int) Hashtbl.t;
  mutable next_vaddr : int;
  live : (int, mapping) Hashtbl.t;
}

let create ~phys_bytes () =
  if phys_bytes <= 0 || phys_bytes mod huge_bytes <> 0 then
    invalid_arg "Pagemap.create: phys_bytes must be a multiple of 2MB";
  let n_frames = phys_bytes / page_bytes in
  let n_huge = phys_bytes / huge_bytes in
  (* reserve the second half of memory for hugepages (a hugetlb pool);
     scatter the first half's frames with an LCG permutation *)
  let pool_frames = n_frames / 2 in
  (* deterministic shuffle: stride-97 walk that visits every frame once *)
  let scatter =
    let visited = Array.make pool_frames false in
    let order = ref [] in
    let idx = ref 0 in
    for _ = 1 to pool_frames do
      while visited.(!idx) do
        idx := (!idx + 1) mod pool_frames
      done;
      visited.(!idx) <- true;
      order := !idx :: !order;
      idx := (!idx + 97) mod pool_frames
    done;
    List.rev !order
  in
  {
    n_frames;
    free_frames = scatter;
    free_huge = List.init (n_huge / 2) (fun i -> (n_huge / 2) + i);
    page_table = Hashtbl.create 1024;
    next_vaddr = 1 lsl 30;
    live = Hashtbl.create 16;
  }

let cdiv a b = ((a - 1) / b) + 1

let mmap t ?(hugepages = false) bytes =
  if bytes <= 0 then invalid_arg "Pagemap.mmap: bytes";
  let vaddr = t.next_vaddr in
  if hugepages then begin
    let n = cdiv bytes huge_bytes in
    let rec take k acc list =
      if k = 0 then (List.rev acc, list)
      else
        match list with
        | [] -> failwith "Pagemap.mmap: out of hugepages"
        | h :: rest -> take (k - 1) (h :: acc) rest
    in
    let slots, rest = take n [] t.free_huge in
    t.free_huge <- rest;
    List.iteri
      (fun i slot ->
        let base_frame = slot * frames_per_huge in
        for f = 0 to frames_per_huge - 1 do
          Hashtbl.replace t.page_table
            ((vaddr / page_bytes) + (i * frames_per_huge) + f)
            (base_frame + f)
        done)
      slots;
    t.next_vaddr <- vaddr + (n * huge_bytes);
    let m = { vaddr; bytes; hugepages = true } in
    Hashtbl.replace t.live vaddr m;
    m
  end
  else begin
    let n = cdiv bytes page_bytes in
    let rec take k acc list =
      if k = 0 then (List.rev acc, list)
      else
        match list with
        | [] -> failwith "Pagemap.mmap: out of physical frames"
        | h :: rest -> take (k - 1) (h :: acc) rest
    in
    let frames, rest = take n [] t.free_frames in
    t.free_frames <- rest;
    List.iteri
      (fun i frame ->
        Hashtbl.replace t.page_table ((vaddr / page_bytes) + i) frame)
      frames;
    t.next_vaddr <- vaddr + (n * page_bytes);
    let m = { vaddr; bytes; hugepages = false } in
    Hashtbl.replace t.live vaddr m;
    m
  end

let munmap t m =
  if not (Hashtbl.mem t.live m.vaddr) then
    invalid_arg "Pagemap.munmap: not mapped";
  Hashtbl.remove t.live m.vaddr;
  if m.hugepages then begin
    let n = cdiv m.bytes huge_bytes in
    for i = 0 to n - 1 do
      let vp = (m.vaddr / page_bytes) + (i * frames_per_huge) in
      let frame = Hashtbl.find t.page_table vp in
      t.free_huge <- (frame / frames_per_huge) :: t.free_huge;
      for f = 0 to frames_per_huge - 1 do
        Hashtbl.remove t.page_table (vp + f)
      done
    done
  end
  else begin
    let n = cdiv m.bytes page_bytes in
    for i = 0 to n - 1 do
      let vp = (m.vaddr / page_bytes) + i in
      let frame = Hashtbl.find t.page_table vp in
      t.free_frames <- frame :: t.free_frames;
      Hashtbl.remove t.page_table vp
    done
  end

let translate t vaddr =
  let vp = vaddr / page_bytes in
  match Hashtbl.find_opt t.page_table vp with
  | Some frame -> (frame * page_bytes) + (vaddr mod page_bytes)
  | None -> raise Not_found

let phys_regions t m =
  let n = cdiv m.bytes page_bytes in
  let runs = ref [] in
  for i = n - 1 downto 0 do
    let paddr = translate t (m.vaddr + (i * page_bytes)) in
    let len = min page_bytes (m.bytes - (i * page_bytes)) in
    match !runs with
    | (base, rlen) :: rest when paddr + page_bytes = base ->
        runs := (paddr, rlen + len) :: rest
    | _ -> runs := (paddr, len) :: !runs
  done;
  !runs

let physically_contiguous t m = List.length (phys_regions t m) = 1
let frames_free t = List.length t.free_frames
let total_frames t = t.n_frames
