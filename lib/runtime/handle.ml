module Soc = Beethoven.Soc
module Rocc = Beethoven.Rocc
module Cmd_spec = Beethoven.Cmd_spec

let log_src = Logs.Src.create "beethoven.runtime" ~doc:"Host runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type remote_ptr = { rp_addr : int; rp_bytes : int }

type response_handle = {
  mutable result : int64 option;
  mutable waiters : (int64 -> unit) list;
}

type t = {
  soc : Soc.t;
  engine : Desim.Engine.t;
  alloc : Alloc.t; (* discrete platforms: device address space *)
  pagemap : Pagemap.t option; (* embedded platforms: the host OS's pages *)
  huge_mappings : (int, Pagemap.mapping) Hashtbl.t; (* phys base -> mapping *)
  host_buffers : (int, Bytes.t) Hashtbl.t; (* device addr -> host staging *)
  server_op_ps : int;
  mutable server_free_at : int;
  mutable server_busy_ps : int;
  mutable commands_sent : int;
  mutable responses_received : int;
}

let create ?(server_op_ps = 1_500_000) soc =
  let shared =
    (Soc.platform soc).Platform.Device.host.Platform.Device
    .shared_address_space
  in
  {
    soc;
    engine = Soc.engine soc;
    alloc = Alloc.create ~size:(Soc.mem_size soc) ();
    pagemap =
      (if shared then
         Some (Pagemap.create ~phys_bytes:(Soc.mem_size soc) ())
       else None);
    huge_mappings = Hashtbl.create 16;
    host_buffers = Hashtbl.create 16;
    server_op_ps;
    server_free_at = 0;
    server_busy_ps = 0;
    commands_sent = 0;
    responses_received = 0;
  }

let soc t = t.soc
let engine t = t.engine

(* One runtime-server operation: waits for the server lock, holds it for
   the service time, then continues. *)
let server_op t k =
  let now = Desim.Engine.now t.engine in
  let start = max now t.server_free_at in
  let finish = start + t.server_op_ps in
  t.server_free_at <- finish;
  t.server_busy_ps <- t.server_busy_ps + t.server_op_ps;
  Desim.Engine.schedule_at t.engine ~time:finish k

let malloc t n =
  match t.pagemap with
  | Some pm ->
      (* embedded: hugepage-backed so the physically-addressed fabric sees
         one contiguous region (§II-C2); rp_addr is the physical base *)
      let m = Pagemap.mmap pm ~hugepages:true n in
      assert (Pagemap.physically_contiguous pm m);
      let addr = Pagemap.translate pm m.Pagemap.vaddr in
      Log.debug (fun f ->
          f "malloc %d B -> hugepage phys 0x%x (virt 0x%x)" n addr
            m.Pagemap.vaddr);
      Hashtbl.replace t.huge_mappings addr m;
      Hashtbl.replace t.host_buffers addr (Bytes.make n '\000');
      { rp_addr = addr; rp_bytes = n }
  | None -> (
      match Alloc.alloc t.alloc n with
      | None -> failwith "fpga_handle: device memory exhausted"
      | Some addr ->
          Hashtbl.replace t.host_buffers addr (Bytes.make n '\000');
          { rp_addr = addr; rp_bytes = n })

let mfree t ptr =
  (match (t.pagemap, Hashtbl.find_opt t.huge_mappings ptr.rp_addr) with
  | Some pm, Some m ->
      Pagemap.munmap pm m;
      Hashtbl.remove t.huge_mappings ptr.rp_addr
  | _ -> Alloc.free t.alloc ptr.rp_addr);
  Hashtbl.remove t.host_buffers ptr.rp_addr

let host_bytes t ptr =
  match Hashtbl.find_opt t.host_buffers ptr.rp_addr with
  | Some b -> b
  | None -> invalid_arg "fpga_handle: stale remote_ptr"

let platform t = Soc.platform t.soc

let dma_ps t bytes =
  let host = (platform t).Platform.Device.host in
  if host.Platform.Device.shared_address_space then
    (* cache maintenance over the region: ~200 ps per line *)
    bytes / 64 * 200
  else
    (* GB/s = bytes/ns, so time_ps = bytes / GBs * 1000 *)
    host.Platform.Device.dma_setup_ps
    + int_of_float
        (float_of_int bytes /. host.Platform.Device.dma_bandwidth_gbs *. 1000.)

let copy_to_fpga t ptr ~on_done =
  let src = host_bytes t ptr in
  Desim.Engine.schedule t.engine ~delay:(dma_ps t ptr.rp_bytes) (fun () ->
      Soc.blit_in t.soc ~src ~dst_addr:ptr.rp_addr;
      on_done ())

let copy_from_fpga t ptr ~on_done =
  Desim.Engine.schedule t.engine ~delay:(dma_ps t ptr.rp_bytes) (fun () ->
      Soc.blit_out t.soc ~src_addr:ptr.rp_addr ~dst:(host_bytes t ptr);
      on_done ())

let resolve handle v =
  handle.result <- Some v;
  let ws = handle.waiters in
  handle.waiters <- [];
  List.iter (fun w -> w v) ws

let send_raw t cmd =
  let handle = { result = None; waiters = [] } in
  t.commands_sent <- t.commands_sent + 1;
  Log.debug (fun f ->
      f "send sys=%d core=%d funct=%d" cmd.Rocc.system_id cmd.Rocc.core_id
        cmd.Rocc.funct);
  server_op t (fun () ->
      Soc.send_command t.soc cmd ~on_response:(fun resp ->
          (* the server polls the MMIO response queue; collection is
             another serialized server operation *)
          server_op t (fun () ->
              t.responses_received <- t.responses_received + 1;
              resolve handle resp.Rocc.resp_data)));
  handle

let system_index t name =
  let systems =
    (Soc.design t.soc).Beethoven.Elaborate.config.Beethoven.Config.systems
  in
  let rec go i = function
    | [] -> invalid_arg ("fpga_handle: unknown system " ^ name)
    | s :: rest ->
        if s.Beethoven.Config.sys_name = name then i else go (i + 1) rest
  in
  go 0 systems

let send t ~system ~core ~cmd ~args =
  let pairs = Cmd_spec.pack cmd args in
  let n = List.length pairs in
  let sys_id = system_index t system in
  let handles =
    List.mapi
      (fun i (p1, p2) ->
        send_raw t
          {
            Rocc.system_id = sys_id;
            core_id = core;
            funct = cmd.Cmd_spec.cmd_funct;
            expects_response = i = n - 1 && cmd.Cmd_spec.has_response;
            payload1 = p1;
            payload2 = p2;
          })
      pairs
  in
  (* the logical response is the last beat's *)
  List.nth handles (n - 1)

let try_get h = h.result

let on_ready h k =
  match h.result with
  | Some v -> k v
  | None -> h.waiters <- k :: h.waiters

let await t h =
  let module E = Desim.Engine in
  let rec spin () =
    match h.result with
    | Some v -> v
    | None ->
        if E.step t.engine then spin ()
        else failwith "fpga_handle.await: simulation drained with no response"
  in
  spin ()

let await_all t hs = List.map (await t) hs
let commands_sent t = t.commands_sent
let responses_received t = t.responses_received
let server_busy_ps t = t.server_busy_ps
