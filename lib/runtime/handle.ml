module Soc = Beethoven.Soc
module Rocc = Beethoven.Rocc
module Cmd_spec = Beethoven.Cmd_spec

let log_src = Logs.Src.create "beethoven.runtime" ~doc:"Host runtime events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type remote_ptr = { rp_addr : int; rp_bytes : int; rp_gen : int }

exception Stale_pointer of { addr : int; bytes : int }

let () =
  Printexc.register_printer (function
    | Stale_pointer { addr; bytes } ->
        Some
          (Printf.sprintf
             "Handle.Stale_pointer: remote_ptr 0x%x (%d B) no longer backs \
              a live allocation"
             addr bytes)
    | _ -> None)

type response_handle = {
  mutable result : int64 option;
  mutable failed : string option;
      (* set instead of [result] when recovery is exhausted *)
  mutable raw_at : int option;
      (* when the raw response reached the MMIO frontend, before the
         collect server operation — the service/collect phase boundary *)
  mutable waiters : (int64 -> unit) list;
  mutable settle_waiters : ((int64, string) result -> unit) list;
      (* fired exactly once, on success OR failure — the form a
         multi-outstanding client needs for conservation accounting *)
}

let fresh_handle () =
  { result = None; failed = None; raw_at = None; waiters = []; settle_waiters = [] }

type t = {
  soc : Soc.t;
  engine : Desim.Engine.t;
  alloc : Alloc.t; (* discrete platforms: device address space *)
  pagemap : Pagemap.t option; (* embedded platforms: the host OS's pages *)
  huge_mappings : (int, Pagemap.mapping) Hashtbl.t; (* phys base -> mapping *)
  host_buffers : (int, Bytes.t) Hashtbl.t; (* device addr -> host staging *)
  server_op_ps : int;
  poison_freed : bool;
  (* device base -> generation of the live allocation there; a remote_ptr
     whose generation does not match is stale *)
  gens : (int, int) Hashtbl.t;
  mutable next_gen : int;
  (* (system_id, core_id) the watchdog has written off *)
  quarantined : (int * int, unit) Hashtbl.t;
  (* per-core prompt-abort hooks: every in-flight watchdogged attempt
     registers one so quarantining a core immediately reroutes-or-fails
     the commands pending on it instead of letting each wait out its own
     (possibly doubled) deadline — the fast-drain path a cluster layer
     needs. Keyed by a monotonic id so firing order is deterministic. *)
  kicks : (int * int, (int, unit -> unit) Hashtbl.t) Hashtbl.t;
  mutable next_kick : int;
  mutable server_free_at : int;
  mutable server_busy_ps : int;
  mutable commands_sent : int;
  mutable responses_received : int;
  mutable command_timeouts : int;
  mutable command_retries : int;
}

let create ?(server_op_ps = 1_500_000) ?(poison_freed = false) soc =
  let shared =
    (Soc.platform soc).Platform.Device.host.Platform.Device
    .shared_address_space
  in
  {
    soc;
    engine = Soc.engine soc;
    alloc = Alloc.create ~size:(Soc.mem_size soc) ();
    pagemap =
      (if shared then
         Some (Pagemap.create ~phys_bytes:(Soc.mem_size soc) ())
       else None);
    huge_mappings = Hashtbl.create 16;
    host_buffers = Hashtbl.create 16;
    server_op_ps;
    poison_freed;
    gens = Hashtbl.create 16;
    next_gen = 0;
    quarantined = Hashtbl.create 4;
    kicks = Hashtbl.create 4;
    next_kick = 0;
    server_free_at = 0;
    server_busy_ps = 0;
    commands_sent = 0;
    responses_received = 0;
    command_timeouts = 0;
    command_retries = 0;
  }

let soc t = t.soc
let engine t = t.engine
let tracer t = Soc.tracer t.soc

(* One runtime-server operation: waits for the server lock, holds it for
   the service time, then continues. Start and finish are known at issue
   time, so the trace span is recorded synchronously. Returns the finish
   time so batched submissions can ride a single occupancy. *)
let server_op ?span ?(op = "op") t k =
  let now = Desim.Engine.now t.engine in
  let start = max now t.server_free_at in
  let finish = start + t.server_op_ps in
  t.server_free_at <- finish;
  t.server_busy_ps <- t.server_busy_ps + t.server_op_ps;
  (match tracer t with
  | None -> ()
  | Some tr ->
      let sp =
        Trace.begin_span tr ~now:start ?parent:span ~track:"runtime server"
          ~cat:"server" ~name:op ()
      in
      if start > now then
        Trace.add_arg tr sp "lock_wait_ps" (Trace.Int (start - now));
      Trace.end_span tr ~now:finish sp;
      Trace.add tr "server.busy_ps" t.server_op_ps);
  Desim.Engine.schedule_at t.engine ~time:finish k;
  finish

type batch = { b_ready : int }

(* One server occupancy covers the MMIO writes of a whole coalesced
   submission: the syscall + lock acquisition that [server_op_ps] models
   is paid once for up to N compatible commands instead of once per beat
   — the amortization a batching dispatcher buys (the Fig. 6 contention
   knob). Beats ride the occupancy and enter the fabric when it ends. *)
let begin_batch t ~n =
  let finish =
    server_op ~op:(Printf.sprintf "submit x%d" n) t (fun () -> ())
  in
  (match tracer t with
  | None -> ()
  | Some tr -> Trace.add tr "server.batched_cmds" n);
  { b_ready = finish }

let malloc t n =
  match t.pagemap with
  | Some pm ->
      (* embedded: hugepage-backed so the physically-addressed fabric sees
         one contiguous region (§II-C2); rp_addr is the physical base *)
      let m = Pagemap.mmap pm ~hugepages:true n in
      assert (Pagemap.physically_contiguous pm m);
      let addr = Pagemap.translate pm m.Pagemap.vaddr in
      Log.debug (fun f ->
          f "malloc %d B -> hugepage phys 0x%x (virt 0x%x)" n addr
            m.Pagemap.vaddr);
      Hashtbl.replace t.huge_mappings addr m;
      Hashtbl.replace t.host_buffers addr (Bytes.make n '\000');
      t.next_gen <- t.next_gen + 1;
      Hashtbl.replace t.gens addr t.next_gen;
      { rp_addr = addr; rp_bytes = n; rp_gen = t.next_gen }
  | None -> (
      match Alloc.alloc t.alloc n with
      | None -> failwith "fpga_handle: device memory exhausted"
      | Some addr ->
          Hashtbl.replace t.host_buffers addr (Bytes.make n '\000');
          t.next_gen <- t.next_gen + 1;
          Hashtbl.replace t.gens addr t.next_gen;
          { rp_addr = addr; rp_bytes = n; rp_gen = t.next_gen })

let check_live t ptr =
  match Hashtbl.find_opt t.gens ptr.rp_addr with
  | Some g when g = ptr.rp_gen -> ()
  | _ -> raise (Stale_pointer { addr = ptr.rp_addr; bytes = ptr.rp_bytes })

let mfree t ptr =
  (* a pointer into a base that was reallocated since is stale, not a
     double-free — distinguish before the allocator sees it *)
  (match Hashtbl.find_opt t.gens ptr.rp_addr with
  | Some g when g <> ptr.rp_gen ->
      raise (Stale_pointer { addr = ptr.rp_addr; bytes = ptr.rp_bytes })
  | _ -> ());
  (match (t.pagemap, Hashtbl.find_opt t.huge_mappings ptr.rp_addr) with
  | Some pm, Some m ->
      Pagemap.munmap pm m;
      Hashtbl.remove t.huge_mappings ptr.rp_addr
  | Some _, None ->
      raise (Alloc.Invalid_free { addr = ptr.rp_addr; reason = Alloc.Double_free })
  | None, _ -> Alloc.free t.alloc ptr.rp_addr);
  Hashtbl.remove t.gens ptr.rp_addr;
  (if t.poison_freed then
     match Hashtbl.find_opt t.host_buffers ptr.rp_addr with
     | Some b -> Bytes.fill b 0 (Bytes.length b) '\xde'
     | None -> ());
  Hashtbl.remove t.host_buffers ptr.rp_addr

let host_bytes t ptr =
  check_live t ptr;
  match Hashtbl.find_opt t.host_buffers ptr.rp_addr with
  | Some b -> b
  | None -> raise (Stale_pointer { addr = ptr.rp_addr; bytes = ptr.rp_bytes })

let platform t = Soc.platform t.soc

let dma_ps t bytes =
  let host = (platform t).Platform.Device.host in
  if host.Platform.Device.shared_address_space then
    (* cache maintenance over the region: ~200 ps per line *)
    bytes / 64 * 200
  else
    (* GB/s = bytes/ns, so time_ps = bytes / GBs * 1000 *)
    host.Platform.Device.dma_setup_ps
    + int_of_float
        (float_of_int bytes /. host.Platform.Device.dma_bandwidth_gbs *. 1000.)

(* One DMA transfer, with transient-failure injection and bounded
   retry/backoff. Each injected failure is resolved exactly once:
   [Recovered] when a later attempt completes, [Unrecovered] when the
   budget runs out (the transfer is then abandoned — the campaign's
   verification pass surfaces the resulting corruption). *)
let dma_op t ~bytes ~site ~work ~on_done =
  let inj = Soc.fault_injector t.soc in
  let policy = Soc.policy t.soc in
  (* each DMA transfer is its own top-level transaction in the trace *)
  let span, on_done =
    match tracer t with
    | None -> (None, on_done)
    | Some tr ->
        let now = Desim.Engine.now t.engine in
        let txn = Trace.fresh_txn tr in
        let sp =
          Trace.begin_span tr ~now ~txn ~track:"runtime" ~cat:"dma" ~name:site
            ()
        in
        Trace.add_arg tr sp "bytes" (Trace.Int bytes);
        ( Some sp,
          fun () ->
            Trace.end_span tr ~now:(Desim.Engine.now t.engine) sp;
            Trace.add tr "dma.bytes" bytes;
            on_done () )
  in
  let rec go attempt =
    Desim.Engine.schedule t.engine ~delay:(dma_ps t bytes) (fun () ->
        let now = Desim.Engine.now t.engine in
        let failed =
          match inj with
          | Some i when Fault.Injector.decide i Fault.Class.Dma_fail ->
              Fault.Injector.log i ~now ~cls:Fault.Class.Dma_fail
                ~kind:Fault.Log.Injected ~site;
              (match (tracer t, span) with
              | Some tr, Some sp ->
                  Trace.add_arg tr sp
                    (Printf.sprintf "fault_id[%d]" attempt)
                    (Trace.Int (Fault.Injector.last_id i))
              | _ -> ());
              true
          | _ -> false
        in
        if not failed then begin
          (match inj with
          | Some i when attempt > 0 ->
              for _ = 1 to attempt do
                Fault.Injector.log i ~now ~cls:Fault.Class.Dma_fail
                  ~kind:Fault.Log.Recovered ~site
              done
          | _ -> ());
          work ();
          on_done ()
        end
        else if attempt < policy.Fault.Policy.dma_max_retries then
          Desim.Engine.schedule t.engine
            ~delay:(policy.Fault.Policy.dma_backoff_ps * (1 lsl attempt))
            (fun () -> go (attempt + 1))
        else begin
          (match inj with
          | Some i ->
              for _ = 1 to attempt + 1 do
                Fault.Injector.log i ~now ~cls:Fault.Class.Dma_fail
                  ~kind:Fault.Log.Unrecovered ~site
              done
          | None -> ());
          (match (tracer t, span) with
          | Some tr, Some sp ->
              Trace.add_arg tr sp "abandoned" (Trace.Int 1)
          | _ -> ());
          on_done ()
        end)
  in
  go 0

let copy_to_fpga t ptr ~on_done =
  let src = host_bytes t ptr in
  dma_op t ~bytes:ptr.rp_bytes
    ~site:(Printf.sprintf "dma to fpga @0x%x (%d B)" ptr.rp_addr ptr.rp_bytes)
    ~work:(fun () -> Soc.blit_in t.soc ~src ~dst_addr:ptr.rp_addr)
    ~on_done

let copy_from_fpga t ptr ~on_done =
  check_live t ptr;
  dma_op t ~bytes:ptr.rp_bytes
    ~site:
      (Printf.sprintf "dma from fpga @0x%x (%d B)" ptr.rp_addr ptr.rp_bytes)
    ~work:(fun () ->
      Soc.blit_out t.soc ~src_addr:ptr.rp_addr ~dst:(host_bytes t ptr))
    ~on_done

(* Idempotent: a command retried by the watchdog can respond more than
   once (at-least-once delivery); only the first response resolves, and a
   handle that already failed stays failed (the settle accounting below
   fires exactly once per handle, success or failure). *)
let resolve handle v =
  if handle.result = None && handle.failed = None then begin
    handle.result <- Some v;
    let ws = handle.waiters in
    handle.waiters <- [];
    List.iter (fun w -> w v) ws;
    let sws = handle.settle_waiters in
    handle.settle_waiters <- [];
    List.iter (fun w -> w (Ok v)) sws
  end

let fail handle msg =
  if handle.result = None && handle.failed = None then begin
    handle.failed <- Some msg;
    let sws = handle.settle_waiters in
    handle.settle_waiters <- [];
    List.iter (fun w -> w (Error msg)) sws
  end

let send_raw ?span ?batch t cmd =
  let handle = fresh_handle () in
  t.commands_sent <- t.commands_sent + 1;
  Log.debug (fun f ->
      f "send sys=%d core=%d funct=%d" cmd.Rocc.system_id cmd.Rocc.core_id
        cmd.Rocc.funct);
  let deliver () =
    Soc.send_command ?span t.soc cmd ~on_response:(fun resp ->
        if handle.raw_at = None then
          handle.raw_at <- Some (Desim.Engine.now t.engine);
        (* the server polls the MMIO response queue; collection is
           another serialized server operation *)
        ignore
          (server_op ?span ~op:"collect" t (fun () ->
               t.responses_received <- t.responses_received + 1;
               resolve handle resp.Rocc.resp_data)))
  in
  (match batch with
  | None -> ignore (server_op ?span ~op:"submit" t deliver)
  | Some b ->
      (* this beat's MMIO write was covered by the batch occupancy *)
      Desim.Engine.schedule_at t.engine
        ~time:(max b.b_ready (Desim.Engine.now t.engine))
        deliver);
  handle

let system_index t name =
  let systems =
    (Soc.design t.soc).Beethoven.Elaborate.config.Beethoven.Config.systems
  in
  let rec go i = function
    | [] -> invalid_arg ("fpga_handle: unknown system " ^ name)
    | s :: rest ->
        if s.Beethoven.Config.sys_name = name then i else go (i + 1) rest
  in
  go 0 systems

let is_quarantined t ~system_id ~core_id =
  Hashtbl.mem t.quarantined (system_id, core_id)

(* Register a prompt-abort hook for an attempt in flight on a core.
   Returns the deregistration thunk the attempt calls once it settles or
   is superseded. *)
let register_kick t ~system_id ~core_id f =
  let key = (system_id, core_id) in
  let tbl =
    match Hashtbl.find_opt t.kicks key with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.kicks key tbl;
        tbl
  in
  let id = t.next_kick in
  t.next_kick <- id + 1;
  Hashtbl.replace tbl id f;
  fun () -> Hashtbl.remove tbl id

(* Fire (and clear) the abort hooks pending on a core, in registration
   order — called at quarantine so in-flight commands reroute or fail
   now instead of waiting out their deadlines. *)
let fire_kicks t ~system_id ~core_id =
  match Hashtbl.find_opt t.kicks (system_id, core_id) with
  | None -> ()
  | Some tbl ->
      let pending = Hashtbl.fold (fun id f acc -> (id, f) :: acc) tbl [] in
      Hashtbl.remove t.kicks (system_id, core_id);
      List.iter
        (fun (_, f) -> f ())
        (List.sort (fun (a, _) (b, _) -> compare a b) pending)

(* Externally imposed quarantine (a cluster health monitor writing off a
   device's cores, a test forcing the state): mark the core failed, log
   it on the injector's ledger when one is attached, and promptly settle
   every command pending on the core (reroute to a surviving core of the
   system, or Failed when none is left). Idempotent. *)
let quarantine_core ?(cls = Fault.Class.Core_hang) t ~system_id ~core_id
    ~reason =
  if not (Hashtbl.mem t.quarantined (system_id, core_id)) then begin
    Hashtbl.replace t.quarantined (system_id, core_id) ();
    (match Soc.fault_injector t.soc with
    | Some inj ->
        Fault.Injector.log inj
          ~now:(Desim.Engine.now t.engine)
          ~cls ~kind:Fault.Log.Quarantined
          ~site:
            (Printf.sprintf "sys=%d core=%d forced: %s" system_id core_id
               reason)
    | None -> ());
    fire_kicks t ~system_id ~core_id
  end

let send ?batch ?queued_at t ~system ~core ~cmd ~args =
  let pairs = Cmd_spec.pack cmd args in
  let n = List.length pairs in
  let sys_id = system_index t system in
  (* Root span for the whole host-visible command: a fresh transaction id
     that every downstream span (server ops, NoC hops, core execution,
     AXI bursts, DRAM activity) inherits through span parenting. A
     dispatcher that queued the request before submitting it passes
     [queued_at]: the root span then opens at enqueue time and the
     queue-wait becomes its first child span, so the wait a request
     accumulated in front of the runtime is visible under the command's
     transaction id. *)
  let root =
    match tracer t with
    | None -> None
    | Some tr ->
        let now = Desim.Engine.now t.engine in
        let start =
          match queued_at with Some q when q < now -> q | _ -> now
        in
        let txn = Trace.fresh_txn tr in
        let sp =
          Trace.begin_span tr ~now:start ~txn ~track:"runtime" ~cat:"command"
            ~name:(Printf.sprintf "%s %s/%d" cmd.Cmd_spec.cmd_name system core)
            ()
        in
        Trace.add_arg tr sp "beats" (Trace.Int n);
        (match queued_at with
        | Some q when q < now ->
            ignore
              (Trace.complete_span tr ~start:q ~stop:now ~parent:sp
                 ~track:"runtime" ~cat:"serve" ~name:"queue-wait"
                 ~args:[ ("wait_ps", Trace.Int (now - q)) ]
                 ())
        | _ -> ());
        Some (tr, sp)
  in
  (* the coalesced occupancy covers only the first submission; watchdog
     resends pay their own server operations *)
  let batch_once = ref batch in
  let span = Option.map snd root in
  let finish_root () =
    match root with
    | None -> ()
    | Some (tr, sp) -> Trace.end_span tr ~now:(Desim.Engine.now t.engine) sp
  in
  (* Close the root span when the logical response resolves; response-less
     commands close it at submission (there is nothing to await). *)
  let watch h =
    (match root with
    | None -> ()
    | Some _ ->
        if not cmd.Cmd_spec.has_response then finish_root ()
        else begin
          match h.result with
          | Some _ -> finish_root ()
          | None -> h.waiters <- (fun _ -> finish_root ()) :: h.waiters
        end);
    h
  in
  let submit target_core =
    let b = !batch_once in
    batch_once := None;
    let handles =
      List.mapi
        (fun i (p1, p2) ->
          send_raw ?span ?batch:b t
            {
              Rocc.system_id = sys_id;
              core_id = target_core;
              funct = cmd.Cmd_spec.cmd_funct;
              expects_response = i = n - 1 && cmd.Cmd_spec.has_response;
              payload1 = p1;
              payload2 = p2;
            })
        pairs
    in
    (* the logical response is the last beat's *)
    List.nth handles (n - 1)
  in
  let sys =
    List.nth
      (Soc.design t.soc).Beethoven.Elaborate.config.Beethoven.Config.systems
      sys_id
  in
  let n_cores = sys.Beethoven.Config.n_cores in
  let next_core after =
    let rec go k =
      if k >= n_cores then None
      else
        let c = (after + k) mod n_cores in
        if Hashtbl.mem t.quarantined (sys_id, c) then go (k + 1) else Some c
    in
    go 1
  in
  let fail_quarantined outer =
    fail outer (Printf.sprintf "system %s: all cores quarantined" system);
    (match root with
    | Some (tr, sp) -> Trace.add_arg tr sp "failed" (Trace.Str "quarantined")
    | None -> ());
    finish_root ();
    outer
  in
  (* Never dispatch onto a core already written off: reroute to the next
     healthy core, or settle the handle [Failed] right here — a caller
     polling [try_collect] sees the failure promptly instead of a handle
     stuck [Pending] until a watchdog deadline (or forever when no
     injector armed a watchdog at all). *)
  let entry_core =
    if Hashtbl.mem t.quarantined (sys_id, core) then next_core core
    else Some core
  in
  match (Soc.fault_injector t.soc, entry_core) with
  | _, None -> watch (fail_quarantined (fresh_handle ()))
  | None, Some c -> watch (submit c)
  | Some _, Some c when not cmd.Cmd_spec.has_response ->
      (* nothing to watch: a response-less command cannot be timed out *)
      watch (submit c)
  | Some inj, Some entry ->
      (* Watchdog: if the response misses its deadline, resend (doubling
         the deadline); after [cmd_max_retries] resends quarantine the
         core and reroute to the next healthy one. Commands are therefore
         delivered at-least-once — kernels are assumed idempotent. *)
      let policy = Soc.policy t.soc in
      let outer = fresh_handle () in
      let touched = ref [] in
      let succeed v =
        if outer.result = None then begin
          let now = Desim.Engine.now t.engine in
          List.iter
            (fun key ->
              Fault.Injector.resolve_lost inj ~now ~key ~recovered:true)
            !touched;
          resolve outer v
        end
      in
      let rec attempt ~target_core ~tries ~timeout_ps =
        let key = Soc.cmd_key t.soc ~system_id:sys_id ~core_id:target_core in
        if not (List.mem key !touched) then touched := key :: !touched;
        let h = submit target_core in
        (* one attempt is live at a time; settling, rerouting or being
           kicked by a quarantine retires it so the still-scheduled
           deadline event becomes a no-op *)
        let live = ref true in
        let dereg = ref (fun () -> ()) in
        let retire () =
          live := false;
          !dereg ()
        in
        let succeed_with v =
          if outer.raw_at = None then outer.raw_at <- h.raw_at;
          retire ();
          succeed v
        in
        (match h.result with
        | Some v -> succeed_with v
        | None -> h.waiters <- succeed_with :: h.waiters);
        let reroute_or_fail () =
          match next_core target_core with
          | Some c ->
              t.command_retries <- t.command_retries + 1;
              attempt ~target_core:c ~tries:0
                ~timeout_ps:policy.Fault.Policy.cmd_timeout_ps
          | None ->
              let now = Desim.Engine.now t.engine in
              List.iter
                (fun key ->
                  Fault.Injector.resolve_lost inj ~now ~key ~recovered:false)
                !touched;
              ignore (fail_quarantined outer)
        in
        if !live then
        dereg :=
          register_kick t ~system_id:sys_id ~core_id:target_core (fun () ->
              (* the core was quarantined from under this attempt (by
                 another command's watchdog or an external health
                 monitor): reroute or fail now, not at the deadline *)
              if !live && outer.result = None && outer.failed = None then begin
                retire ();
                reroute_or_fail ()
              end);
        Desim.Engine.schedule t.engine ~delay:timeout_ps (fun () ->
            if !live && outer.result = None && h.result = None then begin
              t.command_timeouts <- t.command_timeouts + 1;
              (match root with
              | Some (tr, sp) ->
                  Trace.instant tr
                    ~now:(Desim.Engine.now t.engine)
                    ~parent:sp ~track:"runtime" ~cat:"fault"
                    ~name:
                      (Printf.sprintf "timeout sys=%d core=%d try=%d" sys_id
                         target_core tries)
                    ()
              | None -> ());
              if Hashtbl.mem t.quarantined (sys_id, target_core) then begin
                (* written off since dispatch: no point burning the retry
                   budget on a quarantined core *)
                retire ();
                reroute_or_fail ()
              end
              else if tries < policy.Fault.Policy.cmd_max_retries then begin
                t.command_retries <- t.command_retries + 1;
                Log.debug (fun f ->
                    f "command timed out; retry %d on sys=%d core=%d"
                      (tries + 1) sys_id target_core);
                retire ();
                attempt ~target_core ~tries:(tries + 1)
                  ~timeout_ps:(2 * timeout_ps)
              end
              else begin
                (* with several commands outstanding on one core, every
                   one of them runs its retry budget out — the core is
                   quarantined (and logged) exactly once, by whichever
                   watchdog gets there first; the others are kicked into
                   their reroute immediately *)
                Hashtbl.replace t.quarantined (sys_id, target_core) ();
                let now = Desim.Engine.now t.engine in
                Fault.Injector.log inj ~now ~cls:Fault.Class.Core_hang
                  ~kind:Fault.Log.Quarantined
                  ~site:
                    (Printf.sprintf
                       "sys=%d core=%d after %d timed-out attempt(s)%s"
                       sys_id target_core (tries + 1)
                       (if
                          Soc.core_hung t.soc ~system_id:sys_id
                            ~core_id:target_core
                        then " (injected hang)"
                        else ""));
                (match root with
                | Some (tr, sp) ->
                    Trace.add_arg tr sp
                      (Printf.sprintf "quarantine[%d/%d]" sys_id target_core)
                      (Trace.Int (Fault.Injector.last_id inj))
                | None -> ());
                retire ();
                fire_kicks t ~system_id:sys_id ~core_id:target_core;
                reroute_or_fail ()
              end
            end)
      in
      attempt ~target_core:entry ~tries:0
        ~timeout_ps:policy.Fault.Policy.cmd_timeout_ps;
      watch outer

let try_get h = h.result

type collect = Pending | Done of int64 | Failed of string

let try_collect h =
  match (h.result, h.failed) with
  | Some v, _ -> Done v
  | None, Some msg -> Failed msg
  | None, None -> Pending

let response_seen_at h = h.raw_at

let on_ready h k =
  match h.result with
  | Some v -> k v
  | None -> h.waiters <- k :: h.waiters

let on_settled h k =
  match (h.result, h.failed) with
  | Some v, _ -> k (Ok v)
  | None, Some msg -> k (Error msg)
  | None, None -> h.settle_waiters <- k :: h.settle_waiters

let await t h =
  let module E = Desim.Engine in
  let rec spin () =
    match (h.result, h.failed) with
    | Some v, _ -> v
    | None, Some msg -> failwith ("fpga_handle.await: " ^ msg)
    | None, None ->
        if E.step t.engine then spin ()
        else failwith "fpga_handle.await: simulation drained with no response"
  in
  spin ()

let await_all t hs = List.map (await t) hs
let allocator t = t.alloc
let command_timeouts t = t.command_timeouts
let command_retries t = t.command_retries
let commands_sent t = t.commands_sent
let responses_received t = t.responses_received
let server_busy_ps t = t.server_busy_ps
