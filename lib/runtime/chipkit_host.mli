(** Test-chip host: an on-die RISC-V CPU driving the Beethoven fabric.

    The ChipKIT platform has no external host link — the CPU sits on the
    die and issues RoCC custom instructions straight into the command
    fabric (§II-D "ASIC Platforms"). This module co-simulates a
    {!Riscv.Cpu} with a {!Beethoven.Soc}: the CPU retires one instruction
    per host-clock tick of simulation time; a custom-0 instruction becomes
    a fabric command (rs1/rs2 zero-extended onto the RoCC payloads, funct7
    as the command selector), and an [xd] instruction stalls the pipeline
    until the accelerator's response writes the destination register —
    the RoCC interlock. *)

type t

val create :
  ?cpi_ps:int ->
  ?system:string ->
  ?core:int ->
  Beethoven.Soc.t ->
  program:Riscv.Asm.insn list ->
  t
(** [cpi_ps] — host cycle time (default: the platform's fabric clock).
    [system]/[core] — the fixed routing for this hart's custom
    instructions (default: first system, core 0). *)

val start : t -> on_halt:(unit -> unit) -> unit
(** Begin executing; [on_halt] fires (in simulation time) at [ecall]. *)

val cpu : t -> Riscv.Cpu.t
val instructions_retired : t -> int
val commands_issued : t -> int
