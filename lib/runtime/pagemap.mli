(** OS page-table model for embedded platforms.

    §II-C2: on embedded targets the FPGA shares the host's address space
    and Beethoven obtains *physical* addresses by allocating Linux
    hugepages and reading the page table. This module models that
    machinery: a virtual address space backed by 4 KB pages or 2 MB
    hugepages from a physical frame pool. Regular 4 KB mappings are
    deliberately scattered (as a long-running OS's free list would be), so
    only hugepage-backed buffers are physically contiguous — which is why
    the runtime insists on hugepages for accelerator buffers. *)

type t

val create : phys_bytes:int -> unit -> t
(** A machine with the given physical memory (multiple of 2 MB). *)

val page_bytes : int (** 4096 *)

val huge_bytes : int (** 2 MB *)

type mapping = { vaddr : int; bytes : int; hugepages : bool }

val mmap : t -> ?hugepages:bool -> int -> mapping
(** Allocate a virtual region ([hugepages] defaults to false). Raises
    [Failure] when physical frames (or hugepage slots) are exhausted. *)

val munmap : t -> mapping -> unit

val translate : t -> int -> int
(** Virtual → physical for one address. Raises [Not_found] if unmapped. *)

val physically_contiguous : t -> mapping -> bool
(** Whether the whole region translates to one contiguous physical run —
    the property a physically-addressed DMA engine needs. *)

val phys_regions : t -> mapping -> (int * int) list
(** The (phys_base, length) runs backing the region, in virtual order. *)

val frames_free : t -> int
(** Free 4 KB frames remaining in the regular pool. *)

val total_frames : t -> int
