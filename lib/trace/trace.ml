type arg =
  | Int of int
  | Float of float
  | Str of string

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_txn : int option;
  sp_track : string;
  sp_cat : string;
  sp_name : string;
  sp_start : int;
  mutable sp_stop : int option;
  mutable sp_args : (string * arg) list; (* reverse attach order *)
}

type instant = {
  in_track : string;
  in_cat : string;
  in_name : string;
  in_time : int;
  in_parent : int option;
  in_args : (string * arg) list;
}

type level_sample = { ls_name : string; ls_time : int; ls_value : int }

module S = Desim.Stats

type t = {
  device : string option;
  mutable spans : span list; (* reverse begin order *)
  mutable n_spans : int;
  by_id : (int, span) Hashtbl.t;
  mutable instants : instant list; (* reverse record order *)
  mutable samples : level_sample list; (* reverse record order *)
  mutable next_span : int;
  mutable next_txn : int;
  counters : (string, S.counter) Hashtbl.t;
  mutable counter_order : string list; (* reverse registration order *)
  series : (string, S.series) Hashtbl.t;
  mutable series_order : string list;
  hists : (string, S.histogram) Hashtbl.t;
  mutable hist_order : string list;
}

let create ?device () =
  {
    device;
    spans = [];
    n_spans = 0;
    by_id = Hashtbl.create 256;
    instants = [];
    samples = [];
    next_span = 0;
    next_txn = 0;
    counters = Hashtbl.create 16;
    counter_order = [];
    series = Hashtbl.create 16;
    series_order = [];
    hists = Hashtbl.create 16;
    hist_order = [];
  }

let fresh_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  id

let device t = t.device

(* Every display lane of a device-scoped tracer is prefixed with the
   device label, so traces merged across a cluster keep their origin. *)
let lane t track =
  match t.device with None -> track | Some d -> d ^ "/" ^ track

(* -- spans ---------------------------------------------------------- *)

let begin_span t ~now ?parent ?txn ~track ~cat ~name () =
  let id = t.next_span in
  t.next_span <- id + 1;
  let txn =
    match txn with
    | Some _ as x -> x
    | None -> (
        match parent with
        | None -> None
        | Some p -> (
            match Hashtbl.find_opt t.by_id p with
            | Some sp -> sp.sp_txn
            | None -> None))
  in
  let sp =
    {
      sp_id = id;
      sp_parent = parent;
      sp_txn = txn;
      sp_track = lane t track;
      sp_cat = cat;
      sp_name = name;
      sp_start = now;
      sp_stop = None;
      sp_args = [];
    }
  in
  t.spans <- sp :: t.spans;
  t.n_spans <- t.n_spans + 1;
  Hashtbl.replace t.by_id id sp;
  id

let end_span t ~now id =
  match Hashtbl.find_opt t.by_id id with
  | Some sp when sp.sp_stop = None -> sp.sp_stop <- Some now
  | _ -> ()

(* Record a span whose extent is already known — the retrospective form
   used for intervals measured by the caller (queue waits, lock waits). *)
let complete_span t ~start ~stop ?parent ?txn ~track ~cat ~name ?(args = [])
    () =
  let id = begin_span t ~now:start ?parent ?txn ~track ~cat ~name () in
  (match Hashtbl.find_opt t.by_id id with
  | Some sp -> sp.sp_args <- List.rev args
  | None -> ());
  end_span t ~now:stop id;
  id

let add_arg t id key v =
  match Hashtbl.find_opt t.by_id id with
  | Some sp -> sp.sp_args <- (key, v) :: sp.sp_args
  | None -> ()

let instant t ~now ?parent ~track ~cat ~name ?(args = []) () =
  t.instants <-
    {
      in_track = lane t track;
      in_cat = cat;
      in_name = name;
      in_time = now;
      in_parent = parent;
      in_args = args;
    }
    :: t.instants

(* -- counter registry ----------------------------------------------- *)

let counter_of t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = S.counter () in
      Hashtbl.replace t.counters name c;
      t.counter_order <- name :: t.counter_order;
      c

let add t name by = S.incr ~by (counter_of t name)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> S.count c
  | None -> 0

let series_of t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = S.series () in
      Hashtbl.replace t.series name s;
      t.series_order <- name :: t.series_order;
      s

let observe t name x = S.observe (series_of t name) x

let sample t ~now name v =
  t.samples <- { ls_name = name; ls_time = now; ls_value = v } :: t.samples;
  observe t name (float_of_int v)

let observe_hist t name ~bucket_width x =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = S.histogram ~bucket_width in
        Hashtbl.replace t.hists name h;
        t.hist_order <- name :: t.hist_order;
        h
  in
  S.record h x

let series_quantile t name ~q =
  match Hashtbl.find_opt t.series name with
  | None -> None
  | Some s -> S.quantile_opt s ~q

let series_quantiles t name =
  match Hashtbl.find_opt t.series name with
  | None -> None
  | Some s -> (
      match
        ( S.quantile_opt s ~q:0.50,
          S.quantile_opt s ~q:0.95,
          S.quantile_opt s ~q:0.99 )
      with
      | Some a, Some b, Some c -> Some (a, b, c)
      | _ -> None)

(* Structured accessors: consumers (the tuner, the profile sink, tests)
   read counter values and series quantiles from the registry itself
   instead of re-parsing an emitted sink. *)

module Counters = struct
  let snapshot t =
    List.rev_map (fun name -> (name, counter_value t name)) t.counter_order
end

module Series = struct
  type summary = {
    su_n : int;
    su_mean : float;
    su_p50 : float;
    su_p95 : float;
    su_p99 : float;
    su_max : float;
  }

  let names t = List.rev t.series_order

  let summary t name =
    match Hashtbl.find_opt t.series name with
    | None -> None
    | Some s -> (
        match S.summarize_opt s with
        | None -> None
        | Some sum ->
            let q x = Option.value ~default:0. (S.quantile_opt s ~q:x) in
            Some
              {
                su_n = sum.S.n;
                su_mean = sum.S.mean;
                su_p50 = q 0.50;
                su_p95 = q 0.95;
                su_p99 = q 0.99;
                su_max = sum.S.max;
              })

  let snapshot t =
    List.filter_map
      (fun name -> Option.map (fun s -> (name, s)) (summary t name))
      (names t)
end

let span_count t = t.n_spans
let txn_count t = t.next_txn

(* -- well-formedness ------------------------------------------------ *)

let check ?(strict = true) t =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 256 in
  let spans = List.rev t.spans in
  List.iter
    (fun sp ->
      if Hashtbl.mem seen sp.sp_id then
        bad "span %d (%s): duplicate id" sp.sp_id sp.sp_name;
      Hashtbl.replace seen sp.sp_id ();
      (match sp.sp_stop with
      | None -> bad "span %d (%s): never closed" sp.sp_id sp.sp_name
      | Some stop ->
          if stop < sp.sp_start then
            bad "span %d (%s): stop %d before start %d" sp.sp_id sp.sp_name
              stop sp.sp_start);
      match sp.sp_parent with
      | None -> ()
      | Some p -> (
          match Hashtbl.find_opt t.by_id p with
          | None -> bad "span %d (%s): missing parent %d" sp.sp_id sp.sp_name p
          | Some parent -> (
              if sp.sp_start < parent.sp_start then
                bad "span %d (%s): starts %d before parent %d starts %d"
                  sp.sp_id sp.sp_name sp.sp_start p parent.sp_start;
              match (parent.sp_stop, sp.sp_stop) with
              | Some pstop, _ when sp.sp_start > pstop ->
                  bad "span %d (%s): starts %d after parent %d stopped %d"
                    sp.sp_id sp.sp_name sp.sp_start p pstop
              | Some pstop, Some stop when strict && stop > pstop ->
                  bad "span %d (%s): ends %d after parent %d ended %d"
                    sp.sp_id sp.sp_name stop p pstop
              | _ -> ())))
    spans;
  List.rev !problems

(* -- Chrome trace-event sink ---------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Simulated picoseconds -> trace-format microseconds, as an exact
   decimal string: wall-clock never enters, so output is reproducible. *)
let ts_us ps = Printf.sprintf "%d.%06d" (ps / 1_000_000) (abs ps mod 1_000_000)

let arg_json (k, v) =
  let v =
    match v with
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%.6g" f
    | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  in
  Printf.sprintf "\"%s\":%s" (json_escape k) v

let args_json kvs =
  match kvs with
  | [] -> ""
  | kvs ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat "," (List.map arg_json kvs))

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let events = ref [] in
  let emit s = events := s :: !events in
  (* Track -> tid in first-seen order over spans then instants, so the
     mapping is a pure function of recording order. *)
  let tids = Hashtbl.create 16 in
  let track_order = ref [] in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some id -> id
    | None ->
        let id = Hashtbl.length tids + 1 in
        Hashtbl.replace tids track id;
        track_order := track :: !track_order;
        id
  in
  let spans = List.rev t.spans in
  let instants = List.rev t.instants in
  List.iter (fun sp -> ignore (tid_of sp.sp_track)) spans;
  List.iter (fun i -> ignore (tid_of i.in_track)) instants;
  List.iter
    (fun sp ->
      let stop = Option.value ~default:sp.sp_start sp.sp_stop in
      let args =
        (match sp.sp_txn with None -> [] | Some x -> [ ("txn", Int x) ])
        @ (match sp.sp_parent with
          | None -> []
          | Some p -> [ ("parent", Int p) ])
        @ ("span", Int sp.sp_id)
          :: (if sp.sp_stop = None then [ ("unclosed", Int 1) ] else [])
        @ List.rev sp.sp_args
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d%s}"
           (json_escape sp.sp_name) (json_escape sp.sp_cat)
           (ts_us sp.sp_start)
           (ts_us (stop - sp.sp_start))
           (tid_of sp.sp_track) (args_json args)))
    spans;
  List.iter
    (fun i ->
      let args =
        (match i.in_parent with None -> [] | Some p -> [ ("parent", Int p) ])
        @ i.in_args
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":1,\"tid\":%d%s}"
           (json_escape i.in_name) (json_escape i.in_cat) (ts_us i.in_time)
           (tid_of i.in_track) (args_json args)))
    instants;
  List.iter
    (fun s ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"args\":{\"value\":%d}}"
           (json_escape s.ls_name) (ts_us s.ls_time) s.ls_value))
    (List.rev t.samples);
  (* Thread-name metadata so chrome://tracing labels the lanes. *)
  let meta =
    List.rev_map
      (fun track ->
        Printf.sprintf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
          (Hashtbl.find tids track) (json_escape track))
      !track_order
  in
  pf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  Buffer.add_string buf (String.concat ",\n" (meta @ List.rev !events));
  pf "\n]}\n";
  Buffer.contents buf

(* -- profile sink ---------------------------------------------------- *)

let profile t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let spans = List.rev t.spans in
  let t0 =
    List.fold_left (fun acc sp -> min acc sp.sp_start) max_int spans
  in
  let t1 =
    List.fold_left
      (fun acc sp -> max acc (Option.value ~default:sp.sp_start sp.sp_stop))
      0 spans
  in
  let wall = if spans = [] then 0 else t1 - t0 in
  pf "kernel profile: %d spans, %d transactions, wall %.3f us\n" t.n_spans
    t.next_txn
    (float_of_int wall /. 1e6);
  (* Phase breakdown: per-category totals in first-seen category order. *)
  let cats = Hashtbl.create 8 in
  let cat_order = ref [] in
  List.iter
    (fun sp ->
      let dur = Option.value ~default:sp.sp_start sp.sp_stop - sp.sp_start in
      match Hashtbl.find_opt cats sp.sp_cat with
      | Some (n, total) -> Hashtbl.replace cats sp.sp_cat (n + 1, total + dur)
      | None ->
          Hashtbl.replace cats sp.sp_cat (1, dur);
          cat_order := sp.sp_cat :: !cat_order)
    spans;
  if !cat_order <> [] then begin
    pf "\nphase breakdown (span time by category; phases overlap):\n";
    pf "  %-10s %7s %12s %8s\n" "phase" "spans" "total_us" "%wall";
    List.iter
      (fun cat ->
        let n, total = Hashtbl.find cats cat in
        pf "  %-10s %7d %12.3f %7.1f%%\n" cat n
          (float_of_int total /. 1e6)
          (if wall = 0 then 0. else 100. *. float_of_int total /. float_of_int wall))
      (List.rev !cat_order)
  end;
  (* consume the registry through the structured accessors — the same
     path external consumers (the tuner) use *)
  let counters = Counters.snapshot t in
  if counters <> [] then begin
    pf "\ncounters:\n";
    List.iter (fun (name, v) -> pf "  %-28s %12d\n" name v) counters
  end;
  let series = Series.names t in
  if series <> [] then begin
    pf "\nseries (quantiles over all samples):\n";
    pf "  %-28s %7s %10s %10s %10s %10s %10s\n" "name" "n" "mean" "p50" "p95"
      "p99" "max";
    List.iter
      (fun name ->
        match Series.summary t name with
        | None -> pf "  %-28s %7d %10s\n" name 0 "-"
        | Some sum ->
            pf "  %-28s %7d %10.1f %10.1f %10.1f %10.1f %10.1f\n" name
              sum.Series.su_n sum.Series.su_mean sum.Series.su_p50
              sum.Series.su_p95 sum.Series.su_p99 sum.Series.su_max)
      series
  end;
  let hists = List.rev t.hist_order in
  if hists <> [] then begin
    pf "\nhistograms:\n";
    List.iter
      (fun name ->
        pf "  %s:\n" name;
        let bks = S.buckets (Hashtbl.find t.hists name) in
        let peak =
          List.fold_left (fun acc (_, c) -> max acc c) 1 bks
        in
        List.iter
          (fun (lo, c) ->
            let bar = String.make (c * 40 / peak) '#' in
            pf "    %12.1f %6d %s\n" lo c bar)
          bks)
      hists
  end;
  Buffer.contents b

(* -- ASCII AXI timeline (Fig. 5 view) -------------------------------- *)

let axi_timeline ?time_scale t =
  let spans =
    List.filter (fun sp -> sp.sp_cat = "axi") (List.rev t.spans)
  in
  let beats =
    List.filter (fun i -> i.in_cat = "axi.beat") (List.rev t.instants)
  in
  if spans = [] then "axi timeline: no AXI spans recorded\n"
  else begin
    let t0 =
      List.fold_left (fun acc sp -> min acc sp.sp_start) max_int spans
    in
    let t1 =
      List.fold_left
        (fun acc sp -> max acc (Option.value ~default:sp.sp_start sp.sp_stop))
        0 spans
    in
    let scale =
      match time_scale with
      | Some s when s > 0 -> s
      | _ -> max 1 (((t1 - t0) / 116) + 1)
    in
    let width = min 400 (((t1 - t0) / scale) + 1) in
    let col time = min (width - 1) (max 0 ((time - t0) / scale)) in
    let tracks = ref [] in
    List.iter
      (fun sp ->
        if not (List.mem sp.sp_track !tracks) then
          tracks := sp.sp_track :: !tracks)
      spans;
    let tracks = List.sort compare !tracks in
    let b = Buffer.create 1024 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "axi timeline: %.3f us span, %d ps/col (> issue, - in flight, # beat, | done)\n"
      (float_of_int (t1 - t0) /. 1e6)
      scale;
    List.iter
      (fun track ->
        let lane = Bytes.make width ' ' in
        List.iter
          (fun sp ->
            if sp.sp_track = track then begin
              let c0 = col sp.sp_start in
              let c1 = col (Option.value ~default:sp.sp_start sp.sp_stop) in
              for c = c0 + 1 to c1 - 1 do
                Bytes.set lane c '-'
              done;
              Bytes.set lane c0 '>';
              if c1 > c0 then Bytes.set lane c1 '|'
            end)
          spans;
        List.iter
          (fun i ->
            if i.in_track = track then begin
              let c = col i.in_time in
              if Bytes.get lane c = '-' then Bytes.set lane c '#'
            end)
          beats;
        pf "%-14s %s\n" track (Bytes.to_string lane))
      tracks;
    Buffer.contents b
  end
