(** Structured, deterministic observability for the whole simulation stack.

    A tracer collects three kinds of data:

    - {b Spans}: timed intervals [(start, stop)] in simulated picoseconds,
      arranged in a tree (a span may name a parent) and correlated across
      layers by a {e transaction id} minted when the runtime issues a host
      command. One host command explodes into a tree: command span → NoC
      hops → core execution → reader/writer streams → AXI bursts → DRAM
      activity.
    - {b Instants}: zero-duration marks (a data beat on a bus, a dropped
      packet, a watchdog timeout).
    - {b Counters}: a registry of named monotonic counters, sampled
      time-series (queue depths, outstanding transactions) and latency
      series/histograms with p50/p95/p99 quantiles via {!Desim.Stats}.

    Everything is recorded in simulated time with no wall-clock input, so
    two runs of the same seeded design produce byte-identical sink output.
    Tracing is strictly opt-in: components take a [t option] (or an
    optional argument) and skip all recording when absent. *)

type t

type arg =
  | Int of int
  | Float of float
  | Str of string

val create : ?device:string -> unit -> t
(** [device] scopes the tracer to one device of a cluster: every span and
    instant track it records is prefixed ["<device>/"], so per-device
    traces stay distinguishable when a cluster report merges or compares
    them. Counters and series are unaffected — they are already
    per-tracer. *)

val device : t -> string option
(** The device label given to {!create}, [None] for an unscoped tracer. *)

val fresh_txn : t -> int
(** Mint a new transaction id (sequential from 0). *)

(** {1 Spans} *)

val begin_span :
  t ->
  now:int ->
  ?parent:int ->
  ?txn:int ->
  track:string ->
  cat:string ->
  name:string ->
  unit ->
  int
(** Open a span at simulated time [now] (ps) and return its id. [track] is
    the display lane (e.g. ["core Memcpy/0"], ["ddr0 rd id02"]); [cat] is a
    coarse phase used by the profile report (e.g. ["command"], ["noc"],
    ["axi"], ["dram"], ["mem"], ["exec"]). If [txn] is omitted the span
    inherits its parent's transaction id. *)

val end_span : t -> now:int -> int -> unit
(** Close a span. Closing an unknown or already-closed span id is ignored
    (fault paths may race a completion against a retry). *)

val complete_span :
  t ->
  start:int ->
  stop:int ->
  ?parent:int ->
  ?txn:int ->
  track:string ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  unit ->
  int
(** Record a span whose extent is already known when it is reported — the
    retrospective form for intervals measured by the caller, e.g. the
    queue-wait a request accumulated before the runtime saw it. Equivalent
    to {!begin_span} at [start] immediately closed at [stop]. *)

val add_arg : t -> int -> string -> arg -> unit
(** Attach a key/value to an open or closed span (e.g. the fault-ledger id
    that explains a retry). Unknown ids are ignored. *)

val instant :
  t ->
  now:int ->
  ?parent:int ->
  track:string ->
  cat:string ->
  name:string ->
  ?args:(string * arg) list ->
  unit ->
  unit

(** {1 Counter registry}

    All registry entries are keyed by name and created on first use; names
    are reported in first-registration order. *)

val add : t -> string -> int -> unit
(** Bump a monotonic counter (created at 0 on first use). *)

val counter_value : t -> string -> int
(** Current value of a counter; 0 if never bumped. *)

val sample : t -> now:int -> string -> int -> unit
(** Record an instantaneous level (queue depth, outstanding transactions).
    Feeds both the Chrome counter track and a quantile series. *)

val observe : t -> string -> float -> unit
(** Feed one value into a named series (latencies, sizes). *)

val observe_hist : t -> string -> bucket_width:float -> float -> unit
(** Feed one value into a named histogram (e.g. NoC hop latency). The
    bucket width is fixed by the first call for a given name. *)

val series_quantiles : t -> string -> (float * float * float) option
(** (p50, p95, p99) of a named series; [None] if absent or empty. *)

val series_quantile : t -> string -> q:float -> float option
(** Arbitrary quantile of a named series (e.g. the p99.9 a serving SLO
    report needs); [None] if absent or empty. *)

(** {1 Structured snapshots}

    Whole-registry accessors, so consumers (the closed-loop tuner, the
    profile sink, tests) read counter values and queue-depth quantiles
    directly instead of re-parsing an emitted JSON/text sink. *)

module Counters : sig
  val snapshot : t -> (string * int) list
  (** Every counter with its current value, in first-registration
      order. *)
end

module Series : sig
  type summary = {
    su_n : int;
    su_mean : float;
    su_p50 : float;
    su_p95 : float;
    su_p99 : float;
    su_max : float;
  }

  val names : t -> string list
  (** Registered series names in first-registration order (including
      empty ones). *)

  val summary : t -> string -> summary option
  (** Sample count, mean and p50/p95/p99/max of a named series; [None]
      if absent or empty. *)

  val snapshot : t -> (string * summary) list
  (** Every non-empty series with its summary, in first-registration
      order. *)
end

(** {1 Well-formedness} *)

val check : ?strict:bool -> t -> string list
(** Structural validation: every span closed, ids unique, parents exist,
    [stop >= start], and children begin within their parent's lifetime.
    With [strict] (default) children must also {e end} within their
    parent; pass [~strict:false] for traces of fault campaigns, where
    at-least-once delivery lets a duplicate response outlive the command
    span that already resolved. Returns human-readable problems, [[]] if
    clean. *)

val span_count : t -> int
val txn_count : t -> int

(** {1 Sinks} *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto).
    Timestamps are integer microsecond fractions derived from simulated
    picoseconds ([ts] in us with 6-digit precision); output is fully
    deterministic for a deterministic simulation. *)

val profile : t -> string
(** Plain-text per-kernel profile: wall time, phase breakdown by span
    category, counter table, and per-series quantiles. *)

val axi_timeline : ?time_scale:int -> t -> string
(** ASCII timeline of AXI spans and beats (one lane per AXI track), the
    Fig. 5 view regenerated from recorded spans. [time_scale] is
    picoseconds per column; when omitted it is chosen to fit the whole
    trace in ~120 columns. *)
