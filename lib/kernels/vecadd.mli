(** The paper's running example (Fig. 2/3): a vector-addition Core with one
    Reader and one Writer. Streams 32-bit words from [vec_addr], adds
    [addend], and writes the result to [out_addr]. *)

val command : Beethoven.Cmd_spec.command

val system : n_cores:int -> Beethoven.Config.system
(** The ["VecAdd"] system alone, for composing into multi-system SoCs
    (the serving layer deploys it next to the memcpy system). *)

val config : ?n_cores:int -> unit -> Beethoven.Config.t
(** The [MyAcceleratorConfig] equivalent: one system named ["VecAdd"]. *)

val behavior : Beethoven.Soc.behavior

val run :
  ?n_cores:int ->
  ?n_eles:int ->
  platform:Platform.Device.t ->
  unit ->
  (int32 array * int32 array * int)
(** End-to-end: allocate, fill with a deterministic pattern, copy to the
    device, run one command per core over disjoint slices, copy back.
    Returns (expected, actual, wall-clock picoseconds). *)
