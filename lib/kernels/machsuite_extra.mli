(** Four more MachSuite kernels beyond the paper's Fig. 6 subset,
    exercising memory patterns the first five don't: FFT (strided
    butterflies), SpMV (data-dependent irregular reads), KMP string
    search (pure streaming over a long text), and merge sort
    (read-modify-write passes). Same structure as {!Machsuite}:
    functional reference, low-effort Beethoven core behavior with real
    memory traffic, end-to-end verification. These extend the framework's
    application set; they are not part of the paper's evaluation and the
    benches label them as extensions. *)

type kernel = Fft | Spmv | Kmp | Merge_sort

val all : kernel list
val name : kernel -> string
val description : kernel -> string
val data_size : kernel -> int
val beethoven_cycles : kernel -> int

val config : kernel -> n_cores:int -> Beethoven.Config.t

val system : kernel -> n_cores:int -> Beethoven.Config.system
(** The kernel's system alone, for composing into multi-system SoCs —
    the serving layer deploys ["Sort"] next to memcpy/vecadd so request
    mixes are genuinely heterogeneous. *)

val command : Beethoven.Cmd_spec.command
(** The shared ["launch"] command: [in1]/[in2]/[out] buffer addresses
    (kernels with [in2_bytes k = 0] ignore [in2]); responds [1L] once
    the result is written back. *)

val in1_bytes : kernel -> int
val in2_bytes : kernel -> int
val out_bytes : kernel -> int
(** Exact device-buffer footprints for the kernel's fixed [data_size]
    working set (what a host must allocate to launch it). *)

val behavior : kernel -> Beethoven.Soc.behavior

type run_result = {
  n_cores : int;
  wall_ps : int;
  measured_ops_per_sec : float;
  verified : bool;
}

val run :
  kernel -> n_cores:int -> platform:Platform.Device.t -> unit -> run_result

(** Functional references, exposed for direct unit testing. *)
module Ref : sig
  val fft : float array -> float array -> unit
  (** In-place radix-2 DIT FFT over (re, im); length must be a power of
      two. *)

  val spmv :
    values:float array ->
    col_idx:int array ->
    row_ptr:int array ->
    x:float array ->
    float array

  val kmp : pattern:Bytes.t -> text:Bytes.t -> int
  (** Number of (possibly overlapping) matches. *)

  val merge_sort : int array -> int array
end
