(** Seeded fault campaigns over the memcpy microbenchmark.

    Replays the §III-A memcpy kernel through the full host path (malloc,
    DMA up, command, await, DMA down, byte-for-byte verification) with a
    {!Fault.Injector} threaded through the whole stack, and reports what
    was injected, what the recovery machinery (ECC scrub, AXI retry,
    watchdog resend, quarantine + rerouting) absorbed, and what it cost
    in throughput. Same plan (same seed) — bit-identical campaign. *)

val config : n_cores:int -> Beethoven.Config.t
(** The memcpy system used by campaigns, with a configurable core count
    (>= 2 cores gives the watchdog somewhere to reroute after a
    quarantine). *)

type result = {
  seed : int;
  iters : int;
  bytes : int;
  injected : int;
  recovered : int;
  unrecovered : int;
  pending : int;  (** lost-message faults never resolved either way *)
  quarantines : int;
  ecc_corrected : int;
  ecc_uncorrectable : int;
  command_timeouts : int;
  command_retries : int;
  failed_commands : int;  (** awaits that raised (recovery exhausted) *)
  corrupt_iters : int;  (** iterations whose round-tripped data mismatched *)
  wall_ps : int;
  bandwidth_gbs : float;  (** end-to-end: payload bytes / total sim time *)
  data_ok : bool;
  counters : string;  (** [Fault.Injector.counters_line] digest *)
  log : Fault.Log.entry list;
}

val run :
  ?bytes:int ->
  ?iters:int ->
  ?n_cores:int ->
  ?policy:Fault.Policy.t ->
  ?tracer:Trace.t ->
  plan:Fault.Plan.t ->
  platform:Platform.Device.t ->
  unit ->
  result
(** Run [iters] (default 4) round-trips of [bytes] (default 64 KB) under
    [plan]. Never hangs: the driver runs under a hard event budget and
    the queue is drained (with {!Desim.Engine.drain_or_fail}) before the
    result is assembled. [tracer] records the whole campaign as spans;
    note at-least-once delivery means duplicate responses can outlive
    their root command span, so validate such traces with
    [Trace.check ~strict:false]. *)

val clean : result -> bool
(** No unrecovered faults, nothing pending, data verified — what the
    default recoverable-only mix must achieve. *)

val render : result -> string

type curve_point = {
  cp_scale : float;
  cp_result : result;
  cp_relative : float;  (** throughput relative to the fault-free run *)
}

val degradation :
  ?seed:int ->
  ?bytes:int ->
  ?iters:int ->
  ?scales:float list ->
  platform:Platform.Device.t ->
  unit ->
  curve_point list
(** Throughput-degradation curve: the default recoverable mix scaled by
    each factor in [scales] (0.0 = fault-free baseline). *)

val render_curve : curve_point list -> string
