(** The MachSuite subset of Table I, as Beethoven multi-core accelerators
    plus functional references and baseline (Vitis HLS / Spatial)
    performance models.

    Each kernel has: a pure-OCaml reference used for correctness checking;
    a Beethoven core behavior whose timing follows the paper's low-effort
    methodology (1 inner-loop iteration per cycle, except GeMM's
    medium-effort x8 MAC parallelism), with real memory traffic through
    Readers/Writers; and analytic baseline models encoding the documented
    limits of the HLS/Spatial implementations (initiation intervals under
    loop-carried dependences, unroll factors, clock selection). Baselines
    are models, not vendor-tool runs — see DESIGN.md §4. *)

type kernel = Gemm | Nw | Stencil2d | Stencil3d | Md_knn

val all : kernel list
val name : kernel -> string
val description : kernel -> string
val data_size : kernel -> int (** the N of Table I *)

val parallelism : kernel -> string (** High / Medium / None, per Table I *)

val inner_ops : kernel -> int
(** Inner-loop iterations of one kernel invocation (MACs, DP cells,
    stencil points, pairwise interactions). *)

val beethoven_cycles : kernel -> int
(** Fabric cycles of compute for one invocation on one core (excludes
    memory streaming, which is simulated). *)

val hls_ops_per_sec : kernel -> float
(** Modeled Vitis HLS single-kernel throughput (invocations/s). *)

val spatial_ops_per_sec : kernel -> float

val config : kernel -> n_cores:int -> Beethoven.Config.t
val behavior : kernel -> Beethoven.Soc.behavior

val auto_cores : kernel -> Platform.Device.t -> int
(** Largest core count that still floorplans on the platform (capped at
    48) — how the multi-core sizes of Fig. 6 are chosen. *)

type run_result = {
  n_cores : int;
  rounds_per_core : int;
  wall_ps : int;
  measured_ops_per_sec : float;
  single_latency_ps : int;  (** one invocation on one core, command to
                                response, runtime included *)
  verified : bool;
}

val run :
  ?rounds:int ->
  kernel ->
  n_cores:int ->
  platform:Platform.Device.t ->
  unit ->
  run_result
(** Simulate [rounds] invocations on each of [n_cores] cores (distinct
    buffers per core), verify every output against the reference, and
    measure steady-state throughput. *)
