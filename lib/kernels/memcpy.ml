module B = Beethoven
module Soc = B.Soc

type impl = Pure_hdl | Beethoven | Beethoven_no_tlp | Beethoven_16beat | Hls

let impl_name = function
  | Pure_hdl -> "Pure-HDL"
  | Beethoven -> "Beethoven"
  | Beethoven_no_tlp -> "Beethoven (No-TLP)"
  | Beethoven_16beat -> "Beethoven (16-beat)"
  | Hls -> "HLS"

let all_impls = [ Hls; Beethoven; Beethoven_no_tlp; Beethoven_16beat; Pure_hdl ]

let burst_beats = function Hls | Beethoven_16beat -> 16 | _ -> 64

let tuning = function
  | Pure_hdl -> (64, 1, false)
  | Beethoven -> (64, 4, true)
  | Beethoven_no_tlp -> (64, 4, false)
  | Beethoven_16beat -> (16, 4, true)
  | Hls -> (16, 4, false)

let command =
  B.Cmd_spec.make ~name:"memcpy" ~funct:0 ~response_bits:32
    [
      ("src", B.Cmd_spec.Address);
      ("dst", B.Cmd_spec.Address);
      ("bytes", B.Cmd_spec.Uint 32);
    ]

(* The well-tuned memcpy system (64-beat bursts, 4 in flight, TLP), the
   shape every full-host-path campaign and the serving layer deploy. *)
let system ~n_cores =
  B.Config.system ~name:"Memcpy" ~n_cores
    ~read_channels:
      [
        B.Config.read_channel ~name:"src" ~data_bytes:64 ~burst_beats:64
          ~max_in_flight:4 ~use_tlp:true ~buffer_beats:(64 * 4) ();
      ]
    ~write_channels:
      [
        B.Config.write_channel ~name:"dst" ~data_bytes:64 ~burst_beats:64
          ~max_in_flight:4 ~use_tlp:true ~buffer_beats:(64 * 4) ();
      ]
    ~commands:[ command ]
    ~kernel_resources:(Platform.Resources.make ~clb:60 ~lut:250 ~ff:300 ())
    ()

let config impl =
  let beats, in_flight, tlp = tuning impl in
  B.Config.make ~name:("memcpy_" ^ impl_name impl)
    [
      B.Config.system ~name:"Memcpy" ~n_cores:1
        ~read_channels:
          [
            B.Config.read_channel ~name:"src" ~data_bytes:64
              ~burst_beats:beats ~max_in_flight:in_flight ~use_tlp:tlp
              ~buffer_beats:(beats * max 2 in_flight) ();
          ]
        ~write_channels:
          [
            B.Config.write_channel ~name:"dst" ~data_bytes:64
              ~burst_beats:beats ~max_in_flight:in_flight ~use_tlp:tlp
              ~buffer_beats:(beats * max 2 in_flight) ();
          ]
        ~commands:[ command ]
        ~kernel_resources:(Platform.Resources.make ~clb:60 ~lut:250 ~ff:300 ())
        ();
    ]

(* Forward each arriving beat straight into the writer. The item width
   follows the platform's AXI beat (64 B on the discrete shells, 16 B
   on Kria), so the same behavior serves a heterogeneous fleet. *)
let behavior : Soc.behavior =
 fun ctx beats ~respond ->
  let args =
    B.Cmd_spec.unpack command
      (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
  in
  let get name = Int64.to_int (List.assoc name args) in
  let src = get "src" and dst = get "dst" and bytes = get "bytes" in
  let reader = Soc.reader ctx "src" in
  let writer = Soc.writer ctx "dst" in
  let item = min 64 (Soc.Reader.beat_bytes reader) in
  Soc.Writer.begin_txn writer ~addr:dst ~bytes ~on_done:(fun () ->
      respond (Int64.of_int bytes));
  Soc.Reader.stream reader ~addr:src ~bytes ~item_bytes:item
    ~on_item:(fun ~offset ->
      let n = min item (bytes - offset) in
      Soc.copy_within ctx.Soc.soc ~src:(src + offset) ~dst:(dst + offset)
        ~bytes:n;
      (* the writer's item is the channel's 64 B port word; push once per
         completed word, however many AXI beats the platform needed to
         carry it in *)
      if (offset + n) mod 64 = 0 || offset + n >= bytes then
        Soc.Writer.push writer ~on_accept:(fun () -> ()) ())
    ~on_done:(fun () -> ())
    ()

type result = {
  bytes : int;
  wall_ps : int;
  bandwidth_gbs : float;
  verified : bool;
}

let run ?trace ?tracer ?seed ~impl ~bytes ~platform () =
  let design = B.Elaborate.elaborate (config impl) platform in
  let soc = Soc.create ?trace ?tracer design ~behaviors:(fun _ -> behavior) in
  let handle = Runtime.Handle.create soc in
  let src = 1 lsl 20 and dst = 1 lsl 22 in
  (match seed with
  | None ->
      for i = 0 to (bytes / 4) - 1 do
        Soc.write_u32 soc (src + (i * 4))
          (Int32.of_int ((i * 2654435761) land 0x3FFFFFFF))
      done
  | Some seed ->
      (* seeded fill: same seed, same source image, byte for byte *)
      let rng = Fault.Rng.create ~seed:(Int64.of_int seed) in
      for i = 0 to (bytes / 8) - 1 do
        Soc.write_u64 soc (src + (i * 8)) (Fault.Rng.next rng)
      done);
  let h =
    Runtime.Handle.send handle ~system:"Memcpy" ~core:0 ~cmd:command
      ~args:
        [
          ("src", Int64.of_int src);
          ("dst", Int64.of_int dst);
          ("bytes", Int64.of_int bytes);
        ]
  in
  ignore (Runtime.Handle.await handle h);
  (* wall time of the copy itself: the first-to-last DRAM activity window,
     isolating the memory path from host latency as the paper does *)
  let traffic =
    Dram.bytes_read (Soc.dram soc) + Dram.bytes_written (Soc.dram soc)
  in
  let bw_total = Dram.achieved_bandwidth_gbs (Soc.dram soc) in
  let wall =
    if bw_total <= 0. then 0
    else int_of_float (float_of_int traffic /. bw_total *. 1000.)
  in
  let verified =
    let ok = ref true in
    for i = 0 to (bytes / 4) - 1 do
      if Soc.read_u32 soc (src + (i * 4)) <> Soc.read_u32 soc (dst + (i * 4))
      then ok := false
    done;
    !ok
  in
  let bandwidth_gbs =
    if wall = 0 then 0. else float_of_int bytes /. float_of_int wall *. 1000.
  in
  { bytes; wall_ps = wall; bandwidth_gbs; verified }

type tuning_point = {
  tp_burst_beats : int;
  tp_in_flight : int;
  tp_tlp : bool;
  tp_bandwidth_gbs : float;
}

let config_custom ~burst_beats ~in_flight ~tlp =
  B.Config.make ~name:"memcpy_tuned"
    [
      B.Config.system ~name:"Memcpy" ~n_cores:1
        ~read_channels:
          [
            B.Config.read_channel ~name:"src" ~data_bytes:64
              ~burst_beats ~max_in_flight:in_flight ~use_tlp:tlp
              ~buffer_beats:(burst_beats * max 2 in_flight) ();
          ]
        ~write_channels:
          [
            B.Config.write_channel ~name:"dst" ~data_bytes:64
              ~burst_beats ~max_in_flight:in_flight ~use_tlp:tlp
              ~buffer_beats:(burst_beats * max 2 in_flight) ();
          ]
        ~commands:[ command ] ();
    ]

let tune ?(bytes = 256 * 1024) ~platform () =
  let measure ~burst_beats ~in_flight ~tlp =
    let design =
      B.Elaborate.elaborate (config_custom ~burst_beats ~in_flight ~tlp)
        platform
    in
    let soc = Soc.create design ~behaviors:(fun _ -> behavior) in
    let handle = Runtime.Handle.create soc in
    let h =
      Runtime.Handle.send handle ~system:"Memcpy" ~core:0 ~cmd:command
        ~args:
          [
            ("src", 1048576L);
            ("dst", 8388608L);
            ("bytes", Int64.of_int bytes);
          ]
    in
    ignore (Runtime.Handle.await handle h);
    let dram = Soc.dram soc in
    let traffic = Dram.bytes_read dram + Dram.bytes_written dram in
    let bw = Dram.achieved_bandwidth_gbs dram in
    if bw <= 0. then 0.
    else float_of_int bytes /. (float_of_int traffic /. bw) 
  in
  let points =
    List.concat_map
      (fun burst ->
        List.concat_map
          (fun in_flight ->
            List.map
              (fun tlp ->
                {
                  tp_burst_beats = burst;
                  tp_in_flight = in_flight;
                  tp_tlp = tlp;
                  tp_bandwidth_gbs = measure ~burst_beats:burst ~in_flight ~tlp;
                })
              [ false; true ])
          [ 1; 2; 4 ])
      [ 8; 16; 32; 64 ]
  in
  List.sort
    (fun a b -> Float.compare b.tp_bandwidth_gbs a.tp_bandwidth_gbs)
    points
