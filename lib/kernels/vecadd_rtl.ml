(* The paper's Fig. 2 core, written for real in the RTL DSL and run inside
   the composed SoC through the Rtl_core bridge: the adder below is the
   hardware that actually computes the results in simulation. The add is
   performed in place (read and write the same vector), as in Fig. 2. *)

module B = Beethoven

(* Command layout (single RoCC beat, LSB-first packing):
   payload1       = vec_addr
   payload2[31:0] = addend, payload2[51:32] = n_eles *)
let command =
  B.Cmd_spec.make ~name:"vec_add" ~funct:0 ~response_bits:32
    [
      ("vec_addr", B.Cmd_spec.Address);
      ("addend", B.Cmd_spec.Uint 32);
      ("n_eles", B.Cmd_spec.Uint 20);
    ]

let circuit () =
  let open Hw.Signal in
  let req_valid = input "req_valid" 1 in
  let _req_funct = input "req_funct" 7 in
  let req_p1 = input "req_p1" 64 in
  let req_p2 = input "req_p2" 64 in
  let resp_ready = input "resp_ready" 1 in
  let in_req_ready = input "vec_in_req_ready" 1 in
  let in_data_valid = input "vec_in_data_valid" 1 in
  let in_data = input "vec_in_data" 32 in
  let out_req_ready = input "vec_out_req_ready" 1 in
  let out_data_ready = input "vec_out_data_ready" 1 in

  (* command handshake: accept only when idle and both memory request
     ports can take the stream requests (Fig. 2's io.req.ready) *)
  let active = wire 1 in
  let req_ready = lnot active &: in_req_ready &: out_req_ready in
  let req_fire = req_valid &: req_ready in

  let addend = reg ~enable:req_fire (select req_p2 ~hi:31 ~lo:0) -- "addend" in
  let n_eles = reg ~enable:req_fire (select req_p2 ~hi:51 ~lo:32) -- "n_eles" in
  let len_bytes = uresize (concat [ select req_p2 ~hi:51 ~lo:32; zero 2 ]) 32 in

  (* streaming datapath: one element per cycle when both sides are ready *)
  let out_data_valid = in_data_valid &: active in
  let in_data_ready = out_data_ready &: active in
  let elem_fire = out_data_valid &: out_data_ready in
  let count = wire 20 in
  let done_ = active &: (count ==: n_eles) &: reduce_or n_eles in
  let resp_fire = done_ &: resp_ready in
  assign count
    (reg
       (mux2 resp_fire (zero 20)
          (mux2 elem_fire (count +: of_int ~width:20 1) count)));
  assign active (reg (mux2 req_fire vdd (mux2 resp_fire gnd active)));

  Hw.Circuit.create ~name:"vecadd_core"
    ~outputs:
      [
        ("req_ready", req_ready);
        ("resp_valid", done_);
        ("resp_data", uresize count 64);
        ("vec_in_req_valid", req_fire);
        ("vec_in_req_addr", req_p1);
        ("vec_in_req_len", len_bytes);
        ("vec_in_data_ready", in_data_ready);
        ("vec_out_req_valid", req_fire);
        ("vec_out_req_addr", req_p1);
        ("vec_out_req_len", len_bytes);
        ("vec_out_data_valid", out_data_valid);
        ("vec_out_data", in_data +: addend);
      ]

let config ?(n_cores = 1) () =
  B.Config.make ~name:"vecadd_rtl"
    [
      B.Config.system ~name:"VecAddRTL" ~n_cores
        ~read_channels:
          [ B.Config.read_channel ~name:"vec_in" ~data_bytes:4 () ]
        ~write_channels:
          [ B.Config.write_channel ~name:"vec_out" ~data_bytes:4 () ]
        ~commands:[ command ]
        ~kernel_circuit:(circuit ())
        ();
    ]

let behavior = B.Rtl_core.behavior ~build:circuit ()

let run ?(n_cores = 1) ?(n_eles = 256) ~platform () =
  let design = B.Elaborate.elaborate (config ~n_cores ()) platform in
  let soc = B.Soc.create design ~behaviors:(fun _ -> behavior) in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let addend = 1000l in
  let bufs =
    Array.init n_cores (fun core ->
        let p = H.malloc handle (n_eles * 4) in
        let host = H.host_bytes handle p in
        for i = 0 to n_eles - 1 do
          Bytes.set_int32_le host (i * 4) (Int32.of_int (((core * 31) + i) land 0xFFFF))
        done;
        p)
  in
  let pending = ref 0 in
  Array.iter
    (fun p ->
      incr pending;
      H.copy_to_fpga handle p ~on_done:(fun () -> decr pending))
    bufs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "vecadd_rtl: DMA incomplete";
  let hs =
    Array.to_list
      (Array.mapi
         (fun core p ->
           H.send handle ~system:"VecAddRTL" ~core ~cmd:command
             ~args:
               [
                 ("vec_addr", Int64.of_int p.H.rp_addr);
                 ("addend", Int64.of_int32 addend);
                 ("n_eles", Int64.of_int n_eles);
               ])
         bufs)
  in
  let resps = H.await_all handle hs in
  let pending = ref 0 in
  Array.iter
    (fun p ->
      incr pending;
      H.copy_from_fpga handle p ~on_done:(fun () -> decr pending))
    bufs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "vecadd_rtl: DMA out incomplete";
  let ok = ref true in
  Array.iteri
    (fun core p ->
      let host = H.host_bytes handle p in
      for i = 0 to n_eles - 1 do
        let expect =
          Int32.add (Int32.of_int (((core * 31) + i) land 0xFFFF)) addend
        in
        if Bytes.get_int32_le host (i * 4) <> expect then ok := false
      done)
    bufs;
  (!ok, resps, Desim.Engine.now (H.engine handle))
