(* Seeded fault campaign over the memcpy microbenchmark, driven through
   the FULL host path — malloc, host->device DMA, command submission,
   await, device->host DMA, data verification — so every fault class in
   the plan has a chance to fire: DMA faults on the copies, NoC
   drops/delays and core hangs on the command path, AXI errors and DRAM
   flips on the device-side memory traffic of the kernel itself. *)

module B = Beethoven
module Soc = B.Soc
module H = Runtime.Handle

let config ~n_cores =
  B.Config.make ~name:"memcpy_campaign" [ Memcpy.system ~n_cores ]

type result = {
  seed : int;
  iters : int;
  bytes : int;
  injected : int;
  recovered : int;
  unrecovered : int;
  pending : int;  (** lost-message faults never resolved either way *)
  quarantines : int;
  ecc_corrected : int;
  ecc_uncorrectable : int;
  command_timeouts : int;
  command_retries : int;
  failed_commands : int;  (** awaits that raised (recovery exhausted) *)
  corrupt_iters : int;  (** iterations whose round-tripped data mismatched *)
  wall_ps : int;
  bandwidth_gbs : float;  (** end-to-end: payload bytes / total sim time *)
  data_ok : bool;
  counters : string;  (** [Fault.Injector.counters_line] digest *)
  log : Fault.Log.entry list;
}

(* Deterministic per-iteration payload: campaigns must be reproducible
   down to the data, so the fill derives only from (seed, iter). *)
let fill_pattern buf ~seed ~iter =
  let rng = Fault.Rng.create ~seed:(Int64.of_int ((seed * 7919) + iter)) in
  for i = 0 to (Bytes.length buf / 8) - 1 do
    Bytes.set_int64_le buf (i * 8) (Fault.Rng.next rng)
  done

let run ?(bytes = 64 * 1024) ?(iters = 4) ?(n_cores = 2)
    ?(policy = Fault.Policy.default) ?tracer ~plan ~platform () =
  if bytes mod 8 <> 0 then invalid_arg "Campaign.run: bytes must be 8-aligned";
  let inj = Fault.Injector.create plan in
  let design = B.Elaborate.elaborate (config ~n_cores) platform in
  let soc =
    Soc.create ?tracer ~fault:inj ~policy design
      ~behaviors:(fun _ -> Memcpy.behavior)
  in
  let h = H.create ~poison_freed:true soc in
  let engine = Soc.engine soc in
  (* Step until [flag], with a hard event budget: an unrecovered hang must
     surface as a failure, never as a wedged simulator. *)
  let wait flag =
    let budget = ref 50_000_000 in
    while not !flag do
      if not (Desim.Engine.step engine) then
        failwith "fault campaign: simulation drained mid-operation";
      decr budget;
      if !budget <= 0 then
        failwith "fault campaign: event budget exhausted (livelock?)"
    done
  in
  let failed_commands = ref 0 in
  let corrupt_iters = ref 0 in
  for iter = 0 to iters - 1 do
    let src = H.malloc h bytes and dst = H.malloc h bytes in
    let expect = Bytes.create bytes in
    fill_pattern expect ~seed:plan.Fault.Plan.seed ~iter;
    Bytes.blit expect 0 (H.host_bytes h src) 0 bytes;
    let up = ref false in
    H.copy_to_fpga h src ~on_done:(fun () -> up := true);
    wait up;
    let completed =
      try
        let handle =
          H.send h ~system:"Memcpy" ~core:(iter mod n_cores)
            ~cmd:Memcpy.command
            ~args:
              [
                ("src", Int64.of_int src.H.rp_addr);
                ("dst", Int64.of_int dst.H.rp_addr);
                ("bytes", Int64.of_int bytes);
              ]
        in
        ignore (H.await h handle);
        true
      with Failure _ ->
        (* recovery exhausted: every core quarantined *)
        incr failed_commands;
        false
    in
    let down = ref false in
    H.copy_from_fpga h dst ~on_done:(fun () -> down := true);
    wait down;
    if not (completed && Bytes.equal expect (H.host_bytes h dst)) then
      incr corrupt_iters;
    H.mfree h src;
    H.mfree h dst
  done;
  (* Flush leftover timers (watchdog deadlines armed for commands that
     already resolved); a campaign must always leave a drainable queue. *)
  Desim.Engine.drain_or_fail engine;
  let wall_ps = Desim.Engine.now engine in
  let total_bytes = iters * bytes in
  let ecc = Fault.Injector.ecc inj in
  {
    seed = plan.Fault.Plan.seed;
    iters;
    bytes;
    injected = Fault.Injector.total_injected inj;
    recovered = Fault.Injector.total_recovered inj;
    unrecovered = Fault.Injector.total_unrecovered inj;
    pending = Fault.Injector.pending_lost inj;
    quarantines = Fault.Injector.quarantines inj;
    ecc_corrected = Fault.Ecc.corrected ecc;
    ecc_uncorrectable = Fault.Ecc.uncorrectable ecc;
    command_timeouts = H.command_timeouts h;
    command_retries = H.command_retries h;
    failed_commands = !failed_commands;
    corrupt_iters = !corrupt_iters;
    wall_ps;
    bandwidth_gbs =
      (if wall_ps = 0 then 0.
       else float_of_int total_bytes /. float_of_int wall_ps *. 1000.);
    data_ok = !corrupt_iters = 0;
    counters = Fault.Injector.counters_line inj;
    log = Fault.Injector.entries inj;
  }

let clean r = r.unrecovered = 0 && r.pending = 0 && r.data_ok

let render r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "fault campaign: seed=%d, %d x %d KB memcpy round-trips\n" r.seed r.iters
    (r.bytes / 1024);
  pf "  injected     %6d\n" r.injected;
  pf "  recovered    %6d  (ECC corrected %d, uncorrectable %d)\n" r.recovered
    r.ecc_corrected r.ecc_uncorrectable;
  pf "  unrecovered  %6d  (pending %d)\n" r.unrecovered r.pending;
  pf "  watchdog     %6d timeouts, %d resends, %d quarantine%s\n"
    r.command_timeouts r.command_retries r.quarantines
    (if r.quarantines = 1 then "" else "s");
  pf "  commands     %6d failed, %d corrupt round-trip%s\n" r.failed_commands
    r.corrupt_iters
    (if r.corrupt_iters = 1 then "" else "s");
  pf "  wall         %6.1f us end-to-end, %.2f GB/s effective\n"
    (float_of_int r.wall_ps /. 1e6)
    r.bandwidth_gbs;
  pf "  data         %s\n" (if r.data_ok then "VERIFIED" else "CORRUPTED");
  pf "  counters     %s\n" r.counters;
  Buffer.contents b

type curve_point = {
  cp_scale : float;
  cp_result : result;
  cp_relative : float;  (** throughput relative to the fault-free run *)
}

let degradation ?(seed = 42) ?(bytes = 32 * 1024) ?(iters = 2)
    ?(scales = [ 0.0; 0.5; 1.0; 2.0; 4.0 ]) ~platform () =
  let point scale =
    let plan =
      Fault.Plan.scale scale (Fault.Plan.default_recoverable ~seed ())
    in
    run ~plan ~bytes ~iters ~platform ()
  in
  let base = point 0.0 in
  List.map
    (fun scale ->
      let r = if scale = 0.0 then base else point scale in
      {
        cp_scale = scale;
        cp_result = r;
        cp_relative =
          (if base.bandwidth_gbs <= 0. then 0.
           else r.bandwidth_gbs /. base.bandwidth_gbs);
      })
    scales

let render_curve points =
  let b = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%8s %10s %9s %9s %12s %9s %6s\n" "scale" "injected" "recovered"
    "unrecov" "GB/s" "relative" "data";
  List.iter
    (fun p ->
      let r = p.cp_result in
      pf "%8.2f %10d %9d %9d %12.2f %8.0f%% %6s\n" p.cp_scale r.injected
        r.recovered r.unrecovered r.bandwidth_gbs (100. *. p.cp_relative)
        (if r.data_ok then "ok" else "BAD"))
    points;
  Buffer.contents b
