(** Fig. 2 as real RTL: the vector-add Core written in the {!Hw} DSL and
    executed inside the composed SoC through {!Beethoven.Rtl_core} — the
    32-bit adder in this netlist is what computes the results. The add is
    in place (one Reader and one Writer on the same vector), as in the
    paper's listing. *)

val command : Beethoven.Cmd_spec.command
(** Single-beat command: [vec_addr] (payload 1), [addend]+[n_eles]
    (payload 2). *)

val circuit : unit -> Hw.Circuit.t
(** A fresh instance of the core netlist (also used for Verilog emission
    and resource estimation via [kernel_circuit]). *)

val config : ?n_cores:int -> unit -> Beethoven.Config.t
val behavior : Beethoven.Soc.behavior

val run :
  ?n_cores:int ->
  ?n_eles:int ->
  platform:Platform.Device.t ->
  unit ->
  bool * int64 list * int
(** End-to-end: returns (outputs correct, per-core responses, simulated
    picoseconds). *)
