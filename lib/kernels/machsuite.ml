module B = Beethoven
module Soc = B.Soc
module R = Platform.Resources

type kernel = Gemm | Nw | Stencil2d | Stencil3d | Md_knn

let all = [ Gemm; Nw; Stencil2d; Stencil3d; Md_knn ]

let name = function
  | Gemm -> "GeMM"
  | Nw -> "NW"
  | Stencil2d -> "Stencil2D"
  | Stencil3d -> "Stencil3D"
  | Md_knn -> "MD-KNN"

let description = function
  | Gemm -> "O(N^3) matrix multiply"
  | Nw -> "O(N^2) string alignment"
  | Stencil2d -> "2D stencil pattern"
  | Stencil3d -> "3D stencil pattern"
  | Md_knn -> "N-body, k-nearest-neighbors approx."

let data_size = function
  | Gemm -> 256
  | Nw -> 256
  | Stencil2d -> 256
  | Stencil3d -> 32
  | Md_knn -> 1024

let knn_k = 32

let parallelism = function
  | Gemm -> "High"
  | Nw -> "None"
  | Stencil2d -> "Medium"
  | Stencil3d -> "High"
  | Md_knn -> "High"

let inner_ops k =
  let n = data_size k in
  match k with
  | Gemm -> n * n * n
  | Nw -> n * n
  | Stencil2d -> (n - 2) * (n - 2)
  | Stencil3d -> (n - 2) * (n - 2) * (n - 2)
  | Md_knn -> n * knn_k

(* Low-effort cycle model: one inner iteration per fabric cycle, except
   GeMM's medium-effort implementation (8 parallel MACs, the
   outer/middle-loop parallelization the paper describes). *)
let gemm_macs_per_cycle = 8

let beethoven_cycles k =
  let n = data_size k in
  match k with
  | Gemm -> (n * n * n / gemm_macs_per_cycle) + (n * n / gemm_macs_per_cycle)
  | Nw -> (n * n) + (4 * n)
  | Stencil2d -> n * n
  | Stencil3d -> n * n * n
  | Md_knn -> n * knn_k

(* ------------------------------------------------------------------ *)
(* Baseline models (documented in DESIGN.md §4): invocations per second *)
(* ------------------------------------------------------------------ *)

(* Vitis HLS selects its own clock (250 MHz achievable for these kernels);
   throughput limited by achievable II and unroll before congestion. *)
let hls_ops_per_sec k =
  let clock = 250.0e6 in
  let ops = float_of_int (inner_ops k) in
  match k with
  | Gemm -> clock *. 16. /. ops (* unroll 16, II=1 *)
  | Nw -> clock /. 4. /. ops (* loop-carried dependence: II=4 *)
  | Stencil2d -> clock *. 4. /. ops (* unroll 4 *)
  | Stencil3d -> clock *. 2. /. ops (* unroll 2 (port-limited) *)
  | Md_knn -> clock *. 4. /. 5. /. ops (* unroll 4, fp accumulation II=5 *)

(* Spatial at the 125 MHz default clock; similar pragmas, better II on NW. *)
let spatial_ops_per_sec k =
  let clock = 125.0e6 in
  let ops = float_of_int (inner_ops k) in
  match k with
  | Gemm -> clock *. 16. /. ops
  | Nw -> clock /. 2. /. ops
  | Stencil2d -> clock *. 4. /. ops
  | Stencil3d -> clock *. 2. /. ops
  | Md_knn -> clock *. 4. /. 5. /. ops

(* ------------------------------------------------------------------ *)
(* Functional references                                               *)
(* ------------------------------------------------------------------ *)

module Ref = struct
  (* int32 semantics via OCaml int, truncated on store *)
  let gemm n a b =
    let c = Array.make (n * n) 0 in
    for i = 0 to n - 1 do
      for k = 0 to n - 1 do
        let aik = a.((i * n) + k) in
        if aik <> 0 then
          for j = 0 to n - 1 do
            c.((i * n) + j) <- c.((i * n) + j) + (aik * b.((k * n) + j))
          done
      done
    done;
    Array.map (fun v -> v land 0xFFFFFFFF) c

  (* Needleman-Wunsch with MachSuite's scoring (match +1, mismatch -1,
     gap -1). Returns the two aligned strings, each padded to 2n bytes
     with '_'. *)
  let nw n seqa seqb =
    let gap = -1 in
    let score a b = if a = b then 1 else -1 in
    let m = Array.make_matrix (n + 1) (n + 1) 0 in
    for i = 0 to n do
      m.(i).(0) <- i * gap
    done;
    for j = 0 to n do
      m.(0).(j) <- j * gap
    done;
    for i = 1 to n do
      for j = 1 to n do
        let d = m.(i - 1).(j - 1) + score (Bytes.get seqa (i - 1)) (Bytes.get seqb (j - 1)) in
        let u = m.(i - 1).(j) + gap in
        let l = m.(i).(j - 1) + gap in
        m.(i).(j) <- max d (max u l)
      done
    done;
    let out_a = Buffer.create (2 * n) and out_b = Buffer.create (2 * n) in
    let rec back i j =
      if i > 0 || j > 0 then begin
        if
          i > 0 && j > 0
          && m.(i).(j)
             = m.(i - 1).(j - 1)
               + score (Bytes.get seqa (i - 1)) (Bytes.get seqb (j - 1))
        then begin
          Buffer.add_char out_a (Bytes.get seqa (i - 1));
          Buffer.add_char out_b (Bytes.get seqb (j - 1));
          back (i - 1) (j - 1)
        end
        else if i > 0 && m.(i).(j) = m.(i - 1).(j) + gap then begin
          Buffer.add_char out_a (Bytes.get seqa (i - 1));
          Buffer.add_char out_b '-';
          back (i - 1) j
        end
        else begin
          Buffer.add_char out_a '-';
          Buffer.add_char out_b (Bytes.get seqb (j - 1));
          back i (j - 1)
        end
      end
    in
    back n n;
    let pad buf =
      let s = Buffer.to_bytes buf in
      (* traceback emits reversed strings *)
      let len = Bytes.length s in
      let r = Bytes.make (2 * n) '_' in
      for i = 0 to len - 1 do
        Bytes.set r i (Bytes.get s (len - 1 - i))
      done;
      r
    in
    (pad out_a, pad out_b)

  (* 3x3 stencil with a fixed filter; borders copied through. *)
  let filter2d = [| 1; 2; 1; 2; 4; 2; 1; 2; 1 |]

  let stencil2d n grid =
    let out = Array.copy grid in
    for r = 1 to n - 2 do
      for c = 1 to n - 2 do
        let acc = ref 0 in
        for dr = -1 to 1 do
          for dc = -1 to 1 do
            acc :=
              !acc
              + (filter2d.(((dr + 1) * 3) + dc + 1)
                 * grid.(((r + dr) * n) + c + dc))
          done
        done;
        out.((r * n) + c) <- !acc land 0xFFFFFFFF
      done
    done;
    out

  (* MachSuite stencil3d: out = C0*center + C1*(sum of 6 face neighbors),
     boundary passed through. *)
  let stencil3d n grid =
    let c0 = 2 and c1 = 1 in
    let idx i j k = (((i * n) + j) * n) + k in
    let out = Array.copy grid in
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        for k = 1 to n - 2 do
          let s =
            grid.(idx (i - 1) j k) + grid.(idx (i + 1) j k)
            + grid.(idx i (j - 1) k) + grid.(idx i (j + 1) k)
            + grid.(idx i j (k - 1)) + grid.(idx i j (k + 1))
          in
          out.(idx i j k) <- ((c0 * grid.(idx i j k)) + (c1 * s)) land 0xFFFFFFFF
        done
      done
    done;
    out

  (* Lennard-Jones force accumulation over a given neighbor list
     (MachSuite md/knn). positions: 3n floats; nl: n*k indices. *)
  let md_knn n k pos nl =
    let force = Array.make (3 * n) 0.0 in
    for i = 0 to n - 1 do
      let ix = pos.(3 * i) and iy = pos.((3 * i) + 1) and iz = pos.((3 * i) + 2) in
      let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
      for j = 0 to k - 1 do
        let nb = nl.((i * k) + j) in
        let dx = ix -. pos.(3 * nb)
        and dy = iy -. pos.((3 * nb) + 1)
        and dz = iz -. pos.((3 * nb) + 2) in
        let r2inv = 1.0 /. ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
        let r6inv = r2inv *. r2inv *. r2inv in
        let potential = r6inv *. ((1.5 *. r6inv) -. 2.0) in
        let f = r2inv *. potential in
        fx := !fx +. (dx *. f);
        fy := !fy +. (dy *. f);
        fz := !fz +. (dz *. f)
      done;
      force.(3 * i) <- !fx;
      force.((3 * i) + 1) <- !fy;
      force.((3 * i) + 2) <- !fz
    done;
    force
end

(* ------------------------------------------------------------------ *)
(* Buffer sizes and layouts                                            *)
(* ------------------------------------------------------------------ *)

let in1_bytes k =
  let n = data_size k in
  match k with
  | Gemm -> n * n * 4
  | Nw -> n
  | Stencil2d -> n * n * 4
  | Stencil3d -> n * n * n * 4
  | Md_knn -> 3 * n * 8

let in2_bytes k =
  let n = data_size k in
  match k with
  | Gemm -> n * n * 4
  | Nw -> n
  | Stencil2d | Stencil3d -> 0
  | Md_knn -> n * knn_k * 4

let out_bytes k =
  let n = data_size k in
  match k with
  | Gemm -> n * n * 4
  | Nw -> 4 * n
  | Stencil2d -> n * n * 4
  | Stencil3d -> n * n * n * 4
  | Md_knn -> 3 * n * 8

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

let command =
  B.Cmd_spec.make ~name:"launch" ~funct:0 ~response_bits:32
    [
      ("in1", B.Cmd_spec.Address);
      ("in2", B.Cmd_spec.Address);
      ("out", B.Cmd_spec.Address);
    ]

(* Per-core kernel logic estimates, reflecting the paper's utilization
   limits: GeMM/MD-KNN LUT-bound, the stencils and NW BRAM-bound via
   their scratchpads. *)
let kernel_resources = function
  | Gemm -> R.make ~clb:9000 ~lut:52000 ~ff:28000 ~dsp:64 ()
  | Nw -> R.make ~clb:1400 ~lut:7000 ~ff:5000 ()
  | Stencil2d -> R.make ~clb:1800 ~lut:9000 ~ff:7000 ()
  | Stencil3d -> R.make ~clb:2200 ~lut:11000 ~ff:9000 ()
  | Md_knn -> R.make ~clb:17000 ~lut:105000 ~ff:60000 ~dsp:96 ()

let scratchpads k =
  let n = data_size k in
  match k with
  | Gemm ->
      [
        B.Config.scratchpad ~name:"a_tile" ~data_bits:32 ~n_datas:(8 * n) ();
        B.Config.scratchpad ~name:"c_acc" ~data_bits:32 ~n_datas:(8 * n) ();
      ]
  | Nw ->
      [
        (* full DP matrix (16-bit scores) + 2-bit traceback *)
        B.Config.scratchpad ~name:"dp" ~data_bits:16 ~n_datas:(n * n) ();
        B.Config.scratchpad ~name:"tb" ~data_bits:2 ~n_datas:(n * n) ();
      ]
  | Stencil2d ->
      [ B.Config.scratchpad ~name:"tile" ~data_bits:32 ~n_datas:(n * n) () ]
  | Stencil3d ->
      [
        B.Config.scratchpad ~name:"grid_in" ~data_bits:32 ~n_datas:(n * n * n) ();
        B.Config.scratchpad ~name:"grid_out" ~data_bits:32 ~n_datas:(n * n * n) ();
      ]
  | Md_knn ->
      [ B.Config.scratchpad ~name:"positions" ~data_bits:64 ~n_datas:(3 * n) () ]

let config k ~n_cores =
  B.Config.make ~name:("machsuite_" ^ name k)
    [
      B.Config.system ~name:(name k) ~n_cores
        ~read_channels:
          [
            B.Config.read_channel ~name:"in1" ~data_bytes:4 ();
            B.Config.read_channel ~name:"in2" ~data_bytes:4 ();
          ]
        ~write_channels:[ B.Config.write_channel ~name:"out" ~data_bytes:4 () ]
        ~scratchpads:(scratchpads k) ~commands:[ command ]
        ~kernel_resources:(kernel_resources k) ();
    ]

let auto_cores k platform =
  let fits n =
    match B.Floorplan.place (config k ~n_cores:n) platform with
    | exception Failure _ -> false
    | _ -> true
  in
  let rec grow n = if n < 48 && fits (n + 1) then grow (n + 1) else n in
  if fits 1 then grow 1 else 0

(* ------------------------------------------------------------------ *)
(* Behaviors                                                           *)
(* ------------------------------------------------------------------ *)

let read_i32_array soc addr n =
  Array.init n (fun i -> Int32.to_int (Soc.read_u32 soc (addr + (4 * i))) land 0xFFFFFFFF)

let write_i32_array soc addr a =
  Array.iteri (fun i v -> Soc.write_u32 soc (addr + (4 * i)) (Int32.of_int v)) a

let read_f64_array soc addr n =
  Array.init n (fun i -> Int64.float_of_bits (Soc.read_u64 soc (addr + (8 * i))))

let write_f64_array soc addr a =
  Array.iteri
    (fun i v -> Soc.write_u64 soc (addr + (8 * i)) (Int64.bits_of_float v))
    a

(* Shared behavior skeleton: bulk-read inputs, model the compute, compute
   functionally, bulk-write the output. *)
let behavior k : Soc.behavior =
 fun ctx beats ~respond ->
  let args =
    B.Cmd_spec.unpack command
      (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
  in
  let get nm = Int64.to_int (List.assoc nm args) in
  let in1 = get "in1" and in2 = get "in2" and out = get "out" in
  let soc = ctx.Soc.soc in
  let n = data_size k in
  let compute_and_write () =
    Soc.after_cycles ctx (beethoven_cycles k) (fun () ->
        (match k with
        | Gemm ->
            let a = read_i32_array soc in1 (n * n) in
            let b = read_i32_array soc in2 (n * n) in
            write_i32_array soc out (Ref.gemm n a b)
        | Nw ->
            let seqa = Bytes.create n and seqb = Bytes.create n in
            Soc.blit_out soc ~src_addr:in1 ~dst:seqa;
            Soc.blit_out soc ~src_addr:in2 ~dst:seqb;
            let la, lb = Ref.nw n seqa seqb in
            Soc.blit_in soc ~src:la ~dst_addr:out;
            Soc.blit_in soc ~src:lb ~dst_addr:(out + (2 * n))
        | Stencil2d ->
            let g = read_i32_array soc in1 (n * n) in
            write_i32_array soc out (Ref.stencil2d n g)
        | Stencil3d ->
            let g = read_i32_array soc in1 (n * n * n) in
            write_i32_array soc out (Ref.stencil3d n g)
        | Md_knn ->
            let pos = read_f64_array soc in1 (3 * n) in
            let nl = read_i32_array soc in2 (n * knn_k) in
            write_f64_array soc out (Ref.md_knn n knn_k pos nl));
        let writer = Soc.writer ctx "out" in
        Soc.Writer.bulk writer ~addr:out ~bytes:(out_bytes k)
          ~on_done:(fun () -> respond 1L))
  in
  let r1 = Soc.reader ctx "in1" in
  if in2_bytes k > 0 then begin
    let r2 = Soc.reader ctx "in2" in
    let pending = ref 2 in
    let arrive () =
      decr pending;
      if !pending = 0 then compute_and_write ()
    in
    Soc.Reader.bulk r1 ~addr:in1 ~bytes:(in1_bytes k) ~on_done:arrive;
    Soc.Reader.bulk r2 ~addr:in2 ~bytes:(in2_bytes k) ~on_done:arrive
  end
  else
    Soc.Reader.bulk r1 ~addr:in1 ~bytes:(in1_bytes k)
      ~on_done:compute_and_write

(* ------------------------------------------------------------------ *)
(* Workload generation + verification                                  *)
(* ------------------------------------------------------------------ *)

let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let fill_inputs k ~seed in1_host in2_host =
  let rand = lcg (seed + 17) in
  let n = data_size k in
  (match k with
  | Gemm ->
      for i = 0 to (n * n) - 1 do
        Bytes.set_int32_le in1_host (4 * i) (Int32.of_int (rand () mod 100));
        Bytes.set_int32_le in2_host (4 * i) (Int32.of_int (rand () mod 100))
      done
  | Nw ->
      let bases = "ACGT" in
      for i = 0 to n - 1 do
        Bytes.set in1_host i bases.[rand () mod 4];
        Bytes.set in2_host i bases.[rand () mod 4]
      done
  | Stencil2d ->
      for i = 0 to (n * n) - 1 do
        Bytes.set_int32_le in1_host (4 * i) (Int32.of_int (rand () mod 1000))
      done
  | Stencil3d ->
      for i = 0 to (n * n * n) - 1 do
        Bytes.set_int32_le in1_host (4 * i) (Int32.of_int (rand () mod 1000))
      done
  | Md_knn ->
      for i = 0 to (3 * n) - 1 do
        Bytes.set_int64_le in1_host (8 * i)
          (Int64.bits_of_float (float_of_int (rand () mod 1000) /. 50.0 +. 0.5))
      done;
      for i = 0 to n - 1 do
        for j = 0 to knn_k - 1 do
          (* neighbor list: any index != i *)
          let nb = (i + 1 + (rand () mod (n - 1))) mod n in
          Bytes.set_int32_le in2_host (4 * ((i * knn_k) + j)) (Int32.of_int nb)
        done
      done)

let expected_output k in1_host in2_host =
  let n = data_size k in
  let i32s b count = Array.init count (fun i ->
      Int32.to_int (Bytes.get_int32_le b (4 * i)) land 0xFFFFFFFF) in
  match k with
  | Gemm ->
      let a = i32s in1_host (n * n) and b = i32s in2_host (n * n) in
      let c = Ref.gemm n a b in
      let out = Bytes.create (out_bytes k) in
      Array.iteri (fun i v -> Bytes.set_int32_le out (4 * i) (Int32.of_int v)) c;
      out
  | Nw ->
      let la, lb = Ref.nw n in1_host in2_host in
      Bytes.cat la lb
  | Stencil2d ->
      let g = i32s in1_host (n * n) in
      let o = Ref.stencil2d n g in
      let out = Bytes.create (out_bytes k) in
      Array.iteri (fun i v -> Bytes.set_int32_le out (4 * i) (Int32.of_int v)) o;
      out
  | Stencil3d ->
      let g = i32s in1_host (n * n * n) in
      let o = Ref.stencil3d n g in
      let out = Bytes.create (out_bytes k) in
      Array.iteri (fun i v -> Bytes.set_int32_le out (4 * i) (Int32.of_int v)) o;
      out
  | Md_knn ->
      let pos = Array.init (3 * n) (fun i ->
          Int64.float_of_bits (Bytes.get_int64_le in1_host (8 * i))) in
      let nl = i32s in2_host (n * knn_k) in
      let f = Ref.md_knn n knn_k pos nl in
      let out = Bytes.create (out_bytes k) in
      Array.iteri
        (fun i v -> Bytes.set_int64_le out (8 * i) (Int64.bits_of_float v))
        f;
      out

type run_result = {
  n_cores : int;
  rounds_per_core : int;
  wall_ps : int;
  measured_ops_per_sec : float;
  single_latency_ps : int;
  verified : bool;
}

let run ?(rounds = 1) k ~n_cores ~platform () =
  let design = B.Elaborate.elaborate (config k ~n_cores) platform in
  let mem_needed =
    n_cores * (in1_bytes k + max 4096 (in2_bytes k) + out_bytes k)
    + (1 lsl 20)
  in
  let soc =
    Soc.create
      ~memory_bytes:(max (64 * 1024 * 1024) (mem_needed * 2))
      design
      ~behaviors:(fun _ -> behavior k)
  in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  (* per-core buffers *)
  let allocs =
    Array.init n_cores (fun core ->
        let p1 = H.malloc handle (in1_bytes k) in
        let p2 = H.malloc handle (max 4096 (in2_bytes k)) in
        let po = H.malloc handle (out_bytes k) in
        fill_inputs k ~seed:(core * 7919) (H.host_bytes handle p1)
          (H.host_bytes handle p2);
        (p1, p2, po))
  in
  let pending_dma = ref 0 in
  Array.iter
    (fun (p1, p2, _) ->
      incr pending_dma;
      H.copy_to_fpga handle p1 ~on_done:(fun () -> decr pending_dma);
      incr pending_dma;
      H.copy_to_fpga handle p2 ~on_done:(fun () -> decr pending_dma))
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending_dma <> 0 then failwith "machsuite: input DMA incomplete";
  let send core =
    let p1, p2, po = allocs.(core) in
    H.send handle ~system:(name k) ~core ~cmd:command
      ~args:
        [
          ("in1", Int64.of_int p1.H.rp_addr);
          ("in2", Int64.of_int p2.H.rp_addr);
          ("out", Int64.of_int po.H.rp_addr);
        ]
  in
  (* single-invocation latency, measured in isolation *)
  let t0 = Desim.Engine.now (H.engine handle) in
  ignore (H.await handle (send 0));
  let single_latency_ps = Desim.Engine.now (H.engine handle) - t0 in
  (* steady-state phase: [rounds] invocations per core, all in flight *)
  let t1 = Desim.Engine.now (H.engine handle) in
  let hs = ref [] in
  for _ = 1 to rounds do
    for core = 0 to n_cores - 1 do
      hs := send core :: !hs
    done
  done;
  ignore (H.await_all handle !hs);
  let t2 = Desim.Engine.now (H.engine handle) in
  let wall_ps = t2 - t1 in
  let measured_ops_per_sec =
    float_of_int (rounds * n_cores) /. (float_of_int wall_ps *. 1e-12)
  in
  (* verify every core's output *)
  let verified = ref true in
  let pending = ref 0 in
  Array.iter
    (fun (_, _, po) ->
      incr pending;
      H.copy_from_fpga handle po ~on_done:(fun () -> decr pending))
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "machsuite: output DMA incomplete";
  Array.iteri
    (fun core (p1, p2, po) ->
      let expect =
        expected_output k (H.host_bytes handle p1) (H.host_bytes handle p2)
      in
      if not (Bytes.equal expect (H.host_bytes handle po)) then begin
        verified := false;
        ignore core
      end)
    allocs;
  {
    n_cores;
    rounds_per_core = rounds;
    wall_ps;
    measured_ops_per_sec;
    single_latency_ps;
    verified = !verified;
  }
