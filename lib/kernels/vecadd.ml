module B = Beethoven
module Soc = B.Soc

let command =
  B.Cmd_spec.make ~name:"vec_add" ~funct:0 ~response_bits:32
    [
      ("addend", B.Cmd_spec.Uint 32);
      ("vec_addr", B.Cmd_spec.Address);
      ("out_addr", B.Cmd_spec.Address);
      ("n_eles", B.Cmd_spec.Uint 20);
    ]

let system ~n_cores =
  B.Config.system ~name:"VecAdd" ~n_cores
    ~read_channels:[ B.Config.read_channel ~name:"vec_in" ~data_bytes:4 () ]
    ~write_channels:
      [ B.Config.write_channel ~name:"vec_out" ~data_bytes:4 () ]
    ~commands:[ command ]
    ~kernel_resources:(Platform.Resources.make ~clb:120 ~lut:600 ~ff:700 ())
    ()

let config ?(n_cores = 1) () =
  B.Config.make ~name:"vecadd" [ system ~n_cores ]

(* The Fig. 2 state machine at transaction level: each arriving word is
   incremented and pushed to the writer; the command completes when the
   final write response lands. *)
let behavior : Soc.behavior =
 fun ctx beats ~respond ->
  let args =
    B.Cmd_spec.unpack command
      (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
  in
  let get name = Int64.to_int (List.assoc name args) in
  let addend = Int64.to_int32 (List.assoc "addend" args) in
  let vec_addr = get "vec_addr" in
  let out_addr = get "out_addr" in
  let n_eles = get "n_eles" in
  let bytes = n_eles * 4 in
  let reader = Soc.reader ctx "vec_in" in
  let writer = Soc.writer ctx "vec_out" in
  let processed = ref 0 in
  Soc.Writer.begin_txn writer ~addr:out_addr ~bytes ~on_done:(fun () ->
      respond (Int64.of_int !processed));
  Soc.Reader.stream reader ~addr:vec_addr ~bytes
    ~on_item:(fun ~offset ->
      let v = Soc.read_u32 ctx.Soc.soc (vec_addr + offset) in
      Soc.write_u32 ctx.Soc.soc (out_addr + offset) (Int32.add v addend);
      incr processed;
      Soc.Writer.push writer ~on_accept:(fun () -> ()) ())
    ~on_done:(fun () -> ())
    ()

let run ?(n_cores = 1) ?(n_eles = 4096) ~platform () =
  let config = config ~n_cores () in
  let design = B.Elaborate.elaborate config platform in
  let soc = Soc.create design ~behaviors:(fun _ -> behavior) in
  let handle = Runtime.Handle.create soc in
  let bytes = n_eles * 4 in
  let input = Runtime.Handle.malloc handle bytes in
  let output = Runtime.Handle.malloc handle bytes in
  let host_in = Runtime.Handle.host_bytes handle input in
  let expected = Array.make n_eles 0l in
  let addend = 0xCAFEl in
  for i = 0 to n_eles - 1 do
    let v = Int32.of_int ((i * 7) land 0xFFFF) in
    Bytes.set_int32_le host_in (i * 4) v;
    expected.(i) <- Int32.add v addend
  done;
  let started = ref false in
  let results = ref [] in
  Runtime.Handle.copy_to_fpga handle input ~on_done:(fun () ->
      started := true;
      (* split the vector across cores *)
      let per_core = n_eles / n_cores in
      for core = 0 to n_cores - 1 do
        let first = core * per_core in
        let count =
          if core = n_cores - 1 then n_eles - first else per_core
        in
        let h =
          Runtime.Handle.send handle ~system:"VecAdd" ~core ~cmd:command
            ~args:
              [
                ("addend", Int64.of_int32 addend);
                ("vec_addr", Int64.of_int (input.Runtime.Handle.rp_addr + (first * 4)));
                ("out_addr", Int64.of_int (output.Runtime.Handle.rp_addr + (first * 4)));
                ("n_eles", Int64.of_int count);
              ]
        in
        results := h :: !results
      done);
  (* drive the simulation to completion of all handles *)
  Desim.Engine.run (Runtime.Handle.engine handle);
  if not !started then failwith "vecadd: DMA never completed";
  List.iter
    (fun h ->
      match Runtime.Handle.try_get h with
      | Some _ -> ()
      | None -> failwith "vecadd: command did not complete")
    !results;
  let actual = Array.make n_eles 0l in
  let done_ = ref false in
  Runtime.Handle.copy_from_fpga handle output ~on_done:(fun () ->
      done_ := true);
  Desim.Engine.run (Runtime.Handle.engine handle);
  if not !done_ then failwith "vecadd: DMA out never completed";
  let host_out = Runtime.Handle.host_bytes handle output in
  for i = 0 to n_eles - 1 do
    actual.(i) <- Bytes.get_int32_le host_out (i * 4)
  done;
  (expected, actual, Desim.Engine.now (Runtime.Handle.engine handle))
