(** The §III-A MemCpy microbenchmark, in the four methodologies the paper
    compares. All four share the same datapath (read beats, forward to the
    writer); they differ only in memory-protocol policy — burst length,
    AXI-ID usage, and outstanding-transaction depth — exactly the knobs the
    paper isolates:

    - [Pure_hdl]: 64-beat bursts, single AXI ID, one transaction in flight
      per direction (the hand-written Chisel described in the paper).
    - [Beethoven]: 64-beat bursts, transaction-level parallelism (distinct
      IDs, several in flight).
    - [Beethoven_no_tlp]: same, but all transactions on one ID.
    - [Beethoven_16beat]: 16-beat bursts with TLP — the configuration the
      paper compiled to show the HLS slowdown is not just burst length.
    - [Hls]: 16-beat bursts on a single ID (what Vitis HLS actually
      emitted despite the 64-beat annotation), several in flight. *)

type impl = Pure_hdl | Beethoven | Beethoven_no_tlp | Beethoven_16beat | Hls

val impl_name : impl -> string
val all_impls : impl list

val command : Beethoven.Cmd_spec.command
val config : impl -> Beethoven.Config.t
val behavior : Beethoven.Soc.behavior

val system : n_cores:int -> Beethoven.Config.system
(** The well-tuned [Beethoven] memcpy system at a chosen core count — the
    building block the fault campaign and the serving layer compose into
    their SoCs (possibly next to other systems). *)

type result = {
  bytes : int;
  wall_ps : int;  (** command arrival at core → final write response *)
  bandwidth_gbs : float;  (** copied bytes / wall (counts each byte once) *)
  verified : bool;
}

val run :
  ?trace:Axi.Trace.t ->
  ?tracer:Trace.t ->
  ?seed:int ->
  impl:impl ->
  bytes:int ->
  platform:Platform.Device.t ->
  unit ->
  result
(** Copy [bytes] (device-resident) and verify contents. Wall time excludes
    host DMA and runtime overhead so the figure isolates the memory path,
    as the paper's microbenchmark does. [tracer] threads the structured
    tracer through the whole stack (see {!Beethoven.Soc.create}); [seed]
    selects a deterministic PRNG source fill so two runs with the same
    seed are byte-identical (the default fill is a fixed multiplicative
    pattern, also deterministic). *)

val burst_beats : impl -> int

type tuning_point = {
  tp_burst_beats : int;
  tp_in_flight : int;
  tp_tlp : bool;
  tp_bandwidth_gbs : float;
}

val tune :
  ?bytes:int -> platform:Platform.Device.t -> unit -> tuning_point list
(** Grid-search the Reader/Writer knobs (burst length, outstanding
    transactions, AXI-ID policy) by short simulation — the device-specific
    tuning §II-B says Beethoven performs for each platform. Sorted best
    first. *)
