module B = Beethoven
module Soc = B.Soc
module R = Platform.Resources

type kernel = Fft | Spmv | Kmp | Merge_sort

let all = [ Fft; Spmv; Kmp; Merge_sort ]

let name = function
  | Fft -> "FFT"
  | Spmv -> "SpMV"
  | Kmp -> "KMP"
  | Merge_sort -> "Sort"

let description = function
  | Fft -> "radix-2 DIT fast Fourier transform"
  | Spmv -> "sparse matrix-vector multiply (CRS)"
  | Kmp -> "Knuth-Morris-Pratt string search"
  | Merge_sort -> "bottom-up merge sort"

let data_size = function
  | Fft -> 1024
  | Spmv -> 512
  | Kmp -> 32768
  | Merge_sort -> 2048

(* SpMV row lengths are deterministic (4..11 nonzeros per row). *)
let spmv_row_len row = 4 + ((row * 7) mod 8)

let spmv_nnz =
  let n = data_size Spmv in
  let acc = ref 0 in
  for row = 0 to n - 1 do
    acc := !acc + spmv_row_len row
  done;
  !acc

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let beethoven_cycles k =
  let n = data_size k in
  match k with
  | Fft -> n / 2 * log2i n (* one butterfly per cycle *)
  | Spmv -> spmv_nnz (* one MAC per cycle *)
  | Kmp -> n (* one text byte per cycle *)
  | Merge_sort -> n * log2i n (* one compare-exchange per cycle *)

module Ref = struct
  let fft re im =
    let n = Array.length re in
    if n <> Array.length im || n land (n - 1) <> 0 then
      invalid_arg "Ref.fft: power-of-two complex input";
    (* bit reversal *)
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let t = re.(i) in re.(i) <- re.(!j); re.(!j) <- t;
        let t = im.(i) in im.(i) <- im.(!j); im.(!j) <- t
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done;
    (* butterflies *)
    let len = ref 2 in
    while !len <= n do
      let ang = -2.0 *. Float.pi /. float_of_int !len in
      let half = !len / 2 in
      let i = ref 0 in
      while !i < n do
        for k = 0 to half - 1 do
          let w_re = Float.cos (ang *. float_of_int k) in
          let w_im = Float.sin (ang *. float_of_int k) in
          let a = !i + k and b = !i + k + half in
          let t_re = (w_re *. re.(b)) -. (w_im *. im.(b)) in
          let t_im = (w_re *. im.(b)) +. (w_im *. re.(b)) in
          re.(b) <- re.(a) -. t_re;
          im.(b) <- im.(a) -. t_im;
          re.(a) <- re.(a) +. t_re;
          im.(a) <- im.(a) +. t_im
        done;
        i := !i + !len
      done;
      len := !len * 2
    done

  let spmv ~values ~col_idx ~row_ptr ~x =
    let n = Array.length row_ptr - 1 in
    Array.init n (fun row ->
        let acc = ref 0.0 in
        for k = row_ptr.(row) to row_ptr.(row + 1) - 1 do
          acc := !acc +. (values.(k) *. x.(col_idx.(k)))
        done;
        !acc)

  let kmp ~pattern ~text =
    let m = Bytes.length pattern and n = Bytes.length text in
    if m = 0 then invalid_arg "Ref.kmp: empty pattern";
    let fail = Array.make m 0 in
    let k = ref 0 in
    for q = 1 to m - 1 do
      while !k > 0 && Bytes.get pattern !k <> Bytes.get pattern q do
        k := fail.(!k - 1)
      done;
      if Bytes.get pattern !k = Bytes.get pattern q then incr k;
      fail.(q) <- !k
    done;
    let matches = ref 0 in
    let q = ref 0 in
    for i = 0 to n - 1 do
      while !q > 0 && Bytes.get pattern !q <> Bytes.get text i do
        q := fail.(!q - 1)
      done;
      if Bytes.get pattern !q = Bytes.get text i then incr q;
      if !q = m then begin
        incr matches;
        q := fail.(!q - 1)
      end
    done;
    !matches

  let merge_sort a =
    let n = Array.length a in
    let src = Array.copy a and dst = Array.make n 0 in
    let src = ref src and dst = ref dst in
    let width = ref 1 in
    while !width < n do
      let i = ref 0 in
      while !i < n do
        let mid = min (!i + !width) n in
        let hi = min (!i + (2 * !width)) n in
        let l = ref !i and r = ref mid in
        for k = !i to hi - 1 do
          if !l < mid && (!r >= hi || !src.(!l) <= !src.(!r)) then begin
            !dst.(k) <- !src.(!l);
            incr l
          end
          else begin
            !dst.(k) <- !src.(!r);
            incr r
          end
        done;
        i := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    !src
end

(* ------------------------------------------------------------------ *)
(* Buffer layouts                                                      *)
(* ------------------------------------------------------------------ *)

let in1_bytes k =
  let n = data_size k in
  match k with
  | Fft -> 2 * n * 8
  | Spmv ->
      (* row_ptr (n+1 x i32), col_idx (nnz x i32), padding to 8, values *)
      let head = ((n + 1) * 4) + (spmv_nnz * 4) in
      let head = (head + 7) / 8 * 8 in
      head + (spmv_nnz * 8)
  | Kmp -> n
  | Merge_sort -> n * 4

let in2_bytes k =
  match k with
  | Fft | Merge_sort -> 0
  | Spmv -> data_size Spmv * 8 (* x vector *)
  | Kmp -> 64 (* [plen:i32][pattern bytes] *)

let out_bytes k =
  let n = data_size k in
  match k with
  | Fft -> 2 * n * 8
  | Spmv -> n * 8
  | Kmp -> 8
  | Merge_sort -> n * 4

let command =
  B.Cmd_spec.make ~name:"launch" ~funct:0 ~response_bits:32
    [
      ("in1", B.Cmd_spec.Address);
      ("in2", B.Cmd_spec.Address);
      ("out", B.Cmd_spec.Address);
    ]

let kernel_resources = function
  | Fft -> R.make ~clb:6000 ~lut:34000 ~ff:22000 ~dsp:48 ()
  | Spmv -> R.make ~clb:2500 ~lut:14000 ~ff:9000 ~dsp:16 ()
  | Kmp -> R.make ~clb:900 ~lut:4500 ~ff:3000 ()
  | Merge_sort -> R.make ~clb:1600 ~lut:8000 ~ff:6000 ()

let scratchpads k =
  let n = data_size k in
  match k with
  | Fft ->
      [ B.Config.scratchpad ~name:"stage" ~data_bits:128 ~n_datas:n () ]
  | Spmv -> [ B.Config.scratchpad ~name:"x_vec" ~data_bits:64 ~n_datas:n () ]
  | Kmp -> []
  | Merge_sort ->
      [ B.Config.scratchpad ~name:"runs" ~data_bits:32 ~n_datas:(2 * n) () ]

let system k ~n_cores =
  B.Config.system ~name:(name k) ~n_cores
    ~read_channels:
      [
        B.Config.read_channel ~name:"in1" ~data_bytes:8 ();
        B.Config.read_channel ~name:"in2" ~data_bytes:8 ();
      ]
    ~write_channels:[ B.Config.write_channel ~name:"out" ~data_bytes:8 () ]
    ~scratchpads:(scratchpads k) ~commands:[ command ]
    ~kernel_resources:(kernel_resources k) ()

let config k ~n_cores =
  B.Config.make ~name:("machsuite_extra_" ^ name k) [ system k ~n_cores ]

(* ------------------------------------------------------------------ *)
(* Behaviors                                                           *)
(* ------------------------------------------------------------------ *)

let read_f64 soc addr i = Int64.float_of_bits (Soc.read_u64 soc (addr + (8 * i)))
let write_f64 soc addr i v = Soc.write_u64 soc (addr + (8 * i)) (Int64.bits_of_float v)
let read_i32 soc addr i = Int32.to_int (Soc.read_u32 soc (addr + (4 * i)))

let compute k soc ~in1 ~in2 ~out =
  let n = data_size k in
  match k with
  | Fft ->
      let re = Array.init n (read_f64 soc in1) in
      let im = Array.init n (fun i -> read_f64 soc in1 (n + i)) in
      Ref.fft re im;
      Array.iteri (write_f64 soc out) re;
      Array.iteri (fun i v -> write_f64 soc out (n + i) v) im
  | Spmv ->
      let row_ptr = Array.init (n + 1) (read_i32 soc in1) in
      let nnz = row_ptr.(n) in
      let col_base = in1 + ((n + 1) * 4) in
      let col_idx = Array.init nnz (read_i32 soc col_base) in
      let val_base = in1 + (((n + 1) * 4) + (nnz * 4) + 7) / 8 * 8 in
      let values = Array.init nnz (read_f64 soc val_base) in
      let x = Array.init n (read_f64 soc in2) in
      let y = Ref.spmv ~values ~col_idx ~row_ptr ~x in
      Array.iteri (write_f64 soc out) y
  | Kmp ->
      let text = Bytes.create n in
      Soc.blit_out soc ~src_addr:in1 ~dst:text;
      let plen = read_i32 soc in2 0 in
      let pattern = Bytes.create plen in
      for i = 0 to plen - 1 do
        Bytes.set pattern i (Char.chr (Soc.read_u8 soc (in2 + 4 + i)))
      done;
      let matches = Ref.kmp ~pattern ~text in
      Soc.write_u64 soc out (Int64.of_int matches)
  | Merge_sort ->
      let a = Array.init n (read_i32 soc in1) in
      let sorted = Ref.merge_sort a in
      Array.iteri
        (fun i v -> Soc.write_u32 soc (out + (4 * i)) (Int32.of_int v))
        sorted

let behavior k : Soc.behavior =
 fun ctx beats ~respond ->
  let args =
    B.Cmd_spec.unpack command
      (List.map (fun b -> (b.B.Rocc.payload1, b.B.Rocc.payload2)) beats)
  in
  let get nm = Int64.to_int (List.assoc nm args) in
  let in1 = get "in1" and in2 = get "in2" and out = get "out" in
  let soc = ctx.Soc.soc in
  let finish () =
    Soc.after_cycles ctx (beethoven_cycles k) (fun () ->
        compute k soc ~in1 ~in2 ~out;
        let writer = Soc.writer ctx "out" in
        Soc.Writer.bulk writer ~addr:out ~bytes:(out_bytes k)
          ~on_done:(fun () -> respond 1L))
  in
  let r1 = Soc.reader ctx "in1" in
  if in2_bytes k > 0 then begin
    let r2 = Soc.reader ctx "in2" in
    let pending = ref 2 in
    let arrive () =
      decr pending;
      if !pending = 0 then finish ()
    in
    Soc.Reader.bulk r1 ~addr:in1 ~bytes:(in1_bytes k) ~on_done:arrive;
    Soc.Reader.bulk r2 ~addr:in2 ~bytes:(in2_bytes k) ~on_done:arrive
  end
  else Soc.Reader.bulk r1 ~addr:in1 ~bytes:(in1_bytes k) ~on_done:finish

(* ------------------------------------------------------------------ *)
(* Workloads + verification                                            *)
(* ------------------------------------------------------------------ *)

let lcg seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state

let fill_inputs k ~seed in1_host in2_host =
  let rand = lcg (seed + 23) in
  let n = data_size k in
  let f64 buf i v = Bytes.set_int64_le buf (8 * i) (Int64.bits_of_float v) in
  match k with
  | Fft ->
      for i = 0 to (2 * n) - 1 do
        f64 in1_host i (float_of_int (rand () mod 2000 - 1000) /. 100.)
      done
  | Spmv ->
      let pos = ref 0 in
      Bytes.set_int32_le in1_host 0 0l;
      for row = 0 to n - 1 do
        pos := !pos + spmv_row_len row;
        Bytes.set_int32_le in1_host (4 * (row + 1)) (Int32.of_int !pos)
      done;
      let nnz = !pos in
      assert (nnz = spmv_nnz);
      let col_base = (n + 1) * 4 in
      let val_base = (col_base + (nnz * 4) + 7) / 8 * 8 in
      let k_ = ref 0 in
      for row = 0 to n - 1 do
        let len = spmv_row_len row in
        for e = 0 to len - 1 do
          (* spread the columns; keep them sorted within the row *)
          let col = (row + (e * 37)) mod n in
          Bytes.set_int32_le in1_host (col_base + (4 * !k_)) (Int32.of_int col);
          Bytes.set_int64_le in1_host
            (val_base + (8 * !k_))
            (Int64.bits_of_float (float_of_int (rand () mod 200 - 100) /. 10.));
          incr k_
        done
      done;
      for i = 0 to n - 1 do
        f64 in2_host i (float_of_int (rand () mod 100) /. 7.)
      done
  | Kmp ->
      let bases = "ABAB" in
      for i = 0 to n - 1 do
        Bytes.set in1_host i
          (if rand () mod 3 = 0 then 'A' else "ABCD".[rand () mod 4])
      done;
      Bytes.set_int32_le in2_host 0 4l;
      String.iteri (fun i c -> Bytes.set in2_host (4 + i) c) bases
  | Merge_sort ->
      for i = 0 to n - 1 do
        Bytes.set_int32_le in1_host (4 * i) (Int32.of_int (rand () mod 100000))
      done

let expected_output k in1_host in2_host =
  let n = data_size k in
  let out = Bytes.create (out_bytes k) in
  let f64_of buf i = Int64.float_of_bits (Bytes.get_int64_le buf (8 * i)) in
  (match k with
  | Fft ->
      let re = Array.init n (f64_of in1_host) in
      let im = Array.init n (fun i -> f64_of in1_host (n + i)) in
      Ref.fft re im;
      Array.iteri (fun i v -> Bytes.set_int64_le out (8 * i) (Int64.bits_of_float v)) re;
      Array.iteri
        (fun i v -> Bytes.set_int64_le out (8 * (n + i)) (Int64.bits_of_float v))
        im
  | Spmv ->
      let i32_of buf i = Int32.to_int (Bytes.get_int32_le buf (4 * i)) in
      let row_ptr = Array.init (n + 1) (i32_of in1_host) in
      let nnz = row_ptr.(n) in
      let col_base = (n + 1) * 4 in
      let col_idx =
        Array.init nnz (fun i ->
            Int32.to_int (Bytes.get_int32_le in1_host (col_base + (4 * i))))
      in
      let val_base = (col_base + (nnz * 4) + 7) / 8 * 8 in
      let values =
        Array.init nnz (fun i ->
            Int64.float_of_bits (Bytes.get_int64_le in1_host (val_base + (8 * i))))
      in
      let x = Array.init n (f64_of in2_host) in
      let y = Ref.spmv ~values ~col_idx ~row_ptr ~x in
      Array.iteri (fun i v -> Bytes.set_int64_le out (8 * i) (Int64.bits_of_float v)) y
  | Kmp ->
      let plen = Int32.to_int (Bytes.get_int32_le in2_host 0) in
      let pattern = Bytes.sub in2_host 4 plen in
      let matches = Ref.kmp ~pattern ~text:in1_host in
      Bytes.set_int64_le out 0 (Int64.of_int matches)
  | Merge_sort ->
      let a =
        Array.init n (fun i -> Int32.to_int (Bytes.get_int32_le in1_host (4 * i)))
      in
      Array.iteri
        (fun i v -> Bytes.set_int32_le out (4 * i) (Int32.of_int v))
        (Ref.merge_sort a));
  out

type run_result = {
  n_cores : int;
  wall_ps : int;
  measured_ops_per_sec : float;
  verified : bool;
}

let run k ~n_cores ~platform () =
  let design = B.Elaborate.elaborate (config k ~n_cores) platform in
  let soc = Soc.create design ~behaviors:(fun _ -> behavior k) in
  let handle = Runtime.Handle.create soc in
  let module H = Runtime.Handle in
  let allocs =
    Array.init n_cores (fun core ->
        let p1 = H.malloc handle (in1_bytes k) in
        let p2 = H.malloc handle (max 4096 (in2_bytes k)) in
        let po = H.malloc handle (out_bytes k) in
        fill_inputs k ~seed:(core * 7919) (H.host_bytes handle p1)
          (H.host_bytes handle p2);
        (p1, p2, po))
  in
  let pending = ref 0 in
  Array.iter
    (fun (p1, p2, _) ->
      List.iter
        (fun p ->
          incr pending;
          H.copy_to_fpga handle p ~on_done:(fun () -> decr pending))
        [ p1; p2 ])
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "machsuite_extra: input DMA incomplete";
  let t0 = Desim.Engine.now (H.engine handle) in
  let hs =
    Array.to_list
      (Array.mapi
         (fun core (p1, p2, po) ->
           H.send handle ~system:(name k) ~core ~cmd:command
             ~args:
               [
                 ("in1", Int64.of_int p1.H.rp_addr);
                 ("in2", Int64.of_int p2.H.rp_addr);
                 ("out", Int64.of_int po.H.rp_addr);
               ])
         allocs)
  in
  ignore (H.await_all handle hs);
  let t1 = Desim.Engine.now (H.engine handle) in
  let pending = ref 0 in
  Array.iter
    (fun (_, _, po) ->
      incr pending;
      H.copy_from_fpga handle po ~on_done:(fun () -> decr pending))
    allocs;
  Desim.Engine.run (H.engine handle);
  if !pending <> 0 then failwith "machsuite_extra: output DMA incomplete";
  let verified = ref true in
  Array.iter
    (fun (p1, p2, po) ->
      let expect =
        expected_output k (H.host_bytes handle p1) (H.host_bytes handle p2)
      in
      if not (Bytes.equal expect (H.host_bytes handle po)) then
        verified := false)
    allocs;
  {
    n_cores;
    wall_ps = t1 - t0;
    measured_ops_per_sec =
      float_of_int n_cores /. (float_of_int (t1 - t0) *. 1e-12);
    verified = !verified;
  }
