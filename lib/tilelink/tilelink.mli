(** TileLink (UL/UH subset) — the protocol of Beethoven's memory NoC.

    §II-A: Reader/Writer access points "are routed through a TileLink
    network-on-chip to an external memory controller". This module
    implements the protocol layer of that statement: channel-A requests
    (Get / PutFullData), channel-D responses (AccessAck / AccessAckData),
    their TileLink rules (power-of-two sizes, size-aligned addresses,
    per-source response ordering, one outstanding request per source), a
    beat-level wire serialization for transporting messages through the
    tree fabric, and an adapter that terminates TileLink at the AXI memory
    port. *)

type size = int
(** log2 of the transfer size in bytes. *)

type a_msg =
  | Get of { source : int; address : int; size : size }
  | Put_full of { source : int; address : int; size : size }
      (** data travels as beats on the wire; contents live in the SoC
          memory model, as everywhere in this library *)

type d_msg =
  | Access_ack of { source : int; size : size }
  | Access_ack_data of { source : int; size : size }

val bus_bytes : int (** 64: matches the 512-bit fabric *)

val max_size : size (** 12: 4 KB, one AXI-legal burst *)

val check_a : a_msg -> (unit, string) result
(** TileLink rules: size within bounds, address aligned to the size. *)

val data_beats : size -> int
(** Beats on a [bus_bytes] wire (1 for transfers <= one beat). *)

(** {1 Wire form} *)

val encode_a : a_msg -> Bits.t
val decode_a : Bits.t -> a_msg
val encode_d : d_msg -> Bits.t
val decode_d : Bits.t -> d_msg
val a_width : int
val d_width : int

(** {1 AXI termination} *)

module To_axi : sig
  type t

  val create : Desim.Engine.t -> Axi.t -> t

  val request : t -> a_msg -> on_d:(d_msg -> unit) -> unit
  (** Issue a channel-A message; the channel-D response arrives via
      [on_d] when the memory system completes it. Raises
      [Invalid_argument] on a protocol violation or when the source
      already has a request outstanding (TL-UL: one per source). The
      TileLink source id maps onto an AXI ID, so distinct sources enjoy
      the same memory-level parallelism Readers get from TLP. *)

  val outstanding : t -> int
end
