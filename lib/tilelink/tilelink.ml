type size = int

type a_msg =
  | Get of { source : int; address : int; size : size }
  | Put_full of { source : int; address : int; size : size }

type d_msg =
  | Access_ack of { source : int; size : size }
  | Access_ack_data of { source : int; size : size }

let bus_bytes = 64
let max_size = 12
let source_bits = 8
let addr_bits = 48
let size_bits = 4

let check_a msg =
  let source, address, size =
    match msg with
    | Get { source; address; size } | Put_full { source; address; size } ->
        (source, address, size)
  in
  if size < 0 || size > max_size then
    Error (Printf.sprintf "size 2^%d out of bounds" size)
  else if source < 0 || source >= 1 lsl source_bits then
    Error "source id out of range"
  else if address < 0 then Error "negative address"
  else if address mod (1 lsl size) <> 0 then
    Error
      (Printf.sprintf "address 0x%x not aligned to its 2^%d size" address size)
  else Ok ()

let data_beats size =
  let bytes = 1 lsl size in
  max 1 ((bytes + bus_bytes - 1) / bus_bytes)

(* A-channel header: opcode(3) :: source(8) :: size(4) :: address(48) *)
let a_width = 3 + source_bits + size_bits + addr_bits
let d_width = 3 + source_bits + size_bits

let a_opcode = function Put_full _ -> 0 (* PutFullData *) | Get _ -> 4

let encode_a msg =
  (match check_a msg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Tilelink.encode_a: " ^ e));
  let source, address, size =
    match msg with
    | Get { source; address; size } | Put_full { source; address; size } ->
        (source, address, size)
  in
  Bits.concat_list
    [
      Bits.of_int ~width:3 (a_opcode msg);
      Bits.of_int ~width:source_bits source;
      Bits.of_int ~width:size_bits size;
      Bits.of_int ~width:addr_bits address;
    ]

let decode_a b =
  if Bits.width b <> a_width then invalid_arg "Tilelink.decode_a: width";
  let hi = a_width - 1 in
  let opcode = Bits.to_int (Bits.slice b ~hi ~lo:(hi - 2)) in
  let source =
    Bits.to_int (Bits.slice b ~hi:(hi - 3) ~lo:(hi - 2 - source_bits))
  in
  let size =
    Bits.to_int
      (Bits.slice b
         ~hi:(hi - 3 - source_bits)
         ~lo:(hi - 2 - source_bits - size_bits))
  in
  let address = Bits.to_int (Bits.slice b ~hi:(addr_bits - 1) ~lo:0) in
  match opcode with
  | 0 -> Put_full { source; address; size }
  | 4 -> Get { source; address; size }
  | n -> invalid_arg (Printf.sprintf "Tilelink.decode_a: opcode %d" n)

let d_opcode = function Access_ack _ -> 0 | Access_ack_data _ -> 1

let encode_d msg =
  let source, size =
    match msg with
    | Access_ack { source; size } | Access_ack_data { source; size } ->
        (source, size)
  in
  Bits.concat_list
    [
      Bits.of_int ~width:3 (d_opcode msg);
      Bits.of_int ~width:source_bits source;
      Bits.of_int ~width:size_bits size;
    ]

let decode_d b =
  if Bits.width b <> d_width then invalid_arg "Tilelink.decode_d: width";
  let hi = d_width - 1 in
  let opcode = Bits.to_int (Bits.slice b ~hi ~lo:(hi - 2)) in
  let source =
    Bits.to_int (Bits.slice b ~hi:(hi - 3) ~lo:(hi - 2 - source_bits))
  in
  let size = Bits.to_int (Bits.slice b ~hi:(size_bits - 1) ~lo:0) in
  match opcode with
  | 0 -> Access_ack { source; size }
  | 1 -> Access_ack_data { source; size }
  | n -> invalid_arg (Printf.sprintf "Tilelink.decode_d: opcode %d" n)

module To_axi = struct
  type t = {
    axi : Axi.t;
    busy : (int, unit) Hashtbl.t; (* outstanding sources *)
  }

  let create engine axi =
    ignore (engine : Desim.Engine.t);
    { axi; busy = Hashtbl.create 16 }
  let outstanding t = Hashtbl.length t.busy

  let request t msg ~on_d =
    (match check_a msg with
    | Ok () -> ()
    | Error e -> invalid_arg ("Tilelink.To_axi.request: " ^ e));
    let source, address, size =
      match msg with
      | Get { source; address; size } | Put_full { source; address; size } ->
          (source, address, size)
    in
    if Hashtbl.mem t.busy source then
      invalid_arg "Tilelink.To_axi.request: source already outstanding";
    Hashtbl.add t.busy source ();
    let prm = Axi.params t.axi in
    let bytes = max (1 lsl size) prm.Axi.Params.data_bytes in
    let beats = bytes / prm.Axi.Params.data_bytes in
    let id = source mod prm.Axi.Params.n_ids in
    let finish d =
      Hashtbl.remove t.busy source;
      on_d d
    in
    (* align the AXI access down to the beat grid *)
    let addr = address - (address mod prm.Axi.Params.data_bytes) in
    match msg with
    | Get _ ->
        Axi.read t.axi ~id ~addr ~beats
          ~on_beat:(fun ~beat:_ -> ())
          ~on_done:(fun _resp -> finish (Access_ack_data { source; size }))
    | Put_full _ ->
        Axi.write t.axi ~id ~addr ~beats ~on_done:(fun _resp ->
            finish (Access_ack { source; size }))
end
