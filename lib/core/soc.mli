(** The simulated accelerated system.

    Instantiates an elaborated design as live simulation components: device
    DRAM (contents + timing), the AXI memory port, command/memory NoCs
    (latency from the floorplan), and one process per core running a
    user-supplied {!behavior} — the transaction-level equivalent of the
    RTL a Beethoven user writes. Readers and Writers implement the
    prefetching, bursting, and AXI-ID policies of the paper's memory
    primitives; their timing flows entirely from the {!Dram}/{!Axi}
    models. *)

type t

module Reader : sig
  type r

  val beat_bytes : r -> int
  (** The channel's AXI beat width on the elaborated platform — the
      widest legal [item_bytes] (and its divisor granule). A kernel
      meant to run on any platform sizes its items against this instead
      of hard-coding the discrete-FPGA 64 B beat. *)

  val stream :
    r ->
    addr:int ->
    bytes:int ->
    ?item_bytes:int ->
    on_item:(offset:int -> unit) ->
    on_done:(unit -> unit) ->
    unit ->
    unit
  (** Stream a contiguous region. [on_item] fires once per [item_bytes]
      window (default: the channel's configured port width), at most one
      item per fabric cycle, in address order, as prefetched data becomes
      available. Buffer capacity and the in-flight transaction limit come
      from the channel configuration. *)

  val bulk :
    r -> addr:int -> bytes:int -> on_done:(unit -> unit) -> unit
  (** Fetch a region at full channel throughput without item-level
      delivery; [on_done] fires when the last beat has arrived. *)

  val stream_strided :
    r ->
    addr:int ->
    row_bytes:int ->
    stride:int ->
    n_rows:int ->
    ?item_bytes:int ->
    on_item:(row:int -> offset:int -> unit) ->
    on_done:(unit -> unit) ->
    unit ->
    unit
  (** Strided access (one of the "other communication primitives" §II-B
      notes the design admits): stream [n_rows] rows of [row_bytes]
      starting [stride] bytes apart. Rows are fetched in order, one
      stream at a time — the low-effort strided Reader. *)
end

module Writer : sig
  type w

  val begin_txn : w -> addr:int -> bytes:int -> on_done:(unit -> unit) -> unit
  (** Open a write stream. The core then {!push}es exactly
      [bytes / item_bytes] items. [on_done] fires when the final write
      response returns. *)

  val push : w -> ?item_bytes:int -> on_accept:(unit -> unit) -> unit -> unit
  (** Offer one item; [on_accept] fires when buffer space admits it (at
      most one per fabric cycle). *)

  val bulk : w -> addr:int -> bytes:int -> on_done:(unit -> unit) -> unit
  (** Write a region at full channel throughput (data assumed ready). *)
end

module Scratchpad : sig
  type sp

  val init_from_memory :
    sp -> addr:int -> ?bytes:int -> on_done:(unit -> unit) -> unit -> unit
  (** Fill the scratchpad from device memory through its built-in Reader
      (timing + contents). Default [bytes] = the whole scratchpad. *)

  val get : sp -> int -> Bytes.t
  (** Row contents ([data_bits/8] bytes, zero-padded). *)

  val set : sp -> int -> Bytes.t -> unit
  val get_u64 : sp -> int -> int64
  val set_u64 : sp -> int -> int64 -> unit
  val depth : sp -> int
  val latency : sp -> int
end

(** Execution context handed to a core behavior. *)
type ctx = {
  engine : Desim.Engine.t;
  clock_ps : int;
  core_id : int;
  system : Config.system;
  soc : t;
}

val reader : ctx -> ?idx:int -> string -> Reader.r
val writer : ctx -> ?idx:int -> string -> Writer.w
val scratchpad : ctx -> string -> Scratchpad.sp

module Intercore : sig
  type port
  (** An [IntraCoreMemoryPortOut]: a write port into a scratchpad that
      lives in another System's cores (§II-B, appendix A). Writes route
      over the command fabric with the corresponding NoC latency, at most
      one per fabric cycle per channel. *)

  val write :
    port ->
    target_core:int ->
    row:int ->
    data:Bytes.t ->
    on_done:(unit -> unit) ->
    unit
  (** Raises [Invalid_argument] on a bad core index, row, or data width
      (must equal the target scratchpad's row width). *)
end

val intercore_out : ctx -> string -> Intercore.port
(** Look up a declared [intra_core_port] by name. *)

val after_cycles : ctx -> int -> (unit -> unit) -> unit
(** Model [n] fabric cycles of compute. *)

type behavior = ctx -> Rocc.t list -> respond:(int64 -> unit) -> unit
(** Invoked once per (possibly multi-beat) command; must eventually call
    [respond]. Cores execute one command at a time; further commands queue
    at the core. *)

val create :
  ?memory_bytes:int ->
  ?trace:Axi.Trace.t ->
  ?tracer:Trace.t ->
  ?fault:Fault.Injector.t ->
  ?policy:Fault.Policy.t ->
  Elaborate.t ->
  behaviors:(string -> behavior) ->
  t
(** [behaviors] maps a system name to its core behavior. Default device
    memory: 64 MB. With [fault], the injector is threaded through the
    whole stack: DRAM read bursts may flip bits (caught by the SECDED
    scrub-on-read path), AXI bursts may error (retried with exponential
    backoff up to [policy.axi_max_retries]), command/response beats may be
    dropped or delayed in the command NoC, and a planned core hang makes
    its victim swallow traffic until the runtime quarantines it.

    With [tracer], the whole stack records structured spans and counters:
    core execution, reader/writer streams, AXI bursts (every port, named
    [ddr0..ddrN]), DRAM activity, and command-NoC hops, all correlated by
    the issuing command's span/transaction id. Absent the tracer no
    recording happens anywhere on the hot path. *)

val engine : t -> Desim.Engine.t

val uid : t -> int
(** Unique per SoC instance within the process. *)

val tracer : t -> Trace.t option
(** The structured tracer given at construction, if any. *)

val fault_injector : t -> Fault.Injector.t option
val policy : t -> Fault.Policy.t

val cmd_key : t -> system_id:int -> core_id:int -> int
(** The command-NoC endpoint id of a core — the routing key under which
    lost-message faults are recorded and resolved. *)

val core_hung : t -> system_id:int -> core_id:int -> bool
(** True once an injected hang has fired on the core. *)

val design : t -> Elaborate.t
val platform : t -> Platform.Device.t
val dram : t -> Dram.t

val axi : t -> Axi.t
(** DDR controller port 0 (carries the optional trace). *)

val axi_ports : t -> Axi.t array
(** One port per DDR controller; memory channels are assigned round-robin
    by endpoint, as a platform developer's channel mapping would. *)

val send_command :
  ?span:int -> t -> Rocc.t -> on_response:(Rocc.response -> unit) -> unit
(** Deliver a RoCC command beat through the MMIO frontend and the command
    NoC. [on_response] fires (at the MMIO boundary) for the final beat's
    response when the command declares one. [span] is the issuing host
    command's trace span: NoC hops and the core's execution span parent
    under it. *)

(** {1 Device memory contents} *)

val coherent_transactions : t -> int
(** Embedded platforms: memory transactions issued with AXI-ACE coherence
    (always 0 on discrete platforms, where DMA copies take that role). *)

val stats_report : t -> string
(** Human-readable counters: DRAM traffic and locality, AXI transaction
    counts and latencies, fabric message counts. *)

val mem_size : t -> int
val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u32 : t -> int -> int32
val write_u32 : t -> int -> int32 -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val blit_in : t -> src:Bytes.t -> dst_addr:int -> unit
val blit_out : t -> src_addr:int -> dst:Bytes.t -> unit
val copy_within : t -> src:int -> dst:int -> bytes:int -> unit
