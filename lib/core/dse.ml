type point = {
  pt_cores : int;
  pt_fits : bool;
  pt_peak_utilization : float;
  pt_metric : float option;
}

let peak_utilization (fp : Floorplan.t) platform =
  Array.to_list fp.Floorplan.used_per_slr
  |> List.mapi (fun slr used ->
         let cap =
           (Platform.Device.slr_exn platform slr).Platform.Device.capacity
         in
         Platform.Resources.max_utilization used ~cap)
  |> List.fold_left Float.max 0.

let fit ?cache config platform =
  let elab () =
    match cache with
    | Some c -> Elaborate.Cache.elaborate c config platform
    | None -> Elaborate.elaborate config platform
  in
  match elab () with
  | e -> Ok (peak_utilization e.Elaborate.floorplan platform)
  | exception (Failure m | Invalid_argument m) -> Error m

let sweep_cores ~config_of ?(max_cores = 48) ?metric ?cache platform =
  List.init max_cores (fun i ->
      let n = i + 1 in
      let config = config_of ~n_cores:n in
      let fits =
        match cache with
        | Some _ -> fit ?cache config platform
        | None -> (
            (* the historical floorplan-only oracle: cheap, and accepts
               configs the full DRC would warn (not error) about *)
            match Floorplan.place config platform with
            | fp -> Ok (peak_utilization fp platform)
            | exception Failure m -> Error m)
      in
      match fits with
      | Error _ ->
          { pt_cores = n; pt_fits = false; pt_peak_utilization = 1.0;
            pt_metric = None }
      | Ok peak ->
          {
            pt_cores = n;
            pt_fits = true;
            pt_peak_utilization = peak;
            pt_metric = Option.map (fun f -> f ~n_cores:n) metric;
          })

let best points =
  let fitting = List.filter (fun p -> p.pt_fits) points in
  match fitting with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun acc p ->
             match (acc.pt_metric, p.pt_metric) with
             | Some a, Some b -> if b > a then p else acc
             | None, Some _ -> p
             | Some _, None -> acc
             | None, None -> if p.pt_cores > acc.pt_cores then p else acc)
           (List.hd fitting) fitting)

let render points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %10s %12s\n" "cores" "fits" "peak util" "metric");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6s %9.0f%% %12s\n" p.pt_cores
           (if p.pt_fits then "yes" else "no")
           (100. *. p.pt_peak_utilization)
           (match p.pt_metric with
           | Some m -> Printf.sprintf "%.3e" m
           | None -> "-")))
    points;
  Buffer.contents buf
