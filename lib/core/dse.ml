type point = {
  pt_cores : int;
  pt_fits : bool;
  pt_peak_utilization : float;
  pt_metric : float option;
}

let sweep_cores ~config_of ?(max_cores = 48) ?metric platform =
  List.init max_cores (fun i ->
      let n = i + 1 in
      match Floorplan.place (config_of ~n_cores:n) platform with
      | exception Failure _ ->
          { pt_cores = n; pt_fits = false; pt_peak_utilization = 1.0;
            pt_metric = None }
      | fp ->
          let peak =
            Array.to_list fp.Floorplan.used_per_slr
            |> List.mapi (fun slr used ->
                   let cap =
                     (Platform.Device.slr_exn platform slr)
                       .Platform.Device.capacity
                   in
                   Platform.Resources.max_utilization used ~cap)
            |> List.fold_left Float.max 0.
          in
          {
            pt_cores = n;
            pt_fits = true;
            pt_peak_utilization = peak;
            pt_metric = Option.map (fun f -> f ~n_cores:n) metric;
          })

let best points =
  let fitting = List.filter (fun p -> p.pt_fits) points in
  match fitting with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun acc p ->
             match (acc.pt_metric, p.pt_metric) with
             | Some a, Some b -> if b > a then p else acc
             | None, Some _ -> p
             | Some _, None -> acc
             | None, None -> if p.pt_cores > acc.pt_cores then p else acc)
           (List.hd fitting) fitting)

let render points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %6s %10s %12s\n" "cores" "fits" "peak util" "metric");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %6s %9.0f%% %12s\n" p.pt_cores
           (if p.pt_fits then "yes" else "no")
           (100. *. p.pt_peak_utilization)
           (match p.pt_metric with
           | Some m -> Printf.sprintf "%.3e" m
           | None -> "-")))
    points;
  Buffer.contents buf
