let log_src = Logs.Src.create "beethoven.soc" ~doc:"Simulated SoC events"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type t = {
  soc_uid : int;
  engine : Desim.Engine.t;
  design : Elaborate.t;
  platform : Platform.Device.t;
  dram : Dram.t;
  axi : Axi.t; (* port 0; kept for stats/back-compat *)
  axi_ports : Axi.t array; (* one per DDR controller *)
  memory : Bytes.t;
  ace_snoop_ps : int;
      (* embedded platforms: per-transaction AXI-ACE coherence cost *)
  mutable coherent_txns : int;
  mutable cores : core_inst array; (* indexed by command endpoint id *)
  mutable next_axi_id : int;
  fault : Fault.Injector.t option;
  policy : Fault.Policy.t;
  tracer : Trace.t option;
}

and ctx = {
  engine : Desim.Engine.t;
  clock_ps : int;
  core_id : int;
  system : Config.system;
  soc : t;
}

and core_inst = {
  ci_ctx : ctx;
  ci_readers : (string, reader array) Hashtbl.t;
  ci_writers : (string, writer array) Hashtbl.t;
  ci_spads : (string, spad) Hashtbl.t;
  ci_behavior : behavior;
  ci_queue : (Rocc.t list * int option * (int64 -> unit)) Queue.t;
      (* queued beats carry the trace span of the issuing host command *)
  mutable ci_partial : Rocc.t list;
  mutable ci_busy : bool;
  mutable ci_hung : bool;
  mutable ci_partial_epoch : int;
  ci_track : string; (* trace lane, "core <system>/<id>" *)
  ci_cur_span : int option ref;
      (* execution span of the in-flight command; shared with the core's
         readers/writers so their streams parent under it *)
}

and behavior = ctx -> Rocc.t list -> respond:(int64 -> unit) -> unit

and reader = {
  r_soc : t;
  r_axi : Axi.t; (* the DDR controller port this channel is wired to *)
  r_cfg : Config.read_channel;
  r_base_id : int;
  r_noc_ps : int;
  mutable r_busy : bool;
  r_track : string;
  r_parent : unit -> int option; (* current exec span of the owning core *)
}

and writer = {
  w_soc : t;
  w_axi : Axi.t;
  w_cfg : Config.write_channel;
  w_base_id : int;
  w_noc_ps : int;
  mutable w_busy : bool;
  mutable w_txn : writer_txn option;
  w_track : string;
  w_parent : unit -> int option;
}

and writer_txn = {
  wt_total_items : int;
  wt_item_bytes : int;
  mutable wt_pushed : int;
  mutable wt_buffered : int; (* items occupying buffer space (incl. in flight) *)
  mutable wt_unshipped : int; (* buffered items not yet sent to AXI *)
  mutable wt_next_addr : int;
  mutable wt_remaining_bytes : int;
  mutable wt_in_flight : int;
  mutable wt_next_push_time : int;
  wt_waiting_push : (unit -> unit) Queue.t;
  wt_on_done : unit -> unit;
  mutable wt_bursts_outstanding : int;
  mutable wt_all_issued : bool;
  wt_span : int option; (* trace span covering the whole transaction *)
}

and spad = {
  sp_cfg : Config.scratchpad;
  sp_soc : t;
  sp_reader : reader;
  sp_data : Bytes.t;
  sp_row_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Device memory contents                                              *)
(* ------------------------------------------------------------------ *)

let mem_size t = Bytes.length t.memory
let read_u8 t a = Char.code (Bytes.get t.memory a)
let write_u8 t a v = Bytes.set t.memory a (Char.chr (v land 0xff))
let read_u32 t a = Bytes.get_int32_le t.memory a
let write_u32 t a v = Bytes.set_int32_le t.memory a v
let read_u64 t a = Bytes.get_int64_le t.memory a
let write_u64 t a v = Bytes.set_int64_le t.memory a v

let blit_in t ~src ~dst_addr =
  Bytes.blit src 0 t.memory dst_addr (Bytes.length src)

let blit_out t ~src_addr ~dst =
  Bytes.blit t.memory src_addr dst 0 (Bytes.length dst)

let copy_within t ~src ~dst ~bytes = Bytes.blit t.memory src t.memory dst bytes

(* On embedded platforms every fabric access is marked coherent over
   AXI-ACE (§II-C2); the snoop adds a couple of interconnect cycles and is
   counted for the stats report. *)
let coherence_ps t =
  if t.ace_snoop_ps > 0 then begin
    t.coherent_txns <- t.coherent_txns + 1;
    t.ace_snoop_ps
  end
  else 0

(* ------------------------------------------------------------------ *)
(* Fault-recovery accounting                                           *)
(* ------------------------------------------------------------------ *)

(* Every injected AXI error is resolved exactly once: [Recovered] when a
   retry eventually succeeds, [Unrecovered] when the retry budget runs
   out. [n] failed attempts resolve together. *)
let fault_resolve t ~cls ~n ~recovered ~site =
  match t.fault with
  | None -> ()
  | Some inj ->
      let kind =
        if recovered then Fault.Log.Recovered else Fault.Log.Unrecovered
      in
      let now = Desim.Engine.now t.engine in
      for _ = 1 to n do
        Fault.Injector.log inj ~now ~cls ~kind ~site
      done

let axi_retry_budget t = t.policy.Fault.Policy.axi_max_retries

let axi_backoff t ~attempt =
  t.policy.Fault.Policy.axi_backoff_ps * (1 lsl min attempt 10)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type r = reader

  let beat_bytes (r : r) = (Axi.params r.r_axi).Axi.Params.data_bytes

  let segments_for (r : r) ~addr ~bytes =
    let prm = Axi.params r.r_axi in
    let bb = prm.Axi.Params.data_bytes in
    let addr0 = addr - (addr mod bb) in
    let padded = ((addr + bytes + bb - 1) / bb * bb) - addr0 in
    let prm =
      {
        prm with
        Axi.Params.max_burst_beats =
          min prm.Axi.Params.max_burst_beats r.r_cfg.Config.rc_burst_beats;
      }
    in
    Axi.Burst.split ~params:prm ~addr:addr0 ~bytes:padded

  let pick_id (r : r) k =
    let n = (Axi.params r.r_axi).Axi.Params.n_ids in
    if r.r_cfg.Config.rc_use_tlp then (r.r_base_id + k) mod n
    else r.r_base_id

  (* Open a span covering one reader/writer stream, parented under the
     owning core's in-flight execution span; returns an [on_done] wrapper
     that closes it. *)
  let stream_span soc ~track ~parent ~hop_ps ~cat ~name ~on_done =
    match soc.tracer with
    | None -> (None, on_done)
    | Some tr ->
        let clock_ps = soc.platform.Platform.Device.fabric_clock_ps in
        Trace.observe tr "noc.mem.hop_ps" (float_of_int hop_ps);
        Trace.observe_hist tr "noc.mem.hop_ps"
          ~bucket_width:(float_of_int clock_ps)
          (float_of_int hop_ps);
        let sp =
          Trace.begin_span tr
            ~now:(Desim.Engine.now soc.engine)
            ?parent:(parent ()) ~track ~cat ~name ()
        in
        ( Some sp,
          fun () ->
            Trace.end_span tr ~now:(Desim.Engine.now soc.engine) sp;
            on_done () )

  let stream (r : r) ~addr ~bytes ?item_bytes ~on_item ~on_done () =
    if r.r_busy then failwith "Reader busy: one stream at a time";
    if bytes <= 0 then invalid_arg "Reader.stream: bytes";
    r.r_busy <- true;
    let engine = r.r_soc.engine in
    let clock_ps = r.r_soc.platform.Platform.Device.fabric_clock_ps in
    let bb = beat_bytes r in
    let item_bytes =
      Option.value item_bytes ~default:r.r_cfg.Config.rc_data_bytes
    in
    if item_bytes > bb || bb mod item_bytes <> 0 then
      invalid_arg "Reader.stream: item width must divide the AXI beat";
    let span, on_done =
      stream_span r.r_soc ~track:r.r_track ~parent:r.r_parent
        ~hop_ps:r.r_noc_ps ~cat:"mem"
        ~name:(Printf.sprintf "rd.stream 0x%x %dB" addr bytes)
        ~on_done
    in
    let items_per_beat = bb / item_bytes in
    let lead_items = addr mod bb / item_bytes in
    let n_items = ((bytes - 1) / item_bytes) + 1 in
    let segs = Array.of_list (segments_for r ~addr ~bytes) in
    let n_segs = Array.length segs in
    let arrived = Array.make n_segs 0 in
    (* beat arrival times, flattened *)
    let total_beats = Array.fold_left (fun a s -> a + s.Axi.Burst.beats) 0 segs in
    let beat_time = Array.make total_beats max_int in
    let seg_base = Array.make n_segs 0 in
    let _ =
      Array.fold_left
        (fun (i, base) s ->
          seg_base.(i) <- base;
          (i + 1, base + s.Axi.Burst.beats))
        (0, 0) segs
      |> fun (i, _) -> ignore i
    in
    let free_beats = ref r.r_cfg.Config.rc_buffer_beats in
    let in_flight = ref 0 in
    let next_seg = ref 0 in
    (* delivery cursor *)
    let delivered = ref 0 in
    let next_delivery = ref 0 in
    let pumping = ref false in
    let rec try_issue () =
      if
        !next_seg < n_segs
        && !in_flight < r.r_cfg.Config.rc_max_in_flight
        && !free_beats >= segs.(!next_seg).Axi.Burst.beats
      then begin
        let si = !next_seg in
        incr next_seg;
        free_beats := !free_beats - segs.(si).Axi.Burst.beats;
        incr in_flight;
        issue_seg si 0;
        try_issue ()
      end
    and issue_seg si attempt =
      let seg = segs.(si) in
      let id = pick_id r si in
      let site =
        Printf.sprintf "%s rd seg@0x%x" r.r_cfg.Config.rc_name
          seg.Axi.Burst.addr
      in
      (* request travels through the memory NoC (+ coherence snoop on
         embedded platforms) *)
      Desim.Engine.schedule engine
        ~delay:(r.r_noc_ps + coherence_ps r.r_soc)
        (fun () ->
          Axi.read ?span r.r_axi ~id ~addr:seg.Axi.Burst.addr
            ~beats:seg.Axi.Burst.beats
            ~on_beat:(fun ~beat ->
              (* data beat returns through the NoC *)
              Desim.Engine.schedule engine ~delay:r.r_noc_ps (fun () ->
                  beat_time.(seg_base.(si) + beat) <-
                    Desim.Engine.now engine;
                  arrived.(si) <- arrived.(si) + 1;
                  pump ()))
            ~on_done:(fun resp ->
              match resp with
              | Axi.Resp.Okay ->
                  fault_resolve r.r_soc ~cls:Fault.Class.Axi_read_error
                    ~n:attempt ~recovered:true ~site;
                  decr in_flight;
                  try_issue ()
              | Axi.Resp.Slverr | Axi.Resp.Decerr ->
                  if attempt < axi_retry_budget r.r_soc then
                    Desim.Engine.schedule engine
                      ~delay:(axi_backoff r.r_soc ~attempt)
                      (fun () -> issue_seg si (attempt + 1))
                  else begin
                    (* retry budget exhausted: declare the burst lost but
                       keep the stream alive — its beats complete so the
                       pipeline never wedges *)
                    fault_resolve r.r_soc ~cls:Fault.Class.Axi_read_error
                      ~n:(attempt + 1) ~recovered:false ~site;
                    let now = Desim.Engine.now engine in
                    for b = 0 to seg.Axi.Burst.beats - 1 do
                      if beat_time.(seg_base.(si) + b) = max_int then begin
                        beat_time.(seg_base.(si) + b) <- now;
                        arrived.(si) <- arrived.(si) + 1
                      end
                    done;
                    decr in_flight;
                    pump ();
                    try_issue ()
                  end))
    and pump () =
      if not !pumping then begin
        pumping := true;
        step ()
      end
    and step () =
      if !delivered >= n_items then begin
        pumping := false;
        r.r_busy <- false;
        on_done ()
      end
      else begin
        let item = !delivered in
        let global_beat = (lead_items + item) / items_per_beat in
        if beat_time.(global_beat) = max_int then pumping := false
          (* beat not here yet; a later arrival re-pumps *)
        else begin
          let now = Desim.Engine.now engine in
          let at = max (max now beat_time.(global_beat)) !next_delivery in
          next_delivery := at + clock_ps;
          Desim.Engine.schedule_at engine ~time:at (fun () ->
              delivered := item + 1;
              on_item ~offset:(item * item_bytes);
              (* freeing: last item of its beat returns a buffer credit *)
              if
                (lead_items + item + 1) mod items_per_beat = 0
                || item + 1 = n_items
              then begin
                incr free_beats;
                try_issue ()
              end;
              step ())
        end
      end
    in
    try_issue ()

  let stream_strided (r : r) ~addr ~row_bytes ~stride ~n_rows ?item_bytes
      ~on_item ~on_done () =
    if row_bytes <= 0 || n_rows <= 0 then
      invalid_arg "Reader.stream_strided: dimensions";
    if stride < row_bytes then
      invalid_arg "Reader.stream_strided: stride smaller than the row";
    let rec row i =
      if i >= n_rows then on_done ()
      else
        stream r ~addr:(addr + (i * stride)) ~bytes:row_bytes ?item_bytes
          ~on_item:(fun ~offset -> on_item ~row:i ~offset)
          ~on_done:(fun () -> row (i + 1))
          ()
    in
    row 0

  let bulk (r : r) ~addr ~bytes ~on_done =
    if r.r_busy then failwith "Reader busy: one stream at a time";
    r.r_busy <- true;
    let engine = r.r_soc.engine in
    let span, on_done =
      stream_span r.r_soc ~track:r.r_track ~parent:r.r_parent
        ~hop_ps:r.r_noc_ps ~cat:"mem"
        ~name:(Printf.sprintf "rd.bulk 0x%x %dB" addr bytes)
        ~on_done
    in
    let segs = Array.of_list (segments_for r ~addr ~bytes) in
    let n_segs = Array.length segs in
    let in_flight = ref 0 in
    let next_seg = ref 0 in
    let completed = ref 0 in
    let rec try_issue () =
      if !next_seg < n_segs && !in_flight < r.r_cfg.Config.rc_max_in_flight
      then begin
        let si = !next_seg in
        incr next_seg;
        incr in_flight;
        issue_seg si 0;
        try_issue ()
      end
    and issue_seg si attempt =
      let seg = segs.(si) in
      let id = pick_id r si in
      let site =
        Printf.sprintf "%s rd-bulk seg@0x%x" r.r_cfg.Config.rc_name
          seg.Axi.Burst.addr
      in
      let finish () =
        decr in_flight;
        incr completed;
        if !completed = n_segs then
          Desim.Engine.schedule engine ~delay:r.r_noc_ps (fun () ->
              r.r_busy <- false;
              on_done ())
        else try_issue ()
      in
      Desim.Engine.schedule engine
        ~delay:(r.r_noc_ps + coherence_ps r.r_soc)
        (fun () ->
          Axi.read ?span r.r_axi ~id ~addr:seg.Axi.Burst.addr
            ~beats:seg.Axi.Burst.beats
            ~on_beat:(fun ~beat:_ -> ())
            ~on_done:(fun resp ->
              match resp with
              | Axi.Resp.Okay ->
                  fault_resolve r.r_soc ~cls:Fault.Class.Axi_read_error
                    ~n:attempt ~recovered:true ~site;
                  finish ()
              | Axi.Resp.Slverr | Axi.Resp.Decerr ->
                  if attempt < axi_retry_budget r.r_soc then
                    Desim.Engine.schedule engine
                      ~delay:(axi_backoff r.r_soc ~attempt)
                      (fun () -> issue_seg si (attempt + 1))
                  else begin
                    fault_resolve r.r_soc ~cls:Fault.Class.Axi_read_error
                      ~n:(attempt + 1) ~recovered:false ~site;
                    finish ()
                  end))
    in
    try_issue ()
end

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type w = writer

  let beat_bytes (w : w) = (Axi.params w.w_axi).Axi.Params.data_bytes

  let pick_id (w : w) k =
    let n = (Axi.params w.w_axi).Axi.Params.n_ids in
    if w.w_cfg.Config.wc_use_tlp then (w.w_base_id + k) mod n
    else w.w_base_id

  (* Issue the next write burst if enough data is buffered. *)
  let rec try_ship (w : w) txn =
    let bb = beat_bytes w in
    let prm = Axi.params w.w_axi in
    let burst_beats =
      min w.w_cfg.Config.wc_burst_beats prm.Axi.Params.max_burst_beats
    in
    if txn.wt_remaining_bytes > 0
       && txn.wt_in_flight < w.w_cfg.Config.wc_max_in_flight
    then begin
      let items_per_beat = max 1 (bb / txn.wt_item_bytes) in
      let want_beats =
        min burst_beats (((txn.wt_remaining_bytes - 1) / bb) + 1)
      in
      (* respect the 4KB rule *)
      let to_boundary =
        (Axi.Burst.boundary - (txn.wt_next_addr mod Axi.Burst.boundary)) / bb
      in
      let want_beats = min want_beats (max 1 to_boundary) in
      let have_items = txn.wt_unshipped in
      let want_items = want_beats * items_per_beat in
      let last_burst = txn.wt_pushed = txn.wt_total_items in
      if have_items >= want_items || last_burst then begin
        (* once everything is pushed, remaining beats may be pure padding
           (sub-beat tails written with byte strobes) *)
        let beats =
          if have_items > 0 then
            min want_beats (((have_items - 1) / items_per_beat) + 1)
          else want_beats
        in
        let burst_bytes = min (beats * bb) txn.wt_remaining_bytes in
        let burst_items = min have_items (beats * items_per_beat) in
        txn.wt_unshipped <- txn.wt_unshipped - burst_items;
        let addr = txn.wt_next_addr in
        txn.wt_next_addr <- txn.wt_next_addr + (beats * bb);
        txn.wt_remaining_bytes <- txn.wt_remaining_bytes - burst_bytes;
        txn.wt_in_flight <- txn.wt_in_flight + 1;
        txn.wt_bursts_outstanding <- txn.wt_bursts_outstanding + 1;
        if txn.wt_remaining_bytes = 0 then txn.wt_all_issued <- true;
        let id = pick_id w (addr / max 1 (beats * bb)) in
        let site = Printf.sprintf "%s wr burst@0x%x" w.w_cfg.Config.wc_name addr in
        let complete () =
          txn.wt_in_flight <- txn.wt_in_flight - 1;
          txn.wt_bursts_outstanding <- txn.wt_bursts_outstanding - 1;
          (* the B response frees the buffer space this burst held *)
          txn.wt_buffered <- txn.wt_buffered - burst_items;
          let rec admit n =
            if n > 0 then
              match Queue.take_opt txn.wt_waiting_push with
              | Some k -> k (); admit (n - 1)
              | None -> ()
          in
          admit burst_items;
          if txn.wt_all_issued && txn.wt_bursts_outstanding = 0 then begin
            w.w_busy <- false;
            w.w_txn <- None;
            txn.wt_on_done ()
          end
          else try_ship w txn
        in
        let rec attempt_write attempt =
          Axi.write ?span:txn.wt_span w.w_axi ~id ~addr ~beats
            ~on_done:(fun resp ->
              match resp with
              | Axi.Resp.Okay ->
                  fault_resolve w.w_soc ~cls:Fault.Class.Axi_write_error
                    ~n:attempt ~recovered:true ~site;
                  complete ()
              | Axi.Resp.Slverr | Axi.Resp.Decerr ->
                  if attempt < axi_retry_budget w.w_soc then
                    Desim.Engine.schedule w.w_soc.engine
                      ~delay:(axi_backoff w.w_soc ~attempt)
                      (fun () -> attempt_write (attempt + 1))
                  else begin
                    fault_resolve w.w_soc ~cls:Fault.Class.Axi_write_error
                      ~n:(attempt + 1) ~recovered:false ~site;
                    complete ()
                  end)
        in
        Desim.Engine.schedule w.w_soc.engine
          ~delay:(w.w_noc_ps + coherence_ps w.w_soc)
          (fun () -> attempt_write 0);
        try_ship w txn
      end
    end

  let begin_txn (w : w) ~addr ~bytes ~on_done =
    if w.w_busy then failwith "Writer busy: one transaction at a time";
    if bytes <= 0 then invalid_arg "Writer.begin_txn: bytes";
    w.w_busy <- true;
    let item_bytes = w.w_cfg.Config.wc_data_bytes in
    let bb = beat_bytes w in
    let addr0 = addr - (addr mod bb) in
    let padded = ((addr + bytes + bb - 1) / bb * bb) - addr0 in
    let span, on_done =
      Reader.stream_span w.w_soc ~track:w.w_track ~parent:w.w_parent
        ~hop_ps:w.w_noc_ps ~cat:"mem"
        ~name:(Printf.sprintf "wr.txn 0x%x %dB" addr bytes)
        ~on_done
    in
    w.w_txn <-
      Some
        {
          wt_span = span;
          wt_total_items = ((bytes - 1) / item_bytes) + 1;
          wt_item_bytes = item_bytes;
          wt_pushed = 0;
          wt_buffered = 0;
          wt_unshipped = 0;
          wt_next_addr = addr0;
          wt_remaining_bytes = padded;
          wt_in_flight = 0;
          wt_next_push_time = 0;
          wt_waiting_push = Queue.create ();
          wt_on_done = on_done;
          wt_bursts_outstanding = 0;
          wt_all_issued = false;
        }

  let push (w : w) ?item_bytes ~on_accept () =
    match w.w_txn with
    | None -> failwith "Writer.push: no open transaction"
    | Some txn ->
        ignore item_bytes;
        let bb = beat_bytes w in
        let items_per_beat = max 1 (bb / txn.wt_item_bytes) in
        let capacity = w.w_cfg.Config.wc_buffer_beats * items_per_beat in
        let engine = w.w_soc.engine in
        let clock_ps = w.w_soc.platform.Platform.Device.fabric_clock_ps in
        let admit () =
          txn.wt_pushed <- txn.wt_pushed + 1;
          txn.wt_buffered <- txn.wt_buffered + 1;
          txn.wt_unshipped <- txn.wt_unshipped + 1;
          let at =
            max (Desim.Engine.now engine) txn.wt_next_push_time
          in
          txn.wt_next_push_time <- at + clock_ps;
          Desim.Engine.schedule_at engine ~time:at (fun () ->
              on_accept ();
              try_ship w txn)
        in
        if txn.wt_buffered < capacity && Queue.is_empty txn.wt_waiting_push
        then admit ()
        else Queue.push admit txn.wt_waiting_push

  let bulk (w : w) ~addr ~bytes ~on_done =
    if w.w_busy then failwith "Writer busy: one transaction at a time";
    w.w_busy <- true;
    let engine = w.w_soc.engine in
    let span, on_done =
      Reader.stream_span w.w_soc ~track:w.w_track ~parent:w.w_parent
        ~hop_ps:w.w_noc_ps ~cat:"mem"
        ~name:(Printf.sprintf "wr.bulk 0x%x %dB" addr bytes)
        ~on_done
    in
    let prm = Axi.params w.w_axi in
    let bb = prm.Axi.Params.data_bytes in
    let addr0 = addr - (addr mod bb) in
    let padded = ((addr + bytes + bb - 1) / bb * bb) - addr0 in
    let prm' =
      {
        prm with
        Axi.Params.max_burst_beats =
          min prm.Axi.Params.max_burst_beats w.w_cfg.Config.wc_burst_beats;
      }
    in
    let segs =
      Array.of_list (Axi.Burst.split ~params:prm' ~addr:addr0 ~bytes:padded)
    in
    let n_segs = Array.length segs in
    let in_flight = ref 0 in
    let next_seg = ref 0 in
    let completed = ref 0 in
    let rec try_issue () =
      if !next_seg < n_segs && !in_flight < w.w_cfg.Config.wc_max_in_flight
      then begin
        let si = !next_seg in
        incr next_seg;
        incr in_flight;
        issue_seg si 0;
        try_issue ()
      end
    and issue_seg si attempt =
      let seg = segs.(si) in
      let id = pick_id w si in
      let site =
        Printf.sprintf "%s wr-bulk seg@0x%x" w.w_cfg.Config.wc_name
          seg.Axi.Burst.addr
      in
      let finish () =
        decr in_flight;
        incr completed;
        if !completed = n_segs then begin
          w.w_busy <- false;
          Desim.Engine.schedule engine ~delay:w.w_noc_ps (fun () -> on_done ())
        end
        else try_issue ()
      in
      Desim.Engine.schedule engine
        ~delay:(w.w_noc_ps + coherence_ps w.w_soc)
        (fun () ->
          Axi.write ?span w.w_axi ~id ~addr:seg.Axi.Burst.addr
            ~beats:seg.Axi.Burst.beats ~on_done:(fun resp ->
              match resp with
              | Axi.Resp.Okay ->
                  fault_resolve w.w_soc ~cls:Fault.Class.Axi_write_error
                    ~n:attempt ~recovered:true ~site;
                  finish ()
              | Axi.Resp.Slverr | Axi.Resp.Decerr ->
                  if attempt < axi_retry_budget w.w_soc then
                    Desim.Engine.schedule engine
                      ~delay:(axi_backoff w.w_soc ~attempt)
                      (fun () -> issue_seg si (attempt + 1))
                  else begin
                    fault_resolve w.w_soc ~cls:Fault.Class.Axi_write_error
                      ~n:(attempt + 1) ~recovered:false ~site;
                    finish ()
                  end))
    in
    try_issue ()
end

(* ------------------------------------------------------------------ *)
(* Scratchpad                                                          *)
(* ------------------------------------------------------------------ *)

module Scratchpad = struct
  type sp = spad

  let depth (sp : sp) = sp.sp_cfg.Config.sp_n_datas
  let latency (sp : sp) = sp.sp_cfg.Config.sp_latency

  let init_from_memory (sp : sp) ~addr ?bytes ~on_done () =
    let total = sp.sp_row_bytes * depth sp in
    let bytes = Option.value bytes ~default:total in
    if bytes > total then invalid_arg "Scratchpad.init: larger than capacity";
    Reader.bulk sp.sp_reader ~addr ~bytes ~on_done:(fun () ->
        (* contents land as the fill completes *)
        Bytes.blit sp.sp_soc.memory addr sp.sp_data 0 bytes;
        on_done ())

  let get (sp : sp) row =
    if row < 0 || row >= depth sp then invalid_arg "Scratchpad.get: row";
    Bytes.sub sp.sp_data (row * sp.sp_row_bytes) sp.sp_row_bytes

  let set (sp : sp) row v =
    if row < 0 || row >= depth sp then invalid_arg "Scratchpad.set: row";
    if Bytes.length v <> sp.sp_row_bytes then
      invalid_arg "Scratchpad.set: row width";
    Bytes.blit v 0 sp.sp_data (row * sp.sp_row_bytes) sp.sp_row_bytes

  let get_u64 (sp : sp) row =
    if row < 0 || row >= depth sp then invalid_arg "Scratchpad.get_u64: row";
    if sp.sp_row_bytes >= 8 then Bytes.get_int64_le sp.sp_data (row * sp.sp_row_bytes)
    else begin
      let v = ref 0L in
      for i = sp.sp_row_bytes - 1 downto 0 do
        v :=
          Int64.logor
            (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (Bytes.get sp.sp_data ((row * sp.sp_row_bytes) + i))))
      done;
      !v
    end

  let set_u64 (sp : sp) row v =
    if row < 0 || row >= depth sp then invalid_arg "Scratchpad.set_u64: row";
    let n = min sp.sp_row_bytes 8 in
    for i = 0 to n - 1 do
      Bytes.set sp.sp_data
        ((row * sp.sp_row_bytes) + i)
        (Char.chr
           (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
    done
end

(* ------------------------------------------------------------------ *)
(* SoC construction                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_axi_id t =
  let n = (Axi.params t.axi).Axi.Params.n_ids in
  let id = t.next_axi_id mod n in
  t.next_axi_id <- t.next_axi_id + 1;
  id

(* memory channels spread round-robin over the DDR controller ports, as
   the platform developer's channel assignment would *)
let port_for t ep = t.axi_ports.(ep mod Array.length t.axi_ports)

let make_reader t ~cfg ~ep ~noc_ps ~track ~parent =
  { r_soc = t; r_axi = port_for t ep; r_cfg = cfg; r_base_id = fresh_axi_id t;
    r_noc_ps = noc_ps; r_busy = false; r_track = track; r_parent = parent }

let spad_fill_channel (sp : Config.scratchpad) =
  Config.read_channel ~name:(sp.Config.sp_name ^ "[init]")
    ~data_bytes:(max 1 (sp.Config.sp_data_bits / 8))
    ()

let next_soc_uid = ref 0

let create ?(memory_bytes = 64 * 1024 * 1024) ?trace ?tracer ?fault
    ?(policy = Fault.Policy.default) (design : Elaborate.t) ~behaviors =
  incr next_soc_uid;
  let engine = Desim.Engine.create () in
  let platform = design.Elaborate.platform in
  let dram = Dram.create engine platform.Platform.Device.dram in
  (match tracer with Some tr -> Dram.set_tracer dram tr | None -> ());
  (* one AXI port per DDR controller; they share the DRAM device model,
     but each has its own per-ID transaction queues *)
  let n_ports = max 1 platform.Platform.Device.dram.Dram.Config.n_channels in
  let axi_ports =
    Array.init n_ports (fun i ->
        let name = Printf.sprintf "ddr%d" i in
        if i = 0 then
          Axi.create ?trace ?tracer ~name ?fault engine dram
            platform.Platform.Device.axi
        else
          Axi.create ?tracer ~name ?fault engine dram
            platform.Platform.Device.axi)
  in
  let axi = axi_ports.(0) in
  let n_cores = Config.total_cores design.Elaborate.config in
  let t =
    {
      soc_uid = !next_soc_uid;
      engine;
      design;
      platform;
      dram;
      axi;
      memory = Bytes.make memory_bytes '\000';
      ace_snoop_ps =
        (if platform.Platform.Device.host.Platform.Device.shared_address_space
         then 2 * platform.Platform.Device.fabric_clock_ps
         else 0);
      coherent_txns = 0;
      axi_ports;
      cores = [||];
      next_axi_id = 0;
      fault;
      policy;
      tracer;
    }
  in
  (* Wire the ECC/fault tap into the DRAM model: every read burst may
     corrupt a word (latching its pre-corruption codeword), then the
     controller scrubs the burst window; writes drop stale codewords. *)
  (match fault with
  | None -> ()
  | Some inj ->
      let ecc = Fault.Injector.ecc inj in
      Dram.set_burst_hook dram (fun ~addr ~bytes ~dir ->
          match dir with
          | Dram.Write ->
              if addr < Bytes.length t.memory then
                Fault.Ecc.note_write ecc ~addr
                  ~bytes:(min bytes (Bytes.length t.memory - addr))
          | Dram.Read ->
              if addr + bytes <= Bytes.length t.memory then begin
                let now = Desim.Engine.now engine in
                let flip ~cls ~bits =
                  let words = max 1 (bytes / 8) in
                  let word_addr =
                    addr + (8 * Fault.Injector.draw_int inj ~bound:words)
                  in
                  if word_addr + 8 <= Bytes.length t.memory then begin
                    let b1 = Fault.Injector.draw_int inj ~bound:64 in
                    Fault.Ecc.inject_flip ecc ~mem:t.memory ~word_addr ~bit:b1;
                    if bits > 1 then begin
                      let b2 =
                        (b1 + 1 + Fault.Injector.draw_int inj ~bound:63) mod 64
                      in
                      Fault.Ecc.inject_flip ecc ~mem:t.memory ~word_addr ~bit:b2
                    end;
                    Fault.Injector.log inj ~now ~cls ~kind:Fault.Log.Injected
                      ~site:
                        (Printf.sprintf "dram word 0x%x, %d bit%s flipped"
                           word_addr bits (if bits > 1 then "s" else ""))
                  end
                in
                if Fault.Injector.decide inj Fault.Class.Dram_flip then
                  flip ~cls:Fault.Class.Dram_flip ~bits:1;
                if Fault.Injector.decide inj Fault.Class.Dram_double_flip then
                  flip ~cls:Fault.Class.Dram_double_flip ~bits:2;
                (* the controller checks ECC on every read burst *)
                let corrected, uncorrectable =
                  Fault.Ecc.scrub ecc ~mem:t.memory ~addr ~bytes
                in
                for _ = 1 to corrected do
                  Fault.Injector.log inj ~now ~cls:Fault.Class.Dram_flip
                    ~kind:Fault.Log.Corrected
                    ~site:(Printf.sprintf "ecc corrected in burst@0x%x" addr)
                done;
                for _ = 1 to uncorrectable do
                  Fault.Injector.log inj ~now ~cls:Fault.Class.Dram_double_flip
                    ~kind:Fault.Log.Unrecovered
                    ~site:
                      (Printf.sprintf "ecc uncorrectable in burst@0x%x" addr)
                done
              end));
  let cores = Array.make n_cores None in
  List.iter
    (fun (sys : Config.system) ->
      for core = 0 to sys.Config.n_cores - 1 do
        let ep =
          Elaborate.cmd_endpoint design ~system:sys.Config.sys_name ~core
        in
        let ctx =
          { engine; clock_ps = platform.Platform.Device.fabric_clock_ps;
            core_id = core; system = sys; soc = t }
        in
        let mem_ep chan =
          Elaborate.mem_endpoint design ~system:sys.Config.sys_name ~core
            ~channel:chan
        in
        let mem_noc_ps chan =
          Noc.latency_ps design.Elaborate.mem_noc ~ep_id:(mem_ep chan)
        in
        (* the core's in-flight execution span; channel streams started by
           the behavior parent under it *)
        let cur_span = ref None in
        let parent () = !cur_span in
        let core_track =
          Printf.sprintf "core %s/%d" sys.Config.sys_name core
        in
        let chan_track chan = Printf.sprintf "%s %s" core_track chan in
        let readers = Hashtbl.create 4 in
        List.iter
          (fun rc ->
            let arr =
              Array.init rc.Config.rc_n_channels (fun i ->
                  let chan = Printf.sprintf "%s[%d]" rc.Config.rc_name i in
                  make_reader t ~cfg:rc ~ep:(mem_ep chan)
                    ~noc_ps:(mem_noc_ps chan) ~track:(chan_track chan)
                    ~parent)
            in
            Hashtbl.add readers rc.Config.rc_name arr)
          sys.Config.read_channels;
        let writers = Hashtbl.create 4 in
        List.iter
          (fun wc ->
            let arr =
              Array.init wc.Config.wc_n_channels (fun i ->
                  let chan = Printf.sprintf "%s[%d]" wc.Config.wc_name i in
                  {
                    w_soc = t;
                    w_axi = port_for t (mem_ep chan);
                    w_cfg = wc;
                    w_base_id = fresh_axi_id t;
                    w_noc_ps = mem_noc_ps chan;
                    w_busy = false;
                    w_txn = None;
                    w_track = chan_track chan;
                    w_parent = parent;
                  })
            in
            Hashtbl.add writers wc.Config.wc_name arr)
          sys.Config.write_channels;
        let spads = Hashtbl.create 4 in
        List.iter
          (fun sp ->
            let row_bytes = max 1 ((sp.Config.sp_data_bits + 7) / 8) in
            let noc_ps, sp_ep =
              if sp.Config.sp_init_from_memory then
                let chan = Printf.sprintf "%s[init]" sp.Config.sp_name in
                (mem_noc_ps chan, mem_ep chan)
              else (0, 0)
            in
            Hashtbl.add spads sp.Config.sp_name
              {
                sp_cfg = sp;
                sp_soc = t;
                sp_reader =
                  make_reader t ~cfg:(spad_fill_channel sp) ~ep:sp_ep ~noc_ps
                    ~track:(chan_track (sp.Config.sp_name ^ "[init]"))
                    ~parent;
                sp_data = Bytes.make (row_bytes * sp.Config.sp_n_datas) '\000';
                sp_row_bytes = row_bytes;
              })
          sys.Config.scratchpads;
        cores.(ep) <-
          Some
            {
              ci_ctx = ctx;
              ci_readers = readers;
              ci_writers = writers;
              ci_spads = spads;
              ci_behavior = behaviors sys.Config.sys_name;
              ci_queue = Queue.create ();
              ci_partial = [];
              ci_busy = false;
              ci_hung = false;
              ci_partial_epoch = 0;
              ci_track = core_track;
              ci_cur_span = cur_span;
            }
      done)
    design.Elaborate.config.Config.systems;
  t.cores <- Array.map Option.get cores;
  t

let engine t = t.engine
let uid t = t.soc_uid
let tracer t = t.tracer
let fault_injector t = t.fault
let policy t = t.policy
let axi_ports t = t.axi_ports
let design t = t.design
let platform t = t.platform
let dram t = t.dram
let axi t = t.axi

(* ------------------------------------------------------------------ *)
(* Command dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let find_core t ~system ~core =
  let ep = Elaborate.cmd_endpoint t.design ~system ~core in
  t.cores.(ep)

let cmd_key t ~system_id ~core_id =
  let sys = List.nth t.design.Elaborate.config.Config.systems system_id in
  Elaborate.cmd_endpoint t.design ~system:sys.Config.sys_name ~core:core_id

let core_hung t ~system_id ~core_id =
  t.cores.(cmd_key t ~system_id ~core_id).ci_hung

let spec_for (sys : Config.system) funct =
  List.find_opt (fun c -> c.Cmd_spec.cmd_funct = funct) sys.Config.commands

let queue_depth_name (ci : core_inst) =
  Printf.sprintf "cmdq.%s/%d.depth" ci.ci_ctx.system.Config.sys_name
    ci.ci_ctx.core_id

let rec pump_core t (ci : core_inst) =
  if (not ci.ci_busy) && (not ci.ci_hung) && not (Queue.is_empty ci.ci_queue)
  then begin
    ci.ci_busy <- true;
    let beats, cmd_span, respond = Queue.pop ci.ci_queue in
    let start = Desim.Engine.now t.engine in
    let exec_span =
      match t.tracer with
      | None -> None
      | Some tr ->
          Trace.sample tr ~now:start (queue_depth_name ci)
            (Queue.length ci.ci_queue);
          Some
            (Trace.begin_span tr ~now:start ?parent:cmd_span
               ~track:ci.ci_track ~cat:"exec"
               ~name:
                 (Printf.sprintf "exec funct=%d"
                    (List.hd beats).Rocc.funct)
               ())
    in
    ci.ci_cur_span := exec_span;
    ci.ci_behavior ci.ci_ctx beats ~respond:(fun data ->
        ci.ci_busy <- false;
        (match (t.tracer, exec_span) with
        | Some tr, Some sp ->
            let now = Desim.Engine.now t.engine in
            Trace.end_span tr ~now sp;
            Trace.add tr
              (Printf.sprintf "%s.busy_ps" ci.ci_track)
              (now - start);
            ci.ci_cur_span := None
        | _ -> ());
        respond data;
        pump_core t ci)
  end

(* One message over the command NoC with fault decoration: delay
   injection/recovery is logged, drops are recorded under [key] for the
   runtime watchdog to resolve. Without a fault injector this is a plain
   [Noc.send]. *)
let cmd_noc_send t ~ep_id ~key ~drop_cls ~site ?span k =
  let cmd_noc = t.design.Elaborate.cmd_noc in
  let tracer = t.tracer in
  match t.fault with
  | None ->
      ignore (Noc.send cmd_noc t.engine ~ep_id ?tracer ~label:"cmd" ?span k)
  | Some inj -> (
      let delayed = ref false in
      let k' () =
        if !delayed then
          Fault.Injector.log inj ~now:(Desim.Engine.now t.engine)
            ~cls:Fault.Class.Noc_delay ~kind:Fault.Log.Recovered ~site;
        k ()
      in
      match
        Noc.send cmd_noc t.engine ~ep_id ?tracer ~label:"cmd" ?span
          ~fault:(inj, drop_cls) k'
      with
      | Noc.Delivered -> ()
      | Noc.Delayed d ->
          delayed := true;
          Fault.Injector.log inj ~now:(Desim.Engine.now t.engine)
            ~cls:Fault.Class.Noc_delay ~kind:Fault.Log.Injected
            ~site:(Printf.sprintf "%s (+%d ps)" site d)
      | Noc.Dropped ->
          Fault.Injector.note_lost inj ~now:(Desim.Engine.now t.engine)
            ~cls:drop_cls ~key ~site;
          (match (tracer, span) with
          | Some tr, Some sp ->
              (* tie the lost message back to its ledger entry *)
              Trace.add_arg tr sp "fault_id"
                (Trace.Int (Fault.Injector.last_id inj))
          | _ -> ()))

let send_command ?span t (cmd : Rocc.t) ~on_response =
  let systems = t.design.Elaborate.config.Config.systems in
  if cmd.Rocc.system_id < 0 || cmd.Rocc.system_id >= List.length systems then
    invalid_arg
      (Printf.sprintf "Soc.send_command: no system %d" cmd.Rocc.system_id);
  let sys = List.nth systems cmd.Rocc.system_id in
  if cmd.Rocc.core_id < 0 || cmd.Rocc.core_id >= sys.Config.n_cores then
    invalid_arg
      (Printf.sprintf "Soc.send_command: %s has no core %d"
         sys.Config.sys_name cmd.Rocc.core_id);
  let ci = find_core t ~system:sys.Config.sys_name ~core:cmd.Rocc.core_id in
  let ep =
    Elaborate.cmd_endpoint t.design ~system:sys.Config.sys_name
      ~core:cmd.Rocc.core_id
  in
  let noc_ps = Noc.latency_ps t.design.Elaborate.cmd_noc ~ep_id:ep in
  let mmio_ps = t.platform.Platform.Device.host.Platform.Device.mmio_latency_ps in
  Log.debug (fun m ->
      m "cmd sys=%d core=%d funct=%d @%dps" cmd.Rocc.system_id
        cmd.Rocc.core_id cmd.Rocc.funct (Desim.Engine.now t.engine));
  ignore noc_ps;
  let deliver () =
    (* a hung core swallows its traffic; the runtime watchdog notices *)
    if not ci.ci_hung then begin
      ci.ci_partial <- ci.ci_partial @ [ cmd ];
      ci.ci_partial_epoch <- ci.ci_partial_epoch + 1;
      let expected =
        match spec_for sys cmd.Rocc.funct with
        | Some spec -> Cmd_spec.rocc_beats spec
        | None -> 1
      in
      if List.length ci.ci_partial >= expected then begin
        let beats = ci.ci_partial in
        ci.ci_partial <- [];
        let hang =
          match t.fault with
          | Some inj ->
              Fault.Injector.should_hang inj ~system:cmd.Rocc.system_id
                ~core:cmd.Rocc.core_id
          | None -> false
        in
        if hang then begin
          let inj = Option.get t.fault in
          ci.ci_hung <- true;
          Fault.Injector.note_lost inj
            ~now:(Desim.Engine.now t.engine)
            ~cls:Fault.Class.Core_hang ~key:ep
            ~site:
              (Printf.sprintf "core sys=%d core=%d hung at dispatch"
                 cmd.Rocc.system_id cmd.Rocc.core_id)
        end
        else begin
          let respond data =
            (* response returns over the NoC and is picked up at the MMIO
               frontend *)
            cmd_noc_send t ~ep_id:ep ~key:ep
              ~drop_cls:Fault.Class.Noc_resp_drop
              ~site:
                (Printf.sprintf "resp sys=%d core=%d" cmd.Rocc.system_id
                   cmd.Rocc.core_id)
              ?span
              (fun () ->
                Desim.Engine.schedule t.engine ~delay:mmio_ps (fun () ->
                    on_response
                      {
                        Rocc.resp_system_id = cmd.Rocc.system_id;
                        resp_core_id = cmd.Rocc.core_id;
                        resp_data = data;
                      }))
          in
          Queue.push (beats, span, respond) ci.ci_queue;
          (match t.tracer with
          | Some tr ->
              Trace.sample tr
                ~now:(Desim.Engine.now t.engine)
                (queue_depth_name ci)
                (Queue.length ci.ci_queue)
          | None -> ());
          pump_core t ci
        end
      end
      else begin
        (* arm the reassembly watchdog: if the rest of a multi-beat
           command never lands (a dropped beat), the stale partial is
           torn down so a retry reassembles from a clean slate *)
        match t.fault with
        | None -> ()
        | Some _ ->
            let epoch = ci.ci_partial_epoch in
            Desim.Engine.schedule t.engine
              ~delay:t.policy.Fault.Policy.partial_timeout_ps (fun () ->
                if ci.ci_partial_epoch = epoch && ci.ci_partial <> [] then begin
                  ci.ci_partial <- [];
                  ci.ci_partial_epoch <- ci.ci_partial_epoch + 1;
                  Log.debug (fun m ->
                      m "partial command timed out sys=%d core=%d"
                        cmd.Rocc.system_id cmd.Rocc.core_id)
                end)
      end
    end
  in
  (* the write crosses the MMIO frontend, then the command NoC carries
     the beat to the core *)
  Desim.Engine.schedule t.engine ~delay:mmio_ps (fun () ->
      cmd_noc_send t ~ep_id:ep ~key:ep ~drop_cls:Fault.Class.Noc_cmd_drop
        ~site:
          (Printf.sprintf "cmd beat sys=%d core=%d funct=%d"
             cmd.Rocc.system_id cmd.Rocc.core_id cmd.Rocc.funct)
        ?span deliver)

(* ------------------------------------------------------------------ *)
(* Behavior-facing accessors                                           *)
(* ------------------------------------------------------------------ *)

let core_of_ctx (ctx : ctx) =
  find_core ctx.soc ~system:ctx.system.Config.sys_name ~core:ctx.core_id

let reader ctx ?(idx = 0) name =
  match Hashtbl.find_opt (core_of_ctx ctx).ci_readers name with
  | Some arr when idx < Array.length arr -> arr.(idx)
  | _ -> invalid_arg ("Soc.reader: no channel " ^ name)

let writer ctx ?(idx = 0) name =
  match Hashtbl.find_opt (core_of_ctx ctx).ci_writers name with
  | Some arr when idx < Array.length arr -> arr.(idx)
  | _ -> invalid_arg ("Soc.writer: no channel " ^ name)

let scratchpad ctx name =
  match Hashtbl.find_opt (core_of_ctx ctx).ci_spads name with
  | Some sp -> sp
  | None -> invalid_arg ("Soc.scratchpad: no scratchpad " ^ name)

module Intercore = struct
  type port = {
    p_ctx : ctx;
    p_cfg : Config.intra_core_port;
    mutable p_next_send : int;
  }

  let write port ~target_core ~row ~data ~on_done =
    let ctx = port.p_ctx in
    let t = ctx.soc in
    let target_sys = port.p_cfg.Config.ic_to_system in
    let target =
      try find_core t ~system:target_sys ~core:target_core
      with Invalid_argument _ ->
        invalid_arg "Intercore.write: bad target core"
    in
    let sp =
      match
        Hashtbl.find_opt target.ci_spads port.p_cfg.Config.ic_to_scratchpad
      with
      | Some sp -> sp
      | None -> invalid_arg "Intercore.write: target scratchpad missing"
    in
    if Bytes.length data <> sp.sp_row_bytes then
      invalid_arg "Intercore.write: row width mismatch";
    if row < 0 || row >= sp.sp_cfg.Config.sp_n_datas then
      invalid_arg "Intercore.write: row out of range";
    (* route: source core -> fabric root -> target core, one write per
       cycle per channel *)
    let src_ep =
      Elaborate.cmd_endpoint t.design ~system:ctx.system.Config.sys_name
        ~core:ctx.core_id
    in
    let dst_ep =
      Elaborate.cmd_endpoint t.design ~system:target_sys ~core:target_core
    in
    let latency =
      Noc.latency_ps t.design.Elaborate.cmd_noc ~ep_id:src_ep
      + Noc.latency_ps t.design.Elaborate.cmd_noc ~ep_id:dst_ep
    in
    let now = Desim.Engine.now ctx.engine in
    let start = max now port.p_next_send in
    port.p_next_send <- start + ctx.clock_ps;
    Desim.Engine.schedule_at ctx.engine ~time:(start + latency) (fun () ->
        Scratchpad.set sp row data;
        on_done ())
end

let intercore_out (ctx : ctx) name =
  match
    List.find_opt
      (fun ic -> ic.Config.ic_name = name)
      ctx.system.Config.intra_core_ports
  with
  | Some cfg -> { Intercore.p_ctx = ctx; p_cfg = cfg; p_next_send = 0 }
  | None -> invalid_arg ("Soc.intercore_out: no port " ^ name)

let after_cycles (ctx : ctx) n k =
  Desim.Engine.schedule ctx.engine ~delay:(n * ctx.clock_ps) k

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let stats_report t =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let now = Desim.Engine.now t.engine in
  pr "SoC statistics after %.3f us simulated:\n" (float_of_int now /. 1e6);
  pr "  DRAM: %d B read, %d B written, %.2f GB/s achieved, %d row hits / %d misses\n"
    (Dram.bytes_read t.dram) (Dram.bytes_written t.dram)
    (Dram.achieved_bandwidth_gbs t.dram)
    (Dram.row_hits t.dram) (Dram.row_misses t.dram);
  let reads =
    Array.fold_left (fun acc p -> acc + Axi.reads_issued p) 0 t.axi_ports
  in
  let writes =
    Array.fold_left (fun acc p -> acc + Axi.writes_issued p) 0 t.axi_ports
  in
  pr "  AXI: %d read txns, %d write txns over %d port(s)" reads writes
    (Array.length t.axi_ports);
  (match Desim.Stats.summarize_opt (Axi.read_latency t.axi) with
  | Some s ->
      pr ", read latency mean %.0f ns (max %.0f)" (s.Desim.Stats.mean /. 1000.)
        (s.Desim.Stats.max /. 1000.)
  | None -> ());
  pr "\n";
  pr "  NoC: %d command messages, %d memory-fabric buffers\n"
    (Noc.messages_sent t.design.Elaborate.cmd_noc)
    (Noc.n_buffers t.design.Elaborate.mem_noc);
  if t.ace_snoop_ps > 0 then
    pr "  ACE: %d coherent transactions (%d ps snoop each)\n"
      t.coherent_txns t.ace_snoop_ps;
  (match t.fault with
  | None -> ()
  | Some inj ->
      pr "  faults: %s\n" (Fault.Injector.counters_line inj);
      let ecc = Fault.Injector.ecc inj in
      pr "  ECC: %d corrected, %d uncorrectable\n" (Fault.Ecc.corrected ecc)
        (Fault.Ecc.uncorrectable ecc));
  Buffer.contents buf

let coherent_transactions t = t.coherent_txns
