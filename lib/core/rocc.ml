type t = {
  system_id : int;
  core_id : int;
  funct : int;
  expects_response : bool;
  payload1 : int64;
  payload2 : int64;
}

let opcode_custom0 = 0b0001011
let width = 160

let check_range name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Rocc: %s = %d out of range [%d, %d]" name v lo hi)

(* Instruction layout (32 bits):
     [31:25] funct7      — command selector
     [24:20] rs2         — core_id high bits
     [19:15] rs1         — core_id low bits
     [14]    xd          — expects_response
     [13:12] (xs1, xs2)  — always set: payloads are always carried
     [11:7]  rd          — system_id low 5 bits
     [6:0]   opcode      — custom-0, with system_id high 3 bits folded into
                           a side channel: we keep opcode pure and put
                           system_id[7:5] in rs2's top bits instead. *)
let encode t =
  check_range "system_id" t.system_id 0 255;
  check_range "core_id" t.core_id 0 1023;
  check_range "funct" t.funct 0 127;
  let funct7 = Bits.of_int ~width:7 t.funct in
  let core = t.core_id in
  let rs2 = Bits.of_int ~width:5 (core lsr 5) in
  let rs1 = Bits.of_int ~width:5 (core land 0x1f) in
  let xd = if t.expects_response then Bits.one 1 else Bits.zero 1 in
  let xs = Bits.of_int ~width:2 0b11 in
  let sys = t.system_id in
  let rd = Bits.of_int ~width:5 (sys land 0x1f) in
  let opcode =
    (* custom-0/1/2/3 encode system_id[6:5] in the opcode "custom" index *)
    Bits.of_int ~width:7 (opcode_custom0 lor ((sys lsr 5) lsl 4))
  in
  let insn = Bits.concat_list [ funct7; rs2; rs1; xd; xs; rd; opcode ] in
  assert (Bits.width insn = 32);
  Bits.concat_list
    [ insn; Bits.of_int64 ~width:64 t.payload1; Bits.of_int64 ~width:64 t.payload2 ]

let decode b =
  if Bits.width b <> width then invalid_arg "Rocc.decode: wrong width";
  let insn = Bits.slice b ~hi:159 ~lo:128 in
  let payload1 = Bits.to_int64 (Bits.slice b ~hi:127 ~lo:64) in
  let payload2 = Bits.to_int64 (Bits.slice b ~hi:63 ~lo:0) in
  let field hi lo = Bits.to_int (Bits.slice insn ~hi ~lo) in
  let opcode = field 6 0 in
  if opcode land 0b1111 <> opcode_custom0 land 0b1111 then
    invalid_arg "Rocc.decode: not a custom opcode";
  let funct = field 31 25 in
  let core_id = (field 24 20 lsl 5) lor field 19 15 in
  let expects_response = field 14 14 = 1 in
  let system_id = (((opcode lsr 4) land 0b111) lsl 5) lor field 11 7 in
  { system_id; core_id; funct; expects_response; payload1; payload2 }

type response = {
  resp_system_id : int;
  resp_core_id : int;
  resp_data : int64;
}

let response_width = 96

let encode_response r =
  check_range "resp_system_id" r.resp_system_id 0 255;
  check_range "resp_core_id" r.resp_core_id 0 1023;
  Bits.concat_list
    [
      Bits.of_int ~width:8 r.resp_system_id;
      Bits.of_int ~width:10 r.resp_core_id;
      Bits.zero 14;
      Bits.of_int64 ~width:64 r.resp_data;
    ]

let decode_response b =
  if Bits.width b <> response_width then
    invalid_arg "Rocc.decode_response: wrong width";
  {
    resp_system_id = Bits.to_int (Bits.slice b ~hi:95 ~lo:88);
    resp_core_id = Bits.to_int (Bits.slice b ~hi:87 ~lo:78);
    resp_data = Bits.to_int64 (Bits.slice b ~hi:63 ~lo:0);
  }
