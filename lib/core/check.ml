module Diag = Hw.Diag
module R = Platform.Resources
module FM = Platform.Fpga_mem
module D = Platform.Device

let rules =
  [
    ( "drc-name-collision",
      Diag.Error,
      "duplicate system/channel/scratchpad/command names break codegen" );
    ( "drc-core-count",
      Diag.Error,
      "core counts must be in [1, 1024] (RoCC core_id range)" );
    ( "drc-rocc-encoding",
      Diag.Error,
      "system ids, functs and payload beats must fit the RoCC encoding" );
    ( "drc-funct-collision",
      Diag.Error,
      "two commands sharing a funct are indistinguishable to the decoder" );
    ( "drc-dangling-ref",
      Diag.Error,
      "intra-core ports must name existing systems and scratchpads" );
    ( "drc-axi-capacity",
      Diag.Warning,
      "more memory channels than AXI IDs serializes transactions" );
    ( "drc-scratchpad-capacity",
      Diag.Error,
      "scratchpad requests must fit the platform's memory cells" );
    ( "drc-floorplan",
      Diag.Error,
      "every core must fit on some SLR after the shell and reserves" );
    ( "drc-sta-slr-path",
      Diag.Error,
      "estimated worst logic path plus the SLR-crossing tax must fit the \
       depth budget (warning on-die, error across dies)" );
  ]

let err ?loc ?hint rule msg =
  Diag.make ?loc ?hint ~rule ~severity:Diag.Error msg

let warn ?loc ?hint rule msg =
  Diag.make ?loc ?hint ~rule ~severity:Diag.Warning msg

let dup_names ~rule ~what ~loc names =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then Some (err ~loc rule (Printf.sprintf "duplicate %s %S" what n))
      else begin
        Hashtbl.add seen n ();
        None
      end)
    names

(* RoCC limits (Rocc.encode): 8-bit system_id, 10-bit core_id, 7-bit funct *)
let max_systems = 256
let max_cores_per_system = 1024
let max_funct = 127
let max_cmd_beats = 8

let structure (config : Config.t) =
  let systems = config.Config.systems in
  let acc = config.Config.acc_name in
  let sys_dups =
    dup_names ~rule:"drc-name-collision" ~what:"system" ~loc:acc
      (List.map (fun s -> s.Config.sys_name) systems)
  in
  let too_many =
    if List.length systems > max_systems then
      [
        err ~loc:acc "drc-rocc-encoding"
          (Printf.sprintf
             "%d systems exceed the RoCC system_id space (%d)"
             (List.length systems) max_systems);
      ]
    else []
  in
  let per_system =
    List.concat_map
      (fun (sys : Config.system) ->
        let loc = acc ^ "." ^ sys.Config.sys_name in
        let cores =
          if sys.Config.n_cores < 1 then
            [ err ~loc "drc-core-count" "system declares no cores" ]
          else if sys.Config.n_cores > max_cores_per_system then
            [
              err ~loc "drc-core-count"
                (Printf.sprintf
                   "%d cores exceed the RoCC core_id space (%d)"
                   sys.Config.n_cores max_cores_per_system);
            ]
          else []
        in
        let name_dups =
          dup_names ~rule:"drc-name-collision" ~what:"memory channel" ~loc
            (List.map (fun rc -> rc.Config.rc_name) sys.Config.read_channels
            @ List.map (fun wc -> wc.Config.wc_name) sys.Config.write_channels
            )
          @ dup_names ~rule:"drc-name-collision" ~what:"scratchpad" ~loc
              (List.map (fun sp -> sp.Config.sp_name) sys.Config.scratchpads)
          @ dup_names ~rule:"drc-name-collision" ~what:"command" ~loc
              (List.map
                 (fun c -> c.Cmd_spec.cmd_name)
                 sys.Config.commands)
        in
        let functs =
          let seen = Hashtbl.create 8 in
          List.concat_map
            (fun (c : Cmd_spec.command) ->
              let range =
                if c.Cmd_spec.cmd_funct < 0 || c.Cmd_spec.cmd_funct > max_funct
                then
                  [
                    err ~loc "drc-rocc-encoding"
                      (Printf.sprintf "command %S funct %d outside [0, %d]"
                         c.Cmd_spec.cmd_name c.Cmd_spec.cmd_funct max_funct);
                  ]
                else []
              in
              let beats =
                if Cmd_spec.rocc_beats c > max_cmd_beats then
                  [
                    err ~loc "drc-rocc-encoding"
                      (Printf.sprintf
                         "command %S needs %d RoCC beats (limit %d)"
                         c.Cmd_spec.cmd_name (Cmd_spec.rocc_beats c)
                         max_cmd_beats);
                  ]
                else []
              in
              let collide =
                match Hashtbl.find_opt seen c.Cmd_spec.cmd_funct with
                | Some other ->
                    [
                      err ~loc
                        ~hint:"give each command of a system a distinct funct"
                        "drc-funct-collision"
                        (Printf.sprintf
                           "commands %S and %S share funct %d" other
                           c.Cmd_spec.cmd_name c.Cmd_spec.cmd_funct);
                    ]
                | None ->
                    Hashtbl.add seen c.Cmd_spec.cmd_funct c.Cmd_spec.cmd_name;
                    []
              in
              range @ beats @ collide)
            sys.Config.commands
        in
        let refs =
          List.concat_map
            (fun (ic : Config.intra_core_port) ->
              match
                List.find_opt
                  (fun s -> s.Config.sys_name = ic.Config.ic_to_system)
                  systems
              with
              | None ->
                  [
                    err ~loc "drc-dangling-ref"
                      (Printf.sprintf
                         "intra-core port %S targets unknown system %S"
                         ic.Config.ic_name ic.Config.ic_to_system);
                  ]
              | Some target ->
                  if
                    List.exists
                      (fun sp ->
                        sp.Config.sp_name = ic.Config.ic_to_scratchpad)
                      target.Config.scratchpads
                  then []
                  else
                    [
                      err ~loc "drc-dangling-ref"
                        (Printf.sprintf
                           "intra-core port %S targets unknown scratchpad \
                            %S of system %S"
                           ic.Config.ic_name ic.Config.ic_to_scratchpad
                           ic.Config.ic_to_system);
                    ])
            sys.Config.intra_core_ports
        in
        cores @ name_dups @ functs @ refs)
      systems
  in
  sys_dups @ too_many @ per_system

(* memory channel instances a system contributes per core *)
let mem_channels_per_core (sys : Config.system) =
  List.fold_left (fun a rc -> a + rc.Config.rc_n_channels) 0
    sys.Config.read_channels
  + List.fold_left (fun a wc -> a + wc.Config.wc_n_channels) 0
      sys.Config.write_channels
  + List.length
      (List.filter (fun sp -> sp.Config.sp_init_from_memory)
         sys.Config.scratchpads)

let axi_capacity (config : Config.t) (p : D.t) =
  let n_ids = p.D.axi.Axi.Params.n_ids in
  let instances =
    List.fold_left
      (fun acc sys -> acc + (sys.Config.n_cores * mem_channels_per_core sys))
      0 config.Config.systems
  in
  let shared =
    if instances > n_ids then
      [
        warn ~loc:config.Config.acc_name
          ~hint:"reduce channel counts/cores, or accept per-ID \
                 serialization at the memory controller"
          "drc-axi-capacity"
          (Printf.sprintf
             "%d memory channel instances share %d AXI IDs on %s"
             instances n_ids p.D.name);
      ]
    else []
  in
  let tlp_depth =
    List.concat_map
      (fun sys ->
        let loc = config.Config.acc_name ^ "." ^ sys.Config.sys_name in
        List.filter_map
          (fun rc ->
            if rc.Config.rc_use_tlp && rc.Config.rc_max_in_flight > n_ids
            then
              Some
                (warn ~loc "drc-axi-capacity"
                   (Printf.sprintf
                      "reader %S wants %d transactions in flight but the \
                       platform has %d AXI IDs"
                      rc.Config.rc_name rc.Config.rc_max_in_flight n_ids))
            else None)
          sys.Config.read_channels
        @ List.filter_map
            (fun wc ->
              if wc.Config.wc_use_tlp && wc.Config.wc_max_in_flight > n_ids
              then
                Some
                  (warn ~loc "drc-axi-capacity"
                     (Printf.sprintf
                        "writer %S wants %d transactions in flight but the \
                         platform has %d AXI IDs"
                        wc.Config.wc_name wc.Config.wc_max_in_flight n_ids))
              else None)
            sys.Config.write_channels)
      config.Config.systems
  in
  shared @ tlp_depth

let scratchpad_capacity (config : Config.t) (p : D.t) =
  match p.D.sram_library with
  | Some library ->
      (* ASIC: every request must compile to macros *)
      List.concat_map
        (fun sys ->
          List.filter_map
            (fun sp ->
              let loc =
                Printf.sprintf "%s.%s" sys.Config.sys_name sp.Config.sp_name
              in
              match
                Platform.Sram.compile ~library
                  ~width_bits:sp.Config.sp_data_bits
                  ~depth:sp.Config.sp_n_datas
              with
              | (_ : Platform.Sram.plan) -> None
              | exception (Invalid_argument m | Failure m) ->
                  Some
                    (err ~loc "drc-scratchpad-capacity"
                       ("SRAM compiler cannot realize the request: " ^ m)))
            sys.Config.scratchpads)
        config.Config.systems
  | None ->
      let cap = D.total_capacity p in
      if cap.R.bram = max_int || cap.R.uram = max_int then []
      else begin
        let bram_demand = ref 0 and uram_demand = ref 0 and bits = ref 0 in
        List.iter
          (fun sys ->
            List.iter
              (fun sp ->
                let choice =
                  FM.preferred ~width_bits:sp.Config.sp_data_bits
                    ~depth:sp.Config.sp_n_datas
                in
                (match choice.FM.cell with
                | FM.Bram ->
                    bram_demand :=
                      !bram_demand + (choice.FM.count * sys.Config.n_cores)
                | FM.Uram ->
                    uram_demand :=
                      !uram_demand + (choice.FM.count * sys.Config.n_cores)
                | FM.Lutram -> ());
                bits :=
                  !bits
                  + sp.Config.sp_data_bits * sp.Config.sp_n_datas
                    * sys.Config.n_cores)
              sys.Config.scratchpads)
          config.Config.systems;
        let capacity_bits =
          (cap.R.bram * FM.bram_bits) + (cap.R.uram * FM.uram_bits)
        in
        if !bits > capacity_bits then
          [
            err ~loc:config.Config.acc_name
              ~hint:"shrink the scratchpads or reduce the core count"
              "drc-scratchpad-capacity"
              (Printf.sprintf
                 "scratchpads request %d bits of storage but %s has only \
                  %d bits of BRAM+URAM"
                 !bits p.D.name capacity_bits);
          ]
        else if !bram_demand > cap.R.bram || !uram_demand > cap.R.uram then
          [
            warn ~loc:config.Config.acc_name "drc-scratchpad-capacity"
              (Printf.sprintf
                 "preferred cell mapping needs %d BRAM (of %d) and %d URAM \
                  (of %d); the floorplanner will have to spill"
                 !bram_demand cap.R.bram !uram_demand cap.R.uram);
          ]
        else []
      end

let floorplan_feasibility (config : Config.t) (p : D.t) =
  match Floorplan.place config p with
  | (_ : Floorplan.t) -> []
  | exception (Failure m | Invalid_argument m) ->
      [
        err ~loc:config.Config.acc_name
          ~hint:"reduce cores/memories, raise the spill threshold, or pick \
                 a larger platform"
          "drc-floorplan" m;
      ]

(* ---- static timing over RTL-DSL kernels ---- *)

(* Worst-path budget in Sta "levels of logic". Calibrated against the
   bundled kernels: the deepest (the 64-lane reduction in a3-rtl) sits
   well under it even after the cross-SLR tax on aws_f1, while an
   unpipelined long chain (hundreds of chained adds) blows through it. *)
let default_sta_budget = 256

(* The placement-independent per-system analysis: the lint pass, the
   STA report and the circuit stats of one kernel circuit. This is the
   unit {!Elaborate.Cache} memoizes, so it must depend on nothing but
   the system record itself. *)
type kernel_analysis = {
  ka_lint : Diag.t list;
  ka_sta : Hw.Sta.report option;
  ka_stats : (string * int) list option;
}

let analyze_kernel (sys : Config.system) =
  match sys.Config.kernel_circuit with
  | None -> { ka_lint = []; ka_sta = None; ka_stats = None }
  | Some c ->
      let lint =
        List.map
          (fun (d : Diag.t) ->
            let loc =
              match d.Diag.loc with
              | Some l -> sys.Config.sys_name ^ ": " ^ l
              | None ->
                  sys.Config.sys_name ^ ": circuit " ^ Hw.Circuit.name c
            in
            { d with Diag.loc = Some loc })
          (Hw.Lint.circuit ~lutram_max_bits:FM.lutram_max_bits c)
      in
      {
        ka_lint = lint;
        ka_sta = Some (Hw.Sta.of_circuit c);
        ka_stats = Some (Hw.Circuit.stats c);
      }

let analyses_of ?analyses (config : Config.t) =
  List.map
    (fun (sys : Config.system) ->
      let name = sys.Config.sys_name in
      match Option.bind analyses (List.assoc_opt name) with
      | Some a -> (name, a)
      | None -> (name, analyze_kernel sys))
    config.Config.systems

let sta ?analyses (config : Config.t) =
  let analyses = analyses_of ?analyses config in
  List.filter_map
    (fun (name, a) -> Option.map (fun r -> (name, r)) a.ka_sta)
    analyses

let sta_paths ?(budget = default_sta_budget) ~analyses (config : Config.t)
    (p : D.t) =
  (* placement infeasibility is drc-floorplan's report, not ours *)
  match Floorplan.place config p with
  | exception (Failure _ | Invalid_argument _) -> []
  | fp ->
      let tax = p.D.noc.Noc.Params.slr_crossing_latency_cycles in
      List.concat_map
        (fun (sys : Config.system) ->
          match
            Option.bind
              (List.assoc_opt sys.Config.sys_name analyses)
              (fun a -> a.ka_sta)
          with
          | None -> []
          | Some r ->
              (* the frontend (command/memory roots) lives with the shell
                 on SLR 0; a core placed n dies away pays the crossing
                 penalty on every path to it *)
              let crossings =
                let worst = ref 0 in
                for core = 0 to sys.Config.n_cores - 1 do
                  worst :=
                    max !worst
                      (abs
                         (Floorplan.slr_of fp ~system:sys.Config.sys_name
                            ~core))
                done;
                !worst
              in
              let taxed = r.Hw.Sta.r_max_delay + (tax * crossings) in
              if taxed <= budget then []
              else
                let loc = config.Config.acc_name ^ "." ^ sys.Config.sys_name in
                let msg =
                  Printf.sprintf
                    "worst path of kernel %S is %d (delay %d + %d SLR \
                     crossing(s) x %d), over the budget of %d"
                    r.Hw.Sta.r_circuit taxed r.Hw.Sta.r_max_delay crossings
                    tax budget
                in
                let hint =
                  "pipeline the kernel (cut the worst path with registers) \
                   or keep its cores on the shell SLR"
                in
                if crossings > 0 then
                  [ err ~loc ~hint "drc-sta-slr-path" msg ]
                else [ warn ~loc ~hint "drc-sta-slr-path" msg ])
        config.Config.systems

let run ?(lint_kernels = true) ?sta_budget ?analyses (config : Config.t)
    (p : D.t) =
  let analyses = analyses_of ?analyses config in
  let structural = structure config in
  let mapping =
    (* capacity / placement checks assume a structurally sound config *)
    if Diag.has_errors structural then []
    else
      axi_capacity config p
      @ scratchpad_capacity config p
      @ floorplan_feasibility config p
      @ sta_paths ?budget:sta_budget ~analyses config p
  in
  let lint =
    if lint_kernels then List.concat_map (fun (_, a) -> a.ka_lint) analyses
    else []
  in
  structural @ mapping @ lint
