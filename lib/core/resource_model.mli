(** Resource cost model for Beethoven-generated logic.

    Base (logic-only) costs of each primitive; memory cells are chosen
    separately during floorplanning with the SLR-utilization-aware mapper.
    The constants are calibrated against the per-component utilization the
    paper publishes for the 23-core A³ design (Table II), which is the one
    public ground truth for this generator's output. *)

val reader_base : Platform.Resources.t
val writer_base : Platform.Resources.t
val scratchpad_base : Platform.Resources.t
(** Control logic of a scratchpad (init FSM + ports), excluding both its
    storage cells and its fill Reader. *)

val mmio_frontend : Platform.Resources.t
(** The AXI-MMIO command/response system (one per accelerator). *)

val noc_buffer : width_bits:int -> Platform.Resources.t
(** One interconnect tree node switching a payload of the given width. *)

val mem_noc_width_bits : Platform.Device.t -> int
(** Payload width of the memory interconnect: data bus + address + id. *)

val cmd_noc_width_bits : int
(** RoCC command width + routing. *)

val reader_buffer_bits : Config.read_channel -> Platform.Device.t -> int
val writer_buffer_bits : Config.write_channel -> Platform.Device.t -> int

val circuit_estimate : Hw.Circuit.t -> Platform.Resources.t
(** Rough LUT/FF estimate for a kernel written in the RTL DSL, from its
    netlist statistics. *)

val core_logic :
  Config.system -> Platform.Device.t -> Platform.Resources.t
(** Per-core logic cost: kernel + all primitive bases (no memory cells). *)
