type field_kind = Uint of int | Address
type field = { f_name : string; f_kind : field_kind }

type command = {
  cmd_name : string;
  cmd_funct : int;
  fields : field list;
  has_response : bool;
  resp_bits : int;
}

let field_bits f = match f.f_kind with Uint w -> w | Address -> 64
let payload_bits c = List.fold_left (fun acc f -> acc + field_bits f) 0 c.fields
let rocc_beats c = max 1 (((payload_bits c - 1) / 128) + 1)

let make ~name ~funct ?(response_bits = 0) fields =
  if name = "" then invalid_arg "Cmd_spec.make: empty command name";
  if funct < 0 || funct > 127 then invalid_arg "Cmd_spec.make: funct range";
  if response_bits < 0 || response_bits > 64 then
    invalid_arg "Cmd_spec.make: response width";
  let seen = Hashtbl.create 8 in
  let fields =
    List.map
      (fun (f_name, f_kind) ->
        if f_name = "" then invalid_arg "Cmd_spec.make: empty field name";
        if Hashtbl.mem seen f_name then
          invalid_arg ("Cmd_spec.make: duplicate field " ^ f_name);
        Hashtbl.add seen f_name ();
        (match f_kind with
        | Uint w when w < 1 || w > 64 ->
            invalid_arg ("Cmd_spec.make: bad width for " ^ f_name)
        | _ -> ());
        { f_name; f_kind })
      fields
  in
  let c =
    {
      cmd_name = name;
      cmd_funct = funct;
      fields;
      has_response = true;
      resp_bits = response_bits;
    }
  in
  if rocc_beats c > 8 then invalid_arg "Cmd_spec.make: payload too large";
  c

let mask64 w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

(* Fields pack LSB-first into a contiguous payload, then split into 64-bit
   words; words pair up into (payload1, payload2) per beat. *)
let pack c values =
  let declared = List.map (fun f -> f.f_name) c.fields in
  let given = List.map fst values in
  if List.sort compare declared <> List.sort compare given then
    invalid_arg "Cmd_spec.pack: field set mismatch";
  let beats = rocc_beats c in
  let words = Array.make (beats * 2) 0L in
  let pos = ref 0 in
  List.iter
    (fun f ->
      let w = field_bits f in
      let v = List.assoc f.f_name values in
      if w < 64 && Int64.unsigned_compare v (mask64 w) > 0 then
        invalid_arg ("Cmd_spec.pack: value too wide for " ^ f.f_name);
      (* write w bits of v at bit offset !pos *)
      let word = !pos / 64 and off = !pos mod 64 in
      words.(word) <-
        Int64.logor words.(word) (Int64.shift_left v off);
      if off + w > 64 then begin
        let spill = Int64.shift_right_logical v (64 - off) in
        words.(word + 1) <- Int64.logor words.(word + 1) spill
      end;
      pos := !pos + w)
    c.fields;
  List.init beats (fun i -> (words.(2 * i), words.((2 * i) + 1)))

let unpack c pairs =
  let beats = rocc_beats c in
  if List.length pairs <> beats then
    invalid_arg "Cmd_spec.unpack: wrong number of beats";
  let words = Array.make (beats * 2) 0L in
  List.iteri
    (fun i (p1, p2) ->
      words.(2 * i) <- p1;
      words.((2 * i) + 1) <- p2)
    pairs;
  let pos = ref 0 in
  List.map
    (fun f ->
      let w = field_bits f in
      let word = !pos / 64 and off = !pos mod 64 in
      let v = Int64.shift_right_logical words.(word) off in
      let v =
        if off + w > 64 then
          Int64.logor v (Int64.shift_left words.(word + 1) (64 - off))
        else v
      in
      let v = Int64.logand v (mask64 w) in
      pos := !pos + w;
      (f.f_name, v))
    c.fields
