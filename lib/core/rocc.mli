(** Rocket Custom Co-processor (RoCC) instruction format.

    Beethoven carries host commands in RoCC form: a 32-bit custom RISC-V
    instruction plus two 64-bit source-register payloads. The composer
    packs routing information (system id, core id) into the instruction so
    the generated fabric can steer a command to its target core; custom
    command formats (§II-B "Command Abstractions") are packed into one or
    more RoCC commands transparently. *)

type t = {
  system_id : int;  (** 0..255 — selects the Beethoven System *)
  core_id : int;  (** 0..1023 — selects the core within the system *)
  funct : int;  (** 0..127 — selects the command (IO) on the core *)
  expects_response : bool;
  payload1 : int64;
  payload2 : int64;
}

val opcode_custom0 : int

val encode : t -> Bits.t
(** 160-bit wire form: [instruction(32) :: payload1(64) :: payload2(64)].
    Raises [Invalid_argument] if a field is out of range. *)

val decode : Bits.t -> t
(** Inverse of {!encode}; raises [Invalid_argument] on a wrong width or a
    non-custom opcode. *)

val width : int (** = 160 *)

(** {1 Responses} *)

type response = {
  resp_system_id : int;
  resp_core_id : int;
  resp_data : int64;
}

val encode_response : response -> Bits.t (** 96 bits *)

val decode_response : Bits.t -> response
val response_width : int
