(** RTL cores inside the simulated SoC.

    This is the paper's primary developer surface: the user writes only
    the Core's RTL (Fig. 2) against Beethoven's command and memory-stream
    interfaces, and the composer supplies everything around it. Here the
    Core is an {!Hw.Circuit} following the port convention below; this
    module bridges it — cycle by cycle, through {!Hw.Sim} (the compiled
    {!Hw.Compile} backend by default, {!Hw.Cyclesim} on request) — to the
    transaction-level command fabric and Reader/Writer models, so the
    RTL's own datapath computes the results while the memory system
    provides the timing.

    {2 Port convention (the [BeethovenIO] equivalent)}

    Command side (inputs unless noted):
    - [req_valid]:1, [req_funct]:7, [req_p1]:64, [req_p2]:64;
      output [req_ready]:1 — one RoCC beat per fire.
    - output [resp_valid]:1, output [resp_data]:64; input [resp_ready]:1.

    Per read channel [c] (declared in the configuration):
    - outputs [c_req_valid]:1, [c_req_addr]:64, [c_req_len]:32 (bytes);
      input [c_req_ready]:1.
    - inputs [c_data_valid]:1, [c_data]:8*data_bytes;
      output [c_data_ready]:1.

    Per write channel [c]:
    - outputs [c_req_valid]:1, [c_req_addr]:64, [c_req_len]:32;
      input [c_req_ready]:1.
    - outputs [c_data_valid]:1, [c_data]:8*data_bytes;
      input [c_data_ready]:1.

    The bridge asserts [resp_ready] permanently and completes the command
    when the core raises [resp_valid] *and* every write transaction it
    opened has received its final write response. *)

val behavior :
  ?backend:Hw.Sim.backend ->
  build:(unit -> Hw.Circuit.t) ->
  unit ->
  Soc.behavior
(** A {!Soc.behavior} that instantiates one circuit per core (lazily, via
    [build]) and clocks it at the fabric rate while a command is active.
    [backend] selects the simulator ({!Hw.Sim.default_backend}, the
    compiled one, when omitted); both backends are bit-identical, so this
    only changes speed. Raises [Failure] at first use if the circuit is
    missing a required port or a port width disagrees with the channel
    configuration. *)
