(** Custom command/response formats (§II-B "Command Abstractions").

    A developer declares the payload of an accelerator command as named,
    sized fields ([AccelCommand] in Fig. 2). Beethoven packs these onto the
    RoCC payload registers — possibly across several RoCC beats — and the
    generated C++ bindings ({!Codegen}) expose the same fields as typed
    function arguments, so the packing never leaks into user code. *)

type field_kind =
  | Uint of int  (** unsigned integer of the given bit width (1..64) *)
  | Address  (** a device address; width fixed by the platform (64 here) *)

type field = { f_name : string; f_kind : field_kind }

type command = {
  cmd_name : string;
  cmd_funct : int;  (** RoCC funct selector, unique per system *)
  fields : field list;
  has_response : bool;
  resp_bits : int;  (** response payload width (<= 64) *)
}

val field_bits : field -> int
val payload_bits : command -> int
val rocc_beats : command -> int
(** Number of RoCC commands needed: each carries 128 payload bits. *)

val make :
  name:string ->
  funct:int ->
  ?response_bits:int ->
  (string * field_kind) list ->
  command
(** [response_bits] of 0 (the default) means an empty/ack-only response
    ([EmptyAccelResponse]). Raises on duplicate or empty field names, bad
    widths, or more than 8 beats of payload. *)

val pack : command -> (string * int64) list -> (int64 * int64) list
(** Field values → RoCC payload pairs, one pair per beat. Values must cover
    exactly the declared fields; over-width values are rejected. *)

val unpack : command -> (int64 * int64) list -> (string * int64) list
(** Inverse of {!pack}. *)
