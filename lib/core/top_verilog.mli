(** Structural Verilog for the composed SoC.

    Where {!Hw.Verilog} prints one user Core, this module emits the
    generated system around it: the top module with the platform's
    external interfaces (AXI-MMIO slave, one AXI master per memory
    channel), one instance per accelerator core, Reader/Writer adapter
    instances per memory channel, the command- and memory-NoC buffer
    trees, and the MMIO frontend — each Beethoven-managed block as a
    module with its full port list and a behavioural placeholder body
    (the simulation models in this library are their reference
    semantics). SLR assignments appear as per-instance pblock comments
    matching {!Floorplan.constraints}. *)

val generate : Elaborate.t -> string
(** The complete [beethoven_top.v] text. *)
