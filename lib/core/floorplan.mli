(** SLR-aware core placement and memory-cell mapping.

    Greedy capacity balancing: cores are placed one at a time onto the SLR
    whose peak utilization stays lowest, accounting for the shell's
    footprint (which biases placement away from SLR0/1 on the F1, the
    affinity behaviour the paper describes). Each placed core's memories
    are then mapped to BRAM/URAM with the 80 % spill rule against that
    SLR's running totals — so identical cores can legitimately end up with
    different cell mixes (Table II's 45/15 BRAM vs 0/32 URAM cores). *)

type memory_map = {
  mm_name : string;  (** scratchpad or channel-buffer name *)
  mm_choice : Platform.Fpga_mem.choice;
}

type core_place = {
  cp_system : string;
  cp_core : int;  (** index within the system *)
  cp_slr : int;
  cp_logic : Platform.Resources.t;
  cp_memories : memory_map list;
  cp_total : Platform.Resources.t;  (** logic + memory cells *)
}

type t = {
  places : core_place list;
  used_per_slr : Platform.Resources.t array;  (** includes shell *)
  platform : Platform.Device.t;
}

val place : Config.t -> Platform.Device.t -> t
(** Raises [Failure] with a diagnostic when the design cannot fit. *)

val slr_of : t -> system:string -> core:int -> int
val cores_on_slr : t -> int -> core_place list

val constraints : t -> string
(** Vivado-style pblock placement constraints enforcing the floorplan. *)

val render : t -> string
(** ASCII floorplan in the style of Fig. 8: cores listed per SLR. *)
