module R = Platform.Resources

type t = {
  config : Config.t;
  platform : Platform.Device.t;
  diagnostics : Hw.Diag.t list;
  floorplan : Floorplan.t;
  cmd_noc : Noc.t;
  mem_noc : Noc.t;
  mem_endpoints : ((string * int * string) * int) list;
  interconnect : R.t;
  frontend : R.t;
  beethoven_total : R.t;
  grand_total : R.t;
  sram_plans : (string * Platform.Sram.plan) list;
  sta : (string * Hw.Sta.report) list;
  kernel_stats : (string * (string * int) list) list;
}

(* Flattened (system, core) list in config order. *)
let all_cores (config : Config.t) =
  List.concat_map
    (fun sys ->
      List.init sys.Config.n_cores (fun core -> (sys, core)))
    config.Config.systems

(* Memory channel instances of one core: (channel-name, index). *)
let mem_channels (sys : Config.system) =
  List.concat_map
    (fun rc ->
      List.init rc.Config.rc_n_channels (fun i ->
          Printf.sprintf "%s[%d]" rc.Config.rc_name i))
    sys.Config.read_channels
  @ List.concat_map
      (fun wc ->
        List.init wc.Config.wc_n_channels (fun i ->
            Printf.sprintf "%s[%d]" wc.Config.wc_name i))
      sys.Config.write_channels
  @ List.filter_map
      (fun sp ->
        if sp.Config.sp_init_from_memory then
          Some (Printf.sprintf "%s[init]" sp.Config.sp_name)
        else None)
      sys.Config.scratchpads

let cmd_ep_id config ~system ~core =
  let rec go idx = function
    | [] -> invalid_arg "Elaborate: unknown system"
    | sys :: rest ->
        if sys.Config.sys_name = system then begin
          if core < 0 || core >= sys.Config.n_cores then
            invalid_arg "Elaborate: core index out of range";
          idx + core
        end
        else go (idx + sys.Config.n_cores) rest
  in
  go 0 config.Config.systems

(* The elaboration body, parameterized over the per-system kernel
   analyses so {!Cache.elaborate} can substitute memoized ones. With
   matching analyses the result is identical to a fresh run — the
   cache-equivalence property test/test_tune.ml pins. *)
let elaborate_with ?(checks = true) ~analyses (config : Config.t)
    (platform : Platform.Device.t) =
  let diagnostics =
    if checks then begin
      let diags = Check.run ~analyses config platform in
      Hw.Diag.raise_if_errors ~what:"design-rule check" diags;
      diags
    end
    else []
  in
  let floorplan = Floorplan.place config platform in
  let cores = all_cores config in
  (* command NoC: one endpoint per core *)
  let cmd_endpoints =
    List.map
      (fun (sys, core) ->
        {
          Noc.ep_id = cmd_ep_id config ~system:sys.Config.sys_name ~core;
          ep_slr =
            Floorplan.slr_of floorplan ~system:sys.Config.sys_name ~core;
        })
      cores
  in
  let cmd_noc =
    Noc.build platform.Platform.Device.noc ~root_slr:0 ~endpoints:cmd_endpoints
  in
  (* memory NoC: one endpoint per memory channel instance *)
  let mem_endpoints_assoc = ref [] in
  let next_ep = ref 0 in
  let mem_endpoints =
    List.concat_map
      (fun (sys, core) ->
        let slr =
          Floorplan.slr_of floorplan ~system:sys.Config.sys_name ~core
        in
        List.map
          (fun chan ->
            let ep = !next_ep in
            incr next_ep;
            mem_endpoints_assoc :=
              ((sys.Config.sys_name, core, chan), ep) :: !mem_endpoints_assoc;
            { Noc.ep_id = ep; ep_slr = slr })
          (mem_channels sys))
      cores
  in
  let mem_noc =
    Noc.build platform.Platform.Device.noc ~root_slr:0 ~endpoints:mem_endpoints
  in
  let interconnect =
    R.add
      (R.scale
         (Resource_model.noc_buffer
            ~width_bits:(Resource_model.mem_noc_width_bits platform))
         (Noc.n_buffers mem_noc))
      (R.scale
         (Resource_model.noc_buffer
            ~width_bits:Resource_model.cmd_noc_width_bits)
         (Noc.n_buffers cmd_noc))
  in
  let frontend = Resource_model.mmio_frontend in
  let cores_total =
    R.sum (List.map (fun cp -> cp.Floorplan.cp_total) floorplan.Floorplan.places)
  in
  let beethoven_total = R.sum [ cores_total; interconnect; frontend ] in
  let grand_total =
    R.add beethoven_total (Platform.Device.total_shell platform)
  in
  (* ASIC targets: compile every scratchpad request to SRAM macros *)
  let sram_plans =
    match platform.Platform.Device.sram_library with
    | None -> []
    | Some library ->
        List.concat_map
          (fun sys ->
            List.map
              (fun sp ->
                ( Printf.sprintf "%s.%s" sys.Config.sys_name sp.Config.sp_name,
                  Platform.Sram.compile ~library
                    ~width_bits:sp.Config.sp_data_bits
                    ~depth:sp.Config.sp_n_datas ))
              sys.Config.scratchpads)
          config.Config.systems
  in
  {
    config;
    platform;
    diagnostics;
    floorplan;
    cmd_noc;
    mem_noc;
    mem_endpoints = List.rev !mem_endpoints_assoc;
    interconnect;
    frontend;
    beethoven_total;
    grand_total;
    sram_plans;
    sta = Check.sta ~analyses config;
    kernel_stats =
      List.filter_map
        (fun (name, a) ->
          Option.map (fun s -> (name, s)) a.Check.ka_stats)
        analyses;
  }

let elaborate ?checks (config : Config.t) (platform : Platform.Device.t) =
  elaborate_with ?checks ~analyses:(Check.analyses_of config) config platform

(* ------------------------------------------------------------------ *)
(* Content-hashed elaboration cache                                   *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type cache = {
    tbl : (string, Check.kernel_analysis) Hashtbl.t;
    mutable c_hits : int;
    mutable c_misses : int;
    mutable c_last : (string * bool) list;  (* most recent lookup first *)
  }

  let create () =
    { tbl = Hashtbl.create 64; c_hits = 0; c_misses = 0; c_last = [] }

  (* FNV-1a 64-bit over the canonical serialization below. Int64.mul
     wraps on overflow, which is exactly the FNV modulus. *)
  let fnv1a64 s =
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun ch ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code ch)))
            0x100000001b3L)
      s;
    !h

  (* Kernel circuits are large shared DAGs; digest their emitted Verilog
     once per physical circuit value (the bundled kernels are module-level
     constants, so physical identity is the common case) and remember a
     bounded window of them. *)
  let circuit_digests : (Hw.Circuit.t * string) list ref = ref []
  let circuit_digest_window = 32

  let circuit_digest c =
    match List.find_opt (fun (c', _) -> c' == c) !circuit_digests with
    | Some (_, d) -> d
    | None ->
        let d = Printf.sprintf "%016Lx" (fnv1a64 (Hw.Verilog.of_circuit c)) in
        let kept =
          List.filteri
            (fun i _ -> i < circuit_digest_window - 1)
            !circuit_digests
        in
        circuit_digests := (c, d) :: kept;
        d

  (* Canonical serialization of the per-system Config slice: every field
     that can influence the cached analysis (and, conservatively, every
     knob of the record) lands in the key, so equal keys imply equal
     analyses and any knob delta forces a re-analysis of that system
     only. *)
  let serialize_system (sys : Config.system) =
    let b = Buffer.create 256 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "sys:%s;cores:%d;" sys.Config.sys_name sys.Config.n_cores;
    List.iter
      (fun (rc : Config.read_channel) ->
        pf "rd:%s,%d,%d,%d,%d,%b,%d;" rc.Config.rc_name rc.Config.rc_data_bytes
          rc.Config.rc_n_channels rc.Config.rc_burst_beats
          rc.Config.rc_max_in_flight rc.Config.rc_use_tlp
          rc.Config.rc_buffer_beats)
      sys.Config.read_channels;
    List.iter
      (fun (wc : Config.write_channel) ->
        pf "wr:%s,%d,%d,%d,%d,%b,%d;" wc.Config.wc_name wc.Config.wc_data_bytes
          wc.Config.wc_n_channels wc.Config.wc_burst_beats
          wc.Config.wc_max_in_flight wc.Config.wc_use_tlp
          wc.Config.wc_buffer_beats)
      sys.Config.write_channels;
    List.iter
      (fun (sp : Config.scratchpad) ->
        pf "sp:%s,%d,%d,%d,%d,%b;" sp.Config.sp_name sp.Config.sp_data_bits
          sp.Config.sp_n_datas sp.Config.sp_n_ports sp.Config.sp_latency
          sp.Config.sp_init_from_memory)
      sys.Config.scratchpads;
    List.iter
      (fun (ic : Config.intra_core_port) ->
        pf "ic:%s,%s,%s,%d;" ic.Config.ic_name ic.Config.ic_to_system
          ic.Config.ic_to_scratchpad ic.Config.ic_n_channels)
      sys.Config.intra_core_ports;
    List.iter
      (fun (c : Cmd_spec.command) ->
        pf "cmd:%s,%d,%b,%d[" c.Cmd_spec.cmd_name c.Cmd_spec.cmd_funct
          c.Cmd_spec.has_response c.Cmd_spec.resp_bits;
        List.iter
          (fun (f : Cmd_spec.field) ->
            match f.Cmd_spec.f_kind with
            | Cmd_spec.Uint w -> pf "%s:u%d," f.Cmd_spec.f_name w
            | Cmd_spec.Address -> pf "%s:addr," f.Cmd_spec.f_name)
          c.Cmd_spec.fields;
        pf "];")
      sys.Config.commands;
    let r = sys.Config.kernel_resources in
    pf "res:%d,%d,%d,%d,%d,%d;" r.Platform.Resources.clb
      r.Platform.Resources.lut r.Platform.Resources.ff
      r.Platform.Resources.bram r.Platform.Resources.uram
      r.Platform.Resources.dsp;
    (match sys.Config.kernel_circuit with
    | None -> pf "circ:none"
    | Some c -> pf "circ:%s" (circuit_digest c));
    Buffer.contents b

  let system_key (sys : Config.system) =
    Printf.sprintf "%016Lx" (fnv1a64 (serialize_system sys))

  let lookup t (sys : Config.system) (platform : Platform.Device.t) =
    let key = system_key sys ^ "@" ^ platform.Platform.Device.name in
    match Hashtbl.find_opt t.tbl key with
    | Some a ->
        t.c_hits <- t.c_hits + 1;
        t.c_last <- (sys.Config.sys_name, true) :: t.c_last;
        a
    | None ->
        let a = Check.analyze_kernel sys in
        Hashtbl.replace t.tbl key a;
        t.c_misses <- t.c_misses + 1;
        t.c_last <- (sys.Config.sys_name, false) :: t.c_last;
        a

  let elaborate ?checks t (config : Config.t) (platform : Platform.Device.t)
      =
    t.c_last <- [];
    let analyses =
      List.map
        (fun (sys : Config.system) ->
          (sys.Config.sys_name, lookup t sys platform))
        config.Config.systems
    in
    elaborate_with ?checks ~analyses config platform

  let hits t = t.c_hits
  let misses t = t.c_misses
  let entries t = Hashtbl.length t.tbl
  let last_lookups t = List.rev t.c_last

  let stats_line t =
    Printf.sprintf "elab-cache: %d hit(s), %d miss(es), %d entrie(s)"
      t.c_hits t.c_misses (Hashtbl.length t.tbl)
end

let cmd_endpoint t ~system ~core = cmd_ep_id t.config ~system ~core

let mem_endpoint t ~system ~core ~channel =
  match List.assoc_opt (system, core, channel) t.mem_endpoints with
  | Some ep -> ep
  | None ->
      invalid_arg
        (Printf.sprintf "Elaborate.mem_endpoint: no channel %s on %s[%d]"
           channel system core)

let resource_table t =
  let cap = Platform.Device.total_capacity t.platform in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let row name (r : R.t) =
    let pct used total =
      if total = 0 || total = max_int then "-"
      else Printf.sprintf "%.1f%%" (100. *. float_of_int used /. float_of_int total)
    in
    pr "%-22s %8s %8s %8s %6s %6s | %6s %6s\n" name
      (List.nth (R.to_row r) 0) (List.nth (R.to_row r) 1)
      (List.nth (R.to_row r) 2) (List.nth (R.to_row r) 3)
      (List.nth (R.to_row r) 4)
      (pct r.R.clb cap.R.clb)
      (pct r.R.lut cap.R.lut)
  in
  pr "%-22s %8s %8s %8s %6s %6s | %6s %6s\n" "" "CLB" "LUT" "FF" "BRAM"
    "URAM" "CLB%" "LUT%";
  row "Total (w/ shell)" t.grand_total;
  row "Beethoven" t.beethoven_total;
  row "Interconnect" t.interconnect;
  row "MMIO frontend" t.frontend;
  (match t.floorplan.Floorplan.places with
  | [] -> ()
  | first :: _ ->
      row
        (Printf.sprintf "Core (1 of %d)" (List.length t.floorplan.Floorplan.places))
        first.Floorplan.cp_total;
      List.iter
        (fun mm ->
          let cells =
            match mm.Floorplan.mm_choice.Platform.Fpga_mem.cell with
            | Platform.Fpga_mem.Bram ->
                R.make ~bram:mm.Floorplan.mm_choice.Platform.Fpga_mem.count ()
            | Platform.Fpga_mem.Uram ->
                R.make ~uram:mm.Floorplan.mm_choice.Platform.Fpga_mem.count ()
            | Platform.Fpga_mem.Lutram -> R.make ~lut:64 ()
          in
          row ("  mem: " ^ mm.Floorplan.mm_name) cells)
        first.Floorplan.cp_memories);
  Buffer.contents buf

let cpp_header t = Codegen.header t.config
let cpp_stubs t = Codegen.stubs t.config
let constraints t = Floorplan.constraints t.floorplan

let verilog t =
  List.filter_map
    (fun sys ->
      match sys.Config.kernel_circuit with
      | Some c ->
          (* hand the tool flow the optimized netlist *)
          Some
            (sys.Config.sys_name,
             Hw.Verilog.of_circuit (Hw.Opt.constant_fold c))
      | None -> None)
    t.config.Config.systems

let summary t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "Accelerator %S on %s\n" t.config.Config.acc_name
    t.platform.Platform.Device.name;
  pr "  %d system(s), %d core(s) total\n"
    (List.length t.config.Config.systems)
    (Config.total_cores t.config);
  pr "  command NoC: %s\n"
    (String.concat " / " (String.split_on_char '\n' (Noc.describe t.cmd_noc)));
  pr "  memory NoC:  %s\n"
    (String.concat " / " (String.split_on_char '\n' (Noc.describe t.mem_noc)));
  pr "%s" (Floorplan.render t.floorplan);
  List.iter
    (fun (name, plan) ->
      pr "  SRAM %s: %s\n" name (Platform.Sram.describe plan))
    t.sram_plans;
  List.iter
    (fun (sys, r) ->
      pr "  kernel %s: %d node(s), comb depth %d, max delay %d (%s model)\n"
        sys r.Hw.Sta.r_nodes r.Hw.Sta.r_comb_depth r.Hw.Sta.r_max_delay
        (Hw.Sta.model_name r.Hw.Sta.r_model))
    t.sta;
  Buffer.contents buf
