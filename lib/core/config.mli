(** Accelerator configuration — the [AcceleratorConfig] of Fig. 3.

    A configuration declares, without touching the core's functional
    description: the memory channels each core owns (Readers / Writers /
    Scratchpads and their tuning knobs), the number of identical cores in a
    System, the command formats, and an estimate of the kernel's resource
    footprint (taken from an {!Hw.Circuit} when the core is written in the
    RTL DSL, or supplied directly for transaction-level core models). *)

type read_channel = {
  rc_name : string;
  rc_data_bytes : int;  (** port width the core consumes, e.g. 4 *)
  rc_n_channels : int;
  rc_burst_beats : int;  (** AXI beats per emitted transaction *)
  rc_max_in_flight : int;  (** concurrent transactions (prefetch depth) *)
  rc_use_tlp : bool;  (** distinct AXI IDs per transaction *)
  rc_buffer_beats : int;  (** prefetch buffer capacity, AXI beats *)
}

type write_channel = {
  wc_name : string;
  wc_data_bytes : int;
  wc_n_channels : int;
  wc_burst_beats : int;
  wc_max_in_flight : int;
  wc_use_tlp : bool;
  wc_buffer_beats : int;
}

type scratchpad = {
  sp_name : string;
  sp_data_bits : int;
  sp_n_datas : int;
  sp_n_ports : int;
  sp_latency : int;
  sp_init_from_memory : bool;  (** fill via a built-in Reader on command *)
}

type intra_core_port = {
  ic_name : string;
  ic_to_system : string;
  ic_to_scratchpad : string;
  ic_n_channels : int;
}

type system = {
  sys_name : string;
  n_cores : int;
  read_channels : read_channel list;
  write_channels : write_channel list;
  scratchpads : scratchpad list;
  intra_core_ports : intra_core_port list;
  commands : Cmd_spec.command list;
  kernel_resources : Platform.Resources.t;
      (** per-core cost of the user's kernel logic, excluding the
          Beethoven-managed primitives (estimated separately) *)
  kernel_circuit : Hw.Circuit.t option;
}

type t = { acc_name : string; systems : system list }

val read_channel :
  ?n_channels:int ->
  ?burst_beats:int ->
  ?max_in_flight:int ->
  ?use_tlp:bool ->
  ?buffer_beats:int ->
  name:string ->
  data_bytes:int ->
  unit ->
  read_channel
(** Defaults: 1 channel, 64-beat bursts, 4 in flight, TLP on, 256-beat
    buffer — the platform tuning the paper describes for the F1 target. *)

val write_channel :
  ?n_channels:int ->
  ?burst_beats:int ->
  ?max_in_flight:int ->
  ?use_tlp:bool ->
  ?buffer_beats:int ->
  name:string ->
  data_bytes:int ->
  unit ->
  write_channel

val scratchpad :
  ?n_ports:int ->
  ?latency:int ->
  ?init_from_memory:bool ->
  name:string ->
  data_bits:int ->
  n_datas:int ->
  unit ->
  scratchpad

val system :
  ?read_channels:read_channel list ->
  ?write_channels:write_channel list ->
  ?scratchpads:scratchpad list ->
  ?intra_core_ports:intra_core_port list ->
  ?commands:Cmd_spec.command list ->
  ?kernel_resources:Platform.Resources.t ->
  ?kernel_circuit:Hw.Circuit.t ->
  name:string ->
  n_cores:int ->
  unit ->
  system

val make : name:string -> system list -> t
(** Validates: unique system names, unique channel/scratchpad names within
    a system, unique functs, positive core counts. *)

val find_system : t -> string -> system
val total_cores : t -> int
