module R = Platform.Resources
module FM = Platform.Fpga_mem

type memory_map = { mm_name : string; mm_choice : FM.choice }

type core_place = {
  cp_system : string;
  cp_core : int;
  cp_slr : int;
  cp_logic : R.t;
  cp_memories : memory_map list;
  cp_total : R.t;
}

type t = {
  places : core_place list;
  used_per_slr : R.t array;
  platform : Platform.Device.t;
}

(* The memory requests (name, width, depth) a single core of this system
   makes: explicit scratchpads plus reader/writer prefetch buffers. *)
let memory_requests (sys : Config.system) (p : Platform.Device.t) =
  let spads =
    List.map
      (fun sp ->
        (sp.Config.sp_name, sp.Config.sp_data_bits, sp.Config.sp_n_datas))
      sys.Config.scratchpads
  in
  let beat_bits = p.Platform.Device.axi.Axi.Params.data_bytes * 8 in
  let readers =
    List.concat_map
      (fun rc ->
        List.init rc.Config.rc_n_channels (fun i ->
            ( Printf.sprintf "%s.buf%d" rc.Config.rc_name i,
              beat_bits,
              rc.Config.rc_buffer_beats )))
      sys.Config.read_channels
  in
  let writers =
    List.concat_map
      (fun wc ->
        List.init wc.Config.wc_n_channels (fun i ->
            ( Printf.sprintf "%s.buf%d" wc.Config.wc_name i,
              beat_bits,
              wc.Config.wc_buffer_beats )))
      sys.Config.write_channels
  in
  spads @ readers @ writers

let cells_resource (choice : FM.choice) =
  match choice.FM.cell with
  | FM.Bram -> R.make ~bram:choice.FM.count ()
  | FM.Uram -> R.make ~uram:choice.FM.count ()
  | FM.Lutram -> R.make ~lut:64 ()

(* Fraction of each SLR's logic held back for the interconnect and MMIO
   frontend, which are generated after placement and must still fit. *)
let interconnect_reserve = 0.08

let place (config : Config.t) (p : Platform.Device.t) =
  let slrs = Array.of_list p.Platform.Device.slrs in
  let used =
    Array.map (fun s -> s.Platform.Device.shell) slrs
  in
  let reserve n =
    if n = max_int then n
    else n - int_of_float (float_of_int n *. interconnect_reserve)
  in
  let caps =
    Array.map
      (fun (s : Platform.Device.slr) ->
        let c = s.Platform.Device.capacity in
        { c with R.clb = reserve c.R.clb; lut = reserve c.R.lut;
                 ff = reserve c.R.ff })
      slrs
  in
  let places = ref [] in
  List.iter
    (fun sys ->
      let logic = Resource_model.core_logic sys p in
      let requests = memory_requests sys p in
      for core = 0 to sys.Config.n_cores - 1 do
        (* trial-map the memories against each SLR, pick the SLR with the
           lowest resulting peak utilization *)
        let candidate slr_i =
          let u = used.(slr_i) in
          let cap = caps.(slr_i) in
          let bram_used = ref u.R.bram and uram_used = ref u.R.uram in
          let memories =
            List.map
              (fun (name, width_bits, depth) ->
                let choice =
                  FM.choose ~width_bits ~depth ~bram_used:!bram_used
                    ~bram_avail:cap.R.bram ~uram_used:!uram_used
                    ~uram_avail:cap.R.uram
                    ~spill_threshold:p.Platform.Device.memory_spill_threshold
                    ()
                in
                (match choice.FM.cell with
                | FM.Bram -> bram_used := !bram_used + choice.FM.count
                | FM.Uram -> uram_used := !uram_used + choice.FM.count
                | FM.Lutram -> ());
                { mm_name = name; mm_choice = choice })
              requests
          in
          let mem_cells =
            R.sum (List.map (fun m -> cells_resource m.mm_choice) memories)
          in
          let total = R.add logic mem_cells in
          let after = R.add u total in
          if R.fits after ~cap then
            Some (R.max_utilization after ~cap, memories, total)
          else None
        in
        let best = ref None in
        Array.iteri
          (fun slr_i _ ->
            match candidate slr_i with
            | None -> ()
            | Some (util, memories, total) -> (
                match !best with
                | Some (u, _, _, _) when u <= util -> ()
                | _ -> best := Some (util, slr_i, memories, total)))
          slrs;
        match !best with
        | None ->
            failwith
              (Printf.sprintf
                 "Floorplan.place: core %d of system %s does not fit on any \
                  SLR of %s"
                 core sys.Config.sys_name p.Platform.Device.name)
        | Some (_, slr_i, memories, total) ->
            used.(slr_i) <- R.add used.(slr_i) total;
            places :=
              {
                cp_system = sys.Config.sys_name;
                cp_core = core;
                cp_slr = slr_i;
                cp_logic = logic;
                cp_memories = memories;
                cp_total = total;
              }
              :: !places
      done)
    config.Config.systems;
  { places = List.rev !places; used_per_slr = used; platform = p }

let slr_of t ~system ~core =
  match
    List.find_opt
      (fun cp -> cp.cp_system = system && cp.cp_core = core)
      t.places
  with
  | Some cp -> cp.cp_slr
  | None -> invalid_arg "Floorplan.slr_of: unknown core"

let cores_on_slr t slr = List.filter (fun cp -> cp.cp_slr = slr) t.places

let constraints t =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun slr_i _ ->
      Buffer.add_string buf
        (Printf.sprintf "create_pblock pblock_slr%d\n" slr_i);
      Buffer.add_string buf
        (Printf.sprintf
           "resize_pblock pblock_slr%d -add {SLR%d}\n" slr_i slr_i);
      List.iter
        (fun cp ->
          Buffer.add_string buf
            (Printf.sprintf
               "add_cells_to_pblock pblock_slr%d [get_cells {beethoven/%s_%d}]\n"
               slr_i cp.cp_system cp.cp_core))
        (cores_on_slr t slr_i))
    t.used_per_slr;
  Buffer.contents buf

let render t =
  let buf = Buffer.create 512 in
  Array.iteri
    (fun slr_i used ->
      let cap = (Platform.Device.slr_exn t.platform slr_i).Platform.Device.capacity in
      let cores = cores_on_slr t slr_i in
      Buffer.add_string buf
        (Printf.sprintf "SLR %d  (%d cores, peak util %.0f%%)\n" slr_i
           (List.length cores)
           (100. *. R.max_utilization used ~cap));
      let names =
        List.map
          (fun cp -> Printf.sprintf "%s[%d]" cp.cp_system cp.cp_core)
          cores
      in
      let rec rows = function
        | [] -> ()
        | l ->
            let line, rest =
              if List.length l > 8 then
                (List.filteri (fun i _ -> i < 8) l,
                 List.filteri (fun i _ -> i >= 8) l)
              else (l, [])
            in
            Buffer.add_string buf ("  " ^ String.concat "  " line ^ "\n");
            rows rest
      in
      rows names)
    t.used_per_slr;
  Buffer.contents buf
