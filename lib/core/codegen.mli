(** C++ host-binding generation (Fig. 3b).

    From the command specs of a configuration, emit the header a host
    program compiles against: one namespace per System, one stub per
    command returning a [response_handle], plus the handle/remote_ptr
    declarations of the Beethoven software library. The packing layout is
    the one {!Cmd_spec.pack} implements, so hardware and host always
    agree. *)

val header : Config.t -> string
(** The generated [<accel>_bindings.h]. *)

val stubs : Config.t -> string
(** The generated [.cc] with the marshalling bodies. *)
