(** Composer design-rule checker.

    Validates a {!Config.t} against a target platform {e before}
    elaboration, so a configuration that can never map to the device is
    rejected with actionable diagnostics instead of a mid-elaboration
    exception (or, worse, a netlist the tool flow rejects hours later).
    Shares the {!Hw.Diag} framework with the netlist linter; rule ids are
    waiver keys and the [--Werror] knob is {!Hw.Diag.promote_warnings}.

    Rule catalog (see {!rules}):

    - [drc-name-collision] (error) — duplicate system / channel /
      scratchpad / command names (re-validated here because the config
      record type is open: {!Config.make}'s checks can be bypassed).
    - [drc-core-count] (error) — a system with fewer than 1 or more than
      1024 cores; 1024 is the RoCC [core_id] encoding limit.
    - [drc-rocc-encoding] (error) — more systems than RoCC [system_id]
      can address (256), a funct outside [0, 127], or a command payload
      beyond 8 beats.
    - [drc-funct-collision] (error) — two commands of one system sharing
      a funct: the decoder could not tell them apart.
    - [drc-dangling-ref] (error) — an intra-core port naming a system or
      scratchpad that does not exist.
    - [drc-axi-capacity] (warning) — more memory channel instances than
      the platform has AXI IDs (channels will share IDs and serialize),
      or a TLP channel whose in-flight depth exceeds the ID pool.
    - [drc-scratchpad-capacity] (error/warning) — scratchpad requests
      that exceed the platform's total block-memory bits (error), or the
      preferred cell type's count so that spilling is certain (warning);
      on ASIC targets, requests the SRAM compiler cannot realize (error).
    - [drc-floorplan] (error) — the placement pre-check: some core fits
      on no SLR.
    - [drc-sta-slr-path] (warning/error) — the {!Hw.Sta} worst-path
      estimate of an RTL-DSL kernel, taxed with the platform NoC's
      SLR-crossing penalty for every die between the core's placement
      ({!Floorplan.slr_of}) and the shell on SLR 0, exceeds the depth
      budget. On-die overruns warn; a path that additionally crosses
      dies errors — exactly the paths the paper's floorplanner exists to
      keep short.

    Kernel circuits attached to systems are additionally run through
    {!Hw.Lint.circuit} (with the platform's LUTRAM budget), and those
    diagnostics are folded in under their original lint rule ids with the
    system name prefixed to the location. *)

val rules : (string * Hw.Diag.severity * string) list
(** (rule id, default severity, one-line rationale) for the DRC-level
    rules; lint rule ids are documented in {!Hw.Lint.rules}. *)

val default_sta_budget : int
(** Default worst-path budget (in {!Hw.Sta} delay units) for
    [drc-sta-slr-path]. *)

(** {1 Per-system kernel analysis}

    The expensive, placement-independent slice of the DRC: the netlist
    lint, the {!Hw.Sta} report and the circuit statistics of one system's
    kernel circuit. It depends only on the system record itself, which is
    what makes it the unit of reuse for {!Elaborate.Cache} — a config
    delta that leaves a system untouched can replay its analysis instead
    of re-linting and re-timing the kernel. *)

type kernel_analysis = {
  ka_lint : Hw.Diag.t list;
      (** {!Hw.Lint.circuit} diagnostics, locations prefixed with the
          system name (empty for transaction-level kernels) *)
  ka_sta : Hw.Sta.report option;
      (** static timing of the kernel circuit, [None] without one *)
  ka_stats : (string * int) list option;
      (** {!Hw.Circuit.stats} of the kernel circuit *)
}

val analyze_kernel : Config.system -> kernel_analysis
(** Lint + STA + stats of one system's kernel circuit. Pure function of
    the system record. *)

val analyses_of :
  ?analyses:(string * kernel_analysis) list ->
  Config.t ->
  (string * kernel_analysis) list
(** Per-system analyses in config order; entries found in [analyses]
    (keyed by system name) are reused verbatim, the rest are computed
    fresh with {!analyze_kernel}. *)

val sta :
  ?analyses:(string * kernel_analysis) list ->
  Config.t ->
  (string * Hw.Sta.report) list
(** Per-system {!Hw.Sta} reports for every system carrying an RTL-DSL
    kernel circuit (the [beethoven_gen sta] backend). *)

val run :
  ?lint_kernels:bool ->
  ?sta_budget:int ->
  ?analyses:(string * kernel_analysis) list ->
  Config.t ->
  Platform.Device.t ->
  Hw.Diag.t list
(** Run every design rule. [lint_kernels] (default [true]) controls the
    per-system netlist lint pass; [sta_budget] overrides
    {!default_sta_budget}; [analyses] supplies precomputed (typically
    cached) per-system kernel analyses — the result is identical to a
    fresh run as long as each entry matches {!analyze_kernel} of the
    same-named system. The result is unfiltered: apply
    {!Hw.Diag.waive} / {!Hw.Diag.promote_warnings} for policy. *)
