module R = Platform.Resources

(* Table II per-component figures, 23-core A3 on the VU9P. *)
let reader_base = R.make ~clb:600 ~lut:2300 ~ff:2600 ()
let writer_base = R.make ~clb:304 ~lut:815 ~ff:1051 ()
let scratchpad_base = R.make ~clb:100 ~lut:300 ~ff:200 ()

(* ~0.6% of the device, per the paper's description of the host frontend. *)
let mmio_frontend = R.make ~clb:900 ~lut:4500 ~ff:5200 ~bram:2 ()

let noc_buffer ~width_bits =
  (* A fanout-4 switching node: ~4 LUT per payload bit for mux + routing,
     lightly registered (Table II shows the interconnect is LUT-heavy and
     register-poor). *)
  let lut = width_bits * 4 in
  R.make ~clb:(lut / 7) ~lut ~ff:(width_bits / 8) ()

let mem_noc_width_bits (p : Platform.Device.t) =
  (p.Platform.Device.axi.Axi.Params.data_bytes * 8) + 64 + 8

let cmd_noc_width_bits = Rocc.width + 16

let reader_buffer_bits (rc : Config.read_channel) (p : Platform.Device.t) =
  rc.Config.rc_buffer_beats * p.Platform.Device.axi.Axi.Params.data_bytes * 8

let writer_buffer_bits (wc : Config.write_channel) (p : Platform.Device.t) =
  wc.Config.wc_buffer_beats * p.Platform.Device.axi.Axi.Params.data_bytes * 8

let circuit_estimate c =
  (* estimate on the folded netlist, as the tool flow would see it *)
  let stats = Hw.Circuit.stats (Hw.Opt.constant_fold c) in
  let get k = Option.value ~default:0 (List.assoc_opt k stats) in
  (* ~1.5 LUT per netlist node bit is a crude but serviceable proxy *)
  let nodes = get "nodes" in
  let reg_bits = get "register_bits" in
  let lut = nodes * 3 in
  R.make ~clb:(lut / 7) ~lut ~ff:reg_bits ()

let core_logic (sys : Config.system) (_p : Platform.Device.t) =
  let kernel =
    match sys.Config.kernel_circuit with
    | Some c when sys.Config.kernel_resources = R.zero -> circuit_estimate c
    | _ -> sys.Config.kernel_resources
  in
  let readers =
    List.fold_left
      (fun acc rc -> R.add acc (R.scale reader_base rc.Config.rc_n_channels))
      R.zero sys.Config.read_channels
  in
  let writers =
    List.fold_left
      (fun acc wc -> R.add acc (R.scale writer_base wc.Config.wc_n_channels))
      R.zero sys.Config.write_channels
  in
  let spads =
    List.fold_left
      (fun acc sp ->
        let base = R.add scratchpad_base
            (if sp.Config.sp_init_from_memory then reader_base else R.zero)
        in
        ignore sp;
        R.add acc base)
      R.zero sys.Config.scratchpads
  in
  let intercore =
    List.fold_left
      (fun acc ic -> R.add acc (R.scale writer_base ic.Config.ic_n_channels))
      R.zero sys.Config.intra_core_ports
  in
  R.sum [ kernel; readers; writers; spads; intercore ]
