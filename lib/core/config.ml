type read_channel = {
  rc_name : string;
  rc_data_bytes : int;
  rc_n_channels : int;
  rc_burst_beats : int;
  rc_max_in_flight : int;
  rc_use_tlp : bool;
  rc_buffer_beats : int;
}

type write_channel = {
  wc_name : string;
  wc_data_bytes : int;
  wc_n_channels : int;
  wc_burst_beats : int;
  wc_max_in_flight : int;
  wc_use_tlp : bool;
  wc_buffer_beats : int;
}

type scratchpad = {
  sp_name : string;
  sp_data_bits : int;
  sp_n_datas : int;
  sp_n_ports : int;
  sp_latency : int;
  sp_init_from_memory : bool;
}

type intra_core_port = {
  ic_name : string;
  ic_to_system : string;
  ic_to_scratchpad : string;
  ic_n_channels : int;
}

type system = {
  sys_name : string;
  n_cores : int;
  read_channels : read_channel list;
  write_channels : write_channel list;
  scratchpads : scratchpad list;
  intra_core_ports : intra_core_port list;
  commands : Cmd_spec.command list;
  kernel_resources : Platform.Resources.t;
  kernel_circuit : Hw.Circuit.t option;
}

type t = { acc_name : string; systems : system list }

let positive what v = if v < 1 then invalid_arg ("Config: " ^ what ^ " must be positive")

let read_channel ?(n_channels = 1) ?(burst_beats = 64) ?(max_in_flight = 4)
    ?(use_tlp = true) ?(buffer_beats = 256) ~name ~data_bytes () =
  positive "data_bytes" data_bytes;
  positive "n_channels" n_channels;
  positive "burst_beats" burst_beats;
  positive "max_in_flight" max_in_flight;
  if buffer_beats < burst_beats then
    invalid_arg "Config: reader buffer smaller than one burst";
  {
    rc_name = name;
    rc_data_bytes = data_bytes;
    rc_n_channels = n_channels;
    rc_burst_beats = burst_beats;
    rc_max_in_flight = max_in_flight;
    rc_use_tlp = use_tlp;
    rc_buffer_beats = buffer_beats;
  }

let write_channel ?(n_channels = 1) ?(burst_beats = 64) ?(max_in_flight = 4)
    ?(use_tlp = true) ?(buffer_beats = 256) ~name ~data_bytes () =
  positive "data_bytes" data_bytes;
  positive "n_channels" n_channels;
  positive "burst_beats" burst_beats;
  positive "max_in_flight" max_in_flight;
  if buffer_beats < burst_beats then
    invalid_arg "Config: writer buffer smaller than one burst";
  {
    wc_name = name;
    wc_data_bytes = data_bytes;
    wc_n_channels = n_channels;
    wc_burst_beats = burst_beats;
    wc_max_in_flight = max_in_flight;
    wc_use_tlp = use_tlp;
    wc_buffer_beats = buffer_beats;
  }

let scratchpad ?(n_ports = 1) ?(latency = 1) ?(init_from_memory = false) ~name
    ~data_bits ~n_datas () =
  positive "data_bits" data_bits;
  positive "n_datas" n_datas;
  positive "n_ports" n_ports;
  positive "latency" latency;
  {
    sp_name = name;
    sp_data_bits = data_bits;
    sp_n_datas = n_datas;
    sp_n_ports = n_ports;
    sp_latency = latency;
    sp_init_from_memory = init_from_memory;
  }

let system ?(read_channels = []) ?(write_channels = []) ?(scratchpads = [])
    ?(intra_core_ports = []) ?(commands = [])
    ?(kernel_resources = Platform.Resources.zero) ?kernel_circuit ~name
    ~n_cores () =
  positive "n_cores" n_cores;
  {
    sys_name = name;
    n_cores;
    read_channels;
    write_channels;
    scratchpads;
    intra_core_ports;
    commands;
    kernel_resources;
    kernel_circuit;
  }

let check_unique what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Config: duplicate %s %S" what n);
      Hashtbl.add seen n ())
    names

let make ~name systems =
  if systems = [] then invalid_arg "Config.make: no systems";
  check_unique "system" (List.map (fun s -> s.sys_name) systems);
  List.iter
    (fun s ->
      check_unique
        ("channel in " ^ s.sys_name)
        (List.map (fun rc -> rc.rc_name) s.read_channels
        @ List.map (fun wc -> wc.wc_name) s.write_channels);
      check_unique
        ("scratchpad in " ^ s.sys_name)
        (List.map (fun sp -> sp.sp_name) s.scratchpads);
      check_unique
        ("command in " ^ s.sys_name)
        (List.map (fun c -> c.Cmd_spec.cmd_name) s.commands);
      check_unique
        ("funct in " ^ s.sys_name)
        (List.map (fun c -> string_of_int c.Cmd_spec.cmd_funct) s.commands))
    systems;
  { acc_name = name; systems }

let find_system t name =
  match List.find_opt (fun s -> s.sys_name = name) t.systems with
  | Some s -> s
  | None -> invalid_arg ("Config.find_system: no system " ^ name)

let total_cores t = List.fold_left (fun acc s -> acc + s.n_cores) 0 t.systems
