(** Design-space exploration over the composer's knobs.

    The paper observes that Spatial's DSE frequently proposed points that
    failed synthesis; Beethoven's elaboration is cheap and its floorplanner
    is the fit oracle, so a sweep over core counts (or any discrete knob)
    can reject infeasible points before any tool run. This module provides
    that: enumerate candidates, check fit, score with a user metric, and
    report the frontier. *)

type point = {
  pt_cores : int;
  pt_fits : bool;
  pt_peak_utilization : float;  (** worst per-SLR utilization when it fits *)
  pt_metric : float option;  (** user score (higher is better) *)
}

val sweep_cores :
  config_of:(n_cores:int -> Config.t) ->
  ?max_cores:int ->
  ?metric:(n_cores:int -> float) ->
  Platform.Device.t ->
  point list
(** Evaluate 1..[max_cores] (default 48). [metric] is only invoked for
    points that fit. *)

val best : point list -> point option
(** Highest metric among fitting points (falls back to the largest
    fitting core count when no metric was supplied). *)

val render : point list -> string
